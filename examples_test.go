package repro_test

import (
	"os/exec"
	"testing"
	"time"
)

// TestExamplesRun executes every runnable example end to end — the
// examples are documentation, and documentation that does not run is
// wrong. Skipped under -short (each example simulates a few hundred
// thousand cycles).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow")
	}
	examples := []string{
		"quickstart",
		"enginecontrol",
		"archexplore",
		"triggercascade",
		"calibration",
		"selfprofile",
		"dualcore",
	}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = cmd.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example failed: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Fatal("example produced no output")
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
		})
	}
}
