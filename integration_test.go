package repro_test

import (
	"context"
	"testing"

	"repro/internal/dap"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestQuickstartWorkflow is the README quickstart, end to end: build an
// Emulation Device, run a customer application, measure everything in
// parallel through the MCDS, drain over the DAP, read the profile.
func TestQuickstartWorkflow(t *testing.T) {
	s := soc.New(soc.TC1797().WithED(), 42)
	app, err := workload.Build(s, workload.Spec{
		Name: "quickstart", Seed: 42,
		CodeKB: 16, TableKB: 16, FilterTaps: 12, DiagBranches: 8,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	link := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
	sess := profiling.NewSession(s, profiling.Spec{
		Resolution: 1000,
		Params:     profiling.StandardParams(),
		DAP:        &link,
	})
	if err := sess.Run(context.Background(), app, 500_000); err != nil {
		t.Fatal(err)
	}
	prof, err := sess.Result("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Instr == 0 || prof.Cycles == 0 {
		t.Fatal("nothing ran")
	}
	ipc := prof.Rate("ipc")
	if ipc <= 0 || ipc > 3 {
		t.Errorf("IPC = %v", ipc)
	}
	if len(prof.Series) != len(profiling.StandardParams()) {
		t.Errorf("parameters = %d", len(prof.Series))
	}
	for _, name := range []string{"ipc", "icache_miss", "dflash_read", "interrupt"} {
		if len(prof.Series[name].Samples) == 0 {
			t.Errorf("no samples for %s", name)
		}
	}
}

// TestEndToEndDeterminism locks the whole stack: identical seeds produce
// the identical profile through SoC, workload, MCDS, EMEM and DAP.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		s := soc.New(soc.TC1797().WithED(), 7)
		app, err := workload.Build(s, workload.Spec{
			Name: "det", Seed: 7, CodeKB: 8, TableKB: 8, FilterTaps: 8,
			DiagBranches: 8, ADCPeriod: 2000, TimerPeriod: 8000, CANMeanGap: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		sess := profiling.NewSession(s, profiling.Spec{
			Resolution: 500, Params: profiling.StandardParams(),
		})
		if err := sess.Run(context.Background(), app, 300_000); err != nil {
			t.Fatal(err)
		}
		prof, err := sess.Result("det")
		if err != nil {
			t.Fatal(err)
		}
		return prof.Instr, prof.TraceBytes, prof.Rate("ipc")
	}
	i1, b1, r1 := run()
	i2, b2, r2 := run()
	if i1 != i2 || b1 != b2 || r1 != r2 {
		t.Errorf("not deterministic: (%d,%d,%v) vs (%d,%d,%v)", i1, b1, r1, i2, b2, r2)
	}
}
