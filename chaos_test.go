// Chaos soak: every fault scenario against the engine-control workload on
// the hardened trace pipeline. The test is not that nothing breaks — most
// scenarios guarantee losses — but that the pipeline keeps its promises
// under fire: it never errors, accounts every single message (written ==
// delivered + accounted lost), and never fabricates data (every delivered
// message is byte-exact against the emitter's ground-truth mirror).
package repro_test

import (
	"context"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/tmsg"
	"repro/internal/workload"
)

func engineSpec() workload.Spec {
	return workload.Spec{
		Name: "engine", Seed: 2024, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		EEPROMEmul: true,
	}
}

// chaosMsgEqual compares a decoded message against the mirror, ignoring
// the Overflow timestamp the decoder synthesizes from stream position.
func chaosMsgEqual(emitted, decoded tmsg.Msg) bool {
	if decoded.Kind == tmsg.KindOverflow {
		emitted.Cycle, decoded.Cycle = 0, 0
	}
	return emitted == decoded
}

func TestChaosSoak(t *testing.T) {
	for _, plan := range fault.Scenarios(2024) {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			s := soc.New(soc.TC1797().WithED(), 2024)
			app, err := workload.Build(s, engineSpec())
			if err != nil {
				t.Fatal(err)
			}
			link := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
			sess := profiling.NewSession(s, profiling.Spec{
				Resolution: 500,
				Params:     profiling.StandardParams(),
				DAP:        &link,
				Framed:     true,
				Fault:      &plan,
			})
			var mirror []tmsg.Msg
			sess.MCDS.OnEmit = func(m *tmsg.Msg) { mirror = append(mirror, *m) }

			if err := sess.Run(context.Background(), app, 400_000); err != nil {
				t.Fatal(err)
			}
			p, err := sess.Result("engine")
			if err != nil {
				t.Fatalf("hardened session errored under %s: %v", plan.Name, err)
			}

			// Conservation: every message the MCDS handed to the frame
			// layer is either delivered or accounted lost — none vanish
			// silently, none are invented.
			st := sess.DAP.Stream()
			framed := sess.MCDS.Framer().MsgsFramed
			if uint64(len(mirror)) != framed {
				t.Fatalf("mirror saw %d messages, framer took %d", len(mirror), framed)
			}
			if st.Delivered+st.AccountedLost() != framed {
				t.Fatalf("conservation violated: %d delivered + %d lost != %d written",
					st.Delivered, st.AccountedLost(), framed)
			}

			// Integrity: the delivered stream is an exact subsequence of
			// the emitted stream. Corruption may delete messages, but a
			// message that survives must survive unmodified — a CRC escape
			// or decoder desync would show up here as a mutated sample.
			msgs, _ := sess.DAP.Decode()
			j := 0
			for i, got := range msgs {
				for j < len(mirror) && !chaosMsgEqual(mirror[j], got) {
					j++
				}
				if j == len(mirror) {
					t.Fatalf("delivered message %d (%+v) does not appear in the emitted stream", i, got)
				}
				j++
			}

			if plan.Name == "clean" {
				if st.AccountedLost() != 0 || len(p.Gaps) != 0 || sess.DAP.Retries != 0 {
					t.Fatalf("clean scenario saw loss: lost %d, gaps %d, retries %d",
						st.AccountedLost(), len(p.Gaps), sess.DAP.Retries)
				}
				if uint64(len(msgs)) != framed {
					t.Fatalf("clean scenario delivered %d of %d messages", len(msgs), framed)
				}
				for name, se := range p.Series {
					if se.Confidence() != 1 {
						t.Errorf("%s: confidence %v on clean run", name, se.Confidence())
					}
				}
			}

			t.Logf("%-12s framed %6d delivered %6d lost %5d gaps %3d retries %4d",
				plan.Name, framed, st.Delivered, st.AccountedLost(), len(p.Gaps), sess.DAP.Retries)
		})
	}
}
