package soc

import (
	"testing"

	"repro/internal/dma"
	"repro/internal/emem"
	"repro/internal/flash"
	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
)

func mustAsm(t *testing.T, a *isa.Asm) *isa.Program {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPresetsBuild(t *testing.T) {
	for _, cfg := range []Config{TC1797(), TC1767(), TC1797().WithED(), TC1767().WithED()} {
		s := New(cfg, 1)
		if s.CPU == nil || s.Flash == nil {
			t.Fatalf("%s: incomplete SoC", cfg.Name)
		}
		if cfg.ED && s.EMEM == nil {
			t.Fatalf("%s: ED without EMEM", cfg.Name)
		}
		if !cfg.ED && s.EMEM != nil {
			t.Fatalf("%s: production device with EMEM", cfg.Name)
		}
	}
	if got := TC1797().WithED().EMEMSize; got != 512<<10 {
		t.Errorf("TC1797ED EMEM = %d", got)
	}
	if got := TC1767().WithED().EMEMSize; got != 256<<10 {
		t.Errorf("TC1767ED EMEM = %d", got)
	}
}

func TestRunSimpleProgram(t *testing.T) {
	s := New(TC1797(), 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 21)
	a.Add(1, 1, 1)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	if _, ok := s.RunUntilHalt(10_000); !ok {
		t.Fatal("did not halt")
	}
	if s.CPU.Reg(1) != 42 {
		t.Errorf("r1 = %d", s.CPU.Reg(1))
	}
}

func TestCPUReachesPeripheralOverBridge(t *testing.T) {
	s := New(TC1797(), 1)
	tm, _ := s.AddTimer("t0", 1000, 0, 5, irq.ToCPU, 0)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, tm.Base+periph.RegPeriod)
	a.Movi(2, 123)
	a.Stw(2, 1, 0)
	a.Ldw(3, 1, 0)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	if _, ok := s.RunUntilHalt(10_000); !ok {
		t.Fatal("did not halt")
	}
	if s.CPU.Reg(3) != 123 {
		t.Errorf("readback = %d", s.CPU.Reg(3))
	}
	if tm.Period != 123 {
		t.Errorf("timer period = %d", tm.Period)
	}
	if s.CPU.Counters().Get(sim.EvDPeriphAccess) != 2 {
		t.Errorf("periph accesses = %d, want 2", s.CPU.Counters().Get(sim.EvDPeriphAccess))
	}
}

func TestTimerInterruptDrivesHandler(t *testing.T) {
	s := New(TC1797(), 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1) // enable interrupts
	a.Movw(2, 100_000)
	a.Label("spin")
	a.Addi(3, 3, 1)
	a.Blt(3, 2, "spin")
	a.Halt()
	a.Label("isr")
	a.Addi(4, 4, 1)
	a.Rfe()
	p := mustAsm(t, a)
	var isr uint32
	for _, sym := range p.Syms {
		if sym.Name == "isr" {
			isr = sym.Addr
		}
	}
	s.AddTimer("t0", 5000, 0, 6, irq.ToCPU, isr)
	s.LoadProgram(p)
	s.ResetCPU(mem.FlashBase)
	cycles, ok := s.RunUntilHalt(10_000_000)
	if !ok {
		t.Fatal("did not halt")
	}
	want := cycles / 5000
	got := uint64(s.CPU.Reg(4))
	if got < want-2 || got > want+2 {
		t.Errorf("isr ran %d times in %d cycles, want about %d", got, cycles, want)
	}
}

func TestPCPChannelOffload(t *testing.T) {
	s := New(TC1797(), 1)
	// PCP channel program: increment a counter in PRAM, then end (RFE).
	pa := isa.NewAsm(mem.PRAMBase + 0x1000)
	pa.Movw(1, mem.PRAMBase+0x100)
	pa.Ldw(2, 1, 0)
	pa.Addi(2, 2, 1)
	pa.Stw(2, 1, 0)
	pa.Rfe()
	pprog := mustAsm(t, pa)
	s.LoadProgram(pprog)

	srn := s.Router.AddSRN("pcp-ch0", 3, irq.ToPCP, 0)
	s.PCP.AddChannel("ch0", srn, pprog.Base)

	// TriCore busy loop while PCP works.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, 30_000)
	a.Label("spin")
	a.Loop(1, "spin")
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)

	// Raise the PCP request a few times, spaced out.
	fired := 0
	s.Clock.Attach("firer", sim.TickerFunc(func(cy uint64) {
		if cy%2000 == 0 && fired < 5 {
			s.Router.Request(srn)
			fired++
		}
	}))
	if _, ok := s.RunUntilHalt(10_000_000); !ok {
		t.Fatal("did not halt")
	}
	if got := s.PRAM.Read32(mem.PRAMBase + 0x100); got != 5 {
		t.Errorf("PCP counter = %d, want 5", got)
	}
	if s.PCP.Counters().Get(sim.EvInstrExecuted) == 0 {
		t.Error("PCP executed no instructions")
	}
}

func TestDMAMovesPeripheralDataToSRAM(t *testing.T) {
	s := New(TC1797(), 1)
	can, canSRN := s.AddCAN("can0", 500, 16, 2, irq.ToDMA, 0)
	ch := &dma.Channel{Name: "rx", Src: can.Base + periph.RegResult,
		Dst: mem.SRAMBase + 0x100, SrcInc: 0, DstInc: 4, UnitBytes: 4, Count: 1}
	s.DMA.AddChannel(ch, canSRN)

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, 50_000)
	a.Label("spin")
	a.Loop(1, "spin")
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(10_000_000)

	if ch.Transfers == 0 {
		t.Fatal("DMA moved nothing")
	}
	if can.Received == 0 {
		t.Fatal("no CAN messages")
	}
	if s.DMA.Counters().Get(sim.EvDMATransfer) != ch.Transfers {
		t.Error("transfer counter mismatch")
	}
}

func TestEDTransparency(t *testing.T) {
	// F2/F4: the ED variant runs the identical application with identical
	// timing — the EEC only adds observability.
	run := func(cfg Config) (uint64, uint64) {
		s := New(cfg, 7)
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, mem.SRAMBase)
		a.Movw(3, 2000)
		a.Label("body")
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 3)
		a.Stw(2, 1, 0)
		a.Loop(3, "body")
		a.Halt()
		s.LoadProgram(mustAsm(t, a))
		s.ResetCPU(mem.FlashBase)
		cy, ok := s.RunUntilHalt(10_000_000)
		if !ok {
			t.Fatal("did not halt")
		}
		return cy, s.CPU.Counters().Get(sim.EvInstrExecuted)
	}
	c1, i1 := run(TC1797())
	c2, i2 := run(TC1797().WithED())
	if c1 != c2 || i1 != i2 {
		t.Errorf("ED changes behaviour: prod (%d,%d) vs ED (%d,%d)", c1, i1, c2, i2)
	}
}

func TestCalibrationOverlayRedirects(t *testing.T) {
	s := New(TC1797().WithED(), 1)
	// Production table value in flash.
	tbl := uint32(mem.FlashBase + 0x10000)
	s.Flash.Load(tbl, []byte{11, 0, 0, 0})
	// Calibration value in EMEM overlay page 0.
	s.EMEM.RAM.Write32(mem.EMEMBase+0x40, 99)
	s.Overlay.MapPage(emem.Page{FlashAddr: tbl, EmemOff: 0x40, Size: 64})

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, tbl)
	a.Ldw(2, 1, 0)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(100_000)
	if s.CPU.Reg(2) != 99 {
		t.Errorf("read %d, want overlay value 99", s.CPU.Reg(2))
	}
	if s.Overlay.Redirected != 1 {
		t.Errorf("redirected = %d", s.Overlay.Redirected)
	}
	// Remove the page: production value visible again.
	s.Overlay.ClearPages()
	s.ResetCPU(mem.FlashBase)
	s.CPU.Reset(mem.FlashBase, mem.DSPRBase+0x1000)
	s.RunUntilHalt(100_000)
	if s.CPU.Reg(2) != 11 {
		t.Errorf("read %d, want flash value 11", s.CPU.Reg(2))
	}
}

func TestPeekResolvesAllMemories(t *testing.T) {
	s := New(TC1797().WithED(), 1)
	s.Flash.Load(mem.FlashBase+4, []byte{1})
	s.SRAM.Write32(mem.SRAMBase+4, 2)
	s.PSPR.Write32(mem.PSPRBase+4, 3)
	s.DSPR.Write32(mem.DSPRBase+4, 4)
	s.PRAM.Write32(mem.PRAMBase+4, 5)
	s.EMEM.RAM.Write32(mem.EMEMBase+4, 6)
	buf := make([]byte, 1)
	for i, addr := range []uint32{mem.FlashBase + 4, mem.SRAMBase + 4, mem.PSPRBase + 4,
		mem.DSPRBase + 4, mem.PRAMBase + 4, mem.EMEMBase + 4} {
		s.Peek(addr, buf)
		if buf[0] != byte(i+1) {
			t.Errorf("peek %#x = %d, want %d", addr, buf[0], i+1)
		}
	}
	// Uncached views resolve to the same bytes.
	s.Peek(mem.FlashUncach+4, buf)
	if buf[0] != 1 {
		t.Error("uncached flash peek failed")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		s := New(TC1797(), 42)
		s.AddCAN("can0", 300, 8, 2, irq.ToCPU, mem.FlashBase) // noise source
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, 10_000)
		a.Label("spin")
		a.Loop(1, "spin")
		a.Halt()
		s.LoadProgram(mustAsm(t, a))
		s.ResetCPU(mem.FlashBase)
		cy, _ := s.RunUntilHalt(1_000_000)
		return cy
	}
	if run() != run() {
		t.Error("same seed must give identical runs")
	}
}

func TestSecondCoreRunsConcurrently(t *testing.T) {
	cfg := TC1797()
	cfg.SecondCore = true
	s := New(cfg, 1)

	// Core 0: count up in DSPR0. Core 1: count down in DSPR1.
	a0 := isa.NewAsm(mem.FlashBase)
	a0.Movw(1, mem.DSPRBase)
	a0.Movw(3, 5000)
	a0.Label("b")
	a0.Addi(2, 2, 1)
	a0.Stw(2, 1, 0)
	a0.Loop(3, "b")
	a0.Halt()
	p0 := mustAsm(t, a0)
	s.LoadProgram(p0)

	a1 := isa.NewAsm(mem.FlashBase + 0x10000)
	a1.Movw(1, mem.DSPR1Base)
	a1.Movw(3, 5000)
	a1.Label("b")
	a1.Addi(2, 2, 2)
	a1.Stw(2, 1, 0)
	a1.Loop(3, "b")
	a1.Halt()
	p1 := mustAsm(t, a1)
	s.LoadProgram(p1)

	s.ResetCPU(p0.Base)
	s.ResetCPU1(p1.Base)
	done := func() bool { return s.CPU.Halted() && s.CPU1.Halted() }
	if _, ok := s.Clock.RunUntil(done, 10_000_000); !ok {
		t.Fatal("cores did not finish")
	}
	if got := s.DSPR.Read32(mem.DSPRBase); got != 5000 {
		t.Errorf("core0 result = %d", got)
	}
	if got := s.DSPR1.Read32(mem.DSPR1Base); got != 10000 {
		t.Errorf("core1 result = %d", got)
	}
	// Both cores fetched from the shared flash: the program bus saw both
	// masters.
	if s.PLMB.Stats(MasterCPU1Fetch).Requests == 0 {
		t.Error("core1 never fetched over the shared bus")
	}
}

func TestSecondCoreBusContention(t *testing.T) {
	// Both cores hammer the same SRAM: the shared data bus must serialize
	// them and record contention — visible to the MCDS bus observation.
	cfg := TC1797()
	cfg.SecondCore = true
	s := New(cfg, 1)
	mk := func(base, target uint32) *isa.Program {
		a := isa.NewAsm(base)
		a.Movw(1, target)
		a.Movw(3, 3000)
		a.Label("b")
		a.Ldw(2, 1, 0)
		a.Stw(2, 1, 0)
		a.Loop(3, "b")
		a.Halt()
		return mustAsm(t, a)
	}
	p0 := mk(mem.FlashBase, mem.SRAMBase)
	p1 := mk(mem.FlashBase+0x10000, mem.SRAMBase+0x100)
	s.LoadProgram(p0)
	s.LoadProgram(p1)
	s.ResetCPU(p0.Base)
	s.ResetCPU1(p1.Base)
	done := func() bool { return s.CPU.Halted() && s.CPU1.Halted() }
	if _, ok := s.Clock.RunUntil(done, 10_000_000); !ok {
		t.Fatal("cores did not finish")
	}
	if s.DLMB.Counters().Get(sim.EvBusContention) == 0 {
		t.Error("no bus contention between the two cores")
	}
}

func TestSecondCoreInterrupts(t *testing.T) {
	cfg := TC1797()
	cfg.SecondCore = true
	s := New(cfg, 1)
	a := isa.NewAsm(mem.FlashBase + 0x20000)
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1)
	a.Movw(3, 40_000)
	a.Label("spin")
	a.Loop(3, "spin")
	a.Halt()
	a.Label("isr")
	a.Addi(4, 4, 1)
	a.Rfe()
	p := mustAsm(t, a)
	s.LoadProgram(p)
	var isr uint32
	for _, sy := range p.Syms {
		if sy.Name == "isr" {
			isr = sy.Addr
		}
	}
	s.AddTimer("t1", 5000, 0, 4, irq.ToCPU1, isr)
	// Core 0 idles at a halt.
	a0 := isa.NewAsm(mem.FlashBase)
	a0.Halt()
	p0 := mustAsm(t, a0)
	s.LoadProgram(p0)
	s.ResetCPU(p0.Base)
	s.ResetCPU1(p.Base)
	if _, ok := s.Clock.RunUntil(s.CPU1.Halted, 10_000_000); !ok {
		t.Fatal("core1 did not halt")
	}
	if s.CPU1.Reg(4) == 0 {
		t.Error("core1 ISR never ran")
	}
	if s.CPU.Counters().Get(sim.EvInterruptEntry) != 0 {
		t.Error("core0 wrongly took core1's interrupt")
	}
}

// TestRandomConfigsRun is a robustness property: any sane configuration
// point in the architecture-option space must build and execute a workload
// without panics or hangs (the evaluation driver explores this space).
func TestRandomConfigsRun(t *testing.T) {
	rng := sim.NewRNG(99)
	for i := 0; i < 12; i++ {
		cfg := TC1797()
		cfg.Flash.WaitStates = uint64(rng.Range(1, 12))
		cfg.Flash.CodeBuffers = rng.Range(1, 8)
		cfg.Flash.DataBuffers = rng.Range(1, 8)
		cfg.Flash.Prefetch = rng.Bool(0.5)
		cfg.Flash.Policy = flash.ArbPolicy(rng.Intn(3))
		cfg.SRAMLatency = uint64(rng.Range(0, 6))
		if rng.Bool(0.3) {
			cfg.ICache = nil
		} else {
			ic := *cfg.ICache
			ic.Size = uint32(4<<10) << uint(rng.Intn(3))
			cfg.ICache = &ic
		}
		if rng.Bool(0.4) {
			cfg.DCache = nil
		}
		cfg.SecondCore = rng.Bool(0.3)
		if rng.Bool(0.5) {
			cfg = cfg.WithED()
		}
		s := New(cfg, uint64(i))
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, mem.SRAMBase)
		a.Movw(3, 500)
		a.Label("b")
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Loop(3, "b")
		a.Halt()
		s.LoadProgram(mustAsm(t, a))
		s.ResetCPU(mem.FlashBase)
		if _, ok := s.RunUntilHalt(10_000_000); !ok {
			t.Fatalf("config %d hung: %+v", i, cfg)
		}
		if got := s.SRAM.Read32(mem.SRAMBase); got != 500 {
			t.Fatalf("config %d wrong result %d", i, got)
		}
	}
}

func TestSoCHelpers(t *testing.T) {
	s := New(TC1797().WithED(), 1)
	// AddADC and AddFlexRay register, map and tick.
	sig := periph.NewSignal(100, 200, 10, 0, s.RNG())
	adc, _ := s.AddADC("adc0", 50, 0, sig, 9, irq.ToCPU, 0)
	fr, _ := s.AddFlexRay("fr0", 1000, 10, []int{1}, 5, 4, 10, irq.ToCPU, 0)
	s.Clock.Run(3000)
	if adc.Conversions == 0 {
		t.Error("ADC idle")
	}
	if fr.RxFrames == 0 {
		t.Error("FlexRay idle")
	}
	// Cache invalidation drops resident lines.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.FlashBase+0x1000)
	a.Ldw(2, 1, 0)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(100_000)
	before := s.CPU.Counters().Get(sim.EvDCacheMiss)
	s.InvalidateCaches()
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(100_000)
	if after := s.CPU.Counters().Get(sim.EvDCacheMiss); after <= before {
		t.Error("invalidate had no effect on the D-cache")
	}
}

func TestLoadProgramIntoPRAMAndPSPR(t *testing.T) {
	s := New(TC1797(), 1)
	// PSPR-resident program.
	a := isa.NewAsm(mem.PSPRBase)
	a.Movi(1, 7)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.PSPRBase)
	s.RunUntilHalt(1000)
	if s.CPU.Reg(1) != 7 {
		t.Error("PSPR program failed")
	}
	// PRAM-resident program bytes land in PRAM.
	pa := isa.NewAsm(mem.PRAMBase + 0x100)
	pa.Rfe()
	pp := mustAsm(t, pa)
	s.LoadProgram(pp)
	if s.PRAM.Read32(mem.PRAMBase+0x100) != pp.Words[0] {
		t.Error("PRAM load failed")
	}
	// Unloadable base panics.
	defer func() {
		if recover() == nil {
			t.Error("unmappable program must panic")
		}
	}()
	bad := isa.NewAsm(0x1000_0000)
	bad.Halt()
	s.LoadProgram(mustAsm(t, bad))
}

func TestResetCPU1WithoutSecondCorePanics(t *testing.T) {
	s := New(TC1797(), 1)
	defer func() {
		if recover() == nil {
			t.Error("ResetCPU1 without second core must panic")
		}
	}()
	s.ResetCPU1(mem.FlashBase)
}
