// Package soc assembles the full simulated microcontroller: TriCore-like
// CPU, PCP coprocessor, DMA controller, interrupt router, embedded flash,
// SRAM, scratchpads, the three buses (program LMB, data LMB, SPB), the
// peripheral set, and — on the Emulation Device variants — the Emulation
// Extension Chip consisting of EMEM and the attachment points the MCDS and
// DAP use.
//
// Presets follow the AUDO FUTURE family of the paper: TC1797-like
// (high-end) and TC1767-like (mid-range), each with an ED twin.
package soc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/dma"
	"repro/internal/emem"
	"repro/internal/flash"
	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pcp"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/tricore"
)

// Bus master identities.
const (
	MasterCPUFetch = iota
	MasterCPUData
	MasterDMA
	MasterPCP
	MasterBridgeDown // LMB→SPB bridge
	MasterBridgeUp   // SPB→LMB bridge
	MasterDAP
	MasterCPU1Fetch
	MasterCPU1Data
)

// Config describes one SoC variant.
type Config struct {
	Name       string
	CPUFreqMHz uint64 // nominal CPU clock, used by the DAP bandwidth model

	Flash       flash.Config
	SRAMSize    uint32
	SRAMLatency uint64
	PSPRSize    uint32
	DSPRSize    uint32

	ICache *cache.Config // nil = no instruction cache
	DCache *cache.Config // nil = no data cache

	CPUTiming tricore.Timing

	HasPCP   bool
	PRAMSize uint32
	HasDMA   bool

	// SecondCore adds a second TriCore core with its own scratchpads and
	// caches, sharing the buses and flash — the "increasing ... number of
	// cores" direction the paper's conclusion claims the methodology is
	// sustainable for (and which the later AURIX family realized).
	SecondCore bool

	// Emulation Device extension (EEC).
	ED          bool
	EMEMSize    uint32
	EMEMOverlay uint32 // bytes of EMEM reserved for calibration overlay
	EMEMLatency uint64
}

// TC1797 returns the high-end AUDO FUTURE preset: 180 MHz, 4 MB flash,
// 16 KB I-cache, 4 KB D-cache, PCP and DMA.
func TC1797() Config {
	fcfg := flash.DefaultConfig()
	return Config{
		Name:        "TC1797",
		CPUFreqMHz:  180,
		Flash:       fcfg,
		SRAMSize:    128 << 10,
		SRAMLatency: 2,
		PSPRSize:    40 << 10,
		DSPRSize:    128 << 10,
		ICache:      &cache.Config{Name: "icache", Size: 16 << 10, LineBytes: 32, Ways: 2, Policy: cache.LRU},
		DCache:      &cache.Config{Name: "dcache", Size: 4 << 10, LineBytes: 32, Ways: 2, Policy: cache.LRU},
		CPUTiming:   tricore.DefaultTiming(),
		HasPCP:      true,
		PRAMSize:    32 << 10,
		HasDMA:      true,
	}
}

// TC1767 returns the mid-range preset: 133 MHz, 2 MB flash, 8 KB I-cache,
// no D-cache, PCP and DMA.
func TC1767() Config {
	cfg := TC1797()
	cfg.Name = "TC1767"
	cfg.CPUFreqMHz = 133
	cfg.Flash.Size = 2 << 20
	cfg.Flash.WaitStates = 4
	cfg.SRAMSize = 64 << 10
	cfg.PSPRSize = 24 << 10
	cfg.DSPRSize = 68 << 10
	cfg.ICache = &cache.Config{Name: "icache", Size: 8 << 10, LineBytes: 32, Ways: 2, Policy: cache.LRU}
	cfg.DCache = nil
	return cfg
}

// TC1797DC returns the dual-core variant of the TC1797 preset: a second
// TriCore with its own scratchpads and caches sharing buses and flash —
// the multi-core direction the paper's conclusion points at.
func TC1797DC() Config {
	cfg := TC1797()
	cfg.Name = "TC1797DC"
	cfg.SecondCore = true
	return cfg
}

// presets is the single registry of production SoC configurations. Preset
// and PresetNames both derive from it, so the accepted names cannot drift
// between the lookup and the displayed list (the failure mode the old
// hand-kept slice invited when TC1797DC was added).
var presets = map[string]func() Config{
	"TC1797":   TC1797,
	"TC1767":   TC1767,
	"TC1797DC": TC1797DC,
}

// Preset returns the named production SoC configuration. Every CLI and
// campaign spec resolves SoC names through this single table; an unknown
// name yields an error listing every accepted one.
func Preset(name string) (Config, error) {
	f, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("soc: unknown preset %q (have %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return f(), nil
}

// PresetNames lists the names Preset accepts, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WithED returns the Emulation Device twin of cfg (TC1797 → TC1797ED with
// 512 KB EMEM, TC1767 → TC1767ED with 256 KB), per the paper's Figure 4.
func (c Config) WithED() Config {
	c.ED = true
	c.Name += "ED"
	c.EMEMSize = 512 << 10
	if c.Flash.Size <= 2<<20 {
		c.EMEMSize = 256 << 10
	}
	c.EMEMOverlay = c.EMEMSize / 4
	c.EMEMLatency = 2
	return c
}

// SoC is an assembled system.
type SoC struct {
	Cfg   Config
	Clock *sim.Clock

	CPU    *tricore.CPU
	CPU1   *tricore.CPU // nil unless Cfg.SecondCore
	PCP    *pcp.PCP     // nil unless Cfg.HasPCP
	DMA    *dma.Controller
	Router *irq.Router

	Flash *flash.Flash
	SRAM  *mem.RAM
	PSPR  *mem.RAM
	DSPR  *mem.RAM
	PSPR1 *mem.RAM // nil unless Cfg.SecondCore
	DSPR1 *mem.RAM
	PRAM  *mem.RAM

	PLMB *bus.Bus
	DLMB *bus.Bus
	SPB  *bus.Bus

	EMEM    *emem.EMEM    // nil unless Cfg.ED
	Overlay *emem.Overlay // flash data port wrapper, nil unless Cfg.ED

	// Decoder is the decode-once basic-block cache shared by the TriCore
	// cores (the PCP core decodes per-word: its PRAM doubles as its data
	// scratchpad, so code there is trivially self-modifiable). Chained
	// dispatch (DecodeChained) by default; SetBlockDecode selects the mode.
	Decoder *isa.Decoder

	Timers  []*periph.Timer
	ADCs    []*periph.ADC
	CANs    []*periph.CANNode
	FlexRay []*periph.FlexRayNode

	periphNext uint32
	rng        *sim.RNG
}

// New assembles a SoC from cfg. seed drives all stochastic peripherals.
func New(cfg Config, seed uint64) *SoC {
	s := &SoC{
		Cfg:        cfg,
		Clock:      sim.NewClock(),
		Router:     irq.New(),
		periphNext: mem.PeriphBase,
		rng:        sim.NewRNG(seed),
	}

	s.Flash = flash.New(cfg.Flash)
	s.Decoder = isa.NewDecoder(isa.DefaultBlockCacheSize)
	// Any write that can change code must invalidate decoded blocks. Flash
	// is fetched through both its cached and uncached views, so a written
	// window invalidates under both keys.
	s.Flash.OnWrite = func(addr uint32, n int) {
		cached := mem.CachedView(addr)
		s.Decoder.InvalidateRange(cached, uint32(n))
		s.Decoder.InvalidateRange(cached-mem.DeltaUncachedToCached, uint32(n))
	}
	s.SRAM = mem.NewRAM("lmu", mem.SRAMBase, cfg.SRAMSize, cfg.SRAMLatency)
	s.PSPR = mem.NewRAM("pspr", mem.PSPRBase, cfg.PSPRSize, 0)
	s.DSPR = mem.NewRAM("dspr", mem.DSPRBase, cfg.DSPRSize, 0)

	s.PLMB = bus.New("plmb", 1)
	s.DLMB = bus.New("dlmb", 1)
	s.SPB = bus.New("spb", 2)

	// Program bus: flash code port, cached and uncached views.
	s.PLMB.Map(mem.FlashBase, cfg.Flash.Size, s.Flash.CodePort())
	s.PLMB.Map(mem.FlashUncach, cfg.Flash.Size, bus.NewAlias(s.Flash.CodePort(), mem.DeltaUncachedToCached))

	// Data bus: flash data port (wrapped by the calibration overlay on
	// EDs), SRAM (both views), EMEM segment, bridge to SPB.
	var dataPort bus.Target = s.Flash.DataPort()
	if cfg.ED {
		s.EMEM = emem.New(cfg.EMEMSize, cfg.EMEMOverlay, cfg.EMEMLatency)
		s.Overlay = emem.NewOverlay(dataPort, s.EMEM)
		s.Overlay.OnRemap = s.Decoder.InvalidateAll
		s.Overlay.OnWrite = s.Flash.OnWrite
		dataPort = s.Overlay
		// Data writes landing in the overlay partition can change what an
		// overlay-mapped flash window reads as; watch them.
		s.DLMB.Map(mem.EMEMBase, s.EMEM.Size(), codeWriteWatch{
			t:   s.EMEM.RAM,
			dec: s.Decoder,
			lim: mem.EMEMBase + s.EMEM.OverlayBytes(),
		})
	}
	s.DLMB.Map(mem.FlashBase, cfg.Flash.Size, dataPort)
	s.DLMB.Map(mem.FlashUncach, cfg.Flash.Size, bus.NewAlias(dataPort, mem.DeltaUncachedToCached))
	s.DLMB.Map(mem.SRAMBase, cfg.SRAMSize, s.SRAM)
	s.DLMB.Map(mem.SRAMUncach, cfg.SRAMSize, bus.NewAlias(s.SRAM, mem.DeltaUncachedToCached))
	// The whole 0xF segment (peripherals and PRAM) is bridged down to SPB.
	s.DLMB.Map(mem.PeriphBase, 0x1000_0000, bus.NewBridge("lfi-down", s.SPB, MasterBridgeDown, 1))

	// SPB: bridge up to the data LMB covering the memory segments
	// (0x8..0xB: flash and SRAM, both views) for DMA and PCP masters.
	// Peripherals and PRAM are mapped on the SPB as they are added.
	s.SPB.Map(mem.FlashBase, 0x4000_0000, bus.NewBridge("lfi-up", s.DLMB, MasterBridgeUp, 1))

	// CPU with caches counting into the core counter set.
	ctrs := new(sim.Counters)
	var ic, dc *cache.Cache
	if cfg.ICache != nil {
		ic = cache.New(*cfg.ICache, "i", ctrs)
	}
	if cfg.DCache != nil {
		dc = cache.New(*cfg.DCache, "d", ctrs)
	}
	s.CPU = tricore.New("tricore", 0,
		tricore.PMI{ICache: ic, PSPR: s.PSPR, Bus: s.PLMB, Master: MasterCPUFetch, Peek: s.Peek},
		tricore.DMI{DCache: dc, DSPR: s.DSPR, Bus: s.DLMB, Master: MasterCPUData, Peek: s.Peek},
		cfg.CPUTiming, ctrs)
	s.CPU.IRQ = s.Router.View(irq.ToCPU)
	s.CPU.SetDecoder(s.Decoder)
	s.CPU.SetChaining(true)

	if cfg.SecondCore {
		s.PSPR1 = mem.NewRAM("pspr1", mem.PSPR1Base, cfg.PSPRSize, 0)
		s.DSPR1 = mem.NewRAM("dspr1", mem.DSPR1Base, cfg.DSPRSize, 0)
		ctrs1 := new(sim.Counters)
		var ic1, dc1 *cache.Cache
		if cfg.ICache != nil {
			c := *cfg.ICache
			c.Name = "icache1"
			ic1 = cache.New(c, "i", ctrs1)
		}
		if cfg.DCache != nil {
			c := *cfg.DCache
			c.Name = "dcache1"
			dc1 = cache.New(c, "d", ctrs1)
		}
		s.CPU1 = tricore.New("tricore1", 1,
			tricore.PMI{ICache: ic1, PSPR: s.PSPR1, Bus: s.PLMB, Master: MasterCPU1Fetch, Peek: s.Peek},
			tricore.DMI{DCache: dc1, DSPR: s.DSPR1, Bus: s.DLMB, Master: MasterCPU1Data, Peek: s.Peek},
			cfg.CPUTiming, ctrs1)
		s.CPU1.IRQ = s.Router.View(irq.ToCPU1)
		s.CPU1.SetDecoder(s.Decoder)
		s.CPU1.SetChaining(true)
	}

	if cfg.HasPCP {
		s.PRAM = mem.NewRAM("pram", mem.PRAMBase, cfg.PRAMSize, 1)
		s.SPB.Map(mem.PRAMBase, cfg.PRAMSize, s.PRAM)
		core := tricore.New("pcp", 1,
			tricore.PMI{PSPR: s.PRAM, Bus: s.SPB, Master: MasterPCP, Peek: s.Peek},
			tricore.DMI{DSPR: s.PRAM, Bus: s.SPB, Master: MasterPCP, Peek: s.Peek},
			pcp.Timing(), nil)
		s.PCP = pcp.New(core, s.PRAM, s.Router)
	}
	if cfg.HasDMA {
		s.DMA = dma.New("dma", s.SPB, MasterDMA, s.Router)
	}

	// Step order fixes same-cycle priorities: CPU first, then PCP, DMA,
	// and peripherals last (their requests become visible next cycle).
	s.Clock.Attach("cpu", s.CPU)
	if s.CPU1 != nil {
		s.Clock.Attach("cpu1", s.CPU1)
	}
	if s.PCP != nil {
		s.Clock.Attach("pcp", s.PCP)
	}
	if s.DMA != nil {
		s.Clock.Attach("dma", s.DMA)
	}
	return s
}

// codeWriteWatch wraps a bus target and invalidates the decoded-block
// cache on any write below lim — the EMEM overlay partition, whose content
// can be fetched as code through overlay-mapped flash windows. Reads pass
// through untouched.
type codeWriteWatch struct {
	t   bus.Target
	dec *isa.Decoder
	lim uint32
}

func (w codeWriteWatch) Name() string { return w.t.Name() }

func (w codeWriteWatch) Access(grant uint64, req *bus.Request) uint64 {
	if req.Write && req.Addr < w.lim {
		w.dec.InvalidateAll()
	}
	return w.t.Access(grant, req)
}

// DecodeMode selects how the TriCore cores dispatch instructions. All
// modes are bit-for-bit identical in simulated behaviour — only wall-clock
// cost per simulated cycle differs; the ladder exists so tests can prove
// it (it mirrors sim.Clock.SetWakeScheduling).
type DecodeMode uint8

const (
	// DecodeReference: per-word decode, no block cache — the determinism
	// reference mode.
	DecodeReference DecodeMode = iota
	// DecodeBlock: decode-once basic-block dispatch with superinstruction
	// fusion, every block entry through the PC-keyed cache lookup.
	DecodeBlock
	// DecodeChained: block dispatch plus threaded handler dispatch and
	// direct block-to-block chain links across taken branches. The
	// default.
	DecodeChained
)

// String names the decode mode.
func (m DecodeMode) String() string {
	switch m {
	case DecodeReference:
		return "reference"
	case DecodeBlock:
		return "block"
	case DecodeChained:
		return "chained"
	}
	return "??"
}

// SetBlockDecode selects the dispatch mode on every TriCore core.
func (s *SoC) SetBlockDecode(mode DecodeMode) {
	d := s.Decoder
	if mode == DecodeReference {
		d = nil
	}
	chain := mode == DecodeChained
	s.CPU.SetDecoder(d)
	s.CPU.SetChaining(chain)
	if s.CPU1 != nil {
		s.CPU1.SetDecoder(d)
		s.CPU1.SetChaining(chain)
	}
}

// BlockDecode reports the dispatch mode the cores are running in.
func (s *SoC) BlockDecode() DecodeMode {
	if s.CPU.Decoder() == nil {
		return DecodeReference
	}
	if s.CPU.Chaining() {
		return DecodeChained
	}
	return DecodeBlock
}

// Peek implements the timing-free backdoor read used by caches, fetch and
// trace decoding.
func (s *SoC) Peek(addr uint32, p []byte) {
	a := mem.CachedView(addr)
	if s.Overlay != nil {
		if red, ok := s.Overlay.Resolve(a, len(p)); ok {
			a = red
		}
	}
	switch {
	case a >= mem.FlashBase && uint64(a)+uint64(len(p)) <= uint64(mem.FlashBase)+uint64(s.Cfg.Flash.Size):
		s.Flash.ReadDirect(a, p)
	case s.SRAM.Contains(a, len(p)):
		s.SRAM.Read(a, p)
	case s.PSPR.Contains(a, len(p)):
		s.PSPR.Read(a, p)
	case s.DSPR.Contains(a, len(p)):
		s.DSPR.Read(a, p)
	case s.PSPR1 != nil && s.PSPR1.Contains(a, len(p)):
		s.PSPR1.Read(a, p)
	case s.DSPR1 != nil && s.DSPR1.Contains(a, len(p)):
		s.DSPR1.Read(a, p)
	case s.PRAM != nil && s.PRAM.Contains(a, len(p)):
		s.PRAM.Read(a, p)
	case s.EMEM != nil && s.EMEM.RAM.Contains(a, len(p)):
		s.EMEM.RAM.Read(a, p)
	default:
		panic(fmt.Sprintf("soc %s: peek of unmapped address %#08x", s.Cfg.Name, addr))
	}
}

// LoadProgram places an assembled program into the memory its base address
// selects (flash, PSPR, or PRAM).
func (s *SoC) LoadProgram(p *isa.Program) {
	switch {
	case mem.Segment(p.Base) == mem.FlashBase || mem.Segment(p.Base) == mem.FlashUncach:
		s.Flash.Load(mem.CachedView(p.Base), p.Bytes())
	case s.PSPR.Contains(p.Base, int(p.Size())):
		s.PSPR.Write(p.Base, p.Bytes())
		s.Decoder.InvalidateRange(p.Base, p.Size())
	case s.PSPR1 != nil && s.PSPR1.Contains(p.Base, int(p.Size())):
		s.PSPR1.Write(p.Base, p.Bytes())
		s.Decoder.InvalidateRange(p.Base, p.Size())
	case s.PRAM != nil && s.PRAM.Contains(p.Base, int(p.Size())):
		s.PRAM.Write(p.Base, p.Bytes())
	default:
		panic(fmt.Sprintf("soc: cannot load program at %#08x", p.Base))
	}
}

// InvalidateCaches clears the CPU caches and the decoded-block cache.
// Calibration tools do this after remapping overlay pages: the tag-only
// cache model otherwise keeps serving pre-overlay data through the
// backdoor, and decoded blocks would keep pre-overlay instructions.
func (s *SoC) InvalidateCaches() {
	if s.CPU.PMI.ICache != nil {
		s.CPU.PMI.ICache.InvalidateAll()
	}
	if s.CPU.DMI.DCache != nil {
		s.CPU.DMI.DCache.InvalidateAll()
	}
	s.Decoder.InvalidateAll()
}

// ResetCPU starts the TriCore at entry with the stack at the top of DSPR.
func (s *SoC) ResetCPU(entry uint32) {
	s.CPU.Reset(entry, mem.DSPRBase+s.Cfg.DSPRSize-16)
}

// ResetCPU1 starts the second core (SecondCore configurations only).
func (s *SoC) ResetCPU1(entry uint32) {
	if s.CPU1 == nil {
		panic("soc: no second core configured")
	}
	s.CPU1.Reset(entry, mem.DSPR1Base+s.Cfg.DSPRSize-16)
}

// RunUntilHalt advances the system until the TriCore halts or limit cycles
// elapse; it returns the cycles executed and whether the CPU halted.
func (s *SoC) RunUntilHalt(limit uint64) (uint64, bool) {
	return s.Clock.RunUntil(s.CPU.Halted, limit)
}

// allocPeriph reserves a register window on the SPB.
func (s *SoC) allocPeriph() uint32 {
	base := s.periphNext
	s.periphNext += periph.RegSize
	return base
}

// AddTimer creates a timer peripheral raising an SRN with the given
// priority/provider/vector every period cycles.
func (s *SoC) AddTimer(name string, period, offset uint64, prio uint32, prov irq.Provider, vector uint32) (*periph.Timer, *irq.SRN) {
	srn := s.Router.AddSRN(name, prio, prov, vector)
	t := periph.NewTimer(name, s.allocPeriph(), period, offset, s.Router, srn)
	s.SPB.Map(t.Base, periph.RegSize, t)
	s.Clock.Attach(name, t)
	s.Timers = append(s.Timers, t)
	return t, srn
}

// AddADC creates an ADC sampling a synthetic signal every period cycles.
func (s *SoC) AddADC(name string, period, offset uint64, sig *periph.Signal, prio uint32, prov irq.Provider, vector uint32) (*periph.ADC, *irq.SRN) {
	srn := s.Router.AddSRN(name, prio, prov, vector)
	a := periph.NewADC(name, s.allocPeriph(), period, offset, sig, s.Router, srn)
	s.SPB.Map(a.Base, periph.RegSize, a)
	s.Clock.Attach(name, a)
	s.ADCs = append(s.ADCs, a)
	return a, srn
}

// AddCAN creates a CAN-like message source.
func (s *SoC) AddCAN(name string, meanGap uint64, depth int, prio uint32, prov irq.Provider, vector uint32) (*periph.CANNode, *irq.SRN) {
	srn := s.Router.AddSRN(name, prio, prov, vector)
	c := periph.NewCANNode(name, s.allocPeriph(), meanGap, depth, s.rng.Fork(uint64(prio)), s.Router, srn)
	s.SPB.Map(c.Base, periph.RegSize, c)
	s.Clock.Attach(name, c)
	s.CANs = append(s.CANs, c)
	return c, srn
}

// AddFlexRay creates a time-triggered FlexRay-like node with the given
// static schedule.
func (s *SoC) AddFlexRay(name string, cycleLen uint64, numSlots int, rxSlots []int,
	txSlot, depth int, prio uint32, prov irq.Provider, vector uint32) (*periph.FlexRayNode, *irq.SRN) {
	srn := s.Router.AddSRN(name, prio, prov, vector)
	f := periph.NewFlexRay(name, s.allocPeriph(), cycleLen, numSlots, rxSlots,
		txSlot, depth, s.rng.Fork(uint64(prio)^0xF1), s.Router, srn)
	s.SPB.Map(f.Base, periph.RegSize, f)
	s.Clock.Attach(name, f)
	s.FlexRay = append(s.FlexRay, f)
	return f, srn
}

// RNG returns the SoC's seed-derived random source (for workload builders
// that need additional deterministic randomness).
func (s *SoC) RNG() *sim.RNG { return s.rng }
