package soc

import (
	"strings"
	"testing"

	"repro/internal/emem"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestPresetLookup(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("Preset(%q).Name = %q", name, cfg.Name)
		}
	}
	_, err := Preset("TC9999")
	if err == nil {
		t.Fatal("unknown preset did not error")
	}
	for _, name := range PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid preset %q", err, name)
		}
	}
	names := PresetNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PresetNames not sorted: %v", names)
		}
	}
}

func TestSetBlockDecode(t *testing.T) {
	run := func(mode DecodeMode) (uint64, uint64, uint32) {
		s := New(TC1797(), 1)
		if s.BlockDecode() != DecodeChained {
			t.Fatalf("default decode mode = %v, want chained", s.BlockDecode())
		}
		s.SetBlockDecode(mode)
		if s.BlockDecode() != mode {
			t.Fatalf("BlockDecode() = %v after SetBlockDecode(%v)", s.BlockDecode(), mode)
		}
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, mem.SRAMBase)
		a.Movw(3, 3000)
		a.Label("body")
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Loop(3, "body")
		a.Halt()
		s.LoadProgram(mustAsm(t, a))
		s.ResetCPU(mem.FlashBase)
		cy, ok := s.RunUntilHalt(10_000_000)
		if !ok {
			t.Fatal("did not halt")
		}
		if mode != DecodeReference {
			// The hot loop may be served entirely from the executor's block
			// hint (no repeated lookups), but the block must have been built.
			if st := s.Decoder.Stats(); st.Misses == 0 || s.Decoder.Len() == 0 {
				t.Errorf("block cache unused: stats %+v, len %d", st, s.Decoder.Len())
			}
		}
		return cy, s.CPU.Counters().Get(sim.EvInstrExecuted), s.CPU.Reg(2)
	}
	cyRef, inRef, r2Ref := run(DecodeReference)
	for _, mode := range []DecodeMode{DecodeBlock, DecodeChained} {
		cy, in, r2 := run(mode)
		if cy != cyRef || in != inRef || r2 != r2Ref {
			t.Errorf("%v changed behaviour: (%d,%d,%d) vs reference (%d,%d,%d)",
				mode, cy, in, r2, cyRef, inRef, r2Ref)
		}
	}
}

// TestBlockDecodeInvalidationHooks exercises every invalidation edge the
// SoC assembly wires: program loads, overlay remaps, and bus writes into
// the EMEM overlay partition.
func TestBlockDecodeInvalidationHooks(t *testing.T) {
	s := New(TC1797().WithED(), 1)

	a := isa.NewAsm(mem.FlashBase)
	a.Movi(1, 5)
	a.Halt()
	s.LoadProgram(mustAsm(t, a))
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(10_000)
	if s.Decoder.Len() == 0 {
		t.Fatal("no blocks cached after a run")
	}

	// Reloading the image over the same range must drop the stale block
	// (flash.Load → OnWrite → InvalidateRange) and execute the new code.
	gen := s.Decoder.Gen()
	b := isa.NewAsm(mem.FlashBase)
	b.Movi(1, 9)
	b.Halt()
	s.LoadProgram(mustAsm(t, b))
	if s.Decoder.Gen() == gen {
		t.Fatal("program reload did not bump the decoder generation")
	}
	s.ResetCPU(mem.FlashBase)
	s.RunUntilHalt(10_000)
	if got := s.CPU.Reg(1); got != 9 {
		t.Fatalf("r1 = %d after reload, want 9 (stale block executed)", got)
	}

	// Overlay remaps change what flash addresses read as: InvalidateAll.
	gen = s.Decoder.Gen()
	s.Overlay.MapPage(emem.Page{FlashAddr: mem.FlashBase + 0x40000, EmemOff: 0, Size: 64})
	if s.Decoder.Gen() == gen || s.Decoder.Len() != 0 {
		t.Fatal("overlay remap did not invalidate the block cache")
	}

	// A CPU store into the EMEM overlay partition goes through the
	// code-write watch.
	c := isa.NewAsm(mem.FlashBase)
	c.Movw(1, mem.EMEMBase+0x80)
	c.Movi(2, 1)
	c.Stw(2, 1, 0)
	c.Halt()
	s.LoadProgram(mustAsm(t, c))
	s.ResetCPU(mem.FlashBase)
	gen = s.Decoder.Gen()
	s.RunUntilHalt(100_000)
	if s.Decoder.Gen() == gen {
		t.Fatal("EMEM overlay-partition write did not invalidate the block cache")
	}

	// LoadProgram into PSPR invalidates the written range.
	d := isa.NewAsm(mem.PSPRBase)
	d.Movi(1, 3)
	d.Halt()
	s.LoadProgram(mustAsm(t, d))
	s.ResetCPU(mem.PSPRBase)
	s.RunUntilHalt(10_000)
	gen = s.Decoder.Gen()
	d2 := isa.NewAsm(mem.PSPRBase)
	d2.Movi(1, 4)
	d2.Halt()
	s.LoadProgram(mustAsm(t, d2))
	if s.Decoder.Gen() == gen {
		t.Fatal("PSPR program load did not invalidate the block cache")
	}
	s.ResetCPU(mem.PSPRBase)
	s.RunUntilHalt(10_000)
	if got := s.CPU.Reg(1); got != 4 {
		t.Fatalf("r1 = %d after PSPR reload, want 4", got)
	}

	// InvalidateCaches covers the decoder too.
	s.Decoder.Block(mem.FlashBase, func(uint32) uint32 { return 0 })
	s.InvalidateCaches()
	if s.Decoder.Len() != 0 {
		t.Fatal("InvalidateCaches left decoded blocks behind")
	}
}
