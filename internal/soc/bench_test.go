package soc

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BenchmarkSimThroughput measures raw simulation speed (simulated cycles
// per host second) on a flash-resident mixed loop — the figure that
// determines how large a fleet evaluation is practical.
func BenchmarkSimThroughput(b *testing.B) {
	s := New(TC1797(), 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 1<<30)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	c := s.CPU.Counters()
	b.ReportMetric(float64(c.Get(sim.EvInstrExecuted))/float64(b.N), "instr/cycle")
}

// BenchmarkSoCBuild measures system assembly cost (per evaluation run).
func BenchmarkSoCBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(TC1797().WithED(), uint64(i))
		if s.CPU == nil {
			b.Fatal("no CPU")
		}
	}
}
