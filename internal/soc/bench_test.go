package soc

import (
	"fmt"
	"testing"

	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
)

// BenchmarkSimThroughput measures raw simulation speed (simulated cycles
// per host second) on a flash-resident mixed loop — the figure that
// determines how large a fleet evaluation is practical.
func BenchmarkSimThroughput(b *testing.B) {
	s := New(TC1797(), 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 1<<30)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	c := s.CPU.Counters()
	b.ReportMetric(float64(c.Get(sim.EvInstrExecuted))/float64(b.N), "instr/cycle")
}

// periphHeavySoC assembles a TC1797 with a fleet-scale peripheral
// complement — 16 timers, 8 ADCs, 4 CAN nodes, 2 FlexRay nodes on sparse
// schedules — plus the usual flash-resident CPU loop. This is the mix the
// wake scheduler targets: most peripherals are idle on most cycles, so
// the always-on kernel burns its time delivering no-op Ticks.
func periphHeavySoC(b *testing.B) *SoC {
	b.Helper()
	s := New(TC1797(), 1)
	prio := uint32(20)
	for i := 0; i < 16; i++ {
		s.AddTimer(fmt.Sprintf("bt%d", i), 2000+421*uint64(i), 137*uint64(i), prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 8; i++ {
		sig := periph.NewSignal(0, 4095, 997, 10, s.RNG().Fork(uint64(0x51+i)))
		s.AddADC(fmt.Sprintf("ba%d", i), 3000+389*uint64(i), 71*uint64(i), sig, prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 4; i++ {
		s.AddCAN(fmt.Sprintf("bc%d", i), 4000+513*uint64(i), 32, prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 2; i++ {
		s.AddFlexRay(fmt.Sprintf("bf%d", i), 8000, 8, []int{1, 5}, 3, 16, prio, irq.ToCPU, 0)
		prio++
	}

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 1<<30)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	return s
}

func benchHotLoop(b *testing.B, sched, block bool) {
	s := periphHeavySoC(b)
	s.Clock.SetWakeScheduling(sched)
	s.SetBlockDecode(block)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSoCHotLoop is the PR5 acceptance benchmark: simulated cycles
// per host second on the periph-heavy mix with the wake scheduler and the
// block decoder on (the defaults). Its NoSched twin runs the identical
// system with the scheduler forced off, and the NoBlock twin with per-word
// decode forced, so one `go test -bench SoCHotLoop` run carries its own
// before/after comparisons for both optimizations.
func BenchmarkSoCHotLoop(b *testing.B)        { benchHotLoop(b, true, true) }
func BenchmarkSoCHotLoopNoSched(b *testing.B) { benchHotLoop(b, false, true) }
func BenchmarkSoCHotLoopNoBlock(b *testing.B) { benchHotLoop(b, true, false) }

// BenchmarkSoCBuild measures system assembly cost (per evaluation run).
func BenchmarkSoCBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(TC1797().WithED(), uint64(i))
		if s.CPU == nil {
			b.Fatal("no CPU")
		}
	}
}
