package soc

import (
	"fmt"
	"testing"

	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
)

// BenchmarkSimThroughput measures raw simulation speed (simulated cycles
// per host second) on a flash-resident mixed loop — the figure that
// determines how large a fleet evaluation is practical.
func BenchmarkSimThroughput(b *testing.B) {
	s := New(TC1797(), 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 1<<30)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	c := s.CPU.Counters()
	b.ReportMetric(float64(c.Get(sim.EvInstrExecuted))/float64(b.N), "instr/cycle")
}

// periphHeavySoC assembles a TC1797 with a fleet-scale peripheral
// complement — 16 timers, 8 ADCs, 4 CAN nodes, 2 FlexRay nodes on sparse
// schedules — plus the usual flash-resident CPU loop. This is the mix the
// wake scheduler targets: most peripherals are idle on most cycles, so
// the always-on kernel burns its time delivering no-op Ticks.
func periphHeavySoC(b *testing.B) *SoC {
	b.Helper()
	s := New(TC1797(), 1)
	prio := uint32(20)
	for i := 0; i < 16; i++ {
		s.AddTimer(fmt.Sprintf("bt%d", i), 2000+421*uint64(i), 137*uint64(i), prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 8; i++ {
		sig := periph.NewSignal(0, 4095, 997, 10, s.RNG().Fork(uint64(0x51+i)))
		s.AddADC(fmt.Sprintf("ba%d", i), 3000+389*uint64(i), 71*uint64(i), sig, prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 4; i++ {
		s.AddCAN(fmt.Sprintf("bc%d", i), 4000+513*uint64(i), 32, prio, irq.ToCPU, 0)
		prio++
	}
	for i := 0; i < 2; i++ {
		s.AddFlexRay(fmt.Sprintf("bf%d", i), 8000, 8, []int{1, 5}, 3, 16, prio, irq.ToCPU, 0)
		prio++
	}

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 1<<30)
	a.Label("body")
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	return s
}

func benchHotLoop(b *testing.B, sched bool, mode DecodeMode) {
	s := periphHeavySoC(b)
	s.Clock.SetWakeScheduling(sched)
	s.SetBlockDecode(mode)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSoCHotLoop is the PR5 acceptance benchmark: simulated cycles
// per host second on the periph-heavy mix with the wake scheduler and
// chained block dispatch on (the defaults). Its NoSched twin runs the
// identical system with the scheduler forced off, the NoChain twin with
// plain block dispatch, and the NoBlock twin with per-word decode forced,
// so one `go test -bench SoCHotLoop` run carries its own before/after
// comparisons for every optimization rung.
func BenchmarkSoCHotLoop(b *testing.B)        { benchHotLoop(b, true, DecodeChained) }
func BenchmarkSoCHotLoopNoSched(b *testing.B) { benchHotLoop(b, false, DecodeChained) }
func BenchmarkSoCHotLoopNoChain(b *testing.B) { benchHotLoop(b, true, DecodeBlock) }
func BenchmarkSoCHotLoopNoBlock(b *testing.B) { benchHotLoop(b, true, DecodeReference) }

// branchySoC builds the branch-proof acceptance system: a ring of
// single-instruction blocks closed by zero-overhead LOOP back edges, so
// nearly every simulated cycle crosses a block boundary via taken control
// flow. Block-entry lookup cost dominates and the chained-vs-block delta
// is isolated: each ring block has exactly one successor, the best case
// for the bounded chain slots and the worst case for the PC-keyed map.
// The ring lives in the program scratchpad — the paper's flash-avoidance
// mapping for hot control code — so fetch timing stays out of the way of
// what this benchmark isolates.
func branchySoC(b *testing.B) *SoC {
	b.Helper()
	s := New(TC1797(), 1)
	// Ring size: enough distinct blocks that the PC-keyed map works at a
	// realistic branchy-code footprint (hundreds of live blocks) instead
	// of a toy L1-resident handful, while staying well under the decoder's
	// DefaultBlockCacheSize so neither mode thrashes decode.
	const ring = 500
	a := isa.NewAsm(mem.PSPRBase)
	a.Movw(3, 1<<30)
	a.J(fmt.Sprintf("ring%d", ring))
	// Restart edge: the only forward hop per revolution.
	a.Label("ring0")
	a.J(fmt.Sprintf("ring%d", ring))
	// LOOP branches backward, so the ring descends ringN -> ... -> ring0.
	for i := 1; i <= ring; i++ {
		a.Label(fmt.Sprintf("ring%d", i))
		a.Loop(3, fmt.Sprintf("ring%d", i-1))
	}
	a.Halt() // counter exhausted: the last LOOP falls through here
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	return s
}

func benchBranchy(b *testing.B, mode DecodeMode) {
	s := branchySoC(b)
	s.SetBlockDecode(mode)
	b.ResetTimer()
	s.Clock.Run(uint64(b.N))
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSoCBranchy is the PR10 acceptance benchmark: the branch-heavy
// kernel under chained dispatch, with twins pinning plain block dispatch
// and the per-word reference so one run carries the chaining delta.
func BenchmarkSoCBranchy(b *testing.B)        { benchBranchy(b, DecodeChained) }
func BenchmarkSoCBranchyBlock(b *testing.B)   { benchBranchy(b, DecodeBlock) }
func BenchmarkSoCBranchyNoBlock(b *testing.B) { benchBranchy(b, DecodeReference) }

// BenchmarkSoCBuild measures system assembly cost (per evaluation run).
func BenchmarkSoCBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(TC1797().WithED(), uint64(i))
		if s.CPU == nil {
			b.Fatal("no CPU")
		}
	}
}
