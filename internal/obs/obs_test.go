package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("a.count") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("a.level")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 3.5 {
		t.Errorf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax = %v, want 9", got)
	}
}

func TestDisabledRegistryIsFree(t *testing.T) {
	var r *Registry // == Disabled
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("disabled registry must return nil handles")
	}
	// Every operation on nil handles must be a safe no-op.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handles must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("disabled snapshot must be empty")
	}
	if Disabled != nil {
		t.Error("Disabled must be the nil registry")
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []uint64{1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1110 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	// p50 upper bound must cover the median (3..4) and p95 the tail.
	if s.P50 < 3 || s.P50 > 7 {
		t.Errorf("p50 = %d", s.P50)
	}
	if s.P95 < 1000 || s.P95 > 2047 {
		t.Errorf("p95 = %d", s.P95)
	}
}

func TestHistogramZeroAndExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(math.MaxUint64)
	s := h.snapshot()
	if s.Min != 0 {
		t.Errorf("min = %d, want 0", s.Min)
	}
	if s.Max != math.MaxUint64 {
		t.Errorf("max = %d", s.Max)
	}
	if s.P95 != math.MaxUint64 {
		t.Errorf("p95 = %d", s.P95)
	}
}

func TestSnapshotDeterministicOrdering(t *testing.T) {
	r := New()
	// Create in non-sorted order.
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Counter("m").Add(3)
	r.Gauge("beta").Set(1)
	r.Gauge("alpha").Set(2)
	r.Histogram("h2").Observe(1)
	r.Histogram("h1").Observe(2)

	s := r.Snapshot()
	wantC := []string{"a", "m", "z"}
	for i, c := range s.Counters {
		if c.Name != wantC[i] {
			t.Errorf("counter[%d] = %s, want %s", i, c.Name, wantC[i])
		}
	}
	if s.Gauges[0].Name != "alpha" || s.Histograms[0].Name != "h1" {
		t.Error("gauges/histograms not sorted by name")
	}

	// Two snapshots of the same state must serialize identically.
	j1, _ := json.Marshal(r.Snapshot())
	j2, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(j1, j2) {
		t.Error("snapshot serialization is not deterministic")
	}

	if v, ok := s.Counter("m"); !ok || v != 3 {
		t.Errorf("Counter(m) = %d,%v", v, ok)
	}
	if v, ok := s.Gauge("alpha"); !ok || v != 2 {
		t.Errorf("Gauge(alpha) = %v,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("missing counter reported present")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("dist")
			g := r.Gauge("hw")
			for k := 0; k < 1000; k++ {
				c.Inc()
				h.Observe(uint64(k))
				g.SetMax(float64(k))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("hw").Value(); got != 999 {
		t.Errorf("high-water gauge = %v, want 999", got)
	}
	s := r.Histogram("dist").snapshot()
	if s.Count != 8000 || s.Min != 0 || s.Max != 999 {
		t.Errorf("hist = %+v", s)
	}
}

func TestServeHTTP(t *testing.T) {
	r := New()
	r.Counter("req.count").Add(5)
	r.Gauge("ring.level").Set(0.25)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("endpoint does not serve valid JSON: %v", err)
	}
	if v, ok := s.Counter("req.count"); !ok || v != 5 {
		t.Errorf("served snapshot = %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(64)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	// Buckets is a prom-exposition-only field excluded from the JSON
	// wire form, so it does not survive the round trip.
	want := r.Snapshot()
	for i := range want.Histograms {
		want.Histograms[i].Buckets = nil
	}
	if !reflect.DeepEqual(back, want) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", back, want)
	}
}
