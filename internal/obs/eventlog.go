package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// EventLog is the campaign flight recorder: a bounded ring of
// structured events (cell start/done/retry, shard respawn/hang, torn
// records, ...) that a live endpoint can snapshot or stream while the
// campaign runs. Like every obs surface, a nil *EventLog is disabled:
// every method is a no-op returning zero values, so call sites append
// unconditionally.
//
// The ring's semantics are deterministic even though event timing is
// not: sequence numbers are assigned densely (1, 2, 3, ...) under one
// lock, the ring always holds exactly the last Cap() events by
// sequence, and Snapshot/Since return events in sequence order. Two
// campaigns emitting the same events in the same order therefore
// produce identical logs modulo the wall-clock stamps, and a wrapped
// ring never reorders or loses an event silently — the drop count is
// part of the snapshot.
type EventLog struct {
	mu      sync.Mutex
	start   time.Time
	seq     uint64
	dropped uint64
	buf     []Event // ring storage; len(buf) <= cap
	head    int     // index of the oldest event when the ring is full
	size    int     // fixed capacity
}

// DefaultEventLogSize is the ring capacity when NewEventLog is given a
// non-positive one.
const DefaultEventLogSize = 4096

// Event is one structured campaign event.
type Event struct {
	// Seq is the dense, monotonically increasing sequence number; the
	// SSE stream uses it as the event id so clients can resume.
	Seq uint64 `json:"seq"`
	// TUs is the event time in microseconds since the log was created
	// (relative time keeps the log free of wall-clock skew concerns).
	TUs int64 `json:"t_us"`
	// Kind names the event: cell_start, cell_done, cell_retry,
	// cell_failed, shard_spawn, shard_respawn, shard_hang, shard_crash,
	// shard_torn, shard_dup, ...
	Kind string `json:"kind"`
	// Shard is the shard ordinal the event belongs to; -1 for events of
	// the in-process (unsharded) tier or the campaign as a whole.
	Shard int `json:"shard"`
	// Cell is the cell ID for per-cell events, empty otherwise.
	Cell string `json:"cell,omitempty"`
	// Msg is free-form human-readable detail.
	Msg string `json:"msg,omitempty"`
}

// NewEventLog returns an enabled event log holding the last capacity
// events (DefaultEventLogSize when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{start: time.Now(), size: capacity}
}

// Append records one event, stamping its sequence number and relative
// time, and returns the assigned sequence (0 on a nil log).
func (l *EventLog) Append(kind string, shard int, cell, msg string) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := Event{
		Seq:   l.seq,
		TUs:   time.Since(l.start).Microseconds(),
		Kind:  kind,
		Shard: shard,
		Cell:  cell,
		Msg:   msg,
	}
	if len(l.buf) < l.size {
		l.buf = append(l.buf, e)
		return e.Seq
	}
	// Ring full: overwrite the oldest slot and advance the head.
	l.buf[l.head] = e
	l.head = (l.head + 1) % l.size
	l.dropped++
	return e.Seq
}

// Appendf is Append with a formatted message.
func (l *EventLog) Appendf(kind string, shard int, cell, format string, args ...any) uint64 {
	if l == nil {
		return 0
	}
	return l.Append(kind, shard, cell, fmt.Sprintf(format, args...))
}

// EventLogSnap is a point-in-time copy of the ring.
type EventLogSnap struct {
	Cap     int     `json:"cap"`
	Total   uint64  `json:"total"`   // events ever appended
	Dropped uint64  `json:"dropped"` // events overwritten by the ring
	Events  []Event `json:"events"`  // retained events, ascending by seq
}

// Snapshot copies the retained events in sequence order. Zero-valued
// on a nil log.
func (l *EventLog) Snapshot() EventLogSnap {
	if l == nil {
		return EventLogSnap{Events: []Event{}}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := EventLogSnap{Cap: l.size, Total: l.seq, Dropped: l.dropped}
	s.Events = make([]Event, 0, len(l.buf))
	s.Events = append(s.Events, l.buf[l.head:]...)
	s.Events = append(s.Events, l.buf[:l.head]...)
	return s
}

// Since returns the retained events with Seq > seq, in sequence order
// — the SSE resume primitive. Nil on a nil log.
func (l *EventLog) Since(seq uint64) []Event {
	if l == nil {
		return nil
	}
	snap := l.Snapshot()
	// Binary search over the seq-ordered snapshot: find the first
	// event past seq.
	lo, hi := 0, len(snap.Events)
	for lo < hi {
		mid := (lo + hi) / 2
		if snap.Events[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return snap.Events[lo:]
}

// WriteJSONL writes the retained events as JSON Lines, one event per
// line — the -events persistence format. A no-op on a nil log.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, e := range l.Snapshot().Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// SSEHandler returns the /events handler: a Server-Sent Events stream
// of the ring, starting with every retained event and following the
// live tail (polled at the given period; <=0 means 250ms) until the
// client disconnects. Safe on a nil log (streams nothing, waits for
// disconnect).
func (l *EventLog) SSEHandler(poll time.Duration) http.Handler {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		fl, _ := w.(http.Flusher)
		var last uint64
		// Honor Last-Event-ID so a dropped connection resumes where it
		// left off instead of replaying the ring.
		if id := req.Header.Get("Last-Event-ID"); id != "" {
			fmt.Sscanf(id, "%d", &last)
		}
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			for _, e := range l.Since(last) {
				data, err := json.Marshal(e)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
					return
				}
				last = e.Seq
			}
			if fl != nil {
				fl.Flush()
			}
			select {
			case <-req.Context().Done():
				return
			case <-t.C:
			}
		}
	})
}
