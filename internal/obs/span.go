package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records wall-clock spans of the tool-side pipeline (run → drain →
// decode → assemble) and exports them in the Chrome trace_event JSON
// format, loadable in chrome://tracing and Perfetto.
//
// A nil Tracer is disabled: Start returns a nil Span and every Span method
// on nil is a no-op, so call sites never branch on whether tracing is on.
type Tracer struct {
	mu     sync.Mutex
	origin time.Time
	spans  []spanRecord
}

type spanRecord struct {
	name  string
	cat   string
	start time.Duration // since origin
	dur   time.Duration
}

// NewTracer returns an enabled tracer whose time origin is now.
func NewTracer() *Tracer {
	return &Tracer{origin: time.Now()}
}

// Span is one in-flight span; End completes it.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	begin time.Time
}

// Start opens a span. The category groups spans in the trace viewer
// (e.g. "pipeline"). Returns nil on a nil tracer.
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, begin: time.Now()}
}

// End completes the span and records it. A no-op on a nil span, and on a
// second call.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spanRecord{
		name:  s.name,
		cat:   s.cat,
		start: s.begin.Sub(t.origin),
		dur:   time.Since(s.begin),
	})
}

// Measure runs fn under a span.
func (t *Tracer) Measure(name, cat string, fn func()) {
	sp := t.Start(name, cat)
	fn()
	sp.End()
}

// SpanNames returns the names of completed spans in completion order
// (introspection for tests; empty on a nil tracer).
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.name
	}
	return out
}

// TraceEvent is one event of the Chrome trace_event format ("X" = complete
// event with duration). Timestamps and durations are microseconds.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// ChromeTrace is the top-level trace_event JSON object.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace returns the completed spans as a Chrome trace object. Spans are
// sorted by start time (the viewer requires no order, but determinism
// keeps test output stable when spans are sequential).
func (t *Tracer) Trace() ChromeTrace {
	ct := ChromeTrace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return ct
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: s.name,
			Cat:  s.cat,
			Ph:   "X",
			Ts:   float64(s.start.Nanoseconds()) / 1e3,
			Dur:  float64(s.dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		})
	}
	for i := 1; i < len(ct.TraceEvents); i++ {
		for j := i; j > 0 && ct.TraceEvents[j].Ts < ct.TraceEvents[j-1].Ts; j-- {
			ct.TraceEvents[j], ct.TraceEvents[j-1] = ct.TraceEvents[j-1], ct.TraceEvents[j]
		}
	}
	return ct
}

// WriteChromeTrace serializes the completed spans to w in the Chrome
// trace_event JSON format.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Trace())
}
