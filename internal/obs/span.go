package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records wall-clock spans of the tool-side pipeline (run → drain →
// decode → assemble) and exports them in the Chrome trace_event JSON
// format, loadable in chrome://tracing and Perfetto.
//
// A nil Tracer is disabled: Start returns a nil Span and every Span method
// on nil is a no-op, so call sites never branch on whether tracing is on.
type Tracer struct {
	mu        sync.Mutex
	origin    time.Time
	spans     []spanRecord
	procNames map[int]string // pid row → display name metadata
}

type spanRecord struct {
	name  string
	cat   string
	start time.Duration // since origin
	dur   time.Duration
	pid   int // trace row; 0 means the tracer's own process (pid 1)
	tid   int // 0 means tid 1
}

// NewTracer returns an enabled tracer whose time origin is now.
func NewTracer() *Tracer {
	return &Tracer{origin: time.Now()}
}

// SpanExport is one completed span in wall-clock-absolute form — the
// wire format for cross-process span stitching. A worker process
// Export()s its spans, serializes each as one line of JSON, and the
// supervisor IngestSpan()s them into its own tracer: both processes
// share the host clock, so absolute nanoseconds are the common
// timebase that survives the pipe.
type SpanExport struct {
	Name  string `json:"n"`
	Cat   string `json:"c"`
	Start int64  `json:"s"` // wall-clock start, Unix nanoseconds
	Dur   int64  `json:"d"` // duration, nanoseconds
}

// Export returns the completed spans in absolute wall-clock form, in
// completion order. Empty on a nil tracer.
func (t *Tracer) Export() []SpanExport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanExport, len(t.spans))
	for i, s := range t.spans {
		out[i] = SpanExport{
			Name:  s.name,
			Cat:   s.cat,
			Start: t.origin.Add(s.start).UnixNano(),
			Dur:   s.dur.Nanoseconds(),
		}
	}
	return out
}

// IngestSpan merges one exported span from another process into this
// tracer under the given trace pid row (the tracer's own spans are pid
// 1). The span's absolute start is rebased onto this tracer's origin.
// A no-op on a nil tracer.
func (t *Tracer) IngestSpan(pid int, sp SpanExport) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spanRecord{
		name:  sp.Name,
		cat:   sp.Cat,
		start: time.Unix(0, sp.Start).Sub(t.origin),
		dur:   time.Duration(sp.Dur),
		pid:   pid,
	})
}

// SetProcessName labels a pid row in the exported trace (emitted as a
// process_name metadata event, which the trace viewers render as the
// row title). A no-op on a nil tracer.
func (t *Tracer) SetProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.procNames == nil {
		t.procNames = map[int]string{}
	}
	t.procNames[pid] = name
}

// Span is one in-flight span; End completes it.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	begin time.Time
}

// Start opens a span. The category groups spans in the trace viewer
// (e.g. "pipeline"). Returns nil on a nil tracer.
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, begin: time.Now()}
}

// End completes the span and records it. A no-op on a nil span, and on a
// second call.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	s.t = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spanRecord{
		name:  s.name,
		cat:   s.cat,
		start: s.begin.Sub(t.origin),
		dur:   time.Since(s.begin),
	})
}

// Measure runs fn under a span.
func (t *Tracer) Measure(name, cat string, fn func()) {
	sp := t.Start(name, cat)
	fn()
	sp.End()
}

// SpanNames returns the names of completed spans in completion order
// (introspection for tests; empty on a nil tracer).
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.name
	}
	return out
}

// TraceEvent is one event of the Chrome trace_event format ("X" = complete
// event with duration). Timestamps and durations are microseconds.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace_event JSON object.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace returns the completed spans as a Chrome trace object: first the
// process_name metadata rows (sorted by pid), then the spans sorted by
// start time (the viewer requires no order, but determinism keeps test
// output stable when spans are sequential). Ingested spans appear on
// their own pid rows; the tracer's native spans are pid 1.
func (t *Tracer) Trace() ChromeTrace {
	ct := ChromeTrace{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	if t == nil {
		return ct
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pids := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: "process_name",
			Cat:  "__metadata",
			Ph:   "M",
			Pid:  pid,
			Tid:  1,
			Args: map[string]string{"name": t.procNames[pid]},
		})
	}
	meta := len(ct.TraceEvents)
	for _, s := range t.spans {
		pid, tid := s.pid, s.tid
		if pid == 0 {
			pid = 1
		}
		if tid == 0 {
			tid = 1
		}
		ct.TraceEvents = append(ct.TraceEvents, TraceEvent{
			Name: s.name,
			Cat:  s.cat,
			Ph:   "X",
			Ts:   float64(s.start.Nanoseconds()) / 1e3,
			Dur:  float64(s.dur.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  tid,
		})
	}
	for i := meta + 1; i < len(ct.TraceEvents); i++ {
		for j := i; j > meta && ct.TraceEvents[j].Ts < ct.TraceEvents[j-1].Ts; j-- {
			ct.TraceEvents[j], ct.TraceEvents[j-1] = ct.TraceEvents[j-1], ct.TraceEvents[j]
		}
	}
	return ct
}

// WriteChromeTrace serializes the completed spans to w in the Chrome
// trace_event JSON format.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Trace())
}
