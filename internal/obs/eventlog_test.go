package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	if seq := l.Append("k", 0, "", "m"); seq != 0 {
		t.Errorf("nil Append returned seq %d", seq)
	}
	if seq := l.Appendf("k", 0, "", "%d", 1); seq != 0 {
		t.Errorf("nil Appendf returned seq %d", seq)
	}
	snap := l.Snapshot()
	if snap.Events == nil || len(snap.Events) != 0 {
		t.Errorf("nil Snapshot = %+v, want empty non-nil Events", snap)
	}
	if got := l.Since(0); got != nil {
		t.Errorf("nil Since = %v", got)
	}
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WriteJSONL = (%q, %v)", b.String(), err)
	}
	// The nil SSE handler must serve (and terminate with the request).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/events", nil).WithContext(ctx)
	l.SSEHandler(time.Millisecond).ServeHTTP(httptest.NewRecorder(), req)
}

func TestEventLogSequenceAndOrder(t *testing.T) {
	l := NewEventLog(16)
	l.Append("cell_start", -1, "a", "")
	l.Appendf("cell_done", 0, "a", "cycles %d", 100)
	l.Append("shard_spawn", 1, "", "pid 42")
	snap := l.Snapshot()
	if snap.Total != 3 || snap.Dropped != 0 || snap.Cap != 16 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
	for i, e := range snap.Events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want dense 1-based", i, e.Seq)
		}
		if e.TUs < 0 {
			t.Errorf("event %d has negative relative time %d", i, e.TUs)
		}
	}
	if snap.Events[1].Msg != "cycles 100" || snap.Events[2].Shard != 1 {
		t.Errorf("events mangled: %+v", snap.Events)
	}
}

// TestEventLogWrap pins the ring contract: after wrapping, the log
// holds exactly the last Cap events by sequence and counts the rest as
// dropped.
func TestEventLogWrap(t *testing.T) {
	const cap, total = 8, 27
	l := NewEventLog(cap)
	for i := 0; i < total; i++ {
		l.Append("e", -1, "", "")
	}
	snap := l.Snapshot()
	if snap.Total != total || snap.Dropped != total-cap || len(snap.Events) != cap {
		t.Fatalf("total=%d dropped=%d retained=%d, want %d/%d/%d",
			snap.Total, snap.Dropped, len(snap.Events), total, total-cap, cap)
	}
	for i, e := range snap.Events {
		if want := uint64(total - cap + 1 + i); e.Seq != want {
			t.Errorf("retained[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Since resumes exactly past the given seq.
	since := l.Since(total - 3)
	if len(since) != 3 || since[0].Seq != total-2 {
		t.Errorf("Since(%d) = %d events starting %d", total-3, len(since), since[0].Seq)
	}
	if got := l.Since(total); len(got) != 0 {
		t.Errorf("Since(latest) returned %d events", len(got))
	}
}

// TestEventLogConcurrentWrap hammers the ring from parallel appenders
// (run under -race) and then checks the deterministic invariants: dense
// retained sequence range ending at Total, no loss unaccounted by
// Dropped.
func TestEventLogConcurrentWrap(t *testing.T) {
	const cap = 64
	const writers, perWriter = 8, 500
	l := NewEventLog(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Appendf("e", w, "", "%d", i)
			}
		}(w)
	}
	wg.Wait()
	snap := l.Snapshot()
	if snap.Total != writers*perWriter {
		t.Fatalf("total = %d, want %d", snap.Total, writers*perWriter)
	}
	if len(snap.Events) != cap {
		t.Fatalf("retained %d, want %d", len(snap.Events), cap)
	}
	if snap.Dropped != snap.Total-uint64(cap) {
		t.Errorf("dropped = %d, want %d", snap.Dropped, snap.Total-uint64(cap))
	}
	for i, e := range snap.Events {
		if want := snap.Total - uint64(cap) + 1 + uint64(i); e.Seq != want {
			t.Fatalf("retained[%d].Seq = %d, want dense %d", i, e.Seq, want)
		}
	}
}

func TestEventLogWriteJSONL(t *testing.T) {
	l := NewEventLog(8)
	l.Append("cell_start", -1, "c0", "")
	l.Append("cell_done", -1, "c0", "ok")
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var n int
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not an Event: %v", n, err)
		}
		n++
		if e.Seq != uint64(n) {
			t.Errorf("line %d seq %d", n, e.Seq)
		}
	}
	if n != 2 {
		t.Errorf("wrote %d lines, want 2", n)
	}
}

// TestEventLogSSE drives the /events handler end to end: retained
// events replay first with their seq as the SSE id, and Last-Event-ID
// resumes past already-seen events.
func TestEventLogSSE(t *testing.T) {
	l := NewEventLog(8)
	l.Append("cell_start", -1, "c0", "")
	l.Append("cell_done", 2, "c0", "ok")

	serve := func(lastID string) string {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		req := httptest.NewRequest("GET", "/events", nil).WithContext(ctx)
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		rec := httptest.NewRecorder()
		l.SSEHandler(5*time.Millisecond).ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("content type %q", ct)
		}
		return rec.Body.String()
	}

	body := serve("")
	for _, want := range []string{"id: 1\n", "id: 2\n", "event: cell_done\n", `"shard":2`} {
		if !strings.Contains(body, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, body)
		}
	}
	resumed := serve("1")
	if strings.Contains(resumed, "id: 1\n") {
		t.Errorf("Last-Event-ID: 1 replayed event 1:\n%s", resumed)
	}
	if !strings.Contains(resumed, "id: 2\n") {
		t.Errorf("resume skipped event 2:\n%s", resumed)
	}
}
