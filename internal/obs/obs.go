// Package obs is the toolchain's self-observability layer: a
// zero-dependency metrics registry (counters, gauges, histograms) and a
// lightweight span tracer with a Chrome trace_event exporter.
//
// The paper instruments the TriCore with the MCDS — non-intrusive
// counters, cheap always-on rates, structured export. This package applies
// the same discipline to the simulator/trace pipeline itself, which we are
// scaling toward fleet-sized workloads: every hot layer (clock, EMEM ring,
// DAP link, MCDS emitter) publishes counters through handles that cost one
// atomic add when enabled and one nil check when disabled.
//
// Disabled path: the nil *Registry (obs.Disabled) hands out nil metric
// handles, and every method on a nil handle is a no-op. Hot loops therefore
// keep unconditional instrumentation calls; whether they cost anything is
// decided once, at wiring time.
//
// All metric values are updated with atomic operations, so a live endpoint
// (Registry implements http.Handler) can serve snapshots concurrently with
// a running simulation without races.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Disabled is the nil registry: every handle it returns is nil and every
// operation on those handles is a no-op. Use it to measure instrumentation
// overhead or to switch observability off without touching call sites.
var Disabled *Registry

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter is a disabled counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value. The zero value reads 0; a nil Gauge is a
// disabled gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax stores v if it exceeds the current value (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the bucket count of a Histogram: bucket i holds values
// whose bit length is i, i.e. exponential base-2 buckets covering the full
// uint64 range.
const histBuckets = 65

// Histogram accumulates a distribution of uint64 observations in
// exponential base-2 buckets. The zero value is ready; a nil Histogram is
// disabled.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // offset by +1 so zero means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	// min is stored offset by +1 so that 0 means "no observation yet";
	// MaxUint64 observations saturate one below to keep the offset valid.
	mv := v
	if mv == math.MaxUint64 {
		mv--
	}
	for {
		old := h.min.Load()
		if old != 0 && old-1 <= mv {
			break
		}
		if h.min.CompareAndSwap(old, mv+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnap {
	s := HistogramSnap{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	bk := make([]uint64, histBuckets)
	for i := range bk {
		bk[i] = h.buckets[i].Load()
	}
	s.P50 = bucketQuantile(bk, s.Count, 0.50)
	s.P95 = bucketQuantile(bk, s.Count, 0.95)
	s.Buckets = bk
	return s
}

// bucketQuantile returns the upper bound of the bucket containing the
// q-quantile observation: an upper-bound estimate exact to a factor of 2.
func bucketQuantile(buckets []uint64, count uint64, q float64) uint64 {
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var seen uint64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// Registry owns a namespace of metrics. A nil Registry is the disabled
// registry: it returns nil handles and empty snapshots.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty, enabled registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on the disabled registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// the disabled registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on the disabled registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is one histogram in a snapshot. P50/P95 are upper-bound
// estimates from the base-2 buckets (exact to a factor of two).
// Buckets carries the raw per-bucket counts (bucket i = observations of
// bit length i) for exporters that need the full distribution, e.g. the
// Prometheus exposition; it is deliberately excluded from the JSON
// snapshot, whose shape is pinned by golden tests.
type HistogramSnap struct {
	Name    string   `json:"name,omitempty"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	P50     uint64   `json:"p50"`
	P95     uint64   `json:"p95"`
	Buckets []uint64 `json:"-"`
}

// Snapshot is a point-in-time copy of every metric, ordered by name within
// each kind — deterministic, so two snapshots of identical state serialize
// identically (golden tests, fleet diffing).
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot captures the registry. On the disabled registry it returns the
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := h.snapshot()
		hs.Name = name
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshotted value of the named counter (0, false
// when absent).
func (s *Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of the named gauge (0, false when
// absent).
func (s *Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteJSON serializes a snapshot of the registry to w, indented.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP implements http.Handler: GET returns the current snapshot as
// JSON — the expvar-style live endpoint for long runs.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := r.WriteJSON(w); err != nil {
		http.Error(w, fmt.Sprintf("obs: %v", err), http.StatusInternalServerError)
	}
}
