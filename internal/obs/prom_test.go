package obs

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format 0.0.4:
// name{labels} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// TestPrometheusFormat validates the exposition structurally: every
// line is either a well-formed # TYPE comment or a well-formed sample,
// every family is announced before its samples, and the dimensional
// naming convention folds into labels.
func TestPrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("campaign_sessions_done").Add(7)
	r.Counter("campaign_shard_restarts").Add(2)
	r.Gauge("campaign_shard00_alive").Set(1)
	r.Gauge("campaign_shard01_alive").Set(0)
	r.Gauge("campaign_shard11_hb_age_sec").Set(0.25)
	r.Gauge("campaign_worker03_util").Set(0.5)
	h := r.Histogram("drain_batch_bytes")
	for _, v := range []uint64{0, 1, 2, 3, 100, 5000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			typed[f[2]] = f[3]
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not match the exposition grammar: %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Errorf("sample %q precedes (or lacks) its # TYPE line", name)
			}
		}
	}

	// Dimensional folding: the per-shard gauges collapse into one family
	// with a shard label, and the ordinal loses its zero padding.
	for _, want := range []string{
		"# TYPE campaign_shard_alive gauge",
		`campaign_shard_alive{shard="0"} 1`,
		`campaign_shard_alive{shard="1"} 0`,
		`campaign_shard_hb_age_sec{shard="11"} 0.25`,
		`campaign_worker_util{worker="3"} 0.5`,
		"campaign_sessions_done 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "shard00") || strings.Contains(out, "shard01") {
		t.Errorf("exposition leaks unfolded ordinals:\n%s", out)
	}
}

// TestPrometheusHistogram pins the histogram contract: cumulative
// base-2 buckets (le = 2^i - 1), a +Inf bucket equal to the count, and
// the _sum/_count pair.
func TestPrometheusHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("batch_bytes")
	obs := []uint64{0, 1, 1, 5, 900}
	var sum uint64
	for _, v := range obs {
		h.Observe(v)
		sum += v
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var prev uint64
	var infSeen bool
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "batch_bytes_bucket{") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseUint(f[len(f)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket value in %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("buckets not cumulative: %q after %d", line, prev)
		}
		prev = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != uint64(len(obs)) {
				t.Errorf("+Inf bucket = %d, want count %d", v, len(obs))
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
	for _, want := range []string{
		`batch_bytes_bucket{le="0"} 1`, // the single 0 (bit length 0)
		`batch_bytes_bucket{le="1"} 3`, // + the two 1s (bit length 1)
		`batch_bytes_bucket{le="7"} 4`, // + the 5 (bit length 3); 2^3-1 = 7
		"batch_bytes_sum " + strconv.FormatUint(sum, 10),
		"batch_bytes_count " + strconv.Itoa(len(obs)),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusDeterministic: identical registry state must serialize
// identically (the exposition inherits Snapshot's ordering).
func TestPrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b_total").Add(1)
		r.Counter("a_total").Add(2)
		r.Gauge("campaign_shard03_alive").Set(1)
		r.Histogram("h").Observe(9)
		return r
	}
	var x, y strings.Builder
	if err := build().WritePrometheus(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Errorf("exposition not deterministic:\n%s\nvs\n%s", x.String(), y.String())
	}
}

// TestPrometheusNilRegistry: the disabled registry writes nothing and
// its handler still serves a valid (empty) exposition.
func TestPrometheusNilRegistry(t *testing.T) {
	var b strings.Builder
	if err := Disabled.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry wrote %q", b.String())
	}
	rec := httptest.NewRecorder()
	Disabled.PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
	if rec.Code != 200 {
		t.Errorf("nil registry handler status %d", rec.Code)
	}
}

// TestPromHandler serves the live registry with the 0.0.4 content type.
func TestPromHandler(t *testing.T) {
	r := New()
	r.Counter("x_total").Inc()
	rec := httptest.NewRecorder()
	r.PromHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prom", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestSplitDims pins the name-folding convention.
func TestSplitDims(t *testing.T) {
	for _, tc := range []struct {
		in, base, labels string
	}{
		{"campaign_shard00_alive", "campaign_shard_alive", `{shard="0"}`},
		{"campaign_shard12_cells_done", "campaign_shard_cells_done", `{shard="12"}`},
		{"campaign_worker03_util", "campaign_worker_util", `{worker="3"}`},
		{"campaign_sessions_done", "campaign_sessions_done", ""},
		{"shard_restarts", "shard_restarts", ""}, // no ordinal, no label
	} {
		base, labels := splitDims(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitDims(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}
