package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry.
//
// The JSON snapshot endpoint is the deterministic, golden-testable
// surface; this file adds the scrape surface an ops stack expects. It
// is a pure function of Snapshot(), so it inherits the snapshot's
// deterministic ordering and its concurrency safety, and it costs
// nothing when not scraped.
//
// Dimensional metrics follow the registry's established naming
// convention — a per-instance ordinal embedded in the name, e.g.
// campaign_shard00_alive or campaign_worker03_util — and are folded
// into one Prometheus metric family with a label:
//
//	campaign_shard00_alive       → campaign_shard_alive{shard="0"}
//	campaign_worker03_util       → campaign_worker_util{worker="3"}
//
// so a dashboard can aggregate across shards/workers without knowing
// the fleet size in advance. Histograms are exposed with cumulative
// base-2 buckets (le = 2^i - 1), matching the internal bucketing
// exactly: no re-binning, no estimate beyond what the JSON already
// reports.

// promDim matches one embedded dimension ordinal: the dimension name
// followed by decimal digits, delimited by the name's underscores.
var promDim = regexp.MustCompile(`^(shard|worker)([0-9]+)$`)

// promName sanitizes a metric name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitDims folds embedded per-instance ordinals out of a metric name:
// "campaign_shard00_alive" → base "campaign_shard_alive", labels
// {shard="0"}. Names without a recognized dimension pass through with
// no labels.
func splitDims(name string) (base string, labels string) {
	segs := strings.Split(name, "_")
	var lab []string
	out := make([]string, 0, len(segs))
	for _, seg := range segs {
		if m := promDim.FindStringSubmatch(seg); m != nil {
			ord := strings.TrimLeft(m[2], "0")
			if ord == "" {
				ord = "0"
			}
			lab = append(lab, fmt.Sprintf("%s=%q", m[1], ord))
			out = append(out, m[1])
			continue
		}
		out = append(out, seg)
	}
	base = strings.Join(out, "_")
	if len(lab) > 0 {
		labels = "{" + strings.Join(lab, ",") + "}"
	}
	return base, labels
}

// promFamily is one exposition family: every series that folded to the
// same base name, kept in snapshot (hence deterministic) order.
type promFamily struct {
	kind   string // "counter" | "gauge" | "histogram"
	series []promSeries
}

type promSeries struct {
	labels string
	ctr    uint64
	gauge  float64
	hist   *HistogramSnap
}

// WritePrometheus writes the current snapshot in the Prometheus text
// exposition format. On the disabled (nil) registry it writes nothing
// and returns nil — the no-op contract every obs surface keeps.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var order []string
	fams := map[string]*promFamily{}
	add := func(name, kind string, fill func(*promSeries)) {
		base, labels := splitDims(name)
		base = promName(base)
		f := fams[base]
		if f == nil {
			f = &promFamily{kind: kind}
			fams[base] = f
			order = append(order, base)
		}
		s := promSeries{labels: labels}
		fill(&s)
		f.series = append(f.series, s)
	}
	for i := range snap.Counters {
		c := snap.Counters[i]
		add(c.Name, "counter", func(s *promSeries) { s.ctr = c.Value })
	}
	for i := range snap.Gauges {
		g := snap.Gauges[i]
		add(g.Name, "gauge", func(s *promSeries) { s.gauge = g.Value })
	}
	for i := range snap.Histograms {
		h := snap.Histograms[i]
		add(h.Name, "histogram", func(s *promSeries) { s.hist = &h })
	}

	var b strings.Builder
	for _, base := range order {
		f := fams[base]
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case "counter":
				fmt.Fprintf(&b, "%s%s %d\n", base, s.labels, s.ctr)
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", base, s.labels, promFloat(s.gauge))
			case "histogram":
				writePromHistogram(&b, base, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits one histogram series: cumulative base-2
// buckets up to the highest populated one, +Inf, sum, and count.
func writePromHistogram(b *strings.Builder, base, labels string, h *HistogramSnap) {
	var cum uint64
	top := 0
	for i, n := range h.Buckets {
		if n > 0 {
			top = i
		}
	}
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		// Bucket i holds values of bit length i: upper bound 2^i - 1.
		var le uint64 = math.MaxUint64
		if i < 64 {
			le = 1<<uint(i) - 1
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", base, promBucketLabels(labels, strconv.FormatUint(le, 10)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", base, promBucketLabels(labels, "+Inf"), h.Count)
	fmt.Fprintf(b, "%s_sum%s %d\n", base, labels, h.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", base, labels, h.Count)
}

// promBucketLabels merges the series labels with the le bucket label.
func promBucketLabels(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", le)
}

// promFloat renders a gauge value; Prometheus accepts Go's shortest
// round-trip float formatting, with the special values spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromHandler returns the /metrics/prom scrape handler. Safe on the
// disabled registry (serves an empty exposition).
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, fmt.Sprintf("obs: %v", err), http.StatusInternalServerError)
		}
	})
}
