package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "y")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.End() // must not panic
	tr.Measure("m", "c", func() {})
	if names := tr.SpanNames(); names != nil {
		t.Errorf("nil tracer spans = %v", names)
	}
	ct := tr.Trace()
	if len(ct.TraceEvents) != 0 {
		t.Error("nil tracer trace must be empty")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := NewTracer()
	run := tr.Start("run", "pipeline")
	time.Sleep(time.Millisecond)
	run.End()
	run.End() // double End must not duplicate
	tr.Measure("decode", "pipeline", func() {})

	names := tr.SpanNames()
	want := []string{"run", "decode"}
	if len(names) != len(want) {
		t.Fatalf("spans = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("span[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

// TestChromeTraceFormat validates the exported JSON structurally against
// the Chrome trace_event contract: a top-level traceEvents array of
// complete ("X") events with name/cat and non-negative microsecond
// ts/dur, sorted by ts.
func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("run", "pipeline")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := tr.Start("drain", "pipeline")
	b.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// Decode generically, as the trace viewer would.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	raw, ok := top["traceEvents"]
	if !ok {
		t.Fatal("missing traceEvents key")
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	prevTs := -1.0
	for i, ev := range events {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing %q", i, key)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("event %d ph = %v, want X", i, ev["ph"])
		}
		ts, _ := ev["ts"].(float64)
		dur, _ := ev["dur"].(float64)
		if ts < 0 || dur < 0 {
			t.Errorf("event %d negative ts/dur: %v/%v", i, ts, dur)
		}
		if ts < prevTs {
			t.Errorf("events not sorted by ts: %v after %v", ts, prevTs)
		}
		prevTs = ts
	}
	// The 2ms sleep must be visible in microseconds on the first span.
	if dur, _ := events[0]["dur"].(float64); dur < 1000 {
		t.Errorf("run span dur = %v µs, want >= 1000", dur)
	}
	if events[0]["name"] != "run" || events[1]["name"] != "drain" {
		t.Errorf("span order wrong: %v, %v", events[0]["name"], events[1]["name"])
	}
}

// TestSpanStitching exercises the cross-process merge path: a "worker"
// tracer exports its spans in absolute wall-clock form, a "supervisor"
// tracer ingests them under a distinct pid row, and the merged Chrome
// trace carries process_name metadata first, then every span on its
// proper row with rebased timestamps.
func TestSpanStitching(t *testing.T) {
	sup := NewTracer()
	s := sup.Start("execute", "campaign")

	worker := NewTracer()
	w := worker.Start("cell:w0", "session")
	time.Sleep(time.Millisecond)
	w.End()
	s.End()

	exported := worker.Export()
	if len(exported) != 1 {
		t.Fatalf("worker exported %d spans, want 1", len(exported))
	}
	// The wire format round-trips through one line of JSON.
	line, err := json.Marshal(exported[0])
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(line, '\n') {
		t.Fatalf("span JSON is not single-line: %q", line)
	}
	var sp SpanExport
	if err := json.Unmarshal(line, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Name != "cell:w0" || sp.Cat != "session" || sp.Dur < int64(time.Millisecond) {
		t.Fatalf("span mangled on the wire: %+v", sp)
	}

	sup.SetProcessName(1, "supervisor")
	sup.SetProcessName(2, "shard 0")
	sup.IngestSpan(2, sp)

	ct := sup.Trace()
	if len(ct.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 2 metadata + 2 spans", len(ct.TraceEvents))
	}
	// Metadata first, sorted by pid.
	for i, wantPid := range []int{1, 2} {
		ev := ct.TraceEvents[i]
		if ev.Ph != "M" || ev.Name != "process_name" || ev.Pid != wantPid {
			t.Errorf("event %d = %+v, want process_name metadata for pid %d", i, ev, wantPid)
		}
	}
	if ct.TraceEvents[0].Args["name"] != "supervisor" || ct.TraceEvents[1].Args["name"] != "shard 0" {
		t.Errorf("process names wrong: %+v", ct.TraceEvents[:2])
	}
	// Spans sorted by ts, each on its pid row, rebased into the
	// supervisor's timebase (both started after the supervisor's origin,
	// so every ts is non-negative and the worker span nests inside the
	// supervisor's).
	byName := map[string]TraceEvent{}
	for _, ev := range ct.TraceEvents[2:] {
		if ev.Ph != "X" {
			t.Errorf("span event ph = %q", ev.Ph)
		}
		byName[ev.Name] = ev
	}
	exec, cell := byName["execute"], byName["cell:w0"]
	if exec.Pid != 1 || cell.Pid != 2 {
		t.Errorf("pid rows: execute=%d cell=%d, want 1 and 2", exec.Pid, cell.Pid)
	}
	if cell.Ts < exec.Ts || cell.Ts+cell.Dur > exec.Ts+exec.Dur+1 {
		t.Errorf("ingested span [%v,%v] not nested in supervisor span [%v,%v]",
			cell.Ts, cell.Ts+cell.Dur, exec.Ts, exec.Ts+exec.Dur)
	}
}

func TestSpanStitchingNilSafe(t *testing.T) {
	var tr *Tracer
	if got := tr.Export(); got != nil {
		t.Errorf("nil Export = %v", got)
	}
	tr.IngestSpan(2, SpanExport{Name: "x"}) // must not panic
	tr.SetProcessName(1, "y")               // must not panic
}

func TestEmptyTracerStillValidTrace(t *testing.T) {
	tr := NewTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatal(err)
	}
	if ct.TraceEvents == nil {
		t.Error("traceEvents must serialize as [], not null")
	}
}
