package periph

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/sim"
)

// rd32 reads a 32-bit register through Access at the clock's current cycle.
func rd32(tgt bus.Target, addr uint32) uint32 {
	buf := make([]byte, 4)
	tgt.Access(0, &bus.Request{Addr: addr, Data: buf})
	return get32(buf)
}

func wr32(tgt bus.Target, addr uint32, v uint32) {
	buf := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	tgt.Access(0, &bus.Request{Addr: addr, Data: buf, Write: true})
}

func TestTimerNextWakeGrid(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("t0", 5, irq.ToCPU, 0)
	tm := NewTimer("t0", 0, 100, 30, r, s)
	cases := []struct{ from, want uint64 }{
		{0, 30}, {30, 30}, {31, 130}, {129, 130}, {130, 130}, {131, 230},
	}
	for _, c := range cases {
		if got := tm.NextWake(c.from); got != c.want {
			t.Errorf("NextWake(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	tm.Enabled = false
	if got := tm.NextWake(0); got != sim.NoWake {
		t.Errorf("disabled NextWake = %d, want NoWake", got)
	}
}

// scheduledRig attaches periphs to a clock with the wake scheduler in the
// given mode and returns the clock.
func timerOnClock(scheduled bool, period, offset uint64) (*sim.Clock, *Timer) {
	r := irq.New()
	s := r.AddSRN("t0", 5, irq.ToCPU, 0)
	tm := NewTimer("t0", 0, period, offset, r, s)
	clk := sim.NewClock()
	if !scheduled {
		clk.SetWakeScheduling(false)
	}
	clk.Attach("drain", sim.TickerFunc(func(uint64) { r.View(irq.ToCPU).AckIRQ(5) }))
	clk.Attach("t0", tm)
	return clk, tm
}

func TestTimerScheduledMatchesAlwaysOn(t *testing.T) {
	clkOn, tmOn := timerOnClock(true, 100, 30)
	clkOff, tmOff := timerOnClock(false, 100, 30)
	clkOn.Run(10_000)
	clkOff.Run(10_000)
	if tmOn.Expiries != tmOff.Expiries {
		t.Errorf("expiries: scheduled=%d always-on=%d", tmOn.Expiries, tmOff.Expiries)
	}
	if on, off := rd32(tmOn, RegCount), rd32(tmOff, RegCount); on != off {
		t.Errorf("count: scheduled=%d always-on=%d", on, off)
	}
}

func TestTimerLazyCountAcrossSleep(t *testing.T) {
	clk, tm := timerOnClock(true, 1000, 999)
	clk.Run(500)
	// Mid-sleep: the timer has not been ticked once, but the free-running
	// count must read as if it had been.
	if got := rd32(tm, RegCount); got != 500 {
		t.Errorf("count mid-sleep = %d, want 500", got)
	}
	clk.Run(1000)
	if got := rd32(tm, RegCount); got != 1500 {
		t.Errorf("count after expiry = %d, want 1500", got)
	}
	if tm.Expiries != 1 {
		t.Errorf("expiries = %d, want 1", tm.Expiries)
	}
}

func TestTimerCtrlWriteReschedules(t *testing.T) {
	clk, tm := timerOnClock(true, 100, 0)
	clk.Run(150) // expiries at 0, 100
	wr32(tm, RegCtrl, 0)
	clk.Run(500) // disabled: parked, no expiries, count frozen
	frozen := rd32(tm, RegCount)
	wr32(tm, RegCtrl, 1)
	clk.Run(350) // re-enabled at 650: grid hits 700, 800, 900
	if tm.Expiries != 2+3 {
		t.Errorf("expiries = %d, want 5", tm.Expiries)
	}
	if got := rd32(tm, RegCount); got != frozen+350 {
		t.Errorf("count = %d, want %d (frozen %d + 350 enabled cycles)", got, frozen+350, frozen)
	}
}

func TestTimerPeriodWriteReschedules(t *testing.T) {
	clk, tm := timerOnClock(true, 10_000, 9_999)
	clk.Run(100)
	if tm.Expiries != 0 {
		t.Fatalf("expiries = %d before reprogram", tm.Expiries)
	}
	// Shrinking the period below the clamped offset exercises Tick's uint64
	// wraparound grid; the rescheduled wake must follow the same arithmetic.
	wr32(tm, RegPeriod, 50)
	before := tm.Expiries
	clkRef, tmRef := timerOnClock(false, 10_000, 9_999)
	clkRef.Run(100)
	wr32(tmRef, RegPeriod, 50)
	clk.Run(100)
	clkRef.Run(100)
	if tm.Expiries == before {
		t.Errorf("no expiries after reprogramming to a fast period")
	}
	if tm.Expiries != tmRef.Expiries {
		t.Errorf("expiries = %d scheduled, %d always-on", tm.Expiries, tmRef.Expiries)
	}
}

func TestTimerWrapGridBoundaryNotSkipped(t *testing.T) {
	// With offset >= period the fire grid changes regime at cycle
	// offset-period; the scheduled timer must fire there exactly like the
	// always-on one.
	run := func(scheduled bool) uint64 {
		clk, tm := timerOnClock(scheduled, 5_000, 4_000)
		wr32(tm, RegPeriod, 100) // offset 4000 now exceeds the period
		clk.Run(6_000)           // crosses the regime boundary at cycle 3900
		return tm.Expiries
	}
	on, off := run(true), run(false)
	if on != off || on == 0 {
		t.Errorf("expiries: scheduled=%d always-on=%d", on, off)
	}
}

func TestADCScheduledMatchesAlwaysOn(t *testing.T) {
	build := func(scheduled bool) (*sim.Clock, *ADC) {
		r := irq.New()
		s := r.AddSRN("adc", 6, irq.ToCPU, 0)
		sig := NewSignal(800, 6000, 1000, 20, sim.NewRNG(7))
		a := NewADC("adc", 0, 250, 13, sig, r, s)
		clk := sim.NewClock()
		if !scheduled {
			clk.SetWakeScheduling(false)
		}
		clk.Attach("drain", sim.TickerFunc(func(uint64) { r.View(irq.ToCPU).AckIRQ(6) }))
		clk.Attach("adc", a)
		return clk, a
	}
	clkOn, on := build(true)
	clkOff, off := build(false)
	var onResults, offResults []uint32
	for i := 0; i < 40; i++ {
		clkOn.Run(250)
		clkOff.Run(250)
		onResults = append(onResults, on.Result())
		offResults = append(offResults, off.Result())
	}
	if on.Conversions != off.Conversions {
		t.Fatalf("conversions: scheduled=%d always-on=%d", on.Conversions, off.Conversions)
	}
	for i := range onResults {
		if onResults[i] != offResults[i] {
			t.Fatalf("result %d: scheduled=%#x always-on=%#x", i, onResults[i], offResults[i])
		}
	}
}

func TestCANScheduledMatchesAlwaysOn(t *testing.T) {
	build := func(scheduled bool) (*sim.Clock, *CANNode) {
		r := irq.New()
		s := r.AddSRN("can", 7, irq.ToCPU, 0)
		c := NewCANNode("can", 0, 700, 4, sim.NewRNG(11), r, s)
		clk := sim.NewClock()
		if !scheduled {
			clk.SetWakeScheduling(false)
		}
		// Pop the FIFO every 500 cycles so arrivals keep flowing.
		clk.Attach("pop", sim.TickerFunc(func(cy uint64) {
			if cy%500 == 0 {
				buf := make([]byte, 4)
				c.Access(cy, &bus.Request{Addr: RegResult, Data: buf})
			}
			r.View(irq.ToCPU).AckIRQ(7)
		}))
		clk.Attach("can", c)
		return clk, c
	}
	clkOn, on := build(true)
	clkOff, off := build(false)
	clkOn.Run(100_000)
	clkOff.Run(100_000)
	if on.Received != off.Received || on.Dropped != off.Dropped {
		t.Errorf("scheduled rx=%d drop=%d, always-on rx=%d drop=%d",
			on.Received, on.Dropped, off.Received, off.Dropped)
	}
	if on.FIFOLevel() != off.FIFOLevel() {
		t.Errorf("fifo level: scheduled=%d always-on=%d", on.FIFOLevel(), off.FIFOLevel())
	}
}

func TestFlexRayScheduledMatchesAlwaysOn(t *testing.T) {
	build := func(scheduled bool) (*sim.Clock, *FlexRayNode) {
		r := irq.New()
		s := r.AddSRN("fr", 8, irq.ToCPU, 0)
		f := NewFlexRay("fr", 0, 1000, 7, []int{1, 4}, 5, 8, sim.NewRNG(3), r, s)
		clk := sim.NewClock()
		if !scheduled {
			clk.SetWakeScheduling(false)
		}
		clk.Attach("pop", sim.TickerFunc(func(cy uint64) {
			if cy%300 == 0 {
				buf := make([]byte, 4)
				f.Access(cy, &bus.Request{Addr: RegResult, Data: buf})
			}
			if cy%2000 == 0 { // arm a TX frame now and then
				wr32(f, RegPeriod, uint32(cy))
			}
			r.View(irq.ToCPU).AckIRQ(8)
		}))
		clk.Attach("fr", f)
		return clk, f
	}
	clkOn, on := build(true)
	clkOff, off := build(false)
	clkOn.Run(50_000)
	clkOff.Run(50_000)
	if on.RxFrames != off.RxFrames || on.TxFrames != off.TxFrames || on.Dropped != off.Dropped {
		t.Errorf("scheduled rx=%d tx=%d drop=%d, always-on rx=%d tx=%d drop=%d",
			on.RxFrames, on.TxFrames, on.Dropped, off.RxFrames, off.TxFrames, off.Dropped)
	}
	if on.lastSlot != off.lastSlot {
		t.Errorf("lastSlot: scheduled=%d always-on=%d", on.lastSlot, off.lastSlot)
	}
}

func TestFlexRayNextWakeBoundaries(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("fr", 8, irq.ToCPU, 0)
	// 10 cycles, 3 slots: boundaries at pos 0 (slot 0), 4 (slot 1), 7 (slot 2).
	f := NewFlexRay("fr", 0, 10, 3, nil, 0, 1, sim.NewRNG(1), r, s)
	f.lastSlot = 0
	if got := f.NextWake(1); got != 4 {
		t.Errorf("NextWake(1) = %d, want 4 (slot 1 start)", got)
	}
	f.lastSlot = 2
	if got := f.NextWake(8); got != 10 {
		t.Errorf("NextWake(8) = %d, want 10 (next comm cycle)", got)
	}
	f.lastSlot = 0
	if got := f.NextWake(4); got != 4 {
		t.Errorf("NextWake(4) = %d, want 4 (boundary not yet consumed)", got)
	}
}
