package periph

import (
	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/sim"
)

// FlexRayNode models a time-triggered communication controller in the
// spirit of FlexRay's static segment: the communication cycle is divided
// into equal slots; designated receive slots deliver a frame from the
// (synthetic) remote nodes, and one transmit slot sends whatever software
// placed in the TX register. The paper names FlexRay, alongside CAN, as
// the user interface a monitor routine reports over in the late
// development phase.
//
// Register map (offsets per the shared periph constants):
//
//	RegStatus  current slot number (read)
//	RegResult  pop the oldest received frame word (read)
//	RegID      fill level of the receive buffer (read)
//	RegPeriod  TX register (write); transmitted in the next own slot
type FlexRayNode struct {
	Label     string
	Base      uint32
	CycleLen  uint64 // communication cycle length in CPU cycles
	NumSlots  int
	RxSlots   []int // slots in which remote frames arrive
	TxSlot    int   // our transmit slot
	FIFODepth int
	Enabled   bool

	rng    *sim.RNG
	router *irq.Router
	srn    *irq.SRN // raised per received frame

	fifo     []uint32
	txData   uint32
	txArmed  bool
	lastSlot int

	// Statistics.
	RxFrames uint64
	TxFrames uint64
	Dropped  uint64
}

// NewFlexRay creates a node. The SRN is raised once per received frame.
func NewFlexRay(name string, base uint32, cycleLen uint64, numSlots int,
	rxSlots []int, txSlot int, depth int, rng *sim.RNG, router *irq.Router, srn *irq.SRN) *FlexRayNode {
	if cycleLen == 0 || numSlots <= 0 || depth <= 0 {
		panic("periph: bad FlexRay parameters")
	}
	if uint64(numSlots) > cycleLen {
		panic("periph: more slots than cycles")
	}
	for _, s := range append(append([]int(nil), rxSlots...), txSlot) {
		if s < 0 || s >= numSlots {
			panic("periph: slot out of schedule")
		}
	}
	return &FlexRayNode{Label: name, Base: base, CycleLen: cycleLen,
		NumSlots: numSlots, RxSlots: rxSlots, TxSlot: txSlot, FIFODepth: depth,
		Enabled: true, rng: rng, router: router, srn: srn, lastSlot: -1}
}

// Name implements bus.Target.
func (f *FlexRayNode) Name() string { return f.Label }

// Slot returns the static-segment slot active at the given cycle.
func (f *FlexRayNode) Slot(cycle uint64) int {
	pos := cycle % f.CycleLen
	return int(pos * uint64(f.NumSlots) / f.CycleLen)
}

// NextWake implements sim.Sleeper: the next slot-boundary cycle. Tick is a
// no-op inside a slot (slot == lastSlot), so only boundary cycles matter;
// lastSlot — and with it the RegStatus readback — advances on exactly the
// same cycles as when every cycle is dispatched.
func (f *FlexRayNode) NextWake(from uint64) uint64 {
	if !f.Enabled {
		return sim.NoWake
	}
	pos := from % f.CycleLen
	slot := int(pos * uint64(f.NumSlots) / f.CycleLen)
	if slot != f.lastSlot {
		return from
	}
	// First cycle of slot+1: ceil((slot+1)*CycleLen/NumSlots), wrapping to
	// the next communication cycle after the last slot.
	if slot == f.NumSlots-1 {
		return from - pos + f.CycleLen
	}
	n := uint64(slot+1) * f.CycleLen
	next := n / uint64(f.NumSlots)
	if n%uint64(f.NumSlots) != 0 {
		next++
	}
	return from - pos + next
}

// Tick implements sim.Ticker: deliver/transmit on slot boundaries.
func (f *FlexRayNode) Tick(cycle uint64) {
	if !f.Enabled {
		return
	}
	slot := f.Slot(cycle)
	if slot == f.lastSlot {
		return
	}
	f.lastSlot = slot
	for _, rx := range f.RxSlots {
		if slot == rx {
			frame := uint32(f.rng.Uint64())
			if len(f.fifo) >= f.FIFODepth {
				f.Dropped++
			} else {
				f.fifo = append(f.fifo, frame)
				f.RxFrames++
				f.router.Request(f.srn)
			}
			return
		}
	}
	if slot == f.TxSlot && f.txArmed {
		f.TxFrames++
		f.txArmed = false
	}
}

// Access implements bus.Target.
func (f *FlexRayNode) Access(_ uint64, req *bus.Request) uint64 {
	off := req.Addr - f.Base
	switch off {
	case RegStatus:
		if !req.Write {
			put32(req.Data, uint32(f.lastSlot))
		}
	case RegID:
		if !req.Write {
			put32(req.Data, uint32(len(f.fifo)))
		}
	case RegResult:
		if !req.Write {
			if len(f.fifo) > 0 {
				put32(req.Data, f.fifo[0])
				f.fifo = f.fifo[1:]
			} else {
				zero(req.Data)
			}
		}
	case RegPeriod: // TX register
		if req.Write {
			f.txData = get32(req.Data)
			f.txArmed = true
		} else {
			put32(req.Data, f.txData)
		}
	default:
		if !req.Write {
			zero(req.Data)
		}
	}
	return 2
}

// FIFOLevel returns the queued frame count (test access).
func (f *FlexRayNode) FIFOLevel() int { return len(f.fifo) }
