package periph

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/sim"
)

func TestTimerPeriodicRequests(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("t0", 5, irq.ToCPU, 0)
	tm := NewTimer("t0", 0xF000_0000, 100, 0, r, s)
	for cy := uint64(0); cy < 1000; cy++ {
		tm.Tick(cy)
		// Drain so collapse does not hide expiries.
		r.View(irq.ToCPU).AckIRQ(5)
	}
	if tm.Expiries != 10 {
		t.Errorf("expiries = %d, want 10", tm.Expiries)
	}
	if s.Requests != 10 {
		t.Errorf("requests = %d, want 10", s.Requests)
	}
}

func TestTimerOffsetPhase(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("t0", 5, irq.ToCPU, 0)
	tm := NewTimer("t0", 0, 100, 30, r, s)
	var first uint64
	for cy := uint64(0); cy < 200; cy++ {
		tm.Tick(cy)
		if s.Pending() && first == 0 {
			first = cy
			break
		}
	}
	if first != 30 {
		t.Errorf("first expiry at %d, want 30", first)
	}
}

func TestTimerRegisters(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("t0", 5, irq.ToCPU, 0)
	tm := NewTimer("t0", 0xF000_0000, 100, 0, r, s)
	// Disable via CTRL.
	tm.Access(0, &bus.Request{Addr: 0xF000_0000 + RegCtrl, Data: []byte{0, 0, 0, 0}, Write: true})
	if tm.Enabled {
		t.Error("CTRL write must disable")
	}
	// Change period.
	tm.Access(0, &bus.Request{Addr: 0xF000_0000 + RegPeriod, Data: []byte{50, 0, 0, 0}, Write: true})
	if tm.Period != 50 {
		t.Errorf("period = %d, want 50", tm.Period)
	}
	buf := make([]byte, 4)
	tm.Access(0, &bus.Request{Addr: 0xF000_0000 + RegPeriod, Data: buf})
	if buf[0] != 50 {
		t.Errorf("period readback = %d", buf[0])
	}
}

func TestSignalShapeAndDeterminism(t *testing.T) {
	mk := func() *Signal { return NewSignal(800, 6000, 1000, 0, sim.NewRNG(1)) }
	s1, s2 := mk(), mk()
	var min, max uint32 = 1 << 31, 0
	for i := 0; i < 2000; i++ {
		v1, v2 := s1.Next(), s2.Next()
		if v1 != v2 {
			t.Fatal("signal not deterministic")
		}
		if v1 < min {
			min = v1
		}
		if v1 > max {
			max = v1
		}
	}
	if min != 800 || max != 6000 {
		t.Errorf("range [%d,%d], want [800,6000]", min, max)
	}
}

func TestSignalJitterBounded(t *testing.T) {
	s := NewSignal(1000, 2000, 100, 10, sim.NewRNG(7))
	for i := 0; i < 5000; i++ {
		if v := s.Next(); v < 1000 || v > 2000 {
			t.Fatalf("sample %d out of bounds: %d", i, v)
		}
	}
}

func TestADCConversionAndRead(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("adc", 7, irq.ToCPU, 0)
	sig := NewSignal(100, 200, 50, 0, sim.NewRNG(3))
	adc := NewADC("adc", 0xF000_0100, 10, 0, sig, r, s)
	for cy := uint64(0); cy < 35; cy++ {
		adc.Tick(cy)
	}
	if adc.Conversions != 4 { // cycles 0,10,20,30
		t.Errorf("conversions = %d, want 4", adc.Conversions)
	}
	buf := make([]byte, 4)
	adc.Access(0, &bus.Request{Addr: 0xF000_0100 + RegStatus, Data: buf})
	if buf[0] != 1 {
		t.Error("done flag not set")
	}
	adc.Access(0, &bus.Request{Addr: 0xF000_0100 + RegResult, Data: buf})
	v := uint32(buf[0]) | uint32(buf[1])<<8
	if v != adc.Result() {
		t.Errorf("result read %d != %d", v, adc.Result())
	}
	adc.Access(0, &bus.Request{Addr: 0xF000_0100 + RegStatus, Data: buf})
	if buf[0] != 0 {
		t.Error("result read must clear done")
	}
}

func TestCANFIFOAndDrops(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("can", 4, irq.ToCPU, 0)
	cn := NewCANNode("can", 0xF000_0200, 20, 4, sim.NewRNG(11), r, s)
	for cy := uint64(0); cy < 2000; cy++ {
		cn.Tick(cy)
	}
	if cn.Received == 0 {
		t.Fatal("no messages received")
	}
	if cn.FIFOLevel() != 4 {
		t.Errorf("fifo level = %d, want full (4)", cn.FIFOLevel())
	}
	if cn.Dropped == 0 {
		t.Error("undrained fifo must drop")
	}
	// Pop all four.
	buf := make([]byte, 4)
	for i := 0; i < 4; i++ {
		cn.Access(0, &bus.Request{Addr: 0xF000_0200 + RegResult, Data: buf})
	}
	if cn.FIFOLevel() != 0 {
		t.Errorf("fifo level after pops = %d", cn.FIFOLevel())
	}
}

func TestCANMeanRate(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("can", 4, irq.ToCPU, 0)
	cn := NewCANNode("can", 0, 100, 1<<20, sim.NewRNG(5), r, s)
	const horizon = 1_000_000
	for cy := uint64(0); cy < horizon; cy++ {
		cn.Tick(cy)
	}
	got := float64(cn.Received)
	want := float64(horizon) / 100
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("received %v messages, want about %v", got, want)
	}
	_ = s
}

func TestPeripheralNames(t *testing.T) {
	r := irq.New()
	tm := NewTimer("t0", 0, 10, 0, r, r.AddSRN("a", 1, irq.ToCPU, 0))
	adc := NewADC("a0", 0, 10, 0, NewSignal(0, 1, 2, 0, sim.NewRNG(1)), r, r.AddSRN("b", 2, irq.ToCPU, 0))
	cn := NewCANNode("c0", 0, 10, 1, sim.NewRNG(1), r, r.AddSRN("c", 3, irq.ToCPU, 0))
	if tm.Name() != "t0" || adc.Name() != "a0" || cn.Name() != "c0" {
		t.Error("names wrong")
	}
}

func TestConstructorValidation(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("x", 1, irq.ToCPU, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("timer period 0", func() { NewTimer("t", 0, 0, 0, r, s) })
	mustPanic("adc period 0", func() { NewADC("a", 0, 0, 0, nil, r, s) })
	mustPanic("can gap 0", func() { NewCANNode("c", 0, 0, 1, sim.NewRNG(1), r, s) })
	mustPanic("can depth 0", func() { NewCANNode("c", 0, 10, 0, sim.NewRNG(1), r, s) })
	mustPanic("signal range", func() { NewSignal(10, 5, 2, 0, sim.NewRNG(1)) })
}

func TestTimerCtrlReadAndCount(t *testing.T) {
	r := irq.New()
	tm := NewTimer("t0", 0x100, 50, 0, r, r.AddSRN("a", 1, irq.ToCPU, 0))
	buf := make([]byte, 4)
	tm.Access(0, &bus.Request{Addr: 0x100 + RegCtrl, Data: buf})
	if buf[0] != 1 {
		t.Error("enabled CTRL must read 1")
	}
	for cy := uint64(0); cy < 25; cy++ {
		tm.Tick(cy)
	}
	tm.Access(0, &bus.Request{Addr: 0x100 + RegCount, Data: buf})
	if buf[0] != 25 {
		t.Errorf("count = %d", buf[0])
	}
	// Unknown register reads zero.
	buf[0] = 0xFF
	tm.Access(0, &bus.Request{Addr: 0x100 + 0x1C, Data: buf})
	if buf[0] != 0 {
		t.Error("unknown register must read zero")
	}
	// Zero-period write is ignored.
	tm.Access(0, &bus.Request{Addr: 0x100 + RegPeriod, Data: []byte{0, 0, 0, 0}, Write: true})
	if tm.Period != 50 {
		t.Error("zero period write must be ignored")
	}
}

func TestADCCtrlAndDisable(t *testing.T) {
	r := irq.New()
	sig := NewSignal(5, 5, 10, 0, sim.NewRNG(1)) // constant signal
	adc := NewADC("a0", 0x200, 10, 0, sig, r, r.AddSRN("a", 1, irq.ToCPU, 0))
	buf := make([]byte, 4)
	adc.Access(0, &bus.Request{Addr: 0x200 + RegCtrl, Data: buf})
	if buf[0] != 1 {
		t.Error("CTRL must read enabled")
	}
	adc.Access(0, &bus.Request{Addr: 0x200 + RegCtrl, Data: []byte{0, 0, 0, 0}, Write: true})
	for cy := uint64(0); cy < 100; cy++ {
		adc.Tick(cy)
	}
	if adc.Conversions != 0 {
		t.Error("disabled ADC converted")
	}
	// Constant signal returns Min.
	if v := sig.Next(); v != 5 {
		t.Errorf("constant signal = %d", v)
	}
}

func TestCANEmptyReadsAndIDRegister(t *testing.T) {
	r := irq.New()
	cn := NewCANNode("c0", 0x300, 50, 4, sim.NewRNG(2), r, r.AddSRN("a", 1, irq.ToCPU, 0))
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	cn.Access(0, &bus.Request{Addr: 0x300 + RegResult, Data: buf})
	if buf[0] != 0 {
		t.Error("empty FIFO pop must read zero")
	}
	buf = []byte{0xFF, 0xFF, 0xFF, 0xFF}
	cn.Access(0, &bus.Request{Addr: 0x300 + RegID, Data: buf})
	if buf[0] != 0 {
		t.Error("empty FIFO id must read zero")
	}
	// Receive something, then the ID register shows the head without popping.
	for cy := uint64(0); cy < 500 && cn.FIFOLevel() == 0; cy++ {
		cn.Tick(cy)
	}
	if cn.FIFOLevel() == 0 {
		t.Fatal("no message arrived")
	}
	before := cn.FIFOLevel()
	cn.Access(0, &bus.Request{Addr: 0x300 + RegID, Data: buf})
	id := uint32(buf[0]) | uint32(buf[1])<<8
	if id < 0x100 || id > 0x11F {
		t.Errorf("message id = %#x", id)
	}
	if cn.FIFOLevel() != before {
		t.Error("ID read must not pop")
	}
}

func TestFlexRaySlotSchedule(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("fr", 9, irq.ToCPU, 0)
	// 1000-cycle cycle, 10 slots of 100 cycles; rx in slots 2 and 7.
	fr := NewFlexRay("fr0", 0x400, 1000, 10, []int{2, 7}, 5, 8, sim.NewRNG(3), r, s)
	for cy := uint64(0); cy < 5000; cy++ {
		fr.Tick(cy)
	}
	// 5 communication cycles × 2 rx slots = 10 arrivals; the depth-8 FIFO
	// accepts 8 and drops 2 (nobody drains it).
	if fr.RxFrames+fr.Dropped != 10 {
		t.Errorf("arrivals = %d, want 10", fr.RxFrames+fr.Dropped)
	}
	if fr.Slot(0) != 0 || fr.Slot(999) != 9 || fr.Slot(1000) != 0 {
		t.Error("slot arithmetic wrong")
	}
	if fr.FIFOLevel() != 8 || fr.Dropped != 2 {
		t.Errorf("fifo=%d dropped=%d, want 8/2", fr.FIFOLevel(), fr.Dropped)
	}
}

func TestFlexRayTransmitAndRegisters(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("fr", 9, irq.ToCPU, 0)
	fr := NewFlexRay("fr0", 0x400, 100, 10, nil, 3, 4, sim.NewRNG(3), r, s)
	// Arm TX data via the register.
	fr.Access(0, &bus.Request{Addr: 0x400 + RegPeriod, Data: []byte{0xAA, 0, 0, 0}, Write: true})
	for cy := uint64(0); cy < 100; cy++ {
		fr.Tick(cy)
	}
	if fr.TxFrames != 1 {
		t.Errorf("tx frames = %d, want 1 (one armed frame)", fr.TxFrames)
	}
	// Without re-arming, the next cycle transmits nothing.
	for cy := uint64(100); cy < 200; cy++ {
		fr.Tick(cy)
	}
	if fr.TxFrames != 1 {
		t.Errorf("tx frames = %d, want still 1", fr.TxFrames)
	}
	buf := make([]byte, 4)
	fr.Access(0, &bus.Request{Addr: 0x400 + RegPeriod, Data: buf})
	if buf[0] != 0xAA {
		t.Error("tx register readback failed")
	}
	fr.Access(0, &bus.Request{Addr: 0x400 + RegStatus, Data: buf})
	if buf[0] != 9 { // last slot of the cycle
		t.Errorf("status slot = %d", buf[0])
	}
}

func TestFlexRayReceivePop(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("fr", 9, irq.ToCPU, 0)
	fr := NewFlexRay("fr0", 0, 100, 10, []int{0}, 5, 4, sim.NewRNG(3), r, s)
	fr.Tick(0) // slot 0 -> frame
	if fr.FIFOLevel() != 1 || !s.Pending() {
		t.Fatal("frame not delivered")
	}
	buf := make([]byte, 4)
	fr.Access(0, &bus.Request{Addr: RegID, Data: buf})
	if buf[0] != 1 {
		t.Error("level register wrong")
	}
	fr.Access(0, &bus.Request{Addr: RegResult, Data: buf})
	if fr.FIFOLevel() != 0 {
		t.Error("pop failed")
	}
	fr.Access(0, &bus.Request{Addr: RegResult, Data: buf})
	if buf[0]|buf[1]|buf[2]|buf[3] != 0 {
		t.Error("empty pop must read zero")
	}
}

func TestFlexRayValidation(t *testing.T) {
	r := irq.New()
	s := r.AddSRN("fr", 9, irq.ToCPU, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero cycle", func() { NewFlexRay("f", 0, 0, 10, nil, 0, 1, sim.NewRNG(1), r, s) })
	mustPanic("slot oob", func() { NewFlexRay("f", 0, 100, 10, []int{10}, 0, 1, sim.NewRNG(1), r, s) })
	mustPanic("too many slots", func() { NewFlexRay("f", 0, 5, 10, nil, 0, 1, sim.NewRNG(1), r, s) })
}
