// Package periph models the peripherals that make the workload hard
// real-time: general-purpose timers, an ADC producing converted analog
// inputs from synthetic signals, and a CAN-like message node. All
// processing in the generated customer applications is triggered by these
// sources, matching the paper's characterization of automotive systems
// ("processing activities are triggered by interrupts or at least are
// dependant on real-time data like converted analog inputs").
package periph

import (
	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/sim"
)

// Register offsets shared by the peripheral models.
const (
	RegCtrl   = 0x00 // bit0: enable
	RegPeriod = 0x04
	RegCount  = 0x08
	RegResult = 0x0C // ADC result / CAN data
	RegStatus = 0x10 // CAN fifo level / ADC done flag
	RegID     = 0x14 // CAN message id
	RegSize   = 0x20 // register window size per peripheral
)

// nextOnGrid returns the earliest cycle >= from on the periodic grid the
// tickers fire on: cycles where (c+period-offset)%period == 0, evaluated in
// uint64 arithmetic exactly as Tick evaluates it. When offset >= period
// (possible after a RegPeriod write shrinks the period below a previously
// clamped offset) that expression wraps below zero for c < offset-period,
// so the grid has two regimes; the boundary cycle offset-period always
// fires and must not be skipped over.
func nextOnGrid(from, period, offset uint64) uint64 {
	next := from + (period-(from+period-offset)%period)%period
	if offset >= period {
		if b := offset - period; b >= from && b < next {
			next = b
		}
	}
	return next
}

// Timer raises its SRN every Period cycles while enabled.
//
// The timer is a sim.Sleeper: between expiries its Tick is never called,
// so the free-running count register is kept lazily — count holds the
// enabled cycles accounted through cycle doneC-1 and the remainder is
// reconstructed from the clock on demand. The arithmetic assumes Tick
// cycles are non-decreasing (true under a clock, and for every direct-Tick
// test that steps from the cycle the timer last saw).
type Timer struct {
	Label   string
	Base    uint32
	Period  uint64
	Offset  uint64 // phase shift of the first expiry
	Enabled bool

	router *irq.Router
	srn    *irq.SRN
	waker  *sim.Waker
	count  uint64 // enabled cycles accounted through doneC-1
	doneC  uint64 // first cycle not yet accounted into count

	Expiries uint64
}

// NewTimer creates a timer bound to srn.
func NewTimer(name string, base uint32, period, offset uint64, router *irq.Router, srn *irq.SRN) *Timer {
	if period == 0 {
		panic("periph: timer period must be > 0")
	}
	return &Timer{Label: name, Base: base, Period: period, Offset: offset % period,
		Enabled: true, router: router, srn: srn}
}

// Name implements bus.Target.
func (t *Timer) Name() string { return t.Label }

// BindWake implements sim.WakeBinder: register writes reschedule the
// timer, so it needs its clock handle.
func (t *Timer) BindWake(w *sim.Waker) { t.waker = w }

// NextWake implements sim.Sleeper: the next expiry on the period grid.
func (t *Timer) NextWake(from uint64) uint64 {
	if !t.Enabled {
		return sim.NoWake
	}
	return nextOnGrid(from, t.Period, t.Offset)
}

// Tick implements sim.Ticker.
func (t *Timer) Tick(cycle uint64) {
	if !t.Enabled {
		return
	}
	t.count += cycle + 1 - t.doneC
	t.doneC = cycle + 1
	if (cycle+t.Period-t.Offset)%t.Period == 0 {
		t.Expiries++
		t.router.Request(t.srn)
	}
}

// syncCount folds the cycles the (possibly sleeping) timer has not been
// ticked for into count, up to but excluding the clock's current cycle —
// the current cycle's own tick, if any, still runs after the bus masters.
func (t *Timer) syncCount() {
	cur := t.waker.Cycle()
	if cur <= t.doneC {
		return
	}
	if t.Enabled {
		t.count += cur - t.doneC
	}
	t.doneC = cur
}

// Access implements bus.Target (control/status registers).
func (t *Timer) Access(_ uint64, req *bus.Request) uint64 {
	off := req.Addr - t.Base
	switch off {
	case RegCtrl:
		if req.Write {
			t.syncCount()
			t.Enabled = req.Data[0]&1 != 0
			t.waker.Reschedule(t.NextWake(t.waker.Cycle()))
		} else {
			put32(req.Data, b2u(t.Enabled))
		}
	case RegPeriod:
		if req.Write {
			if v := get32(req.Data); v > 0 {
				t.Period = uint64(v)
				t.waker.Reschedule(t.NextWake(t.waker.Cycle()))
			}
		} else {
			put32(req.Data, uint32(t.Period))
		}
	case RegCount:
		if !req.Write {
			t.syncCount()
			put32(req.Data, uint32(t.count))
		}
	default:
		if !req.Write {
			zero(req.Data)
		}
	}
	return 1
}

// Signal produces deterministic synthetic sensor values. It is an integer
// triangle wave plus bounded pseudo-random jitter — engine-speed-like but
// reproducible bit-for-bit across platforms (no floating point).
type Signal struct {
	Min, Max  uint32
	PeriodUS  uint64 // triangle period in sample counts
	JitterPct int    // 0..100
	rng       *sim.RNG
	n         uint64
}

// NewSignal creates a signal source.
func NewSignal(min, max uint32, period uint64, jitterPct int, rng *sim.RNG) *Signal {
	if max < min || period == 0 {
		panic("periph: bad signal parameters")
	}
	return &Signal{Min: min, Max: max, PeriodUS: period, JitterPct: jitterPct, rng: rng}
}

// Next returns the next sample.
func (s *Signal) Next() uint32 {
	span := uint64(s.Max - s.Min)
	if span == 0 {
		return s.Min
	}
	ph := s.n % s.PeriodUS
	s.n++
	half := s.PeriodUS / 2
	var frac uint64
	if ph < half {
		frac = ph * span / half
	} else {
		frac = (s.PeriodUS - ph) * span / half
	}
	v := uint64(s.Min) + frac
	if s.JitterPct > 0 {
		j := span * uint64(s.JitterPct) / 100
		if j > 0 {
			v += uint64(s.rng.Intn(int(2*j+1))) - j
		}
	}
	if v < uint64(s.Min) {
		v = uint64(s.Min)
	}
	if v > uint64(s.Max) {
		v = uint64(s.Max)
	}
	return uint32(v)
}

// ADC converts one sample every Period cycles and raises its SRN when the
// result register is updated.
type ADC struct {
	Label   string
	Base    uint32
	Period  uint64
	Offset  uint64
	Enabled bool

	signal *Signal
	router *irq.Router
	srn    *irq.SRN
	waker  *sim.Waker

	result uint32
	done   bool

	Conversions uint64
}

// NewADC creates an ADC sampling signal every period cycles.
func NewADC(name string, base uint32, period, offset uint64, signal *Signal, router *irq.Router, srn *irq.SRN) *ADC {
	if period == 0 {
		panic("periph: adc period must be > 0")
	}
	return &ADC{Label: name, Base: base, Period: period, Offset: offset % period,
		Enabled: true, signal: signal, router: router, srn: srn}
}

// Name implements bus.Target.
func (a *ADC) Name() string { return a.Label }

// BindWake implements sim.WakeBinder.
func (a *ADC) BindWake(w *sim.Waker) { a.waker = w }

// NextWake implements sim.Sleeper: the next conversion on the period grid.
// The signal's RNG only advances on conversion cycles, so sleeping between
// them draws the exact same jitter sequence as ticking every cycle.
func (a *ADC) NextWake(from uint64) uint64 {
	if !a.Enabled {
		return sim.NoWake
	}
	return nextOnGrid(from, a.Period, a.Offset)
}

// Tick implements sim.Ticker.
func (a *ADC) Tick(cycle uint64) {
	if !a.Enabled {
		return
	}
	if (cycle+a.Period-a.Offset)%a.Period == 0 {
		a.result = a.signal.Next()
		a.done = true
		a.Conversions++
		a.router.Request(a.srn)
	}
}

// Access implements bus.Target.
func (a *ADC) Access(_ uint64, req *bus.Request) uint64 {
	off := req.Addr - a.Base
	switch off {
	case RegCtrl:
		if req.Write {
			a.Enabled = req.Data[0]&1 != 0
			a.waker.Reschedule(a.NextWake(a.waker.Cycle()))
		} else {
			put32(req.Data, b2u(a.Enabled))
		}
	case RegResult:
		if !req.Write {
			put32(req.Data, a.result)
			a.done = false
		}
	case RegStatus:
		if !req.Write {
			put32(req.Data, b2u(a.done))
		}
	default:
		if !req.Write {
			zero(req.Data)
		}
	}
	return 1
}

// Result returns the latest conversion (test access).
func (a *ADC) Result() uint32 { return a.result }

// CANMsg is one received message.
type CANMsg struct {
	ID   uint32
	Data uint32
}

// CANNode receives messages on a deterministic pseudo-random schedule into
// a FIFO and raises its SRN per message. A full FIFO drops the message.
type CANNode struct {
	Label     string
	Base      uint32
	MeanGap   uint64 // average cycles between messages
	FIFODepth int
	Enabled   bool

	rng    *sim.RNG
	router *irq.Router
	srn    *irq.SRN

	fifo    []CANMsg
	nextArr uint64

	Received uint64
	Dropped  uint64
}

// NewCANNode creates a CAN-like receiver.
func NewCANNode(name string, base uint32, meanGap uint64, depth int, rng *sim.RNG, router *irq.Router, srn *irq.SRN) *CANNode {
	if meanGap == 0 || depth <= 0 {
		panic("periph: bad CAN parameters")
	}
	c := &CANNode{Label: name, Base: base, MeanGap: meanGap, FIFODepth: depth,
		Enabled: true, rng: rng, router: router, srn: srn}
	c.scheduleNext(0)
	return c
}

// Name implements bus.Target.
func (c *CANNode) Name() string { return c.Label }

// NextWake implements sim.Sleeper: the pre-drawn arrival cycle. The RNG
// advances only when an arrival is processed, so the schedule is identical
// whether or not the idle cycles in between are dispatched.
func (c *CANNode) NextWake(from uint64) uint64 {
	if !c.Enabled {
		return sim.NoWake
	}
	if c.nextArr < from {
		return from
	}
	return c.nextArr
}

func (c *CANNode) scheduleNext(now uint64) {
	// Uniform gap in [MeanGap/2, 3*MeanGap/2]: bounded jitter, mean MeanGap.
	gap := c.MeanGap/2 + uint64(c.rng.Intn(int(c.MeanGap)+1))
	if gap == 0 {
		gap = 1
	}
	c.nextArr = now + gap
}

// Tick implements sim.Ticker.
func (c *CANNode) Tick(cycle uint64) {
	if !c.Enabled || cycle < c.nextArr {
		return
	}
	msg := CANMsg{ID: uint32(0x100 + c.rng.Intn(32)), Data: uint32(c.rng.Uint64())}
	if len(c.fifo) >= c.FIFODepth {
		c.Dropped++
	} else {
		c.fifo = append(c.fifo, msg)
		c.Received++
		c.router.Request(c.srn)
	}
	c.scheduleNext(cycle)
}

// Access implements bus.Target. Reading RegResult pops the FIFO head data;
// RegID reads its id without popping; RegStatus reads the fill level.
func (c *CANNode) Access(_ uint64, req *bus.Request) uint64 {
	off := req.Addr - c.Base
	switch off {
	case RegStatus:
		if !req.Write {
			put32(req.Data, uint32(len(c.fifo)))
		}
	case RegID:
		if !req.Write {
			if len(c.fifo) > 0 {
				put32(req.Data, c.fifo[0].ID)
			} else {
				zero(req.Data)
			}
		}
	case RegResult:
		if !req.Write {
			if len(c.fifo) > 0 {
				put32(req.Data, c.fifo[0].Data)
				c.fifo = c.fifo[1:]
			} else {
				zero(req.Data)
			}
		}
	default:
		if !req.Write {
			zero(req.Data)
		}
	}
	return 2
}

// FIFOLevel returns the number of queued messages (test access).
func (c *CANNode) FIFOLevel() int { return len(c.fifo) }

func put32(p []byte, v uint32) {
	for i := range p {
		p[i] = byte(v >> (8 * uint(i)))
	}
}

func get32(p []byte) uint32 {
	var v uint32
	for i := range p {
		v |= uint32(p[i]) << (8 * uint(i))
	}
	return v
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
