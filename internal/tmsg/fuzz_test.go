package tmsg

import "testing"

// FuzzDecode: the tool-side decoder consumes bytes from a hardware FIFO
// that overflow handling may have truncated arbitrarily; it must never
// panic and must always make progress or stop cleanly.
func FuzzDecode(f *testing.F) {
	var enc Encoder
	seed := enc.Encode(nil, &Msg{Kind: KindSync, Cycle: 100, PC: 0x8000_0000})
	seed = enc.Encode(seed, &Msg{Kind: KindFlow, Cycle: 110, ICount: 3, PC: 0x8000_0040})
	seed = enc.Encode(seed, &Msg{Kind: KindRate, Cycle: 200, CounterID: 1, Basis: 100, Count: 6})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		msgs, consumed, err := dec.DecodeAll(data)
		if consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if err == nil && consumed < len(data) {
			// Stopped early without an error: the remainder must be a
			// truncated message, i.e. decoding it alone must also stop.
			var d2 Decoder
			if _, _, err2 := d2.Decode(data[consumed:]); err2 == nil {
				t.Fatal("decoder stopped although another message was decodable")
			}
		}
		_ = msgs
	})
}

// FuzzEncodeDecodeRoundTrip: any structurally valid message round-trips.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint64(100), uint32(0x8000_0000), uint64(5))
	f.Fuzz(func(t *testing.T, kindRaw, src uint8, cycle uint64, pc uint32, count uint64) {
		m := Msg{
			Kind:  Kind(kindRaw % uint8(numKinds)),
			Src:   src % MaxSources,
			Cycle: cycle,
			PC:    pc,
		}
		switch m.Kind {
		case KindFlow:
			m.ICount = count
		case KindData:
			m.Addr, m.Data = pc, uint32(count)
			m.PC = 0
		case KindRate:
			m.CounterID = uint8(count)
			m.Basis, m.Count = count, count/2
			m.PC = 0
		case KindTrigger:
			m.TriggerID = uint8(count)
			m.PC = 0
		case KindOverflow:
			m.Lost = count
			m.PC = 0
			m.Cycle = 0
		}
		var enc Encoder
		// Anchor first so deltas are well-defined.
		buf := enc.Encode(nil, &Msg{Kind: KindSync, Src: m.Src})
		if m.Kind != KindSync && m.Kind != KindOverflow {
			// Cycle must be >= anchor (0), always true for uint64.
			buf = enc.Encode(buf, &m)
		} else {
			buf = enc.Encode(buf, &m)
		}
		var dec Decoder
		msgs, _, err := dec.DecodeAll(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := msgs[len(msgs)-1]
		if got != m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	})
}
