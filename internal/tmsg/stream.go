package tmsg

import "bytes"

// Gap quantifies one detected loss region in the decoded timeline.
// Profiling windows overlapping [StartCycle, EndCycle] carry reduced
// confidence; analyses down-weight them instead of silently presenting a
// gapped profile as complete.
type Gap struct {
	StartCycle uint64 // last trusted cycle before the loss
	EndCycle   uint64 // first trusted cycle after recovery (0 while open / at stream end)
	Msgs       uint64 // messages accounted lost (frame losses + discarded un-anchored messages)
	Bytes      uint64 // garbage bytes skipped while resynchronizing
	Frames     uint64 // frames lost or rejected
}

// Open reports whether the gap extends to the end of the stream.
func (g Gap) Open() bool { return g.EndCycle == 0 }

// StreamDecoder is the hardened tool-side decoder: instead of failing
// terminally on a bad byte (the old DecodeAll contract), it resynchronizes
// and reports a quantified Gap.
//
// In framed mode it consumes the frame stream a reliable DAP delivers:
// CRC-invalid regions are scanned for the next valid frame, the cumulative
// message counter in each frame header converts every loss into an exact
// message count, and messages of a source whose delta state may be stale
// are discarded (and accounted) until that source's next Sync re-anchor.
//
// In raw mode (Framed == false) it decodes the bare message stream and, on
// a corrupt byte, scans forward to the next plausible Sync message — the
// re-anchor the MCDS emits periodically and after every overflow — then
// resumes. Raw-mode losses are quantified in bytes only; framed mode is
// exact in messages.
type StreamDecoder struct {
	// Framed selects the frame-stream format produced by tmsg.Framer.
	Framed bool

	dec      Decoder
	buf      []byte
	anchored [MaxSources]bool
	lastGood uint64 // highest delivered cycle

	expectCum uint32
	expectSeq uint8
	haveSeq   bool

	// msgs is the reusable output scratch handed back by Feed: the hot
	// decode path allocates nothing once buf and msgs have warmed up.
	msgs []Msg

	gap *Gap

	// Statistics. Delivered + Skipped + Lost == total messages the stream
	// carried (after Finalize, exactly the emitter's message count).
	Delivered uint64
	Skipped   uint64 // decoded but discarded: source not re-anchored yet
	Lost      uint64 // never decoded: lost frames / corrupt regions
	Garbage   uint64 // bytes discarded while scanning for resync
	SeqJumps  uint64 // frame sequence discontinuities observed
	Resyncs   uint64 // times the decoder had to re-acquire the stream
	Gaps      []Gap
}

// NewStreamDecoder returns a decoder for a tool that attached at cycle 0
// (every source starts anchored, matching the encoder's zero state).
func NewStreamDecoder(framed bool) *StreamDecoder {
	s := &StreamDecoder{Framed: framed}
	for i := range s.anchored {
		s.anchored[i] = true
	}
	return s
}

// AccountedLost returns every message known to be missing from the
// delivered stream.
func (s *StreamDecoder) AccountedLost() uint64 { return s.Lost + s.Skipped }

// noteLoss opens (or extends) the current gap.
func (s *StreamDecoder) noteLoss(msgs, bytes, frames uint64) {
	if s.gap == nil {
		s.Gaps = append(s.Gaps, Gap{StartCycle: s.lastGood})
		s.gap = &s.Gaps[len(s.Gaps)-1]
	}
	s.gap.Msgs += msgs
	s.gap.Bytes += bytes
	s.gap.Frames += frames
	s.Lost += msgs
	s.Garbage += bytes
}

// skip accounts one decoded-but-untrusted message.
func (s *StreamDecoder) skip() {
	if s.gap == nil {
		s.Gaps = append(s.Gaps, Gap{StartCycle: s.lastGood})
		s.gap = &s.Gaps[len(s.Gaps)-1]
	}
	s.gap.Msgs++
	s.Skipped++
}

// deliver records a trusted message and closes any open gap.
func (s *StreamDecoder) deliver(out []Msg, m Msg) []Msg {
	s.Delivered++
	if m.Cycle > s.lastGood {
		s.lastGood = m.Cycle
	}
	if s.gap != nil {
		s.gap.EndCycle = m.Cycle
		s.gap = nil
	}
	return append(out, m)
}

// unanchorAll marks every source's delta state stale.
func (s *StreamDecoder) unanchorAll() {
	for i := range s.anchored {
		s.anchored[i] = false
	}
}

// accept runs the per-source anchoring policy on one decoded message.
func (s *StreamDecoder) accept(out []Msg, m Msg) []Msg {
	switch {
	case m.Kind == KindSync:
		s.anchored[m.Src] = true
		return s.deliver(out, m)
	case m.Kind == KindOverflow:
		// Overflow markers carry no delta state; always meaningful.
		return s.deliver(out, m)
	case s.anchored[m.Src]:
		return s.deliver(out, m)
	default:
		s.skip()
		return out
	}
}

// Feed consumes newly received bytes and returns the trusted messages they
// complete. It never returns an error: corruption becomes Gaps.
//
// The returned slice is a scratch buffer owned by the decoder and is only
// valid until the next Feed call; callers that retain messages across
// feeds must copy them out (an append does).
func (s *StreamDecoder) Feed(p []byte) []Msg {
	s.buf = append(s.buf, p...)
	if s.Framed {
		s.msgs = s.feedFramed(s.msgs[:0])
	} else {
		s.msgs = s.feedRaw(s.msgs[:0])
	}
	return s.msgs
}

func (s *StreamDecoder) feedFramed(out []Msg) []Msg {
	i := 0
	for {
		// Hunt for the next frame marker.
		j := bytes.IndexByte(s.buf[i:], FrameMarker)
		if j < 0 {
			s.noteLossBytes(len(s.buf) - i)
			i = len(s.buf)
			break
		}
		if j > 0 {
			s.noteLossBytes(j)
			i += j
		}
		n := FrameLen(s.buf[i:])
		if n == -1 {
			break // header incomplete; wait for more bytes
		}
		if n == 0 {
			// Implausible header: a payload byte that happens to be 0xA5.
			// Discard it and keep scanning.
			s.noteLossBytes(1)
			i++
			continue
		}
		if n > len(s.buf)-i {
			break // frame incomplete; wait for more bytes
		}
		f := s.buf[i : i+n]
		if !ValidFrame(f) {
			// Corrupt frame or false marker — advance one byte; the
			// cumulative counter of the next valid frame quantifies
			// whatever was lost here.
			s.noteLossBytes(1)
			i++
			continue
		}
		i += n
		out = s.frame(out, f)
	}
	s.buf = append(s.buf[:0], s.buf[i:]...)
	return out
}

// noteLossBytes accounts garbage without opening a gap prematurely for a
// merely-incomplete tail: callers only pass definitively skipped bytes.
func (s *StreamDecoder) noteLossBytes(n int) {
	if n <= 0 {
		return
	}
	s.noteLoss(0, uint64(n), 0)
	s.unanchorAll()
}

// frame processes one CRC-valid frame.
func (s *StreamDecoder) frame(out []Msg, f []byte) []Msg {
	seq := f[1]
	n := int(f[2])
	cum := uint32(f[3]) | uint32(f[4])<<8 | uint32(f[5])<<16 | uint32(f[6])<<24
	payload := f[frameHeader : frameHeader+n]

	if s.haveSeq && seq != s.expectSeq {
		s.SeqJumps++
	}
	s.expectSeq = seq + 1
	s.haveSeq = true

	if cum != s.expectCum {
		// The header counter tells us exactly how many messages vanished
		// between the last frame we trusted and this one.
		lost := uint64(cum - s.expectCum) // mod-2³² distance
		s.noteLoss(lost, 0, 1)
		s.expectCum = cum
		s.unanchorAll()
		s.Resyncs++
	}

	off := 0
	for off < n {
		m, k, err := s.dec.Decode(payload[off:])
		if err != nil {
			// A CRC-valid frame whose payload does not parse means the
			// encoder and decoder disagree — treat the remainder as lost
			// bytes; the next frame's counter restores exact accounting.
			s.noteLoss(0, uint64(n-off), 0)
			s.unanchorAll()
			break
		}
		off += k
		s.expectCum++
		out = s.accept(out, m)
	}
	return out
}

func (s *StreamDecoder) feedRaw(out []Msg) []Msg {
	i := 0
	for i < len(s.buf) {
		m, k, err := s.dec.Decode(s.buf[i:])
		if err == ErrTruncated {
			break
		}
		if err != nil {
			// Corruption: scan forward to the next plausible Sync message
			// and resume there. Everything in between is garbage.
			s.Resyncs++
			adv, found := s.scanSync(s.buf[i:])
			s.noteLoss(0, uint64(adv), 0)
			s.unanchorAll()
			i += adv
			if !found {
				break // need more bytes to find the anchor
			}
			continue
		}
		i += k
		out = s.accept(out, m)
	}
	s.buf = append(s.buf[:0], s.buf[i:]...)
	return out
}

// scanSync searches b (starting after the corrupt byte) for a decodable
// Sync whose absolute cycle is plausible — not in the past, not
// implausibly far in the future — and which starts a chain of decodable
// messages (garbage varints usually fail one of the two tests). It returns
// how many bytes to discard and whether an anchor was found; when not
// found the caller must wait for more bytes (the discard count then
// excludes the still-ambiguous tail).
func (s *StreamDecoder) scanSync(b []byte) (int, bool) {
	// horizon bounds how far in the future a re-anchor may claim to be:
	// the MCDS emits a Sync at least every SyncEvery cycles, so a genuine
	// anchor is never astronomically ahead of the last good timestamp.
	const horizon = 1 << 24
	for i := 1; i < len(b); i++ {
		h := b[i]
		if Kind(h>>3&0x7) != KindSync || h&0xC0 != 0 {
			continue
		}
		var probe Decoder
		m, n, err := probe.Decode(b[i:])
		if err == ErrTruncated {
			// Possibly a genuine Sync split across reads: stop here and
			// retry once more bytes arrive.
			return i, false
		}
		if err != nil || m.Cycle < s.lastGood || m.Cycle > s.lastGood+horizon {
			continue
		}
		// Lookahead: a genuine anchor is followed by messages that decode
		// cleanly with plausible timestamps.
		plausible := true
		off := i + n
		for k := 0; k < 3 && off < len(b); k++ {
			m2, n2, err2 := probe.Decode(b[off:])
			if err2 == ErrTruncated {
				break
			}
			if err2 != nil || m2.Cycle > m.Cycle+horizon {
				plausible = false
				break
			}
			off += n2
		}
		if plausible {
			return i, true
		}
	}
	return len(b), false
}

// Finalize closes the books at end of stream: total is the emitter's
// message count (Framer.MsgsFramed); any messages the decoder never heard
// about — frames still in flight or abandoned at the very end — are added
// to Lost so that total == Delivered + Skipped + Lost holds exactly.
// Any open gap is left open (EndCycle 0 = extends to end of run).
func (s *StreamDecoder) Finalize(total uint64) {
	tail := uint64(uint32(total) - s.expectCum) // mod-2³² distance
	if tail > 0 {
		s.noteLoss(tail, uint64(len(s.buf)), 0)
		s.buf = s.buf[:0]
		s.expectCum = uint32(total)
	}
}
