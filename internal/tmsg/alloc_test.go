package tmsg

import "testing"

// The trace hot path must not allocate: every simulated cycle can emit
// messages, and a single byte of per-message garbage turns into GC pauses
// at fleet scale. These gates pin the contract for the encoder, the
// stream-decoder feed path, and (in internal/mcds) the emit path.

func TestEncodeZeroAlloc(t *testing.T) {
	var enc Encoder
	buf := make([]byte, 0, 64)
	msgs := []Msg{
		{Kind: KindSync, Src: 1, Cycle: 5000, PC: 0x8000_0000},
		{Kind: KindRate, Src: 2, Cycle: 6000, CounterID: 3, Basis: 1000, Count: 42},
		{Kind: KindFlow, Src: 0, Cycle: 6100, PC: 0x8000_0040, ICount: 16},
		{Kind: KindData, Src: 0, Cycle: 6200, Addr: 0xD000_0010, Data: 0xDEAD, Write: true},
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		m := &msgs[i%len(msgs)]
		i++
		buf = enc.Encode(buf[:0], m)
	})
	if allocs != 0 {
		t.Errorf("Encoder.Encode allocates %.1f objects/op, want 0", allocs)
	}
}

// buildFrames encodes n rate messages into individually captured frames.
func buildFrames(n int) (*Framer, [][]byte) {
	var frames [][]byte
	f := &Framer{Sink: func(fr []byte) bool {
		frames = append(frames, append([]byte(nil), fr...))
		return true
	}}
	var enc Encoder
	var buf []byte
	m := Msg{Kind: KindRate, Src: 1, CounterID: 2, Basis: 1000}
	for i := 0; i < n; i++ {
		m.Cycle += 1000
		m.Count = uint64(i % 50)
		buf = enc.Encode(buf[:0], &m)
		f.Append(buf)
	}
	f.Flush()
	return f, frames
}

func TestStreamDecoderFeedZeroAlloc(t *testing.T) {
	_, frames := buildFrames(20_000)
	if len(frames) < 64 {
		t.Fatalf("only %d frames", len(frames))
	}
	s := NewStreamDecoder(true)
	// Warm-up: let buf and the msgs scratch reach steady-state capacity.
	warm := len(frames) / 2
	for _, fr := range frames[:warm] {
		if s.Feed(fr) == nil {
			t.Fatal("warm-up frame delivered nothing")
		}
	}
	i := warm
	allocs := testing.AllocsPerRun(len(frames)-warm-1, func() {
		s.Feed(frames[i])
		i++
	})
	if allocs != 0 {
		t.Errorf("StreamDecoder.Feed allocates %.1f objects/op on the clean path, want 0", allocs)
	}
	if s.Lost != 0 || s.Skipped != 0 || len(s.Gaps) != 0 {
		t.Errorf("clean stream produced losses: lost=%d skipped=%d gaps=%d",
			s.Lost, s.Skipped, len(s.Gaps))
	}
}

func TestStreamDecoderRawFeedZeroAlloc(t *testing.T) {
	var enc Encoder
	var chunks [][]byte
	var buf []byte
	m := Msg{Kind: KindRate, Src: 0, CounterID: 1, Basis: 500}
	for i := 0; i < 10_000; i++ {
		m.Cycle += 600
		m.Count = uint64(i % 9)
		buf = enc.Encode(buf[:0], &m)
		chunks = append(chunks, append([]byte(nil), buf...))
	}
	s := NewStreamDecoder(false)
	warm := len(chunks) / 2
	for _, c := range chunks[:warm] {
		s.Feed(c)
	}
	i := warm
	allocs := testing.AllocsPerRun(len(chunks)-warm-1, func() {
		s.Feed(chunks[i])
		i++
	})
	if allocs != 0 {
		t.Errorf("raw Feed allocates %.1f objects/op, want 0", allocs)
	}
	if s.Delivered != uint64(len(chunks)) {
		t.Errorf("delivered %d of %d", s.Delivered, len(chunks))
	}
}

func TestFeedReturnValidUntilNextFeed(t *testing.T) {
	// The documented aliasing contract: Feed's return is scratch. Two
	// consecutive feeds must not require the first result after the second
	// call, and copying via append keeps callers safe.
	_, frames := buildFrames(300)
	s := NewStreamDecoder(true)
	var all []Msg
	for _, fr := range frames {
		all = append(all, s.Feed(fr)...)
	}
	if uint64(len(all)) != s.Delivered {
		t.Fatalf("copied %d, delivered %d", len(all), s.Delivered)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Cycle < all[i-1].Cycle {
			t.Fatalf("message %d out of order after scratch reuse", i)
		}
	}
}
