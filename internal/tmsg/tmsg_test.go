package tmsg

import (
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, msgs []Msg) []Msg {
	t.Helper()
	var enc Encoder
	var buf []byte
	for i := range msgs {
		buf = enc.Encode(buf, &msgs[i])
	}
	var dec Decoder
	out, n, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	return out
}

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Msg{
		{Kind: KindSync, Src: 0, Cycle: 100, PC: 0x8000_0000},
		{Kind: KindFlow, Src: 0, Cycle: 110, ICount: 7, PC: 0x8000_0040},
		{Kind: KindFlow, Src: 0, Cycle: 150, ICount: 12, PC: 0x8000_0000},
		{Kind: KindData, Src: 0, Cycle: 160, Addr: 0xD000_0010, Data: 42},
		{Kind: KindData, Src: 0, Cycle: 161, Addr: 0xD000_0014, Data: 43, Write: true},
		{Kind: KindRate, Src: 0, Cycle: 200, CounterID: 3, Basis: 100, Count: 4},
		{Kind: KindTrigger, Src: 0, Cycle: 210, TriggerID: 9},
		{Kind: KindOverflow, Src: 0, Cycle: 210, Lost: 55},
	}
	out := roundTrip(t, msgs)
	if len(out) != len(msgs) {
		t.Fatalf("decoded %d of %d", len(out), len(msgs))
	}
	for i := range msgs {
		if out[i] != msgs[i] {
			t.Errorf("msg %d: got %+v want %+v", i, out[i], msgs[i])
		}
	}
}

func TestMultiSourceInterleaving(t *testing.T) {
	// Two cores traced in parallel: per-source delta state must not mix.
	msgs := []Msg{
		{Kind: KindSync, Src: 0, Cycle: 1000, PC: 0x8000_0000},
		{Kind: KindSync, Src: 1, Cycle: 1000, PC: 0xF800_0000},
		{Kind: KindFlow, Src: 0, Cycle: 1010, ICount: 3, PC: 0x8000_0100},
		{Kind: KindFlow, Src: 1, Cycle: 1011, ICount: 5, PC: 0xF800_0040},
		{Kind: KindFlow, Src: 0, Cycle: 1020, ICount: 2, PC: 0x8000_0000},
		{Kind: KindData, Src: 1, Cycle: 1021, Addr: 0x9000_0000, Data: 7, Write: true},
	}
	out := roundTrip(t, msgs)
	for i := range msgs {
		if out[i] != msgs[i] {
			t.Errorf("msg %d: got %+v want %+v", i, out[i], msgs[i])
		}
	}
}

func TestSyncReanchorsAfterGap(t *testing.T) {
	// Simulate a drop: encoder encodes m1 (discarded), then sync, then m2.
	var enc Encoder
	var kept []byte
	m1 := Msg{Kind: KindFlow, Src: 0, Cycle: 50, ICount: 1, PC: 0x100}
	_ = enc.Encode(nil, &m1) // bytes lost (overflow)
	sync := Msg{Kind: KindSync, Src: 0, Cycle: 90, PC: 0x200}
	kept = enc.Encode(kept, &sync)
	m2 := Msg{Kind: KindFlow, Src: 0, Cycle: 100, ICount: 4, PC: 0x300}
	kept = enc.Encode(kept, &m2)

	var dec Decoder
	out, _, err := dec.DecodeAll(kept)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Cycle != 100 || out[1].PC != 0x300 {
		t.Errorf("decode after drop: %+v", out)
	}
}

func TestTruncatedStream(t *testing.T) {
	var enc Encoder
	m := Msg{Kind: KindRate, Src: 2, Cycle: 1 << 40, CounterID: 1, Basis: 1 << 30, Count: 12345}
	buf := enc.Encode(nil, &m)
	var dec Decoder
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := dec.Decode(buf[:cut]); err != ErrTruncated {
			t.Fatalf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	if _, n, err := dec.Decode(buf); err != nil || n != len(buf) {
		t.Fatalf("full decode failed: %v", err)
	}
}

func TestRateMessageIsCompact(t *testing.T) {
	// The bandwidth claim rests on rate messages being a handful of bytes
	// versus 2×4-byte counters plus addressing overhead for external
	// sampling. Typical window: basis 100, small count, small cycle delta.
	var enc Encoder
	sync := Msg{Kind: KindSync, Src: 0, Cycle: 0, PC: 0}
	buf := enc.Encode(nil, &sync)
	base := len(buf)
	m := Msg{Kind: KindRate, Src: 0, Cycle: 120, CounterID: 2, Basis: 100, Count: 4}
	buf = enc.Encode(buf, &m)
	if got := len(buf) - base; got > 6 {
		t.Errorf("rate message = %d bytes, want <= 6", got)
	}
}

func TestBadKindByte(t *testing.T) {
	var dec Decoder
	if _, _, err := dec.Decode([]byte{0xFF}); err == nil || err == ErrTruncated {
		t.Errorf("err = %v, want decode error", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(src uint8, dCycles []uint16, pcs []uint32, counts []uint16) bool {
		src %= MaxSources
		var enc Encoder
		var dec Decoder
		var buf []byte
		cycle := uint64(0)
		msgs := []Msg{{Kind: KindSync, Src: src, Cycle: 0, PC: 0}}
		for i := range dCycles {
			cycle += uint64(dCycles[i])
			m := Msg{Kind: KindFlow, Src: src, Cycle: cycle, ICount: uint64(i)}
			if i < len(pcs) {
				m.PC = pcs[i]
			}
			msgs = append(msgs, m)
			if i < len(counts) {
				msgs = append(msgs, Msg{Kind: KindRate, Src: src, Cycle: cycle,
					CounterID: uint8(i), Basis: 100, Count: uint64(counts[i])})
			}
		}
		for i := range msgs {
			buf = enc.Encode(buf, &msgs[i])
		}
		out, n, err := dec.DecodeAll(buf)
		if err != nil || n != len(buf) || len(out) != len(msgs) {
			return false
		}
		for i := range msgs {
			if out[i] != msgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{KindSync: "sync", KindFlow: "flow",
		KindData: "data", KindRate: "rate", KindTrigger: "trigger",
		KindOverflow: "overflow", Kind(7): "kind-unknown"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", k, got)
		}
	}
}

func TestEncodePanicsOnBadSource(t *testing.T) {
	var enc Encoder
	defer func() {
		if recover() == nil {
			t.Error("source out of range must panic")
		}
	}()
	enc.Encode(nil, &Msg{Kind: KindSync, Src: MaxSources})
}
