// Package tmsg defines the compressed trace message formats the MCDS
// writes into the Emulation Memory and the tool-side decoder that
// reconstructs the event stream. The formats implement the paper's
// bandwidth argument: "instead of sampling by the external tool at least
// two long counters (executed instructions, measured event, etc.) only a
// single trace message with the counted events is stored."
//
// Messages are byte-aligned and self-delimiting: a kind byte (carrying the
// source id) followed by LEB128 varints. Timestamps and flow targets are
// delta-encoded against per-source decoder state; a Sync message carries
// absolute values and re-anchors the state (emitted periodically and after
// any buffer overflow, so a drop never desynchronizes the stream).
package tmsg

import (
	"errors"
	"fmt"
)

// Kind identifies a message type.
type Kind uint8

// Message kinds.
const (
	KindSync     Kind = iota // absolute PC + absolute cycle (re-anchor)
	KindFlow                 // change of flow: instr count, target, cycle delta
	KindData                 // data access: addr, value, r/w, cycle delta
	KindRate                 // counter window: id, basis count, event count, cycle delta
	KindTrigger              // trigger fired: id, cycle delta
	KindOverflow             // messages lost: count
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSync:
		return "sync"
	case KindFlow:
		return "flow"
	case KindData:
		return "data"
	case KindRate:
		return "rate"
	case KindTrigger:
		return "trigger"
	case KindOverflow:
		return "overflow"
	}
	return "kind-unknown"
}

// MaxSources is the number of distinguishable trace sources (cores, bus
// observation blocks) in one stream.
const MaxSources = 8

// Msg is one decoded trace message. Cycle is always absolute after
// decoding.
type Msg struct {
	Kind  Kind
	Src   uint8 // source id (observation block)
	Cycle uint64

	// KindSync, KindFlow
	PC     uint32 // sync: anchor PC; flow: flow target
	ICount uint64 // flow: sequentially executed instructions since last flow/sync

	// KindData
	Addr  uint32
	Data  uint32
	Write bool

	// KindRate
	CounterID uint8
	Basis     uint64 // basis events actually elapsed in the window
	Count     uint64 // measured events in the window

	// KindTrigger
	TriggerID uint8

	// KindOverflow
	Lost uint64
}

// appendUvarint encodes v as LEB128.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendVarint zig-zag encodes a signed value.
func appendVarint(b []byte, v int64) []byte {
	return appendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, x := range b {
		if x < 0x80 {
			if i > 9 || i == 9 && x > 1 {
				return 0, -1
			}
			return v | uint64(x)<<s, i + 1
		}
		v |= uint64(x&0x7F) << s
		s += 7
	}
	return 0, 0
}

func varint(b []byte) (int64, int) {
	u, n := uvarint(b)
	return int64(u>>1) ^ -int64(u&1), n
}

type srcState struct {
	cycle  uint64
	target uint32
}

// Encoder compresses messages into bytes. Its delta state must be mirrored
// by exactly one Decoder consuming the stream in order.
type Encoder struct {
	st [MaxSources]srcState
}

// Encode appends the wire form of m to dst and returns the extended slice.
// Cycle must be non-decreasing per source.
func (e *Encoder) Encode(dst []byte, m *Msg) []byte {
	if m.Src >= MaxSources {
		panic(fmt.Sprintf("tmsg: source id %d out of range", m.Src))
	}
	st := &e.st[m.Src]
	head := byte(m.Kind)<<3 | m.Src
	if m.Kind == KindData && m.Write {
		head |= 0x40
	}
	dst = append(dst, head)

	switch m.Kind {
	case KindSync:
		dst = appendUvarint(dst, m.Cycle)
		dst = appendUvarint(dst, uint64(m.PC))
		st.cycle = m.Cycle
		st.target = m.PC
	case KindFlow:
		dst = appendUvarint(dst, m.Cycle-st.cycle)
		dst = appendUvarint(dst, m.ICount)
		dst = appendVarint(dst, int64(int32(m.PC-st.target)))
		st.cycle = m.Cycle
		st.target = m.PC
	case KindData:
		dst = appendUvarint(dst, m.Cycle-st.cycle)
		dst = appendUvarint(dst, uint64(m.Addr))
		dst = appendUvarint(dst, uint64(m.Data))
		st.cycle = m.Cycle
	case KindRate:
		dst = append(dst, m.CounterID)
		dst = appendUvarint(dst, m.Cycle-st.cycle)
		dst = appendUvarint(dst, m.Basis)
		dst = appendUvarint(dst, m.Count)
		st.cycle = m.Cycle
	case KindTrigger:
		dst = append(dst, m.TriggerID)
		dst = appendUvarint(dst, m.Cycle-st.cycle)
		st.cycle = m.Cycle
	case KindOverflow:
		dst = appendUvarint(dst, m.Lost)
	default:
		panic(fmt.Sprintf("tmsg: cannot encode kind %v", m.Kind))
	}
	return dst
}

// Decoder reconstructs messages from the byte stream produced by one
// Encoder.
type Decoder struct {
	st  [MaxSources]srcState
	off int // bytes consumed by Feed
}

// ErrTruncated is returned when the buffer ends inside a message; feed
// more bytes and retry from the reported offset.
var ErrTruncated = errors.New("tmsg: truncated message")

// Decode parses one message from b, returning the message and the number
// of bytes consumed.
func (d *Decoder) Decode(b []byte) (Msg, int, error) {
	if len(b) == 0 {
		return Msg{}, 0, ErrTruncated
	}
	head := b[0]
	kind := Kind(head >> 3 & 0x7)
	if kind >= numKinds {
		return Msg{}, 0, fmt.Errorf("tmsg: bad kind byte %#x", head)
	}
	m := Msg{Kind: kind, Src: head & 0x7, Write: head&0x40 != 0}
	st := &d.st[m.Src]
	p := b[1:]
	n := 1

	get := func() (uint64, bool) {
		v, k := uvarint(p)
		if k <= 0 {
			return 0, false
		}
		p = p[k:]
		n += k
		return v, true
	}
	getS := func() (int64, bool) {
		v, k := varint(p)
		if k <= 0 {
			return 0, false
		}
		p = p[k:]
		n += k
		return v, true
	}

	switch kind {
	case KindSync:
		cy, ok1 := get()
		pc, ok2 := get()
		if !ok1 || !ok2 {
			return Msg{}, 0, ErrTruncated
		}
		m.Cycle, m.PC = cy, uint32(pc)
		st.cycle, st.target = m.Cycle, m.PC
	case KindFlow:
		dc, ok1 := get()
		ic, ok2 := get()
		dt, ok3 := getS()
		if !ok1 || !ok2 || !ok3 {
			return Msg{}, 0, ErrTruncated
		}
		m.Cycle = st.cycle + dc
		m.ICount = ic
		m.PC = st.target + uint32(int32(dt))
		st.cycle, st.target = m.Cycle, m.PC
	case KindData:
		dc, ok1 := get()
		ad, ok2 := get()
		da, ok3 := get()
		if !ok1 || !ok2 || !ok3 {
			return Msg{}, 0, ErrTruncated
		}
		m.Cycle = st.cycle + dc
		m.Addr, m.Data = uint32(ad), uint32(da)
		st.cycle = m.Cycle
	case KindRate:
		if len(p) < 1 {
			return Msg{}, 0, ErrTruncated
		}
		m.CounterID = p[0]
		p = p[1:]
		n++
		dc, ok1 := get()
		ba, ok2 := get()
		ct, ok3 := get()
		if !ok1 || !ok2 || !ok3 {
			return Msg{}, 0, ErrTruncated
		}
		m.Cycle = st.cycle + dc
		m.Basis, m.Count = ba, ct
		st.cycle = m.Cycle
	case KindTrigger:
		if len(p) < 1 {
			return Msg{}, 0, ErrTruncated
		}
		m.TriggerID = p[0]
		p = p[1:]
		n++
		dc, ok := get()
		if !ok {
			return Msg{}, 0, ErrTruncated
		}
		m.Cycle = st.cycle + dc
		st.cycle = m.Cycle
	case KindOverflow:
		lost, ok := get()
		if !ok {
			return Msg{}, 0, ErrTruncated
		}
		m.Lost = lost
		m.Cycle = st.cycle
	}
	return m, n, nil
}

// decodeRange parses every complete message in b starting at start and
// returns them with the offset reached (trailing partial messages are
// left).
func (d *Decoder) decodeRange(b []byte, start int) ([]Msg, int, error) {
	var out []Msg
	off := start
	for off < len(b) {
		m, n, err := d.Decode(b[off:])
		if err == ErrTruncated {
			break
		}
		if err != nil {
			return out, off, err
		}
		out = append(out, m)
		off += n
	}
	return out, off, nil
}

// DecodeAll parses every complete message in b and returns them with the
// number of bytes consumed (trailing partial messages are left).
func (d *Decoder) DecodeAll(b []byte) ([]Msg, int, error) {
	return d.decodeRange(b, 0)
}

// Feed decodes incrementally: buf must be the same logical stream on every
// call, extended by appending (a receive buffer). Only bytes beyond the
// offset already consumed by earlier Feed calls are decoded, making
// repeated decode-as-you-drain loops O(total) instead of O(total²).
func (d *Decoder) Feed(buf []byte) ([]Msg, error) {
	msgs, off, err := d.decodeRange(buf, d.off)
	d.off = off
	return msgs, err
}

// Consumed returns the stream offset Feed has decoded up to.
func (d *Decoder) Consumed() int { return d.off }
