package tmsg

// Frame layer: the hardened tool-link format. Encoded messages are grouped
// into fixed-overhead frames so that corruption on the DAP link or a soft
// error in the EMEM trace ring is *detected* (CRC), *quantified* (the
// cumulative message counter tells the tool exactly how many messages a
// lost frame carried) and *recoverable* (frames start at message
// boundaries, so the byte stream realigns at the next valid frame).
//
// Wire layout (FrameOverhead = 8 bytes):
//
//	offset 0    marker (0xA5)
//	offset 1    seq — frame counter mod 256 (link-level loss telltale)
//	offset 2    payload length N, 1..MaxFramePayload
//	offset 3..6 cumulative message count before this frame, uint32 LE
//	offset 7..  payload: whole encoded messages (never split)
//	last byte   CRC-8/AUTOSAR over bytes 1..7+N-1 (everything but the marker)
//
// With MaxFramePayload = 96 the worst-case framing overhead is
// 8/104 ≈ 7.7 % of the link bytes and stays below 10 % on realistic
// message mixes (internal fragmentation costs a little extra because
// messages are never split across frames).

// FrameMarker starts every frame.
const FrameMarker = 0xA5

// MaxFramePayload is the payload capacity of one frame. It must exceed the
// largest possible encoded message (a Rate message with four maximum-length
// varints, < 45 bytes).
const MaxFramePayload = 96

// FrameOverhead is the fixed per-frame byte cost (marker, seq, length,
// cumulative count, CRC).
const FrameOverhead = 8

// frameHeader is the byte offset of the payload (everything before it is
// marker + seq + length + cumulative count; the CRC trails the payload).
const frameHeader = 7

// crc8 computes CRC-8/AUTOSAR (poly 0x2F, init 0xFF, xorout 0xFF) — the
// automotive profile checksum, small enough for the frame builder in the
// EEC and strong enough to catch every single- and double-bit error within
// a 64-byte frame.
func crc8(b []byte) byte {
	c := byte(0xFF)
	for _, x := range b {
		c ^= x
		for i := 0; i < 8; i++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x2F
			} else {
				c <<= 1
			}
		}
	}
	return c ^ 0xFF
}

// ValidFrame reports whether b is one complete, uncorrupted frame.
func ValidFrame(b []byte) bool {
	if len(b) < FrameOverhead+1 || b[0] != FrameMarker {
		return false
	}
	n := int(b[2])
	if n == 0 || n > MaxFramePayload || len(b) != FrameOverhead+n {
		return false
	}
	return crc8(b[1:len(b)-1]) == b[len(b)-1]
}

// FrameLen returns the total length of the frame starting at b[0], or 0
// when the header is implausible, or -1 when more bytes are needed to
// tell. It does not verify the CRC.
func FrameLen(b []byte) int {
	if len(b) == 0 || b[0] != FrameMarker {
		return 0
	}
	if len(b) < 3 {
		return -1
	}
	n := int(b[2])
	if n == 0 || n > MaxFramePayload {
		return 0
	}
	return FrameOverhead + n
}

// Framer packs encoded messages into frames and hands each completed frame
// to Sink. It is the emitter-side half of the hardened link; the tool-side
// half is StreamDecoder in framed mode.
type Framer struct {
	// Sink stores one completed frame; it returns false when the frame was
	// dropped (trace buffer full). A nil Sink accepts everything (pure
	// bandwidth accounting).
	Sink func(frame []byte) bool

	payload []byte
	count   uint64
	frame   []byte
	seq     uint8
	cum     uint32 // messages in all earlier frames, delivered or not

	// Statistics.
	FramesOut     uint64 // frames accepted by Sink
	FramesDropped uint64 // frames Sink refused
	MsgsFramed    uint64 // messages appended (== the final cumulative count)
	MsgsDropped   uint64 // messages inside refused frames
	BytesFramed   uint64 // frame bytes accepted by Sink, overhead included
}

// Append adds one encoded message to the current frame, flushing first
// when it would not fit. It returns the number of previously appended
// messages that were lost because the flushed frame was refused by Sink
// (0 on the happy path). The message itself is always accepted — its fate
// is decided when its own frame flushes.
func (f *Framer) Append(msg []byte) (dropped uint64) {
	if len(msg) > MaxFramePayload {
		panic("tmsg: message larger than frame payload")
	}
	if len(f.payload)+len(msg) > MaxFramePayload {
		dropped = f.Flush()
	}
	f.payload = append(f.payload, msg...)
	f.count++
	f.MsgsFramed++
	return dropped
}

// Flush emits the buffered messages as one frame (no-op when empty). It
// returns the number of messages lost because Sink refused the frame.
func (f *Framer) Flush() (dropped uint64) {
	if f.count == 0 {
		return 0
	}
	f.frame = f.frame[:0]
	f.frame = append(f.frame, FrameMarker, f.seq, byte(len(f.payload)),
		byte(f.cum), byte(f.cum>>8), byte(f.cum>>16), byte(f.cum>>24))
	f.frame = append(f.frame, f.payload...)
	f.frame = append(f.frame, crc8(f.frame[1:]))

	// The sequence and cumulative counters advance whether or not the sink
	// accepts the frame: the receiver detects a refused (overflowed) frame
	// exactly like a frame lost on the link, through the counter jump.
	f.seq++
	f.cum += uint32(f.count)
	count := f.count
	f.payload = f.payload[:0]
	f.count = 0

	if f.Sink != nil && !f.Sink(f.frame) {
		f.FramesDropped++
		f.MsgsDropped += count
		return count
	}
	f.FramesOut++
	f.BytesFramed += uint64(len(f.frame))
	return 0
}

// Pending returns the number of messages buffered in the unflushed frame.
func (f *Framer) Pending() uint64 { return f.count }
