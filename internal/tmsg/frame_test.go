package tmsg

import (
	"testing"
)

// genMsgs returns a deterministic mixed-kind message stream with periodic
// Sync re-anchors on every source used.
func genMsgs(n int) []Msg {
	var out []Msg
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += uint64(3 + i%7)
		src := uint8(i % 3)
		switch {
		case i%25 == 0:
			out = append(out, Msg{Kind: KindSync, Src: src, Cycle: cycle, PC: uint32(0x8000_0000 + i*4)})
		case i%5 == 0:
			out = append(out, Msg{Kind: KindFlow, Src: src, Cycle: cycle,
				ICount: uint64(i % 11), PC: uint32(0x8000_0000 + i*8)})
		case i%4 == 0:
			out = append(out, Msg{Kind: KindData, Src: src, Cycle: cycle,
				Addr: uint32(0xD000_0000 + i), Data: uint32(i * 3), Write: i%2 == 0})
		default:
			out = append(out, Msg{Kind: KindRate, Src: src, Cycle: cycle,
				CounterID: uint8(i % 4), Basis: 100, Count: uint64(i % 17)})
		}
	}
	return out
}

// frameStream encodes msgs through a Framer and returns the frame bytes.
func frameStream(msgs []Msg) ([]byte, *Framer) {
	var stream []byte
	f := &Framer{Sink: func(frame []byte) bool {
		stream = append(stream, frame...)
		return true
	}}
	var enc Encoder
	var scratch []byte
	for i := range msgs {
		scratch = enc.Encode(scratch[:0], &msgs[i])
		f.Append(scratch)
	}
	f.Flush()
	return stream, f
}

func msgsEqual(t *testing.T, want, got []Msg) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("message count: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("message %d: want %+v got %+v", i, want[i], got[i])
		}
	}
}

func TestCRC8DetectsBitErrors(t *testing.T) {
	b := []byte{0x01, 0x42, 0x00, 0xFF, 0x37, 0x80}
	c := crc8(b)
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			b[i] ^= 1 << bit
			if crc8(b) == c {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", i, bit)
			}
			b[i] ^= 1 << bit
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := genMsgs(500)
	stream, f := frameStream(msgs)
	if f.MsgsFramed != uint64(len(msgs)) {
		t.Fatalf("MsgsFramed = %d, want %d", f.MsgsFramed, len(msgs))
	}

	s := NewStreamDecoder(true)
	got := s.Feed(stream)
	s.Finalize(f.MsgsFramed)
	msgsEqual(t, msgs, got)
	if s.AccountedLost() != 0 || len(s.Gaps) != 0 {
		t.Fatalf("clean stream reported loss: lost=%d gaps=%d", s.AccountedLost(), len(s.Gaps))
	}
	if s.Delivered != uint64(len(msgs)) {
		t.Fatalf("Delivered = %d, want %d", s.Delivered, len(msgs))
	}
}

func TestFrameRoundTripChunked(t *testing.T) {
	msgs := genMsgs(300)
	stream, f := frameStream(msgs)

	s := NewStreamDecoder(true)
	var got []Msg
	for i := 0; i < len(stream); i += 13 {
		end := i + 13
		if end > len(stream) {
			end = len(stream)
		}
		got = append(got, s.Feed(stream[i:end])...)
	}
	s.Finalize(f.MsgsFramed)
	msgsEqual(t, msgs, got)
	if s.AccountedLost() != 0 {
		t.Fatalf("chunked clean stream reported %d lost", s.AccountedLost())
	}
}

// TestFrameCorruptionIsQuantified flips one bit mid-stream and checks the
// decoder (a) survives, (b) accounts the exact number of missing messages
// via the cumulative counter, and (c) resumes delivering trusted messages.
func TestFrameCorruptionIsQuantified(t *testing.T) {
	msgs := genMsgs(600)
	stream, f := frameStream(msgs)

	corrupt := make([]byte, len(stream))
	copy(corrupt, stream)
	corrupt[len(stream)/2] ^= 0x10

	s := NewStreamDecoder(true)
	got := s.Feed(corrupt)
	s.Finalize(f.MsgsFramed)

	if s.Delivered == 0 {
		t.Fatal("nothing delivered after corruption")
	}
	if s.AccountedLost() == 0 || len(s.Gaps) == 0 {
		t.Fatal("corruption produced no gap accounting")
	}
	if s.Delivered+s.AccountedLost() != f.MsgsFramed {
		t.Fatalf("conservation violated: delivered %d + lost %d != framed %d",
			s.Delivered, s.AccountedLost(), f.MsgsFramed)
	}
	// Every delivered message must be byte-identical to an emitted one —
	// corruption may remove messages but never silently alter one.
	want := make(map[Msg]int)
	for _, m := range msgs {
		want[m]++
	}
	for _, m := range got {
		if want[m] == 0 {
			t.Fatalf("delivered message %+v was never emitted", m)
		}
		want[m]--
	}
	// The gap must be bounded: messages after the post-corruption Sync
	// re-anchors are delivered again.
	last := got[len(got)-1]
	if last.Cycle != msgs[len(msgs)-1].Cycle {
		t.Fatalf("stream did not recover to the end: last cycle %d want %d",
			last.Cycle, msgs[len(msgs)-1].Cycle)
	}
}

// TestLostFrameAccounting deletes whole frames (the DAP abandon path) and
// checks exact message-loss accounting from the cumulative counters.
func TestLostFrameAccounting(t *testing.T) {
	msgs := genMsgs(400)
	var frames [][]byte
	f := &Framer{Sink: func(frame []byte) bool {
		c := make([]byte, len(frame))
		copy(c, frame)
		frames = append(frames, c)
		return true
	}}
	var enc Encoder
	var scratch []byte
	for i := range msgs {
		scratch = enc.Encode(scratch[:0], &msgs[i])
		f.Append(scratch)
	}
	f.Flush()

	// Drop frames 3 and 4.
	var stream []byte
	var droppedMsgs uint64
	for i, fr := range frames {
		if i == 3 || i == 4 {
			droppedMsgs += countFrameMsgs(t, fr)
			continue
		}
		stream = append(stream, fr...)
	}

	s := NewStreamDecoder(true)
	s.Feed(stream)
	s.Finalize(f.MsgsFramed)
	if s.Lost < droppedMsgs {
		t.Fatalf("Lost = %d, want ≥ %d (the dropped frames)", s.Lost, droppedMsgs)
	}
	if s.Delivered+s.AccountedLost() != f.MsgsFramed {
		t.Fatalf("conservation violated: %d + %d != %d", s.Delivered, s.AccountedLost(), f.MsgsFramed)
	}
	if s.SeqJumps == 0 {
		t.Fatal("dropped frames did not register a sequence jump")
	}
}

func countFrameMsgs(t *testing.T, fr []byte) uint64 {
	t.Helper()
	if !ValidFrame(fr) {
		t.Fatal("test frame invalid")
	}
	var d Decoder
	ms, n, err := d.DecodeAll(fr[frameHeader : len(fr)-1])
	if err != nil || n != len(fr)-FrameOverhead {
		t.Fatalf("frame payload decode: %v", err)
	}
	return uint64(len(ms))
}

// TestFramingOverheadBound pins the documented link overhead: the frame
// layer must cost < 15 % extra bytes on a realistic message mix.
func TestFramingOverheadBound(t *testing.T) {
	msgs := genMsgs(5000)
	var enc Encoder
	var rawBytes uint64
	var scratch []byte
	f := &Framer{Sink: func([]byte) bool { return true }}
	for i := range msgs {
		scratch = enc.Encode(scratch[:0], &msgs[i])
		rawBytes += uint64(len(scratch))
		f.Append(scratch)
	}
	f.Flush()
	framed := f.BytesFramed
	overhead := float64(framed-rawBytes) / float64(rawBytes)
	if overhead >= 0.15 {
		t.Fatalf("framing overhead %.1f%% ≥ 15%% bound", overhead*100)
	}
	worst := float64(FrameOverhead) / float64(FrameOverhead+MaxFramePayload)
	if worst >= 0.15 {
		t.Fatalf("worst-case overhead %.1f%% ≥ 15%% bound", worst*100)
	}
}

// TestRawResyncScansToNextSync corrupts a raw (unframed) stream and checks
// the decoder scans forward to the next valid Sync instead of failing.
func TestRawResyncScansToNextSync(t *testing.T) {
	msgs := genMsgs(200)
	var enc Encoder
	var stream []byte
	for i := range msgs {
		stream = enc.Encode(stream, &msgs[i])
	}

	corrupt := make([]byte, len(stream))
	copy(corrupt, stream)
	// Force an invalid kind byte (>= numKinds) at a message boundary.
	var d Decoder
	_, off, _ := d.DecodeAll(corrupt[:len(corrupt)/2])
	corrupt[off] = 0xFF // kind 7 with write bit: always invalid

	s := NewStreamDecoder(false)
	got := s.Feed(corrupt)
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	if s.Resyncs == 0 || s.Garbage == 0 || len(s.Gaps) == 0 {
		t.Fatalf("no resync recorded: resyncs=%d garbage=%d gaps=%d",
			s.Resyncs, s.Garbage, len(s.Gaps))
	}
	if got[len(got)-1].Cycle != msgs[len(msgs)-1].Cycle {
		t.Fatalf("raw stream did not recover to the end (last cycle %d, want %d)",
			got[len(got)-1].Cycle, msgs[len(msgs)-1].Cycle)
	}
	// Delivered messages must all be genuine.
	want := make(map[Msg]int)
	for _, m := range msgs {
		want[m]++
	}
	for _, m := range got {
		if want[m] == 0 {
			t.Fatalf("resync delivered a message that was never emitted: %+v", m)
		}
		want[m]--
	}
}

func TestDecoderFeedIncremental(t *testing.T) {
	msgs := genMsgs(300)
	var enc Encoder
	var stream []byte
	for i := range msgs {
		stream = enc.Encode(stream, &msgs[i])
	}

	var one Decoder
	want, n, err := one.DecodeAll(stream)
	if err != nil || n != len(stream) {
		t.Fatalf("one-shot decode: n=%d err=%v", n, err)
	}

	var inc Decoder
	var got []Msg
	for end := 0; end <= len(stream); end += 7 {
		if end > len(stream) {
			end = len(stream)
		}
		ms, err := inc.Feed(stream[:end])
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
		got = append(got, ms...)
	}
	ms, err := inc.Feed(stream)
	if err != nil {
		t.Fatalf("final Feed: %v", err)
	}
	got = append(got, ms...)
	if inc.Consumed() != len(stream) {
		t.Fatalf("Consumed = %d, want %d", inc.Consumed(), len(stream))
	}
	msgsEqual(t, want, got)
}
