package tmsg

import "testing"

func BenchmarkEncodeRate(b *testing.B) {
	var enc Encoder
	buf := make([]byte, 0, 16)
	m := Msg{Kind: KindRate, Src: 0, CounterID: 3, Basis: 1000, Count: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Cycle += 1200
		buf = enc.Encode(buf[:0], &m)
	}
	if len(buf) == 0 {
		b.Fatal("no output")
	}
}

func BenchmarkEncodeFlow(b *testing.B) {
	var enc Encoder
	buf := make([]byte, 0, 16)
	m := Msg{Kind: KindFlow, Src: 0, ICount: 9, PC: 0x8000_0000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Cycle += 12
		m.PC += 64
		buf = enc.Encode(buf[:0], &m)
	}
}

func BenchmarkDecodeStream(b *testing.B) {
	var enc Encoder
	var buf []byte
	sync := Msg{Kind: KindSync}
	buf = enc.Encode(buf, &sync)
	m := Msg{Kind: KindRate, CounterID: 1, Basis: 1000, Count: 7}
	for i := 0; i < 1000; i++ {
		m.Cycle += 1100
		buf = enc.Encode(buf, &m)
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec Decoder
		msgs, _, err := dec.DecodeAll(buf)
		if err != nil || len(msgs) != 1001 {
			b.Fatalf("decode failed: %d %v", len(msgs), err)
		}
	}
}
