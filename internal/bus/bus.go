// Package bus models the multi-master on-chip buses of the SoC (the
// TriCore-family LMB program/data buses and the SPB peripheral bus), with
// address decoding, arbitration, and contention accounting.
//
// Timing model: the bus is a synchronous latency oracle. A master performs
// an access by calling Access with the current cycle; the bus computes the
// grant cycle (bounded below by the bus busy-until time), lets the selected
// target perform the data movement and report its device latency, and
// returns the absolute cycle at which the access completes. The bus is held
// for the whole transaction (non-pipelined), which is a simplification of
// the real pipelined LMB but preserves the property the methodology
// measures: concurrent masters serialize and the loser accumulates
// observable wait cycles (EvBusContention / EvBusWaitCycle events).
//
// Same-cycle arbitration collisions resolve in component step order, which
// the SoC assembly fixes deterministically; the effective policy is
// therefore fixed priority in registration order, matching the priority-
// based LMB arbiter. See internal/flash for the code/data port arbitration
// the paper singles out.
package bus

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Request describes one bus transaction. Data is read into or written from
// the supplied slice; its length is the access size in bytes.
type Request struct {
	Master int    // master identity, for per-master statistics
	Addr   uint32 // byte address
	Data   []byte // length 1, 2 or 4 for CPU accesses; larger for line fills
	Write  bool
	Fetch  bool // instruction fetch (routes to flash code port)
}

// Target is a slave device mapped on a bus. Access is called with the cycle
// at which the bus granted the transaction; the target moves the data and
// returns its additional device latency in cycles beyond the bus transfer
// time.
type Target interface {
	Name() string
	Access(grant uint64, req *Request) (deviceLatency uint64)
}

type region struct {
	base, limit uint64 // [base, limit); uint64 so a window may end at 2^32
	target      Target
}

// MasterStats accumulates per-master arbitration statistics.
type MasterStats struct {
	Requests   uint64
	Granted    uint64
	WaitCycles uint64
	Conflicts  uint64 // requests that had to wait at least one cycle
}

// Bus is a single shared interconnect.
type Bus struct {
	name      string
	transfer  uint64 // cycles the bus itself needs per transaction
	busyUntil uint64
	regions   []region
	counters  sim.Counters
	masters   map[int]*MasterStats
}

// New creates a bus. transferCycles is the bus occupancy per transaction
// (1 for the fast LMBs, 2 for the slower SPB).
func New(name string, transferCycles uint64) *Bus {
	if transferCycles == 0 {
		transferCycles = 1
	}
	return &Bus{
		name:     name,
		transfer: transferCycles,
		masters:  make(map[int]*MasterStats),
	}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Map attaches target to the address window [base, base+size).
// Windows must not overlap; Map panics on conflicts (SoC assembly bug).
func (b *Bus) Map(base, size uint32, t Target) {
	limit := uint64(base) + uint64(size)
	if size == 0 || limit > 1<<32 {
		panic(fmt.Sprintf("bus %s: bad window [%#x,+%#x)", b.name, base, size))
	}
	for _, r := range b.regions {
		if uint64(base) < r.limit && r.base < limit {
			panic(fmt.Sprintf("bus %s: window [%#x,%#x) overlaps %s", b.name, base, limit, r.target.Name()))
		}
	}
	b.regions = append(b.regions, region{base: uint64(base), limit: limit, target: t})
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].base < b.regions[j].base })
}

// Decode returns the target mapped at addr, or nil.
func (b *Bus) Decode(addr uint32) Target {
	a := uint64(addr)
	i := sort.Search(len(b.regions), func(i int) bool { return b.regions[i].limit > a })
	if i < len(b.regions) && a >= b.regions[i].base {
		return b.regions[i].target
	}
	return nil
}

// ErrUnmapped is returned by Access for addresses no target covers.
type ErrUnmapped struct {
	Bus  string
	Addr uint32
}

func (e *ErrUnmapped) Error() string {
	return fmt.Sprintf("bus %s: no target at %#08x", e.Bus, e.Addr)
}

// Access performs a transaction starting no earlier than cycle now. It
// returns the absolute cycle at which the transaction completes (data valid
// for reads, write committed for writes).
func (b *Bus) Access(now uint64, req *Request) (done uint64, err error) {
	t := b.Decode(req.Addr)
	if t == nil {
		return now, &ErrUnmapped{Bus: b.name, Addr: req.Addr}
	}
	ms := b.masters[req.Master]
	if ms == nil {
		ms = &MasterStats{}
		b.masters[req.Master] = ms
	}
	ms.Requests++
	b.counters.Inc(sim.EvBusRequest)

	grant := now
	if b.busyUntil > grant {
		wait := b.busyUntil - grant
		grant = b.busyUntil
		ms.WaitCycles += wait
		ms.Conflicts++
		b.counters.Inc(sim.EvBusContention)
		b.counters.Add(sim.EvBusWaitCycle, wait)
	}
	ms.Granted++
	b.counters.Inc(sim.EvBusGrant)

	dev := t.Access(grant, req)
	done = grant + b.transfer + dev
	b.busyUntil = done
	return done, nil
}

// Counters exposes the bus event counters (tapped by the MCDS bus
// observation block).
func (b *Bus) Counters() *sim.Counters { return &b.counters }

// Stats returns the per-master statistics for master id (zero value if the
// master never accessed this bus).
func (b *Bus) Stats(id int) MasterStats {
	if s := b.masters[id]; s != nil {
		return *s
	}
	return MasterStats{}
}

// BusyUntil reports the cycle up to which the bus is currently held.
func (b *Bus) BusyUntil() uint64 { return b.busyUntil }

// Bridge forwards a window of one bus into another (the LMB↔SPB bridge of
// the real SoC). It is a Target on the near bus and a master on the far
// bus; crossing adds its own forwarding latency on top of far-bus
// arbitration.
type Bridge struct {
	name     string
	far      *Bus
	master   int
	overhead uint64
}

// NewBridge creates a bridge that forwards accesses onto far using the
// given master id, adding overhead cycles per crossing.
func NewBridge(name string, far *Bus, master int, overhead uint64) *Bridge {
	return &Bridge{name: name, far: far, master: master, overhead: overhead}
}

// Name returns the bridge name.
func (br *Bridge) Name() string { return br.name }

// Access forwards the request to the far bus.
func (br *Bridge) Access(grant uint64, req *Request) uint64 {
	fwd := *req
	fwd.Master = br.master
	done, err := br.far.Access(grant+br.overhead, &fwd)
	if err != nil {
		// An unmapped address behind a bridge is an SoC wiring bug; fail
		// loudly rather than silently returning garbage timing.
		panic(err)
	}
	return done - grant
}
