package bus

import (
	"testing"

	"repro/internal/sim"
)

// fixedTarget records accesses and returns a fixed device latency.
type fixedTarget struct {
	name    string
	latency uint64
	log     []Request
}

func (t *fixedTarget) Name() string { return t.name }
func (t *fixedTarget) Access(grant uint64, req *Request) uint64 {
	t.log = append(t.log, *req)
	if !req.Write {
		for i := range req.Data {
			req.Data[i] = byte(req.Addr >> (8 * (uint(i) % 4)))
		}
	}
	return t.latency
}

func TestDecodeRouting(t *testing.T) {
	b := New("lmb", 1)
	t1 := &fixedTarget{name: "a"}
	t2 := &fixedTarget{name: "b"}
	b.Map(0x1000, 0x1000, t1)
	b.Map(0x8000, 0x100, t2)

	if got := b.Decode(0x1000); got != Target(t1) {
		t.Errorf("Decode(0x1000) = %v", got)
	}
	if got := b.Decode(0x1FFF); got != Target(t1) {
		t.Errorf("Decode(0x1FFF) = %v", got)
	}
	if got := b.Decode(0x2000); got != nil {
		t.Errorf("Decode(0x2000) = %v, want nil", got)
	}
	if got := b.Decode(0x80FF); got != Target(t2) {
		t.Errorf("Decode(0x80FF) = %v", got)
	}
}

func TestMapOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping Map must panic")
		}
	}()
	b := New("lmb", 1)
	b.Map(0x1000, 0x1000, &fixedTarget{name: "a"})
	b.Map(0x1800, 0x1000, &fixedTarget{name: "b"})
}

func TestAccessUnmapped(t *testing.T) {
	b := New("lmb", 1)
	_, err := b.Access(0, &Request{Addr: 0xDEAD, Data: make([]byte, 4)})
	if _, ok := err.(*ErrUnmapped); !ok {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestAccessLatency(t *testing.T) {
	b := New("lmb", 1)
	tg := &fixedTarget{name: "sram", latency: 3}
	b.Map(0, 0x1000, tg)

	done, err := b.Access(10, &Request{Addr: 4, Data: make([]byte, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if done != 14 { // grant 10 + transfer 1 + device 3
		t.Errorf("done = %d, want 14", done)
	}
}

func TestContentionSerializesAndCounts(t *testing.T) {
	b := New("lmb", 1)
	tg := &fixedTarget{name: "sram", latency: 2}
	b.Map(0, 0x1000, tg)

	// Master 0 and master 1 both request at cycle 5.
	d0, _ := b.Access(5, &Request{Master: 0, Addr: 0, Data: make([]byte, 4)})
	d1, _ := b.Access(5, &Request{Master: 1, Addr: 4, Data: make([]byte, 4)})
	if d0 != 8 {
		t.Errorf("first done = %d, want 8", d0)
	}
	if d1 != 11 { // waits until 8, then 1+2
		t.Errorf("second done = %d, want 11", d1)
	}
	s1 := b.Stats(1)
	if s1.WaitCycles != 3 || s1.Conflicts != 1 {
		t.Errorf("stats = %+v, want wait=3 conflicts=1", s1)
	}
	c := b.Counters()
	if c.Get(sim.EvBusContention) != 1 || c.Get(sim.EvBusWaitCycle) != 3 {
		t.Errorf("contention counters wrong: %d/%d",
			c.Get(sim.EvBusContention), c.Get(sim.EvBusWaitCycle))
	}
	if c.Get(sim.EvBusRequest) != 2 || c.Get(sim.EvBusGrant) != 2 {
		t.Errorf("request/grant counters wrong")
	}
}

func TestBusFreesAfterIdle(t *testing.T) {
	b := New("spb", 2)
	tg := &fixedTarget{name: "periph", latency: 1}
	b.Map(0, 0x100, tg)
	d0, _ := b.Access(0, &Request{Addr: 0, Data: make([]byte, 4)})
	// Request long after the first completed: no waiting.
	d1, _ := b.Access(d0+10, &Request{Addr: 4, Data: make([]byte, 4)})
	if d1 != d0+10+3 {
		t.Errorf("idle access done = %d, want %d", d1, d0+10+3)
	}
	if b.Stats(0).WaitCycles != 0 {
		t.Errorf("no wait expected, got %d", b.Stats(0).WaitCycles)
	}
}

func TestReadDataMovement(t *testing.T) {
	b := New("lmb", 1)
	b.Map(0x100, 0x100, &fixedTarget{name: "x"})
	buf := make([]byte, 4)
	if _, err := b.Access(0, &Request{Addr: 0x104, Data: buf}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x04 {
		t.Errorf("data not moved: %v", buf)
	}
}

func TestBridgeForwards(t *testing.T) {
	far := New("spb", 2)
	tg := &fixedTarget{name: "periph", latency: 1}
	far.Map(0xF000_0000, 0x1000, tg)

	near := New("lmb", 1)
	br := NewBridge("lfi", far, 9, 1)
	near.Map(0xF000_0000, 0x1000_0000, br)

	done, err := near.Access(0, &Request{Master: 1, Addr: 0xF000_0010, Data: make([]byte, 4)})
	if err != nil {
		t.Fatal(err)
	}
	// near grant 0 + near transfer 1 + bridge device latency.
	// bridge: far access at 0+1 → done 1+2+1 = 4 → device latency 4.
	if done != 5 {
		t.Errorf("bridged done = %d, want 5", done)
	}
	if len(tg.log) != 1 || tg.log[0].Master != 9 {
		t.Errorf("far side must see bridge master id, got %+v", tg.log)
	}
	if far.Stats(9).Requests != 1 {
		t.Error("far bus must account the bridge as master")
	}
}

func TestAliasRebasesAddresses(t *testing.T) {
	far := &fixedTarget{name: "flash", latency: 2}
	al := NewAlias(far, 0xE000_0000) // 0xA... -> 0x8...
	if al.Name() != "flash~alias" {
		t.Errorf("alias name = %q", al.Name())
	}
	buf := make([]byte, 4)
	lat := al.Access(0, &Request{Addr: 0xA000_0010, Data: buf})
	if lat != 2 {
		t.Errorf("latency = %d", lat)
	}
	if len(far.log) != 1 || far.log[0].Addr != 0x8000_0010 {
		t.Errorf("target saw %+v", far.log)
	}
	// Write path forwards too.
	al.Access(0, &Request{Addr: 0xA000_0020, Data: []byte{1}, Write: true})
	if far.log[1].Addr != 0x8000_0020 || !far.log[1].Write {
		t.Errorf("write not forwarded: %+v", far.log[1])
	}
}

func TestBusAccessors(t *testing.T) {
	b := New("lmb", 0) // zero transfer cycles clamp to 1
	if b.Name() != "lmb" {
		t.Errorf("name = %q", b.Name())
	}
	tg := &fixedTarget{name: "x", latency: 1}
	b.Map(0, 0x100, tg)
	done, _ := b.Access(5, &Request{Addr: 0, Data: make([]byte, 4)})
	if done != 7 { // grant 5 + clamped transfer 1 + device 1
		t.Errorf("done = %d", done)
	}
	if b.BusyUntil() != done {
		t.Errorf("busy until = %d", b.BusyUntil())
	}
	if s := b.Stats(99); s.Requests != 0 {
		t.Error("unknown master must have zero stats")
	}
	err := &ErrUnmapped{Bus: "lmb", Addr: 0xBEEF}
	if err.Error() == "" {
		t.Error("empty error string")
	}
	br := NewBridge("br", b, 1, 0)
	if br.Name() != "br" {
		t.Errorf("bridge name = %q", br.Name())
	}
}

func TestBridgePanicsOnUnmappedFarSide(t *testing.T) {
	far := New("spb", 1)
	br := NewBridge("br", far, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("bridge to unmapped address must panic")
		}
	}()
	br.Access(0, &Request{Addr: 0xDEAD, Data: make([]byte, 4)})
}
