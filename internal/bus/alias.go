package bus

// Alias exposes an existing target under a shifted address window. It
// implements the TriCore-style segment aliasing where segment 0xA is the
// uncached view of the flash mapped at segment 0x8: the SoC maps the same
// port twice, once directly and once behind an Alias whose delta rebases
// incoming addresses into the target's native window.
type Alias struct {
	target Target
	delta  uint32 // added to incoming addresses (mod 2^32)
}

// NewAlias wraps target so that an access at addr reaches it as addr+delta.
func NewAlias(target Target, delta uint32) *Alias {
	return &Alias{target: target, delta: delta}
}

// Name returns the aliased target's name with a marker.
func (a *Alias) Name() string { return a.target.Name() + "~alias" }

// Access rebases the request address and forwards it.
func (a *Alias) Access(grant uint64, req *Request) uint64 {
	shifted := *req
	shifted.Addr = req.Addr + a.delta
	lat := a.target.Access(grant, &shifted)
	if !req.Write {
		// Data was read into the shifted copy's slice, which is the same
		// backing array; nothing to copy back.
		_ = shifted
	}
	return lat
}
