package runcfg

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfNoop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := BindProf(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatalf("empty Prof failed to start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("empty Prof failed to stop: %v", err)
	}
}

func TestProfWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := BindProf(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles are not degenerate.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfBadPath(t *testing.T) {
	p := &Prof{CPUProfile: filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof")}
	if _, err := p.Start(); err == nil {
		t.Fatal("unwritable cpuprofile path did not error")
	}
}
