package runcfg

import (
	"flag"
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Run)
		want string // substring of the error, "" = valid
	}{
		{"default", func(r *Run) {}, ""},
		{"tc1767", func(r *Run) { r.SoC = "TC1767" }, ""},
		{"dualcore", func(r *Run) { r.SoC = "TC1797DC" }, ""},
		{"scenario", func(r *Run) { r.Faults = "noisy-link" }, ""},
		{"kvplan", func(r *Run) { r.Faults = "corrupt=0.01,drop=0.002" }, ""},
		{"clean-alias", func(r *Run) { r.Faults = "clean" }, ""},
		{"bad-soc", func(r *Run) { r.SoC = "TC9999" }, "unknown preset"},
		{"zero-cycles", func(r *Run) { r.Cycles = 0 }, "zero cycle"},
		{"zero-res", func(r *Run) { r.Resolution = 0 }, "zero resolution"},
		{"bad-faults", func(r *Run) { r.Faults = "bogus-scenario" }, "neither a scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Default()
			tc.mut(&r)
			err := r.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

func TestFaultPlan(t *testing.T) {
	r := Default()
	if p, err := r.FaultPlan(); err != nil || p != nil {
		t.Fatalf("clean run returned plan %v err %v", p, err)
	}
	r.Faults = "clean"
	if p, err := r.FaultPlan(); err != nil || p != nil {
		t.Fatalf("explicit clean returned plan %v err %v", p, err)
	}
	r.Faults = "noisy-link"
	r.Seed = 42
	p, err := r.FaultPlan()
	if err != nil || p == nil {
		t.Fatalf("scenario: plan %v err %v", p, err)
	}
	if p.Seed != 42 {
		t.Fatalf("plan seed %d, want the run seed 42", p.Seed)
	}
}

func TestSessionSpec(t *testing.T) {
	r := Default()
	r.Faults = "noisy-link"
	r.Degrade = true
	spec, err := r.SessionSpec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Resolution != r.Resolution {
		t.Fatalf("resolution %d, want %d", spec.Resolution, r.Resolution)
	}
	if spec.DAP == nil {
		t.Fatal("no DAP config")
	}
	if spec.Fault == nil || !spec.Fault.Active() {
		t.Fatal("fault plan not attached")
	}
	if spec.Degrade == nil {
		t.Fatal("degrade policy not attached")
	}
}

func TestBindRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	r := Bind(fs, Default())
	err := fs.Parse([]string{
		"-soc", "TC1767", "-seed", "9", "-cycles", "123", "-res", "500",
		"-faults", "noisy-link", "-framed", "-degrade",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Run{SoC: "TC1767", Seed: 9, Cycles: 123, Resolution: 500,
		Faults: "noisy-link", Framed: true, Degrade: true}
	if *r != want {
		t.Fatalf("parsed %+v, want %+v", *r, want)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBindBaseKeepsNonFlagFields(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	def := Default()
	def.Resolution = 777
	r := BindBase(fs, def)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if r.Resolution != 777 {
		t.Fatalf("BindBase dropped non-flag default: %+v", *r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBindSupervise(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	s := BindSupervise(fs)
	if err := fs.Parse([]string{"-celltimeout", "30s", "-retries", "3"}); err != nil {
		t.Fatal(err)
	}
	if s.CellTimeout != 30*time.Second || s.Retries != 3 {
		t.Fatalf("parsed supervise = %+v", *s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Supervise{{CellTimeout: -time.Second}, {Retries: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Supervise %+v validated", bad)
		}
	}
}

// TestBindShardTimingValidation: the supervision timing cross-checks.
// A hang deadline at or below the heartbeat period would classify every
// healthy worker as hung; an explicit non-positive drain bound would
// turn graceful cancel into instant SIGKILL. Both are caught at
// bind/validate time, against the effective (defaulted) values.
func TestBindShardTimingValidation(t *testing.T) {
	parse := func(t *testing.T, args ...string) *Shard {
		t.Helper()
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		s := BindShard(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Good configurations.
	for _, args := range [][]string{
		nil,
		{"-shards", "4"},
		{"-hb", "100ms", "-hbtimeout", "2s"},
		{"-hbtimeout", "2s"},
		{"-draintimeout", "1s"},
		{"-agents", "h1:9001,h2:9001", "-keyfile", "key"},
	} {
		if err := parse(t, args...).Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want ok", args, err)
		}
	}

	// -hbtimeout at or below the heartbeat period (explicit or default).
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-hb", "1s", "-hbtimeout", "1s"}, "must exceed the heartbeat period"},
		{[]string{"-hb", "1s", "-hbtimeout", "500ms"}, "must exceed the heartbeat period"},
		// Against the 500ms default heartbeat, not just an explicit -hb.
		{[]string{"-hbtimeout", "200ms"}, "must exceed the heartbeat period"},
		{[]string{"-hbtimeout", "0s"}, "must exceed the heartbeat period"},
		{[]string{"-draintimeout", "0s"}, "must be positive"},
		{[]string{"-draintimeout", "-1s"}, "negative"},
		{[]string{"-agents", "h1:9001"}, "requires -keyfile"},
		{[]string{"-keyfile", "key"}, "no effect without -agents"},
	} {
		err := parse(t, tc.args...).Validate()
		if err == nil {
			t.Errorf("Validate(%v) accepted, want error mentioning %q", tc.args, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%v) = %v, want mention of %q", tc.args, err, tc.want)
		}
	}

	// Programmatic zero values (no flag set) keep meaning "default":
	// only an explicit nonsense flag is rejected.
	if err := (Shard{ShardRetries: -1}).Validate(); err != nil {
		t.Errorf("zero-value Shard rejected: %v", err)
	}
	if err := (Shard{ShardRetries: -1, HeartbeatTimeout: 100 * time.Millisecond}).Validate(); err == nil {
		t.Error("programmatic sub-heartbeat hang deadline accepted (the rule is not flag-only)")
	}
}
