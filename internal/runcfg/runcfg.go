// Package runcfg is the single definition of "one profiling run's
// configuration" shared by every surface that starts runs: the tcprof and
// tcsim command lines, the experiments driver, and campaign matrix cells.
// Before it existed, each cmd parsed its own -soc/-seed/-cycles/... flags
// and resolved preset names with its own switch; the surfaces drifted.
// Now a Run validates once, resolves once, and serializes as the same JSON
// shape whether it came from flags or from a campaign spec file.
package runcfg

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/profiling"
	"repro/internal/soc"
)

// Run configures one profiling/simulation run. The zero value is not
// runnable; start from Default() or a campaign expansion.
type Run struct {
	SoC        string `json:"soc"`
	Seed       uint64 `json:"seed"`
	Cycles     uint64 `json:"cycles"`
	Resolution uint64 `json:"resolution,omitempty"`
	// Faults is a fault scenario name or k=v plan (fault.Parse syntax);
	// empty or "clean" means no injection.
	Faults  string `json:"faults,omitempty"`
	Framed  bool   `json:"framed,omitempty"`
	Degrade bool   `json:"degrade,omitempty"`
}

// Default returns the canonical run configuration the CLIs use as their
// flag defaults.
func Default() Run {
	return Run{SoC: "TC1797", Seed: 1, Cycles: 1_000_000, Resolution: 1000}
}

// Validate checks the whole configuration and returns the first problem.
// It is the one place run configurations are validated, regardless of
// whether they came from flags, a campaign spec, or code.
func (r Run) Validate() error {
	if _, err := soc.Preset(r.SoC); err != nil {
		return fmt.Errorf("runcfg: %w", err)
	}
	if r.Cycles == 0 {
		return fmt.Errorf("runcfg: zero cycle horizon")
	}
	if r.Resolution == 0 {
		return fmt.Errorf("runcfg: zero resolution")
	}
	if _, err := r.FaultPlan(); err != nil {
		return err
	}
	return nil
}

// SoCConfig resolves the production SoC preset named by the run.
func (r Run) SoCConfig() (soc.Config, error) {
	cfg, err := soc.Preset(r.SoC)
	if err != nil {
		return soc.Config{}, fmt.Errorf("runcfg: %w", err)
	}
	return cfg, nil
}

// FaultPlan parses the run's fault spec (nil when the run is clean; the
// name "clean" is accepted as an explicit alias for no injection).
func (r Run) FaultPlan() (*fault.Plan, error) {
	if r.Faults == "" || r.Faults == "clean" {
		return nil, nil
	}
	plan, err := fault.Parse(r.Faults, r.Seed)
	if err != nil {
		return nil, err
	}
	return &plan, nil
}

// SessionSpec assembles the profiling.Spec for this run: the given
// parameter set at the run's resolution, drained over a DAP sized for the
// SoC's clock, with framing/faults/degradation as configured. Obs and
// Tracer wiring is left to the caller.
func (r Run) SessionSpec(params []profiling.Param) (profiling.Spec, error) {
	cfg, err := r.SoCConfig()
	if err != nil {
		return profiling.Spec{}, err
	}
	dapCfg := dap.DefaultConfig(cfg.CPUFreqMHz)
	spec := profiling.Spec{
		Resolution: r.Resolution,
		Params:     params,
		DAP:        &dapCfg,
		Framed:     r.Framed,
	}
	plan, err := r.FaultPlan()
	if err != nil {
		return profiling.Spec{}, err
	}
	spec.Fault = plan
	if r.Degrade {
		spec.Degrade = &profiling.DegradePolicy{}
	}
	return spec, nil
}

// Bind registers the full run-configuration flag set (-soc, -seed,
// -cycles, -res, -faults, -framed, -degrade) on fs with defaults from def
// and returns the destination. Call fs.Parse, then Validate.
func Bind(fs *flag.FlagSet, def Run) *Run {
	r := BindBase(fs, def)
	fs.Uint64Var(&r.Resolution, "res", def.Resolution, "resolution (basis events per sample window)")
	fs.StringVar(&r.Faults, "faults", def.Faults,
		"fault scenario (clean|noisy-link|flaky-cable|soft-errors|fifo-jam|everything) or k=v list (corrupt=,trunc=,drop=,stall=,stallmin=,stallmax=,flip=,jam=,jammin=,jammax=)")
	fs.BoolVar(&r.Framed, "framed", def.Framed, "harden the trace path: CRC/seq frames + reliable DAP (implied by -faults)")
	fs.BoolVar(&r.Degrade, "degrade", def.Degrade, "enable graceful degradation (widen resolution under buffer pressure)")
	return r
}

// Supervise is the shared knob set of the campaign supervisor — the
// per-cell watchdog deadline and the transient-failure retry budget —
// so every CLI that drives supervised runs exposes the same flags with
// the same semantics.
type Supervise struct {
	// CellTimeout is the per-cell watchdog deadline; 0 disables it.
	CellTimeout time.Duration
	// Retries is the maximum number of re-executions of a cell after a
	// transient failure (a cell runs at most Retries+1 times).
	Retries int
}

// Validate checks the supervisor configuration.
func (s Supervise) Validate() error {
	if s.CellTimeout < 0 {
		return fmt.Errorf("runcfg: negative cell timeout %v", s.CellTimeout)
	}
	if s.Retries < 0 {
		return fmt.Errorf("runcfg: negative retry budget %d", s.Retries)
	}
	return nil
}

// BindSupervise registers the supervisor flag subset (-celltimeout,
// -retries) on fs and returns the destination. Call fs.Parse, then
// Validate.
func BindSupervise(fs *flag.FlagSet) *Supervise {
	s := &Supervise{}
	fs.DurationVar(&s.CellTimeout, "celltimeout", 0,
		"per-cell watchdog deadline (e.g. 30s; 0 disables)")
	fs.IntVar(&s.Retries, "retries", 0,
		"max retries per cell for transient failures (watchdog timeouts, marked-transient errors)")
	return s
}

// Shard supervision defaults. They live here — below campaign/shard in
// the import graph — so flag validation can reason about the effective
// values a zero knob falls back to; the shard package aliases them as
// its own Default* constants, keeping one source of truth.
const (
	// DefaultShardHeartbeat is how often a shard worker proves liveness
	// when it has no report to stream.
	DefaultShardHeartbeat = 500 * time.Millisecond
	// DefaultShardHeartbeatTimeout is the hang deadline: a shard silent
	// this long is presumed wedged and killed.
	DefaultShardHeartbeatTimeout = 10 * time.Second
	// DefaultShardDrainTimeout bounds graceful drain on cancel before
	// the hard kill.
	DefaultShardDrainTimeout = 5 * time.Second
)

// Shard is the shared knob set of the sharded campaign supervisor: how
// many worker processes a campaign splits across, where they run
// (local child processes, or remote tcfleet agents over TCP), and how
// paranoid the supervision is. Zero duration values defer to the
// Default* constants above, except Shards, where 0 means "run
// in-process, unsharded".
type Shard struct {
	// Shards is the number of worker processes; 0 or 1 runs the campaign
	// in-process (unless Agents is set, which implies sharding).
	Shards int
	// HeartbeatEvery is the worker heartbeat period (0 = default).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the hang deadline after which a silent worker
	// is killed and respawned (0 = default).
	HeartbeatTimeout time.Duration
	// ShardRetries is the respawn budget per shard (-1 = shard default).
	ShardRetries int
	// DrainTimeout bounds graceful drain on cancel before the hard kill
	// (0 = default).
	DrainTimeout time.Duration
	// Agents is the comma-separated host:port pool of remote tcfleet
	// agents; empty runs workers as local child processes.
	Agents string
	// KeyFile is the shared-key file authenticating supervisor and
	// agents to each other; required with Agents.
	KeyFile string

	// fs remembers the flag set this Shard was bound on, so Validate can
	// tell an explicit nonsense value (e.g. -draintimeout 0) from the
	// zero value that means "use the default".
	fs *flag.FlagSet
}

// explicit reports whether the named flag was set on the command line.
// Always false for a Shard constructed in code rather than by
// BindShard — programmatic zero values keep meaning "default".
func (s Shard) explicit(name string) bool {
	if s.fs == nil {
		return false
	}
	set := false
	s.fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// Validate checks the shard supervision configuration, including the
// cross-flag timing rules: a hang deadline at or below the heartbeat
// period classifies every healthy worker as hung, and an explicit
// non-positive drain bound turns every graceful cancel into an instant
// hard kill — both are rejected here, at bind/validate time, instead
// of producing baffling supervision behavior mid-campaign.
func (s Shard) Validate() error {
	if s.Shards < 0 {
		return fmt.Errorf("runcfg: negative shard count %d", s.Shards)
	}
	if s.HeartbeatEvery < 0 || s.HeartbeatTimeout < 0 || s.DrainTimeout < 0 {
		return fmt.Errorf("runcfg: negative shard supervision duration")
	}
	if s.ShardRetries < -1 {
		return fmt.Errorf("runcfg: bad shard respawn budget %d", s.ShardRetries)
	}
	hb := s.HeartbeatEvery
	if hb <= 0 {
		hb = DefaultShardHeartbeat
	}
	if s.HeartbeatTimeout > 0 && s.HeartbeatTimeout <= hb {
		return fmt.Errorf("runcfg: shard hang deadline %v must exceed the heartbeat period %v (a healthy worker would be classified as hung)",
			s.HeartbeatTimeout, hb)
	}
	if s.explicit("hbtimeout") && s.HeartbeatTimeout <= hb {
		return fmt.Errorf("runcfg: -hbtimeout %v must exceed the heartbeat period %v (a healthy worker would be classified as hung)",
			s.HeartbeatTimeout, hb)
	}
	if s.explicit("draintimeout") && s.DrainTimeout <= 0 {
		return fmt.Errorf("runcfg: -draintimeout %v must be positive (a graceful drain needs time to drain; omit the flag for the %v default)",
			s.DrainTimeout, DefaultShardDrainTimeout)
	}
	if s.Agents != "" && s.KeyFile == "" {
		return fmt.Errorf("runcfg: -agents requires -keyfile (remote workers must authenticate)")
	}
	if s.KeyFile != "" && s.Agents == "" && s.fs != nil {
		return fmt.Errorf("runcfg: -keyfile has no effect without -agents")
	}
	return nil
}

// BindShard registers the shard supervision flag subset (-shards, -hb,
// -hbtimeout, -shardretries, -draintimeout, -agents, -keyfile) on fs
// and returns the destination. Call fs.Parse, then Validate.
func BindShard(fs *flag.FlagSet) *Shard {
	s := &Shard{ShardRetries: -1, fs: fs}
	fs.IntVar(&s.Shards, "shards", 0,
		"split the campaign across N crash-supervised worker processes (0 = in-process; defaults to the agent count with -agents)")
	fs.DurationVar(&s.HeartbeatEvery, "hb", 0,
		"shard worker heartbeat period (0 = default)")
	fs.DurationVar(&s.HeartbeatTimeout, "hbtimeout", 0,
		"shard hang deadline: a worker silent this long is killed and respawned (0 = default; must exceed the heartbeat period)")
	fs.IntVar(&s.ShardRetries, "shardretries", -1,
		"respawn budget per shard before its remaining cells fail (-1 = default)")
	fs.DurationVar(&s.DrainTimeout, "draintimeout", 0,
		"graceful drain bound on cancel: SIGTERM, wait this long, then SIGKILL (0 = default)")
	fs.StringVar(&s.Agents, "agents", "",
		"comma-separated host:port pool of remote tcfleet agents to run shard workers on (empty = local child processes)")
	fs.StringVar(&s.KeyFile, "keyfile", "",
		"shared-key file authenticating this supervisor and the remote agents to each other (required with -agents)")
	return s
}

// Telemetry is the shared observability knob set: where to serve the
// live telemetry endpoints and where to persist the trace and event
// artifacts. Every CLI that can run long enough to be worth watching
// exposes the same flags with the same semantics, so an operator who
// learned `tcprof -metrics :9090` already knows `tcfleet run -metrics`.
// runcfg owns only the knobs and the listener; which endpoints hang off
// the mux is each CLI's business (it depends on what the run has — a
// single session has no campaign scoreboard).
type Telemetry struct {
	// MetricsAddr is the HTTP listen address for the live endpoints
	// (/metrics, /metrics/prom and, for campaigns, /status and /events).
	// ":0" binds an ephemeral port — Serve returns the actual address, so
	// scripts and CI can scrape without guessing a free port. Empty
	// disables the listener.
	MetricsAddr string
	// TracePath, when set, asks the CLI to write the run's spans as a
	// Chrome trace_event file at exit.
	TracePath string
	// EventsPath, when set, asks the CLI to persist the flight-recorder
	// event log as JSONL at exit. Only campaigns have an event log;
	// single-session CLIs leave it unregistered.
	EventsPath string
}

// BindTelemetry registers the telemetry flag subset shared by every CLI
// (-metrics, -trace) on fs and returns the destination. CLIs that have
// a flight recorder additionally bind -events onto the same Telemetry
// via BindTelemetryEvents.
func BindTelemetry(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.MetricsAddr, "metrics", "",
		"serve live telemetry at http://ADDR for the duration of the run (\":0\" picks a free port and prints it)")
	fs.StringVar(&t.TracePath, "trace", "",
		"write the run's spans as a Chrome trace (load in about://tracing)")
	return t
}

// BindTelemetryEvents registers -events on fs, persisting the campaign
// flight recorder; call it after BindTelemetry on the same destination.
func BindTelemetryEvents(fs *flag.FlagSet, t *Telemetry) {
	fs.StringVar(&t.EventsPath, "events", "",
		"write the campaign flight-recorder events as JSONL to this file at exit")
}

// Serve binds MetricsAddr and serves h on it from a background
// goroutine for the remainder of the process, returning the actual
// bound address (the only way to learn the port when MetricsAddr is
// ":0") and a closer that stops the listener. With MetricsAddr empty it
// is a no-op returning ("", no-op closer, nil).
func (t *Telemetry) Serve(h http.Handler) (addr string, closer func() error, err error) {
	if t == nil || t.MetricsAddr == "" {
		return "", func() error { return nil }, nil
	}
	ln, err := net.Listen("tcp", t.MetricsAddr)
	if err != nil {
		return "", nil, fmt.Errorf("runcfg: telemetry endpoint: %w", err)
	}
	go http.Serve(ln, h)
	return ln.Addr().String(), ln.Close, nil
}

// Prof is the shared host-profiling knob set: pprof capture of the
// simulator process itself (not the simulated SoC). Every CLI that can
// burn minutes of host CPU exposes the same two flags with the same
// semantics, so `tcprof -cpuprofile` and `tcfleet run -cpuprofile`
// produce interchangeable artifacts for `go tool pprof`.
type Prof struct {
	CPUProfile string
	MemProfile string
}

// BindProf registers the host-profiling flag subset (-cpuprofile,
// -memprofile) on fs and returns the destination. Call fs.Parse, then
// Start.
func BindProf(fs *flag.FlagSet) *Prof {
	p := &Prof{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the simulator process to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "",
		"write a pprof heap profile of the simulator process to this file at exit")
	return p
}

// Start begins CPU profiling (when configured) and returns a stop
// function that ends it and writes the heap profile (when configured).
// The stop function is safe to call exactly once; defer it right after a
// successful Start. With both paths empty Start is a no-op returning a
// no-op stop.
func (p *Prof) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("runcfg: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				return err
			}
			runtime.GC() // fold transient garbage so the profile shows live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("runcfg: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// BindBase registers only the simulation-level subset (-soc, -seed,
// -cycles) — what a run without an MCDS (tcsim, experiments) needs.
func BindBase(fs *flag.FlagSet, def Run) *Run {
	r := &Run{Resolution: def.Resolution, Faults: def.Faults, Framed: def.Framed, Degrade: def.Degrade}
	fs.StringVar(&r.SoC, "soc", def.SoC,
		"SoC preset ("+strings.Join(soc.PresetNames(), "|")+")")
	fs.Uint64Var(&r.Seed, "seed", def.Seed, "workload seed")
	fs.Uint64Var(&r.Cycles, "cycles", def.Cycles, "simulation horizon in CPU cycles")
	return r
}
