// Package mem provides the RAM models of the SoC: bus-attached SRAM (the
// LMU), CPU-local scratchpads (PSPR/DSPR), and the address-map constants
// shared by the whole system.
package mem

import (
	"fmt"

	"repro/internal/bus"
)

// Address map of the simulated SoC, following the TriCore segment
// conventions: segment 0x8 is the cached view of the program flash and
// segment 0xA the uncached view of the same array; scratchpads are
// CPU-local; segment 0xF holds peripherals behind the SPB bridge.
const (
	FlashBase   = 0x8000_0000 // cached program flash view
	FlashUncach = 0xA000_0000 // uncached view of the same array
	SRAMBase    = 0x9000_0000 // bus SRAM (LMU)
	SRAMUncach  = 0xB000_0000 // uncached view of the LMU
	PSPRBase    = 0xC000_0000 // program scratchpad (CPU 0)
	DSPRBase    = 0xD000_0000 // data scratchpad (CPU 0)
	PSPR1Base   = 0xC800_0000 // program scratchpad (CPU 1; the real silicon
	DSPR1Base   = 0xD800_0000 // aliases per-core scratchpads at one address —
	//                           distinct windows keep the single Peek simple)
	EMEMBase    = 0xE000_0000 // emulation memory (EEC, over Back Bone Bus)
	MCDSRegBase = 0xE800_0000 // MCDS register file (EEC, over Back Bone Bus)
	PeriphBase  = 0xF000_0000 // peripheral segment (SPB)
	PRAMBase    = 0xF800_0000 // PCP code/data RAM

	SegMask = 0xF000_0000

	// DeltaUncachedToCached, added to an uncached-view address (segment
	// 0xA/0xB), yields the cached twin (segment 0x8/0x9); used with
	// bus.NewAlias when mapping the uncached views.
	DeltaUncachedToCached uint32 = 0xE000_0000
)

// Segment returns the top-nibble segment of addr.
func Segment(addr uint32) uint32 { return addr & SegMask }

// CachedView maps an uncached-view address to its cached twin (and returns
// other addresses unchanged).
func CachedView(addr uint32) uint32 {
	switch Segment(addr) {
	case FlashUncach:
		return FlashBase | (addr &^ SegMask)
	case SRAMUncach:
		return SRAMBase | (addr &^ SegMask)
	}
	return addr
}

// RAM is a simple byte-addressable memory with uniform access latency. It
// serves both as a bus target (LMU SRAM, PCP PRAM) and, with latency 0, as
// the backing store of CPU-local scratchpads.
type RAM struct {
	name    string
	base    uint32
	data    []byte
	latency uint64

	Reads  uint64
	Writes uint64
}

// NewRAM creates a RAM of size bytes based at base with the given device
// latency in cycles.
func NewRAM(name string, base, size uint32, latency uint64) *RAM {
	return &RAM{name: name, base: base, data: make([]byte, size), latency: latency}
}

// Name returns the RAM instance name.
func (r *RAM) Name() string { return r.name }

// Base returns the first mapped address.
func (r *RAM) Base() uint32 { return r.base }

// Size returns the capacity in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.data)) }

// Contains reports whether addr (plus size bytes) falls inside the RAM.
func (r *RAM) Contains(addr uint32, size int) bool {
	off := int64(addr) - int64(r.base)
	return off >= 0 && off+int64(size) <= int64(len(r.data))
}

func (r *RAM) offset(addr uint32, n int) int {
	off := int64(addr) - int64(r.base)
	if off < 0 || off+int64(n) > int64(len(r.data)) {
		panic(fmt.Sprintf("ram %s: access outside [%#x,+%#x): %#x", r.name, r.base, len(r.data), addr))
	}
	return int(off)
}

// Access implements bus.Target.
func (r *RAM) Access(_ uint64, req *bus.Request) uint64 {
	off := r.offset(req.Addr, len(req.Data))
	if req.Write {
		copy(r.data[off:], req.Data)
		r.Writes++
	} else {
		copy(req.Data, r.data[off:])
		r.Reads++
	}
	return r.latency
}

// Read copies memory content into p (no timing; CPU-local or test access).
func (r *RAM) Read(addr uint32, p []byte) {
	copy(p, r.data[r.offset(addr, len(p)):])
	r.Reads++
}

// Write copies p into memory (no timing).
func (r *RAM) Write(addr uint32, p []byte) {
	copy(r.data[r.offset(addr, len(p)):], p)
	r.Writes++
}

// Read32 returns the little-endian word at addr.
func (r *RAM) Read32(addr uint32) uint32 {
	off := r.offset(addr, 4)
	return uint32(r.data[off]) | uint32(r.data[off+1])<<8 |
		uint32(r.data[off+2])<<16 | uint32(r.data[off+3])<<24
}

// Write32 stores the little-endian word v at addr.
func (r *RAM) Write32(addr uint32, v uint32) {
	off := r.offset(addr, 4)
	r.data[off] = byte(v)
	r.data[off+1] = byte(v >> 8)
	r.data[off+2] = byte(v >> 16)
	r.data[off+3] = byte(v >> 24)
}
