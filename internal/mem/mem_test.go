package mem

import (
	"testing"

	"repro/internal/bus"
)

func TestSegmentHelpers(t *testing.T) {
	if Segment(0x8001_2345) != FlashBase {
		t.Error("segment of cached flash address")
	}
	if CachedView(0xA001_2345) != 0x8001_2345 {
		t.Errorf("CachedView(flash uncached) = %#x", CachedView(0xA001_2345))
	}
	if CachedView(0xB000_0010) != 0x9000_0010 {
		t.Errorf("CachedView(sram uncached) = %#x", CachedView(0xB000_0010))
	}
	if CachedView(0xD000_0000) != 0xD000_0000 {
		t.Error("CachedView must leave other segments alone")
	}
}

func TestRAMReadWrite32(t *testing.T) {
	r := NewRAM("dspr", DSPRBase, 4096, 0)
	r.Write32(DSPRBase+8, 0xDEADBEEF)
	if got := r.Read32(DSPRBase + 8); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x", got)
	}
	// Byte order is little-endian.
	b := make([]byte, 4)
	r.Read(DSPRBase+8, b)
	if b[0] != 0xEF || b[3] != 0xDE {
		t.Errorf("endianness wrong: %v", b)
	}
}

func TestRAMAsBusTarget(t *testing.T) {
	r := NewRAM("lmu", SRAMBase, 4096, 2)
	req := &bus.Request{Addr: SRAMBase + 16, Data: []byte{1, 2, 3, 4}, Write: true}
	if lat := r.Access(0, req); lat != 2 {
		t.Errorf("latency = %d, want 2", lat)
	}
	rd := &bus.Request{Addr: SRAMBase + 16, Data: make([]byte, 4)}
	r.Access(5, rd)
	if rd.Data[0] != 1 || rd.Data[3] != 4 {
		t.Errorf("read back %v", rd.Data)
	}
	if r.Reads != 1 || r.Writes != 1 {
		t.Errorf("stats reads=%d writes=%d", r.Reads, r.Writes)
	}
}

func TestRAMContains(t *testing.T) {
	r := NewRAM("x", 0x1000, 0x100, 0)
	if !r.Contains(0x1000, 4) || !r.Contains(0x10FC, 4) {
		t.Error("in-range addresses rejected")
	}
	if r.Contains(0x10FD, 4) || r.Contains(0xFFF, 1) {
		t.Error("out-of-range addresses accepted")
	}
}

func TestRAMOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access must panic")
		}
	}()
	r := NewRAM("x", 0x1000, 0x10, 0)
	r.Read32(0x1010)
}

func TestRAMAccessors(t *testing.T) {
	r := NewRAM("x", 0x1000, 0x100, 2)
	if r.Name() != "x" || r.Base() != 0x1000 || r.Size() != 0x100 {
		t.Error("accessors wrong")
	}
	r.Write(0x1010, []byte{9, 8})
	b := make([]byte, 2)
	r.Read(0x1010, b)
	if b[0] != 9 || b[1] != 8 {
		t.Errorf("write/read: %v", b)
	}
}
