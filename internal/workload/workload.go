// Package workload generates synthetic automotive customer applications.
//
// The paper's methodology is explicitly built on the premise that the
// microcontroller vendor cannot obtain customer software: applications are
// proprietary, differ per customer even for the same function ("different
// HW/SW split, ... sometimes completely different algorithms, ... using on
// chip resources (CPU, PCP, DMA, timer cells, etc.) in a different way"),
// and future applications do not exist yet. This package substitutes that
// unavailable population with a parameterized generator: every Spec is one
// "customer application" — an interrupt-driven engine-control-style
// program assembled from task templates with customer-specific structure
// (code footprint, lookup-table sizes and placement, filter lengths,
// branchiness, ISR rates, and the TriCore/PCP/DMA partitioning).
//
// All randomness is seed-derived; a Spec always generates the identical
// application.
package workload

import (
	"fmt"

	"repro/internal/dma"
	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tricore"
)

// Spec parameterizes one synthetic customer application.
type Spec struct {
	Name string
	Seed uint64

	// Code and data structure.
	CodeKB          int  // filler-function footprint stressing the I-cache
	TableKB         int  // lookup tables (power-of-two words)
	TablesInScratch bool // map tables to DSPR instead of flash (a customer mapping choice)
	FilterTaps      int  // FIR length of the signal-filter task
	DiagBranches    int  // branchy diagnostic checks per main iteration
	BranchLoops     int  // taken-branch loop iterations of the branchy task (0 = task off)
	CallDepth       int  // call/return ladder depth of the branchy task (max 8)

	// Real-time configuration (periods in CPU cycles).
	ADCPeriod   uint64
	TimerPeriod uint64
	CANMeanGap  uint64

	// HW/SW split.
	CANOnPCP   bool // CAN handling as a PCP channel program
	CANViaDMA  bool // CAN FIFO drained by a DMA channel
	EEPROMEmul bool // periodic EEPROM-emulation flash writes

	// Optional tasks (further customer diversity).
	CRCTask     bool // software CRC over the received CAN payload buffer
	ObserverDim int  // state-observer matrix-vector size (0 = off, max 8)
	FlexRay     bool // time-triggered FlexRay traffic handled by an ISR

	// Instrumented injects software profiling instrumentation (counter
	// increment per function entry) — the intrusive baseline the MCDS
	// approach is compared against (experiment E5).
	Instrumented bool

	// CoreIndex selects which TriCore the application runs on (0 or 1;
	// 1 requires a SecondCore SoC). Code is placed in the upper flash
	// half and interrupts route to the second core's provider.
	CoreIndex int
}

// Validate normalizes and checks the spec.
func (sp *Spec) Validate() error {
	if sp.CodeKB < 0 || sp.CodeKB > 512 {
		return fmt.Errorf("workload %s: CodeKB %d out of range", sp.Name, sp.CodeKB)
	}
	if sp.TableKB <= 0 || sp.TableKB > 512 {
		return fmt.Errorf("workload %s: TableKB %d out of range", sp.Name, sp.TableKB)
	}
	if sp.FilterTaps <= 0 || sp.FilterTaps > 64 {
		return fmt.Errorf("workload %s: FilterTaps %d out of range", sp.Name, sp.FilterTaps)
	}
	if sp.BranchLoops < 0 || sp.BranchLoops > 256 {
		return fmt.Errorf("workload %s: BranchLoops %d out of range", sp.Name, sp.BranchLoops)
	}
	if sp.CallDepth < 0 || sp.CallDepth > 8 {
		return fmt.Errorf("workload %s: CallDepth %d out of range", sp.Name, sp.CallDepth)
	}
	if sp.ADCPeriod == 0 || sp.TimerPeriod == 0 || sp.CANMeanGap == 0 {
		return fmt.Errorf("workload %s: zero period", sp.Name)
	}
	if sp.CANOnPCP && sp.CANViaDMA {
		return fmt.Errorf("workload %s: CAN cannot be on PCP and DMA at once", sp.Name)
	}
	if sp.ObserverDim < 0 || sp.ObserverDim > 8 {
		return fmt.Errorf("workload %s: ObserverDim %d out of range", sp.Name, sp.ObserverDim)
	}
	if sp.CoreIndex < 0 || sp.CoreIndex > 1 {
		return fmt.Errorf("workload %s: CoreIndex %d out of range", sp.Name, sp.CoreIndex)
	}
	return nil
}

// DSPR layout used by the generated code, relative to the reserved base
// register r10 (never clobbered by generated code).
const (
	offSaveR1     = 0 // ISR register save slots
	offSaveR2     = 4
	offSaveR3     = 8
	offSaveR4     = 12
	offSaveR5     = 16
	offTick       = 20 // timer tick counter
	offRingIdx    = 24 // ADC ring write index (bytes)
	offCANIdx     = 28 // CAN SRAM buffer index
	offTableBase  = 32 // lookup table base address (flash or DSPR)
	offDiagState  = 36
	offEeprom     = 40 // EEPROM emulation flash base
	offJumpTable  = 44 // filler jump table address
	offFilterOut  = 48
	offLookupOut  = 52
	offCRCOut     = 56
	offBranchOut  = 60  // branchy task result
	offBranchSave = 128 // branchy link-save slots (task entry + ladder, ≤ 9 words)
	offObserver   = 192 // state-observer vector (up to 8 words) + results
	offRing       = 64  // ADC sample ring, 16 words
)

// App is a generated application loaded into a SoC.
type App struct {
	Spec Spec
	SoC  *soc.SoC

	Prog    *isa.Program // TriCore image (flash)
	PCPProg *isa.Program // PCP channel image (PRAM); nil unless CANOnPCP

	TableBase  uint32 // lookup table location actually used
	SaveBase   uint32 // r10 base in DSPR
	EEPROMBase uint32 // flash area used by EEPROM emulation

	// InstrumentedFuncs maps function name to its software-profiling
	// counter address (only when Spec.Instrumented).
	InstrumentedFuncs map[string]uint32

	CAN         *periph.CANNode
	ADC         *periph.ADC
	FlexRayNode *periph.FlexRayNode // nil unless Spec.FlexRay
}

// Build generates the application for spec and installs it into s: code
// into flash, tables into flash or DSPR, the PCP channel program into
// PRAM, and the peripheral/interrupt/DMA configuration into the SoC. The
// CPU is reset to the entry point; Run the clock to execute.
func Build(s *soc.SoC, spec Spec) (*App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.CANOnPCP && s.PCP == nil {
		return nil, fmt.Errorf("workload %s: CANOnPCP on a SoC without PCP", spec.Name)
	}
	if spec.CANViaDMA && s.DMA == nil {
		return nil, fmt.Errorf("workload %s: CANViaDMA on a SoC without DMA", spec.Name)
	}
	if spec.CoreIndex == 1 && s.CPU1 == nil {
		return nil, fmt.Errorf("workload %s: CoreIndex 1 on a SoC without a second core", spec.Name)
	}
	rng := sim.NewRNG(spec.Seed)
	saveBase := uint32(mem.DSPRBase)
	if spec.CoreIndex == 1 {
		saveBase = mem.DSPR1Base
	}
	app := &App{Spec: spec, SoC: s, SaveBase: saveBase}

	// --- memory plan ---
	tableWords := nextPow2(uint32(spec.TableKB) * 1024 / 4)
	if spec.TablesInScratch {
		// The scratch copy must fit between the work area and the
		// instrumentation counters.
		maxWords := (s.Cfg.DSPRSize - 0x8000) / 4
		for tableWords > maxWords {
			tableWords /= 2
		}
	}
	g := &gen{spec: spec, rng: rng, app: app, tableWords: tableWords}

	// Peripherals. Vector addresses are patched after assembly. Priorities
	// are offset per core so dual-core builds never collide on shared
	// providers (PCP/DMA).
	cpuProv := irq.ToCPU
	if spec.CoreIndex == 1 {
		cpuProv = irq.ToCPU1
	}
	pOff := uint32(spec.CoreIndex)
	sig := periph.NewSignal(800, 6500, 997, 5, rng.Fork(1))
	adc, adcSRN := s.AddADC(spec.Name+".adc", spec.ADCPeriod, rng.Uint64()%spec.ADCPeriod, sig, 8+pOff, cpuProv, 0)
	_, timerSRN := s.AddTimer(spec.Name+".timer", spec.TimerPeriod, rng.Uint64()%spec.TimerPeriod, 6+pOff, cpuProv, 0)
	app.ADC = adc

	canProv := cpuProv
	switch {
	case spec.CANOnPCP:
		canProv = irq.ToPCP
	case spec.CANViaDMA:
		canProv = irq.ToDMA
	}
	can, canSRN := s.AddCAN(spec.Name+".can", spec.CANMeanGap, 16, 4+pOff, canProv, 0)
	app.CAN = can
	g.adcBase, g.canBase = adc.Base, can.Base

	var frSRN *irq.SRN
	if spec.FlexRay {
		var fr *periph.FlexRayNode
		fr, frSRN = s.AddFlexRay(spec.Name+".flexray", 4000, 8, []int{1, 5}, 3, 8,
			2+pOff, cpuProv, 0)
		app.FlexRayNode = fr
		g.frBase = fr.Base
	}

	// --- TriCore image ---
	prog, err := g.buildMain()
	if err != nil {
		return nil, err
	}
	app.Prog = prog
	s.LoadProgram(prog)

	// Lookup tables: deterministic content. One padding word is left
	// beyond the table because interpolation reads cell pairs.
	tblFlash := alignUp(prog.Base+prog.Size(), 64)
	fillTable(s, tblFlash, tableWords+1, rng.Fork(2))
	app.TableBase = tblFlash
	if spec.TablesInScratch {
		// Customer mapped the hot tables into the data scratchpad.
		scratchBase := saveBase + 0x4000
		dspr := s.DSPR
		if spec.CoreIndex == 1 {
			dspr = s.DSPR1
		}
		buf := make([]byte, 4)
		for i := uint32(0); i <= tableWords; i++ {
			s.Peek(tblFlash+i*4, buf)
			dspr.Write(scratchBase+i*4, buf)
		}
		app.TableBase = scratchBase
	}

	// Jump table for the filler dispatch (indirect branches through a
	// flash-resident table, patched with the final filler addresses).
	jt := alignUp(tblFlash+(tableWords+1)*4, 64)
	g.patchJumpTable(s, jt, prog)

	// EEPROM emulation area: beyond the jump table.
	app.EEPROMBase = alignUp(jt+uint32(len(g.fillers))*4, 256)

	// Patch runtime configuration words the init code loads.
	g.writeConfig(s, app)

	// Patch SRN vectors now that symbols are known.
	adcSRN.Vector = symAddr(prog, "isr_adc")
	timerSRN.Vector = symAddr(prog, "isr_timer")
	if canProv == cpuProv {
		canSRN.Vector = symAddr(prog, "isr_can")
	}
	if frSRN != nil {
		frSRN.Vector = symAddr(prog, "isr_flexray")
	}

	// --- PCP channel program ---
	if spec.CANOnPCP {
		pprog, err := g.buildPCPChannel()
		if err != nil {
			return nil, err
		}
		app.PCPProg = pprog
		s.LoadProgram(pprog)
		s.PCP.AddChannel(spec.Name+".can-rx", canSRN, pprog.Base)
	}

	// --- DMA channel ---
	if spec.CANViaDMA {
		s.DMA.AddChannel(&dma.Channel{
			Name: "can-rx", Src: can.Base + periph.RegResult,
			Dst: mem.SRAMBase + 0x1000, SrcInc: 0, DstInc: 4,
			UnitBytes: 4, Count: 1,
		}, canSRN)
	}

	app.InstrumentedFuncs = g.profCounters
	if spec.CoreIndex == 1 {
		s.ResetCPU1(prog.Base)
	} else {
		s.ResetCPU(prog.Base)
	}
	return app, nil
}

// RunFor advances the system by the given horizon (generated applications
// run forever, as engine controllers do).
func (a *App) RunFor(cycles uint64) {
	a.SoC.Clock.Run(cycles)
	if a.CPU().Halted() {
		panic(fmt.Sprintf("workload %s: application halted unexpectedly at pc %#x",
			a.Spec.Name, a.CPU().PC()))
	}
}

// CPU returns the core this application runs on.
func (a *App) CPU() *tricore.CPU {
	if a.Spec.CoreIndex == 1 {
		return a.SoC.CPU1
	}
	return a.SoC.CPU
}

func symAddr(p *isa.Program, name string) uint32 {
	for _, s := range p.Syms {
		if s.Name == name {
			return s.Addr
		}
	}
	panic(fmt.Sprintf("workload: symbol %q missing", name))
}

func alignUp(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

func nextPow2(v uint32) uint32 {
	p := uint32(1)
	for p < v {
		p <<= 1
	}
	return p
}

func fillTable(s *soc.SoC, base, words uint32, rng *sim.RNG) {
	buf := make([]byte, words*4)
	for i := uint32(0); i < words; i++ {
		v := uint32(rng.Uint64())
		buf[i*4] = byte(v)
		buf[i*4+1] = byte(v >> 8)
		buf[i*4+2] = byte(v >> 16)
		buf[i*4+3] = byte(v >> 24)
	}
	s.Flash.Load(base, buf)
}

// Fleet returns n differently-structured customer applications derived
// from baseSeed — the population of profiles the SoC architect aggregates.
func Fleet(n int, baseSeed uint64) []Spec {
	rng := sim.NewRNG(baseSeed)
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Fork(uint64(i) + 1)
		sp := Spec{
			Name:         fmt.Sprintf("customer%02d", i),
			Seed:         r.Uint64(),
			CodeKB:       []int{4, 8, 16, 24, 32, 48, 64}[r.Intn(7)],
			TableKB:      []int{4, 8, 16, 32, 64}[r.Intn(5)],
			FilterTaps:   r.Range(4, 32),
			DiagBranches: r.Range(4, 24),
			ADCPeriod:    uint64(r.Range(1500, 6000)),
			TimerPeriod:  uint64(r.Range(4000, 20000)),
			CANMeanGap:   uint64(r.Range(2000, 10000)),
		}
		// HW/SW split varies per customer.
		switch r.Intn(3) {
		case 1:
			sp.CANOnPCP = true
		case 2:
			sp.CANViaDMA = true
		}
		sp.TablesInScratch = r.Bool(0.25)
		sp.EEPROMEmul = r.Bool(0.5)
		sp.CRCTask = r.Bool(0.4)
		if r.Bool(0.4) {
			sp.ObserverDim = r.Range(2, 6)
		}
		sp.FlexRay = r.Bool(0.3)
		specs = append(specs, sp)
	}
	return specs
}
