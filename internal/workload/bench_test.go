package workload

import (
	"testing"

	"repro/internal/soc"
)

func BenchmarkBuildApp(b *testing.B) {
	spec := Spec{
		Name: "bench", Seed: 1, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := soc.New(soc.TC1797(), spec.Seed)
		if _, err := Build(s, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppExecution(b *testing.B) {
	s := soc.New(soc.TC1797(), 1)
	app, err := Build(s, Spec{
		Name: "bench", Seed: 1, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	app.RunFor(uint64(b.N))
}
