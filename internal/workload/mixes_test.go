package workload

import (
	"sort"
	"testing"

	"repro/internal/soc"
)

func TestMixesValidateAndBuild(t *testing.T) {
	for _, name := range MixNames() {
		sp, ok := Mix(name, 7)
		if !ok {
			t.Fatalf("Mix(%q) not found though listed", name)
		}
		if sp.Name != name || sp.Seed != 7 {
			t.Fatalf("Mix(%q) did not stamp name/seed: %+v", name, sp)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("mix %q invalid: %v", name, err)
		}
		s := soc.New(soc.TC1797(), sp.Seed)
		if _, err := Build(s, sp); err != nil {
			t.Errorf("mix %q does not build: %v", name, err)
		}
	}
}

func TestMixUnknown(t *testing.T) {
	if _, ok := Mix("no-such-mix", 1); ok {
		t.Fatal("unknown mix reported ok")
	}
	if !sort.StringsAreSorted(MixNames()) {
		t.Fatal("MixNames not sorted")
	}
}
