package workload

import (
	"sort"
	"testing"

	"repro/internal/soc"
)

func TestMixesValidateAndBuild(t *testing.T) {
	for _, name := range MixNames() {
		sp, ok := Mix(name, 7)
		if !ok {
			t.Fatalf("Mix(%q) not found though listed", name)
		}
		if sp.Name != name || sp.Seed != 7 {
			t.Fatalf("Mix(%q) did not stamp name/seed: %+v", name, sp)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("mix %q invalid: %v", name, err)
		}
		s := soc.New(soc.TC1797(), sp.Seed)
		if _, err := Build(s, sp); err != nil {
			t.Errorf("mix %q does not build: %v", name, err)
		}
	}
}

func TestMixUnknown(t *testing.T) {
	if _, ok := Mix("no-such-mix", 1); ok {
		t.Fatal("unknown mix reported ok")
	}
	if !sort.StringsAreSorted(MixNames()) {
		t.Fatal("MixNames not sorted")
	}
}

// TestBranchyMixRegistered pins the branchy mix — the chained-dispatch
// stressor — in the registry with its control-flow knobs set, and proves
// the generated branchy task executes (the result slot gets written).
func TestBranchyMixRegistered(t *testing.T) {
	names := MixNames()
	i := sort.SearchStrings(names, "branchy")
	if i >= len(names) || names[i] != "branchy" {
		t.Fatalf("branchy mix missing from registry: %v", names)
	}
	sp, ok := Mix("branchy", 3)
	if !ok {
		t.Fatal("Mix(branchy) not found")
	}
	if sp.BranchLoops == 0 || sp.CallDepth == 0 {
		t.Fatalf("branchy mix lacks control-flow knobs: %+v", sp)
	}
	s := soc.New(soc.TC1797(), sp.Seed)
	app, err := Build(s, sp)
	if err != nil {
		t.Fatal(err)
	}
	app.RunFor(300_000)
	if app.SoC.DSPR.Read32(app.SaveBase+offBranchOut) == 0 {
		t.Fatal("branchy task never wrote its result slot")
	}
	found := false
	for _, sym := range app.Prog.Syms {
		if sym.Name == "task_branchy" {
			found = true
		}
	}
	if !found {
		t.Fatal("task_branchy not generated")
	}
}
