package workload

import "sort"

// Named workload mixes: the campaign runner's vocabulary of customer
// application shapes. Where Fleet draws random customers from one seeded
// distribution, a mix is a *stable named point* in that space — the same
// mix name always denotes the same application structure, so a campaign
// matrix cell like (TC1767, "canheavy", seed 7) is reproducible across
// machines and releases. The seed still varies the generated code and
// traffic within the shape.

// mixes maps each mix name to the structural template it denotes. The
// Seed and Name fields are filled in by Mix.
var mixes = map[string]Spec{
	// The engine-control reference application used throughout the
	// experiments (EXPERIMENTS.md E2–E8).
	"engine": {
		CodeKB: 24, TableKB: 32, FilterTaps: 16, DiagBranches: 12,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		EEPROMEmul: true,
	},
	// Small body-controller style program: tight code, little table data,
	// light interrupt load. Stresses nothing — the clean baseline shape.
	"lean": {
		CodeKB: 6, TableKB: 8, FilterTaps: 6, DiagBranches: 4,
		ADCPeriod: 4000, TimerPeriod: 16000, CANMeanGap: 9000,
	},
	// Cache-hostile calibration shape: large code footprint and big
	// flash-resident lookup tables with branchy diagnostics.
	"tableheavy": {
		CodeKB: 48, TableKB: 64, FilterTaps: 24, DiagBranches: 20,
		ADCPeriod: 2000, TimerPeriod: 8000, CANMeanGap: 5000,
		EEPROMEmul: true,
	},
	// High CAN traffic handled on the PCP — the HW/SW-split variant the
	// paper calls out (offload to the peripheral control processor).
	"canheavy": {
		CodeKB: 16, TableKB: 16, FilterTaps: 12, DiagBranches: 8,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 1500,
		CANOnPCP: true, CRCTask: true,
	},
	// DMA-drained CAN with a state observer — a compute-plus-dataflow
	// shape exercising DMA bus mastering.
	"dmaflow": {
		CodeKB: 20, TableKB: 16, FilterTaps: 16, DiagBranches: 8,
		ADCPeriod: 2200, TimerPeriod: 10000, CANMeanGap: 2500,
		CANViaDMA: true, ObserverDim: 4,
	},
	// Scratchpad-optimized variant of the reference shape (tables in
	// DSPR) — the paper's flash-avoidance optimization as a customer
	// mapping choice.
	"scratchopt": {
		CodeKB: 24, TableKB: 32, FilterTaps: 16, DiagBranches: 12,
		ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		TablesInScratch: true, EEPROMEmul: true,
	},
	// Control-flow-dominated shape: tight taken-branch loops, a deep
	// call/return ladder, and LOOP-heavy nested kernels. The block
	// interpreter's chained-dispatch stressor — hot control transfers
	// cross block boundaries every couple of instructions.
	"branchy": {
		CodeKB: 4, TableKB: 4, FilterTaps: 4, DiagBranches: 24,
		ADCPeriod: 4000, TimerPeriod: 16000, CANMeanGap: 9000,
		BranchLoops: 24, CallDepth: 6,
	},
}

// Mix returns the named workload mix instantiated for seed (ok=false for
// an unknown name). The returned spec's Name is the mix name, so run
// reports and fleet tables show the shape a session profiled.
func Mix(name string, seed uint64) (Spec, bool) {
	sp, ok := mixes[name]
	if !ok {
		return Spec{}, false
	}
	sp.Name = name
	sp.Seed = seed
	return sp, true
}

// MixNames lists the mix names Mix accepts, sorted.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for name := range mixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
