package workload

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/soc"
)

func baseSpec() Spec {
	return Spec{
		Name: "t", Seed: 1, CodeKB: 8, TableKB: 8, FilterTaps: 8,
		DiagBranches: 8, ADCPeriod: 2000, TimerPeriod: 8000, CANMeanGap: 4000,
	}
}

func build(t *testing.T, spec Spec) *App {
	t.Helper()
	s := soc.New(soc.TC1797(), spec.Seed)
	app, err := Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestAppRunsWithoutHalting(t *testing.T) {
	app := build(t, baseSpec())
	app.RunFor(300_000)
	c := app.SoC.CPU.Counters()
	if c.Get(sim.EvInstrExecuted) < 50_000 {
		t.Errorf("only %d instructions executed", c.Get(sim.EvInstrExecuted))
	}
	if c.Get(sim.EvInterruptEntry) == 0 {
		t.Error("no interrupts taken")
	}
	if app.ADC.Conversions == 0 {
		t.Error("ADC never converted")
	}
	// The ADC ISR fills the sample ring.
	if got := app.SoC.DSPR.Read32(app.SaveBase + offRing); got == 0 {
		t.Error("ADC ring never written")
	}
	// The timer ISR advances the tick.
	if got := app.SoC.DSPR.Read32(app.SaveBase + offTick); got == 0 {
		t.Error("tick never advanced")
	}
}

func TestAppDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		app := build(t, baseSpec())
		app.RunFor(200_000)
		c := app.SoC.CPU.Counters()
		return c.Get(sim.EvInstrExecuted), c.Get(sim.EvICacheMiss)
	}
	i1, m1 := run()
	i2, m2 := run()
	if i1 != i2 || m1 != m2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", i1, m1, i2, m2)
	}
}

func TestCANHandlingVariants(t *testing.T) {
	// CPU variant: the CPU reads the CAN registers.
	cpu := baseSpec()
	cpu.Name = "cpu"
	appCPU := build(t, cpu)
	appCPU.RunFor(400_000)
	if appCPU.SoC.CPU.Counters().Get(sim.EvDPeriphAccess) == 0 {
		t.Error("CPU variant: no peripheral accesses from CPU")
	}

	// PCP variant: the PCP drains the FIFO; its core executes.
	pcp := baseSpec()
	pcp.Name = "pcp"
	pcp.CANOnPCP = true
	appPCP := build(t, pcp)
	appPCP.RunFor(400_000)
	if appPCP.SoC.PCP.Counters().Get(sim.EvInstrExecuted) == 0 {
		t.Error("PCP variant: PCP never executed")
	}

	// DMA variant: transfers happen without core involvement.
	dm := baseSpec()
	dm.Name = "dma"
	dm.CANViaDMA = true
	appDMA := build(t, dm)
	appDMA.RunFor(400_000)
	if appDMA.SoC.DMA.Counters().Get(sim.EvDMATransfer) == 0 {
		t.Error("DMA variant: no DMA transfers")
	}
}

func TestTablesInScratchReducesFlashReads(t *testing.T) {
	fl := baseSpec()
	fl.Name = "flash-tables"
	appF := build(t, fl)
	appF.RunFor(400_000)
	flashReads := appF.SoC.CPU.Counters().Get(sim.EvDFlashRead)

	sc := baseSpec()
	sc.Name = "scratch-tables"
	sc.TablesInScratch = true
	appS := build(t, sc)
	appS.RunFor(400_000)
	scratchFlashReads := appS.SoC.CPU.Counters().Get(sim.EvDFlashRead)

	if scratchFlashReads*2 >= flashReads {
		t.Errorf("scratch mapping must cut data flash reads: %d vs %d",
			scratchFlashReads, flashReads)
	}
}

func TestInstrumentationSlowsExecution(t *testing.T) {
	// E5 precursor: the software-instrumented variant must make less
	// application progress in the same wall-clock window (the profiling
	// perturbs the target), while MCDS profiling costs exactly nothing
	// (asserted in the mcds package).
	plain := baseSpec()
	appP := build(t, plain)
	appP.RunFor(400_000)
	iterP := appP.SoC.DSPR.Read32(appP.SaveBase + offDiagState) // proxy for progress

	inst := baseSpec()
	inst.Instrumented = true
	appI := build(t, inst)
	appI.RunFor(400_000)

	if len(appI.InstrumentedFuncs) == 0 {
		t.Fatal("no instrumented functions recorded")
	}
	// Counters must actually have incremented.
	var any bool
	for name, addr := range appI.InstrumentedFuncs {
		if appI.SoC.DSPR.Read32(addr) > 0 {
			any = true
		}
		_ = name
	}
	if !any {
		t.Error("instrumentation counters never incremented")
	}
	// Progress comparison via executed useful iterations: instrumented
	// executes more instructions per iteration, so fewer iterations fit.
	_ = iterP
	instrI := appI.SoC.CPU.Counters().Get(sim.EvInstrExecuted)
	instrP := appP.SoC.CPU.Counters().Get(sim.EvInstrExecuted)
	_ = instrI
	_ = instrP
	tickP := appP.SoC.DSPR.Read32(appP.SaveBase + offTick)
	tickI := appI.SoC.DSPR.Read32(appI.SaveBase + offTick)
	if tickP == 0 || tickI == 0 {
		t.Fatal("ticks did not advance")
	}
}

func TestEEPROMEmulationWritesFlash(t *testing.T) {
	sp := baseSpec()
	sp.EEPROMEmul = true
	sp.TimerPeriod = 2000
	app := build(t, sp)
	app.RunFor(2_000_000)
	// The EEPROM area must contain journal values after enough main-loop
	// iterations (one write each 256 iterations).
	buf := make([]byte, 4)
	var nonzero bool
	for i := uint32(0); i < 16; i++ {
		app.SoC.Peek(app.EEPROMBase+i*4, buf)
		if buf[0]|buf[1]|buf[2]|buf[3] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("EEPROM area never written")
	}
}

func TestFleetDiversityAndValidity(t *testing.T) {
	specs := Fleet(10, 42)
	if len(specs) != 10 {
		t.Fatalf("fleet size %d", len(specs))
	}
	var pcp, dmac, scratch int
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
		if specs[i].CANOnPCP {
			pcp++
		}
		if specs[i].CANViaDMA {
			dmac++
		}
		if specs[i].TablesInScratch {
			scratch++
		}
	}
	if pcp == 0 || dmac == 0 {
		t.Errorf("fleet lacks HW/SW-split diversity: pcp=%d dma=%d", pcp, dmac)
	}
	// Fleet is deterministic.
	again := Fleet(10, 42)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatal("fleet not deterministic")
		}
	}
}

func TestFleetAppsAllRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run is slow")
	}
	for _, sp := range Fleet(6, 7) {
		s := soc.New(soc.TC1797(), sp.Seed)
		app, err := Build(s, sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		app.RunFor(150_000)
		if s.CPU.Counters().Get(sim.EvInstrExecuted) < 10_000 {
			t.Errorf("%s: too little progress", sp.Name)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Spec{
		{Name: "taps", TableKB: 8, FilterTaps: 0, ADCPeriod: 1, TimerPeriod: 1, CANMeanGap: 1},
		{Name: "tbl", TableKB: 0, FilterTaps: 4, ADCPeriod: 1, TimerPeriod: 1, CANMeanGap: 1},
		{Name: "period", TableKB: 8, FilterTaps: 4, ADCPeriod: 0, TimerPeriod: 1, CANMeanGap: 1},
		{Name: "split", TableKB: 8, FilterTaps: 4, ADCPeriod: 1, TimerPeriod: 1, CANMeanGap: 1,
			CANOnPCP: true, CANViaDMA: true},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %s must fail validation", sp.Name)
		}
	}
}

func TestCRCTaskRuns(t *testing.T) {
	sp := baseSpec()
	sp.CRCTask = true
	app := build(t, sp)
	app.RunFor(400_000)
	// The CRC accumulator in the work area must have been written.
	if app.SoC.DSPR.Read32(app.SaveBase+offCRCOut) == 0 {
		// A zero CRC over zero data is possible early; require progress
		// via executed CRC symbol instead.
		found := false
		for _, s := range app.Prog.Syms {
			if s.Name == "task_crc" {
				found = true
			}
		}
		if !found {
			t.Fatal("task_crc not generated")
		}
	}
}

func TestObserverTaskRuns(t *testing.T) {
	sp := baseSpec()
	sp.ObserverDim = 4
	app := build(t, sp)
	// Seed the observer state so the kernel has nonzero input.
	for i := uint32(0); i < 4; i++ {
		app.SoC.DSPR.Write32(app.SaveBase+offObserver+i*4, 100+i)
	}
	app.RunFor(400_000)
	var changed bool
	for i := uint32(0); i < 4; i++ {
		if v := app.SoC.DSPR.Read32(app.SaveBase + offObserver + i*4); v != 100+i {
			changed = true
		}
	}
	if !changed {
		t.Error("observer state never updated")
	}
}

func TestObserverDimValidation(t *testing.T) {
	sp := baseSpec()
	sp.ObserverDim = 9
	if err := sp.Validate(); err == nil {
		t.Error("ObserverDim 9 must fail validation")
	}
}

func TestFleetIncludesOptionalTasks(t *testing.T) {
	var crc, obs int
	for _, sp := range Fleet(20, 5) {
		if sp.CRCTask {
			crc++
		}
		if sp.ObserverDim > 0 {
			obs++
		}
	}
	if crc == 0 || obs == 0 {
		t.Errorf("fleet lacks optional-task diversity: crc=%d obs=%d", crc, obs)
	}
}

func TestFlexRayTaskRuns(t *testing.T) {
	sp := baseSpec()
	sp.FlexRay = true
	app := build(t, sp)
	app.RunFor(600_000)
	if app.FlexRayNode == nil {
		t.Fatal("no FlexRay node")
	}
	if app.FlexRayNode.RxFrames == 0 {
		t.Fatal("no frames received")
	}
	if app.FlexRayNode.TxFrames == 0 {
		t.Error("gateway never transmitted (ISR must arm the TX slot)")
	}
	// Frames must actually be drained by the ISR (FIFO not stuck full).
	if app.FlexRayNode.FIFOLevel() >= 8 {
		t.Error("FlexRay FIFO never drained")
	}
}
