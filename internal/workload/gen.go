package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/sim"
	"repro/internal/soc"
)

// Register conventions of generated code:
//
//	r0        always zero (set at init, never written again)
//	r1..r8    task scratch (tasks are leaf functions called from main)
//	r1..r5    ISR scratch (saved to DSPR slots at entry, restored at RFE)
//	r9        main-loop iteration counter
//	r10       DSPR work-area base (never clobbered)
//	r14       link register
//	r15       stack pointer (unused by generated code)
const (
	regZero = 0
	regIter = 9
	regBase = 10
)

// gen holds the state of one application generation.
type gen struct {
	spec       Spec
	rng        *sim.RNG
	app        *App
	tableWords uint32
	adcBase    uint32
	canBase    uint32

	frBase       uint32
	fillers      []string
	profCounters map[string]uint32
	profNext     uint32
	profArea     uint32 // absolute DSPR address of instrumentation counters
	cfgAddr      uint32
	jtAddr       uint32
}

// Config block layout (flash-resident words the init code loads).
const (
	cfgTableBase = 0
	cfgEEPROM    = 4
	cfgJumpTable = 8
	cfgWords     = 3
)

// enter places the function label and, for the instrumented variant, the
// software-profiling prologue (the intrusive baseline of experiment E5):
// five instructions incrementing a per-function counter in DSPR.
func (g *gen) enter(a *isa.Asm, name string, scratchA, scratchB int) {
	a.Label(name)
	if !g.spec.Instrumented {
		return
	}
	addr := g.profArea + g.profNext
	g.profNext += 4
	g.profCounters[name] = addr
	a.Movw(scratchA, addr)
	a.Ldw(scratchB, scratchA, 0)
	a.Addi(scratchB, scratchB, 1)
	a.Stw(scratchB, scratchA, 0)
}

func (g *gen) fillerCount() int {
	if g.spec.CodeKB == 0 {
		return 0
	}
	k := g.spec.CodeKB * 1024 / 64
	if k > 1024 {
		k = 1024
	}
	// Power of two for index masking.
	p := 1
	for p*2 <= k {
		p *= 2
	}
	return p
}

// buildMain assembles the TriCore image. Core-1 applications live in the
// upper flash half with their own config block and DSPR window.
func (g *gen) buildMain() (*isa.Program, error) {
	s := g.app.SoC
	base := uint32(mem.FlashBase)
	dsprBase := uint32(mem.DSPRBase)
	if g.spec.CoreIndex == 1 {
		base += s.Cfg.Flash.Size / 2
		dsprBase = mem.DSPR1Base
	}
	g.cfgAddr = base + s.Cfg.Flash.Size/2 - 0x100
	g.profCounters = make(map[string]uint32)
	g.profArea = dsprBase + s.Cfg.DSPRSize - 0x2000

	a := isa.NewAsm(base)

	// --- init ---
	a.Label("entry")
	a.Movi(regZero, 0)
	a.Movw(regBase, g.app.SaveBase)
	a.Movw(1, g.cfgAddr)
	a.Ldw(2, 1, cfgTableBase)
	a.Stw(2, regBase, offTableBase)
	a.Ldw(2, 1, cfgEEPROM)
	a.Stw(2, regBase, offEeprom)
	a.Ldw(2, 1, cfgJumpTable)
	a.Stw(2, regBase, offJumpTable)
	a.Movi(2, 1)
	a.Stw(2, regBase, offDiagState)
	a.Movi(2, 0)
	a.Stw(2, regBase, offTick)
	a.Stw(2, regBase, offRingIdx)
	a.Stw(2, regBase, offCANIdx)
	a.Movi(1, 1)
	a.Mtcr(isa.CsrICR, 1) // enable interrupts
	a.Movi(regIter, 0)
	a.J("main_loop")

	// --- main loop ---
	a.Label("main_loop")
	a.Call("task_filter")
	a.Call("task_lookup")
	a.Call("task_diag")
	if g.spec.BranchLoops > 0 {
		a.Call("task_branchy")
	}
	if g.spec.CRCTask {
		a.Call("task_crc")
	}
	if g.spec.ObserverDim > 0 {
		a.Call("task_observer")
	}
	if g.fillerCount() > 0 {
		a.Call("task_dispatch")
	}
	if g.spec.EEPROMEmul {
		a.Andi(1, regIter, 255)
		a.Bne(1, regZero, "skip_eeprom")
		a.Call("task_eeprom")
		a.Label("skip_eeprom")
	}
	a.Addi(regIter, regIter, 1)
	a.J("main_loop")

	g.emitFilter(a)
	g.emitLookup(a)
	g.emitDiag(a)
	if g.spec.BranchLoops > 0 {
		g.emitBranchy(a)
	}
	if g.spec.CRCTask {
		g.emitCRC(a)
	}
	if g.spec.ObserverDim > 0 {
		g.emitObserver(a)
	}
	if g.spec.EEPROMEmul {
		g.emitEEPROM(a)
	}
	if g.fillerCount() > 0 {
		g.emitDispatchAndFillers(a)
	}
	g.emitISRs(a)

	return a.Assemble()
}

// emitFilter: FIR/IIR-style MAC loop over the ADC sample ring — the
// ALU-heavy, high-IPC task of engine control (signal conditioning).
func (g *gen) emitFilter(a *isa.Asm) {
	g.enter(a, "task_filter", 1, 2)
	a.Lea(1, regBase, offRing)         // sample pointer
	a.Movi(4, 0)                       // accumulator
	a.Movi(5, int32(3+g.rng.Intn(13))) // coefficient
	a.Movi(8, int32(g.spec.FilterTaps))
	a.Label("filter_body")
	a.Ldw(3, 1, 0)
	a.Mac(4, 3, 5)
	a.Addi(1, 1, 4)
	a.Loop(8, "filter_body")
	a.Stw(4, regBase, offFilterOut)
	a.Ret()
}

// emitLookup: 2D characteristic-map interpolation — indexed loads from the
// lookup tables (flash- or scratch-resident), the data-flash-read workload
// the paper's flash-path analysis targets.
func (g *gen) emitLookup(a *isa.Asm) {
	g.enter(a, "task_lookup", 1, 2)
	a.Ldw(1, regBase, offTableBase)
	a.Ldw(7, regBase, offDiagState)
	a.Ldw(2, regBase, offFilterOut)
	a.Xor(7, 7, 2)
	// LCG scramble so successive iterations hit different cells.
	a.Movw(6, 1664525)
	a.Mul(7, 7, 6)
	a.Movw(6, 1013904223)
	a.Add(7, 7, 6)
	a.Stw(7, regBase, offDiagState)
	a.Movw(8, g.tableWords-1) // index mask (register: tables exceed imm12)
	a.Movi(5, 0)
	// Two interpolation cell pairs from different index bits.
	for _, shift := range []int32{8, 18} {
		a.Shri(2, 7, shift)
		a.And(2, 2, 8)
		a.Shli(2, 2, 2)
		a.Add(2, 1, 2)
		a.Ldw(3, 2, 0)
		a.Ldw(4, 2, 4)
		a.Mac(5, 3, 4)
	}
	a.Stw(5, regBase, offLookupOut)
	a.Ret()
}

// emitDiag: branchy plausibility checks on system state — the
// control-flow-heavy part of the mix.
func (g *gen) emitDiag(a *isa.Asm) {
	g.enter(a, "task_diag", 1, 2)
	a.Ldw(1, regBase, offTick)
	a.Ldw(2, regBase, offDiagState)
	for i := 0; i < g.spec.DiagBranches; i++ {
		mask := int32(1 << uint(g.rng.Intn(10)))
		skip := fmt.Sprintf("diag_skip_%d", i)
		a.Andi(3, 2, mask)
		if g.rng.Bool(0.5) {
			a.Beq(3, regZero, skip)
		} else {
			a.Bne(3, regZero, skip)
		}
		switch g.rng.Intn(3) {
		case 0:
			a.Addi(2, 2, int32(g.rng.Range(1, 7)))
		case 1:
			a.Xori(2, 2, int32(g.rng.Range(1, 255)))
		case 2:
			a.Add(2, 2, 1)
		}
		a.Label(skip)
	}
	a.Xor(2, 2, 1)
	a.Stw(2, regBase, offDiagState)
	a.Ret()
}

// emitBranchy: the control-flow-dominated task — a tight taken-branch
// countdown loop, a call/return ladder CallDepth deep, and a LOOP-heavy
// nested kernel. Hot control transfers cross block boundaries every couple
// of instructions, which is exactly the shape block chaining targets.
func (g *gen) emitBranchy(a *isa.Asm) {
	g.enter(a, "task_branchy", 1, 2)
	a.Stw(14, regBase, offBranchSave) // the ladder clobbers the link register
	// Tight taken-branch loop: the backward BNE is taken every iteration
	// but the last (static prediction's happy path).
	a.Movi(1, int32(g.spec.BranchLoops))
	a.Movi(2, 0)
	a.Label("branchy_tight")
	a.Addi(2, 2, 1)
	a.Addi(1, 1, -1)
	a.Bne(1, regZero, "branchy_tight")
	// Call/return ladder: every call and return is a cross-block transfer.
	if g.spec.CallDepth > 0 {
		a.Call("branchy_f0")
	}
	// Nested LOOP kernel: the inner back edge runs on the zero-overhead
	// loop pipe, the outer one re-enters across the inner block.
	a.Movi(7, 4)
	a.Label("branchy_outer")
	a.Movi(8, int32(1+g.spec.BranchLoops/8))
	a.Label("branchy_inner")
	a.Xori(2, 2, 0x2A)
	a.Loop(8, "branchy_inner")
	a.Loop(7, "branchy_outer")
	a.Stw(2, regBase, offBranchOut)
	a.Ldw(14, regBase, offBranchSave)
	a.Ret()
	for i := 0; i < g.spec.CallDepth; i++ {
		a.Label(fmt.Sprintf("branchy_f%d", i))
		if i+1 < g.spec.CallDepth {
			a.Stw(14, regBase, offBranchSave+4*int32(i+1))
			a.Call(fmt.Sprintf("branchy_f%d", i+1))
			a.Ldw(14, regBase, offBranchSave+4*int32(i+1))
		} else {
			a.Xori(2, 2, int32(i+1))
		}
		a.Ret()
	}
}

// emitCRC: bit-serial CRC over the most recent CAN payload words in the
// SRAM receive buffer — a shift/xor-heavy integer kernel operating on
// bus-resident data (classic body/gateway workload).
func (g *gen) emitCRC(a *isa.Asm) {
	g.enter(a, "task_crc", 1, 2)
	a.Movw(1, mem.SRAMBase+0x1000) // CAN buffer
	a.Movi(5, 0)                   // crc accumulator
	a.Movi(8, 4)                   // words to cover
	a.Label("crc_word")
	a.Ldw(2, 1, 0)
	a.Xor(5, 5, 2)
	a.Movi(7, 8) // bits per word (abbreviated)
	a.Label("crc_bit")
	a.Andi(3, 5, 1)
	a.Shri(5, 5, 1)
	a.Beq(3, regZero, "crc_skip")
	a.Movw(4, 0xEDB88320) // CRC-32 reflected polynomial
	a.Xor(5, 5, 4)
	a.Label("crc_skip")
	a.Loop(7, "crc_bit")
	a.Addi(1, 1, 4)
	a.Loop(8, "crc_word")
	a.Stw(5, regBase, offCRCOut)
	a.Ret()
}

// emitObserver: a small state-observer update x' = A·x (dim×dim MAC
// kernel over DSPR-resident state), the linear-algebra-flavoured part of
// chassis/driveline control.
func (g *gen) emitObserver(a *isa.Asm) {
	dim := int32(g.spec.ObserverDim)
	g.enter(a, "task_observer", 1, 2)
	a.Lea(1, regBase, offObserver) // state vector base
	a.Movi(6, 0)                   // row index (byte offset)
	a.Movi(8, dim)
	a.Label("obs_row")
	a.Movi(5, 0) // accumulator
	a.Movi(7, dim)
	a.Lea(2, regBase, offObserver)
	a.Label("obs_col")
	a.Ldw(3, 2, 0)
	a.Addi(4, 3, 3) // coefficient derived from the element itself
	a.Mac(5, 3, 4)
	a.Addi(2, 2, 4)
	a.Loop(7, "obs_col")
	a.Add(2, 1, 6)
	a.Shri(5, 5, 4) // scale down to avoid quick overflow
	a.Stw(5, 2, 0)
	a.Addi(6, 6, 4)
	a.Loop(8, "obs_row")
	a.Ret()
}

// emitEEPROM: EEPROM emulation — periodic parameter writes into a flash
// sector (posted, but they occupy the flash array and interfere with
// fetches) plus an SRAM journal entry.
func (g *gen) emitEEPROM(a *isa.Asm) {
	g.enter(a, "task_eeprom", 1, 2)
	a.Ldw(1, regBase, offEeprom)
	a.Ldw(2, regBase, offTick)
	a.Andi(3, 2, 15)
	a.Shli(3, 3, 2)
	a.Add(1, 1, 3)
	a.Stw(2, 1, 0) // flash program operation
	a.Movw(4, mem.SRAMBase+0x200)
	a.Stw(2, 4, 0) // journal
	a.Ret()
}

// emitDispatchAndFillers: the code-footprint model. Main calls a dispatcher
// that jumps through a flash-resident table into one of K filler functions
// (inlined application logic of the customer beyond the core tasks),
// stressing the I-cache and fetch path.
func (g *gen) emitDispatchAndFillers(a *isa.Asm) {
	k := g.fillerCount()
	g.enter(a, "task_dispatch", 1, 2)
	a.Ldw(1, regBase, offJumpTable)
	a.Andi(2, regIter, int32(k-1))
	a.Shli(2, 2, 2)
	a.Add(1, 1, 2)
	a.Ldw(3, 1, 0)
	a.Jr(3) // indirect jump into the selected filler

	for i := 0; i < k; i++ {
		name := fmt.Sprintf("filler_%d", i)
		g.fillers = append(g.fillers, name)
		a.Label(name)
		if g.spec.Instrumented {
			addr := g.profArea + g.profNext
			g.profNext += 4
			g.profCounters[name] = addr
			a.Movw(4, addr)
			a.Ldw(5, 4, 0)
			a.Addi(5, 5, 1)
			a.Stw(5, 4, 0)
		}
		// ~10 random ALU instructions on r4..r8.
		n := 8 + g.rng.Intn(6)
		for j := 0; j < n; j++ {
			rd := 4 + g.rng.Intn(5)
			ra := 4 + g.rng.Intn(5)
			switch g.rng.Intn(5) {
			case 0:
				a.Addi(rd, ra, int32(g.rng.Range(-100, 100)))
			case 1:
				a.Xori(rd, ra, int32(g.rng.Range(0, 255)))
			case 2:
				a.Shli(rd, ra, int32(g.rng.Range(1, 7)))
			case 3:
				a.Add(rd, ra, 4+g.rng.Intn(5))
			case 4:
				a.Mul(rd, ra, 4+g.rng.Intn(5))
			}
		}
		a.J("fillers_done")
	}
	a.Label("fillers_done")
	a.Ret()
}

// emitISRs: the interrupt handlers. Each saves the registers it uses into
// dedicated DSPR slots (the model core has no automatic context save).
func (g *gen) emitISRs(a *isa.Asm) {
	saveAll := func() {
		a.Stw(1, regBase, offSaveR1)
		a.Stw(2, regBase, offSaveR2)
		a.Stw(3, regBase, offSaveR3)
		a.Stw(4, regBase, offSaveR4)
		a.Stw(5, regBase, offSaveR5)
	}
	restoreAll := func() {
		a.Ldw(1, regBase, offSaveR1)
		a.Ldw(2, regBase, offSaveR2)
		a.Ldw(3, regBase, offSaveR3)
		a.Ldw(4, regBase, offSaveR4)
		a.Ldw(5, regBase, offSaveR5)
	}

	// ADC end-of-conversion: read the result register, store it into the
	// DSPR sample ring.
	a.Label("isr_adc")
	saveAll()
	if g.spec.Instrumented {
		g.instrumentInline(a, "isr_adc")
	}
	a.Movw(1, g.adcBase+periph.RegResult)
	a.Ldw(2, 1, 0)
	a.Ldw(3, regBase, offRingIdx)
	a.Lea(1, regBase, offRing)
	a.Add(1, 1, 3)
	a.Stw(2, 1, 0)
	a.Addi(3, 3, 4)
	a.Andi(3, 3, 63)
	a.Stw(3, regBase, offRingIdx)
	restoreAll()
	a.Rfe()

	// System timer: tick counter.
	a.Label("isr_timer")
	saveAll()
	if g.spec.Instrumented {
		g.instrumentInline(a, "isr_timer")
	}
	a.Ldw(1, regBase, offTick)
	a.Addi(1, 1, 1)
	a.Stw(1, regBase, offTick)
	restoreAll()
	a.Rfe()

	// FlexRay receive: pop frames from the static-segment buffer, fold
	// them into the diagnostic state, and arm the next TX slot with the
	// latest filter output (the gateway pattern).
	if g.spec.FlexRay {
		a.Label("isr_flexray")
		saveAll()
		if g.spec.Instrumented {
			g.instrumentInline(a, "isr_flexray")
		}
		a.Movw(1, g.frBase)
		a.Ldw(2, 1, periph.RegResult) // pop the frame
		a.Ldw(3, regBase, offDiagState)
		a.Xor(3, 3, 2)
		a.Stw(3, regBase, offDiagState)
		a.Ldw(4, regBase, offFilterOut)
		a.Stw(4, 1, periph.RegPeriod) // arm TX with the filtered value
		restoreAll()
		a.Rfe()
	}

	// CAN receive (only when handled on the TriCore): drain the FIFO into
	// an SRAM message buffer.
	if !g.spec.CANOnPCP && !g.spec.CANViaDMA {
		a.Label("isr_can")
		saveAll()
		if g.spec.Instrumented {
			g.instrumentInline(a, "isr_can")
		}
		a.Movw(1, g.canBase)
		a.Ldw(2, 1, periph.RegStatus)
		a.Label("can_drain")
		a.Beq(2, regZero, "can_done")
		a.Ldw(3, 1, periph.RegResult)
		a.Ldw(4, regBase, offCANIdx)
		a.Movw(5, mem.SRAMBase+0x1000)
		a.Add(5, 5, 4)
		a.Stw(3, 5, 0)
		a.Addi(4, 4, 4)
		a.Andi(4, 4, 255)
		a.Stw(4, regBase, offCANIdx)
		a.Addi(2, 2, -1)
		a.Bne(2, regZero, "can_drain")
		a.Label("can_done")
		restoreAll()
		a.Rfe()
	}
}

func (g *gen) instrumentInline(a *isa.Asm, name string) {
	addr := g.profArea + g.profNext
	g.profNext += 4
	g.profCounters[name] = addr
	a.Movw(1, addr)
	a.Ldw(2, 1, 0)
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
}

// buildPCPChannel assembles the CAN-drain channel program for the PCP
// (the HW/SW-split variant where peripheral handling is offloaded).
func (g *gen) buildPCPChannel() (*isa.Program, error) {
	a := isa.NewAsm(mem.PRAMBase + 0x1000)
	a.Label("pcp_can_rx")
	a.Movw(1, g.canBase)
	a.Ldw(2, 1, periph.RegStatus)
	a.Beq(2, regZero, "pcp_done")
	a.Label("pcp_drain")
	a.Ldw(3, 1, periph.RegResult)
	a.Movw(4, mem.PRAMBase+0x2000)
	a.Ldw(5, 4, 4) // buffer index kept in PRAM
	a.Add(6, 4, 5)
	a.Stw(3, 6, 8)
	a.Addi(5, 5, 4)
	a.Andi(5, 5, 255)
	a.Stw(5, 4, 4)
	a.Addi(2, 2, -1)
	a.Bne(2, regZero, "pcp_drain")
	a.Label("pcp_done")
	a.Rfe()
	return a.Assemble()
}

// patchJumpTable writes the filler jump table into flash at jt.
func (g *gen) patchJumpTable(s *soc.SoC, jt uint32, prog *isa.Program) {
	if len(g.fillers) == 0 {
		return
	}
	buf := make([]byte, len(g.fillers)*4)
	for i, name := range g.fillers {
		addr := symAddr(prog, name)
		buf[i*4] = byte(addr)
		buf[i*4+1] = byte(addr >> 8)
		buf[i*4+2] = byte(addr >> 16)
		buf[i*4+3] = byte(addr >> 24)
	}
	s.Flash.Load(jt, buf)
	g.jtAddr = jt
}

// writeConfig stores the runtime configuration words the init code loads.
func (g *gen) writeConfig(s *soc.SoC, app *App) {
	w := func(off uint32, v uint32) {
		s.Flash.Load(g.cfgAddr+off, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	w(cfgTableBase, app.TableBase)
	w(cfgEEPROM, app.EEPROMBase)
	w(cfgJumpTable, g.jtAddr)
}
