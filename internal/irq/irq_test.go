package irq

import "testing"

func TestPriorityArbitration(t *testing.T) {
	r := New()
	lo := r.AddSRN("lo", 2, ToCPU, 0x100)
	hi := r.AddSRN("hi", 9, ToCPU, 0x200)
	mid := r.AddSRN("mid", 5, ToCPU, 0x300)

	r.Request(lo)
	r.Request(hi)
	r.Request(mid)

	v := r.View(ToCPU)
	prio, vec, ok := v.PendingIRQ(0)
	if !ok || prio != 9 || vec != 0x200 {
		t.Fatalf("got %d/%#x/%v, want 9/0x200/true", prio, vec, ok)
	}
	v.AckIRQ(9)
	if hi.Pending() {
		t.Error("hi still pending after ack")
	}
	prio, _, ok = v.PendingIRQ(0)
	if !ok || prio != 5 {
		t.Errorf("next = %d, want 5", prio)
	}
	// Floor masks lower priorities.
	if _, _, ok := v.PendingIRQ(5); ok {
		t.Error("floor 5 must mask prio 5 and below... prio 5 is not > 5")
	}
	if _, _, ok := v.PendingIRQ(4); !ok {
		t.Error("floor 4 must expose prio 5")
	}
}

func TestRequestCollapse(t *testing.T) {
	r := New()
	s := r.AddSRN("s", 1, ToCPU, 0)
	r.Request(s)
	r.Request(s)
	r.Request(s)
	if s.Requests != 3 || s.Lost != 2 {
		t.Errorf("requests=%d lost=%d, want 3/2", s.Requests, s.Lost)
	}
	v := r.View(ToCPU)
	v.AckIRQ(1)
	if s.Services != 1 {
		t.Errorf("services = %d, want 1", s.Services)
	}
	if _, _, ok := v.PendingIRQ(0); ok {
		t.Error("collapsed requests must yield one service")
	}
}

func TestProviderIsolation(t *testing.T) {
	r := New()
	cpu := r.AddSRN("c", 3, ToCPU, 0)
	pcp := r.AddSRN("p", 3, ToPCP, 0) // same prio, different provider: allowed
	r.Request(cpu)
	r.Request(pcp)
	if _, ok := r.TakePending(ToDMA); ok {
		t.Error("DMA has no pending requests")
	}
	s, ok := r.TakePending(ToPCP)
	if !ok || s != pcp {
		t.Error("wrong PCP request")
	}
	if !cpu.Pending() {
		t.Error("CPU request must be untouched")
	}
}

func TestDuplicatePriorityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate priority must panic")
		}
	}()
	r := New()
	r.AddSRN("a", 1, ToCPU, 0)
	r.AddSRN("b", 1, ToCPU, 0)
}

func TestDisabledSRNInvisible(t *testing.T) {
	r := New()
	s := r.AddSRN("s", 1, ToCPU, 0)
	s.Enabled = false
	r.Request(s)
	if _, _, ok := r.View(ToCPU).PendingIRQ(0); ok {
		t.Error("disabled SRN must not arbitrate")
	}
}

func TestAccessors(t *testing.T) {
	r := New()
	s := r.AddSRN("a", 1, ToCPU, 0x10)
	if len(r.SRNs()) != 1 || r.SRNs()[0] != s {
		t.Error("SRNs accessor wrong")
	}
	if r.Counters() == nil {
		t.Error("nil counters")
	}
	for p, want := range map[Provider]string{ToCPU: "cpu", ToPCP: "pcp",
		ToDMA: "dma", ToCPU1: "cpu1", Provider(9): "provider-unknown"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("priority 0 must panic")
		}
	}()
	r.AddSRN("zero", 0, ToCPU, 0)
}
