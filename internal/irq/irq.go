// Package irq models the interrupt router of the SoC: peripherals raise
// service requests through Service Request Nodes (SRNs), each carrying a
// priority and a target service provider (the TriCore CPU, the PCP, or the
// DMA controller). The router arbitrates the highest-priority pending
// request per provider — the structure behind the paper's observation that
// in automotive hard real-time systems "most of the processing activities
// are triggered directly by interrupts".
package irq

import (
	"fmt"

	"repro/internal/sim"
)

// Provider identifies a service provider an SRN can be routed to.
type Provider uint8

// Service providers.
const (
	ToCPU Provider = iota
	ToPCP
	ToDMA
	ToCPU1 // second TriCore core (multi-core variants)
)

// String names the provider.
func (p Provider) String() string {
	switch p {
	case ToCPU:
		return "cpu"
	case ToPCP:
		return "pcp"
	case ToDMA:
		return "dma"
	case ToCPU1:
		return "cpu1"
	}
	return "provider-unknown"
}

// SRN is one service request node.
type SRN struct {
	Name     string
	Prio     uint32 // service request priority number (higher wins; 0 invalid)
	Provider Provider
	Vector   uint32 // handler address (ToCPU), channel entry (ToPCP), channel id (ToDMA)
	Enabled  bool

	pending bool

	// Statistics.
	Requests uint64 // requests raised
	Services uint64 // requests accepted by the provider
	Lost     uint64 // requests raised while already pending (collapsed)
}

// Pending reports whether a request is waiting for service.
func (s *SRN) Pending() bool { return s.pending }

// Router arbitrates SRNs per provider.
type Router struct {
	srns     []*SRN
	counters sim.Counters

	// onRequest[prov] is called on every pending-flag rise for prov.
	// Wake-scheduled providers (PCP, DMA) register here so a request
	// arriving while they sleep pulls them out of the wake schedule.
	onRequest [4]func()
}

// New creates an empty router.
func New() *Router { return &Router{} }

// AddSRN registers a service request node. Priorities must be unique per
// provider (the hardware requires this); AddSRN panics on duplicates.
func (r *Router) AddSRN(name string, prio uint32, prov Provider, vector uint32) *SRN {
	if prio == 0 {
		panic("irq: priority 0 is reserved (disabled)")
	}
	for _, s := range r.srns {
		if s.Provider == prov && s.Prio == prio {
			panic(fmt.Sprintf("irq: duplicate priority %d for provider %v (%s vs %s)",
				prio, prov, s.Name, name))
		}
	}
	s := &SRN{Name: name, Prio: prio, Provider: prov, Vector: vector, Enabled: true}
	r.srns = append(r.srns, s)
	return s
}

// SRNs returns all registered nodes.
func (r *Router) SRNs() []*SRN { return r.srns }

// Request raises a service request on s. Raising while already pending is
// collapsed into one service (and counted as Lost), like the hardware's
// single request flag.
func (r *Router) Request(s *SRN) {
	s.Requests++
	if s.pending {
		s.Lost++
		return
	}
	s.pending = true
	if fn := r.onRequest[s.Provider]; fn != nil {
		fn()
	}
}

// OnRequest registers fn to run on every pending-flag rise for prov
// (collapsed re-requests do not fire). A wake-scheduled provider uses this
// to reschedule itself; the hook must be idempotent and cheap.
func (r *Router) OnRequest(prov Provider, fn func()) { r.onRequest[prov] = fn }

// HasPending reports whether any enabled SRN for prov is awaiting service
// (the provider-side idle test for wake scheduling).
func (r *Router) HasPending(prov Provider) bool {
	return r.highestPending(prov, 0) != nil
}

// Counters exposes router-level events (none currently beyond per-SRN
// statistics, kept for observation symmetry).
func (r *Router) Counters() *sim.Counters { return &r.counters }

// highestPending returns the pending enabled SRN with the highest priority
// strictly above floor for the provider, or nil.
func (r *Router) highestPending(prov Provider, floor uint32) *SRN {
	var best *SRN
	for _, s := range r.srns {
		if s.Provider == prov && s.Enabled && s.pending && s.Prio > floor {
			if best == nil || s.Prio > best.Prio {
				best = s
			}
		}
	}
	return best
}

// CPUView adapts the router to the tricore.InterruptSource interface for
// the given provider (ToCPU for TriCore, ToPCP for the PCP wrapper).
type CPUView struct {
	r    *Router
	prov Provider
}

// View returns the provider-specific interrupt source.
func (r *Router) View(prov Provider) *CPUView { return &CPUView{r: r, prov: prov} }

// PendingIRQ implements tricore.InterruptSource.
func (v *CPUView) PendingIRQ(cur uint32) (uint32, uint32, bool) {
	if s := v.r.highestPending(v.prov, cur); s != nil {
		return s.Prio, s.Vector, true
	}
	return 0, 0, false
}

// AckIRQ implements tricore.InterruptSource: the provider accepted the
// request at prio.
func (v *CPUView) AckIRQ(prio uint32) {
	for _, s := range v.r.srns {
		if s.Provider == v.prov && s.Prio == prio && s.pending {
			s.pending = false
			s.Services++
			return
		}
	}
}

// TakePending removes and returns the highest pending SRN for prov (used
// by the DMA controller and the PCP channel dispatcher, which service one
// request at a time without a priority floor).
func (r *Router) TakePending(prov Provider) (*SRN, bool) {
	if s := r.highestPending(prov, 0); s != nil {
		s.pending = false
		s.Services++
		return s, true
	}
	return nil, false
}
