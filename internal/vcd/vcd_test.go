package vcd

import (
	"strings"
	"testing"

	"repro/internal/tmsg"
)

func TestWriterBasics(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, "top")
	pc := w.AddVar("pc", 32)
	flag := w.AddVar("flag", 1)
	w.Emit(0, pc, 0x8000_0000)
	w.Emit(0, flag, 1)
	w.Emit(10, pc, 0x8000_0004)
	w.Emit(10, pc, 0x8000_0004) // duplicate value: no change emitted
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 32 ! pc $end",
		"$var wire 1 \" flag $end",
		"$enddefinitions $end",
		"#0",
		"#10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
	// The duplicate at #10 must produce exactly one pc change there.
	if strings.Count(out, "b10000000000000000000000000000100 !") != 1 {
		t.Errorf("duplicate value emitted:\n%s", out)
	}
}

func TestWriterPanicsOnBackwardsTime(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, "top")
	v := w.AddVar("x", 8)
	w.Emit(5, v, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time must panic")
		}
	}()
	w.Emit(4, v, 2)
}

func TestWriterPanicsOnLateVar(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b, "top")
	v := w.AddVar("x", 8)
	w.Emit(0, v, 1)
	defer func() {
		if recover() == nil {
			t.Error("AddVar after body must panic")
		}
	}()
	w.AddVar("y", 8)
}

func TestSanitizeAndIDs(t *testing.T) {
	if sanitize("a b/c") != "a_b_c" {
		t.Errorf("sanitize = %q", sanitize("a b/c"))
	}
	if sanitize("") != "sig" {
		t.Error("empty name fallback")
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := idFor(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestExportTrace(t *testing.T) {
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindSync, Src: 0, Cycle: 0, PC: 0x8000_0000},
		{Kind: tmsg.KindFlow, Src: 0, Cycle: 12, ICount: 3, PC: 0x8000_0040},
		{Kind: tmsg.KindData, Src: 1, Cycle: 14, Addr: 0x9000_0000, Data: 42, Write: true},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 100, CounterID: 2, Basis: 100, Count: 6},
		{Kind: tmsg.KindOverflow, Src: 0, Cycle: 100, Lost: 1},
	}
	var b strings.Builder
	changes, err := ExportTrace(&b, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if changes != 5 {
		t.Errorf("changes = %d, want 5", changes)
	}
	out := b.String()
	for _, want := range []string{"src0.pc", "src1.daddr", "src1.dval", "src0.ctr2", "#12", "#100"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestExportRoundTripFromEncoder(t *testing.T) {
	// End to end: encode → decode → export parses as a well-formed VCD
	// body (every change line references a declared id).
	var enc tmsg.Encoder
	var buf []byte
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindSync, Src: 0, Cycle: 5, PC: 0x100},
		{Kind: tmsg.KindFlow, Src: 0, Cycle: 9, ICount: 1, PC: 0x200},
		{Kind: tmsg.KindFlow, Src: 0, Cycle: 20, ICount: 4, PC: 0x100},
	}
	for i := range msgs {
		buf = enc.Encode(buf, &msgs[i])
	}
	var dec tmsg.Decoder
	decoded, _, err := dec.DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := ExportTrace(&b, decoded); err != nil {
		t.Fatal(err)
	}
	body := false
	ids := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "$var wire") {
			parts := strings.Fields(line)
			ids[parts[3]] = true
		}
		if strings.HasPrefix(line, "$enddefinitions") {
			body = true
			continue
		}
		if body && strings.HasPrefix(line, "b") {
			parts := strings.Fields(line)
			if len(parts) != 2 || !ids[parts[1]] {
				t.Fatalf("change references unknown id: %q", line)
			}
		}
	}
}
