// Package vcd writes IEEE 1364 Value Change Dump files, the waveform
// interchange format of every EDA viewer (GTKWave, Verdi, SimVision).
// The reproduction uses it to export decoded MCDS trace streams — program
// counters, data accesses, and rate-counter windows over the cycle axis —
// so a hardware engineer can inspect a profiling run with standard tools.
package vcd

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Writer emits one VCD file. Declare variables first, then Emit value
// changes with non-decreasing timestamps, then Close.
type Writer struct {
	w      io.Writer
	vars   []*Var
	inBody bool
	last   uint64
	tsOpen bool
	err    error
}

// Var is one declared VCD variable.
type Var struct {
	id    string
	name  string
	width int
	last  string
	dirty bool
}

// NewWriter starts a VCD document on w with a 1ns timescale (1 simulated
// CPU cycle = 1ns on the waveform axis).
func NewWriter(w io.Writer, module string) *Writer {
	vw := &Writer{w: w}
	vw.printf("$date reproduction run $end\n")
	vw.printf("$version tricore-esp trace export $end\n")
	vw.printf("$timescale 1ns $end\n")
	vw.printf("$scope module %s $end\n", sanitize(module))
	return vw
}

func (vw *Writer) printf(format string, args ...any) {
	if vw.err != nil {
		return
	}
	_, vw.err = fmt.Fprintf(vw.w, format, args...)
}

func sanitize(s string) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
	if s == "" {
		s = "sig"
	}
	return s
}

// idFor converts a variable index into a short printable VCD identifier.
func idFor(i int) string {
	const alpha = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alpha) {
		return string(alpha[i])
	}
	return string(alpha[i%len(alpha)]) + idFor(i/len(alpha))
}

// AddVar declares a vector variable of the given bit width (1..64). All
// declarations must precede the first Emit.
func (vw *Writer) AddVar(name string, width int) *Var {
	if vw.inBody {
		panic("vcd: AddVar after body started")
	}
	if width < 1 || width > 64 {
		panic("vcd: width out of range")
	}
	v := &Var{id: idFor(len(vw.vars)), name: sanitize(name), width: width}
	vw.vars = append(vw.vars, v)
	vw.printf("$var wire %d %s %s $end\n", width, v.id, v.name)
	return v
}

func (vw *Writer) beginBody() {
	if vw.inBody {
		return
	}
	vw.inBody = true
	vw.printf("$upscope $end\n$enddefinitions $end\n")
	// Initial values: all x.
	vw.printf("$dumpvars\n")
	for _, v := range vw.vars {
		vw.printf("b%s %s\n", strings.Repeat("x", v.width), v.id)
	}
	vw.printf("$end\n")
}

// Emit records variable v taking value val at the given cycle. Cycles must
// be non-decreasing across all variables.
func (vw *Writer) Emit(cycle uint64, v *Var, val uint64) {
	vw.beginBody()
	if cycle < vw.last {
		panic(fmt.Sprintf("vcd: time went backwards (%d < %d)", cycle, vw.last))
	}
	if cycle != vw.last || !vw.tsOpen {
		vw.printf("#%d\n", cycle)
		vw.last = cycle
		vw.tsOpen = true
	}
	bits := fmt.Sprintf("%b", val)
	if v.last == bits {
		return
	}
	v.last = bits
	vw.printf("b%s %s\n", bits, v.id)
}

// Close finishes the document and returns any accumulated write error.
func (vw *Writer) Close() error {
	vw.beginBody()
	return vw.err
}

// Names returns the declared variable names, sorted (introspection for
// tests).
func (vw *Writer) Names() []string {
	out := make([]string, 0, len(vw.vars))
	for _, v := range vw.vars {
		out = append(out, v.name)
	}
	sort.Strings(out)
	return out
}
