package vcd

import (
	"fmt"
	"io"

	"repro/internal/tmsg"
)

// ExportTrace converts a decoded MCDS message stream into a VCD waveform:
// per source, the flow-trace target PC, data-access address/value, and one
// vector per rate counter (the window's event count). Returns the number
// of value changes written.
func ExportTrace(w io.Writer, msgs []tmsg.Msg) (int, error) {
	vw := NewWriter(w, "mcds")

	type srcVars struct {
		pc, daddr, dval *Var
		rate            map[uint8]*Var
	}
	vars := map[uint8]*srcVars{}
	// Pre-scan so every variable is declared before the body starts.
	for i := range msgs {
		m := &msgs[i]
		sv := vars[m.Src]
		if sv == nil {
			sv = &srcVars{rate: map[uint8]*Var{}}
			vars[m.Src] = sv
		}
		switch m.Kind {
		case tmsg.KindSync, tmsg.KindFlow:
			if sv.pc == nil {
				sv.pc = vw.AddVar(fmt.Sprintf("src%d.pc", m.Src), 32)
			}
		case tmsg.KindData:
			if sv.daddr == nil {
				sv.daddr = vw.AddVar(fmt.Sprintf("src%d.daddr", m.Src), 32)
				sv.dval = vw.AddVar(fmt.Sprintf("src%d.dval", m.Src), 32)
			}
		case tmsg.KindRate:
			if sv.rate[m.CounterID] == nil {
				sv.rate[m.CounterID] = vw.AddVar(
					fmt.Sprintf("src%d.ctr%d", m.Src, m.CounterID), 32)
			}
		}
	}

	changes := 0
	for i := range msgs {
		m := &msgs[i]
		sv := vars[m.Src]
		switch m.Kind {
		case tmsg.KindSync, tmsg.KindFlow:
			vw.Emit(m.Cycle, sv.pc, uint64(m.PC))
			changes++
		case tmsg.KindData:
			vw.Emit(m.Cycle, sv.daddr, uint64(m.Addr))
			vw.Emit(m.Cycle, sv.dval, uint64(m.Data))
			changes += 2
		case tmsg.KindRate:
			vw.Emit(m.Cycle, sv.rate[m.CounterID], m.Count)
			changes++
		}
	}
	return changes, vw.Close()
}
