package vcd

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tmsg"
)

// change is one parsed (time, variable, value) tuple from a VCD body.
type change struct {
	time uint64
	name string
	val  uint64
}

// parseVCD is a minimal reader for the subset of VCD this package writes:
// it returns the declared variable names (sorted) and every value change
// in body order. Initial 'x' dump values are skipped.
func parseVCD(t *testing.T, doc string) ([]string, []change) {
	t.Helper()
	names := map[string]string{} // id → name
	var changes []change
	var now uint64
	body := false
	for _, line := range strings.Split(doc, "\n") {
		switch {
		case strings.HasPrefix(line, "$var wire"):
			parts := strings.Fields(line)
			if len(parts) != 6 || parts[5] != "$end" {
				t.Fatalf("malformed declaration %q", line)
			}
			names[parts[3]] = parts[4]
		case strings.HasPrefix(line, "$enddefinitions"):
			body = true
		case body && strings.HasPrefix(line, "#"):
			v, err := strconv.ParseUint(line[1:], 10, 64)
			if err != nil {
				t.Fatalf("bad timestamp %q: %v", line, err)
			}
			if v < now {
				t.Fatalf("time went backwards at %q", line)
			}
			now = v
		case body && strings.HasPrefix(line, "b"):
			parts := strings.Fields(line)
			if len(parts) != 2 {
				t.Fatalf("malformed change %q", line)
			}
			name, ok := names[parts[1]]
			if !ok {
				t.Fatalf("change for undeclared id %q", line)
			}
			if strings.Contains(parts[0], "x") {
				continue // initial undefined dump
			}
			v, err := strconv.ParseUint(parts[0][1:], 2, 64)
			if err != nil {
				t.Fatalf("bad value %q: %v", line, err)
			}
			changes = append(changes, change{time: now, name: name, val: v})
		}
	}
	var sorted []string
	for _, n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	return sorted, changes
}

// TestExportTraceRoundTrip exports a message stream and parses the VCD
// text back, verifying that every message reappears as the right value
// change on the right variable at the right cycle.
func TestExportTraceRoundTrip(t *testing.T) {
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindSync, Src: 0, Cycle: 0, PC: 0x8000_0000},
		{Kind: tmsg.KindFlow, Src: 0, Cycle: 12, ICount: 3, PC: 0x8000_0040},
		{Kind: tmsg.KindData, Src: 1, Cycle: 14, Addr: 0x9000_0010, Data: 42, Write: true},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 100, CounterID: 2, Basis: 100, Count: 6},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 200, CounterID: 2, Basis: 100, Count: 9},
	}
	var b strings.Builder
	changes, err := ExportTrace(&b, msgs)
	if err != nil {
		t.Fatal(err)
	}

	names, parsed := parseVCD(t, b.String())
	wantNames := []string{"src0.ctr2", "src0.pc", "src1.daddr", "src1.dval"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Errorf("variables = %v, want %v", names, wantNames)
	}
	want := []change{
		{0, "src0.pc", 0x8000_0000},
		{12, "src0.pc", 0x8000_0040},
		{14, "src1.daddr", 0x9000_0010},
		{14, "src1.dval", 42},
		{100, "src0.ctr2", 6},
		{200, "src0.ctr2", 9},
	}
	if !reflect.DeepEqual(parsed, want) {
		t.Errorf("changes:\ngot  %v\nwant %v", parsed, want)
	}
	if changes != len(want) {
		t.Errorf("reported %d changes, parsed %d", changes, len(want))
	}
}

// TestExportTraceSuppressedDuplicates: a repeated value must count as a
// change at the writer level but appear only once in the document.
func TestExportTraceSuppressedDuplicates(t *testing.T) {
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindRate, Src: 0, Cycle: 10, CounterID: 0, Basis: 10, Count: 7},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 20, CounterID: 0, Basis: 10, Count: 7},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 30, CounterID: 0, Basis: 10, Count: 8},
	}
	var b strings.Builder
	if _, err := ExportTrace(&b, msgs); err != nil {
		t.Fatal(err)
	}
	_, parsed := parseVCD(t, b.String())
	want := []change{{10, "src0.ctr0", 7}, {30, "src0.ctr0", 8}}
	if !reflect.DeepEqual(parsed, want) {
		t.Errorf("changes = %v, want %v", parsed, want)
	}
}

func TestExportTraceEmpty(t *testing.T) {
	var b strings.Builder
	changes, err := ExportTrace(&b, nil)
	if err != nil || changes != 0 {
		t.Fatalf("empty export: changes=%d err=%v", changes, err)
	}
	if !strings.Contains(b.String(), "$enddefinitions $end") {
		t.Error("empty export must still be a well-formed document")
	}
}
