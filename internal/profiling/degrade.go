package profiling

import (
	"repro/internal/emem"
	"repro/internal/mcds"
)

// DegradePolicy tunes the graceful-degradation controller. Zero fields
// select the defaults.
type DegradePolicy struct {
	// Hi and Lo are EMEM trace-ring fill watermarks as fractions of
	// capacity. Crossing Hi widens the measurement resolution (halving the
	// message rate); receding below Lo restores one step.
	Hi, Lo float64
	// MaxFactor caps the widening (a power of two; 16 = resolution may
	// grow 16×, message rate shrink 16×).
	MaxFactor uint64
	// Period is the evaluation interval in cycles: reaction latency versus
	// control stability.
	Period uint64
}

// Degradation defaults: react at three-quarters full, recover below a
// third, never widen beyond 16×, re-evaluate every 256 cycles.
const (
	DefaultDegradeHi        = 0.75
	DefaultDegradeLo        = 0.30
	DefaultDegradeMaxFactor = 16
	DefaultDegradePeriod    = 256
)

func (p DegradePolicy) withDefaults() DegradePolicy {
	if p.Hi == 0 {
		p.Hi = DefaultDegradeHi
	}
	if p.Lo == 0 {
		p.Lo = DefaultDegradeLo
	}
	if p.MaxFactor == 0 {
		p.MaxFactor = DefaultDegradeMaxFactor
	}
	if p.Period == 0 {
		p.Period = DefaultDegradePeriod
	}
	return p
}

// Degrader trades measurement resolution for trace bandwidth when the
// buffer path saturates: instead of losing messages (holes in every
// series at the most interesting moments), the session emits coarser
// windows that remain exact — each rate message carries the basis it was
// actually measured over, so widened samples need no tool-side rescaling.
// The controller is the graceful-degradation half of the hardened
// pipeline; the frame layer handles the losses it cannot prevent.
type Degrader struct {
	policy   DegradePolicy
	emem     *emem.EMEM
	counters []*mcds.Counter
	base     []uint64 // configured resolutions (factor 1)
	factor   uint64
	next     uint64 // next evaluation cycle

	// Statistics.
	Widenings      uint64
	Restores       uint64
	CyclesDegraded uint64 // cycles spent above factor 1
	MaxFactorSeen  uint64
}

func newDegrader(p DegradePolicy, e *emem.EMEM, counters []*mcds.Counter) *Degrader {
	d := &Degrader{policy: p.withDefaults(), emem: e, counters: counters,
		factor: 1, MaxFactorSeen: 1}
	for _, c := range counters {
		d.base = append(d.base, c.Resolution)
	}
	return d
}

// Factor returns the current widening factor (1 = native resolution).
func (d *Degrader) Factor() uint64 { return d.factor }

// Tick implements sim.Ticker.
func (d *Degrader) Tick(cycle uint64) {
	if d.factor > 1 {
		d.CyclesDegraded++
	}
	if cycle < d.next {
		return
	}
	d.next = cycle + d.policy.Period
	fill := float64(d.emem.Level()) / float64(d.emem.TraceCapacity())
	switch {
	case fill >= d.policy.Hi && d.factor < d.policy.MaxFactor:
		d.factor *= 2
		d.Widenings++
		if d.factor > d.MaxFactorSeen {
			d.MaxFactorSeen = d.factor
		}
		d.apply()
	case fill <= d.policy.Lo && d.factor > 1:
		d.factor /= 2
		d.Restores++
		d.apply()
	}
}

func (d *Degrader) apply() {
	for i, c := range d.counters {
		c.Resolution = d.base[i] * d.factor
	}
}
