package profiling

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"

	"repro/internal/obs"
)

// ReportSchemaVersion is the version of the machine-readable run-report
// schema. Bump it whenever the JSON shape of RunReport (or any struct it
// embeds) changes, so fleet tooling can refuse or migrate reports it does
// not understand.
const ReportSchemaVersion = 1

// RunReport is the versioned, machine-readable artifact of one profiling
// run — the unit the paper's methodology aggregates "from many customer
// runs" into statistical profiles. Everything needed to reproduce and to
// weight the run is included: the seed, the SoC configuration, the fault
// plan, full loss accounting, per-parameter statistics, and (optionally)
// the pipeline's own observability metrics.
type RunReport struct {
	Schema     int    `json:"schema_version"`
	App        string `json:"app"`
	SoC        string `json:"soc"`
	Seed       uint64 `json:"seed"`
	Cycles     uint64 `json:"cycles"`
	Instr      uint64 `json:"instructions"`
	Resolution uint64 `json:"resolution"`
	Framed     bool   `json:"framed,omitempty"`
	FaultPlan  string `json:"fault_plan,omitempty"`

	// Confidence is the run-level trust weight in [0, 1]: the message
	// delivery ratio times the mean fraction of loss-free sample windows.
	// A clean run scores 1; fleet aggregation down-weights lossy runs by
	// this factor.
	Confidence float64 `json:"confidence"`

	Loss    LossStats             `json:"loss"`
	Ring    RingStats             `json:"ring"`
	Params  map[string]ParamStats `json:"params"`
	Metrics *obs.Snapshot         `json:"metrics,omitempty"`
}

// LossStats is the run's trace-loss accounting.
type LossStats struct {
	MsgsLost      uint64 `json:"msgs_lost"`      // dropped at the emitter (overflow)
	MsgsDelivered uint64 `json:"msgs_delivered"` // reached the tool intact (framed)
	LinkLost      uint64 `json:"link_lost"`      // lost between MCDS and tool
	Gaps          int    `json:"gaps"`           // distinct loss regions on the timeline
	TraceBytes    uint64 `json:"trace_bytes"`    // bytes the MCDS emitted
}

// RingStats is the EMEM trace-ring pressure summary.
type RingStats struct {
	Capacity  uint32 `json:"capacity"`  // trace partition size, bytes
	Peak      uint32 `json:"peak"`      // high-water mark, bytes
	Overflows uint64 `json:"overflows"` // messages refused by a full ring
}

// ParamStats is the per-parameter summary of one run.
type ParamStats struct {
	Mean       float64 `json:"mean"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	Windows    int     `json:"windows"`
	Confidence float64 `json:"confidence"`
}

// RunConfidence returns the run-level trust weight of the profile: the
// message delivery ratio times the mean per-series window confidence.
// Framed sessions know their delivery ratio exactly from the cumulative
// frame counters; unframed sessions approximate delivered messages by the
// sample count that reached the tool.
func (p *Profile) RunConfidence() float64 {
	delivered := p.MsgsDelivered
	if delivered == 0 {
		for _, se := range p.Series {
			delivered += uint64(len(se.Samples))
		}
	}
	total := delivered + p.LinkLost + p.MsgsLost
	ratio := 1.0
	if total > 0 {
		ratio = float64(delivered) / float64(total)
	}
	if len(p.Series) == 0 {
		return ratio
	}
	// Fold in canonical name order: float summation over randomized map
	// iteration would make the confidence differ in the last ulp between
	// otherwise identical runs, breaking byte-identical campaign output.
	var conf float64
	for _, name := range p.Names() {
		conf += p.Series[name].Confidence()
	}
	return ratio * conf / float64(len(p.Series))
}

// RunReport assembles the versioned report for a decoded profile. seed is
// the workload seed (the session does not know it). The observability
// snapshot is included when the session was created with Spec.Obs.
func (sess *Session) RunReport(p *Profile, seed uint64) *RunReport {
	e := sess.SoC.EMEM
	r := &RunReport{
		Schema:     ReportSchemaVersion,
		App:        p.App,
		SoC:        sess.SoC.Cfg.Name,
		Seed:       seed,
		Cycles:     p.Cycles,
		Instr:      p.Instr,
		Resolution: sess.spec.Resolution,
		Framed:     sess.spec.framed(),
		Confidence: p.RunConfidence(),
		Loss: LossStats{
			MsgsLost:      p.MsgsLost,
			MsgsDelivered: p.MsgsDelivered,
			LinkLost:      p.LinkLost,
			Gaps:          len(p.Gaps),
			TraceBytes:    p.TraceBytes,
		},
		Ring: RingStats{
			Capacity:  e.TraceCapacity(),
			Peak:      e.PeakLevel,
			Overflows: e.MsgsDropped,
		},
		Params: map[string]ParamStats{},
	}
	if sess.spec.Fault.Active() {
		r.FaultPlan = sess.spec.Fault.Name
	}
	for name, se := range p.Series {
		r.Params[name] = ParamStats{
			Mean:       se.Mean(),
			Min:        se.Min(),
			Max:        se.Max(),
			Windows:    len(se.Samples),
			Confidence: se.Confidence(),
		}
	}
	if sess.spec.Obs != nil {
		snap := sess.spec.Obs.Snapshot()
		r.Metrics = &snap
	}
	return r
}

// WriteJSON serializes the report, indented (maps marshal with sorted
// keys, so output is deterministic for a deterministic run).
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ChecksumPrefix marks the CRC-32 trailer line that WriteJSONSummed
// appends after the report JSON. The trailer rides in the same file
// (an embedded sidecar line), and because ReadRunReport stops at the
// end of the first JSON value, plain readers accept checksummed files
// unchanged.
const ChecksumPrefix = "//crc32:"

// EncodeSummed serializes the report exactly as WriteJSON does and
// appends a CRC-32 (IEEE) trailer line over the JSON bytes. It returns
// the full checksummed encoding and the checksum itself, so callers
// that persist the report (the campaign journal) can cross-record the
// CRC in their own manifest.
func (r *RunReport) EncodeSummed() ([]byte, uint32, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, 0, err
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	fmt.Fprintf(&buf, "%s%08x\n", ChecksumPrefix, crc)
	return buf.Bytes(), crc, nil
}

// WriteJSONSummed writes the checksummed encoding (report JSON plus
// CRC-32 trailer line) to w.
func (r *RunReport) WriteJSONSummed(w io.Writer) error {
	b, _, err := r.EncodeSummed()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// VerifySummed splits a report encoding into its JSON body and CRC-32
// trailer. Files without a trailer pass through untouched (summed
// false); files with a trailer are verified against it — a malformed
// trailer or a checksum mismatch is an error, because it means the
// file was torn or corrupted after it was written.
func VerifySummed(data []byte) (body []byte, crc uint32, summed bool, err error) {
	i := bytes.LastIndex(data, []byte("\n"+ChecksumPrefix))
	if i < 0 {
		return data, 0, false, nil
	}
	line := bytes.TrimSpace(data[i+1+len(ChecksumPrefix):])
	want, perr := strconv.ParseUint(string(line), 16, 32)
	if perr != nil {
		return nil, 0, true, fmt.Errorf("run report: malformed checksum trailer %q", line)
	}
	body = data[:i+1] // the trailing newline is part of the summed body
	got := crc32.ChecksumIEEE(body)
	if got != uint32(want) {
		return nil, got, true, fmt.Errorf("run report: CRC-32 mismatch: trailer says %08x, content is %08x",
			uint32(want), got)
	}
	return body, got, true, nil
}

// LoadRunReportChecked loads one run report from a file, verifying its
// CRC-32 trailer when present. Reports written without a trailer load
// exactly as LoadRunReport would; checksummed reports whose content no
// longer matches the trailer are refused.
func LoadRunReportChecked(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, _, _, err := VerifySummed(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r, err := ReadRunReport(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// ReadRunReport parses one run report and validates its schema version:
// reports from a newer schema are refused (the caller cannot interpret
// them), reports without a version are refused as not being run reports.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema == 0 {
		return nil, fmt.Errorf("run report: missing schema_version (not a run report?)")
	}
	if r.Schema > ReportSchemaVersion {
		return nil, fmt.Errorf("run report: schema v%d is newer than supported v%d",
			r.Schema, ReportSchemaVersion)
	}
	return &r, nil
}

// LoadRunReport reads one run report from a file.
func LoadRunReport(path string) (*RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadRunReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
