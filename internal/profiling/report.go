package profiling

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// ReportSchemaVersion is the version of the machine-readable run-report
// schema. Bump it whenever the JSON shape of RunReport (or any struct it
// embeds) changes, so fleet tooling can refuse or migrate reports it does
// not understand.
const ReportSchemaVersion = 1

// RunReport is the versioned, machine-readable artifact of one profiling
// run — the unit the paper's methodology aggregates "from many customer
// runs" into statistical profiles. Everything needed to reproduce and to
// weight the run is included: the seed, the SoC configuration, the fault
// plan, full loss accounting, per-parameter statistics, and (optionally)
// the pipeline's own observability metrics.
type RunReport struct {
	Schema     int    `json:"schema_version"`
	App        string `json:"app"`
	SoC        string `json:"soc"`
	Seed       uint64 `json:"seed"`
	Cycles     uint64 `json:"cycles"`
	Instr      uint64 `json:"instructions"`
	Resolution uint64 `json:"resolution"`
	Framed     bool   `json:"framed,omitempty"`
	FaultPlan  string `json:"fault_plan,omitempty"`

	// Confidence is the run-level trust weight in [0, 1]: the message
	// delivery ratio times the mean fraction of loss-free sample windows.
	// A clean run scores 1; fleet aggregation down-weights lossy runs by
	// this factor.
	Confidence float64 `json:"confidence"`

	Loss    LossStats             `json:"loss"`
	Ring    RingStats             `json:"ring"`
	Params  map[string]ParamStats `json:"params"`
	Metrics *obs.Snapshot         `json:"metrics,omitempty"`
}

// LossStats is the run's trace-loss accounting.
type LossStats struct {
	MsgsLost      uint64 `json:"msgs_lost"`      // dropped at the emitter (overflow)
	MsgsDelivered uint64 `json:"msgs_delivered"` // reached the tool intact (framed)
	LinkLost      uint64 `json:"link_lost"`      // lost between MCDS and tool
	Gaps          int    `json:"gaps"`           // distinct loss regions on the timeline
	TraceBytes    uint64 `json:"trace_bytes"`    // bytes the MCDS emitted
}

// RingStats is the EMEM trace-ring pressure summary.
type RingStats struct {
	Capacity  uint32 `json:"capacity"`  // trace partition size, bytes
	Peak      uint32 `json:"peak"`      // high-water mark, bytes
	Overflows uint64 `json:"overflows"` // messages refused by a full ring
}

// ParamStats is the per-parameter summary of one run.
type ParamStats struct {
	Mean       float64 `json:"mean"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	Windows    int     `json:"windows"`
	Confidence float64 `json:"confidence"`
}

// RunConfidence returns the run-level trust weight of the profile: the
// message delivery ratio times the mean per-series window confidence.
// Framed sessions know their delivery ratio exactly from the cumulative
// frame counters; unframed sessions approximate delivered messages by the
// sample count that reached the tool.
func (p *Profile) RunConfidence() float64 {
	delivered := p.MsgsDelivered
	if delivered == 0 {
		for _, se := range p.Series {
			delivered += uint64(len(se.Samples))
		}
	}
	total := delivered + p.LinkLost + p.MsgsLost
	ratio := 1.0
	if total > 0 {
		ratio = float64(delivered) / float64(total)
	}
	if len(p.Series) == 0 {
		return ratio
	}
	// Fold in canonical name order: float summation over randomized map
	// iteration would make the confidence differ in the last ulp between
	// otherwise identical runs, breaking byte-identical campaign output.
	var conf float64
	for _, name := range p.Names() {
		conf += p.Series[name].Confidence()
	}
	return ratio * conf / float64(len(p.Series))
}

// RunReport assembles the versioned report for a decoded profile. seed is
// the workload seed (the session does not know it). The observability
// snapshot is included when the session was created with Spec.Obs.
func (sess *Session) RunReport(p *Profile, seed uint64) *RunReport {
	e := sess.SoC.EMEM
	r := &RunReport{
		Schema:     ReportSchemaVersion,
		App:        p.App,
		SoC:        sess.SoC.Cfg.Name,
		Seed:       seed,
		Cycles:     p.Cycles,
		Instr:      p.Instr,
		Resolution: sess.spec.Resolution,
		Framed:     sess.spec.framed(),
		Confidence: p.RunConfidence(),
		Loss: LossStats{
			MsgsLost:      p.MsgsLost,
			MsgsDelivered: p.MsgsDelivered,
			LinkLost:      p.LinkLost,
			Gaps:          len(p.Gaps),
			TraceBytes:    p.TraceBytes,
		},
		Ring: RingStats{
			Capacity:  e.TraceCapacity(),
			Peak:      e.PeakLevel,
			Overflows: e.MsgsDropped,
		},
		Params: map[string]ParamStats{},
	}
	if sess.spec.Fault.Active() {
		r.FaultPlan = sess.spec.Fault.Name
	}
	for name, se := range p.Series {
		r.Params[name] = ParamStats{
			Mean:       se.Mean(),
			Min:        se.Min(),
			Max:        se.Max(),
			Windows:    len(se.Samples),
			Confidence: se.Confidence(),
		}
	}
	if sess.spec.Obs != nil {
		snap := sess.spec.Obs.Snapshot()
		r.Metrics = &snap
	}
	return r
}

// WriteJSON serializes the report, indented (maps marshal with sorted
// keys, so output is deterministic for a deterministic run).
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRunReport parses one run report and validates its schema version:
// reports from a newer schema are refused (the caller cannot interpret
// them), reports without a version are refused as not being run reports.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema == 0 {
		return nil, fmt.Errorf("run report: missing schema_version (not a run report?)")
	}
	if r.Schema > ReportSchemaVersion {
		return nil, fmt.Errorf("run report: schema v%d is newer than supported v%d",
			r.Schema, ReportSchemaVersion)
	}
	return &r, nil
}

// LoadRunReport reads one run report from a file.
func LoadRunReport(path string) (*RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadRunReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
