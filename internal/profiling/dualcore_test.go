package profiling

import (
	"testing"

	"repro/internal/soc"
	"repro/internal/workload"
)

// TestDualCoreProfiling runs two different customer applications on the
// two TriCore cores of one device and profiles both in parallel through
// the single MCDS — the "number of cores" scaling of the paper's
// conclusion, at full workload fidelity.
func TestDualCoreProfiling(t *testing.T) {
	cfg := soc.TC1797().WithED()
	cfg.SecondCore = true
	s := soc.New(cfg, 21)

	app0, err := workload.Build(s, workload.Spec{
		Name: "engine", Seed: 21, CodeKB: 16, TableKB: 16, FilterTaps: 12,
		DiagBranches: 8, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	app1, err := workload.Build(s, workload.Spec{
		Name: "gearbox", Seed: 22, CodeKB: 8, TableKB: 32, FilterTaps: 24,
		DiagBranches: 16, ADCPeriod: 3000, TimerPeriod: 11000, CANMeanGap: 7000,
		CoreIndex: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	params := append(StandardParams(), CPU1Params()...)
	sess := NewSession(s, Spec{Resolution: 800, Params: params})

	mustRun(t, sess, app0, 400_000) // advances the shared clock; both cores run
	if app1.CPU().Halted() {
		t.Fatal("core1 app halted")
	}

	prof, err := sess.Result("dual")
	if err != nil {
		t.Fatal(err)
	}
	ipc0 := prof.Rate("ipc")
	ipc1 := prof.Rate("cpu1_ipc")
	if ipc0 <= 0 || ipc0 > 3 || ipc1 <= 0 || ipc1 > 3 {
		t.Errorf("ipc0=%v ipc1=%v", ipc0, ipc1)
	}
	if len(prof.Series["cpu1_interrupt"].Samples) == 0 {
		t.Error("core1 interrupt rate not measured")
	}
	if prof.Rate("cpu1_interrupt") <= 0 {
		t.Error("core1 never took interrupts")
	}
	// Both apps made progress on their own iteration counters.
	if app0.CPU().Reg(9) == 0 || app1.CPU().Reg(9) == 0 {
		t.Errorf("progress: core0=%d core1=%d", app0.CPU().Reg(9), app1.CPU().Reg(9))
	}
	// The two applications are different software: their profiles differ.
	if prof.Rate("icache_miss") == prof.Rate("cpu1_icache_miss") &&
		ipc0 == ipc1 {
		t.Error("suspiciously identical profiles for different applications")
	}
}

// TestDualCoreSharedBusContention verifies the shared-resource effect the
// architect cares about: adding a second active core costs the first one
// cycles through flash and bus sharing.
func TestDualCoreSharedBusContention(t *testing.T) {
	iters := func(secondApp bool) uint32 {
		cfg := soc.TC1797()
		cfg.SecondCore = true
		s := soc.New(cfg, 33)
		spec0 := workload.Spec{
			Name: "prim", Seed: 33, CodeKB: 32, TableKB: 32, FilterTaps: 8,
			DiagBranches: 8, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		}
		app0, err := workload.Build(s, spec0)
		if err != nil {
			t.Fatal(err)
		}
		if secondApp {
			_, err = workload.Build(s, workload.Spec{
				Name: "sec", Seed: 34, CodeKB: 64, TableKB: 64, FilterTaps: 8,
				DiagBranches: 8, ADCPeriod: 2100, TimerPeriod: 8000, CANMeanGap: 4000,
				CoreIndex: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		app0.RunFor(400_000)
		return app0.CPU().Reg(9)
	}
	alone := iters(false)
	shared := iters(true)
	if shared >= alone {
		t.Errorf("no sharing cost visible: alone %d iters, shared %d", alone, shared)
	}
	if float64(shared) < 0.5*float64(alone) {
		t.Errorf("sharing cost implausibly high: %d vs %d", shared, alone)
	}
}
