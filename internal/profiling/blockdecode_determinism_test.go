package profiling

import (
	"bytes"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestBlockDecodeReportDeterminism is the PR8 analog of the wake-scheduler
// cross-check: a full SoC with the ED observation path, a fault scenario
// and the whole trace pipeline must produce a byte-identical RunReport
// whether the decode-once block cache is on (the default) or forced off
// (per-word reference decode). Any drift means the cached path issued,
// stalled, or retired differently from the reference issue loop.
func TestBlockDecodeReportDeterminism(t *testing.T) {
	run := func(block bool) []byte {
		spec := stdSpec()
		s, app := buildApp(t, soc.TC1797().WithED(), spec)
		s.SetBlockDecode(block)
		plan, err := fault.Parse("noisy-link", spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
		sess := NewSession(s, Spec{
			Resolution: 500,
			Params:     StandardParams(),
			DAP:        &cfg,
			Framed:     true,
			Fault:      &plan,
		})
		mustRun(t, sess, app, 600_000)
		p, err := sess.Result(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.RunReport(p, spec.Seed).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	on := run(true)
	off := run(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("RunReport differs between decode modes:\n--- block ---\n%s\n--- per-word ---\n%s", on, off)
	}
}

// TestBlockDecodeDeterminismGrid widens the cross-check over the full SoC
// preset × workload mix × fault scenario grid on the cheap no-DAP path.
func TestBlockDecodeDeterminismGrid(t *testing.T) {
	for _, preset := range soc.PresetNames() {
		for _, mix := range workload.MixNames() {
			for _, scenario := range []string{"clean", "soft-errors"} {
				preset, mix, scenario := preset, mix, scenario
				t.Run(preset+"/"+mix+"/"+scenario, func(t *testing.T) {
					run := func(block bool) []byte {
						spec, ok := workload.Mix(mix, 17)
						if !ok {
							t.Fatalf("unknown mix %q", mix)
						}
						cfg, err := soc.Preset(preset)
						if err != nil {
							t.Fatal(err)
						}
						s := soc.New(cfg.WithED(), 17)
						s.SetBlockDecode(block)
						app, err := workload.Build(s, spec)
						if err != nil {
							t.Fatal(err)
						}
						plan, err := fault.Parse(scenario, 17)
						if err != nil {
							t.Fatal(err)
						}
						sess := NewSession(s, Spec{
							Resolution: 500,
							Params:     StandardParams(),
							Fault:      &plan,
						})
						mustRun(t, sess, app, 250_000)
						p, err := sess.Result(spec.Name)
						if err != nil {
							t.Fatal(err)
						}
						var buf bytes.Buffer
						if err := sess.RunReport(p, 17).WriteJSON(&buf); err != nil {
							t.Fatal(err)
						}
						return buf.Bytes()
					}
					if on, off := run(true), run(false); !bytes.Equal(on, off) {
						t.Fatalf("%s/%s/%s: RunReport differs between decode modes", preset, mix, scenario)
					}
				})
			}
		}
	}
}
