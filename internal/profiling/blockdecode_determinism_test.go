package profiling

import (
	"bytes"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestBlockDecodeReportDeterminism is the PR8 analog of the wake-scheduler
// cross-check: a full SoC with the ED observation path, a fault scenario
// and the whole trace pipeline must produce a byte-identical RunReport
// in every decode mode — chained block dispatch (the default), plain block
// dispatch, or the per-word reference. Any drift means a cached path
// issued, stalled, or retired differently from the reference issue loop.
func TestBlockDecodeReportDeterminism(t *testing.T) {
	run := func(mode soc.DecodeMode) []byte {
		spec := stdSpec()
		s, app := buildApp(t, soc.TC1797().WithED(), spec)
		s.SetBlockDecode(mode)
		plan, err := fault.Parse("noisy-link", spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
		sess := NewSession(s, Spec{
			Resolution: 500,
			Params:     StandardParams(),
			DAP:        &cfg,
			Framed:     true,
			Fault:      &plan,
		})
		mustRun(t, sess, app, 600_000)
		p, err := sess.Result(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.RunReport(p, spec.Seed).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(soc.DecodeReference)
	for _, mode := range []soc.DecodeMode{soc.DecodeBlock, soc.DecodeChained} {
		if got := run(mode); !bytes.Equal(got, ref) {
			t.Fatalf("RunReport differs between decode modes:\n--- %v ---\n%s\n--- reference ---\n%s", mode, got, ref)
		}
	}
}

// TestBlockDecodeDeterminismGrid widens the cross-check over the full SoC
// preset × workload mix × fault scenario grid on the cheap no-DAP path.
func TestBlockDecodeDeterminismGrid(t *testing.T) {
	for _, preset := range soc.PresetNames() {
		for _, mix := range workload.MixNames() {
			for _, scenario := range []string{"clean", "soft-errors"} {
				preset, mix, scenario := preset, mix, scenario
				t.Run(preset+"/"+mix+"/"+scenario, func(t *testing.T) {
					run := func(mode soc.DecodeMode) []byte {
						spec, ok := workload.Mix(mix, 17)
						if !ok {
							t.Fatalf("unknown mix %q", mix)
						}
						cfg, err := soc.Preset(preset)
						if err != nil {
							t.Fatal(err)
						}
						s := soc.New(cfg.WithED(), 17)
						s.SetBlockDecode(mode)
						app, err := workload.Build(s, spec)
						if err != nil {
							t.Fatal(err)
						}
						plan, err := fault.Parse(scenario, 17)
						if err != nil {
							t.Fatal(err)
						}
						sess := NewSession(s, Spec{
							Resolution: 500,
							Params:     StandardParams(),
							Fault:      &plan,
						})
						mustRun(t, sess, app, 250_000)
						p, err := sess.Result(spec.Name)
						if err != nil {
							t.Fatal(err)
						}
						var buf bytes.Buffer
						if err := sess.RunReport(p, 17).WriteJSON(&buf); err != nil {
							t.Fatal(err)
						}
						return buf.Bytes()
					}
					ref := run(soc.DecodeReference)
					for _, mode := range []soc.DecodeMode{soc.DecodeBlock, soc.DecodeChained} {
						if !bytes.Equal(run(mode), ref) {
							t.Fatalf("%s/%s/%s: RunReport differs between %v and reference", preset, mix, scenario, mode)
						}
					}
				})
			}
		}
	}
}
