package profiling

import (
	"bytes"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestWakeSchedulerReportDeterminism is the kernel-level determinism
// cross-check demanded by the Sleeper contract: a full SoC with the ED
// observation path, a fault scenario and the whole trace pipeline must
// produce a byte-identical RunReport whether the quiescence scheduler is
// on (the default) or force-disabled (every ticker dispatched every
// cycle). Any drift here means a Sleeper computed a wrong wake cycle or a
// component with per-cycle side effects was allowed to sleep.
func TestWakeSchedulerReportDeterminism(t *testing.T) {
	run := func(scheduled bool) []byte {
		spec := stdSpec()
		s, app := buildApp(t, soc.TC1797().WithED(), spec)
		s.Clock.SetWakeScheduling(scheduled)
		plan, err := fault.Parse("noisy-link", spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
		sess := NewSession(s, Spec{
			Resolution: 500,
			Params:     StandardParams(),
			DAP:        &cfg,
			Framed:     true,
			Fault:      &plan,
		})
		mustRun(t, sess, app, 600_000)
		p, err := sess.Result(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.RunReport(p, spec.Seed).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	on := run(true)
	off := run(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("RunReport differs between scheduler modes:\n--- scheduled ---\n%s\n--- always-on ---\n%s", on, off)
	}
}

// TestWakeSchedulerDeterminismAcrossMixes widens the cross-check over the
// named workload mixes (different periph populations and periods) on the
// cheap no-DAP path.
func TestWakeSchedulerDeterminismAcrossMixes(t *testing.T) {
	for _, mix := range []string{"engine", "canheavy", "lean", "dmaflow", "branchy"} {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			run := func(scheduled bool) []byte {
				spec, ok := workload.Mix(mix, 17)
				if !ok {
					t.Fatalf("unknown mix %q", mix)
				}
				s := soc.New(soc.TC1797().WithED(), 17)
				s.Clock.SetWakeScheduling(scheduled)
				app, err := workload.Build(s, spec)
				if err != nil {
					t.Fatal(err)
				}
				sess := NewSession(s, Spec{Resolution: 500, Params: StandardParams()})
				mustRun(t, sess, app, 300_000)
				p, err := sess.Result(spec.Name)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := sess.RunReport(p, 17).WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if on, off := run(true), run(false); !bytes.Equal(on, off) {
				t.Fatalf("mix %s: RunReport differs between scheduler modes", mix)
			}
		})
	}
}
