package profiling

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Fleet aggregation: the paper's end goal is not one measurement but
// "statistical system profiles" aggregated from many customer runs,
// feeding the F-model architecture decisions. Aggregate turns a set of
// machine-readable run reports into that fleet-level profile:
// per-parameter distributions across runs, confidence-weighted so lossy
// runs influence the result less, with statistical outliers flagged for
// the engineer instead of silently averaged away.

// FleetRun is one ingested run with its aggregation weight.
type FleetRun struct {
	ID         string  `json:"id"`
	App        string  `json:"app"`
	SoC        string  `json:"soc"`
	Seed       uint64  `json:"seed"`
	FaultPlan  string  `json:"fault_plan,omitempty"`
	Cycles     uint64  `json:"cycles"`
	Confidence float64 `json:"confidence"`
	// Weight is the run's share in every weighted statistic: its
	// confidence, i.e. clean runs weigh 1, lossy runs visibly less.
	Weight float64 `json:"weight"`
}

// FleetParam is the cross-run distribution of one parameter.
type FleetParam struct {
	Param string `json:"param"`
	Runs  int    `json:"runs"`
	// WeightedMean is the confidence-weighted mean of the run means: each
	// run contributes weight run.Weight × param.Confidence.
	WeightedMean float64 `json:"weighted_mean"`
	// Unweighted distribution of run means.
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	Stddev float64 `json:"stddev"` // weighted, around WeightedMean
	// Outliers lists run IDs whose mean deviates from the fleet median by
	// more than 5 scaled median-absolute-deviations (≥4 runs). MAD-based
	// detection is robust: an extreme run cannot inflate the spread
	// estimate and thereby mask itself, as it would with a stddev test.
	Outliers []string `json:"outliers,omitempty"`
}

// FleetProfile is the aggregated view over a set of run reports.
type FleetProfile struct {
	Schema int          `json:"schema_version"`
	Runs   []FleetRun   `json:"runs"`
	Params []FleetParam `json:"params"`
}

// WriteJSON writes the profile in its canonical encoding: indented
// JSON with runs sorted by ID and params by name (the order Finalize
// establishes). Two profiles over the same reports are byte-identical
// regardless of how the reports arrived.
func (fp *FleetProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fp)
}

// Run returns the ingested run with the given ID (nil when absent).
func (fp *FleetProfile) Run(id string) *FleetRun {
	for i := range fp.Runs {
		if fp.Runs[i].ID == id {
			return &fp.Runs[i]
		}
	}
	return nil
}

// Param returns the aggregated parameter by name (nil when absent).
func (fp *FleetProfile) Param(name string) *FleetParam {
	for i := range fp.Params {
		if fp.Params[i].Param == name {
			return &fp.Params[i]
		}
	}
	return nil
}

// obsRun is one run's contribution to one parameter's fleet distribution.
type obsRun struct {
	id     string
	weight float64
	stats  ParamStats
}

// Accumulator ingests run reports one at a time and produces the fleet
// profile on demand — the streaming form of Aggregate. A campaign's
// worker pool streams each completed report in as it lands (any order,
// any thread) and only the per-parameter summary statistics are retained;
// the heavy parts of a report (per-window series were never included,
// observability snapshots are dropped) do not accumulate.
//
// Finalize canonicalizes: runs and parameters are sorted by ID and name,
// and every statistic folds over that sorted order — so the result is
// byte-identical for any arrival order and therefore for any worker count
// or scheduling.
type Accumulator struct {
	mu      sync.Mutex
	runs    []FleetRun
	byParam map[string][]obsRun
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{byParam: map[string][]obsRun{}}
}

// Add ingests one run report under the given ID (empty: synthesized from
// app/seed/fault plan). Safe for concurrent use.
func (a *Accumulator) Add(id string, r *RunReport) {
	if id == "" {
		id = fmt.Sprintf("%s-seed%d", r.App, r.Seed)
		if r.FaultPlan != "" {
			id += "-" + r.FaultPlan
		}
	}
	w := r.Confidence
	if w < 0 {
		w = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs = append(a.runs, FleetRun{
		ID: id, App: r.App, SoC: r.SoC, Seed: r.Seed,
		FaultPlan: r.FaultPlan, Cycles: r.Cycles,
		Confidence: r.Confidence, Weight: w,
	})
	for name, ps := range r.Params {
		a.byParam[name] = append(a.byParam[name], obsRun{id: id, weight: w * ps.Confidence, stats: ps})
	}
}

// Len reports how many runs have been ingested.
func (a *Accumulator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.runs)
}

// Finalize assembles the canonical fleet profile from everything ingested
// so far (a canceled campaign flushes its partial aggregate this way). It
// errors when nothing was ingested. The accumulator may keep ingesting
// afterwards; each call re-canonicalizes from scratch.
func (a *Accumulator) Finalize() (*FleetProfile, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.runs) == 0 {
		return nil, fmt.Errorf("fleet: no run reports")
	}
	fp := &FleetProfile{Schema: ReportSchemaVersion}
	fp.Runs = append(fp.Runs, a.runs...)
	sort.Slice(fp.Runs, func(i, j int) bool { return fp.Runs[i].ID < fp.Runs[j].ID })

	names := make([]string, 0, len(a.byParam))
	for name := range a.byParam {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		runs := append([]obsRun(nil), a.byParam[name]...)
		sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
		p := FleetParam{Param: name, Runs: len(runs), Min: math.Inf(1), Max: math.Inf(-1)}

		var wsum, wmean float64
		means := make([]float64, 0, len(runs))
		for _, or := range runs {
			m := or.stats.Mean
			means = append(means, m)
			wsum += or.weight
			wmean += or.weight * m
			p.Mean += m
			if or.stats.Min < p.Min {
				p.Min = or.stats.Min
			}
			if or.stats.Max > p.Max {
				p.Max = or.stats.Max
			}
		}
		p.Mean /= float64(len(runs))
		if wsum > 0 {
			p.WeightedMean = wmean / wsum
		} else {
			p.WeightedMean = p.Mean // all weights zero: fall back unweighted
		}

		sort.Float64s(means)
		p.P50 = quantile(means, 0.50)
		p.P95 = quantile(means, 0.95)

		var wvar float64
		for _, or := range runs {
			d := or.stats.Mean - p.WeightedMean
			wvar += or.weight * d * d
		}
		if wsum > 0 {
			p.Stddev = math.Sqrt(wvar / wsum)
		}

		if len(runs) >= 4 {
			med := quantile(means, 0.50)
			devs := make([]float64, len(means))
			for i, m := range means {
				devs[i] = math.Abs(m - med)
			}
			sort.Float64s(devs)
			// 1.4826 scales MAD to the stddev of a normal distribution.
			if mad := 1.4826 * quantile(devs, 0.50); mad > 0 {
				for _, or := range runs {
					if math.Abs(or.stats.Mean-med) > 5*mad {
						p.Outliers = append(p.Outliers, or.id)
					}
				}
			}
		}
		fp.Params = append(fp.Params, p)
	}
	return fp, nil
}

// Aggregate builds the fleet profile from run reports in one shot. ids
// names each report (file name, run label); when shorter than reports,
// missing IDs are synthesized from app/seed/fault plan. Runs and
// parameters in the result are deterministically ordered (by ID and name
// respectively). It is the batch form of Accumulator.
func Aggregate(ids []string, reports []*RunReport) (*FleetProfile, error) {
	acc := NewAccumulator()
	for i, r := range reports {
		id := ""
		if i < len(ids) {
			id = ids[i]
		}
		acc.Add(id, r)
	}
	return acc.Finalize()
}

// quantile returns the q-quantile of sorted values by nearest rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
