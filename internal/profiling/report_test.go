package profiling

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/dap"
	"repro/internal/obs"
	"repro/internal/soc"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedReport returns a fully deterministic report (no wall-clock metrics)
// for golden-file comparison.
func fixedReport() *RunReport {
	return &RunReport{
		Schema:     ReportSchemaVersion,
		App:        "golden",
		SoC:        "TC1797",
		Seed:       7,
		Cycles:     100_000,
		Instr:      65_000,
		Resolution: 500,
		Framed:     true,
		FaultPlan:  "noisy-link",
		Confidence: 0.875,
		Loss: LossStats{
			MsgsLost: 3, MsgsDelivered: 700, LinkLost: 100,
			Gaps: 2, TraceBytes: 4096,
		},
		Ring: RingStats{Capacity: 393216, Peak: 2048, Overflows: 3},
		Params: map[string]ParamStats{
			"ipc":         {Mean: 0.65, Min: 0.2, Max: 1.1, Windows: 200, Confidence: 0.9},
			"icache_miss": {Mean: 0.04, Min: 0, Max: 0.2, Windows: 200, Confidence: 0.85},
		},
	}
}

// TestRunReportGolden pins the serialized v1 schema byte-for-byte. If this
// fails because the schema changed intentionally, bump ReportSchemaVersion
// and regenerate with: go test ./internal/profiling -run Golden -update
func TestRunReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "runreport_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("run report drifted from golden schema v%d.\nGot:\n%s\nWant:\n%s\n"+
			"If intentional: bump ReportSchemaVersion and regenerate with -update.",
			ReportSchemaVersion, buf.Bytes(), want)
	}
}

// TestRunReportChecksum covers the checksummed encoding the campaign
// journal persists: round-trip, backward compatibility with plain
// readers, and rejection of torn or bit-flipped files.
func TestRunReportChecksum(t *testing.T) {
	r := fixedReport()
	b, crc, err := r.EncodeSummed()
	if err != nil {
		t.Fatal(err)
	}
	if crc == 0 {
		t.Error("zero checksum is suspicious")
	}
	var plain bytes.Buffer
	if err := r.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b, plain.Bytes()) {
		t.Fatal("checksummed encoding does not start with the plain encoding")
	}
	trailer := b[plain.Len():]
	if !bytes.HasPrefix(trailer, []byte(ChecksumPrefix)) {
		t.Fatalf("trailer = %q", trailer)
	}

	// Verification accepts the intact file and recovers the exact body.
	body, got, summed, err := VerifySummed(b)
	if err != nil || !summed || got != crc || !bytes.Equal(body, plain.Bytes()) {
		t.Fatalf("VerifySummed = crc %08x summed %v err %v", got, summed, err)
	}
	// Plain files (no trailer) pass through unverified.
	if _, _, summed, err := VerifySummed(plain.Bytes()); err != nil || summed {
		t.Fatalf("plain file: summed %v err %v", summed, err)
	}
	// A bit flip in the body must be detected.
	bad := append([]byte(nil), b...)
	bad[len(bad)/2] ^= 1
	if _, _, _, err := VerifySummed(bad); err == nil {
		t.Error("bit-flipped file verified")
	}
	// A malformed trailer must be detected.
	mangled := append(append([]byte(nil), plain.Bytes()...), []byte(ChecksumPrefix+"xyzw\n")...)
	if _, _, _, err := VerifySummed(mangled); err == nil {
		t.Error("malformed trailer accepted")
	}

	// Both loaders accept a checksummed file on disk; the checked loader
	// refuses it once corrupted.
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, load := range []func(string) (*RunReport, error){LoadRunReport, LoadRunReportChecked} {
		rr, err := load(path)
		if err != nil {
			t.Fatal(err)
		}
		if rr.App != r.App || rr.Confidence != r.Confidence || len(rr.Params) != len(r.Params) {
			t.Fatalf("round-trip drifted: %+v", rr)
		}
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRunReportChecked(path); err == nil {
		t.Error("checked loader accepted a corrupted file")
	}
}

// jsonKeys collects the JSON field names of a struct type, recursing into
// embedded report structs, as "prefix.key" paths.
func jsonKeys(t reflect.Type, prefix string, out *[]string) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		path := prefix + tag
		*out = append(*out, path)
		ft := f.Type
		for ft.Kind() == reflect.Pointer || ft.Kind() == reflect.Map || ft.Kind() == reflect.Slice {
			ft = ft.Elem()
		}
		if ft.Kind() == reflect.Struct && ft.PkgPath() == t.PkgPath() {
			jsonKeys(ft, path+".", out)
		}
	}
}

// TestReportSchemaVersionBump is the schema-change canary: the exact field
// set of schema v1 is pinned here. Adding, removing or renaming any JSON
// field of the run report must come with a ReportSchemaVersion bump AND an
// update of this list (plus the golden file).
func TestReportSchemaVersionBump(t *testing.T) {
	if ReportSchemaVersion != 1 {
		t.Fatalf("ReportSchemaVersion = %d: update the pinned key list and golden file "+
			"for the new schema, then adjust this test", ReportSchemaVersion)
	}
	var keys []string
	jsonKeys(reflect.TypeOf(RunReport{}), "", &keys)
	sort.Strings(keys)
	want := []string{
		"app",
		"confidence",
		"cycles",
		"fault_plan",
		"framed",
		"instructions",
		"loss",
		"loss.gaps",
		"loss.link_lost",
		"loss.msgs_delivered",
		"loss.msgs_lost",
		"loss.trace_bytes",
		"metrics",
		"params",
		"params.confidence",
		"params.max",
		"params.mean",
		"params.min",
		"params.windows",
		"resolution",
		"ring",
		"ring.capacity",
		"ring.overflows",
		"ring.peak",
		"schema_version",
		"seed",
		"soc",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("run-report JSON field set changed:\ngot  %v\nwant %v\n"+
			"Changing the schema requires bumping ReportSchemaVersion.", keys, want)
	}
}

func TestReadRunReportVersionChecks(t *testing.T) {
	if _, err := ReadRunReport(strings.NewReader(`{"app":"x"}`)); err == nil {
		t.Error("report without schema_version must be rejected")
	}
	if _, err := ReadRunReport(strings.NewReader(`{"schema_version":999}`)); err == nil {
		t.Error("newer schema must be rejected")
	}
	if _, err := ReadRunReport(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage must be rejected")
	}
	r, err := ReadRunReport(strings.NewReader(`{"schema_version":1,"app":"ok","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "ok" || r.Seed != 3 {
		t.Errorf("parsed report = %+v", r)
	}
}

// TestSessionRunReport exercises the full pipeline: session → profile →
// report → JSON round trip, with observability and spans enabled.
func TestSessionRunReport(t *testing.T) {
	reg := obs.New()
	tr := obs.NewTracer()
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	dapCfg := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
	sess := NewSession(s, Spec{
		Resolution: 500, Params: StandardParams(), DAP: &dapCfg,
		Obs: reg, Tracer: tr,
	})
	mustRun(t, sess, app, 300_000)
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	r := sess.RunReport(p, stdSpec().Seed)

	if r.Schema != ReportSchemaVersion {
		t.Errorf("schema = %d", r.Schema)
	}
	if r.SoC != "TC1797ED" || r.Seed != 3 || r.Cycles == 0 {
		t.Errorf("meta = %+v", r)
	}
	if r.Confidence != 1 {
		t.Errorf("clean run confidence = %v, want 1", r.Confidence)
	}
	if ps, ok := r.Params["ipc"]; !ok || ps.Mean <= 0 || ps.Windows == 0 {
		t.Errorf("ipc stats = %+v", r.Params["ipc"])
	}
	if r.Ring.Peak == 0 || r.Ring.Capacity == 0 {
		t.Errorf("ring stats empty: %+v", r.Ring)
	}
	if r.Metrics == nil {
		t.Fatal("metrics snapshot missing despite Spec.Obs")
	}
	if v, ok := r.Metrics.Counter("sim.cycles"); !ok || v < 300_000 {
		t.Errorf("sim.cycles metric = %d,%v", v, ok)
	}
	if v, ok := r.Metrics.Counter("mcds.msgs_emitted"); !ok || v == 0 {
		t.Errorf("mcds.msgs_emitted = %d,%v", v, ok)
	}
	if v, ok := r.Metrics.Counter("dap.bytes_drained"); !ok || v == 0 {
		t.Errorf("dap.bytes_drained = %d,%v", v, ok)
	}
	if v, ok := r.Metrics.Gauge("emem.ring.peak"); !ok || v == 0 {
		t.Errorf("emem.ring.peak = %v,%v", v, ok)
	}

	// The pipeline spans are all present, in order.
	names := tr.SpanNames()
	want := []string{"run", "drain", "decode", "assemble"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("spans = %v, want %v", names, want)
	}

	// JSON round trip through the reader used by tcfleet.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cycles != r.Cycles || len(back.Params) != len(r.Params) {
		t.Errorf("round trip lost data: %+v", back)
	}
}

// TestRunReportDeterministic: two identical runs must serialize to an
// identical report apart from the wall-clock observability metrics.
func TestRunReportDeterministic(t *testing.T) {
	gen := func() []byte {
		s, app := buildApp(t, soc.TC1767().WithED(), stdSpec())
		sess := NewSession(s, Spec{Resolution: 1000, Params: StandardParams()})
		mustRun(t, sess, app, 200_000)
		p, err := sess.Result("app")
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sess.RunReport(p, stdSpec().Seed).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := gen(), gen()
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different reports")
	}
	var v map[string]any
	if err := json.Unmarshal(a, &v); err != nil {
		t.Fatal(err)
	}
}
