package profiling

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/soc"
	"repro/internal/workload"
)

func synthReport(app string, seed uint64, conf float64, ipcMean, ipcConf float64) *RunReport {
	return &RunReport{
		Schema: ReportSchemaVersion, App: app, Seed: seed, SoC: "TC1797ED",
		Cycles: 100_000, Confidence: conf,
		Params: map[string]ParamStats{
			"ipc": {Mean: ipcMean, Min: ipcMean - 0.1, Max: ipcMean + 0.1,
				Windows: 100, Confidence: ipcConf},
		},
	}
}

func TestAggregateWeighting(t *testing.T) {
	// Three clean runs near IPC 1.0 and one low-confidence run at 0.2:
	// the weighted mean must sit near 1.0, far above the unweighted mean.
	reports := []*RunReport{
		synthReport("a", 1, 1, 1.00, 1),
		synthReport("b", 2, 1, 1.02, 1),
		synthReport("c", 3, 1, 0.98, 1),
		synthReport("lossy", 4, 0.05, 0.20, 0.5),
	}
	fp, err := Aggregate([]string{"a", "b", "c", "lossy"}, reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Runs) != 4 {
		t.Fatalf("runs = %d", len(fp.Runs))
	}
	if w := fp.Run("lossy").Weight; w >= fp.Run("a").Weight {
		t.Errorf("lossy weight %v not below clean weight %v", w, fp.Run("a").Weight)
	}
	ipc := fp.Param("ipc")
	if ipc == nil || ipc.Runs != 4 {
		t.Fatalf("ipc = %+v", ipc)
	}
	if ipc.WeightedMean < 0.95 || ipc.WeightedMean > 1.02 {
		t.Errorf("weighted mean = %v, want ≈1.0 (lossy run down-weighted)", ipc.WeightedMean)
	}
	if ipc.Mean > 0.85 {
		t.Errorf("unweighted mean = %v, should be dragged down by the lossy run", ipc.Mean)
	}
	if ipc.Min >= 0.2 || ipc.Max <= 1.1 {
		t.Errorf("min/max = %v/%v", ipc.Min, ipc.Max)
	}
	// Distribution across run means: p50 within the clean cluster.
	if ipc.P50 < 0.98 || ipc.P50 > 1.02 {
		t.Errorf("p50 = %v", ipc.P50)
	}
}

func TestAggregateOutlierFlagging(t *testing.T) {
	var reports []*RunReport
	var ids []string
	for i := 0; i < 8; i++ {
		reports = append(reports, synthReport(fmt.Sprintf("r%d", i), uint64(i), 1, 1.0+0.001*float64(i), 1))
		ids = append(ids, fmt.Sprintf("r%d", i))
	}
	reports = append(reports, synthReport("weird", 99, 1, 5.0, 1))
	ids = append(ids, "weird")
	fp, err := Aggregate(ids, reports)
	if err != nil {
		t.Fatal(err)
	}
	ipc := fp.Param("ipc")
	if len(ipc.Outliers) != 1 || ipc.Outliers[0] != "weird" {
		t.Errorf("outliers = %v, want [weird]", ipc.Outliers)
	}
}

func TestAggregateEmptyAndIDSynthesis(t *testing.T) {
	if _, err := Aggregate(nil, nil); err == nil {
		t.Error("empty fleet must error")
	}
	r := synthReport("app", 42, 1, 1, 1)
	r.FaultPlan = "noisy-link"
	fp, err := Aggregate(nil, []*RunReport{r})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Runs[0].ID != "app-seed42-noisy-link" {
		t.Errorf("synthesized ID = %q", fp.Runs[0].ID)
	}
}

// runForReport executes one full profiling run and returns its report,
// round-tripped through JSON exactly as tcprof -json → tcfleet would.
func runForReport(t *testing.T, faults string) *RunReport {
	t.Helper()
	cfg := soc.TC1797().WithED()
	s, app := buildApp(t, cfg, stdSpec())
	dapCfg := dap.DefaultConfig(cfg.CPUFreqMHz)
	spec := Spec{Resolution: 500, Params: StandardParams(), DAP: &dapCfg, Obs: obs.New()}
	if faults != "" {
		plan, err := fault.Parse(faults, stdSpec().Seed)
		if err != nil {
			t.Fatal(err)
		}
		spec.Fault = &plan
	}
	sess := NewSession(s, spec)
	mustRun(t, sess, app, 400_000)
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.RunReport(p, stdSpec().Seed).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFleetCleanVsLossyIntegration is the acceptance-criterion test: a
// clean run and a -faults everything run, aggregated into a fleet profile
// in which the lossy run's weight is visibly lower.
func TestFleetCleanVsLossyIntegration(t *testing.T) {
	clean := runForReport(t, "")
	lossy := runForReport(t, "everything")

	if clean.Confidence != 1 {
		t.Errorf("clean confidence = %v, want 1", clean.Confidence)
	}
	if lossy.FaultPlan != "everything" || !lossy.Framed {
		t.Errorf("lossy meta = %+v", lossy)
	}
	if lossy.Loss.LinkLost == 0 && lossy.Loss.MsgsLost == 0 {
		t.Fatal("everything scenario lost nothing — fault injection inactive?")
	}
	if lossy.Confidence >= clean.Confidence {
		t.Fatalf("lossy confidence %v not below clean %v", lossy.Confidence, clean.Confidence)
	}

	fp, err := Aggregate([]string{"clean.json", "lossy.json"}, []*RunReport{clean, lossy})
	if err != nil {
		t.Fatal(err)
	}
	cw, lw := fp.Run("clean.json").Weight, fp.Run("lossy.json").Weight
	if lw >= 0.98*cw {
		t.Errorf("lossy weight %v not visibly below clean weight %v", lw, cw)
	}
	ipc := fp.Param("ipc")
	if ipc == nil || ipc.Runs != 2 {
		t.Fatalf("fleet ipc = %+v", ipc)
	}
	// Both runs measured the same deterministic application, so the
	// weighted mean must stay close to the clean run's measurement.
	cleanIPC := clean.Params["ipc"].Mean
	if d := ipc.WeightedMean - cleanIPC; d > 0.05 || d < -0.05 {
		t.Errorf("fleet weighted IPC %v strayed from clean %v", ipc.WeightedMean, cleanIPC)
	}
}

// TestAccumulatorOrderIndependence is the determinism contract the
// campaign runner builds on: streaming reports into an Accumulator in
// any order — including concurrently from many goroutines — must yield
// a profile byte-identical to the batch Aggregate of the same reports.
func TestAccumulatorOrderIndependence(t *testing.T) {
	var reports []*RunReport
	var ids []string
	for i := 0; i < 16; i++ {
		conf := 1.0
		if i%5 == 0 {
			conf = 0.3 + 0.02*float64(i)
		}
		reports = append(reports, synthReport(fmt.Sprintf("app%d", i), uint64(i), conf, 0.9+0.01*float64(i), conf))
		ids = append(ids, fmt.Sprintf("run%02d", i))
	}
	want, err := Aggregate(ids, reports)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := mustFleetJSON(t, want)

	// Reversed sequential order.
	rev := NewAccumulator()
	for i := len(reports) - 1; i >= 0; i-- {
		rev.Add(ids[i], reports[i])
	}
	if got, err := rev.Finalize(); err != nil {
		t.Fatal(err)
	} else if j := mustFleetJSON(t, got); !bytes.Equal(j, wantJSON) {
		t.Error("reversed ingest order changed the canonical profile")
	}

	// Concurrent ingest from one goroutine per report (run with -race).
	conc := NewAccumulator()
	var wg sync.WaitGroup
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc.Add(ids[i], reports[i])
		}(i)
	}
	wg.Wait()
	if conc.Len() != len(reports) {
		t.Fatalf("accumulator holds %d runs, want %d", conc.Len(), len(reports))
	}
	got, err := conc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if j := mustFleetJSON(t, got); !bytes.Equal(j, wantJSON) {
		t.Error("concurrent ingest changed the canonical profile")
	}
	// Finalize must not freeze the accumulator: keep streaming and the
	// next snapshot reflects the extra run.
	conc.Add("late", synthReport("late", 99, 1, 1.5, 1))
	if got, err := conc.Finalize(); err != nil || got.Run("late") == nil {
		t.Fatalf("post-Finalize ingest lost: run=%v err=%v", got.Run("late"), err)
	}
}

func mustFleetJSON(t *testing.T, fp *FleetProfile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The canonical observability-overhead measurement: a full profiling
// session over the standard workload, instrumented (live registry on
// every layer) vs obs.Disabled. Acceptance: ≤5% slowdown.
func benchSessionObs(b *testing.B, reg *obs.Registry) {
	cfg := soc.TC1797().WithED()
	s := soc.New(cfg, 3)
	app, err := workload.Build(s, stdSpec())
	if err != nil {
		b.Fatal(err)
	}
	dapCfg := dap.DefaultConfig(cfg.CPUFreqMHz)
	sess := NewSession(s, Spec{Resolution: 500, Params: StandardParams(), DAP: &dapCfg, Obs: reg})
	b.ResetTimer()
	mustRun(b, sess, app, uint64(b.N))
}

func BenchmarkSessionObsDisabled(b *testing.B)     { benchSessionObs(b, obs.Disabled) }
func BenchmarkSessionObsInstrumented(b *testing.B) { benchSessionObs(b, obs.New()) }
