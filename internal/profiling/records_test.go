package profiling

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/iotest"
)

// recordReport builds a distinctive valid report for record-stream tests.
func recordReport(seed uint64) *RunReport {
	return &RunReport{
		Schema: ReportSchemaVersion,
		App:    fmt.Sprintf("app%d", seed), SoC: "TC1797", Seed: seed,
		Cycles: 1000 * seed, Resolution: 100, Confidence: 1,
		Params: map[string]ParamStats{
			"ipc": {Mean: 0.25 * float64(seed), Min: 0.1, Max: 0.9, Windows: 7, Confidence: 1},
		},
	}
}

// encodeStream concatenates the checksummed encodings of n reports and
// returns the stream plus each record's body bytes.
func encodeStream(t *testing.T, n int) ([]byte, [][]byte) {
	t.Helper()
	var stream bytes.Buffer
	var bodies [][]byte
	for i := 1; i <= n; i++ {
		r := recordReport(uint64(i))
		b, _, err := r.EncodeSummed()
		if err != nil {
			t.Fatal(err)
		}
		body, _, _, err := VerifySummed(b)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, append([]byte(nil), body...))
		stream.Write(b)
	}
	return stream.Bytes(), bodies
}

// drain reads the stream to EOF, returning every verified body.
func drain(t *testing.T, sc *RecordScanner) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		body, crc, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("scanner error: %v", err)
		}
		// Every returned record must re-verify against its own CRC.
		rec := append(append([]byte(nil), body...), []byte(fmt.Sprintf("%s%08x\n", ChecksumPrefix, crc))...)
		if _, _, _, verr := VerifySummed(rec); verr != nil {
			t.Fatalf("returned record does not re-verify: %v", verr)
		}
		out = append(out, body)
	}
}

func TestRecordScannerCleanStream(t *testing.T) {
	stream, bodies := encodeStream(t, 5)
	sc := NewRecordScanner(bytes.NewReader(stream))
	got := drain(t, sc)
	if len(got) != len(bodies) {
		t.Fatalf("recovered %d records, want %d", len(got), len(bodies))
	}
	for i := range got {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Errorf("record %d differs from what was written", i)
		}
	}
	if sc.Skipped() != 0 {
		t.Errorf("clean stream counted %d skips", sc.Skipped())
	}
}

func TestRecordScannerControlLines(t *testing.T) {
	stream, bodies := encodeStream(t, 2)
	// Interleave control lines before, between, and after records.
	parts := bytes.SplitAfter(stream, []byte("\n"))
	var buf bytes.Buffer
	buf.WriteString("//shard hello v=1\n")
	for _, p := range parts {
		buf.Write(p)
		if bytes.HasPrefix(p, []byte(ChecksumPrefix)) {
			buf.WriteString("//shard hb done=1\n")
		}
	}
	sc := NewRecordScanner(&buf)
	var ctl []string
	sc.Control = func(line string) { ctl = append(ctl, line) }
	got := drain(t, sc)
	if len(got) != len(bodies) {
		t.Fatalf("recovered %d records, want %d", len(got), len(bodies))
	}
	if sc.Skipped() != 0 {
		t.Errorf("control lines counted as skips: %d", sc.Skipped())
	}
	if len(ctl) != 3 || !strings.HasPrefix(ctl[0], "//shard hello") {
		t.Errorf("control lines = %q", ctl)
	}
}

// TestRecordScannerGarbageRecovery: garbage lines prepended to an
// intact record are shed and the record survives.
func TestRecordScannerGarbageRecovery(t *testing.T) {
	stream, bodies := encodeStream(t, 3)
	parts := bytes.SplitAfter(stream, []byte("\n"))
	var buf bytes.Buffer
	buf.WriteString("not json at all\n")
	for _, p := range parts {
		buf.Write(p)
		if bytes.HasPrefix(p, []byte(ChecksumPrefix)) {
			buf.WriteString("<<<interleaved garbage>>>\n")
		}
	}
	sc := NewRecordScanner(&buf)
	got := drain(t, sc)
	if len(got) != len(bodies) {
		t.Fatalf("recovered %d records, want %d", len(got), len(bodies))
	}
	for i := range got {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Errorf("record %d corrupted by garbage shedding", i)
		}
	}
	// 3 shed garbage prefixes plus the torn garbage tail after the last
	// record.
	if sc.Skipped() != 4 {
		t.Errorf("skipped = %d, want 4", sc.Skipped())
	}
}

// TestRecordScannerTruncationAndFlips: a torn record and a bit-flipped
// record are dropped and counted; their neighbors survive.
func TestRecordScannerTruncationAndFlips(t *testing.T) {
	good, bodies := encodeStream(t, 1)

	// Torn mid-record (no trailer reached before the next record).
	var buf bytes.Buffer
	buf.Write(good[:len(good)/2])
	buf.WriteString("\n") // make the tear land on a line boundary
	buf.Write(good)
	sc := NewRecordScanner(&buf)
	got := drain(t, sc)
	if len(got) != 1 || !bytes.Equal(got[0], bodies[0]) {
		t.Fatalf("record after tear not recovered (got %d)", len(got))
	}
	if sc.Skipped() == 0 {
		t.Error("tear not counted as a skip")
	}

	// Bit flip in the body: CRC catches it, record dropped.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0x10
	sc = NewRecordScanner(bytes.NewReader(flipped))
	if got := drain(t, sc); len(got) != 0 {
		t.Fatalf("bit-flipped record passed verification")
	}
	if sc.Skipped() == 0 {
		t.Error("flip not counted as a skip")
	}

	// Truncated stream (EOF mid-record): torn tail counted.
	sc = NewRecordScanner(bytes.NewReader(good[:len(good)-20]))
	if got := drain(t, sc); len(got) != 0 {
		t.Fatal("truncated record passed verification")
	}
	if sc.Skipped() != 1 {
		t.Errorf("truncation skips = %d, want 1", sc.Skipped())
	}
}

func TestRecordScannerMaxRecord(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 100; i++ {
		buf.WriteString(strings.Repeat("x", 100) + "\n")
	}
	good, bodies := encodeStream(t, 1)
	buf.Write(good)
	sc := NewRecordScanner(&buf)
	sc.MaxRecord = 1024
	got := drain(t, sc)
	// The flood is dropped in 1 KiB chunks; the real record follows a
	// partial flood chunk, which suffix recovery sheds.
	if len(got) != 1 || !bytes.Equal(got[0], bodies[0]) {
		t.Fatalf("record after flood not recovered (got %d)", len(got))
	}
	if sc.Skipped() == 0 {
		t.Error("flood not counted")
	}
}

func TestRecordScannerReadError(t *testing.T) {
	stream, _ := encodeStream(t, 1)
	sc := NewRecordScanner(iotest.TimeoutReader(bytes.NewReader(stream[:10])))
	for {
		_, _, err := sc.Next()
		if err == io.EOF {
			t.Fatal("read error reported as clean EOF")
		}
		if err != nil {
			break
		}
	}
}

// TestRecordScannerProperty is the process-boundary property test: a
// stream of valid records mangled by seeded random truncation, bit
// flips, interleaved garbage lines, and record duplication must never
// panic, must never yield a record that fails re-verification, and must
// count every loss as a skip.
func TestRecordScannerProperty(t *testing.T) {
	_, bodies := encodeStream(t, 8)
	valid := map[string]bool{}
	for _, b := range bodies {
		valid[string(b)] = true
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var buf bytes.Buffer
		wrote := 0
		for _, b := range bodies {
			r := append([]byte(nil), b...)
			rec := append(r, []byte(fmt.Sprintf("%s%08x\n", ChecksumPrefix, crcOf(r)))...)
			switch rng.Intn(5) {
			case 0: // pristine
				buf.Write(rec)
				wrote++
			case 1: // duplicated
				buf.Write(rec)
				buf.Write(rec)
				wrote += 2
			case 2: // truncated (always cutting into the record proper)
				buf.Write(rec[:rng.Intn(len(rec)-2)])
				buf.WriteString("\n")
			case 3: // bit-flipped (never the final newline, which TrimSpace forgives)
				rec[rng.Intn(len(rec)-2)] ^= byte(1 << rng.Intn(8))
				buf.Write(rec)
			case 4: // garbage prepended
				buf.WriteString("garbage line " + strings.Repeat("z", rng.Intn(64)) + "\n")
				buf.Write(rec)
				wrote++
			}
		}
		sc := NewRecordScanner(bytes.NewReader(buf.Bytes()))
		var got int
		for {
			body, _, err := sc.Next()
			if err != nil {
				break
			}
			if !valid[string(body)] {
				// A flipped record could only pass if the flip landed in
				// pure whitespace; the CRC covers every byte, so any
				// returned record must be one of the originals.
				t.Fatalf("trial %d: scanner returned a record that was never written", trial)
			}
			got++
		}
		if got > wrote {
			t.Fatalf("trial %d: recovered %d records, only %d intact ones written", trial, got, wrote)
		}
		if got < wrote && sc.Skipped() == 0 {
			t.Fatalf("trial %d: lost %d records without counting a skip", trial, wrote-got)
		}
	}
}

func crcOf(body []byte) uint32 { return crc32.ChecksumIEEE(body) }

// FuzzRecordScanner feeds arbitrary bytes through the scanner: it must
// never panic, and every record it does return must re-verify.
func FuzzRecordScanner(f *testing.F) {
	var seedBuf bytes.Buffer
	r := recordReport(3)
	b, _, _ := r.EncodeSummed()
	seedBuf.Write(b)
	f.Add(seedBuf.Bytes())
	f.Add([]byte("//crc32:zzzz\n"))
	f.Add([]byte("//crc32:00000000\n"))
	f.Add([]byte("plain\n//shard hb\n" + ChecksumPrefix + "deadbeef\n"))
	f.Add(bytes.Repeat([]byte("x"), 4096))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewRecordScanner(bytes.NewReader(data))
		sc.MaxRecord = 1 << 16
		sc.Control = func(string) {}
		for i := 0; i < 1<<12; i++ {
			body, crc, err := sc.Next()
			if err != nil {
				return
			}
			rec := append(append([]byte(nil), body...),
				[]byte(fmt.Sprintf("%s%08x\n", ChecksumPrefix, crc))...)
			if _, _, _, verr := VerifySummed(rec); verr != nil {
				t.Fatalf("scanner returned unverifiable record: %v", verr)
			}
		}
	})
}
