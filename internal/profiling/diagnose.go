package profiling

import (
	"fmt"
	"math"
	"sort"
)

// Diagnosis explains one degraded time window: which co-measured
// parameters are elevated relative to their run baseline. This implements
// the paper's reason the parameters must be measured *in parallel*: "only
// when having all these data available in parallel it is possible to
// analyze for example the reason for a temporary poor System IPC rate in
// detail (high cache miss rate? Which cache? Which data or code structure?
// High Interrupt load? And so on)."
type Diagnosis struct {
	Window  Sample // the degraded window (of the watch parameter)
	Factors []Factor
}

// Factor is one suspect parameter in a diagnosis.
type Factor struct {
	Param    string
	Baseline float64 // run-wide mean rate
	Observed float64 // rate in the degraded window
	Excess   float64 // Observed − Baseline, in baseline standard deviations
}

// String renders a factor compactly.
func (f Factor) String() string {
	return fmt.Sprintf("%s: %.4f vs baseline %.4f (%+.1fσ)",
		f.Param, f.Observed, f.Baseline, f.Excess)
}

// stddev returns mean and standard deviation of the window rates.
func (se *Series) stats() (mean, sd float64) {
	if len(se.Samples) == 0 {
		return 0, 0
	}
	for _, s := range se.Samples {
		mean += s.Rate()
	}
	mean /= float64(len(se.Samples))
	for _, s := range se.Samples {
		d := s.Rate() - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(se.Samples)))
	return mean, sd
}

// at returns the sample of the series whose window covers cycle (the
// latest window ending at or after cycle), or ok=false.
func (se *Series) at(cycle uint64) (Sample, bool) {
	i := sort.Search(len(se.Samples), func(i int) bool {
		return se.Samples[i].Cycle >= cycle
	})
	if i >= len(se.Samples) {
		return Sample{}, false
	}
	return se.Samples[i], true
}

// Diagnose explains the windows of watchParam whose rate is below lo: for
// each degraded window it ranks every other parameter by how many standard
// deviations it sits above its own baseline within that window. It returns
// one diagnosis per degraded window, factors sorted most-suspect first.
func (p *Profile) Diagnose(watchParam string, lo float64) []Diagnosis {
	watch, ok := p.Series[watchParam]
	if !ok {
		return nil
	}
	// Precompute baselines.
	type base struct{ mean, sd float64 }
	bases := make(map[string]base, len(p.Series))
	for name, se := range p.Series {
		m, s := se.stats()
		bases[name] = base{m, s}
	}

	var out []Diagnosis
	for _, w := range watch.Samples {
		if w.Rate() >= lo {
			continue
		}
		if w.Suspect {
			// The window overlaps a trace-loss gap: a low rate here may be
			// an artifact of what vanished around it, not evidence.
			continue
		}
		diag := Diagnosis{Window: w}
		for name, se := range p.Series {
			if name == watchParam {
				continue
			}
			s, ok := se.at(w.Cycle)
			if !ok {
				continue
			}
			b := bases[name]
			sd := b.sd
			if sd < 1e-9 {
				sd = 1e-9
			}
			excess := (s.Rate() - b.mean) / sd
			if s.Suspect {
				// Down-weight evidence from windows touched by trace loss.
				excess /= 2
			}
			if excess > 0.5 { // only meaningfully elevated parameters
				diag.Factors = append(diag.Factors, Factor{
					Param: name, Baseline: b.mean, Observed: s.Rate(), Excess: excess,
				})
			}
		}
		sort.Slice(diag.Factors, func(i, j int) bool {
			if diag.Factors[i].Excess != diag.Factors[j].Excess {
				return diag.Factors[i].Excess > diag.Factors[j].Excess
			}
			return diag.Factors[i].Param < diag.Factors[j].Param
		})
		out = append(out, diag)
	}
	return out
}

// TopSuspects aggregates diagnoses: how often each parameter appears among
// the top k factors of a degraded window, sorted by count. It answers the
// engineer's question across the whole run rather than window by window.
func TopSuspects(diags []Diagnosis, k int) []FuncCost {
	counts := make(map[string]uint64)
	for _, d := range diags {
		n := k
		if n > len(d.Factors) {
			n = len(d.Factors)
		}
		for _, f := range d.Factors[:n] {
			counts[f.Param]++
		}
	}
	out := make([]FuncCost, 0, len(counts))
	for name, n := range counts {
		out = append(out, FuncCost{Name: name, Instr: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instr != out[j].Instr {
			return out[i].Instr > out[j].Instr
		}
		return out[i].Name < out[j].Name
	})
	return out
}
