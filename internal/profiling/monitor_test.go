package profiling

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/soc"
)

// TestMonitorRoutineReadsEEC reproduces the paper's late-development-phase
// access path: a monitor routine running on the TriCore reads the EEC
// (MCDS register file) over the on-chip bus instead of the external tool
// using the DAP — "a tool can communicate over a user interface like CAN
// or FlexRay with a monitor routine, running on TriCore, which then
// accesses the EEC."
func TestMonitorRoutineReadsEEC(t *testing.T) {
	s := soc.New(soc.TC1797().WithED(), 1)

	a := isa.NewAsm(mem.FlashBase)
	// Warm-up work so the counters have content.
	a.Movw(3, 3000)
	a.Label("work")
	a.Addi(2, 2, 1)
	a.Loop(3, "work")
	// Monitor: read the MCDS ID, the total-IPC-source counter (counter 0
	// measures instructions) and the message count; store them to DSPR
	// where the "CAN reporting" would pick them up.
	a.Movw(1, mem.MCDSRegBase)
	a.Ldw(4, 1, 0) // RegID
	a.Movw(5, mem.DSPRBase+0x40)
	a.Stw(4, 5, 0)
	a.Movw(1, mem.MCDSRegBase+0x10) // counter 0 block
	a.Ldw(6, 1, 4)                  // regTotal
	a.Stw(6, 5, 4)
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)

	sess := NewSession(s, Spec{Resolution: 100, Params: []Param{
		StandardParams()[0], // ipc: Src = instructions
	}})

	if _, ok := s.RunUntilHalt(1_000_000); !ok {
		t.Fatal("did not halt")
	}
	s.Clock.Step()

	id := s.DSPR.Read32(mem.DSPRBase + 0x40)
	if id != 0x4D43_4453 {
		t.Errorf("monitor read MCDS ID %#x", id)
	}
	total := s.DSPR.Read32(mem.DSPRBase + 0x44)
	if total < 3000 {
		t.Errorf("monitor read %d executed instructions, want >= 3000", total)
	}
	if sess.Regs.Reads < 2 {
		t.Errorf("register file reads = %d", sess.Regs.Reads)
	}
}

// TestMonitorArmsCounter verifies the write path: on-chip software can
// disarm and re-arm a counter through the control register.
func TestMonitorArmsCounter(t *testing.T) {
	s := soc.New(soc.TC1797().WithED(), 1)
	a := isa.NewAsm(mem.FlashBase)
	ctrBase := uint32(mem.MCDSRegBase + 0x10)
	// Disable counter 0, run some work, re-enable, run more work.
	a.Movw(1, ctrBase)
	a.Movi(2, 0)
	a.Stw(2, 1, 0) // CTRL = 0 (disable)
	a.Movw(3, 1000)
	a.Label("w1")
	a.Loop(3, "w1")
	a.Movi(2, 1)
	a.Stw(2, 1, 0) // CTRL = 1 (enable, resets the window)
	a.Movw(3, 1000)
	a.Label("w2")
	a.Loop(3, "w2")
	a.Ldw(4, 1, 4) // regTotal
	a.Movw(5, mem.DSPRBase+0x80)
	a.Stw(4, 5, 0)
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)

	sess := NewSession(s, Spec{Resolution: 100, Params: StandardParams()[:1]})
	if _, ok := s.RunUntilHalt(1_000_000); !ok {
		t.Fatal("did not halt")
	}
	s.Clock.Step()

	c := sess.Counter("ipc")
	if !c.Enabled {
		t.Error("counter not re-enabled")
	}
	// The counter missed the disabled phase: its total must be well below
	// the full instruction count but nonzero.
	total := s.DSPR.Read32(mem.DSPRBase + 0x80)
	if total == 0 {
		t.Fatal("counter never counted after re-arm")
	}
	if c.TotalSrc > 1500 {
		t.Errorf("counter saw %d instructions; the disabled phase should be missing", c.TotalSrc)
	}
}
