package profiling

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dap"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
	"repro/internal/workload"
)

// mustRun drives the measurement phase through the context-aware session
// API, failing the test on unexpected cancellation.
func mustRun(t testing.TB, sess *Session, app Runner, cycles uint64) {
	t.Helper()
	if err := sess.Run(context.Background(), app, cycles); err != nil {
		t.Fatal(err)
	}
}

func buildApp(t *testing.T, cfg soc.Config, spec workload.Spec) (*soc.SoC, *workload.App) {
	t.Helper()
	s := soc.New(cfg, spec.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	return s, app
}

func stdSpec() workload.Spec {
	return workload.Spec{
		Name: "app", Seed: 3, CodeKB: 16, TableKB: 16, FilterTaps: 12,
		DiagBranches: 10, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
	}
}

func TestStandardProfileSane(t *testing.T) {
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	sess := NewSession(s, Spec{Resolution: 500, Params: StandardParams()})
	mustRun(t, sess, app, 500_000)
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	if p.MsgsLost != 0 {
		t.Errorf("lost %d messages with 384K trace buffer", p.MsgsLost)
	}
	ipc := p.Rate("ipc")
	if ipc <= 0 || ipc > 3 {
		t.Errorf("ipc = %v", ipc)
	}
	// Hit rate sanity: misses <= accesses.
	if p.Rate("icache_miss") > p.Rate("icache_access") {
		t.Error("more misses than accesses")
	}
	// All standard parameters produced samples.
	for _, name := range p.Names() {
		if len(p.Series[name].Samples) == 0 {
			t.Errorf("parameter %s has no samples", name)
		}
	}
	// Stall fractions are fractions of cycles.
	if r := p.Rate("stall_any"); r < 0 || r > 1 {
		t.Errorf("stall_any = %v", r)
	}
	// Dynamic behaviour: IPC varies over time (interrupt-driven system).
	se := p.Series["ipc"]
	if se.Min() == se.Max() {
		t.Error("IPC timeline is flat — no dynamics visible")
	}
}

// TestWorkedExampleDataFlashRate reproduces the paper's Section 5 example:
// "6 CPU data reads from the flash within the last 100 executed
// instructions are identical to an CPU data flash access rate of 6%."
// The program executes exactly 100 instructions per loop iteration, 6 of
// which are uncached data loads from flash.
func TestWorkedExampleDataFlashRate(t *testing.T) {
	cfg := soc.TC1797().WithED()
	cfg.DCache = nil // every flash data read reaches the flash
	s := soc.New(cfg, 1)

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.FlashBase+0x10000) // table pointer
	a.Movw(9, 400)                   // iterations
	a.J("body")
	a.Label("body")
	// 6 data flash reads.
	for i := int32(0); i < 6; i++ {
		a.Ldw(2, 1, i*4)
	}
	// Filler up to exactly 100 instructions per iteration:
	// 6 loads + 92 ALU + LOOP + (amortized) = we count precisely below.
	for i := 0; i < 93; i++ {
		a.Addi(3, 3, 1)
	}
	a.Loop(9, "body") // 6 + 93 + 1 = 100 instructions per iteration
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)

	sess := NewSession(s, Spec{Resolution: 100, Params: []Param{
		{Name: "dflash_read", Obs: ObsCPU, Event: sim.EvDFlashRead},
	}})

	if _, ok := s.RunUntilHalt(10_000_000); !ok {
		t.Fatal("did not halt")
	}
	s.Clock.Step()
	prof, err := sess.Result("worked-example")
	if err != nil {
		t.Fatal(err)
	}
	se := prof.Series["dflash_read"]
	if len(se.Samples) < 100 {
		t.Fatalf("only %d windows", len(se.Samples))
	}
	// Steady state: every window of 100 instructions contains exactly 6
	// data flash reads — a 6% rate, as the paper computes.
	exact := 0
	for _, smp := range se.Samples[2 : len(se.Samples)-2] {
		if smp.Basis == 100 && smp.Count == 6 {
			exact++
		}
	}
	steady := se.Samples[2 : len(se.Samples)-2]
	if exact < len(steady)*9/10 {
		t.Errorf("only %d/%d windows show the exact 6/100 rate", exact, len(steady))
	}
	if r := se.Mean(); r < 0.055 || r > 0.065 {
		t.Errorf("aggregate rate = %.4f, want about 0.06", r)
	}
}

func TestHitRatePctConvention(t *testing.T) {
	// "4 instruction cache misses during the last 100 executed
	// instructions respond to an instruction cache hit rate of 96%":
	// the paper's convention derives the hit percentage directly from the
	// miss-per-instruction rate.
	s := Sample{Basis: 100, Count: 4}
	if got := HitRatePct(s); got != 96 {
		t.Errorf("HitRatePct = %v, want 96", got)
	}
	if got := HitRatePct(Sample{Basis: 0, Count: 0}); got != 100 {
		t.Errorf("empty window = %v, want 100", got)
	}
}

func TestDAPDrainDuringRun(t *testing.T) {
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	cfg := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
	sess := NewSession(s, Spec{Resolution: 1000, Params: StandardParams(), DAP: &cfg})
	mustRun(t, sess, app, 400_000)
	if sess.DAP.TotalDrained == 0 {
		t.Fatal("DAP drained nothing during the run")
	}
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series["ipc"].Samples) == 0 {
		t.Error("no samples through the DAP path")
	}
}

func TestHotWindowDetection(t *testing.T) {
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	sess := NewSession(s, Spec{Resolution: 200, Params: StandardParams()})
	mustRun(t, sess, app, 400_000)
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	all := len(p.Series["ipc"].Samples)
	hot := len(p.HotWindows("ipc", p.Rate("ipc")))
	if hot == 0 || hot == all {
		t.Errorf("hot windows = %d of %d — threshold should split the timeline", hot, all)
	}
	above := p.WindowsAbove("ipc", p.Rate("ipc"))
	if len(above)+hot != all {
		t.Errorf("partition broken: %d + %d != %d", len(above), hot, all)
	}
}

func TestFunctionProfileFindsHotFunctions(t *testing.T) {
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	sess := NewSession(s, Spec{Resolution: 1000, Params: StandardParams()})
	sess.CPUObs().FlowTrace = true
	mustRun(t, sess, app, 300_000)
	raw := s.EMEM.Drain(s.EMEM.Level())
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	costs := FunctionProfile(msgs, 0, app.Prog)
	if len(costs) < 4 {
		t.Fatalf("only %d functions attributed", len(costs))
	}
	total := uint64(0)
	byName := map[string]uint64{}
	for _, fc := range costs {
		total += fc.Instr
		byName[fc.Name] += fc.Instr
	}
	for _, want := range []string{"task_filter", "task_lookup", "task_diag", "isr_adc"} {
		if byName[want] == 0 {
			t.Errorf("function %s got no cost", want)
		}
	}
	if costs[0].Instr < total/20 {
		t.Error("hottest function suspiciously cold")
	}
}

func TestSessionRunCancellation(t *testing.T) {
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	sess := NewSession(s, Spec{Resolution: 500, Params: StandardParams()})

	// Pre-canceled context: no cycle may execute.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sess.Run(canceled, app, 500_000); err == nil {
		t.Fatal("pre-canceled run returned nil")
	}
	if cy := s.Clock.Cycle(); cy != 0 {
		t.Fatalf("pre-canceled run advanced %d cycles", cy)
	}

	// Cancel mid-run: the run stops within one poll batch and the session
	// remains drainable — Result assembles the partial profile.
	ctx, cancel2 := context.WithCancel(context.Background())
	done := uint64(0)
	stopAt := uint64(40_000)
	s.Clock.Attach("canary", sim.TickerFunc(func(cycle uint64) {
		done = cycle
		if cycle == stopAt {
			cancel2()
		}
	}))
	err := sess.Run(ctx, app, 10_000_000)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("mid-run cancellation error = %v", err)
	}
	if done < stopAt || done > stopAt+RunCancelEvery {
		t.Fatalf("run stopped at cycle %d, want within one batch of %d", done, stopAt)
	}
	p, resErr := sess.Result("partial")
	if resErr != nil {
		t.Fatalf("partial flush failed: %v", resErr)
	}
	if len(p.Series["ipc"].Samples) == 0 {
		t.Fatal("partial profile has no samples")
	}
}

func TestExternalSamplingModel(t *testing.T) {
	// 17 parameters × 1000 windows: the conventional approach costs
	// 2 reads × 9 bytes each per parameter per window.
	got := ExternalSamplingBytes(17, 1000)
	if got != 17*1000*2*9 {
		t.Errorf("ExternalSamplingBytes = %d", got)
	}
}
