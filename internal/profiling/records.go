package profiling

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
)

// RecordScanner splits a byte stream into CRC-32-trailed report records
// — the EncodeSummed format — and returns only records whose trailer
// verifies. It is the ingest side of a process boundary: the stream may
// come from a worker process that crashed mid-write, a pipe that tore a
// record, or a log that interleaved garbage, and none of that may ever
// reach the aggregate. Anything that fails verification is counted in
// Skipped and the scanner resynchronizes on the next trailer.
//
// The framing is line-oriented and self-delimiting: a record is every
// non-control line up to and including the next ChecksumPrefix trailer
// line, whose CRC-32 must match the accumulated body. Three recovery
// behaviors make the scanner safe against a hostile stream:
//
//   - A trailer whose CRC does not match the whole accumulated body is
//     retried against every line-boundary suffix of the body (garbage
//     lines prepended to an otherwise intact record are shed, the
//     record survives, and the shed prefix counts as one skip).
//   - A body that never meets its trailer — EOF, or MaxRecord exceeded
//     — is dropped and counted.
//   - Lines beginning with "//" other than the trailer are control
//     lines: they are handed to the Control hook (when set) and never
//     enter a record body, so a side-channel protocol can ride the same
//     stream.
type RecordScanner struct {
	// Control receives every "//"-prefixed line that is not a checksum
	// trailer, in stream order, synchronously from Next. Nil discards
	// them.
	Control func(line string)
	// MaxRecord bounds the accumulated body size; a body that grows past
	// it without reaching a trailer is dropped as garbage. 0 means
	// DefaultMaxRecord.
	MaxRecord int

	sc      *bufio.Scanner
	body    bytes.Buffer
	starts  []int // byte offset of each line start within body
	skipped int
}

// DefaultMaxRecord is the record-size bound when MaxRecord is zero:
// far above any real run report, low enough that an unframed garbage
// flood cannot exhaust memory.
const DefaultMaxRecord = 16 << 20

// NewRecordScanner returns a scanner over r. Individual lines longer
// than 1 MiB are treated as garbage by the underlying line splitter.
func NewRecordScanner(r io.Reader) *RecordScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &RecordScanner{sc: sc}
}

// Skipped reports how many torn, oversized, or checksum-failed records
// (including shed garbage prefixes) the scanner has dropped so far.
func (s *RecordScanner) Skipped() int { return s.skipped }

// Next returns the body of the next verified record and its CRC-32.
// It returns io.EOF at a clean end of stream and the underlying read
// error otherwise; in both cases any unterminated partial body has been
// counted as skipped.
func (s *RecordScanner) Next() ([]byte, uint32, error) {
	max := s.MaxRecord
	if max <= 0 {
		max = DefaultMaxRecord
	}
	for s.sc.Scan() {
		line := s.sc.Bytes()
		if bytes.HasPrefix(line, []byte(ChecksumPrefix)) {
			body, crc, ok := s.verify(line)
			s.reset()
			if ok {
				return body, crc, nil
			}
			s.skipped++
			continue
		}
		if bytes.HasPrefix(line, []byte("//")) {
			if s.Control != nil {
				s.Control(string(line))
			}
			continue
		}
		s.starts = append(s.starts, s.body.Len())
		s.body.Write(line)
		s.body.WriteByte('\n')
		if s.body.Len() > max {
			s.skipped++
			s.reset()
		}
	}
	if s.body.Len() > 0 {
		// Torn tail: a record the writer never finished.
		s.skipped++
		s.reset()
	}
	if err := s.sc.Err(); err != nil {
		return nil, 0, err
	}
	return nil, 0, io.EOF
}

// verify checks the accumulated body against the trailer line. When the
// whole body fails, every line-boundary suffix is tried so garbage
// prepended to an intact record does not destroy it; a shed prefix is
// counted as one skip.
func (s *RecordScanner) verify(trailer []byte) ([]byte, uint32, bool) {
	hex := bytes.TrimSpace(trailer[len(ChecksumPrefix):])
	want64, err := strconv.ParseUint(string(hex), 16, 32)
	if err != nil {
		return nil, 0, false
	}
	want := uint32(want64)
	full := s.body.Bytes()
	for _, off := range s.starts {
		if crc32.ChecksumIEEE(full[off:]) == want {
			if off > 0 {
				s.skipped++ // the shed garbage prefix
			}
			body := make([]byte, len(full)-off)
			copy(body, full[off:])
			return body, want, true
		}
	}
	return nil, 0, false
}

// reset clears the body accumulator between records.
func (s *RecordScanner) reset() {
	s.body.Reset()
	s.starts = s.starts[:0]
}

// AppendSummedRecord encodes the report in its checksummed form and
// appends it to w — the writer-side dual of RecordScanner, used by
// shard workers to stream completed reports over a pipe. The record's
// CRC-32 is returned for cross-recording.
func AppendSummedRecord(w io.Writer, r *RunReport) (uint32, error) {
	b, crc, err := r.EncodeSummed()
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(b); err != nil {
		return 0, fmt.Errorf("record write: %w", err)
	}
	return crc, nil
}
