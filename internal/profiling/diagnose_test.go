package profiling

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/soc"
)

// TestDiagnoseBlamesTheRightParameter builds a program whose IPC collapses
// in phases dominated by data-flash reads (dependent uncached-table loads)
// and checks that the diagnosis ranks the data-side parameters on top —
// the paper's "high cache miss rate? Which cache?" drill-down.
func TestDiagnoseBlamesTheRightParameter(t *testing.T) {
	cfg := soc.TC1797().WithED()
	cfg.DCache = nil // flash reads visibly reach the flash
	s := soc.New(cfg, 3)

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(7, mem.FlashBase+0x20000)
	a.Movw(9, 40) // phases
	a.Label("phase")
	a.Movw(3, 3000)
	a.Label("fast")
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "fast")
	a.Movw(4, 150)
	a.Label("slow")
	a.Ldw(5, 7, 0) // data flash read
	a.Add(6, 5, 6) // dependent
	a.Mul(6, 6, 5)
	a.Addi(7, 7, 32)
	a.Loop(4, "slow")
	a.Loop(9, "phase")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)

	sess := NewSession(s, Spec{Resolution: 300, Params: StandardParams()})
	if _, ok := s.RunUntilHalt(50_000_000); !ok {
		t.Fatal("did not halt")
	}
	s.Clock.Step()
	prof, err := sess.Result("diag")
	if err != nil {
		t.Fatal(err)
	}

	diags := prof.Diagnose("ipc", 0.9)
	if len(diags) < 10 {
		t.Fatalf("only %d degraded windows diagnosed", len(diags))
	}
	suspects := TopSuspects(diags, 3)
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	// The top suspects must include the data-side parameters, not the
	// instruction side.
	top3 := map[string]bool{}
	for i, sp := range suspects {
		if i >= 3 {
			break
		}
		top3[sp.Name] = true
	}
	if !top3["dflash_read"] && !top3["stall_data"] {
		t.Errorf("data-side parameters not among top suspects: %v", suspects[:3])
	}
	if top3["interrupt"] {
		t.Error("interrupt load wrongly blamed (no ISRs in this program)")
	}
	// Per-window factors must be sorted by excess.
	for _, dgn := range diags[:5] {
		for i := 1; i < len(dgn.Factors); i++ {
			if dgn.Factors[i].Excess > dgn.Factors[i-1].Excess {
				t.Fatal("factors not sorted")
			}
		}
	}
	if s := diags[0].Factors[0].String(); s == "" {
		t.Error("empty factor rendering")
	}
}

// TestDiagnoseSeriesHelpers covers stats and window lookup.
func TestDiagnoseSeriesHelpers(t *testing.T) {
	se := &Series{Param: "x", Samples: []Sample{
		{Cycle: 100, Basis: 100, Count: 10},
		{Cycle: 200, Basis: 100, Count: 20},
		{Cycle: 300, Basis: 100, Count: 30},
	}}
	mean, sd := se.stats()
	if mean < 0.199 || mean > 0.201 {
		t.Errorf("mean = %v", mean)
	}
	if sd <= 0 {
		t.Errorf("sd = %v", sd)
	}
	if s, ok := se.at(150); !ok || s.Cycle != 200 {
		t.Errorf("at(150) = %+v %v", s, ok)
	}
	if s, ok := se.at(300); !ok || s.Cycle != 300 {
		t.Errorf("at(300) = %+v %v", s, ok)
	}
	if _, ok := se.at(301); ok {
		t.Error("at beyond end must fail")
	}
	var empty Series
	if m, s := empty.stats(); m != 0 || s != 0 {
		t.Error("empty stats")
	}
}

func TestDiagnoseUnknownParam(t *testing.T) {
	p := &Profile{Series: map[string]*Series{}}
	if d := p.Diagnose("nope", 1); d != nil {
		t.Error("unknown parameter must yield nil")
	}
}

func TestSparkline(t *testing.T) {
	se := &Series{Param: "x"}
	for i := 0; i < 100; i++ {
		c := uint64(10)
		if i >= 50 {
			c = 90
		}
		se.Samples = append(se.Samples, Sample{Cycle: uint64(i * 100), Basis: 100, Count: c})
	}
	sp := []rune(se.Sparkline(10))
	if len(sp) != 10 {
		t.Fatalf("width = %d", len(sp))
	}
	// Low half must render lower glyphs than the high half.
	if sp[0] >= sp[9] {
		t.Errorf("sparkline shape wrong: %q", string(sp))
	}
	if se.Sparkline(0) != "" {
		t.Error("zero width must be empty")
	}
	var empty Series
	if empty.Sparkline(10) != "" {
		t.Error("empty series must be empty")
	}
	// Flat series renders without panicking.
	flat := &Series{Samples: []Sample{{Basis: 1, Count: 1}, {Basis: 1, Count: 1}}}
	if len([]rune(flat.Sparkline(2))) != 2 {
		t.Error("flat series wrong width")
	}
}
