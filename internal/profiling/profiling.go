// Package profiling implements the paper's Enhanced System Profiling
// methodology (Section 5) on top of the MCDS: a declarative specification
// of the system parameters to measure (IPC, cache hit rates, flash access
// rates, interrupt rate, …), compiled into MCDS counter structures that
// measure everything dynamically, in parallel, non-intrusively and with
// configurable resolution; plus the tool-side assembly of the resulting
// rate messages into per-parameter time lines and run summaries.
package profiling

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/mcds"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
)

// ObsSel selects which observation block a parameter taps.
type ObsSel uint8

// Observation block selectors.
const (
	ObsCPU ObsSel = iota
	ObsPCP
	ObsDLMB
	ObsPLMB
	ObsSPB
	ObsFlash
	ObsDMA
	ObsCPU1 // second TriCore core (SecondCore configurations)
)

// Param is one profiled system parameter: an event rate measured against a
// resolution basis. A zero Basis means "per executed instruction"; IPC-style
// parameters use EvCycle.
type Param struct {
	Name  string
	Obs   ObsSel
	Event sim.Event
	Basis sim.Event // defaults to EvInstrExecuted on the CPU block
}

// StandardParams returns the paper's "essential parameters for CPU system
// performance of an engine control system": IPC, cache hit/miss rates,
// CPU access rates to flash/SRAM/scratchpads, interrupt rate — plus the
// stall and bus-contention rates the analysis sections use.
func StandardParams() []Param {
	return []Param{
		{Name: "ipc", Obs: ObsCPU, Event: sim.EvInstrExecuted, Basis: sim.EvCycle},
		{Name: "icache_miss", Obs: ObsCPU, Event: sim.EvICacheMiss},
		{Name: "icache_access", Obs: ObsCPU, Event: sim.EvICacheAccess},
		{Name: "dcache_miss", Obs: ObsCPU, Event: sim.EvDCacheMiss},
		{Name: "dcache_access", Obs: ObsCPU, Event: sim.EvDCacheAccess},
		{Name: "dflash_read", Obs: ObsCPU, Event: sim.EvDFlashRead},
		{Name: "iflash_access", Obs: ObsCPU, Event: sim.EvIFlashAccess},
		{Name: "dscratch_access", Obs: ObsCPU, Event: sim.EvDScratchAccess},
		{Name: "dsram_access", Obs: ObsCPU, Event: sim.EvDSRAMAccess},
		{Name: "dperiph_access", Obs: ObsCPU, Event: sim.EvDPeriphAccess},
		{Name: "interrupt", Obs: ObsCPU, Event: sim.EvInterruptEntry},
		{Name: "stall_fetch", Obs: ObsCPU, Event: sim.EvStallFetch, Basis: sim.EvCycle},
		{Name: "stall_data", Obs: ObsCPU, Event: sim.EvStallData, Basis: sim.EvCycle},
		{Name: "stall_any", Obs: ObsCPU, Event: sim.EvStallCycle, Basis: sim.EvCycle},
		{Name: "branch_miss", Obs: ObsCPU, Event: sim.EvBranchMiss},
		{Name: "bus_contention", Obs: ObsDLMB, Event: sim.EvBusContention},
		{Name: "flash_port_conflict", Obs: ObsFlash, Event: sim.EvFlashPortConflict},
	}
}

// PCPParams returns the PCP-side parameter set.
func PCPParams() []Param {
	return []Param{
		{Name: "pcp_ipc", Obs: ObsPCP, Event: sim.EvInstrExecuted, Basis: sim.EvCycle},
		{Name: "pcp_periph_access", Obs: ObsPCP, Event: sim.EvDPeriphAccess},
	}
}

// CPU1Params returns the second core's essential parameters (SecondCore
// configurations).
func CPU1Params() []Param {
	return []Param{
		{Name: "cpu1_ipc", Obs: ObsCPU1, Event: sim.EvInstrExecuted, Basis: sim.EvCycle},
		{Name: "cpu1_icache_miss", Obs: ObsCPU1, Event: sim.EvICacheMiss},
		{Name: "cpu1_dflash_read", Obs: ObsCPU1, Event: sim.EvDFlashRead},
		{Name: "cpu1_stall_any", Obs: ObsCPU1, Event: sim.EvStallCycle, Basis: sim.EvCycle},
		{Name: "cpu1_interrupt", Obs: ObsCPU1, Event: sim.EvInterruptEntry},
	}
}

// Spec configures a profiling session.
type Spec struct {
	// Resolution is the number of basis events per sample window (the
	// paper's "x": "Every x clock cycles, the number of executed
	// instructions is saved as a trace message ... where x is the
	// resolution").
	Resolution uint64
	Params     []Param

	// DAP, when non-nil, models the tool link draining the EMEM during
	// the run; nil reads the buffer out at the end (short runs that fit
	// on-chip).
	DAP *dap.Config

	// Framed hardens the trace path: messages travel in CRC/seq frames
	// (tmsg.Framer), the DAP uses the reliable NAK/retry drain protocol,
	// and the tool side decodes with a resynchronizing StreamDecoder that
	// quantifies losses as Gaps instead of failing. Costs the documented
	// <15 % framing overhead on the link.
	Framed bool

	// Fault attaches a fault-injection plan to the session (implies
	// Framed — an unframed stream cannot survive corruption).
	Fault *fault.Plan

	// Degrade enables the graceful-degradation controller: when the EMEM
	// fill level crosses the high watermark, every rate counter's
	// resolution is widened (fewer, coarser messages) until the level
	// recedes below the low watermark. Rates stay exact because each rate
	// message carries its actual basis.
	Degrade *DegradePolicy

	// Obs, when non-nil, instruments the whole pipeline — simulator clock,
	// EMEM ring, DAP link, MCDS emitter — with self-observability metrics.
	// Overhead is one atomic update per already-expensive operation; the
	// nil (obs.Disabled) registry costs one nil check per call site.
	Obs *obs.Registry

	// Tracer, when non-nil, records the session phases (run → drain →
	// decode → assemble) as wall-clock spans, exportable in Chrome
	// trace_event format.
	Tracer *obs.Tracer
}

// framed reports whether the hardened trace path is active.
func (sp *Spec) framed() bool { return sp.Framed || sp.Fault.Active() }

// DefaultAnchorEvery is the periodic all-source re-anchor interval of
// framed sessions, in cycles. After a loss the tool discards a source's
// delta-coded messages until its next Sync, so this bounds the worst-case
// recovery latency per series.
const DefaultAnchorEvery = 4096

// Session is a configured profiling run: an MCDS programmed from a Spec,
// attached to a SoC.
type Session struct {
	SoC  *soc.SoC
	MCDS *mcds.MCDS
	DAP  *dap.DAP
	Regs *mcds.RegFile // memory-mapped EEC access (monitor/MLI path)

	// Injector is the active fault injector (nil without Spec.Fault).
	Injector *fault.Injector
	// Degrader is the graceful-degradation controller (nil without
	// Spec.Degrade).
	Degrader *Degrader

	spec     Spec
	params   []Param
	counters []*mcds.Counter
	cpuObs   *mcds.CoreObs
	pcpObs   *mcds.CoreObs
	cpu1Obs  *mcds.CoreObs
}

// NewSession programs an MCDS for spec on s (which must be an ED variant —
// the production device has no EEC) and attaches it to the SoC clock.
func NewSession(s *soc.SoC, spec Spec) *Session {
	if s.EMEM == nil {
		panic("profiling: SoC has no EMEM (use an ED preset)")
	}
	if spec.Resolution == 0 {
		spec.Resolution = 1000
	}
	m := mcds.New("mcds", s.EMEM)
	sess := &Session{SoC: s, MCDS: m, spec: spec}
	sess.cpuObs = m.AddCore(s.CPU, 0)
	if s.PCP != nil {
		sess.pcpObs = m.AddCore(s.PCP.Core, 1)
	}
	if s.CPU1 != nil {
		sess.cpu1Obs = m.AddCore(s.CPU1, 7)
	}
	busObs := map[ObsSel]*mcds.BusObs{}
	getBus := func(sel ObsSel) *mcds.BusObs {
		if b, ok := busObs[sel]; ok {
			return b
		}
		var ctrs *sim.Counters
		var src uint8
		switch sel {
		case ObsDLMB:
			ctrs, src = s.DLMB.Counters(), 2
		case ObsPLMB:
			ctrs, src = s.PLMB.Counters(), 3
		case ObsSPB:
			ctrs, src = s.SPB.Counters(), 4
		case ObsFlash:
			ctrs, src = s.Flash.Counters(), 5
		case ObsDMA:
			if s.DMA == nil {
				panic("profiling: no DMA on this SoC")
			}
			ctrs, src = s.DMA.Counters(), 6
		default:
			panic("profiling: bad bus selector")
		}
		b := m.AddBus(ctrs, src)
		busObs[sel] = b
		return b
	}

	for i, p := range spec.Params {
		var obs mcds.Observer
		switch p.Obs {
		case ObsCPU:
			obs = sess.cpuObs
		case ObsPCP:
			if sess.pcpObs == nil {
				panic("profiling: no PCP on this SoC")
			}
			obs = sess.pcpObs
		case ObsCPU1:
			if sess.cpu1Obs == nil {
				panic("profiling: no second core on this SoC")
			}
			obs = sess.cpu1Obs
		default:
			obs = getBus(p.Obs)
		}
		basisEv := p.Basis
		if basisEv == sim.EvNone {
			basisEv = sim.EvInstrExecuted
		}
		// The basis is counted on the parameter's own core for per-core
		// rates (the paper's convention: each core's events relative to
		// its own executed instructions) and on CPU0 for bus-side taps.
		var basisObs mcds.Observer = sess.cpuObs
		switch p.Obs {
		case ObsPCP:
			if basisEv == sim.EvCycle {
				basisObs = obs
			}
		case ObsCPU1:
			basisObs = sess.cpu1Obs
		case ObsCPU:
			if basisEv == sim.EvCycle {
				basisObs = obs
			}
		}
		if id := i; id > 255 {
			panic("profiling: too many parameters")
		}
		c := mcds.NewRateCounter(p.Name, uint8(i),
			mcds.Tap{Obs: obs, Event: p.Event},
			mcds.Tap{Obs: basisObs, Event: basisEv},
			spec.Resolution)
		m.AddCounter(c)
		sess.counters = append(sess.counters, c)
		sess.params = append(sess.params, p)
	}

	if spec.framed() {
		m.EnableFraming()
		// Re-anchor every source periodically so the tool recovers every
		// series within one anchor period after a loss, not just the
		// flow-traced cores. The period bounds the recovery latency; the
		// cost is one small Sync per active source per period.
		m.AnchorEvery = DefaultAnchorEvery
	}

	s.Clock.Attach("mcds", m)
	if spec.Fault.Active() {
		sess.Injector = fault.New(*spec.Fault, s.EMEM)
		// Attached before the DAP: a stall window opened at cycle c
		// already blocks that cycle's drain.
		s.Clock.Attach("fault", sess.Injector)
	}
	if spec.Degrade != nil {
		sess.Degrader = newDegrader(*spec.Degrade, s.EMEM, sess.counters)
		s.Clock.Attach("degrade", sess.Degrader)
	}
	if spec.DAP != nil {
		sess.DAP = dap.New(*spec.DAP, s.EMEM)
		sess.DAP.Reliable = spec.framed()
		if sess.Injector != nil {
			sess.DAP.Fault = sess.Injector
		}
		s.Clock.Attach("dap", sess.DAP)
	}

	// The EEC register file is reachable from the TriCore over the data
	// bus (the paper's MLI/monitor access path) and from the tool over
	// the Back Bone Bus.
	sess.Regs = m.RegFile(mem.MCDSRegBase)
	s.DLMB.Map(mem.MCDSRegBase, sess.Regs.Size(), sess.Regs)

	if spec.Obs != nil {
		s.EMEM.Instrument(spec.Obs)
		s.Decoder.Instrument(spec.Obs)
		m.Instrument(spec.Obs)
		if sess.DAP != nil {
			sess.DAP.Instrument(spec.Obs)
		}
		s.Clock.Instrument(spec.Obs, 0)
	}
	return sess
}

// Runner is anything that can advance the simulated system by a number of
// cycles (workload.App implements it).
type Runner interface {
	RunFor(cycles uint64)
}

// RunCancelEvery is the cancellation granularity of Session.Run, in
// cycles: the context is polled between ticker batches of this size, so a
// canceled measurement stops within one batch and the session can still be
// drained for a partial profile.
const RunCancelEvery = 4096

// Run advances the application by the measurement horizon under a "run"
// pipeline span, so the measurement phase appears on the exported trace
// timeline alongside drain/decode/assemble. Cancellation via ctx is
// checked every RunCancelEvery cycles; on cancellation Run returns the
// context's error and the session remains drainable — Result still
// assembles the profile of the cycles that did run (partial flush).
func (sess *Session) Run(ctx context.Context, app Runner, cycles uint64) error {
	sp := sess.spec.Tracer.Start("run", "pipeline")
	defer sp.End()
	for done := uint64(0); done < cycles; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("profiling: run canceled after %d of %d cycles: %w",
				done, cycles, err)
		}
		chunk := cycles - done
		if chunk > RunCancelEvery {
			chunk = RunCancelEvery
		}
		app.RunFor(chunk)
		done += chunk
	}
	return nil
}

// CPUObs exposes the TriCore observation block for custom triggers.
func (sess *Session) CPUObs() *mcds.CoreObs { return sess.cpuObs }

// CPU1Obs exposes the second core's observation block (nil without one).
func (sess *Session) CPU1Obs() *mcds.CoreObs { return sess.cpu1Obs }

// Counter returns the counter measuring the named parameter.
func (sess *Session) Counter(name string) *mcds.Counter {
	for i, p := range sess.params {
		if p.Name == name {
			return sess.counters[i]
		}
	}
	return nil
}

// Sample is one rate window of one parameter.
type Sample struct {
	Cycle uint64 // window end
	Basis uint64
	Count uint64

	// Suspect marks a window that overlaps a trace-loss gap: the sample
	// itself is exact (its message arrived intact), but neighbouring
	// windows vanished, so analyses that reason about *when* things
	// happened should down-weight it.
	Suspect bool
}

// Rate returns count/basis.
func (s Sample) Rate() float64 {
	if s.Basis == 0 {
		return 0
	}
	return float64(s.Count) / float64(s.Basis)
}

// Series is the time line of one parameter.
type Series struct {
	Param   string
	Samples []Sample
}

// Mean returns the basis-weighted mean rate over the series.
func (se *Series) Mean() float64 {
	var b, c uint64
	for _, s := range se.Samples {
		b += s.Basis
		c += s.Count
	}
	if b == 0 {
		return 0
	}
	return float64(c) / float64(b)
}

// Min and Max return the extreme window rates.
func (se *Series) Min() float64 {
	if len(se.Samples) == 0 {
		return 0
	}
	m := se.Samples[0].Rate()
	for _, s := range se.Samples[1:] {
		if r := s.Rate(); r < m {
			m = r
		}
	}
	return m
}

// Max returns the highest window rate.
func (se *Series) Max() float64 {
	m := 0.0
	for _, s := range se.Samples {
		if r := s.Rate(); r > m {
			m = r
		}
	}
	return m
}

// Confidence returns the fraction of windows untouched by trace loss
// (1.0 = every sample clean).
func (se *Series) Confidence() float64 {
	if len(se.Samples) == 0 {
		return 1
	}
	clean := 0
	for _, s := range se.Samples {
		if !s.Suspect {
			clean++
		}
	}
	return float64(clean) / float64(len(se.Samples))
}

// Profile is the decoded result of a profiling run.
type Profile struct {
	App        string
	Cycles     uint64
	Instr      uint64
	Series     map[string]*Series
	MsgsLost   uint64 // messages dropped at the emitter (buffer overflow)
	TraceBytes uint64 // bytes the MCDS emitted

	// Framed-session loss accounting (zero on clean runs).
	MsgsDelivered uint64     // messages that reached the tool intact
	LinkLost      uint64     // messages lost or skipped between MCDS and tool
	Gaps          []tmsg.Gap // where in the timeline the losses sit
}

// Rate returns the run-aggregate rate of the named parameter.
func (p *Profile) Rate(name string) float64 {
	if se, ok := p.Series[name]; ok {
		return se.Mean()
	}
	return 0
}

// Names returns the parameter names, sorted.
func (p *Profile) Names() []string {
	var out []string
	for n := range p.Series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result drains remaining trace data, decodes every rate message and
// assembles the profile. Call after the measurement run.
//
// On framed sessions the stream is decoded by a resynchronizing decoder:
// decode never fails, losses are quantified in LinkLost and located in
// Gaps, and samples whose window overlaps a gap carry Suspect.
func (sess *Session) Result(appName string) (*Profile, error) {
	tr := sess.spec.Tracer

	// Drain: flush the partial frame (no-op unframed) and pull the
	// remaining buffer content to the tool side.
	drainSp := tr.Start("drain", "pipeline")
	sess.MCDS.FlushTrace()
	var raw []byte
	if sess.DAP != nil {
		sess.DAP.DrainAll()
	} else {
		raw = sess.SoC.EMEM.Drain(sess.SoC.EMEM.Level())
	}
	drainSp.End()

	// Decode: parse the received byte stream into messages.
	decodeSp := tr.Start("decode", "pipeline")
	var msgs []tmsg.Msg
	var stream *tmsg.StreamDecoder
	if sess.spec.framed() {
		if sess.DAP != nil {
			msgs, _ = sess.DAP.Decode()
			stream = sess.DAP.Stream()
		} else {
			stream = tmsg.NewStreamDecoder(true)
			msgs = stream.Feed(raw)
		}
		stream.Finalize(sess.MCDS.Framer().MsgsFramed)
	} else {
		if sess.DAP != nil {
			raw = sess.DAP.Received
		}
		var dec tmsg.Decoder
		var err error
		msgs, _, err = dec.DecodeAll(raw)
		if err != nil {
			decodeSp.End()
			return nil, fmt.Errorf("profiling: decode: %w", err)
		}
	}
	decodeSp.End()

	// Assemble: bucket rate messages into per-parameter series and apply
	// the loss accounting.
	assembleSp := tr.Start("assemble", "pipeline")
	defer assembleSp.End()
	p := &Profile{
		App:        appName,
		Cycles:     sess.SoC.CPU.Counters().Get(sim.EvCycle),
		Instr:      sess.SoC.CPU.Counters().Get(sim.EvInstrExecuted),
		Series:     make(map[string]*Series),
		MsgsLost:   sess.MCDS.MsgsLost,
		TraceBytes: sess.MCDS.BytesEmitted,
	}
	for _, prm := range sess.params {
		p.Series[prm.Name] = &Series{Param: prm.Name}
	}
	for _, m := range msgs {
		if m.Kind != tmsg.KindRate {
			continue
		}
		if int(m.CounterID) >= len(sess.params) {
			continue
		}
		se := p.Series[sess.params[m.CounterID].Name]
		se.Samples = append(se.Samples, Sample{Cycle: m.Cycle, Basis: m.Basis, Count: m.Count})
	}
	if stream != nil {
		p.MsgsDelivered = stream.Delivered
		p.LinkLost = stream.AccountedLost()
		p.Gaps = stream.Gaps
		for _, se := range p.Series {
			markSuspect(se, p.Gaps)
		}
	}
	return p, nil
}

// markSuspect flags every sample whose window (prev sample's end, own end]
// overlaps a loss gap.
func markSuspect(se *Series, gaps []tmsg.Gap) {
	prev := uint64(0)
	for i := range se.Samples {
		s := &se.Samples[i]
		for _, g := range gaps {
			end := g.EndCycle
			if g.Open() {
				end = ^uint64(0)
			}
			if g.StartCycle < s.Cycle && end > prev {
				s.Suspect = true
				break
			}
		}
		prev = s.Cycle
	}
}
