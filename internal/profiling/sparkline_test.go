package profiling

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func seriesOf(counts ...uint64) *Series {
	se := &Series{Param: "test"}
	for i, c := range counts {
		se.Samples = append(se.Samples, Sample{Cycle: uint64(i) * 1000, Basis: 100, Count: c})
	}
	return se
}

func TestSparklineEmptyAndZeroWidth(t *testing.T) {
	if s := (&Series{}).Sparkline(10); s != "" {
		t.Errorf("empty series = %q", s)
	}
	if s := seriesOf(1, 2, 3).Sparkline(0); s != "" {
		t.Errorf("zero width = %q", s)
	}
	if s := seriesOf(1, 2, 3).Sparkline(-4); s != "" {
		t.Errorf("negative width = %q", s)
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	// A constant rate has zero span: every column is the lowest glyph.
	s := seriesOf(50, 50, 50, 50).Sparkline(4)
	if s != strings.Repeat("▁", 4) {
		t.Errorf("flat = %q", s)
	}
}

func TestSparklineRising(t *testing.T) {
	s := seriesOf(0, 10, 20, 30, 40, 50, 60, 70).Sparkline(8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width = %d, want 8 (%q)", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotonic at %d: %q", i, s)
		}
	}
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("endpoints %q: min must map to ▁ and max to █", s)
	}
}

func TestSparklineWidthClamp(t *testing.T) {
	// More columns than samples: clamp to one column per sample.
	s := seriesOf(10, 90).Sparkline(48)
	if got := utf8.RuneCountInString(s); got != 2 {
		t.Errorf("clamped width = %d, want 2 (%q)", got, s)
	}
	if s != "▁█" {
		t.Errorf("two-point sparkline = %q, want ▁█", s)
	}
}

func TestSparklineBucketsAverage(t *testing.T) {
	// 8 samples into 4 columns: each column is the mean of its pair, so an
	// alternating series flattens to identical mid glyphs, while a step
	// series keeps its step.
	alt := seriesOf(0, 100, 0, 100, 0, 100, 0, 100).Sparkline(4)
	runes := []rune(alt)
	for i := 1; i < len(runes); i++ {
		if runes[i] != runes[0] {
			t.Errorf("alternating pairs should flatten: %q", alt)
		}
	}
	step := seriesOf(0, 0, 0, 0, 100, 100, 100, 100).Sparkline(4)
	if step != "▁▁██" {
		t.Errorf("step series = %q, want ▁▁██", step)
	}
}
