package profiling

import "strings"

// sparkGlyphs are the eight block heights of a terminal sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a fixed-width terminal sparkline:
// windows are bucketed into width columns and each column shows the
// bucket's mean rate scaled between the series minimum and maximum. It
// gives the engineer the paper's "parameters values over the time line"
// view directly in the terminal.
func (se *Series) Sparkline(width int) string {
	if width <= 0 || len(se.Samples) == 0 {
		return ""
	}
	if width > len(se.Samples) {
		width = len(se.Samples)
	}
	lo, hi := se.Min(), se.Max()
	span := hi - lo
	var b strings.Builder
	n := len(se.Samples)
	for col := 0; col < width; col++ {
		start := col * n / width
		end := (col + 1) * n / width
		if end <= start {
			end = start + 1
		}
		sum := 0.0
		for _, s := range se.Samples[start:end] {
			sum += s.Rate()
		}
		mean := sum / float64(end-start)
		idx := 0
		if span > 0 {
			idx = int((mean - lo) / span * float64(len(sparkGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkGlyphs) {
				idx = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}
