package profiling

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/tmsg"
)

// ExternalSamplingBytes models the conventional tool approach the paper
// contrasts with rate messages: "sampling by the external tool at least two
// long counters (executed instructions, measured event, etc.)". Each sample
// of each parameter costs two register reads over the debug link; a DAP
// register read moves a command byte, a 32-bit address and 32-bit data.
func ExternalSamplingBytes(nParams int, windows uint64) uint64 {
	const bytesPerRead = 1 + 4 + 4
	return windows * uint64(nParams) * 2 * bytesPerRead
}

// HitRatePct applies the paper's worked-example convention for deriving a
// cache hit percentage from a miss-rate window: "4 instruction cache
// misses during the last 100 executed instructions respond to an
// instruction cache hit rate of 96%" — i.e. 100 − misses-per-100-
// instructions.
func HitRatePct(s Sample) float64 {
	if s.Basis == 0 {
		return 100
	}
	return 100 - 100*float64(s.Count)/float64(s.Basis)
}

// HotWindows returns the sample windows of the named parameter whose rate
// is below lo (for IPC-style parameters) — the "interesting spaces of time
// where the system performance is not optimal" the engineer drills into.
func (p *Profile) HotWindows(name string, lo float64) []Sample {
	se, ok := p.Series[name]
	if !ok {
		return nil
	}
	var out []Sample
	for _, s := range se.Samples {
		if s.Rate() < lo {
			out = append(out, s)
		}
	}
	return out
}

// WindowsAbove returns the windows whose rate is at least hi (for miss- and
// contention-style parameters).
func (p *Profile) WindowsAbove(name string, hi float64) []Sample {
	se, ok := p.Series[name]
	if !ok {
		return nil
	}
	var out []Sample
	for _, s := range se.Samples {
		if s.Rate() >= hi {
			out = append(out, s)
		}
	}
	return out
}

// FuncCost is the instruction count attributed to one function.
type FuncCost struct {
	Name  string
	Instr uint64
}

// FunctionProfile attributes reconstructed program-trace instructions to
// the symbols of prog ("System Profiling is the analysis of the
// application software on function level"). It returns functions sorted by
// descending cost.
func FunctionProfile(msgs []tmsg.Msg, src uint8, prog *isa.Program) []FuncCost {
	pcs := mcds.Reconstruct(msgs, src)
	counts := make(map[string]uint64)
	for _, pc := range pcs {
		counts[prog.SymbolAt(pc)]++
	}
	out := make([]FuncCost, 0, len(counts))
	for name, n := range counts {
		out = append(out, FuncCost{Name: name, Instr: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instr != out[j].Instr {
			return out[i].Instr > out[j].Instr
		}
		return out[i].Name < out[j].Name
	})
	return out
}
