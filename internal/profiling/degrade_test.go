package profiling

import (
	"math"
	"testing"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/soc"
)

// tinyEMEM is a TC1797ED with the trace buffer shrunk until the standard
// parameter set at high resolution overwhelms it — the situation the
// degradation controller exists for.
func tinyEMEM() soc.Config {
	cfg := soc.TC1797().WithED()
	cfg.EMEMSize = 6 << 10
	cfg.EMEMOverlay = 0
	return cfg
}

// TestDegradationPreventsLoss runs the same workload twice through an
// undersized trace buffer and a slow link. Undegraded, the buffer
// overflows and messages vanish; with the controller, resolution widens
// under pressure, nothing is lost, and the aggregate rates still agree
// with the lossy run's because every sample carries its actual basis.
func TestDegradationPreventsLoss(t *testing.T) {
	link := dap.Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: 100}
	run := func(degrade *DegradePolicy) (*Profile, *Session) {
		s, app := buildApp(t, tinyEMEM(), stdSpec())
		sess := NewSession(s, Spec{
			Resolution: 200, Params: StandardParams(),
			DAP: &link, Degrade: degrade,
		})
		mustRun(t, sess, app, 400_000)
		p, err := sess.Result("app")
		if err != nil {
			t.Fatal(err)
		}
		return p, sess
	}

	lossy, _ := run(nil)
	if lossy.MsgsLost == 0 {
		t.Fatal("undegraded run lost nothing — buffer not undersized enough to test")
	}

	clean, sess := run(&DegradePolicy{})
	if clean.MsgsLost != 0 {
		t.Errorf("degraded run still lost %d messages", clean.MsgsLost)
	}
	d := sess.Degrader
	if d.Widenings == 0 || d.MaxFactorSeen <= 1 {
		t.Fatalf("controller never engaged: %+v", d)
	}
	if d.CyclesDegraded == 0 {
		t.Error("CyclesDegraded not accounted")
	}

	// Widened windows really are wider, and their rates are still exact:
	// the aggregate IPC of the continuous degraded profile must agree with
	// the lossy run's surviving samples (same deterministic execution).
	var maxBasis uint64
	for _, s := range clean.Series["ipc"].Samples {
		if s.Basis > maxBasis {
			maxBasis = s.Basis
		}
	}
	if maxBasis < 400 {
		t.Errorf("no widened window observed: max basis %d at resolution 200", maxBasis)
	}
	a, b := clean.Rate("ipc"), lossy.Rate("ipc")
	if math.Abs(a-b) > 0.05*b {
		t.Errorf("degraded aggregate IPC %v deviates from lossy run's %v", a, b)
	}
}

// TestFramedSessionMatchesUnframed: with no faults injected, the hardened
// path (framing + reliable DAP + resynchronizing decoder) must reproduce
// the plain session's samples exactly — the robustness machinery is free
// when nothing goes wrong, apart from the documented link-byte overhead.
func TestFramedSessionMatchesUnframed(t *testing.T) {
	link := dap.Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: 100}
	run := func(framed bool) (*Profile, *Session) {
		s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
		sess := NewSession(s, Spec{
			Resolution: 500, Params: StandardParams(),
			DAP: &link, Framed: framed,
		})
		mustRun(t, sess, app, 300_000)
		p, err := sess.Result("app")
		if err != nil {
			t.Fatal(err)
		}
		return p, sess
	}
	plain, _ := run(false)
	hard, sess := run(true)

	if hard.LinkLost != 0 || len(hard.Gaps) != 0 {
		t.Fatalf("clean framed run reports loss: %d messages, %d gaps",
			hard.LinkLost, len(hard.Gaps))
	}
	if hard.MsgsDelivered != sess.MCDS.Framer().MsgsFramed {
		t.Errorf("delivered %d of %d framed messages on a clean link",
			hard.MsgsDelivered, sess.MCDS.Framer().MsgsFramed)
	}
	for name, se := range plain.Series {
		he := hard.Series[name]
		if len(he.Samples) != len(se.Samples) {
			t.Fatalf("%s: %d framed samples vs %d plain", name, len(he.Samples), len(se.Samples))
		}
		for i := range se.Samples {
			if he.Samples[i] != se.Samples[i] {
				t.Fatalf("%s sample %d: framed %+v vs plain %+v",
					name, i, he.Samples[i], se.Samples[i])
			}
		}
		if he.Confidence() != 1 {
			t.Errorf("%s: confidence %v on a clean run", name, he.Confidence())
		}
	}

	// Framing overhead on the link is bounded and documented (<15 %).
	framer := sess.MCDS.Framer()
	overhead := float64(framer.BytesFramed-hard.TraceBytes) / float64(framer.BytesFramed)
	if overhead <= 0 || overhead >= 0.15 {
		t.Errorf("framing overhead %.1f%% outside (0, 15%%)", overhead*100)
	}
}

// TestFaultySessionQuantifiesLoss: under EMEM soft errors (which no retry
// can heal) the session must survive, bound the damage, and tell the
// truth about it: exact conservation, located gaps, suspect samples.
func TestFaultySessionQuantifiesLoss(t *testing.T) {
	link := dap.Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: 100}
	plan := fault.Plan{Name: "soft", Seed: 11, Mem: fault.MemPlan{FlipProb: 0.002}}
	s, app := buildApp(t, soc.TC1797().WithED(), stdSpec())
	sess := NewSession(s, Spec{
		Resolution: 500, Params: StandardParams(),
		DAP: &link, Fault: &plan,
	})
	mustRun(t, sess, app, 400_000)
	p, err := sess.Result("app")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Injector.BitFlips == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if p.LinkLost == 0 || len(p.Gaps) == 0 {
		t.Fatalf("corruption caused no accounted loss (flips %d)", sess.Injector.BitFlips)
	}
	st := sess.DAP.Stream()
	framed := sess.MCDS.Framer().MsgsFramed
	if st.Delivered+st.AccountedLost() != framed {
		t.Fatalf("conservation violated: %d delivered + %d lost != %d framed",
			st.Delivered, st.AccountedLost(), framed)
	}
	// The profile survives: every parameter still has samples, and the
	// contaminated windows are flagged.
	suspects := 0
	for _, name := range p.Names() {
		se := p.Series[name]
		if len(se.Samples) == 0 {
			t.Errorf("%s: series empty after faults", name)
		}
		for _, smp := range se.Samples {
			if smp.Suspect {
				suspects++
			}
		}
		if c := se.Confidence(); c <= 0 || c > 1 {
			t.Errorf("%s: confidence %v out of range", name, c)
		}
	}
	if suspects == 0 {
		t.Error("gaps present but no sample marked suspect")
	}
}
