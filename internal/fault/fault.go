// Package fault is the fault-injection harness: seeded, reproducible fault
// plans for the trace tool-link and buffer path. It models the three
// physical failure classes the hardened pipeline must survive:
//
//   - DAP link faults — bit corruption, dropped or truncated frames, and
//     stall/disconnect windows (a loose cable, a tool re-enumeration);
//   - EMEM soft errors — single-bit flips in the buffered trace bytes,
//     which retransmission cannot heal because the link re-reads the same
//     corrupted cell;
//   - trace-FIFO backpressure — jam windows during which the EMEM refuses
//     every append, exercising the MCDS overflow/re-anchor protocol.
//
// Every random decision flows from sim.RNG forks of a single plan seed, so
// a fault schedule replays bit-identically for a given (plan, seed) pair —
// the property that turns a chaos test into a regression test.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/emem"
	"repro/internal/sim"
)

// LinkPlan describes DAP transport faults. Probabilities are per frame
// transmission (Corrupt/Trunc/Drop) or per cycle (Stall).
type LinkPlan struct {
	CorruptProb float64 // flip 1–3 bits somewhere in the frame
	TruncProb   float64 // cut the frame short
	DropProb    float64 // frame vanishes entirely
	StallProb   float64 // per-cycle chance a stall window opens
	StallMin    uint64  // stall window length bounds, cycles
	StallMax    uint64
}

// MemPlan describes EMEM soft errors.
type MemPlan struct {
	// FlipProb is the per-cycle chance one bit of one currently buffered
	// trace byte flips.
	FlipProb float64
}

// FifoPlan describes trace-FIFO backpressure windows.
type FifoPlan struct {
	JamProb float64 // per-cycle chance a jam window opens
	JamMin  uint64  // jam window length bounds, cycles
	JamMax  uint64
}

// Plan is a composable fault scenario.
type Plan struct {
	Name string
	Seed uint64
	Link LinkPlan
	Mem  MemPlan
	Fifo FifoPlan
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Link != LinkPlan{} || p.Mem != MemPlan{} || p.Fifo != FifoPlan{}
}

// Injector executes a Plan against a running pipeline. It ticks on the
// simulation clock (stall/jam window bookkeeping, soft-error flips) and
// doubles as the DAP's LinkFault. All methods are deterministic in
// (plan, seed, cycle sequence).
type Injector struct {
	Plan Plan
	Emem *emem.EMEM

	linkRNG *sim.RNG // per-transmission decisions
	memRNG  *sim.RNG // soft-error flips
	winRNG  *sim.RNG // stall/jam window scheduling

	stallUntil uint64
	jamUntil   uint64

	// Statistics.
	FramesCorrupted uint64
	FramesTruncated uint64
	FramesDropped   uint64
	Stalls          uint64
	StallCycles     uint64
	BitFlips        uint64
	Jams            uint64
	JamCycles       uint64
}

// New builds an injector for plan targeting e (which may be nil when the
// plan has no Mem or Fifo component).
func New(plan Plan, e *emem.EMEM) *Injector {
	root := sim.NewRNG(plan.Seed)
	return &Injector{
		Plan:    plan,
		Emem:    e,
		linkRNG: root.Fork(1),
		memRNG:  root.Fork(2),
		winRNG:  root.Fork(3),
	}
}

// Tick implements sim.Ticker: advance fault windows and inject soft
// errors. Attach it to the clock before the DAP so a stall window opened
// at cycle c already blocks that cycle's drain.
func (in *Injector) Tick(cycle uint64) {
	p := &in.Plan
	if p.Link.StallProb > 0 && cycle >= in.stallUntil && in.winRNG.Bool(p.Link.StallProb) {
		n := windowLen(in.winRNG, p.Link.StallMin, p.Link.StallMax)
		in.stallUntil = cycle + n
		in.Stalls++
		in.StallCycles += n
	}
	if p.Fifo.JamProb > 0 && in.Emem != nil {
		if cycle >= in.jamUntil && in.winRNG.Bool(p.Fifo.JamProb) {
			n := windowLen(in.winRNG, p.Fifo.JamMin, p.Fifo.JamMax)
			in.jamUntil = cycle + n
			in.Jams++
			in.JamCycles += n
		}
		in.Emem.Backpressure = cycle < in.jamUntil
	}
	if p.Mem.FlipProb > 0 && in.Emem != nil && in.Emem.Level() > 0 &&
		in.memRNG.Bool(p.Mem.FlipProb) {
		i := uint32(in.memRNG.Intn(int(in.Emem.Level())))
		in.Emem.CorruptBit(i, uint8(in.memRNG.Intn(8)))
		in.BitFlips++
	}
}

func windowLen(rng *sim.RNG, lo, hi uint64) uint64 {
	if lo == 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + uint64(rng.Intn(int(hi-lo)+1))
}

// Down implements dap.LinkFault.
func (in *Injector) Down(cycle uint64) bool { return cycle < in.stallUntil }

// Transmit implements dap.LinkFault: possibly drop, truncate or corrupt
// the frame. The input slice is never mutated.
func (in *Injector) Transmit(_ uint64, frame []byte) ([]byte, bool) {
	p := &in.Plan.Link
	if p.DropProb > 0 && in.linkRNG.Bool(p.DropProb) {
		in.FramesDropped++
		return nil, false
	}
	if p.TruncProb > 0 && in.linkRNG.Bool(p.TruncProb) {
		in.FramesTruncated++
		n := in.linkRNG.Intn(len(frame))
		c := make([]byte, n)
		copy(c, frame[:n])
		return c, true
	}
	if p.CorruptProb > 0 && in.linkRNG.Bool(p.CorruptProb) {
		in.FramesCorrupted++
		c := make([]byte, len(frame))
		copy(c, frame)
		for k := in.linkRNG.Range(1, 3); k > 0; k-- {
			c[in.linkRNG.Intn(len(c))] ^= 1 << in.linkRNG.Intn(8)
		}
		return c, true
	}
	return frame, true
}

// Scenarios returns the named preset plans, all derived from seed.
func Scenarios(seed uint64) []Plan {
	return []Plan{
		{Name: "clean", Seed: seed},
		{Name: "noisy-link", Seed: seed, Link: LinkPlan{CorruptProb: 0.02}},
		{Name: "flaky-cable", Seed: seed, Link: LinkPlan{
			CorruptProb: 0.005, DropProb: 0.002,
			StallProb: 0.0002, StallMin: 500, StallMax: 5_000}},
		{Name: "soft-errors", Seed: seed, Mem: MemPlan{FlipProb: 0.0005}},
		{Name: "fifo-jam", Seed: seed, Fifo: FifoPlan{
			JamProb: 0.0005, JamMin: 100, JamMax: 2_000}},
		{Name: "everything", Seed: seed,
			Link: LinkPlan{CorruptProb: 0.01, TruncProb: 0.002, DropProb: 0.002,
				StallProb: 0.0001, StallMin: 200, StallMax: 2_000},
			Mem:  MemPlan{FlipProb: 0.0002},
			Fifo: FifoPlan{JamProb: 0.0002, JamMin: 100, JamMax: 1_000}},
	}
}

// Scenario returns the preset plan with the given name, or ok=false.
func Scenario(name string, seed uint64) (Plan, bool) {
	for _, p := range Scenarios(seed) {
		if p.Name == name {
			return p, true
		}
	}
	return Plan{}, false
}

// Parse builds a Plan from a -faults command-line spec: either a preset
// scenario name ("flaky-cable") or a comma-separated k=v list, e.g.
//
//	corrupt=0.01,drop=0.002,stall=0.0001,stallmin=200,stallmax=2000,
//	trunc=0.001,flip=0.0005,jam=0.0002,jammin=100,jammax=1000
func Parse(spec string, seed uint64) (Plan, error) {
	if p, ok := Scenario(spec, seed); ok {
		return p, nil
	}
	p := Plan{Name: spec, Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is neither a scenario (%s) nor k=v", kv, scenarioNames())
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value in %q: %v", kv, err)
		}
		switch strings.ToLower(k) {
		case "corrupt":
			p.Link.CorruptProb = f
		case "trunc":
			p.Link.TruncProb = f
		case "drop":
			p.Link.DropProb = f
		case "stall":
			p.Link.StallProb = f
		case "stallmin":
			p.Link.StallMin = uint64(f)
		case "stallmax":
			p.Link.StallMax = uint64(f)
		case "flip":
			p.Mem.FlipProb = f
		case "jam":
			p.Fifo.JamProb = f
		case "jammin":
			p.Fifo.JamMin = uint64(f)
		case "jammax":
			p.Fifo.JamMax = uint64(f)
		default:
			return Plan{}, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	return p, nil
}

func scenarioNames() string {
	var names []string
	for _, p := range Scenarios(0) {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
