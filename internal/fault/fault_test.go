package fault

import (
	"bytes"
	"testing"

	"repro/internal/emem"
)

// run drives one injector through a fixed cycle/transmit schedule and
// returns a fingerprint of everything observable: stats, transmitted
// bytes, and the EMEM content.
func run(p Plan) ([]byte, Injector) {
	e := emem.New(512, 0, 1)
	in := New(p, e)
	frame := []byte{0xA5, 1, 4, 0, 0, 0, 0, 10, 20, 30, 40, 0x5C}
	var out []byte
	for cy := uint64(0); cy < 20_000; cy++ {
		if cy%7 == 0 {
			e.AppendTrace([]byte{byte(cy), byte(cy >> 8)})
		}
		in.Tick(cy)
		if cy%50 == 0 {
			if b, ok := in.Transmit(cy, frame); ok {
				out = append(out, b...)
			}
			out = append(out, '|')
		}
		if cy%31 == 0 {
			out = append(out, e.Drain(4)...)
		}
	}
	return out, *in
}

// TestInjectorDeterminism: the same (plan, seed) replays bit-identically;
// a different seed produces a different schedule.
func TestInjectorDeterminism(t *testing.T) {
	plan, _ := Scenario("everything", 42)
	o1, s1 := run(plan)
	o2, s2 := run(plan)
	if !bytes.Equal(o1, o2) {
		t.Fatal("same plan+seed produced different byte streams")
	}
	s1.linkRNG, s1.memRNG, s1.winRNG = nil, nil, nil
	s2.linkRNG, s2.memRNG, s2.winRNG = nil, nil, nil
	s1.Emem, s2.Emem = nil, nil
	if s1 != s2 {
		t.Fatalf("same plan+seed produced different stats:\n%+v\n%+v", s1, s2)
	}

	plan2 := plan
	plan2.Seed = 43
	o3, _ := run(plan2)
	if bytes.Equal(o1, o3) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestInjectorInjectsSomething: every non-clean preset actually fires under
// a schedule long enough to hit its probabilities.
func TestInjectorInjectsSomething(t *testing.T) {
	for _, plan := range Scenarios(7) {
		_, s := run(plan)
		fired := s.FramesCorrupted + s.FramesTruncated + s.FramesDropped +
			s.Stalls + s.BitFlips + s.Jams
		if plan.Name == "clean" {
			if fired != 0 {
				t.Errorf("clean plan injected %d faults", fired)
			}
			continue
		}
		if fired == 0 {
			t.Errorf("scenario %q injected nothing in 20k cycles", plan.Name)
		}
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("flaky-cable", 9)
	if err != nil || p.Link.DropProb == 0 {
		t.Fatalf("scenario lookup failed: %+v, %v", p, err)
	}
	p, err = Parse("corrupt=0.01,stall=0.001,stallmin=10,stallmax=90,jam=0.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Link.CorruptProb != 0.01 || p.Link.StallMin != 10 ||
		p.Link.StallMax != 90 || p.Fifo.JamProb != 0.5 || !p.Active() {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if _, err := Parse("bogus=1", 9); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := Parse("no-such-scenario", 9); err == nil {
		t.Fatal("bare unknown scenario accepted")
	}
	if (&Plan{}).Active() || (*Plan)(nil).Active() {
		t.Fatal("empty plan reports active")
	}
}
