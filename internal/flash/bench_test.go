package flash

import (
	"testing"

	"repro/internal/bus"
)

func BenchmarkBufferHit(b *testing.B) {
	f := New(DefaultConfig())
	req := &bus.Request{Addr: 0x8000_0000, Data: make([]byte, 4)}
	f.CodePort().Access(0, req)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.CodePort().Access(uint64(i)+100, req)
	}
}

func BenchmarkSequentialFetchStream(b *testing.B) {
	f := New(DefaultConfig())
	req := &bus.Request{Addr: 0x8000_0000, Data: make([]byte, 8)}
	now := uint64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req.Addr = 0x8000_0000 + uint32(i%(1<<18))*8
		lat := f.CodePort().Access(now, req)
		now += lat + 1
	}
}
