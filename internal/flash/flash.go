// Package flash models the embedded program flash (the PMU of the TriCore
// SoCs) — the component Section 4 of the paper identifies as the main lever
// for CPU system performance: "Due to the high amount of CPU access to the
// flash (data and code) the path from CPU to flash is the main lever to
// increase the CPU system performance for the real application."
//
// The model covers the behaviours the paper enumerates as making this path
// complex: multi-cycle array reads (wait states), independent code and data
// ports each with a set of line (read/prefetch) buffers, sequential
// prefetching on the code port, and arbitration between the two ports for
// the single flash array.
package flash

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Port identifiers.
const (
	PortCode = 0 // instruction fetches
	PortData = 1 // CPU/DMA data reads
)

// ArbPolicy selects how the two ports share the flash array.
type ArbPolicy uint8

// Arbitration policies for the flash array.
const (
	// ArbFCFS serves array requests strictly in arrival order; an
	// in-flight prefetch always completes.
	ArbFCFS ArbPolicy = iota
	// ArbCodePriority lets a demand read from the code port abort an
	// in-flight speculative prefetch issued on behalf of the data port
	// (and vice versa never happens).
	ArbCodePriority
	// ArbDataPriority lets a demand read from the data port abort an
	// in-flight code-side prefetch. This reflects designs that favour
	// lookup-table latency over fetch streaming.
	ArbDataPriority
)

// String names the policy.
func (p ArbPolicy) String() string {
	switch p {
	case ArbFCFS:
		return "fcfs"
	case ArbCodePriority:
		return "code-priority"
	case ArbDataPriority:
		return "data-priority"
	}
	return "arb-unknown"
}

// Config parameterizes a flash instance.
type Config struct {
	Name        string
	Base        uint32 // physical base address of the array
	Size        uint32 // array size in bytes
	LineBytes   uint32 // width of one array read (buffer line), power of two
	WaitStates  uint64 // cycles per array read
	WriteCycles uint64 // cycles per (abstracted) program operation
	CodeBuffers int    // line buffers on the code port
	DataBuffers int    // line buffers on the data port
	Prefetch    bool   // sequential next-line prefetch on the code port
	Policy      ArbPolicy
}

// DefaultConfig resembles the TC1797 PMU: 4 MB array, 256-bit (32-byte)
// reads, and a small buffer set per port.
func DefaultConfig() Config {
	return Config{
		Name:        "pmu",
		Base:        0x8000_0000,
		Size:        4 << 20,
		LineBytes:   32,
		WaitStates:  5,
		WriteCycles: 200,
		CodeBuffers: 2,
		DataBuffers: 2,
		Prefetch:    true,
		Policy:      ArbCodePriority,
	}
}

type lineBuf struct {
	valid    bool
	tag      uint32 // line number
	readyAt  uint64 // cycle at which the content is usable
	lastUse  uint64 // for LRU
	byPrefex bool   // filled by prefetch (for hit attribution)
}

type port struct {
	bufs []lineBuf
}

func (p *port) lookup(line uint32) *lineBuf {
	for i := range p.bufs {
		if p.bufs[i].valid && p.bufs[i].tag == line {
			return &p.bufs[i]
		}
	}
	return nil
}

func (p *port) victim() *lineBuf {
	v := &p.bufs[0]
	for i := range p.bufs {
		b := &p.bufs[i]
		if !b.valid {
			return b
		}
		if b.lastUse < v.lastUse {
			v = b
		}
	}
	return v
}

// Flash is the embedded flash module with two bus ports sharing one array.
// The code port is exposed with CodePort() on the program LMB and the data
// port with DataPort() on the data LMB.
type Flash struct {
	cfg   Config
	data  []byte
	ports [2]port

	arrayBusyUntil uint64
	arrayHolder    int  // port holding the array until arrayBusyUntil
	prefetchInFly  bool // current array occupancy is a speculative prefetch
	prefetchTarget *lineBuf
	prefetchLine   uint32

	counters sim.Counters

	// OnWrite, when set, is called after any operation that changes array
	// content — host-side Load and bus-side program writes — with the
	// absolute address and length of the written window. The SoC assembly
	// uses it to invalidate decoded-code caches (see isa.Decoder).
	OnWrite func(addr uint32, n int)

	// Statistics beyond the generic event counters.
	ArrayReads      uint64
	PrefetchIssued  uint64
	PrefetchAborted uint64
	PrefetchUseful  uint64
}

// New creates a flash module. The array content is zero; use Load to place
// a program image.
func New(cfg Config) *Flash {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("flash: LineBytes must be a power of two")
	}
	f := &Flash{cfg: cfg, data: make([]byte, cfg.Size)}
	f.ports[PortCode].bufs = make([]lineBuf, max(1, cfg.CodeBuffers))
	f.ports[PortData].bufs = make([]lineBuf, max(1, cfg.DataBuffers))
	return f
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Config returns the configuration the flash was built with.
func (f *Flash) Config() Config { return f.cfg }

// Counters exposes the flash event counters for MCDS taps.
func (f *Flash) Counters() *sim.Counters { return &f.counters }

// Load copies image into the array at physical address addr (no timing;
// used at system initialization).
func (f *Flash) Load(addr uint32, image []byte) {
	off := addr - f.cfg.Base
	if int(off)+len(image) > len(f.data) {
		panic(fmt.Sprintf("flash %s: load beyond array (%#x+%d)", f.cfg.Name, addr, len(image)))
	}
	copy(f.data[off:], image)
	if f.OnWrite != nil {
		f.OnWrite(addr, len(image))
	}
}

// ReadDirect returns the raw array content (no timing; used by trace
// decoders that need the program image).
func (f *Flash) ReadDirect(addr uint32, p []byte) {
	off := addr - f.cfg.Base
	copy(p, f.data[off:])
}

// CodePort returns the bus target for instruction fetches.
func (f *Flash) CodePort() bus.Target { return flashPort{f: f, port: PortCode} }

// DataPort returns the bus target for data accesses.
func (f *Flash) DataPort() bus.Target { return flashPort{f: f, port: PortData} }

type flashPort struct {
	f    *Flash
	port int
}

func (fp flashPort) Name() string {
	if fp.port == PortCode {
		return fp.f.cfg.Name + ".code"
	}
	return fp.f.cfg.Name + ".data"
}

func (fp flashPort) Access(grant uint64, req *bus.Request) uint64 {
	return fp.f.access(grant, fp.port, req)
}

// access implements the shared-array timing. It returns device latency in
// cycles beyond the bus transfer.
func (f *Flash) access(grant uint64, portID int, req *bus.Request) uint64 {
	off := req.Addr - f.cfg.Base
	if int(off)+len(req.Data) > len(f.data) {
		panic(fmt.Sprintf("flash %s: access beyond array (%#x)", f.cfg.Name, req.Addr))
	}
	if req.Write {
		// Abstracted program operation: occupies the array for WriteCycles.
		start := f.acquireArray(grant, portID)
		copy(f.data[off:], req.Data)
		if f.OnWrite != nil {
			f.OnWrite(req.Addr, len(req.Data))
		}
		done := start + f.cfg.WriteCycles
		f.holdArray(done, portID)
		return done - grant
	}

	line := off / f.cfg.LineBytes
	p := &f.ports[portID]
	readyAt := grant
	if b := p.lookup(line); b != nil {
		// Buffer hit. A hit on a still-in-flight prefetch line waits for
		// the array read to complete but needs no new array access.
		b.lastUse = grant
		if b.readyAt > grant {
			readyAt = b.readyAt
		}
		if b.byPrefex {
			f.PrefetchUseful++
			b.byPrefex = false // count each prefetched line once
			if portID == PortCode {
				f.counters.Inc(sim.EvIPrefetchHit)
			} else {
				f.counters.Inc(sim.EvDPrefetchHit)
			}
		}
	} else {
		// Demand array read.
		start := f.acquireArray(grant, portID)
		readyAt = start + f.cfg.WaitStates
		f.ArrayReads++
		b := p.victim()
		*b = lineBuf{valid: true, tag: line, readyAt: readyAt, lastUse: grant}
		f.holdArray(readyAt, portID)
	}

	// Sequential prefetch on the code port: once the demanded line is out,
	// speculatively read the next line if the array is free at that point.
	if portID == PortCode && f.cfg.Prefetch {
		f.maybePrefetch(line+1, readyAt)
	}

	copy(req.Data, f.data[off:])
	return readyAt - grant
}

// acquireArray returns the earliest cycle at which portID may start an
// array operation at or after grant, applying the abort-prefetch policy and
// counting port conflicts.
func (f *Flash) acquireArray(grant uint64, portID int) uint64 {
	if f.arrayBusyUntil <= grant {
		return grant
	}
	// Array busy. May this port abort an in-flight speculative prefetch?
	abort := false
	if f.prefetchInFly {
		switch f.cfg.Policy {
		case ArbCodePriority:
			abort = portID == PortCode
		case ArbDataPriority:
			abort = portID == PortData
		}
		// A port never needs to abort its own prefetch: a demand read for
		// the prefetched line is a buffer hit, and a different line from
		// the same port aborts too (demand beats speculation).
		if portID == f.arrayHolder {
			abort = true
		}
	}
	if abort {
		f.PrefetchAborted++
		if f.prefetchTarget != nil {
			f.prefetchTarget.valid = false
			f.prefetchTarget = nil
		}
		f.prefetchInFly = false
		return grant
	}
	if f.arrayHolder != portID {
		f.counters.Inc(sim.EvFlashPortConflict)
	}
	return f.arrayBusyUntil
}

func (f *Flash) holdArray(until uint64, portID int) {
	f.arrayBusyUntil = until
	f.arrayHolder = portID
	f.prefetchInFly = false
	f.prefetchTarget = nil
}

func (f *Flash) maybePrefetch(line uint32, from uint64) {
	if int64(line)*int64(f.cfg.LineBytes) >= int64(len(f.data)) {
		return
	}
	p := &f.ports[PortCode]
	if p.lookup(line) != nil {
		return // already buffered or being prefetched
	}
	if f.arrayBusyUntil > from {
		return // array claimed again meanwhile; skip speculation
	}
	f.PrefetchIssued++
	readyAt := from + f.cfg.WaitStates
	b := p.victim()
	*b = lineBuf{valid: true, tag: line, readyAt: readyAt, lastUse: from, byPrefex: true}
	f.arrayBusyUntil = readyAt
	f.arrayHolder = PortCode
	f.prefetchInFly = true
	f.prefetchTarget = b
	f.prefetchLine = line
}
