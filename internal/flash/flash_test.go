package flash

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Size = 1 << 16
	cfg.WaitStates = 5
	cfg.CodeBuffers = 2
	cfg.DataBuffers = 1
	return cfg
}

func read(t *testing.T, port bus.Target, now uint64, addr uint32) uint64 {
	t.Helper()
	req := &bus.Request{Addr: addr, Data: make([]byte, 4)}
	return port.Access(now, req)
}

func TestLoadAndReadBack(t *testing.T) {
	f := New(testCfg())
	f.Load(0x8000_0010, []byte{1, 2, 3, 4})
	req := &bus.Request{Addr: 0x8000_0010, Data: make([]byte, 4)}
	f.DataPort().Access(0, req)
	if req.Data[0] != 1 || req.Data[3] != 4 {
		t.Errorf("read back %v", req.Data)
	}
}

func TestDemandMissPaysWaitStates(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = false
	f := New(cfg)
	if lat := read(t, f.CodePort(), 100, 0x8000_0000); lat != cfg.WaitStates {
		t.Errorf("miss latency = %d, want %d", lat, cfg.WaitStates)
	}
	// Same line again: buffer hit, zero device latency.
	if lat := read(t, f.CodePort(), 200, 0x8000_0004); lat != 0 {
		t.Errorf("buffer hit latency = %d, want 0", lat)
	}
	if f.ArrayReads != 1 {
		t.Errorf("array reads = %d, want 1", f.ArrayReads)
	}
}

func TestPrefetchHidesSequentialLatency(t *testing.T) {
	f := New(testCfg()) // prefetch on
	lat0 := read(t, f.CodePort(), 0, 0x8000_0000)
	if lat0 != 5 {
		t.Fatalf("first fetch latency = %d", lat0)
	}
	// Next line was prefetched during/after the first read; accessing it
	// late enough must be a free buffer hit.
	if lat := read(t, f.CodePort(), 50, 0x8000_0020); lat != 0 {
		t.Errorf("prefetched line latency = %d, want 0", lat)
	}
	if f.PrefetchIssued == 0 || f.PrefetchUseful == 0 {
		t.Errorf("prefetch stats: issued=%d useful=%d", f.PrefetchIssued, f.PrefetchUseful)
	}
	if f.Counters().Get(sim.EvIPrefetchHit) != 1 {
		t.Errorf("EvIPrefetchHit = %d", f.Counters().Get(sim.EvIPrefetchHit))
	}
}

func TestPrefetchInFlightPartialHit(t *testing.T) {
	f := New(testCfg())
	read(t, f.CodePort(), 0, 0x8000_0000) // demand done at 5, prefetch of line 1 done at 10
	// Request line 1 at cycle 6: prefetch in flight, ready at 10 → latency 4.
	if lat := read(t, f.CodePort(), 6, 0x8000_0020); lat != 4 {
		t.Errorf("in-flight prefetch hit latency = %d, want 4", lat)
	}
}

func TestPortConflictCounted(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = false
	f := New(cfg)
	// Code port occupies the array [0,5); data port arrives at 2.
	read(t, f.CodePort(), 0, 0x8000_0000)
	lat := read(t, f.DataPort(), 2, 0x8000_1000)
	if lat != 3+5 { // waits 3 until array free, then 5 wait states
		t.Errorf("conflicting data read latency = %d, want 8", lat)
	}
	if f.Counters().Get(sim.EvFlashPortConflict) != 1 {
		t.Errorf("conflict count = %d", f.Counters().Get(sim.EvFlashPortConflict))
	}
}

func TestCodePriorityAbortsPrefetchForDemand(t *testing.T) {
	cfg := testCfg()
	cfg.Policy = ArbCodePriority
	f := New(cfg)
	read(t, f.CodePort(), 0, 0x8000_0000) // prefetch of line 1 in flight until 10
	// Demand read of a *different* line from the code port at 6: policy
	// allows aborting the speculative prefetch → starts immediately.
	if lat := read(t, f.CodePort(), 6, 0x8000_1000); lat != 5 {
		t.Errorf("demand-after-prefetch latency = %d, want 5", lat)
	}
	if f.PrefetchAborted != 1 {
		t.Errorf("aborted = %d, want 1", f.PrefetchAborted)
	}
	// The aborted prefetch line must not be usable.
	if lat := read(t, f.CodePort(), 50, 0x8000_0020); lat != 5 {
		t.Errorf("aborted prefetch line must re-read, latency = %d", lat)
	}
}

func TestFCFSDataWaitsForPrefetch(t *testing.T) {
	cfg := testCfg()
	cfg.Policy = ArbFCFS
	f := New(cfg)
	read(t, f.CodePort(), 0, 0x8000_0000) // prefetch holds array until 10
	lat := read(t, f.DataPort(), 6, 0x8000_1000)
	if lat != 4+5 { // waits until 10, then 5
		t.Errorf("FCFS data latency = %d, want 9", lat)
	}
	if f.PrefetchAborted != 0 {
		t.Error("FCFS must not abort prefetches")
	}
}

func TestDataPriorityAbortsPrefetch(t *testing.T) {
	cfg := testCfg()
	cfg.Policy = ArbDataPriority
	f := New(cfg)
	read(t, f.CodePort(), 0, 0x8000_0000)
	if lat := read(t, f.DataPort(), 6, 0x8000_1000); lat != 5 {
		t.Errorf("data-priority latency = %d, want 5", lat)
	}
	if f.PrefetchAborted != 1 {
		t.Errorf("aborted = %d", f.PrefetchAborted)
	}
}

func TestBufferLRUEviction(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = false
	cfg.CodeBuffers = 2
	f := New(cfg)
	read(t, f.CodePort(), 0, 0x8000_0000)  // line 0
	read(t, f.CodePort(), 10, 0x8000_0020) // line 1
	read(t, f.CodePort(), 20, 0x8000_0000) // touch line 0 (now MRU)
	read(t, f.CodePort(), 30, 0x8000_0040) // line 2 evicts line 1
	if lat := read(t, f.CodePort(), 40, 0x8000_0000); lat != 0 {
		t.Errorf("line 0 must survive, latency = %d", lat)
	}
	if lat := read(t, f.CodePort(), 50, 0x8000_0020); lat != 5 {
		t.Errorf("line 1 must be evicted, latency = %d", lat)
	}
}

func TestWriteOccupiesArray(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = false
	f := New(cfg)
	req := &bus.Request{Addr: 0x8000_0000, Data: []byte{9, 9, 9, 9}, Write: true}
	if lat := f.DataPort().Access(0, req); lat != cfg.WriteCycles {
		t.Errorf("write latency = %d, want %d", lat, cfg.WriteCycles)
	}
	// A read right after must wait for the program operation.
	if lat := read(t, f.CodePort(), 1, 0x8000_1000); lat != cfg.WriteCycles-1+5 {
		t.Errorf("read-after-write latency = %d", lat)
	}
	rb := make([]byte, 4)
	f.ReadDirect(0x8000_0000, rb)
	if rb[0] != 9 {
		t.Error("write content lost")
	}
}

func TestPortsAreIndependentBuffers(t *testing.T) {
	cfg := testCfg()
	cfg.Prefetch = false
	f := New(cfg)
	read(t, f.CodePort(), 0, 0x8000_0000)
	// Same line from the data port is a separate buffer set → array read.
	if lat := read(t, f.DataPort(), 20, 0x8000_0000); lat != 5 {
		t.Errorf("data port must have own buffers, latency = %d", lat)
	}
}

func TestPolicyStringsAndConfig(t *testing.T) {
	for p, want := range map[ArbPolicy]string{ArbFCFS: "fcfs",
		ArbCodePriority: "code-priority", ArbDataPriority: "data-priority",
		ArbPolicy(9): "arb-unknown"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q", p, got)
		}
	}
	cfg := testCfg()
	f := New(cfg)
	if f.Config().Size != cfg.Size {
		t.Error("Config accessor wrong")
	}
	if f.CodePort().Name() == "" || f.DataPort().Name() == "" {
		t.Error("port names empty")
	}
	if f.CodePort().Name() == f.DataPort().Name() {
		t.Error("port names must differ")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cfg := testCfg()
	cfg.LineBytes = 24
	defer func() {
		if recover() == nil {
			t.Error("non-pow2 line must panic")
		}
	}()
	New(cfg)
}

func TestOutOfArrayAccessPanics(t *testing.T) {
	f := New(testCfg())
	defer func() {
		if recover() == nil {
			t.Error("access beyond array must panic")
		}
	}()
	read(t, f.DataPort(), 0, 0x8000_0000+f.Config().Size)
}
