package mcds

import (
	"fmt"

	"repro/internal/tmsg"
	"repro/internal/tricore"
)

// CompKind selects what a comparator matches on.
type CompKind uint8

// Comparator kinds.
const (
	// CompPC matches retired instructions whose PC lies in [Lo, Hi).
	CompPC CompKind = iota
	// CompAddr matches data accesses whose effective address lies in
	// [Lo, Hi), optionally filtered by direction.
	CompAddr
	// CompData matches data accesses transferring a value in [Lo, Hi].
	CompData
)

// RW filters comparator matches by access direction.
type RW uint8

// Direction filters.
const (
	RWBoth RW = iota
	RWRead
	RWWrite
)

// Comparator observes one core's retire stream and asserts its signal on a
// match within the current cycle. It can also emit a trigger message per
// match (watchpoint messages).
type Comparator struct {
	Name string
	Core *CoreObs
	Kind CompKind
	Lo   uint32
	Hi   uint32
	Dir  RW

	Signal      Signal // asserted on match (may be NoSignal)
	EmitTrigger bool
	TriggerID   uint8

	Matches uint64
}

// AddComparator registers cmp.
func (m *MCDS) AddComparator(cmp *Comparator) *Comparator {
	if cmp.Core == nil {
		panic(fmt.Sprintf("mcds: comparator %s has no core", cmp.Name))
	}
	m.comps = append(m.comps, cmp)
	return cmp
}

func (cmp *Comparator) match(re *tricore.Retired) bool {
	switch cmp.Kind {
	case CompPC:
		return re.PC >= cmp.Lo && re.PC < cmp.Hi
	case CompAddr:
		if !re.HasMem {
			return false
		}
		if cmp.Dir == RWRead && re.Write || cmp.Dir == RWWrite && !re.Write {
			return false
		}
		return re.EA >= cmp.Lo && re.EA < cmp.Hi
	case CompData:
		return re.HasMem && re.Data >= cmp.Lo && re.Data <= cmp.Hi
	}
	return false
}

func (cmp *Comparator) eval(m *MCDS, retired []tricore.Retired, cycle uint64) {
	for i := range retired {
		if cmp.match(&retired[i]) {
			cmp.Matches++
			m.set(cmp.Signal)
			if cmp.EmitTrigger {
				msg := tmsg.Msg{Kind: tmsg.KindTrigger, Src: cmp.Core.id,
					Cycle: retired[i].Cycle, TriggerID: cmp.TriggerID}
				m.emit(&msg)
			}
		}
	}
}

// Term is a conjunction: all of All asserted and none of None.
type Term struct {
	All  []Signal
	None []Signal
}

// Expr is a Boolean condition over the signal cross-connect in disjunctive
// normal form — the "very complex conditions using Boolean expressions" of
// the paper's trigger unit. An empty Expr is never true.
type Expr struct {
	Any []Term
}

// On builds the expression "signal s is asserted".
func On(s Signal) Expr { return Expr{Any: []Term{{All: []Signal{s}}}} }

// AllOf builds the conjunction of the given signals.
func AllOf(ss ...Signal) Expr { return Expr{Any: []Term{{All: ss}}} }

// AnyOf builds the disjunction of the given signals.
func AnyOf(ss ...Signal) Expr {
	e := Expr{}
	for _, s := range ss {
		e.Any = append(e.Any, Term{All: []Signal{s}})
	}
	return e
}

// AndNot returns e with the extra requirement that s is NOT asserted.
func (e Expr) AndNot(s Signal) Expr {
	out := Expr{Any: make([]Term, len(e.Any))}
	for i, t := range e.Any {
		out.Any[i] = Term{All: t.All, None: append(append([]Signal(nil), t.None...), s)}
	}
	return out
}

// Or returns the disjunction of e and f.
func (e Expr) Or(f Expr) Expr {
	return Expr{Any: append(append([]Term(nil), e.Any...), f.Any...)}
}

// Eval evaluates the expression against the current signal vector.
func (e Expr) Eval(signals []bool) bool {
	for _, t := range e.Any {
		ok := true
		for _, s := range t.All {
			if s < 0 || !signals[s] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range t.None {
			if s >= 0 && signals[s] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ActionKind selects what a trigger action does.
type ActionKind uint8

// Action kinds.
const (
	ActEnableCounter ActionKind = iota
	ActDisableCounter
	ActFlowTraceOn
	ActFlowTraceOff
	ActDataTraceOn
	ActDataTraceOff
	ActEmitTrigger
	ActSetSignal
	// ActBreak halts the observed core (OCDS run control): "since the
	// on-chip trace memory is limited, it is very important to be able to
	// trigger close to the point of interest". Unlike observation,
	// breaking is intrusive by design.
	ActBreak
)

// Action is one trigger consequence.
type Action struct {
	Kind      ActionKind
	Counter   *Counter // ActEnableCounter / ActDisableCounter
	Core      *CoreObs // trace on/off actions
	TriggerID uint8    // ActEmitTrigger
	Src       uint8    // ActEmitTrigger source id
	Signal    Signal   // ActSetSignal
}

func (m *MCDS) apply(a Action, cycle uint64) {
	switch a.Kind {
	case ActEnableCounter:
		if !a.Counter.Enabled {
			a.Counter.Enabled = true
			a.Counter.Reset()
		}
	case ActDisableCounter:
		a.Counter.Enabled = false
	case ActFlowTraceOn:
		a.Core.FlowTrace = true
		a.Core.needSync = true
	case ActFlowTraceOff:
		a.Core.FlowTrace = false
	case ActDataTraceOn:
		a.Core.DataTrace = true
	case ActDataTraceOff:
		a.Core.DataTrace = false
	case ActEmitTrigger:
		msg := tmsg.Msg{Kind: tmsg.KindTrigger, Src: a.Src, Cycle: cycle, TriggerID: a.TriggerID}
		m.emit(&msg)
	case ActSetSignal:
		m.set(a.Signal)
	case ActBreak:
		a.Core.cpu.DebugBreak()
	}
}

// TriggerRule applies actions whenever its condition holds.
type TriggerRule struct {
	Name string
	When Expr
	Do   []Action
	Once bool // fire at most once

	Fired uint64
}

// AddRule registers a trigger rule.
func (m *MCDS) AddRule(r *TriggerRule) *TriggerRule {
	m.rules = append(m.rules, r)
	return r
}

func (r *TriggerRule) tick(m *MCDS, cycle uint64) {
	if r.Once && r.Fired > 0 {
		return
	}
	if r.When.Eval(m.signals) {
		r.Fired++
		for _, a := range r.Do {
			m.apply(a, cycle)
		}
	}
}

// StateMachine is a trigger state machine: while in a state its state
// signal is asserted; transitions fire on expressions and run actions.
type StateMachine struct {
	Name        string
	stateSigs   []Signal
	transitions []Transition
	cur         int

	Moves uint64
}

// Transition moves the machine from From to To when When holds, running Do.
type Transition struct {
	From int
	When Expr
	To   int
	Do   []Action
}

// AddStateMachine creates a machine with the named states (state 0 is the
// initial state). State signals are allocated as "<name>.<state>".
func (m *MCDS) AddStateMachine(name string, states []string) *StateMachine {
	if len(states) == 0 {
		panic("mcds: state machine needs at least one state")
	}
	sm := &StateMachine{Name: name}
	for _, st := range states {
		sm.stateSigs = append(sm.stateSigs, m.AllocSignal(name+"."+st))
	}
	m.sms = append(m.sms, sm)
	return sm
}

// AddTransition appends a transition.
func (sm *StateMachine) AddTransition(t Transition) {
	if t.From < 0 || t.From >= len(sm.stateSigs) || t.To < 0 || t.To >= len(sm.stateSigs) {
		panic(fmt.Sprintf("mcds: %s transition out of range", sm.Name))
	}
	sm.transitions = append(sm.transitions, t)
}

// State returns the current state index.
func (sm *StateMachine) State() int { return sm.cur }

// StateSignal returns the signal asserted while the machine is in state i.
func (sm *StateMachine) StateSignal(i int) Signal { return sm.stateSigs[i] }

func (sm *StateMachine) tick(m *MCDS, cycle uint64) {
	// Assert the current state's signal, then evaluate transitions; the
	// first matching transition wins.
	m.set(sm.stateSigs[sm.cur])
	for _, t := range sm.transitions {
		if t.From == sm.cur && t.When.Eval(m.signals) {
			sm.cur = t.To
			sm.Moves++
			for _, a := range t.Do {
				m.apply(a, cycle)
			}
			m.set(sm.stateSigs[sm.cur])
			break
		}
	}
}
