package mcds

import (
	"testing"

	"repro/internal/emem"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
)

// edRig is a TC1797ED with an MCDS observing the TriCore.
type edRig struct {
	soc  *soc.SoC
	m    *MCDS
	core *CoreObs
}

func newEDRig(t *testing.T) *edRig {
	t.Helper()
	s := soc.New(soc.TC1797().WithED(), 1)
	m := New("mcds", s.EMEM)
	core := m.AddCore(s.CPU, 0)
	s.Clock.Attach("mcds", m)
	return &edRig{soc: s, m: m, core: core}
}

func (r *edRig) loadAndRun(t *testing.T, a *isa.Asm, limit uint64) uint64 {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	r.soc.LoadProgram(p)
	r.soc.ResetCPU(p.Base)
	cy, ok := r.soc.RunUntilHalt(limit)
	if !ok {
		t.Fatalf("did not halt in %d cycles", limit)
	}
	// One extra tick so the MCDS observes the final cycle's events.
	r.soc.Clock.Step()
	return cy
}

// loopProgram builds a flash-resident loop with a data access per
// iteration.
func loopProgram(iters int32) *isa.Asm {
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, uint32(iters))
	a.Label("body")
	a.Addi(2, 2, 1)
	a.Stw(2, 1, 0)
	a.Loop(3, "body")
	a.Halt()
	return a
}

func decodeAll(t *testing.T, r *edRig) []tmsg.Msg {
	t.Helper()
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(r.soc.EMEM.Drain(r.soc.EMEM.Level()))
	if err != nil {
		t.Fatal(err)
	}
	return msgs
}

func TestRateCounterExactness(t *testing.T) {
	r := newEDRig(t)
	ctr := NewRateCounter("ipc", 1,
		Tap{Obs: r.core, Event: sim.EvInstrExecuted},
		Tap{Obs: r.core, Event: sim.EvCycle}, 64)
	r.m.AddCounter(ctr)

	r.loadAndRun(t, loopProgram(3000), 1_000_000)

	msgs := decodeAll(t, r)
	var sumBasis, sumCount uint64
	var rates int
	for _, m := range msgs {
		if m.Kind == tmsg.KindRate && m.CounterID == 1 {
			rates++
			sumBasis += m.Basis
			sumCount += m.Count
			if m.Basis < 64 {
				t.Errorf("window basis %d below resolution", m.Basis)
			}
		}
	}
	if rates == 0 {
		t.Fatal("no rate messages")
	}
	// Exactness: windows plus the unfinished remainder equal ground truth.
	gt := r.soc.CPU.Counters()
	if sumCount+ctr.curCount != gt.Get(sim.EvInstrExecuted) {
		t.Errorf("sum of windows %d + partial %d != ground truth %d",
			sumCount, ctr.curCount, gt.Get(sim.EvInstrExecuted))
	}
	if sumBasis+ctr.curBasis != gt.Get(sim.EvCycle) {
		t.Errorf("basis sum %d + partial %d != cycles %d",
			sumBasis, ctr.curBasis, gt.Get(sim.EvCycle))
	}
	// IPC must be in (0, 3].
	ipc := float64(sumCount) / float64(sumBasis)
	if ipc <= 0 || ipc > 3 {
		t.Errorf("ipc = %v", ipc)
	}
}

func TestRateCounterInstructionBasis(t *testing.T) {
	// Cache-miss rate per executed instructions: the paper's preferred
	// basis ("cache miss/hit/access events are measured as rates relating
	// to executed instructions").
	r := newEDRig(t)
	ctr := NewRateCounter("imiss", 2,
		Tap{Obs: r.core, Event: sim.EvICacheMiss},
		Tap{Obs: r.core, Event: sim.EvInstrExecuted}, 100)
	r.m.AddCounter(ctr)
	r.loadAndRun(t, loopProgram(5000), 1_000_000)

	var sumB, sumC uint64
	for _, m := range decodeAll(t, r) {
		if m.Kind == tmsg.KindRate && m.CounterID == 2 {
			sumB += m.Basis
			sumC += m.Count
		}
	}
	gt := r.soc.CPU.Counters()
	if sumC+ctr.curCount != gt.Get(sim.EvICacheMiss) {
		t.Errorf("miss sum %d+%d != %d", sumC, ctr.curCount, gt.Get(sim.EvICacheMiss))
	}
	if sumB+ctr.curBasis != gt.Get(sim.EvInstrExecuted) {
		t.Errorf("instr basis mismatch")
	}
}

func TestWatchdogFiresOnSilence(t *testing.T) {
	r := newEDRig(t)
	fire := r.m.AllocSignal("wd-fire")
	// Watch data-scratch accesses; the program stops storing midway.
	wd := NewWatchdog("wd", 3, Tap{Obs: r.core, Event: sim.EvDScratchAccess}, 200, fire)
	wd.EmitTriggerOnFire = true
	wd.TriggerID = 7
	r.m.AddCounter(wd)

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movw(3, 50)
	a.Label("store")
	a.Stw(2, 1, 0)
	a.Loop(3, "store")
	// Now a long silent phase.
	a.Movw(3, 2000)
	a.Label("quiet")
	a.Loop(3, "quiet")
	a.Halt()
	r.loadAndRun(t, a, 1_000_000)

	if wd.Fires == 0 {
		t.Fatal("watchdog never fired")
	}
	found := false
	for _, m := range decodeAll(t, r) {
		if m.Kind == tmsg.KindTrigger && m.TriggerID == 7 {
			found = true
		}
	}
	if !found {
		t.Error("trigger message missing")
	}
}

func TestComparatorCountsFunctionEntries(t *testing.T) {
	r := newEDRig(t)
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(5, 20)
	a.Label("again")
	a.Call("fn")
	a.Loop(5, "again")
	a.Halt()
	a.Label("fn")
	a.Addi(6, 6, 1)
	a.Ret()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var fn uint32
	for _, s := range p.Syms {
		if s.Name == "fn" {
			fn = s.Addr
		}
	}
	sig := r.m.AllocSignal("in-fn")
	cmp := r.m.AddComparator(&Comparator{Name: "fn-entry", Core: r.core,
		Kind: CompPC, Lo: fn, Hi: fn + 4, Signal: sig})
	r.soc.LoadProgram(p)
	r.soc.ResetCPU(p.Base)
	r.soc.RunUntilHalt(1_000_000)
	r.soc.Clock.Step()
	if cmp.Matches != 20 {
		t.Errorf("entry matches = %d, want 20", cmp.Matches)
	}
}

func TestAddressComparatorWriteFilter(t *testing.T) {
	r := newEDRig(t)
	wsig := r.m.AllocSignal("w")
	rsig := r.m.AllocSignal("r")
	wc := r.m.AddComparator(&Comparator{Name: "w", Core: r.core, Kind: CompAddr,
		Lo: mem.DSPRBase, Hi: mem.DSPRBase + 4, Dir: RWWrite, Signal: wsig})
	rc := r.m.AddComparator(&Comparator{Name: "r", Core: r.core, Kind: CompAddr,
		Lo: mem.DSPRBase, Hi: mem.DSPRBase + 4, Dir: RWRead, Signal: rsig})

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Stw(2, 1, 0)
	a.Stw(2, 1, 0)
	a.Ldw(3, 1, 0)
	a.Stw(2, 1, 4) // outside range
	a.Halt()
	r.loadAndRun(t, a, 100_000)
	if wc.Matches != 2 {
		t.Errorf("writes = %d, want 2", wc.Matches)
	}
	if rc.Matches != 1 {
		t.Errorf("reads = %d, want 1", rc.Matches)
	}
}

func TestCascadeArmsHighResCounter(t *testing.T) {
	// The paper's cascade: a low-resolution IPC watch arms the
	// high-resolution measurement only when IPC drops below a threshold.
	r := newEDRig(t)
	below := r.m.AllocSignal("ipc-low")
	low := NewRateCounter("ipc-lo", 1,
		Tap{Obs: r.core, Event: sim.EvInstrExecuted},
		Tap{Obs: r.core, Event: sim.EvCycle}, 512)
	low.Emit = false
	low.ThreshNum, low.ThreshDen = 1, 1 // below 1.0 IPC
	low.Below = below
	r.m.AddCounter(low)

	hi := NewRateCounter("ipc-hi", 2,
		Tap{Obs: r.core, Event: sim.EvInstrExecuted},
		Tap{Obs: r.core, Event: sim.EvCycle}, 32)
	hi.Enabled = false
	r.m.AddCounter(hi)

	r.m.AddRule(&TriggerRule{Name: "arm-hi", When: On(below),
		Do: []Action{{Kind: ActEnableCounter, Counter: hi}}})

	// Phase 1: fast loop (IPC high). Phase 2: uncached-flash data reads
	// in a dependency chain (IPC low).
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(3, 2000)
	a.Label("fast")
	a.Addi(2, 2, 1)
	a.Loop(3, "fast")
	a.Movw(1, mem.FlashUncach+0x1000)
	a.Movw(3, 400)
	a.Label("slow")
	a.Ldw(2, 1, 0)
	a.Add(4, 2, 2) // depends on load
	a.Loop(3, "slow")
	a.Halt()
	r.loadAndRun(t, a, 10_000_000)

	if low.Fires == 0 {
		t.Fatal("low-res threshold never saw low IPC")
	}
	if !hi.Enabled {
		t.Fatal("high-res counter was not armed")
	}
	var hiMsgs int
	for _, m := range decodeAll(t, r) {
		if m.Kind == tmsg.KindRate && m.CounterID == 2 {
			hiMsgs++
		}
	}
	if hiMsgs == 0 {
		t.Error("high-res counter emitted nothing after arming")
	}
}

func TestFlowTraceReconstruction(t *testing.T) {
	r := newEDRig(t)
	r.core.FlowTrace = true
	cy := r.loadAndRun(t, loopProgram(50), 1_000_000)
	_ = cy
	msgs := decodeAll(t, r)
	pcs := Reconstruct(msgs, 0)
	if len(pcs) == 0 {
		t.Fatal("no instructions reconstructed")
	}
	// Ground truth: the retired instruction count (minus any tail after
	// the last flow message, which has not been flushed by a flow event).
	gt := r.soc.CPU.Counters().Get(sim.EvInstrExecuted)
	if uint64(len(pcs)) > gt {
		t.Fatalf("reconstructed %d > executed %d", len(pcs), gt)
	}
	if uint64(len(pcs)) < gt-10 {
		t.Fatalf("reconstructed %d, executed %d: too much missing", len(pcs), gt)
	}
	// The loop body (ADDI at base+8) appears once per iteration except the
	// last: the final iteration ends in a not-taken LOOP and HALT, which
	// emit no flow message, so it stays in the unflushed tail.
	bodyPC := uint32(mem.FlashBase + 8)
	n := 0
	for _, pc := range pcs {
		if pc == bodyPC {
			n++
		}
	}
	if n != 49 {
		t.Errorf("loop body seen %d times, want 49", n)
	}
	// Cycle stamps non-decreasing.
	var last uint64
	for _, m := range msgs {
		if m.Cycle < last {
			t.Fatal("cycle stamps not monotonic")
		}
		last = m.Cycle
	}
}

func TestDataTraceQualification(t *testing.T) {
	r := newEDRig(t)
	r.core.DataTrace = true
	r.core.DataLo = mem.DSPRBase
	r.core.DataHi = mem.DSPRBase + 4

	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.DSPRBase)
	a.Movi(2, 42)
	a.Stw(2, 1, 0) // in range
	a.Stw(2, 1, 8) // out of range
	a.Ldw(3, 1, 0) // in range
	a.Halt()
	r.loadAndRun(t, a, 100_000)

	var datas []tmsg.Msg
	for _, m := range decodeAll(t, r) {
		if m.Kind == tmsg.KindData {
			datas = append(datas, m)
		}
	}
	if len(datas) != 2 {
		t.Fatalf("data messages = %d, want 2", len(datas))
	}
	if !datas[0].Write || datas[0].Data != 42 {
		t.Errorf("first data msg: %+v", datas[0])
	}
	if datas[1].Write || datas[1].Data != 42 {
		t.Errorf("second data msg: %+v", datas[1])
	}
}

func TestNonIntrusiveness(t *testing.T) {
	// The instrumented run is cycle-for-cycle identical to the bare run.
	run := func(withMCDS bool) (uint64, uint64) {
		s := soc.New(soc.TC1797().WithED(), 9)
		if withMCDS {
			m := New("mcds", s.EMEM)
			core := m.AddCore(s.CPU, 0)
			core.FlowTrace = true
			core.DataTrace = true
			m.AddCounter(NewRateCounter("ipc", 1,
				Tap{Obs: core, Event: sim.EvInstrExecuted},
				Tap{Obs: core, Event: sim.EvCycle}, 100))
			s.Clock.Attach("mcds", m)
		}
		p, err := loopProgram(2000).Assemble()
		if err != nil {
			t.Fatal(err)
		}
		s.LoadProgram(p)
		s.ResetCPU(p.Base)
		cy, ok := s.RunUntilHalt(10_000_000)
		if !ok {
			t.Fatal("did not halt")
		}
		return cy, s.CPU.Counters().Get(sim.EvInstrExecuted)
	}
	c0, i0 := run(false)
	c1, i1 := run(true)
	if c0 != c1 || i0 != i1 {
		t.Errorf("MCDS perturbs execution: bare (%d,%d) vs observed (%d,%d)", c0, i0, c1, i1)
	}
}

func TestOverflowProtocol(t *testing.T) {
	// A tiny trace buffer overflows while a slow drain runs; the decoder
	// must stay in sync, see an overflow marker, and reconstruction must
	// resume after the next sync.
	s := soc.New(soc.TC1797().WithED(), 1)
	tiny := emem.New(512, 0, 0) // 512-byte trace ring
	m := New("mcds", tiny)
	core := m.AddCore(s.CPU, 0)
	core.FlowTrace = true
	m.SyncEvery = 512
	s.Clock.Attach("mcds", m)

	// Tool side: drain 1 byte every 4 cycles (much slower than the trace
	// is produced).
	var received []byte
	s.Clock.Attach("drain", sim.TickerFunc(func(cy uint64) {
		if cy%4 == 0 {
			received = append(received, tiny.Drain(1)...)
		}
	}))

	p, err := loopProgram(3000).Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	s.RunUntilHalt(10_000_000)
	s.Clock.Step()
	received = append(received, tiny.Drain(tiny.Level())...)

	if m.MsgsLost == 0 {
		t.Fatal("expected message loss")
	}
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(received)
	if err != nil {
		t.Fatalf("decode after overflow: %v", err)
	}
	sawOverflow := false
	for _, msg := range msgs {
		if msg.Kind == tmsg.KindOverflow && msg.Lost > 0 {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Error("no overflow marker in stream")
	}
	if len(Reconstruct(msgs, 0)) == 0 {
		t.Error("reconstruction found nothing after overflow")
	}
}

func TestStateMachineWindowedTrace(t *testing.T) {
	// Classic MCDS use: trace only between function entry and exit.
	r := newEDRig(t)
	a := isa.NewAsm(mem.FlashBase)
	a.Movi(5, 3)
	a.Label("again")
	a.Call("fn")
	a.Loop(5, "again")
	a.Halt()
	a.Label("fn")
	a.Addi(6, 6, 1)
	a.Addi(6, 6, 1)
	a.Ret()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var fn uint32
	for _, sy := range p.Syms {
		if sy.Name == "fn" {
			fn = sy.Addr
		}
	}
	enter := r.m.AllocSignal("enter")
	leave := r.m.AllocSignal("leave")
	r.m.AddComparator(&Comparator{Name: "enter", Core: r.core, Kind: CompPC,
		Lo: fn, Hi: fn + 4, Signal: enter})
	r.m.AddComparator(&Comparator{Name: "leave", Core: r.core, Kind: CompPC,
		Lo: fn + 8, Hi: fn + 12, Signal: leave})

	sm := r.m.AddStateMachine("win", []string{"idle", "tracing"})
	sm.AddTransition(Transition{From: 0, When: On(enter), To: 1,
		Do: []Action{{Kind: ActDataTraceOn, Core: r.core}}})
	sm.AddTransition(Transition{From: 1, When: On(leave), To: 0,
		Do: []Action{{Kind: ActDataTraceOff, Core: r.core}}})

	r.soc.LoadProgram(p)
	r.soc.ResetCPU(p.Base)
	r.soc.RunUntilHalt(1_000_000)
	r.soc.Clock.Step()

	if sm.Moves < 6 { // 3 calls × enter+leave
		t.Errorf("state machine moves = %d, want >= 6", sm.Moves)
	}
	if sm.State() != 0 {
		t.Errorf("machine must end idle, in state %d", sm.State())
	}
}

func TestMCDSTopology(t *testing.T) {
	// F5: per-core observation blocks plus bus observation under one MCDS,
	// all feeding the shared signal cross-connect.
	s := soc.New(soc.TC1797().WithED(), 1)
	m := New("mcds", s.EMEM)
	tc := m.AddCore(s.CPU, 0)
	pcp := m.AddCore(s.PCP.Core, 1)
	busObs := m.AddBus(s.DLMB.Counters(), 2)
	flashObs := m.AddBus(s.Flash.Counters(), 3)
	if tc.SrcID() == pcp.SrcID() {
		t.Error("sources must be distinct")
	}
	if busObs.SrcID() != 2 || flashObs.SrcID() != 3 {
		t.Error("bus observation ids wrong")
	}
	m.AddCounter(NewRateCounter("contention", 4,
		Tap{Obs: busObs, Event: sim.EvBusContention},
		Tap{Obs: tc, Event: sim.EvInstrExecuted}, 100))
	s.Clock.Attach("mcds", m)
	p, err := loopProgram(100).Assemble()
	if err != nil {
		t.Fatal(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	if _, ok := s.RunUntilHalt(1_000_000); !ok {
		t.Fatal("did not halt")
	}
}

func TestBreakpointHaltsAtWatchpoint(t *testing.T) {
	// Run control: a PC comparator drives a break action; the core halts
	// right at the point of interest ("trigger close to the point of
	// interest") while a second run without the breakpoint continues.
	r := newEDRig(t)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(3, 10_000)
	a.Label("spin")
	a.Addi(2, 2, 1)
	a.Loop(3, "spin")
	a.Label("poi") // point of interest: reached after the long loop
	a.Nop()        // the break lands here (one-instruction skid)
	a.Movi(4, 99)  // must never execute
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	var poi uint32
	for _, sy := range p.Syms {
		if sy.Name == "poi" {
			poi = sy.Addr
		}
	}
	hit := r.m.AllocSignal("poi")
	r.m.AddComparator(&Comparator{Name: "poi", Core: r.core, Kind: CompPC,
		Lo: poi, Hi: poi + 4, Signal: hit})
	r.m.AddRule(&TriggerRule{Name: "break", When: On(hit), Once: true,
		Do: []Action{{Kind: ActBreak, Core: r.core}}})

	r.soc.LoadProgram(p)
	r.soc.ResetCPU(p.Base)
	r.soc.RunUntilHalt(10_000_000)
	r.soc.Clock.Step()
	// The break fired at the POI: the MOVI after it never executed.
	if r.soc.CPU.Reg(4) == 99 {
		t.Error("core ran past the breakpoint")
	}
	if r.soc.CPU.Reg(2) != 10_000 {
		t.Errorf("loop incomplete before break: r2=%d", r.soc.CPU.Reg(2))
	}
}

func TestCounterExtremeCapture(t *testing.T) {
	// Min/max capture registers record the worst and best windows with
	// zero trace bandwidth.
	r := newEDRig(t)
	ctr := NewRateCounter("ipc", 1,
		Tap{Obs: r.core, Event: sim.EvInstrExecuted},
		Tap{Obs: r.core, Event: sim.EvCycle}, 100)
	ctr.Emit = false
	ctr.TrackExtremes = true
	r.m.AddCounter(ctr)

	// Two-phase program: fast scratch... use the flash loop with a slow
	// uncached phase for contrast.
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(3, 3000)
	a.Label("fast")
	a.Addi(2, 2, 1)
	a.Loop(3, "fast")
	a.Movw(1, mem.FlashUncach+0x1000)
	a.Movw(3, 300)
	a.Label("slow")
	a.Ldw(2, 1, 0)
	a.Add(4, 2, 2)
	a.Addi(1, 1, 32) // new flash line every iteration: real array reads
	a.Loop(3, "slow")
	a.Halt()
	r.loadAndRun(t, a, 10_000_000)

	if ctr.Windows == 0 || !ctr.haveExtremes {
		t.Fatal("no windows recorded")
	}
	maxRate := float64(ctr.MaxCount) / float64(ctr.MaxBasis)
	minRate := float64(ctr.MinCount) / float64(ctr.MinBasis)
	if maxRate <= minRate {
		t.Fatalf("extremes not separated: max %.3f min %.3f", maxRate, minRate)
	}
	if maxRate < 1.0 {
		t.Errorf("fast-phase max IPC = %.3f, want >= 1", maxRate)
	}
	if minRate > 0.6 {
		t.Errorf("slow-phase min IPC = %.3f, want <= 0.6", minRate)
	}
	// No trace bandwidth was spent.
	if r.m.BytesEmitted != 0 {
		t.Errorf("extreme capture cost %d trace bytes", r.m.BytesEmitted)
	}
}
