package mcds

import (
	"fmt"

	"repro/internal/tmsg"
)

// CounterMode selects what a counter structure does.
type CounterMode uint8

// Counter modes.
const (
	// ModeRate counts Src events against a Basis window of Resolution
	// basis events. At each window end it can emit a rate trace message
	// and/or compare the rate against a threshold, setting the Below or
	// Above signal. This is the Enhanced System Profiling measurement
	// element: "Every x clock cycles, the number of executed instructions
	// is saved as a trace message ... where x is the resolution."
	ModeRate CounterMode = iota
	// ModeWatchdog fires the Above signal when Resolution basis events
	// elapse without a single Src event — the paper's "trigger on events
	// not happening in a defined time window".
	ModeWatchdog
)

// Counter is one MCDS counter structure.
type Counter struct {
	Name string
	ID   uint8 // counter id carried in rate messages
	Mode CounterMode

	Src   Tap // measured event
	Basis Tap // resolution basis (EvInstrExecuted for event rates, EvCycle for IPC)

	Resolution uint64 // basis events per window (must be > 0)

	// Emit controls rate-message emission at window end (ModeRate).
	Emit bool

	// Threshold compares the window rate against Num/Den at window end:
	// count*Den < basis*Num sets Below, otherwise Above (when the signals
	// are allocated). Integer rational avoids floating point in the
	// "hardware".
	ThreshNum, ThreshDen uint64
	Below, Above         Signal

	// EmitTriggerOnFire emits a trigger message when the watchdog fires.
	EmitTriggerOnFire bool
	TriggerID         uint8

	// Enabled gates the counter; trigger actions arm and disarm it (the
	// cascade mechanism).
	Enabled bool

	// TrackExtremes records the highest and lowest completed-window rates
	// in hardware capture registers (read back after the run without any
	// trace bandwidth — the cheapest possible worst-case observation).
	TrackExtremes bool
	MaxCount      uint64 // count of the worst (highest-count) window
	MaxBasis      uint64
	MinCount      uint64 // count of the best (lowest-count) window
	MinBasis      uint64
	haveExtremes  bool

	curCount uint64
	curBasis uint64

	// Statistics.
	Windows  uint64
	Fires    uint64 // watchdog firings / threshold-below windows
	TotalSrc uint64
}

// NewRateCounter builds a rate counter measuring src per resolution basis
// events, with rate-message emission enabled and no threshold signals.
func NewRateCounter(name string, id uint8, src, basis Tap, resolution uint64) *Counter {
	return &Counter{Name: name, ID: id, Mode: ModeRate, Src: src, Basis: basis,
		Resolution: resolution, Emit: true, Below: NoSignal, Above: NoSignal,
		Enabled: true}
}

// NewWatchdog builds a watchdog counter firing signal fire when window
// cycles pass without a src event.
func NewWatchdog(name string, id uint8, src Tap, window uint64, fire Signal) *Counter {
	return &Counter{Name: name, ID: id, Mode: ModeWatchdog, Src: src,
		Resolution: window, Below: NoSignal, Above: fire, Enabled: true}
}

// AddCounter registers a counter structure. Unused threshold signals must
// be NoSignal (the constructors take care of this).
func (m *MCDS) AddCounter(c *Counter) *Counter {
	if c.Resolution == 0 {
		panic(fmt.Sprintf("mcds: counter %s has zero resolution", c.Name))
	}
	if c.Src.Obs == nil {
		panic(fmt.Sprintf("mcds: counter %s has no source tap", c.Name))
	}
	if c.Mode == ModeRate && c.Basis.Obs == nil {
		panic(fmt.Sprintf("mcds: rate counter %s has no basis tap", c.Name))
	}
	m.counters = append(m.counters, c)
	return c
}

// Reset clears the running window (used when a cascade re-arms a counter).
func (c *Counter) Reset() {
	c.curCount = 0
	c.curBasis = 0
}

// updateExtremes folds the completed window into the min/max capture
// registers (rate comparison via cross-multiplication: no floating point
// in the "hardware").
func (c *Counter) updateExtremes() {
	if !c.haveExtremes {
		c.MaxCount, c.MaxBasis = c.curCount, c.curBasis
		c.MinCount, c.MinBasis = c.curCount, c.curBasis
		c.haveExtremes = true
		return
	}
	if c.curCount*c.MaxBasis > c.MaxCount*c.curBasis {
		c.MaxCount, c.MaxBasis = c.curCount, c.curBasis
	}
	if c.curCount*c.MinBasis < c.MinCount*c.curBasis {
		c.MinCount, c.MinBasis = c.curCount, c.curBasis
	}
}

func (c *Counter) tick(m *MCDS, cycle uint64) {
	if !c.Enabled {
		return
	}
	src := c.Src.Obs.Delta(c.Src.Event)
	c.TotalSrc += src

	switch c.Mode {
	case ModeRate:
		c.curCount += src
		c.curBasis += c.Basis.Obs.Delta(c.Basis.Event)
		if c.curBasis >= c.Resolution {
			c.Windows++
			if c.TrackExtremes {
				c.updateExtremes()
			}
			if c.Emit {
				msg := tmsg.Msg{Kind: tmsg.KindRate, Src: c.Src.Obs.SrcID(),
					Cycle: cycle, CounterID: c.ID, Basis: c.curBasis, Count: c.curCount}
				m.emit(&msg)
			}
			if c.ThreshDen > 0 {
				if c.curCount*c.ThreshDen < c.curBasis*c.ThreshNum {
					m.set(c.Below)
					c.Fires++
				} else {
					m.set(c.Above)
				}
			}
			c.curCount = 0
			c.curBasis = 0
		}

	case ModeWatchdog:
		if src > 0 {
			c.curBasis = 0
			return
		}
		c.curBasis++
		if c.curBasis >= c.Resolution {
			c.Fires++
			m.set(c.Above)
			if c.EmitTriggerOnFire {
				msg := tmsg.Msg{Kind: tmsg.KindTrigger, Src: c.Src.Obs.SrcID(),
					Cycle: cycle, TriggerID: c.TriggerID}
				m.emit(&msg)
			}
			c.curBasis = 0
		}
	}
}
