// Package mcds implements the Multi-Core Debug Solution of the Emulation
// Extension Chip: a configurable and scalable trigger, trace qualification
// and trace compression block (paper Section 3). It observes the cores and
// buses of the SoC non-intrusively, counts performance-relevant events,
// evaluates Boolean trigger conditions, counters and state machines, and
// writes compressed trace messages into the Emulation Memory.
//
// Structure, mirroring the paper's Figure 5:
//
//   - CoreObs   — per-core observation blocks (POB/MCX adaptation logic):
//     tap the core's retire stream and event counters; generate program
//     flow and data trace messages with cycle timestamps.
//   - BusObs    — bus observation blocks (BOB/SBO): tap bus and flash
//     event counters.
//   - Counter   — counter structures measuring event rates against a
//     configurable resolution basis (executed instructions or cycles),
//     with optional rate-message emission, threshold signals, and a
//     watchdog mode that fires when an event does NOT happen within a
//     time window.
//   - Comparator — PC / address / data comparators on the retire stream.
//   - StateMachine / TriggerRule — Boolean expressions over the signal
//     cross-connect (the MCX), driving actions such as arming counters or
//     switching trace on and off.
//
// The MCDS ticks after every component it observes (the SoC registers it
// later on the clock), so within one cycle it sees that cycle's complete
// event deltas and retire log. It never feeds back into the target: the
// instrumented system executes cycle-for-cycle identically with or
// without the MCDS attached — the paper's non-intrusiveness property.
package mcds

import (
	"fmt"

	"repro/internal/emem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tmsg"
	"repro/internal/tricore"
)

// Observer is a tap that exposes per-cycle event deltas.
type Observer interface {
	// Delta returns how many events of class e occurred in the cycle
	// currently being processed.
	Delta(e sim.Event) uint64
	// SrcID returns the trace source id of this observation block.
	SrcID() uint8
}

// Tap selects one event class on one observation block.
type Tap struct {
	Obs   Observer
	Event sim.Event
}

// MCDS is the assembled trigger/trace block.
type MCDS struct {
	Name string

	// Sink is the trace destination (the EMEM trace partition). A nil
	// sink discards bytes but still accounts them, which lets benchmarks
	// measure pure bandwidth without a buffer model.
	Sink *emem.EMEM

	cores []*CoreObs
	buses []*BusObs

	counters []*Counter
	comps    []*Comparator
	sms      []*StateMachine
	rules    []*TriggerRule

	signals  []bool
	sigNames []string

	enc     tmsg.Encoder
	scratch []byte
	framer  *tmsg.Framer

	// SyncEvery emits a periodic re-anchor per flow-traced core every N
	// cycles (0 = only when needed).
	SyncEvery uint64

	// AnchorEvery, when non-zero, re-anchors EVERY active trace source at
	// least every N cycles (not just flow-traced cores). It bounds the
	// tool-side recovery window after link loss: a resynchronizing decoder
	// discards a source's messages until its next Sync, so without
	// periodic anchors a single lost frame would poison counter and bus
	// sources to the end of the run. Enabled by hardened (framed)
	// profiling sessions; off by default so the clean-path byte stream is
	// unchanged.
	AnchorEvery uint64
	lastAnchor  uint64

	// OnEmit, when non-nil, observes every message accepted into the
	// trace stream (after overflow/sync protocol insertions). It is the
	// ground-truth mirror chaos tests compare the decoded stream against;
	// it must not mutate the message.
	OnEmit func(*tmsg.Msg)

	pendingLost uint64
	needSync    [tmsg.MaxSources]bool

	// Statistics.
	MsgsEmitted  uint64
	BytesEmitted uint64
	MsgsLost     uint64

	obs mcdsObs
}

// mcdsObs holds the emitter's metric handles (nil handles no-op when the
// MCDS is uninstrumented).
type mcdsObs struct {
	msgs      *obs.Counter // mcds.msgs_emitted
	bytes     *obs.Counter // mcds.bytes_emitted
	lost      *obs.Counter // mcds.msgs_lost
	reanchors *obs.Counter // mcds.reanchors — Sync messages emitted
	bySrc     [tmsg.MaxSources]*obs.Counter
}

// Instrument publishes the trace-emitter metrics into reg: total and
// per-source message counts, emitted bytes, losses, and re-anchor (Sync)
// emissions. A nil registry is a no-op.
func (m *MCDS) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.obs = mcdsObs{
		msgs:      reg.Counter("mcds.msgs_emitted"),
		bytes:     reg.Counter("mcds.bytes_emitted"),
		lost:      reg.Counter("mcds.msgs_lost"),
		reanchors: reg.Counter("mcds.reanchors"),
	}
	for i := range m.obs.bySrc {
		m.obs.bySrc[i] = reg.Counter(fmt.Sprintf("mcds.src%d.msgs", i))
	}
}

// New creates an empty MCDS writing to sink (which may be nil).
func New(name string, sink *emem.EMEM) *MCDS {
	return &MCDS{Name: name, Sink: sink, SyncEvery: 1 << 16}
}

// Signal is an index into the MCX signal cross-connect.
type Signal int

// NoSignal marks an unconnected signal input or output.
const NoSignal Signal = -1

// AllocSignal reserves a named signal line.
func (m *MCDS) AllocSignal(name string) Signal {
	m.signals = append(m.signals, false)
	m.sigNames = append(m.sigNames, name)
	return Signal(len(m.signals) - 1)
}

// SignalName returns the name of s.
func (m *MCDS) SignalName(s Signal) string { return m.sigNames[s] }

func (m *MCDS) set(s Signal) {
	if s >= 0 {
		m.signals[s] = true
	}
}

// EnableFraming routes every emitted message through the CRC/seq frame
// layer (tmsg.Framer) on its way into the EMEM. Pair it with a reliable
// DAP (dap.DAP.Reliable) and a framed tool-side decoder. Call before the
// first emitted message.
func (m *MCDS) EnableFraming() {
	if m.framer != nil {
		return
	}
	m.framer = &tmsg.Framer{Sink: func(frame []byte) bool {
		if m.Sink == nil {
			return true
		}
		return m.Sink.AppendTrace(frame)
	}}
}

// Framer exposes the frame layer (nil when framing is disabled).
func (m *MCDS) Framer() *tmsg.Framer { return m.framer }

// FlushTrace flushes a partially filled frame into the sink (end of run).
// A no-op without framing.
func (m *MCDS) FlushTrace() {
	if m.framer == nil {
		return
	}
	if dropped := m.framer.Flush(); dropped > 0 {
		m.noteFrameDrop(dropped)
	}
}

// Tick implements sim.Ticker. Evaluation order within a cycle: observation
// blocks (trace generation, comparators) → counters → state machines →
// trigger rules.
func (m *MCDS) Tick(cycle uint64) {
	if m.AnchorEvery > 0 && cycle-m.lastAnchor >= m.AnchorEvery {
		for i := range m.needSync {
			m.needSync[i] = true
		}
		m.lastAnchor = cycle
	}
	for i := range m.signals {
		m.signals[i] = false
	}
	for _, c := range m.cores {
		c.tick(m, cycle)
	}
	for _, b := range m.buses {
		b.tick()
	}
	for _, c := range m.counters {
		c.tick(m, cycle)
	}
	for _, s := range m.sms {
		s.tick(m, cycle)
	}
	for _, r := range m.rules {
		r.tick(m, cycle)
	}
}

// emit encodes and stores one message, handling buffer overflow with the
// overflow-marker + re-sync protocol: after a loss, the next successful
// store is preceded by an Overflow message and per-source Sync re-anchors,
// so the tool-side decoder never desynchronizes.
func (m *MCDS) emit(msg *tmsg.Msg) {
	if m.pendingLost > 0 && msg.Kind != tmsg.KindOverflow {
		of := tmsg.Msg{Kind: tmsg.KindOverflow, Src: 0, Lost: m.pendingLost}
		// Zero pendingLost before the store: a framer flush inside the
		// store may drop further messages, and those must accumulate into
		// a fresh count rather than be cleared below.
		m.pendingLost = 0
		if !m.store(&of) {
			m.pendingLost += of.Lost + 1
			m.MsgsLost++
			m.obs.lost.Inc()
			return // still no room; drop the current message too
		}
	}
	if m.needSync[msg.Src] && msg.Kind != tmsg.KindSync && msg.Kind != tmsg.KindOverflow {
		// Re-anchor this source's delta state. Flow-traced cores emit
		// their own PC-correct sync; this generic anchor restores the
		// cycle base for counter/bus sources.
		sy := tmsg.Msg{Kind: tmsg.KindSync, Src: msg.Src, Cycle: msg.Cycle, PC: 0}
		if !m.store(&sy) {
			m.MsgsLost++
			m.obs.lost.Inc()
			m.pendingLost++
			return
		}
		m.needSync[msg.Src] = false
	}
	if !m.store(msg) {
		m.MsgsLost++
		m.obs.lost.Inc()
		m.pendingLost++
		for i := range m.needSync {
			m.needSync[i] = true
		}
		return
	}
	if msg.Kind == tmsg.KindSync {
		m.needSync[msg.Src] = false
	}
}

// store encodes and appends one message, returning false on overflow.
//
// With framing enabled the message always enters the current frame (the
// framer decides its fate when that frame flushes), so store never fails —
// but a flush triggered by the append may drop a *previous* frame whose
// sink refused it, which is accounted like a direct overflow.
func (m *MCDS) store(msg *tmsg.Msg) bool {
	m.scratch = m.enc.Encode(m.scratch[:0], msg)
	if m.framer != nil {
		dropped := m.framer.Append(m.scratch)
		m.account(msg)
		if m.OnEmit != nil {
			m.OnEmit(msg)
		}
		if dropped > 0 {
			m.noteFrameDrop(dropped)
		}
		return true
	}
	if m.Sink != nil && !m.Sink.AppendTrace(m.scratch) {
		return false
	}
	m.account(msg)
	if m.OnEmit != nil {
		m.OnEmit(msg)
	}
	return true
}

// noteFrameDrop accounts n messages lost because the framer's sink refused
// a completed frame (trace buffer full at flush time). The recovery
// protocol is the same as for a direct overflow: the next emit inserts an
// Overflow marker and every source re-anchors its delta state.
func (m *MCDS) noteFrameDrop(n uint64) {
	m.MsgsLost += n
	m.obs.lost.Add(n)
	m.pendingLost += n
	for i := range m.needSync {
		m.needSync[i] = true
	}
}

func (m *MCDS) account(msg *tmsg.Msg) {
	m.MsgsEmitted++
	m.BytesEmitted += uint64(len(m.scratch))
	m.obs.msgs.Inc()
	m.obs.bytes.Add(uint64(len(m.scratch)))
	m.obs.bySrc[msg.Src].Inc()
	if msg.Kind == tmsg.KindSync {
		m.obs.reanchors.Inc()
	}
}

// CoreObs is the observation block of one core.
type CoreObs struct {
	id  uint8
	cpu *tricore.CPU

	prev  sim.Counters
	delta sim.Counters

	// FlowTrace emits program-flow messages; DataTrace emits data-access
	// messages for addresses within [DataLo, DataHi) (a zero range traces
	// every access). Both are trace-qualification switches the trigger
	// actions can flip at run time.
	FlowTrace bool
	DataTrace bool
	DataLo    uint32
	DataHi    uint32

	iSinceFlow uint64
	needSync   bool
	lastSync   uint64

	retired []tricore.Retired
}

// AddCore attaches an observation block to cpu under trace source id src.
// The core's retire log is enabled (observation is still non-intrusive:
// the log is outside the timing model).
func (m *MCDS) AddCore(cpu *tricore.CPU, src uint8) *CoreObs {
	if src >= tmsg.MaxSources {
		panic(fmt.Sprintf("mcds: source id %d out of range", src))
	}
	cpu.TraceEnabled = true
	c := &CoreObs{id: src, cpu: cpu, prev: *cpu.Counters(), needSync: true}
	m.cores = append(m.cores, c)
	return c
}

// Delta implements Observer.
func (c *CoreObs) Delta(e sim.Event) uint64 { return c.delta[e] }

// SrcID implements Observer.
func (c *CoreObs) SrcID() uint8 { return c.id }

// CPU returns the observed core.
func (c *CoreObs) CPU() *tricore.CPU { return c.cpu }

func (c *CoreObs) tick(m *MCDS, cycle uint64) {
	cur := c.cpu.Counters()
	c.delta = cur.Delta(&c.prev)
	c.prev = *cur
	c.retired = c.cpu.DrainRetired()

	if m.SyncEvery > 0 && cycle-c.lastSync >= m.SyncEvery {
		c.needSync = true
	}

	for i := range c.retired {
		re := &c.retired[i]
		// Comparators bound to this core observe every retired
		// instruction (evaluated below via matchRetired).
		if c.FlowTrace {
			if c.needSync || m.needSync[c.id] {
				sy := tmsg.Msg{Kind: tmsg.KindSync, Src: c.id, Cycle: re.Cycle, PC: re.PC}
				m.emit(&sy)
				c.needSync = false
				c.lastSync = cycle
				c.iSinceFlow = 0
			}
			c.iSinceFlow++
			if re.Taken {
				fl := tmsg.Msg{Kind: tmsg.KindFlow, Src: c.id, Cycle: re.Cycle,
					ICount: c.iSinceFlow, PC: re.Target}
				m.emit(&fl)
				c.iSinceFlow = 0
			}
		}
		if c.DataTrace && re.HasMem {
			if c.DataLo == 0 && c.DataHi == 0 || re.EA >= c.DataLo && re.EA < c.DataHi {
				da := tmsg.Msg{Kind: tmsg.KindData, Src: c.id, Cycle: re.Cycle,
					Addr: re.EA, Data: re.Data, Write: re.Write}
				m.emit(&da)
			}
		}
	}

	// Comparators.
	for _, cmp := range m.comps {
		if cmp.Core == c {
			cmp.eval(m, c.retired, cycle)
		}
	}
}

// BusObs is the observation block of a bus or another counter-bearing
// component (flash, DMA): anything exposing a *sim.Counters.
type BusObs struct {
	id    uint8
	ctrs  *sim.Counters
	prev  sim.Counters
	delta sim.Counters
}

// AddBus attaches a bus-style observation block reading ctrs under trace
// source id src.
func (m *MCDS) AddBus(ctrs *sim.Counters, src uint8) *BusObs {
	if src >= tmsg.MaxSources {
		panic(fmt.Sprintf("mcds: source id %d out of range", src))
	}
	b := &BusObs{id: src, ctrs: ctrs, prev: *ctrs}
	m.buses = append(m.buses, b)
	return b
}

// Delta implements Observer.
func (b *BusObs) Delta(e sim.Event) uint64 { return b.delta[e] }

// SrcID implements Observer.
func (b *BusObs) SrcID() uint8 { return b.id }

func (b *BusObs) tick() {
	b.delta = b.ctrs.Delta(&b.prev)
	b.prev = *b.ctrs
}
