package mcds

import (
	"testing"

	"repro/internal/emem"
	"repro/internal/tmsg"
)

// TestEmitZeroAlloc gates the MCDS message hot path: encoding into the
// reused scratch buffer and appending to the EMEM trace ring (raw mode) or
// the framer (hardened mode) must not allocate. One object per emitted
// message would dominate the GC at millions of messages per run.
func TestEmitZeroAlloc(t *testing.T) {
	for _, framed := range []bool{false, true} {
		name := "raw"
		if framed {
			name = "framed"
		}
		t.Run(name, func(t *testing.T) {
			ring := emem.New(1<<20, 0, 0)
			m := New("mcds", ring)
			if framed {
				m.EnableFraming()
			}
			msg := tmsg.Msg{Kind: tmsg.KindRate, Src: 1, CounterID: 2, Basis: 1000}
			emitOne := func() {
				msg.Cycle += 1000
				msg.Count = (msg.Count + 7) % 90
				m.emit(&msg)
			}
			for i := 0; i < 100; i++ {
				emitOne() // warm the scratch and framer buffers
			}
			allocs := testing.AllocsPerRun(5000, emitOne)
			if allocs != 0 {
				t.Errorf("emit allocates %.1f objects/op, want 0", allocs)
			}
			if m.MsgsLost != 0 {
				t.Errorf("ring overflowed during the gate (%d lost); enlarge it", m.MsgsLost)
			}
		})
	}
}
