package mcds

import (
	"repro/internal/bus"
)

// Register-file layout (word registers, offsets from the mapped base).
// This is the ECerberus/Back-Bone-Bus access path of the paper's Figure 4:
// besides the DAP, "it is however also possible to access the EEC from the
// TriCore on the product chip part over the MLI bridge. This means that in
// a later development phase a tool can communicate over a user interface
// like CAN or FlexRay with a monitor routine, running on TriCore, which
// then accesses the EEC."
const (
	RegID          = 0x00 // identification word
	RegMsgCount    = 0x04 // messages emitted (low 32 bits)
	RegMsgLost     = 0x08 // messages lost to overflow
	RegTraceLevel  = 0x0C // bytes currently buffered in the EMEM trace ring
	RegCounterBase = 0x10 // per-counter blocks of 16 bytes follow
	// Per-counter block offsets:
	regCtrl       = 0x0 // bit0: enabled (r/w)
	regTotal      = 0x4 // total source events since configuration (low 32 bits)
	regCount      = 0x8 // current window event count
	regBasis      = 0xC // current window basis count
	counterStride = 0x10
)

// RegFileID is the value read from RegID.
const RegFileID = 0x4D43_4453 // "MCDS"

// RegFile exposes the MCDS state as a bus target so on-chip software (a
// monitor routine) or the debug bus master can read counters and arm or
// disarm them at run time.
type RegFile struct {
	m    *MCDS
	base uint32

	Reads  uint64
	Writes uint64
}

// RegFile returns the memory-mapped view of the MCDS based at base.
func (m *MCDS) RegFile(base uint32) *RegFile {
	return &RegFile{m: m, base: base}
}

// Size returns the size of the register window in bytes.
func (rf *RegFile) Size() uint32 {
	return RegCounterBase + uint32(len(rf.m.counters))*counterStride
}

// Name implements bus.Target.
func (rf *RegFile) Name() string { return rf.m.Name + ".regs" }

// Access implements bus.Target.
func (rf *RegFile) Access(_ uint64, req *bus.Request) uint64 {
	off := req.Addr - rf.base
	if req.Write {
		rf.Writes++
		rf.write(off, get32(req.Data))
	} else {
		rf.Reads++
		put32(req.Data, rf.read(off))
	}
	return 2 // Back Bone Bus register access latency
}

func (rf *RegFile) read(off uint32) uint32 {
	switch off {
	case RegID:
		return RegFileID
	case RegMsgCount:
		return uint32(rf.m.MsgsEmitted)
	case RegMsgLost:
		return uint32(rf.m.MsgsLost)
	case RegTraceLevel:
		if rf.m.Sink == nil {
			return 0
		}
		return rf.m.Sink.Level()
	}
	if off >= RegCounterBase {
		i := int(off-RegCounterBase) / counterStride
		if i >= len(rf.m.counters) {
			return 0
		}
		c := rf.m.counters[i]
		switch (off - RegCounterBase) % counterStride {
		case regCtrl:
			if c.Enabled {
				return 1
			}
			return 0
		case regTotal:
			return uint32(c.TotalSrc)
		case regCount:
			return uint32(c.curCount)
		case regBasis:
			return uint32(c.curBasis)
		}
	}
	return 0
}

func (rf *RegFile) write(off uint32, v uint32) {
	if off < RegCounterBase {
		return // global registers are read-only
	}
	i := int(off-RegCounterBase) / counterStride
	if i >= len(rf.m.counters) {
		return
	}
	c := rf.m.counters[i]
	if (off-RegCounterBase)%counterStride == regCtrl {
		enable := v&1 != 0
		if enable && !c.Enabled {
			c.Reset()
		}
		c.Enabled = enable
	}
}

// CounterRegBase returns the byte address of counter i's register block
// when the file is mapped at its base.
func (rf *RegFile) CounterRegBase(i int) uint32 {
	return rf.base + RegCounterBase + uint32(i)*counterStride
}

func put32(p []byte, v uint32) {
	for i := range p {
		p[i] = byte(v >> (8 * uint(i)))
	}
}

func get32(p []byte) uint32 {
	var v uint32
	for i := range p {
		v |= uint32(p[i]) << (8 * uint(i))
	}
	return v
}
