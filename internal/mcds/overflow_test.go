package mcds

import (
	"testing"

	"repro/internal/emem"
	"repro/internal/tmsg"
)

// TestOverflowReanchorInvariant pins the overflow protocol at the message
// level: after any AppendTrace drop, the stream must carry a KindOverflow
// marker (with an exact Lost count) before normal traffic resumes, and
// each source must re-anchor with a KindSync before its first post-loss
// message — otherwise the tool-side delta decoder silently produces wrong
// cycles. The schedule overflows the ring twice with a partial drain in
// between, so the second round runs on a wrapped ring (head < tail).
func TestOverflowReanchorInvariant(t *testing.T) {
	const capacity = 96
	tiny := emem.New(capacity, 0, 0)
	m := New("mcds", tiny)

	var mirror []tmsg.Msg
	m.OnEmit = func(msg *tmsg.Msg) { mirror = append(mirror, *msg) }

	var received []byte
	drain := func(n uint32) { received = append(received, tiny.Drain(n)...) }

	cycle := uint64(10)
	emitRate := func(src uint8) {
		cycle += 100
		msg := tmsg.Msg{Kind: tmsg.KindRate, Src: src, Cycle: cycle,
			CounterID: 1, Basis: 100, Count: cycle % 7}
		m.emit(&msg)
	}

	// Anchor two sources, then drive both until the ring drops messages;
	// partially drain (the ring wraps) and resume; repeat.
	m.emit(&tmsg.Msg{Kind: tmsg.KindSync, Src: 0, Cycle: cycle, PC: 0x100})
	m.emit(&tmsg.Msg{Kind: tmsg.KindSync, Src: 1, Cycle: cycle, PC: 0x200})
	for round := 0; round < 2; round++ {
		lostBefore := m.MsgsLost
		for i := 0; m.MsgsLost == lostBefore; i++ {
			emitRate(uint8(i % 2))
			if i > 1000 {
				t.Fatal("ring never overflowed")
			}
		}
		drain(capacity / 2)
		for i := 0; i < 4; i++ { // resume: both sources emit again
			emitRate(uint8(i % 2))
		}
	}
	drain(tiny.Level())

	if tiny.BytesWritten <= capacity {
		t.Fatalf("ring never wrapped: %d bytes written into %d-byte ring",
			tiny.BytesWritten, capacity)
	}
	if m.pendingLost != 0 {
		t.Fatalf("loss not reported: pendingLost = %d after resume", m.pendingLost)
	}

	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(received)
	if err != nil {
		t.Fatalf("decode after overflow: %v", err)
	}

	// The decoded stream must match the emitter's ground-truth mirror
	// exactly — same messages, same order, same absolute cycles — proving
	// the decoder never desynchronized across either loss.
	if len(msgs) != len(mirror) {
		t.Fatalf("decoded %d messages, mirror has %d", len(msgs), len(mirror))
	}
	for i := range mirror {
		got := msgs[i]
		if got.Kind == tmsg.KindOverflow {
			// Overflow carries no timestamp on the wire; the decoder stamps
			// it with the source's running cycle.
			got.Cycle = mirror[i].Cycle
		}
		if got != mirror[i] {
			t.Fatalf("message %d: decoded %+v, emitted %+v", i, msgs[i], mirror[i])
		}
	}

	// Walk the stream and enforce the protocol ordering: after an Overflow
	// marker no source may emit before its re-anchoring Sync.
	var needSync [tmsg.MaxSources]bool
	var overflows int
	var reportedLost uint64
	for i, msg := range msgs {
		switch msg.Kind {
		case tmsg.KindOverflow:
			if msg.Lost == 0 {
				t.Fatalf("message %d: overflow marker with Lost = 0", i)
			}
			overflows++
			reportedLost += msg.Lost
			for s := range needSync {
				needSync[s] = true
			}
		case tmsg.KindSync:
			needSync[msg.Src] = false
		default:
			if needSync[msg.Src] {
				t.Fatalf("message %d: %v from src %d before its post-overflow Sync",
					i, msg.Kind, msg.Src)
			}
		}
	}
	if overflows < 2 {
		t.Fatalf("saw %d overflow markers, want one per round (2)", overflows)
	}
	if reportedLost != m.MsgsLost {
		t.Fatalf("overflow markers report %d lost, MCDS counted %d",
			reportedLost, m.MsgsLost)
	}
}

// TestFramedOverflowIsQuantified checks the framed path end to end at unit
// level: frames refused by a full ring surface on the tool side as an exact
// cumulative-counter gap, and the conservation invariant
// framed == delivered + accounted-lost holds.
func TestFramedOverflowIsQuantified(t *testing.T) {
	tiny := emem.New(256, 0, 0)
	m := New("mcds", tiny)
	m.EnableFraming()

	var received []byte
	cycle := uint64(0)
	m.emit(&tmsg.Msg{Kind: tmsg.KindSync, Src: 0, Cycle: cycle, PC: 0x100})
	for i := 0; i < 300; i++ {
		cycle += 50
		m.emit(&tmsg.Msg{Kind: tmsg.KindRate, Src: 0, Cycle: cycle,
			CounterID: 2, Basis: 64, Count: uint64(i % 5)})
		if i%60 == 59 { // slow tool: drains far less than is produced
			received = append(received, tiny.Drain(64)...)
		}
	}
	m.FlushTrace()
	received = append(received, tiny.Drain(tiny.Level())...)

	f := m.Framer()
	if f.FramesDropped == 0 {
		t.Fatal("schedule never overflowed the ring")
	}

	st := tmsg.NewStreamDecoder(true)
	msgs := st.Feed(received)
	st.Finalize(f.MsgsFramed)
	if got := uint64(len(msgs)) + st.AccountedLost(); got != f.MsgsFramed {
		t.Fatalf("conservation violated: %d delivered + %d lost != %d framed",
			len(msgs), st.AccountedLost(), f.MsgsFramed)
	}
	if st.AccountedLost() == 0 {
		t.Fatal("refused frames were not accounted as lost")
	}
}
