package mcds

import "repro/internal/tmsg"

// Reconstruct recovers the executed instruction address sequence of one
// trace source from its flow messages (tool-side processing of the
// cycle-accurate program trace). Reconstruction starts at the first Sync
// for the source; an Overflow message invalidates the anchor until the
// next Sync, so losses never fabricate instructions.
//
// Instructions are fixed 4-byte; a flow message with ICount=n means "n
// instructions retired sequentially starting at the current anchor, the
// last being a taken change of flow to PC".
func Reconstruct(msgs []tmsg.Msg, src uint8) []uint32 {
	var pcs []uint32
	var pc uint32
	anchored := false
	for i := range msgs {
		m := &msgs[i]
		if m.Kind == tmsg.KindOverflow {
			anchored = false
			continue
		}
		if m.Src != src {
			continue
		}
		switch m.Kind {
		case tmsg.KindSync:
			pc = m.PC
			anchored = true
		case tmsg.KindFlow:
			if !anchored {
				continue
			}
			for n := uint64(0); n < m.ICount; n++ {
				pcs = append(pcs, pc)
				pc += 4
			}
			pc = m.PC
		}
	}
	return pcs
}

// FlowEvent is one timestamped change of flow (for cross-core analyses).
type FlowEvent struct {
	Src    uint8
	Cycle  uint64
	Target uint32
}

// FlowEvents extracts the taken-branch timeline of all sources, in stream
// order (which the MCDS guarantees is cycle order per source and globally
// monotonic across sources observed by the same MCDS instance).
func FlowEvents(msgs []tmsg.Msg) []FlowEvent {
	var out []FlowEvent
	for i := range msgs {
		if msgs[i].Kind == tmsg.KindFlow {
			out = append(out, FlowEvent{Src: msgs[i].Src, Cycle: msgs[i].Cycle, Target: msgs[i].PC})
		}
	}
	return out
}
