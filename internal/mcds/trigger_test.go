package mcds

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/emem"
	"repro/internal/sim"
	"repro/internal/tmsg"
)

func TestExprCombinators(t *testing.T) {
	m := New("t", nil)
	a := m.AllocSignal("a")
	b := m.AllocSignal("b")
	c := m.AllocSignal("c")
	if m.SignalName(b) != "b" {
		t.Errorf("SignalName = %q", m.SignalName(b))
	}

	sig := func(vals ...bool) []bool { return vals }

	cases := []struct {
		name string
		e    Expr
		in   []bool
		want bool
	}{
		{"on true", On(a), sig(true, false, false), true},
		{"on false", On(a), sig(false, true, true), false},
		{"empty never", Expr{}, sig(true, true, true), false},
		{"allof both", AllOf(a, b), sig(true, true, false), true},
		{"allof one", AllOf(a, b), sig(true, false, false), false},
		{"anyof second", AnyOf(a, b), sig(false, true, false), true},
		{"anyof none", AnyOf(a, b), sig(false, false, true), false},
		{"andnot blocks", On(a).AndNot(b), sig(true, true, false), false},
		{"andnot passes", On(a).AndNot(b), sig(true, false, false), true},
		{"or left", On(a).Or(On(c)), sig(true, false, false), true},
		{"or right", On(a).Or(On(c)), sig(false, false, true), true},
		{"or neither", On(a).Or(On(c)), sig(false, true, false), false},
		{"nosignal term", On(NoSignal), sig(true, true, true), false},
		{"none of nosignal", On(a).AndNot(NoSignal), sig(true, false, false), true},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(tc.in); got != tc.want {
			t.Errorf("%s: got %v", tc.name, got)
		}
	}
}

func TestTriggerRuleOnce(t *testing.T) {
	m := New("t", nil)
	s := m.AllocSignal("s")
	out := m.AllocSignal("out")
	rule := m.AddRule(&TriggerRule{Name: "once", When: On(s), Once: true,
		Do: []Action{{Kind: ActSetSignal, Signal: out}}})
	// Drive the signal manually for three cycles.
	for cy := uint64(0); cy < 3; cy++ {
		for i := range m.signals {
			m.signals[i] = false
		}
		m.set(s)
		for _, r := range m.rules {
			r.tick(m, cy)
		}
	}
	if rule.Fired != 1 {
		t.Errorf("once rule fired %d times", rule.Fired)
	}
}

func TestActionsTraceSwitches(t *testing.T) {
	sink := emem.New(4096, 0, 0)
	m := New("t", sink)
	// A fake core obs is needed for the trace actions; use a BusObs-free
	// core stub via the real structure.
	core := &CoreObs{id: 0}
	m.apply(Action{Kind: ActFlowTraceOn, Core: core}, 0)
	if !core.FlowTrace || !core.needSync {
		t.Error("flow trace on failed")
	}
	m.apply(Action{Kind: ActFlowTraceOff, Core: core}, 0)
	if core.FlowTrace {
		t.Error("flow trace off failed")
	}
	m.apply(Action{Kind: ActDataTraceOn, Core: core}, 0)
	if !core.DataTrace {
		t.Error("data trace on failed")
	}
	m.apply(Action{Kind: ActDataTraceOff, Core: core}, 0)
	if core.DataTrace {
		t.Error("data trace off failed")
	}
	m.apply(Action{Kind: ActEmitTrigger, TriggerID: 5, Src: 0}, 42)
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(sink.Drain(sink.Level()))
	if err != nil || len(msgs) != 1 || msgs[0].Kind != tmsg.KindTrigger || msgs[0].TriggerID != 5 {
		t.Errorf("trigger emission: %v %+v", err, msgs)
	}
}

func TestStateMachineAccessorsAndPanics(t *testing.T) {
	m := New("t", nil)
	sm := m.AddStateMachine("sm", []string{"idle", "run"})
	if sm.StateSignal(0) == sm.StateSignal(1) {
		t.Error("state signals must differ")
	}
	if m.SignalName(sm.StateSignal(1)) != "sm.run" {
		t.Errorf("state signal name = %q", m.SignalName(sm.StateSignal(1)))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range transition must panic")
			}
		}()
		sm.AddTransition(Transition{From: 0, To: 5})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty state machine must panic")
			}
		}()
		m.AddStateMachine("bad", nil)
	}()
}

func TestAddCounterValidation(t *testing.T) {
	m := New("t", nil)
	obs := m.AddBus(new(sim.Counters), 1)
	cases := []*Counter{
		{Name: "no-res", Src: Tap{Obs: obs, Event: sim.EvCycle}},
		{Name: "no-src", Resolution: 10},
		{Name: "no-basis", Mode: ModeRate, Resolution: 10, Src: Tap{Obs: obs, Event: sim.EvCycle}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("counter %s must panic", c.Name)
				}
			}()
			m.AddCounter(c)
		}()
	}
}

func TestComparatorValidation(t *testing.T) {
	m := New("t", nil)
	defer func() {
		if recover() == nil {
			t.Error("comparator without core must panic")
		}
	}()
	m.AddComparator(&Comparator{Name: "bad"})
}

func TestFlowEvents(t *testing.T) {
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindSync, Src: 0, Cycle: 1, PC: 0x100},
		{Kind: tmsg.KindFlow, Src: 0, Cycle: 10, ICount: 3, PC: 0x200},
		{Kind: tmsg.KindRate, Src: 1, Cycle: 11},
		{Kind: tmsg.KindFlow, Src: 1, Cycle: 12, ICount: 1, PC: 0x300},
	}
	ev := FlowEvents(msgs)
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Target != 0x200 || ev[1].Src != 1 || ev[1].Cycle != 12 {
		t.Errorf("events = %+v", ev)
	}
}

func TestRegFileDirect(t *testing.T) {
	sink := emem.New(1024, 0, 0)
	m := New("t", sink)
	obs := m.AddBus(new(sim.Counters), 1)
	ctr := NewRateCounter("x", 0, Tap{Obs: obs, Event: sim.EvCycle},
		Tap{Obs: obs, Event: sim.EvCycle}, 100)
	m.AddCounter(ctr)
	rf := m.RegFile(0x1000)
	if rf.Name() == "" || rf.Size() < RegCounterBase+0x10 {
		t.Error("regfile identity")
	}
	rd := func(off uint32) uint32 {
		req := &bus.Request{Addr: 0x1000 + off, Data: make([]byte, 4)}
		rf.Access(0, req)
		return uint32(req.Data[0]) | uint32(req.Data[1])<<8 |
			uint32(req.Data[2])<<16 | uint32(req.Data[3])<<24
	}
	if rd(RegID) != RegFileID {
		t.Errorf("id = %#x", rd(RegID))
	}
	if rd(RegTraceLevel) != 0 {
		t.Error("trace level should be 0")
	}
	// Disable counter 0 via CTRL.
	req := &bus.Request{Addr: rf.CounterRegBase(0), Data: []byte{0, 0, 0, 0}, Write: true}
	rf.Access(0, req)
	if ctr.Enabled {
		t.Error("counter not disabled via regfile")
	}
	// Re-enable resets the window.
	ctr.curCount = 55
	req.Data[0] = 1
	rf.Access(0, req)
	if !ctr.Enabled || ctr.curCount != 0 {
		t.Error("re-enable must reset the window")
	}
	// Out-of-range registers read as zero and ignore writes.
	if rd(rf.Size()+64) != 0 {
		t.Error("oob read not zero")
	}
	wrOut := &bus.Request{Addr: 0x1000 + RegID, Data: []byte{1, 0, 0, 0}, Write: true}
	rf.Access(0, wrOut)
	if rd(RegID) != RegFileID {
		t.Error("global registers must be read-only")
	}
}

func TestCoreObsCPUAccessor(t *testing.T) {
	sink := emem.New(1024, 0, 0)
	m := New("t", sink)
	_ = m
	_ = sink
	// CPU() accessor is exercised through the soc-based rig in mcds_test;
	// here we only check the nil-safety contract of Delta on a fresh BusObs.
	obs := m.AddBus(new(sim.Counters), 2)
	if obs.Delta(sim.EvCycle) != 0 {
		t.Error("fresh delta must be zero")
	}
}
