// Package cache models the CPU instruction and data caches: set-associative
// tag arrays with configurable size, line length, associativity and
// replacement policy.
//
// The caches are write-through (as in the TriCore 1.3 data cache), so the
// model keeps tags only and leaves the data in the backing store; a hit is
// purely a timing statement. This keeps the simulated SoC trivially
// coherent while preserving everything the profiling methodology measures:
// hit/miss/access event streams and miss-induced stall cycles.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Replacement selects the victim policy.
type Replacement uint8

// Replacement policies.
const (
	LRU Replacement = iota
	Random
)

// String names the policy.
func (r Replacement) String() string {
	if r == LRU {
		return "lru"
	}
	return "random"
}

// Config parameterizes a cache.
type Config struct {
	Name      string
	Size      uint32 // total capacity in bytes
	LineBytes uint32 // line length, power of two
	Ways      int    // associativity
	Policy    Replacement
	Seed      uint64 // RNG seed for Random replacement
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() uint32 { return c.Size / (c.LineBytes * uint32(c.Ways)) }

type line struct {
	valid   bool
	tag     uint32
	lastUse uint64
}

// Cache is a set-associative tag array.
type Cache struct {
	cfg      Config
	sets     uint32
	lines    []line // sets × ways
	useClock uint64
	rng      *sim.RNG
	counters *sim.Counters
	evI      [3]sim.Event // access/hit/miss events to report under

	// index fast path: LineBytes is always a power of two, and set counts
	// are in practice too. Divisions by non-constant uint32 dominate the
	// probe cost otherwise (Lookup sits on the per-cycle fetch path).
	lineShift uint32 // log2(LineBytes)
	setShift  uint32 // log2(sets) when setsPow2
	setMask   uint32 // sets-1 when setsPow2
	setsPow2  bool
	ways      uint32 // cfg.Ways, hoisted for the probe loop
}

// New builds a cache from cfg. kind selects which event classes lookups are
// reported under: "i" for the instruction cache, "d" for the data cache.
// ctrs is the counter set lookups are recorded into (typically the owning
// CPU's counters, so one observation block sees all core events); nil
// allocates a private set.
func New(cfg Config, kind string, ctrs *sim.Counters) *Cache {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: LineBytes must be a power of two")
	}
	if cfg.Ways <= 0 || cfg.Size == 0 || cfg.Size%(cfg.LineBytes*uint32(cfg.Ways)) != 0 {
		panic(fmt.Sprintf("cache %s: inconsistent geometry %+v", cfg.Name, cfg))
	}
	if ctrs == nil {
		ctrs = new(sim.Counters)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     cfg.Sets(),
		lines:    make([]line, cfg.Sets()*uint32(cfg.Ways)),
		rng:      sim.NewRNG(cfg.Seed ^ 0xCAC4E),
		counters: ctrs,
	}
	c.ways = uint32(cfg.Ways)
	c.lineShift = uint32(bits.TrailingZeros32(cfg.LineBytes))
	if c.sets&(c.sets-1) == 0 {
		c.setsPow2 = true
		c.setShift = uint32(bits.TrailingZeros32(c.sets))
		c.setMask = c.sets - 1
	}
	switch kind {
	case "i":
		c.evI = [3]sim.Event{sim.EvICacheAccess, sim.EvICacheHit, sim.EvICacheMiss}
	case "d":
		c.evI = [3]sim.Event{sim.EvDCacheAccess, sim.EvDCacheHit, sim.EvDCacheMiss}
	default:
		panic("cache: kind must be \"i\" or \"d\"")
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Counters exposes the counter set lookups are recorded into.
func (c *Cache) Counters() *sim.Counters { return c.counters }

func (c *Cache) index(addr uint32) (set, tag uint32) {
	lineNo := addr >> c.lineShift
	if c.setsPow2 {
		return lineNo & c.setMask, lineNo >> c.setShift
	}
	return lineNo % c.sets, lineNo / c.sets
}

func (c *Cache) set(set uint32) []line {
	w := uint32(c.cfg.Ways)
	return c.lines[set*w : set*w+w]
}

// Lookup probes the cache for addr, updating replacement state and the
// access/hit/miss counters. It returns true on hit. This is the hottest
// function in the whole simulator (the fetch path probes it on every
// block-crossing cycle), so the way slice is hoisted out of the scan.
func (c *Cache) Lookup(addr uint32) bool {
	c.useClock++
	set, tag := c.index(addr)
	c.counters.Inc(c.evI[0])
	for i := set * c.ways; i < (set+1)*c.ways; i++ {
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.useClock
			c.counters.Inc(c.evI[1])
			return true
		}
	}
	c.counters.Inc(c.evI[2])
	return false
}

// Probe reports whether addr would hit, without touching replacement state
// or counters (used by tests asserting ground truth).
func (c *Cache) Probe(addr uint32) bool {
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr, evicting a victim per the
// replacement policy. It returns the byte address of the evicted line and
// whether an eviction of a valid line occurred.
func (c *Cache) Fill(addr uint32) (evicted uint32, didEvict bool) {
	c.useClock++
	set, tag := c.index(addr)
	ways := c.set(set)
	victim := 0
	switch c.cfg.Policy {
	case LRU:
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
			if ways[i].lastUse < ways[victim].lastUse {
				victim = i
			}
		}
	case Random:
		victim = c.rng.Intn(len(ways))
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
		}
	}
	v := &ways[victim]
	if v.valid {
		evicted = (v.tag*c.sets + set) * c.cfg.LineBytes
		didEvict = true
	}
	*v = line{valid: true, tag: tag, lastUse: c.useClock}
	return evicted, didEvict
}

// InvalidateAll clears every line (power-on or cache-off transition).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// LineBytes returns the configured line length.
func (c *Cache) LineBytes() uint32 { return c.cfg.LineBytes }

// HitRate returns hits/accesses over the cache lifetime (1 when never
// accessed, matching "no misses yet").
func (c *Cache) HitRate() float64 {
	acc := c.counters.Get(c.evI[0])
	if acc == 0 {
		return 1
	}
	return float64(c.counters.Get(c.evI[1])) / float64(acc)
}
