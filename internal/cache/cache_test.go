package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func cfg4x2() Config {
	// 4 sets × 2 ways × 16-byte lines = 128 bytes.
	return Config{Name: "t", Size: 128, LineBytes: 16, Ways: 2, Policy: LRU}
}

func TestMissThenHit(t *testing.T) {
	c := New(cfg4x2(), "i", nil)
	if c.Lookup(0x100) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0x100)
	if !c.Lookup(0x104) {
		t.Fatal("same line must hit")
	}
	ctr := c.Counters()
	if ctr.Get(sim.EvICacheAccess) != 2 || ctr.Get(sim.EvICacheHit) != 1 || ctr.Get(sim.EvICacheMiss) != 1 {
		t.Errorf("counters = %d/%d/%d", ctr.Get(sim.EvICacheAccess),
			ctr.Get(sim.EvICacheHit), ctr.Get(sim.EvICacheMiss))
	}
}

func TestDKindUsesDataEvents(t *testing.T) {
	c := New(cfg4x2(), "d", nil)
	c.Lookup(0)
	if c.Counters().Get(sim.EvDCacheMiss) != 1 {
		t.Error("d-kind must count data events")
	}
	if c.Counters().Get(sim.EvICacheMiss) != 0 {
		t.Error("d-kind must not count instruction events")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(cfg4x2(), "i", nil)
	// Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
	a0, a1, a2 := uint32(0*16), uint32(4*16), uint32(8*16)
	c.Lookup(a0)
	c.Fill(a0)
	c.Lookup(a1)
	c.Fill(a1)
	c.Lookup(a0) // a0 is now MRU
	ev, did := c.Fill(a2)
	if !did || ev != a1 {
		t.Errorf("evicted %#x (did=%v), want %#x", ev, did, a1)
	}
	if !c.Probe(a0) || c.Probe(a1) || !c.Probe(a2) {
		t.Error("wrong lines resident after eviction")
	}
}

func TestFillPrefersInvalidWay(t *testing.T) {
	c := New(cfg4x2(), "i", nil)
	c.Fill(0)
	if _, did := c.Fill(4 * 16); did {
		t.Error("second fill must use the empty way, not evict")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(cfg4x2(), "i", nil)
	c.Fill(0)
	c.InvalidateAll()
	if c.Probe(0) {
		t.Error("line survived InvalidateAll")
	}
}

func TestRandomPolicyStaysInSet(t *testing.T) {
	cfg := cfg4x2()
	cfg.Policy = Random
	cfg.Seed = 1
	c := New(cfg, "i", nil)
	// Fill set 0 beyond capacity many times; set 1 content must survive.
	c.Fill(1 * 16) // set 1
	for i := uint32(0); i < 50; i++ {
		c.Fill((i * 4) * 16) // all map to set 0
	}
	if !c.Probe(1 * 16) {
		t.Error("random replacement evicted a line from another set")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Name: "x", Size: 100, LineBytes: 16, Ways: 2}, // size not divisible
		{Name: "x", Size: 128, LineBytes: 12, Ways: 2}, // line not pow2
		{Name: "x", Size: 128, LineBytes: 16, Ways: 0}, // no ways
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			New(cfg, "i", nil)
		}()
	}
}

func TestHitRate(t *testing.T) {
	c := New(cfg4x2(), "i", nil)
	if c.HitRate() != 1 {
		t.Error("untouched cache hit rate must be 1")
	}
	c.Lookup(0) // miss
	c.Fill(0)
	for i := 0; i < 3; i++ {
		c.Lookup(0) // hits
	}
	if got := c.HitRate(); got != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", got)
	}
}

// Property: after Fill(addr), Lookup(addr) hits; a second Lookup of an
// address in the same line also hits; accesses never disturb other sets.
func TestFillLookupProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{Name: "p", Size: 1024, LineBytes: 32, Ways: 4, Policy: LRU}, "d", nil)
		for _, a := range addrs {
			if !c.Lookup(a) {
				c.Fill(a)
			}
			if !c.Probe(a) {
				return false
			}
			if !c.Lookup(a ^ 3) { // same line (flip low bits)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of resident lines never exceeds capacity.
func TestCapacityInvariant(t *testing.T) {
	f := func(addrs []uint32) bool {
		cfg := Config{Name: "p", Size: 256, LineBytes: 16, Ways: 2, Policy: LRU}
		c := New(cfg, "i", nil)
		for _, a := range addrs {
			c.Fill(a)
		}
		resident := 0
		for i := range c.lines {
			if c.lines[i].valid {
				resident++
			}
		}
		return resident <= int(cfg.Size/cfg.LineBytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
