package cache

import (
	"testing"

	"repro/internal/sim"
)

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{Name: "b", Size: 16 << 10, LineBytes: 32, Ways: 2}, "i", new(sim.Counters))
	c.Fill(0x8000_0000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(0x8000_0000)
	}
}

func BenchmarkLookupMissFill(b *testing.B) {
	c := New(Config{Name: "b", Size: 16 << 10, LineBytes: 32, Ways: 2}, "i", new(sim.Counters))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint32(i) * 32
		if !c.Lookup(addr) {
			c.Fill(addr)
		}
	}
}
