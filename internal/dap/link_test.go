package dap

import (
	"testing"

	"repro/internal/emem"
	"repro/internal/sim"
	"repro/internal/tmsg"
)

// fillFrames encodes n rate messages (with periodic syncs) through a
// Framer into e and returns the framer.
func fillFrames(e *emem.EMEM, n int) *tmsg.Framer {
	f := &tmsg.Framer{Sink: e.AppendTrace}
	var enc tmsg.Encoder
	var scratch []byte
	cycle := uint64(0)
	for i := 0; i < n; i++ {
		cycle += 5
		var m tmsg.Msg
		if i%20 == 0 {
			m = tmsg.Msg{Kind: tmsg.KindSync, Src: 0, Cycle: cycle, PC: 0x100}
		} else {
			m = tmsg.Msg{Kind: tmsg.KindRate, Src: 0, Cycle: cycle,
				CounterID: 1, Basis: 100, Count: uint64(i % 9)}
		}
		scratch = enc.Encode(scratch[:0], &m)
		f.Append(scratch)
	}
	f.Flush()
	return f
}

// flakyLink corrupts every transmission until attempt k, then passes.
type flakyLink struct {
	failFirst int
	attempt   int
	downUntil uint64
}

func (l *flakyLink) Down(cycle uint64) bool { return cycle < l.downUntil }

func (l *flakyLink) Transmit(_ uint64, frame []byte) ([]byte, bool) {
	l.attempt++
	if l.attempt%(l.failFirst+1) != 0 {
		c := make([]byte, len(frame))
		copy(c, frame)
		c[len(c)/2] ^= 0x04
		return c, true
	}
	return frame, true
}

// TestReliableRetryRecoversEverything: a link that corrupts two of every
// three attempts still delivers every message — at the cost of NAKs and
// retransmission bandwidth.
func TestReliableRetryRecoversEverything(t *testing.T) {
	e := emem.New(1<<16, 0, 0)
	f := fillFrames(e, 400)

	d := New(Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 0, CPUFreqMHz: 100}, e)
	d.Reliable = true
	d.Fault = &flakyLink{failFirst: 2}
	for cy := uint64(0); cy < 400_000 && (e.Level() > 0 || d.FramesDelivered == 0); cy++ {
		d.Tick(cy)
	}
	d.DrainAll()

	msgs, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stream()
	st.Finalize(f.MsgsFramed)
	if d.Retries == 0 {
		t.Fatal("flaky link produced no retries")
	}
	if uint64(len(msgs)) != f.MsgsFramed {
		t.Fatalf("delivered %d messages, want %d (retries %d, abandoned %d)",
			len(msgs), f.MsgsFramed, d.Retries, d.FramesAbandoned)
	}
	if st.AccountedLost() != 0 {
		t.Fatalf("recoverable corruption lost %d messages", st.AccountedLost())
	}
}

// TestReliableAbandonsSourceCorruption: a frame corrupted in the EMEM
// itself never passes CRC — the protocol must give up after MaxRetries and
// the tool must account the loss exactly.
func TestReliableAbandonsSourceCorruption(t *testing.T) {
	e := emem.New(1<<16, 0, 0)
	f := fillFrames(e, 300)
	// Flip one bit in the middle of the buffered frame bytes: source-level
	// corruption that retransmission cannot heal.
	e.CorruptBit(e.Level()/2, 3)

	d := New(Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 0, CPUFreqMHz: 100}, e)
	d.Reliable = true
	d.DrainAll()

	msgs, _ := d.Decode()
	st := d.Stream()
	st.Finalize(f.MsgsFramed)
	if d.FramesAbandoned == 0 {
		t.Fatal("source corruption was never abandoned")
	}
	if st.AccountedLost() == 0 {
		t.Fatal("abandoned frame not accounted as lost")
	}
	if uint64(len(msgs))+st.AccountedLost() != f.MsgsFramed {
		t.Fatalf("conservation violated: %d delivered + %d lost != %d framed",
			len(msgs), st.AccountedLost(), f.MsgsFramed)
	}
}

// TestStallWindowStopsDrain: while the link is down the EMEM keeps its
// content and no credit accrues (the bandwidth is lost, not deferred).
func TestStallWindowStopsDrain(t *testing.T) {
	e := emem.New(1<<16, 0, 0)
	fillFrames(e, 100)
	before := e.Level()

	d := New(Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 0, CPUFreqMHz: 100}, e)
	d.Reliable = true
	d.Fault = &flakyLink{failFirst: 0, downUntil: 5_000}
	for cy := uint64(0); cy < 5_000; cy++ {
		d.Tick(cy)
	}
	if e.Level() != before || d.TotalDrained != 0 {
		t.Fatal("link drained while down")
	}
	for cy := uint64(5_000); cy < 6_000; cy++ {
		d.Tick(cy)
	}
	// 0.1 B/cycle × 1000 cycles ≈ 100 bytes: no catch-up burst.
	if d.TotalDrained > 110 {
		t.Fatalf("drained %d bytes in 1000 cycles after stall — credit accrued while down", d.TotalDrained)
	}
}

// TestDecodeIncremental: repeated Decode calls while draining must agree
// with a single DecodeAll over the full stream (the O(n²) fix).
func TestDecodeIncremental(t *testing.T) {
	e := emem.New(1<<16, 0, 0)
	var enc tmsg.Encoder
	var scratch []byte
	var want []tmsg.Msg
	rng := sim.NewRNG(9)
	cycle := uint64(0)
	for i := 0; i < 500; i++ {
		cycle += uint64(rng.Range(1, 9))
		m := tmsg.Msg{Kind: tmsg.KindRate, Src: 0, Cycle: cycle,
			CounterID: uint8(i % 3), Basis: 50, Count: uint64(rng.Intn(50))}
		if i%40 == 0 {
			m = tmsg.Msg{Kind: tmsg.KindSync, Src: 0, Cycle: cycle, PC: uint32(i)}
		}
		scratch = enc.Encode(scratch[:0], &m)
		e.AppendTrace(scratch)
		want = append(want, m)
	}

	d := New(Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 0, CPUFreqMHz: 100}, e)
	var got []tmsg.Msg
	for cy := uint64(0); e.Level() > 0; cy++ {
		d.Tick(cy)
		ms, err := d.Decode() // decode-as-you-drain: incremental, cheap
		if err != nil {
			t.Fatal(err)
		}
		got = ms
	}
	d.DrainAll()
	got, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
