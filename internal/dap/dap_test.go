package dap

import (
	"testing"

	"repro/internal/emem"
	"repro/internal/sim"
	"repro/internal/tmsg"
)

func TestBandwidthArithmetic(t *testing.T) {
	cfg := Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: 180}
	// 40e6 * 2 / 8 = 10 MB/s raw; 8 MB/s after 20% overhead.
	if got := cfg.BytesPerSecond(); got != 8_000_000 {
		t.Errorf("BytesPerSecond = %d", got)
	}
	// 8e6 / 180e6 cycles ≈ 0.044 B/cycle → 44444 bytes per MCycle.
	if got := cfg.BytesPerMCycle(); got != 44444 {
		t.Errorf("BytesPerMCycle = %d", got)
	}
}

func TestBandwidthDoesNotScaleWithCPU(t *testing.T) {
	// The paper's core constraint: the link is fixed; raising the CPU
	// clock shrinks the per-cycle drain budget.
	slow := DefaultConfig(90)
	fast := DefaultConfig(360)
	if slow.BytesPerSecond() != fast.BytesPerSecond() {
		t.Error("absolute link bandwidth must be CPU-independent")
	}
	if fast.BytesPerMCycle() >= slow.BytesPerMCycle() {
		t.Error("per-cycle budget must shrink with CPU frequency")
	}
}

func TestDrainRate(t *testing.T) {
	e := emem.New(4096, 0, 0)
	e.AppendTrace(make([]byte, 4000))
	cfg := Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 0, CPUFreqMHz: 100}
	// 10 MB/s at 100 MHz = 0.1 B/cycle.
	d := New(cfg, e)
	for cy := uint64(0); cy < 10_000; cy++ {
		d.Tick(cy)
	}
	if d.TotalDrained < 990 || d.TotalDrained > 1010 {
		t.Errorf("drained %d bytes in 10k cycles, want about 1000", d.TotalDrained)
	}
}

func TestDrainAllAndDecode(t *testing.T) {
	e := emem.New(4096, 0, 0)
	var enc tmsg.Encoder
	var buf []byte
	msgs := []tmsg.Msg{
		{Kind: tmsg.KindSync, Src: 0, Cycle: 10, PC: 0x100},
		{Kind: tmsg.KindRate, Src: 0, Cycle: 20, CounterID: 1, Basis: 100, Count: 6},
	}
	for i := range msgs {
		buf = enc.Encode(buf[:0], &msgs[i])
		e.AppendTrace(buf)
	}
	d := New(DefaultConfig(180), e)
	d.DrainAll()
	out, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Count != 6 {
		t.Errorf("decoded %+v", out)
	}
	if e.Level() != 0 {
		t.Error("buffer not empty after DrainAll")
	}
}

func TestTickerInterface(t *testing.T) {
	var _ sim.Ticker = New(DefaultConfig(180), nil)
}
