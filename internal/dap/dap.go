// Package dap models the Device Access Port — the "two pin debug interface
// which allows robust high-speed connection" through which the external
// tool drains the EMEM trace buffer. Its defining property for the
// methodology is that its bandwidth is fixed by the pin interface and
// "does not scale with the CPU frequency" (paper Section 5): the DAP
// drains a constant number of bytes per wall-clock second, which shrinks
// relative to the CPU as the core clock rises.
package dap

import (
	"repro/internal/emem"
	"repro/internal/tmsg"
)

// Config describes the tool link.
type Config struct {
	// ClockMHz is the DAP interface clock (e.g. 40 MHz).
	ClockMHz uint64
	// BitsPerClock is the payload width per DAP clock (2 for the two-pin
	// DAP, 1 for JTAG-class links).
	BitsPerClock uint64
	// Overhead is the protocol overhead fraction in percent (packetizing,
	// turnaround); effective payload = raw * (100-Overhead)/100.
	Overhead uint64
	// CPUFreqMHz is the core clock the drain rate is expressed against.
	CPUFreqMHz uint64
}

// DefaultConfig is a 40 MHz two-pin DAP with 20 % protocol overhead.
func DefaultConfig(cpuMHz uint64) Config {
	return Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: cpuMHz}
}

// BytesPerSecond returns the effective payload bandwidth of the link.
func (c Config) BytesPerSecond() uint64 {
	raw := c.ClockMHz * 1_000_000 * c.BitsPerClock / 8
	return raw * (100 - c.Overhead) / 100
}

// BytesPerMCycle returns the effective payload bytes the link moves per
// one million CPU cycles.
func (c Config) BytesPerMCycle() uint64 {
	return c.BytesPerSecond() * 1_000_000 / (c.CPUFreqMHz * 1_000_000)
	// == BytesPerSecond / CPUFreqMHz, kept explicit for readability.
}

// DAP drains the EMEM trace ring at the configured rate and accumulates
// the bytes on the tool side.
type DAP struct {
	Cfg  Config
	Emem *emem.EMEM

	// Received is the tool-side byte stream (decode with tmsg.Decoder).
	Received []byte

	credit       uint64 // fixed-point byte credit, scaled by CPUFreq in Hz
	TotalDrained uint64
}

// New creates a DAP draining e.
func New(cfg Config, e *emem.EMEM) *DAP {
	return &DAP{Cfg: cfg, Emem: e}
}

// Tick implements sim.Ticker: accumulate fractional byte credit per CPU
// cycle and drain whole bytes.
func (d *DAP) Tick(uint64) {
	d.credit += d.Cfg.BytesPerSecond()
	denom := d.Cfg.CPUFreqMHz * 1_000_000
	n := d.credit / denom
	if n == 0 {
		return
	}
	d.credit -= n * denom
	if d.Emem == nil {
		return
	}
	b := d.Emem.Drain(uint32(n))
	d.Received = append(d.Received, b...)
	d.TotalDrained += uint64(len(b))
}

// DrainAll empties the remaining buffer content (end of measurement run,
// when real time no longer matters).
func (d *DAP) DrainAll() {
	if d.Emem == nil {
		return
	}
	for d.Emem.Level() > 0 {
		b := d.Emem.Drain(d.Emem.Level())
		d.Received = append(d.Received, b...)
		d.TotalDrained += uint64(len(b))
	}
}

// Decode parses every complete message received so far.
func (d *DAP) Decode() ([]tmsg.Msg, error) {
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(d.Received)
	return msgs, err
}
