// Package dap models the Device Access Port — the "two pin debug interface
// which allows robust high-speed connection" through which the external
// tool drains the EMEM trace buffer. Its defining property for the
// methodology is that its bandwidth is fixed by the pin interface and
// "does not scale with the CPU frequency" (paper Section 5): the DAP
// drains a constant number of bytes per wall-clock second, which shrinks
// relative to the CPU as the core clock rises.
package dap

import (
	"bytes"

	"repro/internal/emem"
	"repro/internal/obs"
	"repro/internal/tmsg"
)

// Config describes the tool link.
type Config struct {
	// ClockMHz is the DAP interface clock (e.g. 40 MHz).
	ClockMHz uint64
	// BitsPerClock is the payload width per DAP clock (2 for the two-pin
	// DAP, 1 for JTAG-class links).
	BitsPerClock uint64
	// Overhead is the protocol overhead fraction in percent (packetizing,
	// turnaround); effective payload = raw * (100-Overhead)/100.
	Overhead uint64
	// CPUFreqMHz is the core clock the drain rate is expressed against.
	CPUFreqMHz uint64
}

// DefaultConfig is a 40 MHz two-pin DAP with 20 % protocol overhead.
func DefaultConfig(cpuMHz uint64) Config {
	return Config{ClockMHz: 40, BitsPerClock: 2, Overhead: 20, CPUFreqMHz: cpuMHz}
}

// BytesPerSecond returns the effective payload bandwidth of the link.
func (c Config) BytesPerSecond() uint64 {
	raw := c.ClockMHz * 1_000_000 * c.BitsPerClock / 8
	return raw * (100 - c.Overhead) / 100
}

// BytesPerMCycle returns the effective payload bytes the link moves per
// one million CPU cycles.
func (c Config) BytesPerMCycle() uint64 {
	return c.BytesPerSecond() * 1_000_000 / (c.CPUFreqMHz * 1_000_000)
	// == BytesPerSecond / CPUFreqMHz, kept explicit for readability.
}

// LinkFault injects transport faults into the DAP connection. The fault
// injector (internal/fault) implements it; a nil fault is a perfect link.
type LinkFault interface {
	// Down reports whether the link is unusable this cycle (cable stall /
	// disconnect window). A down link drains nothing and earns no credit:
	// the bandwidth is simply lost.
	Down(cycle uint64) bool
	// Transmit filters one frame on its way to the tool. It returns the
	// bytes as received — possibly corrupted or truncated — and false when
	// the frame vanished entirely.
	Transmit(cycle uint64, frame []byte) ([]byte, bool)
}

// Drain-protocol defaults: bounded retries with exponential backoff. The
// backoff is expressed in CPU cycles (the simulation time base).
const (
	// DefaultMaxRetries bounds the retransmission attempts per frame
	// before the drain protocol gives up and moves on (the frame is then
	// accounted as lost by the tool-side cumulative counters).
	DefaultMaxRetries = 6
	// DefaultBackoffBase is the first retry delay; attempt k waits
	// base << min(k-1, 6) cycles.
	DefaultBackoffBase = 64
)

// DAP drains the EMEM trace ring at the configured rate and accumulates
// the bytes on the tool side.
//
// Two drain protocols are modelled. The raw protocol (Reliable == false)
// moves bytes verbatim — the original happy-path model. The reliable
// protocol (Reliable == true, for frame streams produced via
// tmsg.Framer) validates each frame's CRC on arrival and NAKs corrupted
// frames: the frame is retransmitted after a bounded exponential backoff,
// and abandoned after MaxRetries attempts (a frame corrupted in the EMEM
// itself never heals, so unbounded retry would wedge the link). Every
// retransmission costs link bandwidth; only the first copy of each frame
// rides the regular drain credit.
type DAP struct {
	Cfg  Config
	Emem *emem.EMEM

	// Received is the tool-side byte stream (decode with tmsg.Decoder, or
	// tmsg.StreamDecoder in reliable/framed mode).
	Received []byte

	// Reliable selects the frame-aware CRC/NAK/retry drain protocol.
	Reliable bool
	// Fault, when non-nil, injects link faults (nil = perfect link).
	Fault LinkFault
	// MaxRetries and BackoffBase tune the retry protocol; zero values
	// select the defaults.
	MaxRetries  int
	BackoffBase uint64

	credit       uint64 // fixed-point byte credit, scaled by CPUFreq in Hz
	TotalDrained uint64
	drainBuf     []byte // per-tick drain scratch, reused every cycle

	// Reliable-mode state.
	staging  []byte // drained bytes not yet assembled into frames
	inflight []byte // frame awaiting successful transmission
	attempts int
	retryAt  uint64
	lastTick uint64

	// Incremental decode state.
	dec     tmsg.Decoder
	stream  *tmsg.StreamDecoder
	decoded int
	msgs    []tmsg.Msg

	// Statistics.
	FramesDelivered uint64
	Retries         uint64 // NAKed transmission attempts
	FramesAbandoned uint64 // frames given up after MaxRetries
	GarbageBytes    uint64 // staging bytes discarded hunting for a frame
	BackoffCycles   uint64 // cycles spent waiting out NAK backoff windows

	obs dapObs
}

// dapObs holds the link's metric handles (nil handles no-op when the DAP
// is uninstrumented).
type dapObs struct {
	drained   *obs.Counter // dap.bytes_drained
	delivered *obs.Counter // dap.frames_delivered
	retries   *obs.Counter // dap.retries
	abandoned *obs.Counter // dap.frames_abandoned
	garbage   *obs.Counter // dap.garbage_bytes
	backoff   *obs.Counter // dap.backoff_cycles
	downCyc   *obs.Counter // dap.link_down_cycles
}

// Instrument publishes the tool-link metrics into reg: drained bytes,
// delivered frames, and the NAK/retry/backoff loss totals. A nil registry
// is a no-op.
func (d *DAP) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.obs = dapObs{
		drained:   reg.Counter("dap.bytes_drained"),
		delivered: reg.Counter("dap.frames_delivered"),
		retries:   reg.Counter("dap.retries"),
		abandoned: reg.Counter("dap.frames_abandoned"),
		garbage:   reg.Counter("dap.garbage_bytes"),
		backoff:   reg.Counter("dap.backoff_cycles"),
		downCyc:   reg.Counter("dap.link_down_cycles"),
	}
}

// New creates a DAP draining e.
func New(cfg Config, e *emem.EMEM) *DAP {
	return &DAP{Cfg: cfg, Emem: e}
}

func (d *DAP) maxRetries() int {
	if d.MaxRetries > 0 {
		return d.MaxRetries
	}
	return DefaultMaxRetries
}

func (d *DAP) backoffBase() uint64 {
	if d.BackoffBase > 0 {
		return d.BackoffBase
	}
	return DefaultBackoffBase
}

// Tick implements sim.Ticker: accumulate fractional byte credit per CPU
// cycle and drain whole bytes.
func (d *DAP) Tick(cycle uint64) {
	d.lastTick = cycle
	if d.Fault != nil && d.Fault.Down(cycle) {
		d.obs.downCyc.Inc()
		return // link down: no drain, no credit — the bandwidth is lost
	}
	d.credit += d.Cfg.BytesPerSecond()
	denom := d.Cfg.CPUFreqMHz * 1_000_000
	n := d.credit / denom
	if n > 0 {
		d.credit -= n * denom
	}
	if d.Emem == nil {
		return
	}
	if !d.Reliable {
		if n == 0 {
			return
		}
		b := d.Emem.DrainInto(d.drainBuf[:0], uint32(n))
		d.drainBuf = b
		d.Received = append(d.Received, b...)
		d.TotalDrained += uint64(len(b))
		d.obs.drained.Add(uint64(len(b)))
		return
	}
	if n > 0 {
		b := d.Emem.DrainInto(d.drainBuf[:0], uint32(n))
		d.drainBuf = b
		d.staging = append(d.staging, b...)
		d.TotalDrained += uint64(len(b))
		d.obs.drained.Add(uint64(len(b)))
	}
	d.pump(cycle, false)
}

// pump pushes complete frames from staging over the (possibly faulty)
// link. In flush mode (end of run) credit and backoff timing are ignored;
// the retry bound still applies.
func (d *DAP) pump(cycle uint64, flush bool) {
	denom := d.Cfg.CPUFreqMHz * 1_000_000
	for {
		if d.inflight == nil {
			d.inflight = d.nextFrame()
			if d.inflight == nil {
				return
			}
			d.attempts = 0
		}
		if !flush {
			if cycle < d.retryAt {
				return // backing off after a NAK
			}
			if d.attempts > 0 {
				// A retransmission costs link bandwidth; the first copy
				// was already paid for by the drain credit.
				cost := uint64(len(d.inflight)) * denom
				if d.credit < cost {
					return
				}
				d.credit -= cost
			}
		}

		out, ok := d.inflight, true
		if d.Fault != nil {
			out, ok = d.Fault.Transmit(cycle, d.inflight)
		}
		if ok && tmsg.ValidFrame(out) {
			d.Received = append(d.Received, out...)
			d.FramesDelivered++
			d.obs.delivered.Inc()
			d.inflight = nil
			continue
		}

		// NAK: the tool rejects the frame (bad CRC or nothing arrived).
		d.attempts++
		d.Retries++
		d.obs.retries.Inc()
		if d.attempts > d.maxRetries() {
			// Give up — likely corrupted at the source (EMEM soft error),
			// where retransmission re-reads the same bad bytes. The
			// tool-side cumulative counters will account the loss.
			d.FramesAbandoned++
			d.obs.abandoned.Inc()
			d.inflight = nil
			continue
		}
		if !flush {
			shift := uint(d.attempts - 1)
			if shift > 6 {
				shift = 6
			}
			wait := d.backoffBase() << shift
			d.retryAt = cycle + wait
			d.BackoffCycles += wait
			d.obs.backoff.Add(wait)
			return
		}
	}
}

// nextFrame extracts one complete frame from staging, discarding garbage
// prefixes (a corrupted length or marker byte desynchronizes the staging
// stream until the next genuine marker). It returns nil when no complete
// frame is available yet.
func (d *DAP) nextFrame() []byte {
	for {
		i := bytes.IndexByte(d.staging, tmsg.FrameMarker)
		if i < 0 {
			d.GarbageBytes += uint64(len(d.staging))
			d.obs.garbage.Add(uint64(len(d.staging)))
			d.staging = d.staging[:0]
			return nil
		}
		if i > 0 {
			d.GarbageBytes += uint64(i)
			d.obs.garbage.Add(uint64(i))
			d.staging = append(d.staging[:0], d.staging[i:]...)
		}
		n := tmsg.FrameLen(d.staging)
		if n == -1 {
			return nil // header incomplete
		}
		if n == 0 {
			// Implausible header: false marker. Skip one byte.
			d.GarbageBytes++
			d.obs.garbage.Inc()
			d.staging = append(d.staging[:0], d.staging[1:]...)
			continue
		}
		if n > len(d.staging) {
			return nil // frame incomplete
		}
		frame := make([]byte, n)
		copy(frame, d.staging)
		d.staging = append(d.staging[:0], d.staging[n:]...)
		return frame
	}
}

// DrainAll empties the remaining buffer content (end of measurement run,
// when real time no longer matters). In reliable mode the remaining
// frames are pushed through the link with unlimited time — but still a
// bounded number of retries each.
func (d *DAP) DrainAll() {
	if d.Emem == nil {
		return
	}
	for d.Emem.Level() > 0 {
		b := d.Emem.Drain(d.Emem.Level())
		if d.Reliable {
			d.staging = append(d.staging, b...)
		} else {
			d.Received = append(d.Received, b...)
		}
		d.TotalDrained += uint64(len(b))
		d.obs.drained.Add(uint64(len(b)))
	}
	if d.Reliable {
		d.pump(d.lastTick, true)
	}
}

// Stream returns the resynchronizing decoder used in reliable mode (nil
// until Decode has run, or in raw mode).
func (d *DAP) Stream() *tmsg.StreamDecoder { return d.stream }

// Decode parses every complete message received so far. Decoding is
// incremental: each call decodes only the bytes that arrived since the
// previous call and appends to a cached message list, so calling it after
// every drain step costs O(total bytes) overall instead of O(n²).
//
// In reliable mode the frame stream is decoded by a resynchronizing
// tmsg.StreamDecoder and never returns a terminal error; losses appear as
// Gaps on Stream().
func (d *DAP) Decode() ([]tmsg.Msg, error) {
	if d.Reliable {
		if d.stream == nil {
			d.stream = tmsg.NewStreamDecoder(true)
		}
		d.msgs = append(d.msgs, d.stream.Feed(d.Received[d.decoded:])...)
		d.decoded = len(d.Received)
		return d.msgs, nil
	}
	msgs, n, err := d.dec.DecodeAll(d.Received[d.decoded:])
	d.decoded += n
	d.msgs = append(d.msgs, msgs...)
	return d.msgs, err
}
