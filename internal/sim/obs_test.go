package sim

import (
	"testing"

	"repro/internal/obs"
)

// counterTicker is a minimal ticker with a deterministic cost, standing in
// for a SoC component in clock-instrumentation tests and benchmarks.
type counterTicker struct{ n uint64 }

func (t *counterTicker) Tick(uint64) { t.n++ }

func TestClockInstrument(t *testing.T) {
	reg := obs.New()
	c := NewClock()
	a, b := &counterTicker{}, &counterTicker{}
	c.Attach("cpu", a)
	c.Instrument(reg, 4)
	c.Attach("dap", b) // attach after Instrument must also be profiled
	c.Run(1000)

	s := reg.Snapshot()
	if v, _ := s.Counter("sim.cycles"); v != 1000 {
		t.Errorf("sim.cycles = %d, want 1000", v)
	}
	if v, _ := s.Counter("sim.sampled_cycles"); v != 250 {
		t.Errorf("sim.sampled_cycles = %d, want 250", v)
	}
	if v, ok := s.Gauge("sim.cycles_per_sec"); !ok || v <= 0 {
		t.Errorf("sim.cycles_per_sec = %v,%v", v, ok)
	}
	for _, name := range []string{"sim.ticker.cpu.sampled_ns", "sim.ticker.dap.sampled_ns"} {
		if _, ok := s.Counter(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
	if a.n != 1000 || b.n != 1000 {
		t.Errorf("instrumentation changed ticker behaviour: %d/%d", a.n, b.n)
	}

	// RunUntil episodes are accounted too.
	c.RunUntil(func() bool { return false }, 100)
	if v := reg.Counter("sim.cycles").Value(); v != 1100 {
		t.Errorf("sim.cycles after RunUntil = %d, want 1100", v)
	}
}

func TestClockInstrumentDisabledIsIdentical(t *testing.T) {
	run := func(reg *obs.Registry) uint64 {
		c := NewClock()
		tk := &counterTicker{}
		c.Attach("t", tk)
		c.Instrument(reg, 0)
		c.Run(5000)
		return tk.n
	}
	if a, b := run(obs.Disabled), run(obs.New()); a != b {
		t.Errorf("instrumented run diverged: %d vs %d ticks", a, b)
	}
}

// BenchmarkClockDisabled and BenchmarkClockInstrumented measure the
// observability overhead on the simulator's hottest loop (one Step per
// CPU cycle with a handful of tickers). The acceptance bar for this repo
// is instrumented ≤ 1.05× disabled; the numbers land in BENCH_pr2.json.
func benchClock(b *testing.B, reg *obs.Registry) {
	c := NewClock()
	for i := 0; i < 6; i++ {
		c.Attach("t", &counterTicker{})
	}
	c.Instrument(reg, 0)
	b.ResetTimer()
	c.Run(uint64(b.N))
	if c.Cycle() != uint64(b.N) {
		b.Fatal("cycle mismatch")
	}
}

func BenchmarkClockDisabled(b *testing.B)     { benchClock(b, obs.Disabled) }
func BenchmarkClockInstrumented(b *testing.B) { benchClock(b, obs.New()) }
