package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStepOrder(t *testing.T) {
	var order []string
	c := NewClock()
	c.Attach("a", TickerFunc(func(uint64) { order = append(order, "a") }))
	c.Attach("b", TickerFunc(func(uint64) { order = append(order, "b") }))
	c.Step()
	c.Step()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Cycle() != 2 {
		t.Errorf("cycle = %d, want 2", c.Cycle())
	}
}

func TestClockRunUntil(t *testing.T) {
	c := NewClock()
	n := 0
	c.Attach("n", TickerFunc(func(uint64) { n++ }))
	ran, ok := c.RunUntil(func() bool { return n >= 5 }, 100)
	if !ok || ran != 5 {
		t.Errorf("ran=%d ok=%v, want 5 true", ran, ok)
	}
	ran, ok = c.RunUntil(func() bool { return false }, 7)
	if ok || ran != 7 {
		t.Errorf("ran=%d ok=%v, want 7 false", ran, ok)
	}
}

func TestClockTickReceivesCycle(t *testing.T) {
	c := NewClock()
	var got []uint64
	c.Attach("x", TickerFunc(func(cy uint64) { got = append(got, cy) }))
	c.Run(3)
	for i, cy := range got {
		if cy != uint64(i) {
			t.Fatalf("tick %d received cycle %d", i, cy)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds should differ")
	}
}

func TestRNGStableSequence(t *testing.T) {
	// The splitmix64 sequence is pinned so generated workloads never drift.
	r := NewRNG(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(5, 8); v < 5 || v > 8 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(99)
	f1 := r.Fork(1)
	before := r.state
	f1.Uint64()
	if r.state != before {
		t.Error("fork must not disturb parent")
	}
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Error("different fork labels should diverge")
	}
}

func TestCountersDelta(t *testing.T) {
	var a, b Counters
	b.Add(EvInstrExecuted, 100)
	b.Inc(EvICacheMiss)
	d := b.Delta(&a)
	if d.Get(EvInstrExecuted) != 100 || d.Get(EvICacheMiss) != 1 {
		t.Errorf("delta = %v", d)
	}
	a = b
	b.Add(EvInstrExecuted, 3)
	d = b.Delta(&a)
	if d.Get(EvInstrExecuted) != 3 || d.Get(EvICacheMiss) != 0 {
		t.Errorf("second delta wrong: %v", d)
	}
}

func TestCountersDeltaProperty(t *testing.T) {
	f := func(base, inc []uint8) bool {
		var a, b Counters
		for i, v := range base {
			a[i%NumEvents] += uint64(v)
		}
		b = a
		for i, v := range inc {
			b[i%NumEvents] += uint64(v)
		}
		d := b.Delta(&a)
		for i := range d {
			if a[i]+d[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventNames(t *testing.T) {
	seen := map[string]bool{}
	for e := Event(1); int(e) < NumEvents; e++ {
		name := e.String()
		if name == "" || name == "event_unknown" {
			t.Errorf("event %d has no name", e)
		}
		if seen[name] {
			t.Errorf("duplicate event name %q", name)
		}
		seen[name] = true
	}
}
