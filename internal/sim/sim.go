// Package sim provides the cycle-stepped simulation kernel shared by every
// hardware model in this repository: a global clock, a deterministic
// pseudo-random source, and the event identifiers that performance-relevant
// hardware events are reported under.
//
// The whole SoC is simulated with one Tick per CPU clock cycle. Components
// register with a Clock and are stepped in a fixed, deterministic order each
// cycle, so two runs with the same seed are bit-for-bit identical — a
// property the paper's methodology depends on only loosely (automotive runs
// are explicitly *not* repeatable) but which makes every experiment in this
// repository reproducible.
package sim

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Ticker is implemented by every component that advances once per clock
// cycle. Tick receives the current cycle number (starting at 0).
type Ticker interface {
	Tick(cycle uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(cycle uint64)

// Tick calls f(cycle).
func (f TickerFunc) Tick(cycle uint64) { f(cycle) }

// NoWake is the NextWake return value of a Sleeper that has no scheduled
// work at all (e.g. a disabled peripheral): it is never ticked until
// something reschedules it.
const NoWake = ^uint64(0)

// Sleeper is an optional extension of Ticker for components that know the
// next cycle on which they have work. The clock skips a Sleeper entirely
// between wakes instead of dispatching no-op Ticks into it.
//
// Contract: NextWake(from) returns the earliest cycle >= from on which the
// component needs its Tick called (NoWake for "never"). The clock calls it
// after every delivered Tick with from = cycle+1. Waking a component early
// must be harmless — a Tick on a cycle with no work must be a behavioural
// no-op — because external reschedules (see Waker) may be conservative.
// A component whose per-cycle Tick has side effects beyond its own lazily
// reconstructible state (RNG draws, credit accrual, watermark sampling)
// must NOT implement Sleeper. A component that is *terminally idle* is the
// easy case: a halted CPU core has no per-cycle work at all, so it may
// report NoWake — provided whatever un-halts it (Reset, an interrupt
// router delivering to a halted core) reschedules via its Waker.
type Sleeper interface {
	Ticker
	NextWake(from uint64) uint64
}

// WakeBinder is implemented by Sleepers whose wake cycle can change from
// the outside mid-sleep (e.g. a bus write re-enabling a timer). Attach
// hands such a component its Waker handle.
type WakeBinder interface {
	BindWake(w *Waker)
}

// Waker is a component's handle back into the clock's wake schedule. The
// zero of *Waker is usable: all methods are nil-receiver safe, so a
// peripheral driven directly by tests (no clock) works unchanged.
type Waker struct {
	c *Clock
	i int
}

// Cycle returns the clock's current (in-progress) cycle, or 0 when the
// component is not attached to a clock.
func (w *Waker) Cycle() uint64 {
	if w == nil {
		return 0
	}
	return w.c.cycle
}

// Reschedule moves the component's next wake to next (NoWake parks it).
// It is a no-op when unattached or when wake scheduling is disabled.
// Rescheduling earlier than necessary is always safe; rescheduling *later*
// than the component's true next event would skip work and is the caller's
// responsibility to avoid.
func (w *Waker) Reschedule(next uint64) {
	if w == nil || !w.c.scheduling {
		return
	}
	w.c.wake[w.i] = next
	w.c.resched = true
}

// Clock drives the simulation. Components are stepped in registration
// order; registration order therefore defines intra-cycle priority (bus
// masters registered earlier win same-cycle arbitration races
// deterministically). Sleepers are skipped while idle, but on any cycle
// where several components are due they still tick in registration order,
// so the wake schedule never perturbs intra-cycle priority.
type Clock struct {
	cycle   uint64
	tickers []Ticker
	names   []string

	// Wake schedule, parallel to tickers. sleepers[i] is nil for an
	// always-on ticker and wake[i] is then permanently 0 (always due);
	// for a Sleeper, wake[i] is the next cycle its Tick must run.
	sleepers    []Sleeper
	wake        []uint64
	numSleepers int
	alwaysOn    int
	wakeEnabled bool // SetWakeScheduling state (default true)
	scheduling  bool // wakeEnabled && numSleepers > 0
	skippable   bool // scheduling && every ticker is a Sleeper
	resched     bool // a Waker.Reschedule happened (invalidates solo runs)

	obs *clockObs // nil when the clock is not instrumented
}

// NewClock returns a clock at cycle 0 with no components attached.
func NewClock() *Clock { return &Clock{wakeEnabled: true} }

// Attach registers t to be stepped every cycle — or, when t implements
// Sleeper, only on its wake cycles. The name is used only for diagnostics.
// Attach must not be called while Run is executing.
func (c *Clock) Attach(name string, t Ticker) {
	i := len(c.tickers)
	c.tickers = append(c.tickers, t)
	c.names = append(c.names, name)
	s, _ := t.(Sleeper)
	c.sleepers = append(c.sleepers, s)
	w := uint64(0)
	if s != nil {
		c.numSleepers++
		if c.wakeEnabled {
			w = s.NextWake(c.cycle)
		}
	} else {
		c.alwaysOn++
	}
	c.wake = append(c.wake, w)
	if b, ok := t.(WakeBinder); ok {
		b.BindWake(&Waker{c: c, i: i})
	}
	c.refreshSched()
	if c.obs != nil {
		c.obs.addTicker(name)
	}
}

func (c *Clock) refreshSched() {
	c.scheduling = c.wakeEnabled && c.numSleepers > 0
	c.skippable = c.scheduling && c.alwaysOn == 0 && len(c.tickers) > 0
}

// SetWakeScheduling enables or disables the quiescence scheduler. Disabled,
// every ticker is dispatched every cycle exactly as before Sleeper existed —
// the determinism reference mode. Re-enabling recomputes all wake cycles.
// Both modes are bit-for-bit identical in simulated behaviour; the toggle
// exists so tests can prove it.
func (c *Clock) SetWakeScheduling(enabled bool) {
	c.wakeEnabled = enabled
	for i, s := range c.sleepers {
		if s != nil && enabled {
			c.wake[i] = s.NextWake(c.cycle)
		} else {
			c.wake[i] = 0
		}
	}
	c.refreshSched()
}

// WakeScheduling reports whether the quiescence scheduler is enabled.
func (c *Clock) WakeScheduling() bool { return c.wakeEnabled }

// Cycle returns the number of completed cycles.
func (c *Clock) Cycle() uint64 { return c.cycle }

// DefaultSampleEvery is the default per-ticker timing sample period of an
// instrumented clock: one fully timed cycle out of every 1024.
const DefaultSampleEvery = 1024

// clockObs holds the metric handles of an instrumented clock.
type clockObs struct {
	reg         *obs.Registry
	sampleEvery uint64
	sampleIn    uint64 // cycles until the next fully timed step

	cycles        *obs.Counter // sim.cycles
	wallNS        *obs.Counter // sim.wall_ns (Run/RunUntil wall time)
	cyclesPerSec  *obs.Gauge   // sim.cycles_per_sec (latest Run)
	sampledCycles *obs.Counter // sim.sampled_cycles
	tickerNS      []*obs.Counter
}

func (o *clockObs) addTicker(name string) {
	o.tickerNS = append(o.tickerNS, o.reg.Counter("sim.ticker."+name+".sampled_ns"))
}

// Instrument publishes clock metrics into reg: a cycle counter, the
// wall-clock simulation rate, and a sampled per-ticker time-share profile
// (every sampleEvery-th cycle is fully timed; 0 selects
// DefaultSampleEvery). Like the MCDS observing the TriCore, the
// instrumentation never changes simulated behaviour — only the wall-clock
// cost of a sampled cycle. A nil registry leaves the clock untouched.
func (c *Clock) Instrument(reg *obs.Registry, sampleEvery uint64) {
	if reg == nil {
		return
	}
	if sampleEvery == 0 {
		sampleEvery = DefaultSampleEvery
	}
	o := &clockObs{
		reg:           reg,
		sampleEvery:   sampleEvery,
		cycles:        reg.Counter("sim.cycles"),
		wallNS:        reg.Counter("sim.wall_ns"),
		cyclesPerSec:  reg.Gauge("sim.cycles_per_sec"),
		sampledCycles: reg.Counter("sim.sampled_cycles"),
	}
	for _, name := range c.names {
		o.addTicker(name)
	}
	c.obs = o
}

// Step advances the simulation by exactly one cycle.
func (c *Clock) Step() {
	if o := c.obs; o != nil {
		// Countdown instead of modulo: the uninstrumented fast path pays
		// one nil check, the instrumented fast path one decrement.
		if o.sampleIn == 0 {
			o.sampleIn = o.sampleEvery - 1
			c.stepTimed(o)
			return
		}
		o.sampleIn--
	}
	c.stepPlain()
}

// stepPlain dispatches one cycle. Without a wake schedule it is the
// original flat loop; with one, each ticker is dispatched only when due
// and — crucially — still in registration order, so intra-cycle priority
// is bit-for-bit what an unscheduled clock produces.
func (c *Clock) stepPlain() {
	cy := c.cycle
	if !c.scheduling {
		for _, t := range c.tickers {
			t.Tick(cy)
		}
		c.cycle++
		return
	}
	for i, t := range c.tickers {
		if c.wake[i] > cy {
			continue
		}
		t.Tick(cy)
		if s := c.sleepers[i]; s != nil {
			c.wake[i] = s.NextWake(cy + 1)
		}
	}
	c.cycle++
}

// stepTimed is a fully timed Step: each ticker's wall time is accumulated
// into its sampled_ns counter. A sleeping ticker is not woken just to be
// timed — its time share is sampled only on cycles it actually runs.
func (c *Clock) stepTimed(o *clockObs) {
	cy := c.cycle
	if !c.scheduling {
		for i, t := range c.tickers {
			t0 := time.Now()
			t.Tick(cy)
			o.tickerNS[i].Add(uint64(time.Since(t0)))
		}
	} else {
		for i, t := range c.tickers {
			if c.wake[i] > cy {
				continue
			}
			t0 := time.Now()
			t.Tick(cy)
			o.tickerNS[i].Add(uint64(time.Since(t0)))
			if s := c.sleepers[i]; s != nil {
				c.wake[i] = s.NextWake(cy + 1)
			}
		}
	}
	o.sampledCycles.Inc()
	c.cycle++
}

// nextWake returns the earliest scheduled wake cycle across all tickers.
func (c *Clock) nextWake() uint64 {
	next := NoWake
	for _, w := range c.wake {
		if w < next {
			next = w
		}
	}
	return next
}

// Run advances the simulation by n cycles.
func (c *Clock) Run(n uint64) {
	if c.obs != nil {
		defer c.measureRun(time.Now(), c.cycle)
	}
	c.runTo(c.cycle + n)
}

// runTo advances the clock to cycle end. The obs nil-check is hoisted out
// of the per-cycle loop, and when every attached ticker is a Sleeper the
// clock jumps straight to the earliest wake cycle instead of dispatching
// empty cycles one by one. Callers that need finer-grained control (e.g.
// Session.Run's cancellation polling) call Run in chunks; the bulk skip
// never crosses the chunk boundary, so the two compose.
func (c *Clock) runTo(end uint64) {
	o := c.obs
	for c.cycle < end {
		if c.skippable {
			if next := c.nextWake(); next > c.cycle {
				if next > end {
					next = end
				}
				skip := next - c.cycle
				c.cycle = next
				if o != nil {
					// Skipped cycles consume sampling budget: the timing
					// sample cadence stays anchored to simulated cycles,
					// not to dispatched steps.
					if o.sampleIn > skip {
						o.sampleIn -= skip
					} else {
						o.sampleIn = 0
					}
				}
				continue
			}
		}
		if o != nil {
			if o.sampleIn == 0 {
				o.sampleIn = o.sampleEvery - 1
				c.stepTimed(o)
				continue
			}
			o.sampleIn--
			c.stepPlain()
			continue
		}
		if c.scheduling && c.soloRun(end) {
			continue
		}
		c.stepPlain()
	}
}

// soloRun is the single-runner fast path: when exactly one ticker is due
// this cycle and every other component sleeps strictly later, the clock
// ticks the solo component in a tight loop — no per-cycle schedule scan —
// until another wake comes due, a Reschedule perturbs the schedule, the
// solo component goes to sleep, or end. It returns false (having done
// nothing) when the cycle is not solo, leaving stepPlain to dispatch it.
// The delivered Tick sequence is bit-identical to stepPlain's: same
// cycles, same NextWake(cycle+1) requery after every Tick.
func (c *Clock) soloRun(end uint64) bool {
	cy := c.cycle
	solo := -1
	next := NoWake // earliest wake among the other tickers
	for i, w := range c.wake {
		if w > cy {
			if w < next {
				next = w
			}
			continue
		}
		if solo >= 0 {
			return false // two runners due: generic dispatch
		}
		solo = i
	}
	if solo < 0 {
		return false // quiescent cycle: the skippable bulk skip handles it
	}
	if next > end {
		next = end
	}
	t := c.tickers[solo]
	s := c.sleepers[solo]
	c.resched = false
	for cy < next {
		t.Tick(cy)
		if c.resched {
			// A Tick side effect moved someone's wake — possibly to this
			// very cycle. stepPlain's scan would still reach any
			// later-registered ticker whose wake just landed on cy (and
			// would have already passed any earlier-registered one), so
			// finish this cycle exactly that way, then hand back.
			if s != nil {
				c.wake[solo] = s.NextWake(cy + 1)
			}
			for i := solo + 1; i < len(c.tickers); i++ {
				if c.wake[i] > cy {
					continue
				}
				c.tickers[i].Tick(cy)
				if si := c.sleepers[i]; si != nil {
					c.wake[i] = si.NextWake(cy + 1)
				}
			}
			c.cycle = cy + 1
			return true
		}
		cy++
		c.cycle = cy
		if s != nil {
			if w := s.NextWake(cy); w > cy {
				c.wake[solo] = w
				return true
			}
		}
	}
	return true
}

// RunUntil advances the simulation until done returns true or the cycle
// limit is reached. It returns the number of cycles executed and whether
// done was satisfied. The predicate is re-evaluated before every cycle —
// and only there: once the limit is hit the last evaluation's result is
// returned without an extra call, so side-effecting predicates see exactly
// one call per executed cycle. Because done may read state only the
// predicate can see, RunUntil never bulk-skips; halting workloads keep an
// always-on CPU attached anyway, which disables skipping.
func (c *Clock) RunUntil(done func() bool, limit uint64) (uint64, bool) {
	if c.obs != nil {
		defer c.measureRun(time.Now(), c.cycle)
	}
	start := c.cycle
	for c.cycle-start < limit {
		if done() {
			return c.cycle - start, true
		}
		c.Step()
	}
	return limit, false
}

// measureRun accounts one Run/RunUntil episode: executed cycles, wall
// time, and the resulting simulation rate.
func (c *Clock) measureRun(start time.Time, startCycle uint64) {
	o := c.obs
	n := c.cycle - startCycle
	el := time.Since(start)
	o.cycles.Add(n)
	o.wallNS.Add(uint64(el))
	if el > 0 && n > 0 {
		o.cyclesPerSec.Set(float64(n) / el.Seconds())
	}
}

// String describes the attached components.
func (c *Clock) String() string {
	return fmt.Sprintf("Clock{cycle=%d components=%d}", c.cycle, len(c.tickers))
}

// RNG is a deterministic 64-bit pseudo-random generator (splitmix64). It is
// deliberately not math/rand so that its sequence is stable across Go
// releases: synthetic customer applications are generated from seeds and
// must not drift between toolchain versions.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose sequence is a pure function
// of the parent state and the label, without disturbing the parent.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.state ^ (label*0xd1342543de82ef95 + 0x2545f4914f6cdd1d))
}
