// Package sim provides the cycle-stepped simulation kernel shared by every
// hardware model in this repository: a global clock, a deterministic
// pseudo-random source, and the event identifiers that performance-relevant
// hardware events are reported under.
//
// The whole SoC is simulated with one Tick per CPU clock cycle. Components
// register with a Clock and are stepped in a fixed, deterministic order each
// cycle, so two runs with the same seed are bit-for-bit identical — a
// property the paper's methodology depends on only loosely (automotive runs
// are explicitly *not* repeatable) but which makes every experiment in this
// repository reproducible.
package sim

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Ticker is implemented by every component that advances once per clock
// cycle. Tick receives the current cycle number (starting at 0).
type Ticker interface {
	Tick(cycle uint64)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(cycle uint64)

// Tick calls f(cycle).
func (f TickerFunc) Tick(cycle uint64) { f(cycle) }

// Clock drives the simulation. Components are stepped in registration
// order; registration order therefore defines intra-cycle priority (bus
// masters registered earlier win same-cycle arbitration races
// deterministically).
type Clock struct {
	cycle   uint64
	tickers []Ticker
	names   []string

	obs *clockObs // nil when the clock is not instrumented
}

// NewClock returns a clock at cycle 0 with no components attached.
func NewClock() *Clock { return &Clock{} }

// Attach registers t to be stepped every cycle. The name is used only for
// diagnostics. Attach must not be called while Run is executing.
func (c *Clock) Attach(name string, t Ticker) {
	c.tickers = append(c.tickers, t)
	c.names = append(c.names, name)
	if c.obs != nil {
		c.obs.addTicker(name)
	}
}

// Cycle returns the number of completed cycles.
func (c *Clock) Cycle() uint64 { return c.cycle }

// DefaultSampleEvery is the default per-ticker timing sample period of an
// instrumented clock: one fully timed cycle out of every 1024.
const DefaultSampleEvery = 1024

// clockObs holds the metric handles of an instrumented clock.
type clockObs struct {
	reg         *obs.Registry
	sampleEvery uint64
	sampleIn    uint64 // cycles until the next fully timed step

	cycles        *obs.Counter // sim.cycles
	wallNS        *obs.Counter // sim.wall_ns (Run/RunUntil wall time)
	cyclesPerSec  *obs.Gauge   // sim.cycles_per_sec (latest Run)
	sampledCycles *obs.Counter // sim.sampled_cycles
	tickerNS      []*obs.Counter
}

func (o *clockObs) addTicker(name string) {
	o.tickerNS = append(o.tickerNS, o.reg.Counter("sim.ticker."+name+".sampled_ns"))
}

// Instrument publishes clock metrics into reg: a cycle counter, the
// wall-clock simulation rate, and a sampled per-ticker time-share profile
// (every sampleEvery-th cycle is fully timed; 0 selects
// DefaultSampleEvery). Like the MCDS observing the TriCore, the
// instrumentation never changes simulated behaviour — only the wall-clock
// cost of a sampled cycle. A nil registry leaves the clock untouched.
func (c *Clock) Instrument(reg *obs.Registry, sampleEvery uint64) {
	if reg == nil {
		return
	}
	if sampleEvery == 0 {
		sampleEvery = DefaultSampleEvery
	}
	o := &clockObs{
		reg:           reg,
		sampleEvery:   sampleEvery,
		cycles:        reg.Counter("sim.cycles"),
		wallNS:        reg.Counter("sim.wall_ns"),
		cyclesPerSec:  reg.Gauge("sim.cycles_per_sec"),
		sampledCycles: reg.Counter("sim.sampled_cycles"),
	}
	for _, name := range c.names {
		o.addTicker(name)
	}
	c.obs = o
}

// Step advances the simulation by exactly one cycle.
func (c *Clock) Step() {
	if o := c.obs; o != nil {
		// Countdown instead of modulo: the uninstrumented fast path pays
		// one nil check, the instrumented fast path one decrement.
		if o.sampleIn == 0 {
			o.sampleIn = o.sampleEvery - 1
			c.stepTimed(o)
			return
		}
		o.sampleIn--
	}
	cy := c.cycle
	for _, t := range c.tickers {
		t.Tick(cy)
	}
	c.cycle++
}

// stepTimed is a fully timed Step: each ticker's wall time is accumulated
// into its sampled_ns counter.
func (c *Clock) stepTimed(o *clockObs) {
	cy := c.cycle
	for i, t := range c.tickers {
		t0 := time.Now()
		t.Tick(cy)
		o.tickerNS[i].Add(uint64(time.Since(t0)))
	}
	o.sampledCycles.Inc()
	c.cycle++
}

// Run advances the simulation by n cycles.
func (c *Clock) Run(n uint64) {
	if c.obs != nil {
		defer c.measureRun(time.Now(), c.cycle)
	}
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// RunUntil advances the simulation until done returns true or the cycle
// limit is reached. It returns the number of cycles executed and whether
// done was satisfied.
func (c *Clock) RunUntil(done func() bool, limit uint64) (uint64, bool) {
	if c.obs != nil {
		defer c.measureRun(time.Now(), c.cycle)
	}
	start := c.cycle
	for c.cycle-start < limit {
		if done() {
			return c.cycle - start, true
		}
		c.Step()
	}
	return c.cycle - start, done()
}

// measureRun accounts one Run/RunUntil episode: executed cycles, wall
// time, and the resulting simulation rate.
func (c *Clock) measureRun(start time.Time, startCycle uint64) {
	o := c.obs
	n := c.cycle - startCycle
	el := time.Since(start)
	o.cycles.Add(n)
	o.wallNS.Add(uint64(el))
	if el > 0 && n > 0 {
		o.cyclesPerSec.Set(float64(n) / el.Seconds())
	}
}

// String describes the attached components.
func (c *Clock) String() string {
	return fmt.Sprintf("Clock{cycle=%d components=%d}", c.cycle, len(c.tickers))
}

// RNG is a deterministic 64-bit pseudo-random generator (splitmix64). It is
// deliberately not math/rand so that its sequence is stable across Go
// releases: synthetic customer applications are generated from seeds and
// must not drift between toolchain versions.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose sequence is a pure function
// of the parent state and the label, without disturbing the parent.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.state ^ (label*0xd1342543de82ef95 + 0x2545f4914f6cdd1d))
}
