package sim

// Event identifies a performance-relevant hardware event class. The MCDS
// observation blocks tap these directly from the component models, exactly
// as the paper's AUDO FUTURE MCDS taps "performance relevant event sources
// like cache hits/misses, bus contentions, etc." (Section 3).
type Event uint8

// Hardware event classes observable by the MCDS. The set mirrors the
// "essential parameters for CPU system performance" list of Section 5.
const (
	EvNone Event = iota

	// Core events (per-core observation block inputs).
	EvInstrExecuted  // one count per retired instruction (0..3 per cycle on TriCore)
	EvCycle          // one count per clock cycle (resolution basis for IPC)
	EvStallCycle     // CPU stalled this cycle (any reason)
	EvStallFetch     // stall attributable to instruction fetch
	EvStallData      // stall attributable to a data access
	EvBranchTaken    // taken change of flow
	EvBranchMiss     // branch mispredicted / flow change penalty paid
	EvInterruptEntry // interrupt service entered
	EvInterruptExit  // interrupt service left

	// Instruction-side memory events.
	EvICacheAccess
	EvICacheHit
	EvICacheMiss
	EvIFlashAccess   // instruction fetch reached the program flash
	EvIPrefetchHit   // fetch served from a flash read/prefetch buffer
	EvIScratchAccess // fetch served from program scratchpad

	// Data-side memory events.
	EvDCacheAccess
	EvDCacheHit
	EvDCacheMiss
	EvDFlashRead     // CPU data read that reached the program/data flash
	EvDPrefetchHit   // data-side flash buffer hit
	EvDScratchAccess // data access served by data scratchpad
	EvDSRAMAccess    // data access served by on-chip SRAM over the bus
	EvDPeriphAccess  // data access to a peripheral register

	// Bus events (bus observation block inputs).
	EvBusRequest    // a master requested the bus
	EvBusGrant      // a master was granted the bus
	EvBusContention // a master waited at least one cycle for grant
	EvBusWaitCycle  // one count per cycle a master spent waiting

	// Flash port arbitration.
	EvFlashPortConflict // code and data port competed for the flash array

	// DMA and PCP activity.
	EvDMATransfer
	EvPCPInstr
	EvPCPCycle
	EvPCPStall

	evMax // number of event classes; keep last
)

// NumEvents is the number of defined event classes.
const NumEvents = int(evMax)

var eventNames = [...]string{
	EvNone:              "none",
	EvInstrExecuted:     "instr_executed",
	EvCycle:             "cycle",
	EvStallCycle:        "stall_cycle",
	EvStallFetch:        "stall_fetch",
	EvStallData:         "stall_data",
	EvBranchTaken:       "branch_taken",
	EvBranchMiss:        "branch_miss",
	EvInterruptEntry:    "interrupt_entry",
	EvInterruptExit:     "interrupt_exit",
	EvICacheAccess:      "icache_access",
	EvICacheHit:         "icache_hit",
	EvICacheMiss:        "icache_miss",
	EvIFlashAccess:      "iflash_access",
	EvIPrefetchHit:      "iprefetch_hit",
	EvIScratchAccess:    "iscratch_access",
	EvDCacheAccess:      "dcache_access",
	EvDCacheHit:         "dcache_hit",
	EvDCacheMiss:        "dcache_miss",
	EvDFlashRead:        "dflash_read",
	EvDPrefetchHit:      "dprefetch_hit",
	EvDScratchAccess:    "dscratch_access",
	EvDSRAMAccess:       "dsram_access",
	EvDPeriphAccess:     "dperiph_access",
	EvBusRequest:        "bus_request",
	EvBusGrant:          "bus_grant",
	EvBusContention:     "bus_contention",
	EvBusWaitCycle:      "bus_wait_cycle",
	EvFlashPortConflict: "flash_port_conflict",
	EvDMATransfer:       "dma_transfer",
	EvPCPInstr:          "pcp_instr",
	EvPCPCycle:          "pcp_cycle",
	EvPCPStall:          "pcp_stall",
}

// String returns the lower_snake name of the event class.
func (e Event) String() string {
	if int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return "event_unknown"
}

// Counters is a fixed-size per-event counter array. Components own one and
// bump it as events occur; observation hardware (and tests asserting ground
// truth) read it. The zero value is ready to use.
type Counters [NumEvents]uint64

// Add records n occurrences of event e.
func (c *Counters) Add(e Event, n uint64) { c[e] += n }

// Inc records one occurrence of event e.
func (c *Counters) Inc(e Event) { c[e]++ }

// Get returns the total count of event e.
func (c *Counters) Get(e Event) uint64 { return c[e] }

// Delta returns, for every event class, the difference c - prev. It is used
// by observation blocks that sample component counters once per cycle.
func (c *Counters) Delta(prev *Counters) Counters {
	var d Counters
	for i := range c {
		d[i] = c[i] - prev[i]
	}
	return d
}
