package sim

import (
	"testing"
)

// periodic is a minimal Sleeper: it fires every period cycles starting at
// offset and records the cycles it was ticked with work to do.
type periodic struct {
	period, offset uint64
	enabled        bool
	fired          []uint64
	ticks          uint64 // every delivered Tick, work or not
	waker          *Waker
}

func (p *periodic) Tick(cycle uint64) {
	p.ticks++
	if !p.enabled {
		return
	}
	if (cycle+p.period-p.offset)%p.period == 0 {
		p.fired = append(p.fired, cycle)
	}
}

func (p *periodic) NextWake(from uint64) uint64 {
	if !p.enabled {
		return NoWake
	}
	r := (from + p.period - p.offset) % p.period
	if r == 0 {
		return from
	}
	return from + p.period - r
}

func (p *periodic) BindWake(w *Waker) { p.waker = w }

func TestSleeperSkipsIdleCycles(t *testing.T) {
	c := NewClock()
	p := &periodic{period: 10, offset: 3, enabled: true}
	c.Attach("p", p)
	c.Run(100)
	want := []uint64{3, 13, 23, 33, 43, 53, 63, 73, 83, 93}
	if len(p.fired) != len(want) {
		t.Fatalf("fired %v, want %v", p.fired, want)
	}
	for i := range want {
		if p.fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", p.fired, want)
		}
	}
	if p.ticks != 10 {
		t.Errorf("sleeper was dispatched %d times, want 10 (one per expiry)", p.ticks)
	}
	if c.Cycle() != 100 {
		t.Errorf("cycle = %d, want 100", c.Cycle())
	}
}

func TestSleeperMatchesAlwaysOn(t *testing.T) {
	run := func(scheduled bool) []uint64 {
		c := NewClock()
		if !scheduled {
			c.SetWakeScheduling(false)
		}
		p := &periodic{period: 7, offset: 5, enabled: true}
		c.Attach("cpu", TickerFunc(func(uint64) {})) // always-on: no bulk skip
		c.Attach("p", p)
		c.Run(500)
		return p.fired
	}
	on, off := run(true), run(false)
	if len(on) != len(off) {
		t.Fatalf("scheduler on fired %d, off fired %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("fire %d: on=%d off=%d", i, on[i], off[i])
		}
	}
}

func TestWakeOrderingPreservesRegistrationPriority(t *testing.T) {
	// Two sleepers due on the same cycle must tick in registration order,
	// interleaved correctly with an always-on ticker registered between them.
	c := NewClock()
	var order []string
	a := &periodic{period: 6, enabled: true}
	b := &periodic{period: 3, enabled: true}
	c.Attach("a", sleeperFunc{a, func(cy uint64) { order = append(order, "a") }})
	c.Attach("mid", TickerFunc(func(cy uint64) {
		if cy%6 == 0 {
			order = append(order, "mid")
		}
	}))
	c.Attach("b", sleeperFunc{b, func(cy uint64) { order = append(order, "b") }})
	c.Run(7) // cycles 0..6; common due cycle is 0 and 6
	want := []string{"a", "mid", "b", "b", "a", "mid", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// sleeperFunc wraps a periodic's schedule with a recording Tick.
type sleeperFunc struct {
	p  *periodic
	fn func(cycle uint64)
}

func (s sleeperFunc) Tick(cycle uint64)           { s.p.Tick(cycle); s.fn(cycle) }
func (s sleeperFunc) NextWake(from uint64) uint64 { return s.p.NextWake(from) }

func TestWakerReschedule(t *testing.T) {
	c := NewClock()
	p := &periodic{period: 1000, offset: 500, enabled: true}
	c.Attach("p", p)
	c.Run(10)
	if p.ticks != 0 {
		t.Fatalf("sleeper ticked %d times before its wake", p.ticks)
	}
	// An external event changes the schedule mid-sleep.
	p.period, p.offset = 4, 2
	p.waker.Reschedule(p.NextWake(c.Cycle()))
	c.Run(10) // cycles 10..19: grid (c ≡ 2 mod 4) hits 10, 14, 18
	if len(p.fired) != 3 || p.fired[0] != 10 || p.fired[2] != 18 {
		t.Fatalf("fired = %v, want [10 14 18]", p.fired)
	}
}

func TestWakerNilSafe(t *testing.T) {
	var w *Waker
	w.Reschedule(5) // must not panic
	if w.Cycle() != 0 {
		t.Errorf("nil waker cycle = %d", w.Cycle())
	}
}

func TestSetWakeSchedulingRoundTrip(t *testing.T) {
	c := NewClock()
	p := &periodic{period: 5, enabled: true}
	c.Attach("p", p)
	c.Run(10) // fires at 0, 5
	c.SetWakeScheduling(false)
	c.Run(10) // every cycle dispatched; fires at 10, 15
	if p.ticks != 2+10 {
		t.Errorf("ticks = %d, want 12", p.ticks)
	}
	c.SetWakeScheduling(true)
	c.Run(10) // fires at 20, 25
	if len(p.fired) != 6 || p.fired[5] != 25 {
		t.Fatalf("fired = %v", p.fired)
	}
}

func TestDisabledSleeperParksUntilRescheduled(t *testing.T) {
	c := NewClock()
	p := &periodic{period: 3, enabled: false}
	c.Attach("p", p)
	c.Run(10)
	if p.ticks != 0 {
		t.Fatalf("disabled sleeper ticked %d times", p.ticks)
	}
	p.enabled = true
	p.waker.Reschedule(p.NextWake(c.Cycle()))
	c.Run(10) // cycles 10..19: grid hits 12, 15, 18
	if len(p.fired) != 3 || p.fired[0] != 12 {
		t.Fatalf("fired = %v, want [12 15 18]", p.fired)
	}
}

func TestSoloRescheduleLaterSleeperSameCycle(t *testing.T) {
	// A solo-running always-on ticker wakes a later-registered parked
	// sleeper mid-tick, targeting the *current* cycle. stepPlain's scan
	// order delivers that tick on the same cycle (the scan has not reached
	// the sleeper yet), so the solo fast path must finish the cycle
	// generically rather than deferring the wake by one cycle.
	run := func(scheduled bool) []uint64 {
		c := NewClock()
		c.SetWakeScheduling(scheduled)
		p := &periodic{period: 1, enabled: false}
		c.Attach("solo", TickerFunc(func(cy uint64) {
			switch cy {
			case 50:
				p.enabled = true
				p.waker.Reschedule(cy)
			case 60:
				p.enabled = false
			}
		}))
		c.Attach("p", p)
		c.Run(100)
		return p.fired
	}
	on, off := run(true), run(false)
	if len(off) == 0 || off[0] != 50 {
		t.Fatalf("always-on baseline fired %v, want first fire at 50", off)
	}
	if len(on) != len(off) {
		t.Fatalf("scheduler on fired %v, off fired %v", on, off)
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("fire %d: on=%d off=%d", i, on[i], off[i])
		}
	}
}

func TestSoloRescheduleEarlierSleeperNextCycle(t *testing.T) {
	// Mirror case: the woken sleeper is registered *before* the solo
	// ticker, so stepPlain's scan has already passed it and the tick lands
	// on the next cycle. The solo fast path must not deliver it early.
	run := func(scheduled bool) []uint64 {
		c := NewClock()
		c.SetWakeScheduling(scheduled)
		p := &periodic{period: 1, enabled: false}
		c.Attach("p", p)
		c.Attach("solo", TickerFunc(func(cy uint64) {
			switch cy {
			case 50:
				p.enabled = true
				p.waker.Reschedule(cy)
			case 60:
				p.enabled = false
			}
		}))
		c.Run(100)
		return p.fired
	}
	on, off := run(true), run(false)
	if len(off) == 0 || off[0] != 51 {
		t.Fatalf("always-on baseline fired %v, want first fire at 51", off)
	}
	if len(on) != len(off) {
		t.Fatalf("scheduler on fired %v, off fired %v", on, off)
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("fire %d: on=%d off=%d", i, on[i], off[i])
		}
	}
}

func TestRunUntilDoesNotReevaluateDoneAtLimit(t *testing.T) {
	c := NewClock()
	c.Attach("t", TickerFunc(func(uint64) {}))
	calls := 0
	ran, ok := c.RunUntil(func() bool { calls++; return false }, 25)
	if ok || ran != 25 {
		t.Fatalf("ran=%d ok=%v, want 25 false", ran, ok)
	}
	if calls != 25 {
		t.Errorf("done evaluated %d times, want exactly 25 (one per executed cycle)", calls)
	}
}

func TestBulkSkipStopsAtRunBoundary(t *testing.T) {
	// A chunked caller (Session.Run polls every 4096 cycles) must see the
	// clock stop exactly at each chunk boundary even when the next wake is
	// far beyond it.
	c := NewClock()
	p := &periodic{period: 100000, offset: 99999, enabled: true}
	c.Attach("p", p)
	for i := 0; i < 10; i++ {
		c.Run(4096)
		if got, want := c.Cycle(), uint64(4096*(i+1)); got != want {
			t.Fatalf("after chunk %d cycle = %d, want %d", i, got, want)
		}
	}
	if p.ticks != 0 {
		t.Errorf("sleeper ticked %d times before wake", p.ticks)
	}
}
