package emem

import (
	"testing"

	"repro/internal/obs"
)

func TestInstrumentRingMetrics(t *testing.T) {
	reg := obs.New()
	e := New(4096, 0, 1)
	e.Instrument(reg)

	msg := make([]byte, 64)
	for i := 0; i < 8; i++ {
		if !e.AppendTrace(msg) {
			t.Fatal("append refused")
		}
	}
	e.Drain(128)
	e.CorruptBit(0, 3)

	s := reg.Snapshot()
	check := func(name string, want float64) {
		t.Helper()
		if v, ok := s.Gauge(name); ok {
			if v != want {
				t.Errorf("%s = %v, want %v", name, v, want)
			}
			return
		}
		if v, ok := s.Counter(name); !ok || float64(v) != want {
			t.Errorf("%s = %v,%v, want %v", name, v, ok, want)
		}
	}
	check("emem.ring.level", 384) // 8*64 written - 128 drained
	check("emem.ring.peak", 512)
	check("emem.ring.msgs_written", 8)
	check("emem.ring.bytes_written", 512)
	check("emem.ring.bytes_drained", 128)
	check("emem.ring.overflows", 0)
	check("emem.soft_errors", 1)

	// Fill to overflow: refused appends count as overflows.
	e.Backpressure = true
	e.AppendTrace(msg)
	if v := reg.Counter("emem.ring.overflows").Value(); v != 1 {
		t.Errorf("overflows = %d, want 1", v)
	}
}

// The ring append/drain pair is the busiest non-simulated path of a
// profiling run; the instrumented variant must stay within the ≤5%
// overhead budget relative to obs.Disabled.
func benchRing(b *testing.B, reg *obs.Registry) {
	e := New(1<<16, 0, 1)
	e.Instrument(reg)
	msg := make([]byte, 24)
	b.SetBytes(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AppendTrace(msg)
		if e.Level() > 1<<15 {
			e.Drain(e.Level())
		}
	}
}

func BenchmarkRingDisabled(b *testing.B)     { benchRing(b, obs.Disabled) }
func BenchmarkRingInstrumented(b *testing.B) { benchRing(b, obs.New()) }
