package emem

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestTraceRingProperty drives the trace ring with random interleaved
// AppendTrace/Drain sequences and checks every drained byte against a
// plain-slice reference model. The schedule deliberately walks the ring
// through wraparounds and exact-fit boundaries (messages sized to exactly
// the remaining free space).
func TestTraceRingProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xDEAD} {
		rng := sim.NewRNG(seed)
		const capacity = 257 // prime: wrap offsets never repeat in step
		e := New(capacity, 0, 1)

		var ref []byte // reference model: bytes written, not yet drained
		var written, dropped uint64
		next := byte(0)

		genMsg := func(n int) []byte {
			m := make([]byte, n)
			for i := range m {
				m[i] = next
				next++
			}
			return m
		}

		for op := 0; op < 4000; op++ {
			switch rng.Intn(3) {
			case 0, 1: // append (biased: keeps the ring near full)
				n := rng.Range(1, 40)
				if rng.Bool(0.1) {
					// Exact fit: message sized to the free space, forcing
					// the head right up to the tail.
					free := int(e.TraceCapacity() - e.Level())
					if free == 0 {
						continue
					}
					if free > 40 {
						free = 40
					}
					n = free
				}
				msg := genMsg(n)
				ok := e.AppendTrace(msg)
				wantOK := len(ref)+n <= capacity
				if ok != wantOK {
					t.Fatalf("seed %d op %d: AppendTrace(%d bytes) = %v, reference says %v (level %d)",
						seed, op, n, ok, wantOK, len(ref))
				}
				if ok {
					ref = append(ref, msg...)
					written++
				} else {
					// The message must be dropped whole: the ring state
					// and reference stay untouched.
					next -= byte(n)
					dropped++
				}
			case 2: // drain
				n := rng.Range(0, 60)
				got := e.Drain(uint32(n))
				want := n
				if want > len(ref) {
					want = len(ref)
				}
				if !bytes.Equal(got, ref[:want]) {
					t.Fatalf("seed %d op %d: Drain(%d) returned wrong bytes", seed, op, n)
				}
				ref = ref[want:]
			}
			if e.Level() != uint32(len(ref)) {
				t.Fatalf("seed %d op %d: Level = %d, reference %d", seed, op, e.Level(), len(ref))
			}
		}

		// Drain the remainder and verify byte-for-byte.
		got := e.Drain(e.Level())
		if !bytes.Equal(got, ref) {
			t.Fatalf("seed %d: final drain mismatch", seed)
		}
		if e.MsgsWritten != written || e.MsgsDropped != dropped {
			t.Fatalf("seed %d: stats written=%d/%d dropped=%d/%d",
				seed, e.MsgsWritten, written, e.MsgsDropped, dropped)
		}
	}
}

// TestBackpressureRefusesAppends checks the fault-injection jam hook: while
// Backpressure is set every append fails and counts a drop, and clearing
// it restores normal operation with ring state intact.
func TestBackpressureRefusesAppends(t *testing.T) {
	e := New(128, 0, 1)
	if !e.AppendTrace([]byte{1, 2, 3}) {
		t.Fatal("append failed on empty ring")
	}
	e.Backpressure = true
	if e.AppendTrace([]byte{4, 5}) {
		t.Fatal("append succeeded under backpressure")
	}
	if e.MsgsDropped != 1 {
		t.Fatalf("MsgsDropped = %d, want 1", e.MsgsDropped)
	}
	e.Backpressure = false
	if !e.AppendTrace([]byte{6}) {
		t.Fatal("append failed after backpressure cleared")
	}
	got := e.Drain(e.Level())
	if !bytes.Equal(got, []byte{1, 2, 3, 6}) {
		t.Fatalf("drained %v, want [1 2 3 6]", got)
	}
}

// TestCorruptBitFlipsBufferedByte checks the soft-error hook flips exactly
// one bit of the addressed buffered byte, honouring the ring wrap.
func TestCorruptBitFlipsBufferedByte(t *testing.T) {
	e := New(8, 0, 1)
	// Wrap the ring: fill 6, drain 6, fill 5 → occupied region wraps.
	e.AppendTrace([]byte{0, 0, 0, 0, 0, 0})
	e.Drain(6)
	e.AppendTrace([]byte{0x10, 0x20, 0x30, 0x40, 0x50})

	e.CorruptBit(3, 1) // byte index 3 (= 0x40), flip bit 1
	if e.SoftErrors != 1 {
		t.Fatalf("SoftErrors = %d, want 1", e.SoftErrors)
	}
	got := e.Drain(5)
	want := []byte{0x10, 0x20, 0x30, 0x42, 0x50}
	if !bytes.Equal(got, want) {
		t.Fatalf("after CorruptBit: drained %v, want %v", got, want)
	}

	// Out-of-range index is a no-op.
	e.AppendTrace([]byte{1})
	e.CorruptBit(99, 0)
	if e.SoftErrors != 1 {
		t.Fatal("out-of-range CorruptBit counted a soft error")
	}
}
