// Package emem models the Emulation Memory of the Emulation Device: a few
// hundred KB of SRAM on the Emulation Extension Chip, "shared between
// calibration overlay and trace" (paper Section 3). One partition backs
// calibration overlay pages that redirect flash data windows to RAM; the
// rest is the on-chip trace buffer the MCDS writes into and the DAP tool
// interface drains.
package emem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/obs"
)

// EMEM is the emulation memory.
type EMEM struct {
	RAM *mem.RAM // whole array, mapped at mem.EMEMBase

	overlayBytes uint32 // [0, overlayBytes) reserved for calibration overlay

	// Trace ring buffer state (byte ring inside the trace partition).
	traceBase uint32 // offset of the trace partition inside the array
	traceSize uint32
	head      uint32 // write offset inside the trace partition
	tail      uint32 // read offset
	level     uint32 // bytes currently buffered

	// Backpressure, while set, makes AppendTrace refuse every message as
	// if the ring were full — the fault injector's trace-FIFO jam. The
	// MCDS reacts exactly as it does to a genuine overflow (overflow
	// marker + re-sync), so the jam is visible, not silent.
	Backpressure bool

	// Statistics.
	MsgsWritten  uint64
	BytesWritten uint64
	MsgsDropped  uint64 // messages lost to a full buffer
	BytesDrained uint64
	PeakLevel    uint32
	SoftErrors   uint64 // injected trace-ring bit flips

	obs ememObs
}

// ememObs holds the ring's metric handles (all nil when uninstrumented;
// nil handles make every update a no-op).
type ememObs struct {
	level     *obs.Gauge   // emem.ring.level — current occupancy, bytes
	peak      *obs.Gauge   // emem.ring.peak — high-water mark, bytes
	overflows *obs.Counter // emem.ring.overflows — messages refused
	msgs      *obs.Counter // emem.ring.msgs_written
	written   *obs.Counter // emem.ring.bytes_written
	drained   *obs.Counter // emem.ring.bytes_drained
	softErrs  *obs.Counter // emem.soft_errors
}

// Instrument publishes the trace-ring metrics into reg: occupancy and
// high-water gauges plus write/drain/overflow counters. A nil registry is
// a no-op; the ring stays uninstrumented.
func (e *EMEM) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.obs = ememObs{
		level:     reg.Gauge("emem.ring.level"),
		peak:      reg.Gauge("emem.ring.peak"),
		overflows: reg.Counter("emem.ring.overflows"),
		msgs:      reg.Counter("emem.ring.msgs_written"),
		written:   reg.Counter("emem.ring.bytes_written"),
		drained:   reg.Counter("emem.ring.bytes_drained"),
		softErrs:  reg.Counter("emem.soft_errors"),
	}
}

// New creates an EMEM of size bytes with the first overlayBytes reserved
// for calibration overlay pages (TC1797ED: 512 KB, TC1767ED: 256 KB).
func New(size, overlayBytes uint32, latency uint64) *EMEM {
	if overlayBytes > size {
		panic("emem: overlay larger than array")
	}
	return &EMEM{
		RAM:          mem.NewRAM("emem", mem.EMEMBase, size, latency),
		overlayBytes: overlayBytes,
		traceBase:    overlayBytes,
		traceSize:    size - overlayBytes,
	}
}

// Size returns the array capacity.
func (e *EMEM) Size() uint32 { return e.RAM.Size() }

// TraceCapacity returns the bytes available to the trace ring.
func (e *EMEM) TraceCapacity() uint32 { return e.traceSize }

// OverlayBytes returns the size of the calibration overlay partition.
func (e *EMEM) OverlayBytes() uint32 { return e.overlayBytes }

// Level returns the bytes currently buffered in the trace ring.
func (e *EMEM) Level() uint32 { return e.level }

// AppendTrace stores one encoded trace message in the ring. It returns
// false (and counts a drop) when the message does not fit — the hardware
// equivalent of a trace FIFO overflow.
func (e *EMEM) AppendTrace(msg []byte) bool {
	n := uint32(len(msg))
	if n == 0 {
		return true
	}
	if e.Backpressure || n > e.traceSize-e.level {
		e.MsgsDropped++
		e.obs.overflows.Inc()
		return false
	}
	first := e.traceSize - e.head
	if first > n {
		first = n
	}
	e.RAM.Write(mem.EMEMBase+e.traceBase+e.head, msg[:first])
	if first < n {
		e.RAM.Write(mem.EMEMBase+e.traceBase, msg[first:])
	}
	e.head = (e.head + n) % e.traceSize
	e.level += n
	e.MsgsWritten++
	e.BytesWritten += uint64(n)
	if e.level > e.PeakLevel {
		e.PeakLevel = e.level
		e.obs.peak.Set(float64(e.level))
	}
	e.obs.msgs.Inc()
	e.obs.written.Add(uint64(n))
	e.obs.level.Set(float64(e.level))
	return true
}

// Drain removes up to n bytes from the ring (the DAP read path) and
// returns them.
func (e *EMEM) Drain(n uint32) []byte {
	return e.DrainInto(nil, n)
}

// DrainInto removes up to n bytes from the ring and appends them to dst,
// returning the extended slice. With a reused scratch buffer this is the
// allocation-free variant the per-cycle DAP drain runs on.
func (e *EMEM) DrainInto(dst []byte, n uint32) []byte {
	if n > e.level {
		n = e.level
	}
	start := len(dst)
	dst = append(dst, make([]byte, n)...)
	out := dst[start:]
	first := e.traceSize - e.tail
	if first > n {
		first = n
	}
	e.RAM.Read(mem.EMEMBase+e.traceBase+e.tail, out[:first])
	if first < n {
		e.RAM.Read(mem.EMEMBase+e.traceBase, out[first:])
	}
	e.tail = (e.tail + n) % e.traceSize
	e.level -= n
	e.BytesDrained += uint64(n)
	e.obs.drained.Add(uint64(n))
	e.obs.level.Set(float64(e.level))
	return dst
}

// CorruptBit flips one bit of the i-th currently buffered byte (counted
// from the read side). It models an EMEM soft error: SRAM content decays
// under radiation or marginal timing, and — unlike a link error — a
// retransmission re-reads the same corrupted cell, so only the frame CRC
// on the tool side can catch it. A no-op when i is outside the buffered
// region.
func (e *EMEM) CorruptBit(i uint32, bit uint8) {
	if i >= e.level {
		return
	}
	pos := (e.tail + i) % e.traceSize
	var b [1]byte
	e.RAM.Read(mem.EMEMBase+e.traceBase+pos, b[:])
	b[0] ^= 1 << (bit & 7)
	e.RAM.Write(mem.EMEMBase+e.traceBase+pos, b[:])
	e.SoftErrors++
	e.obs.softErrs.Inc()
}

// Page describes one calibration overlay redirection: accesses to the
// flash window [FlashAddr, FlashAddr+Size) are served from emem offset
// EmemOff instead of the flash array.
type Page struct {
	FlashAddr uint32
	EmemOff   uint32
	Size      uint32
}

// Overlay is a bus target that wraps the flash data port and redirects
// configured windows into the EMEM overlay partition. It implements the
// calibration use case of the Emulation Device: tuning data structures
// in RAM while the production image stays in flash.
type Overlay struct {
	Flash bus.Target
	Emem  *EMEM
	pages []Page

	// OnRemap, when set, is called after every redirection-table change
	// (MapPage, ClearPages). Remapping changes what a flash address reads
	// as, so the SoC assembly hooks decoded-code invalidation here.
	OnRemap func()

	// OnWrite, when set, is called for every write redirected into the
	// overlay partition, with the *flash-view* address the writer used.
	// Such writes change what the overlaid window reads as — the same
	// invalidation obligation as programming the flash array itself.
	OnWrite func(flashAddr uint32, n int)

	Redirected uint64 // accesses served from the overlay
	PassedThru uint64
}

// NewOverlay wraps flashPort with an empty redirection table.
func NewOverlay(flashPort bus.Target, e *EMEM) *Overlay {
	return &Overlay{Flash: flashPort, Emem: e}
}

// Name implements bus.Target.
func (o *Overlay) Name() string { return o.Flash.Name() + "+overlay" }

// MapPage adds a redirection page. It panics when the page exceeds the
// overlay partition.
func (o *Overlay) MapPage(p Page) {
	if p.EmemOff+p.Size > o.Emem.overlayBytes {
		panic(fmt.Sprintf("emem: overlay page beyond partition (%#x+%#x)", p.EmemOff, p.Size))
	}
	o.pages = append(o.pages, p)
	if o.OnRemap != nil {
		o.OnRemap()
	}
}

// ClearPages removes all redirections.
func (o *Overlay) ClearPages() {
	o.pages = nil
	if o.OnRemap != nil {
		o.OnRemap()
	}
}

// Resolve returns the redirected EMEM address for a flash access of size
// bytes at addr, or ok=false when no page covers it. Backdoor (Peek) reads
// must apply the same redirection the timed path applies.
func (o *Overlay) Resolve(addr uint32, size int) (uint32, bool) {
	for _, p := range o.pages {
		if addr >= p.FlashAddr && addr+uint32(size) <= p.FlashAddr+p.Size {
			return mem.EMEMBase + p.EmemOff + (addr - p.FlashAddr), true
		}
	}
	return 0, false
}

// Access implements bus.Target.
func (o *Overlay) Access(grant uint64, req *bus.Request) uint64 {
	for _, p := range o.pages {
		if req.Addr >= p.FlashAddr && req.Addr+uint32(len(req.Data)) <= p.FlashAddr+p.Size {
			o.Redirected++
			if req.Write && o.OnWrite != nil {
				o.OnWrite(req.Addr, len(req.Data))
			}
			shifted := *req
			shifted.Addr = mem.EMEMBase + p.EmemOff + (req.Addr - p.FlashAddr)
			return o.Emem.RAM.Access(grant, &shifted)
		}
	}
	o.PassedThru++
	return o.Flash.Access(grant, req)
}
