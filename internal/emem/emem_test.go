package emem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/mem"
)

func TestPartitioning(t *testing.T) {
	e := New(512<<10, 128<<10, 2)
	if e.Size() != 512<<10 || e.OverlayBytes() != 128<<10 || e.TraceCapacity() != 384<<10 {
		t.Errorf("partitions wrong: %d/%d/%d", e.Size(), e.OverlayBytes(), e.TraceCapacity())
	}
}

func TestAppendDrainFIFO(t *testing.T) {
	e := New(1024, 0, 0)
	e.AppendTrace([]byte{1, 2, 3})
	e.AppendTrace([]byte{4, 5})
	if e.Level() != 5 {
		t.Fatalf("level = %d", e.Level())
	}
	got := e.Drain(4)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("drained %v", got)
	}
	if e.Level() != 1 {
		t.Errorf("level after drain = %d", e.Level())
	}
	if got := e.Drain(10); !bytes.Equal(got, []byte{5}) {
		t.Errorf("tail drain = %v", got)
	}
}

func TestOverflowDropsWholeMessage(t *testing.T) {
	e := New(8, 0, 0)
	if !e.AppendTrace([]byte{1, 2, 3, 4, 5, 6}) {
		t.Fatal("first append must fit")
	}
	if e.AppendTrace([]byte{7, 8, 9}) {
		t.Fatal("overflow append must fail")
	}
	if e.MsgsDropped != 1 {
		t.Errorf("drops = %d", e.MsgsDropped)
	}
	// Stream content is unaffected by the dropped message.
	if got := e.Drain(6); !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6}) {
		t.Errorf("content corrupted: %v", got)
	}
}

func TestRingWrapProperty(t *testing.T) {
	// Any interleaving of appends and drains preserves FIFO order.
	f := func(ops []uint8) bool {
		e := New(64, 0, 0)
		var expect []byte
		next := byte(0)
		for _, op := range ops {
			if op%3 == 0 {
				n := int(op%7) + 1
				msg := make([]byte, n)
				for i := range msg {
					msg[i] = next
					next++
				}
				if e.AppendTrace(msg) {
					expect = append(expect, msg...)
				}
			} else {
				n := uint32(op % 9)
				got := e.Drain(n)
				if len(got) > len(expect) {
					return false
				}
				if !bytes.Equal(got, expect[:len(got)]) {
					return false
				}
				expect = expect[len(got):]
			}
		}
		return e.Level() == uint32(len(expect))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPeakLevelTracking(t *testing.T) {
	e := New(100, 0, 0)
	e.AppendTrace(make([]byte, 30))
	e.AppendTrace(make([]byte, 40))
	e.Drain(50)
	e.AppendTrace(make([]byte, 10))
	if e.PeakLevel != 70 {
		t.Errorf("peak = %d, want 70", e.PeakLevel)
	}
}

type fixedTarget struct{ hits int }

func (f *fixedTarget) Name() string { return "flash" }
func (f *fixedTarget) Access(_ uint64, req *bus.Request) uint64 {
	f.hits++
	for i := range req.Data {
		req.Data[i] = 0xFF
	}
	return 5
}

func TestOverlayRedirection(t *testing.T) {
	e := New(64<<10, 32<<10, 1)
	ft := &fixedTarget{}
	ov := NewOverlay(ft, e)
	ov.MapPage(Page{FlashAddr: 0x8000_1000, EmemOff: 0x100, Size: 256})
	e.RAM.Write32(mem.EMEMBase+0x100, 0xABCD)

	// Inside the page: served from EMEM.
	req := &bus.Request{Addr: 0x8000_1000, Data: make([]byte, 4)}
	ov.Access(0, req)
	if req.Data[0] != 0xCD || ft.hits != 0 {
		t.Errorf("redirect failed: %v hits=%d", req.Data, ft.hits)
	}
	// Outside: passed through to flash.
	req2 := &bus.Request{Addr: 0x8000_2000, Data: make([]byte, 4)}
	ov.Access(0, req2)
	if ft.hits != 1 || req2.Data[0] != 0xFF {
		t.Error("pass-through failed")
	}
	if ov.Redirected != 1 || ov.PassedThru != 1 {
		t.Errorf("stats %d/%d", ov.Redirected, ov.PassedThru)
	}
	// Straddling the page end: not redirected (partial pages are unsafe).
	req3 := &bus.Request{Addr: 0x8000_10FE, Data: make([]byte, 4)}
	ov.Access(0, req3)
	if ov.PassedThru != 2 {
		t.Error("straddling access must pass through")
	}
}

func TestOverlayResolve(t *testing.T) {
	e := New(64<<10, 32<<10, 1)
	ov := NewOverlay(&fixedTarget{}, e)
	ov.MapPage(Page{FlashAddr: 0x8000_0000, EmemOff: 0, Size: 64})
	if a, ok := ov.Resolve(0x8000_0010, 4); !ok || a != mem.EMEMBase+0x10 {
		t.Errorf("resolve = %#x/%v", a, ok)
	}
	if _, ok := ov.Resolve(0x8000_0040, 4); ok {
		t.Error("out-of-page resolve must fail")
	}
	ov.ClearPages()
	if _, ok := ov.Resolve(0x8000_0010, 4); ok {
		t.Error("resolve after clear must fail")
	}
}

func TestOverlayPageBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("page beyond partition must panic")
		}
	}()
	e := New(1024, 256, 0)
	NewOverlay(&fixedTarget{}, e).MapPage(Page{FlashAddr: 0, EmemOff: 200, Size: 100})
}
