package dma

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/mem"
	"repro/internal/sim"
)

func setup(t *testing.T) (*Controller, *irq.Router, *mem.RAM, *sim.Clock) {
	t.Helper()
	b := bus.New("spb", 2)
	ram := mem.NewRAM("sram", 0x1000, 0x1000, 1)
	b.Map(0x1000, 0x1000, ram)
	r := irq.New()
	ctl := New("dma0", b, 7, r)
	clk := sim.NewClock()
	clk.Attach("dma", ctl)
	return ctl, r, ram, clk
}

func TestBlockTransfer(t *testing.T) {
	ctl, r, ram, clk := setup(t)
	for i := uint32(0); i < 8; i++ {
		ram.Write32(0x1000+i*4, 0xA0+i)
	}
	trig := r.AddSRN("trig", 1, irq.ToDMA, 0)
	done := r.AddSRN("done", 3, irq.ToCPU, 0)
	ch := &Channel{Name: "c0", Src: 0x1000, Dst: 0x1800, SrcInc: 4, DstInc: 4,
		UnitBytes: 4, Count: 8, DoneSRN: done}
	ctl.AddChannel(ch, trig)

	r.Request(trig)
	clk.Run(500)

	for i := uint32(0); i < 8; i++ {
		if got := ram.Read32(0x1800 + i*4); got != 0xA0+i {
			t.Fatalf("word %d = %#x, want %#x", i, got, 0xA0+i)
		}
	}
	if ch.Transfers != 8 || ch.Triggers != 1 {
		t.Errorf("transfers=%d triggers=%d", ch.Transfers, ch.Triggers)
	}
	if !done.Pending() {
		t.Error("done SRN not raised")
	}
	if ctl.Counters().Get(sim.EvDMATransfer) != 8 {
		t.Errorf("EvDMATransfer = %d", ctl.Counters().Get(sim.EvDMATransfer))
	}
}

func TestFixedSourceAddress(t *testing.T) {
	ctl, r, ram, clk := setup(t)
	ram.Write32(0x1000, 0x55)
	trig := r.AddSRN("trig", 1, irq.ToDMA, 0)
	ch := &Channel{Name: "c0", Src: 0x1000, Dst: 0x1100, SrcInc: 0, DstInc: 4,
		UnitBytes: 4, Count: 3}
	ctl.AddChannel(ch, trig)
	r.Request(trig)
	clk.Run(200)
	for i := uint32(0); i < 3; i++ {
		if got := ram.Read32(0x1100 + i*4); got != 0x55 {
			t.Fatalf("copy %d = %#x", i, got)
		}
	}
}

func TestTriggersQueueViaRouter(t *testing.T) {
	ctl, r, ram, clk := setup(t)
	ram.Write32(0x1000, 7)
	trig := r.AddSRN("trig", 1, irq.ToDMA, 0)
	ch := &Channel{Name: "c0", Src: 0x1000, Dst: 0x1200, SrcInc: 0, DstInc: 4,
		UnitBytes: 4, Count: 1}
	ctl.AddChannel(ch, trig)

	r.Request(trig)
	clk.Run(100)
	r.Request(trig)
	clk.Run(100)
	if ch.Triggers != 2 || ch.Transfers != 2 {
		t.Errorf("triggers=%d transfers=%d, want 2/2", ch.Triggers, ch.Transfers)
	}
}

func TestDMAContendsOnBus(t *testing.T) {
	b := bus.New("spb", 2)
	ram := mem.NewRAM("sram", 0x1000, 0x1000, 1)
	b.Map(0x1000, 0x1000, ram)
	r := irq.New()
	ctl := New("dma0", b, 7, r)
	trig := r.AddSRN("trig", 1, irq.ToDMA, 0)
	ctl.AddChannel(&Channel{Name: "c0", Src: 0x1000, Dst: 0x1400, SrcInc: 4, DstInc: 4,
		UnitBytes: 4, Count: 64}, trig)
	r.Request(trig)

	clk := sim.NewClock()
	clk.Attach("dma", ctl)
	// A competing master hammers the bus each cycle.
	buf := make([]byte, 4)
	clk.Attach("rival", sim.TickerFunc(func(cy uint64) {
		b.Access(cy, &bus.Request{Master: 9, Addr: 0x1FF0, Data: buf})
	}))
	clk.Run(3000)
	if b.Stats(7).WaitCycles == 0 && b.Stats(9).WaitCycles == 0 {
		t.Error("expected bus contention between DMA and rival master")
	}
	if b.Counters().Get(sim.EvBusContention) == 0 {
		t.Error("contention events missing")
	}
}

func TestBadChannelConfigPanics(t *testing.T) {
	ctl, r, _, _ := setup(t)
	trig := r.AddSRN("trig", 2, irq.ToDMA, 0)
	for _, ch := range []*Channel{
		{Name: "bad-unit", UnitBytes: 2, Count: 1},
		{Name: "bad-count", UnitBytes: 4, Count: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", ch.Name)
				}
			}()
			ctl.AddChannel(ch, trig)
		}()
	}
	// Wrong provider.
	cpuSRN := r.AddSRN("cpu", 1, irq.ToCPU, 0)
	defer func() {
		if recover() == nil {
			t.Error("non-DMA SRN must panic")
		}
	}()
	ctl.AddChannel(&Channel{Name: "c", UnitBytes: 4, Count: 1}, cpuSRN)
}
