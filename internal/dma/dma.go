// Package dma models the DMA controller: hardware-triggered channels that
// move data between peripherals and memories as a bus master, generating
// exactly the kind of significant activity the paper notes "occurs without
// any of the data passing through a processor core" — and which therefore
// needs the MCDS bus observation blocks to be visible at all.
package dma

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/irq"
	"repro/internal/sim"
)

// Channel is one DMA channel. A trigger (an SRN routed to the DMA) starts
// one transfer of Count units from Src to Dst; addresses advance by the
// configured increments per unit.
type Channel struct {
	Name      string
	Src, Dst  uint32
	SrcInc    int32 // bytes added to Src per unit (0 = fixed, e.g. a FIFO register)
	DstInc    int32
	UnitBytes int      // 1 or 4
	Count     uint32   // units per trigger
	DoneSRN   *irq.SRN // raised when a transfer block completes (may be nil)

	Triggers  uint64
	Transfers uint64 // units moved
	Drops     uint64 // triggers while still busy

	// in-flight state
	active    bool
	remaining uint32
	curSrc    uint32
	curDst    uint32
}

// Controller executes channels over the bus.
type Controller struct {
	Name   string
	busRef *bus.Bus
	master int
	router *irq.Router

	channels  []*Channel
	bySRNPrio map[uint32]*Channel

	busyUntil uint64
	counters  sim.Counters
	waker     *sim.Waker
}

// New creates a DMA controller mastering b with master id.
func New(name string, b *bus.Bus, master int, router *irq.Router) *Controller {
	c := &Controller{Name: name, busRef: b, master: master, router: router,
		bySRNPrio: make(map[uint32]*Channel)}
	// Leave the wake schedule when a trigger lands mid-sleep. Waker
	// methods are nil-receiver safe, so this works unattached too.
	router.OnRequest(irq.ToDMA, func() { c.waker.Reschedule(c.waker.Cycle()) })
	return c
}

// NextWake implements sim.Sleeper: an idle controller with no pending
// trigger has no per-cycle work (its Tick is a pure no-op), so the clock
// may park it until OnRequest reschedules. While a transfer is in flight
// (or a trigger waits behind the bus-busy window) the next Tick that does
// anything is at busyUntil.
func (c *Controller) NextWake(from uint64) uint64 {
	active := false
	for _, x := range c.channels {
		if x.active {
			active = true
			break
		}
	}
	if !active && !c.router.HasPending(irq.ToDMA) {
		return sim.NoWake
	}
	if c.busyUntil > from {
		return c.busyUntil
	}
	return from
}

// BindWake implements sim.WakeBinder.
func (c *Controller) BindWake(w *sim.Waker) { c.waker = w }

// AddChannel registers ch, triggered by trigger (an SRN with Provider
// irq.ToDMA).
func (c *Controller) AddChannel(ch *Channel, trigger *irq.SRN) {
	if trigger.Provider != irq.ToDMA {
		panic(fmt.Sprintf("dma: trigger SRN %s not routed to DMA", trigger.Name))
	}
	if ch.UnitBytes != 1 && ch.UnitBytes != 4 {
		panic("dma: UnitBytes must be 1 or 4")
	}
	if ch.Count == 0 {
		panic("dma: Count must be > 0")
	}
	c.channels = append(c.channels, ch)
	c.bySRNPrio[trigger.Prio] = ch
}

// Channels returns the registered channels.
func (c *Controller) Channels() []*Channel { return c.channels }

// Counters exposes DMA events for MCDS taps.
func (c *Controller) Counters() *sim.Counters { return &c.counters }

// Tick implements sim.Ticker: accept one trigger when idle, then move one
// unit per bus round while active.
func (c *Controller) Tick(now uint64) {
	if now < c.busyUntil {
		return
	}
	// Find the active channel, or accept a new trigger.
	var ch *Channel
	for _, x := range c.channels {
		if x.active {
			ch = x
			break
		}
	}
	if ch == nil {
		srn, ok := c.router.TakePending(irq.ToDMA)
		if !ok {
			return
		}
		ch = c.bySRNPrio[srn.Prio]
		if ch == nil {
			return // trigger without channel: ignore (misconfigured SRN)
		}
		ch.Triggers++
		ch.active = true
		ch.remaining = ch.Count
		ch.curSrc = ch.Src
		ch.curDst = ch.Dst
	}

	// Move one unit: read then write.
	buf := make([]byte, ch.UnitBytes)
	rdDone, err := c.busRef.Access(now, &bus.Request{Master: c.master, Addr: ch.curSrc, Data: buf})
	if err != nil {
		panic(fmt.Sprintf("dma %s: read failed: %v", ch.Name, err))
	}
	wrDone, err := c.busRef.Access(rdDone, &bus.Request{Master: c.master, Addr: ch.curDst, Data: buf, Write: true})
	if err != nil {
		panic(fmt.Sprintf("dma %s: write failed: %v", ch.Name, err))
	}
	c.busyUntil = wrDone
	ch.Transfers++
	c.counters.Inc(sim.EvDMATransfer)

	ch.curSrc += uint32(ch.SrcInc)
	ch.curDst += uint32(ch.DstInc)
	ch.remaining--
	if ch.remaining == 0 {
		ch.active = false
		if ch.DoneSRN != nil {
			c.router.Request(ch.DoneSRN)
		}
	}
}
