// Frame codec: the unit of integrity on the TCP transport. A pipe
// tears at byte granularity and the record scanner already survives
// that; a network adds corruption modes a pipe cannot have — bit flips
// past a bad NIC, a proxy truncating mid-write, an impostor feeding
// garbage — so every byte on the wire travels inside a length-prefixed
// CRC-32-trailed frame:
//
//	[4B big-endian length n] [1B type] [n-1B payload] [4B CRC-32/IEEE]
//
// The length covers type+payload; the CRC covers the same bytes. A
// frame that fails the length bound or the checksum is not resynchron-
// izable the way the record stream is (TCP gives no record boundaries
// to hunt for), so framing errors are connection-fatal: the connection
// dies, the supervisor classifies and redials. Record-level integrity
// is still re-verified end-to-end by the ingest scanner — the frame CRC
// protects the transport, not the ledger.
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// frameType tags one frame on the supervisor<->agent socket.
type frameType byte

const (
	// ftChallenge (agent->supervisor): version byte + random nonce,
	// opening the handshake.
	ftChallenge frameType = 1
	// ftAuth (supervisor->agent): HMAC over the agent's nonce + the
	// supervisor's own nonce for mutual authentication.
	ftAuth frameType = 2
	// ftAuthOK (agent->supervisor): HMAC over the supervisor's nonce —
	// proof the agent holds the key too (an impostor accepting
	// connections learns nothing and is detected here).
	ftAuthOK frameType = 3
	// ftSpec (supervisor->agent): the JSON shard.Spec, matrix included.
	ftSpec frameType = 4
	// ftSpecOK (agent->supervisor): assignment accepted; payload is the
	// agent's 4-byte pid for supervisor logs.
	ftSpecOK frameType = 5
	// ftStream (agent->supervisor): a chunk of the worker's stdout — the
	// unchanged "//shard" record/control protocol rides these verbatim.
	ftStream frameType = 6
	// ftExit (agent->supervisor): the worker finished; payload is its
	// 4-byte exit code. Distinguishes a clean close from a torn one.
	ftExit frameType = 7
	// ftTerm (supervisor->agent): graceful drain request — the remote
	// analogue of SIGTERM to an exec'd worker.
	ftTerm frameType = 8
)

// MaxFramePayload bounds a single frame so a garbage length prefix (or
// a hostile peer) cannot make the reader allocate unbounded memory.
// The largest legitimate frame is the spec upload, whose size is the
// matrix JSON plus flags — far under this.
const MaxFramePayload = 16 << 20

// frameOverhead is the fixed per-frame byte cost: length prefix, type,
// CRC trailer.
const frameOverhead = 4 + 1 + 4

// writeFrame encodes one frame to w as a single Write (one syscall on
// a net.Conn, so a frame is never torn by interleaved writers that
// hold the caller's lock).
func writeFrame(w io.Writer, ft frameType, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("shard: frame payload %d bytes exceeds limit %d", len(payload), MaxFramePayload)
	}
	buf := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[4] = byte(ft)
	copy(buf[5:], payload)
	crc := crc32.ChecksumIEEE(buf[4 : 5+len(payload)])
	binary.BigEndian.PutUint32(buf[5+len(payload):], crc)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes one frame from r. Any violation — truncation, a
// zero or oversized length, a checksum mismatch — is an error; the
// caller must treat it as connection-fatal (there is no resync point
// in a TCP byte stream).
func readFrame(r io.Reader) (frameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("shard: zero-length frame")
	}
	if n > MaxFramePayload+1 {
		return 0, nil, fmt.Errorf("shard: frame length %d exceeds limit %d", n, MaxFramePayload+1)
	}
	body := make([]byte, n+4) // type+payload plus CRC trailer
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("shard: truncated frame: %w", err)
	}
	want := binary.BigEndian.Uint32(body[n:])
	if got := crc32.ChecksumIEEE(body[:n]); got != want {
		return 0, nil, fmt.Errorf("shard: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return frameType(body[0]), body[1:n:n], nil
}
