// Agent: the listening half of remote shard workers — a long-lived
// daemon (`tcfleet agent`) that accepts authenticated supervisor
// connections and runs one shard-worker assignment per connection,
// in-process, with the worker's stdout framed back over the socket.
// One connection == one spawn: a respawn after any failure is a fresh
// dial with a fresh assignment, so the agent holds no campaign state
// at all — the supervisor's journal stays the only ledger, and an
// agent restart loses nothing but in-flight work the supervisor
// already knows how to re-run.
//
// Trust boundary: an unauthenticated peer gets a random challenge and
// a closed connection — no banner, no version, no spec. The worker is
// only started after the mutual handshake, and a connection loss at
// any point cancels the worker's context (the supervisor has either
// moved on or will redial; finishing the work would only produce
// records nobody ingests).
package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Agent serves shard-worker assignments to authenticated supervisors.
type Agent struct {
	// Key is the shared authentication key (LoadKey). Required; never
	// logged.
	Key []byte
	// Workers caps the in-process pool size of one assignment when the
	// supervisor asks for more; 0 means trust the spec.
	Workers int
	// Logf receives connection lifecycle diagnostics; nil discards.
	// Messages never contain key material.
	Logf func(format string, args ...any)
	// Obs receives agent-side counters (connections, auth failures,
	// active workers); nil disables them.
	Obs *obs.Registry
	// Stderr receives worker diagnostics (the local analogue of the
	// exec transport forwarding worker stderr); nil discards.
	Stderr io.Writer
	// HandshakeTimeout bounds authentication + spec upload per
	// connection; 0 means DefaultHandshakeTimeout.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds any single stream-frame write toward the
	// supervisor; 0 means DefaultWriteTimeout.
	WriteTimeout time.Duration

	active atomic.Int64 // live assignments, mirrored to the obs gauge
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Agent) stderr() io.Writer {
	if a.Stderr != nil {
		return a.Stderr
	}
	return io.Discard
}

func (a *Agent) handshakeTimeout() time.Duration {
	if a.HandshakeTimeout > 0 {
		return a.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

func (a *Agent) writeTimeout() time.Duration {
	if a.WriteTimeout > 0 {
		return a.WriteTimeout
	}
	return DefaultWriteTimeout
}

// Serve accepts connections on ln until ctx is canceled (or ln is
// closed externally), then waits for every in-flight assignment to
// drain. Cancellation is the agent's graceful shutdown: the listener
// closes immediately, live workers get their contexts canceled and
// drain like a SIGTERM'd exec worker.
func (a *Agent) Serve(ctx context.Context, ln net.Listener) error {
	if len(a.Key) < MinKeyLen {
		return fmt.Errorf("shard: agent key shorter than %d bytes", MinKeyLen)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			ln.Close()
		case <-stop:
		}
	}()
	var wg sync.WaitGroup
	for {
		nc, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		a.Obs.Counter("agent_conns_total").Inc()
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.handle(ctx, nc)
		}()
	}
}

// ListenAndServe binds addr and serves; the bound address (the only
// way to learn the port of ":0") is reported through onListen before
// accepting begins.
func (a *Agent) ListenAndServe(ctx context.Context, addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: agent listen: %w", err)
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return a.Serve(ctx, ln)
}

// handle runs one connection: authenticate, receive the assignment,
// run the worker with its stdout framed back, report the exit code.
func (a *Agent) handle(ctx context.Context, nc net.Conn) {
	defer nc.Close()
	remote := nc.RemoteAddr().String()
	_ = nc.SetDeadline(time.Now().Add(a.handshakeTimeout()))
	if err := handshakeAgent(nc, a.Key); err != nil {
		// Deliberately terse: an unauthenticated peer learns nothing, and
		// the log carries no key-derived bytes.
		a.Obs.Counter("agent_handshake_failures").Inc()
		a.logf("agent: %s: %v", remote, err)
		return
	}
	ft, payload, err := readFrame(nc)
	if err != nil || ft != ftSpec {
		a.Obs.Counter("agent_bad_specs").Inc()
		a.logf("agent: %s: no spec after handshake (frame %d, %v)", remote, ft, err)
		return
	}
	var spec Spec
	if err := json.Unmarshal(payload, &spec); err != nil {
		a.Obs.Counter("agent_bad_specs").Inc()
		a.logf("agent: %s: bad spec: %v", remote, err)
		return
	}
	if a.Workers > 0 && spec.Workers > a.Workers {
		spec.Workers = a.Workers
	}
	var pid [4]byte
	binary.BigEndian.PutUint32(pid[:], uint32(os.Getpid()))
	if err := writeFrame(nc, ftSpecOK, pid[:]); err != nil {
		a.logf("agent: %s: spec ack: %v", remote, err)
		return
	}
	_ = nc.SetDeadline(time.Time{})
	a.logf("agent: %s: shard %d assigned cells %s (%d workers)", remote, spec.Shard, spec.Cells, spec.Workers)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Control reader: a ftTerm frame is the supervisor's graceful drain;
	// EOF or a reset means the supervisor is gone — either way the
	// worker's context ends and the campaign pool drains.
	go func() {
		for {
			ft, _, err := readFrame(nc)
			if err != nil {
				cancel()
				return
			}
			if ft == ftTerm {
				a.logf("agent: %s: shard %d drain requested", remote, spec.Shard)
				cancel()
				return
			}
		}
	}()

	out := &frameWriter{c: nc, timeout: a.writeTimeout()}
	a.Obs.Gauge("agent_workers_active").Set(float64(a.active.Add(1)))
	code := RunWorker(wctx, spec.Args(), bytes.NewReader(spec.Matrix), out, a.stderr())
	a.Obs.Gauge("agent_workers_active").Set(float64(a.active.Add(-1)))
	a.Obs.Counter("agent_assignments_total").Inc()
	var exit [4]byte
	binary.BigEndian.PutUint32(exit[:], uint32(int32(code)))
	_ = out.control(ftExit, exit[:])
	a.logf("agent: %s: shard %d worker exit %d", remote, spec.Shard, code)
}

// frameWriter adapts the socket to the worker's stdout: every Write
// becomes one ftStream frame under a write deadline, and the error is
// sticky — once the supervisor is unreachable the worker's emitter
// sees every subsequent write fail, exactly like a broken pipe.
type frameWriter struct {
	mu      sync.Mutex
	c       net.Conn
	timeout time.Duration
	err     error
}

func (w *frameWriter) Write(p []byte) (int, error) {
	if err := w.control(ftStream, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// control sends one frame of any type under the writer's lock, so exit
// frames never interleave with stream chunks.
func (w *frameWriter) control(ft frameType, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	_ = w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	if err := writeFrame(w.c, ft, payload); err != nil {
		w.err = err
		return err
	}
	return nil
}
