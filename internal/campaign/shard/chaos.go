// Chaos: a seeded fault-injection wrapper over any Transport, for
// proving the supervisor's determinism contract holds on a hostile
// network. The wrapper sits where a flaky WAN would — between the
// supervisor's ingest and the real connection — and injects the
// canonical network pathologies:
//
//   - latency spikes: reads pause briefly (exercises nothing but
//     patience — aggregates must not care);
//   - mid-record cuts: the connection is reset after a seed-chosen
//     byte count (the record scanner drops the torn tail, the
//     supervisor classifies a crash and respawns);
//   - stalls: one read blocks past the heartbeat deadline (the
//     monitor must kill the wedged connection, not wait forever);
//   - duplicate partial replays: recently delivered bytes are
//     delivered again (dup/torn counters tick, the ledger stays
//     exactly-once).
//
// Every decision comes from an RNG forked off (Seed, spawn ordinal),
// so a chaos run is reproducible; MaxFaults bounds the total injected
// faults so a bounded respawn budget always converges.
package shard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// chaosLabel decorrelates the chaos RNG from every other seed fork in
// the tree (cf. shardBackoffLabel).
const chaosLabel = 0xc4a05c4a05

// ChaosPlan tunes the injected fault mix. Probabilities are evaluated
// once per spawned connection (cut, stall) or once per read window
// (latency, replay); zero values inject nothing of that kind.
type ChaosPlan struct {
	// CutProb is the per-spawn probability of a connection reset after
	// a seed-chosen number of stream bytes.
	CutProb float64
	// StallProb is the per-spawn probability of one read stalling for
	// StallFor — long enough, in tests, to starve the heartbeat
	// deadline.
	StallProb float64
	StallFor  time.Duration
	// LatencyProb is the per-read probability of a Latency-long pause.
	LatencyProb float64
	Latency     time.Duration
	// ReplayProb is the per-read probability of re-delivering a suffix
	// of recently delivered bytes (a duplicated partial flush).
	ReplayProb float64
	// MaxFaults caps the total cuts+stalls+replays injected across the
	// whole transport; 0 means unlimited. A finite cap guarantees a
	// campaign with a finite respawn budget converges.
	MaxFaults int
}

// ChaosTransport wraps Inner, injecting ChaosPlan faults into every
// connection's record stream. Spawn errors pass through untouched.
type ChaosTransport struct {
	Inner Transport
	Seed  uint64
	Plan  ChaosPlan
	// Logf narrates injected faults (useful when a chaos test fails);
	// nil discards.
	Logf func(format string, args ...any)

	spawns atomic.Int64
	faults atomic.Int64
}

func (t *ChaosTransport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// takeFault consumes one unit of the fault budget; false when spent.
func (t *ChaosTransport) takeFault() bool {
	if t.Plan.MaxFaults <= 0 {
		return true
	}
	for {
		n := t.faults.Load()
		if n >= int64(t.Plan.MaxFaults) {
			return false
		}
		if t.faults.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Faults reports how many faults were actually injected (tests assert
// the chaos was real).
func (t *ChaosTransport) Faults() int { return int(t.faults.Load()) }

// Start spawns through Inner and wraps the connection's stream in the
// fault lens. Each spawn gets its own RNG fork, so the fault schedule
// is a pure function of (Seed, spawn ordinal).
func (t *ChaosTransport) Start(spec Spec) (Conn, error) {
	conn, err := t.Inner.Start(spec)
	if err != nil {
		return nil, err
	}
	n := t.spawns.Add(1)
	rng := sim.NewRNG(t.Seed ^ chaosLabel).Fork(uint64(n))
	cc := &chaosConn{Conn: conn, t: t, si: spec.Shard, rng: rng}
	// Fault offsets are chosen to land inside a test-horizon stream
	// (one record is ~3 KiB): a cut beyond the stream's end would be a
	// scheduled fault that never fires.
	if rng.Bool(t.Plan.CutProb) {
		cc.cutAt = 512 + rng.Intn(8<<10)
	} else {
		cc.cutAt = -1
	}
	if rng.Bool(t.Plan.StallProb) {
		cc.stallAt = 256 + rng.Intn(4<<10)
	} else {
		cc.stallAt = -1
	}
	return cc, nil
}

// chaosConn delegates the process-control surface to the wrapped Conn
// and interposes only on the byte stream.
type chaosConn struct {
	Conn
	t   *ChaosTransport
	si  int
	rng *sim.RNG

	mu      sync.Mutex
	read    int    // stream bytes delivered so far
	cutAt   int    // reset the connection at this offset; -1 never
	stallAt int    // stall one read at this offset; -1 never
	recent  []byte // tail of delivered bytes, replay source
	pending []byte // queued replay bytes, served before real reads
}

// chaosRecentCap bounds the replay buffer: enough to span a full
// record (cell header + report + CRC trailer) at test horizons.
const chaosRecentCap = 32 << 10

func (c *chaosConn) Output() io.Reader { return c }

func (c *chaosConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Serve a queued replay first: the duplicated bytes arrive exactly
	// where a doubled TCP flush would put them — between real chunks.
	if len(c.pending) > 0 {
		n := copy(p, c.pending)
		c.pending = c.pending[n:]
		return n, nil
	}
	if c.cutAt >= 0 && c.read >= c.cutAt {
		c.cutAt = -1
		if c.t.takeFault() {
			// Reset: kill the underlying connection (the worker side sees
			// a broken pipe, like a real RST) and fail the read.
			c.t.logf("chaos: shard %d: connection reset after %d bytes", c.si, c.read)
			c.Conn.Kill()
			return 0, fmt.Errorf("chaos: connection reset")
		}
	}
	if c.stallAt >= 0 && c.read >= c.stallAt && c.t.takeFault() {
		c.stallAt = -1
		c.t.logf("chaos: shard %d: stalling %v at %d bytes", c.si, c.t.Plan.StallFor, c.read)
		time.Sleep(c.t.Plan.StallFor)
	}
	if c.rng.Bool(c.t.Plan.LatencyProb) && c.t.Plan.Latency > 0 {
		time.Sleep(c.t.Plan.Latency)
	}
	n, err := c.Conn.Output().Read(p)
	if n > 0 {
		c.read += n
		c.recent = append(c.recent, p[:n]...)
		if len(c.recent) > chaosRecentCap {
			c.recent = c.recent[len(c.recent)-chaosRecentCap:]
		}
		if c.rng.Bool(c.t.Plan.ReplayProb) && len(c.recent) > 0 && c.t.takeFault() {
			// Replay a suffix of what was already delivered: sometimes a
			// torn fragment, sometimes whole records — the ingest side
			// must count torn/dup and never double-ingest.
			cut := c.rng.Intn(len(c.recent))
			c.pending = append([]byte(nil), c.recent[cut:]...)
			c.t.logf("chaos: shard %d: replaying %d bytes", c.si, len(c.pending))
		}
	}
	return n, err
}
