// Authentication: a TCP listener accepts connections from anyone, so
// both ends must prove key possession before a byte of campaign data
// moves. The handshake is a mutual HMAC-SHA256 challenge-response over
// a shared key:
//
//	agent      -> supervisor  ftChallenge: version || nonceA (32B random)
//	supervisor -> agent       ftAuth:      HMAC(key, "sup"||nonceA) || nonceS
//	agent      -> supervisor  ftAuthOK:    HMAC(key, "agent"||nonceS)
//
// Distinct direction labels stop a reflection attack (an impostor
// echoing the supervisor's own MAC back at it), fresh random nonces
// stop replay, and hmac.Equal keeps every comparison constant-time.
// The key itself never crosses the wire, and no key-derived byte is
// ever formatted into a log, journal, or event: a failed handshake
// reports only that it failed.
package shard

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
)

// MinKeyLen is the minimum shared-key length LoadKey accepts: below
// this, brute force beats the HMAC and the authentication is theater.
const MinKeyLen = 16

// nonceLen is the challenge nonce size (a full SHA-256 block's worth
// of entropy is overkill; 32 random bytes is the conventional choice).
const nonceLen = 32

// Handshake direction labels: what each side signs is bound to its
// role, so a MAC minted by one side can never authenticate the other.
var (
	labelSupervisor = []byte("tcfleet-supervisor-v1:")
	labelAgent      = []byte("tcfleet-agent-v1:")
)

// LoadKey reads the shared authentication key from path, trimming
// surrounding whitespace (so `openssl rand -hex 32 > key` works
// verbatim). The file's bytes ARE the key — there is no decoding — and
// callers must never log them.
func LoadKey(path string) ([]byte, error) {
	if path == "" {
		return nil, fmt.Errorf("shard: no key file configured (remote workers require a shared key)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: key file: %w", err)
	}
	key := bytes.TrimSpace(raw)
	if len(key) < MinKeyLen {
		return nil, fmt.Errorf("shard: key file %s holds %d key bytes, need at least %d", path, len(key), MinKeyLen)
	}
	return key, nil
}

// sign computes the handshake MAC for one direction over a nonce.
func sign(key, label, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(label)
	mac.Write(nonce)
	return mac.Sum(nil)
}

// newNonce draws a fresh random challenge.
func newNonce() ([]byte, error) {
	n := make([]byte, nonceLen)
	if _, err := rand.Read(n); err != nil {
		return nil, fmt.Errorf("shard: nonce: %w", err)
	}
	return n, nil
}

// errAuth is the single, deliberately information-free authentication
// failure: which byte differed, or whether the peer knew any key at
// all, is exactly what an attacker probes for.
var errAuth = fmt.Errorf("shard: peer authentication failed")

// handshakeAgent runs the agent (listening) side of the handshake on
// rw: challenge out, verify the supervisor's MAC, prove our own key.
// On any failure the connection is unusable and the caller must close
// it without revealing more than errAuth.
func handshakeAgent(rw io.ReadWriter, key []byte) error {
	nonceA, err := newNonce()
	if err != nil {
		return err
	}
	challenge := append([]byte{ProtocolVersion}, nonceA...)
	if err := writeFrame(rw, ftChallenge, challenge); err != nil {
		return fmt.Errorf("shard: handshake send: %w", err)
	}
	ft, payload, err := readFrame(rw)
	if err != nil {
		return fmt.Errorf("shard: handshake read: %w", err)
	}
	if ft != ftAuth || len(payload) != sha256.Size+nonceLen {
		return errAuth
	}
	if !hmac.Equal(payload[:sha256.Size], sign(key, labelSupervisor, nonceA)) {
		return errAuth
	}
	nonceS := payload[sha256.Size:]
	if err := writeFrame(rw, ftAuthOK, sign(key, labelAgent, nonceS)); err != nil {
		return fmt.Errorf("shard: handshake send: %w", err)
	}
	return nil
}

// handshakeSupervisor runs the dialing side: answer the agent's
// challenge, then verify the agent's counter-proof so an impostor
// listener cannot silently eat a shard's cells.
func handshakeSupervisor(rw io.ReadWriter, key []byte) error {
	ft, payload, err := readFrame(rw)
	if err != nil {
		return fmt.Errorf("shard: handshake read: %w", err)
	}
	if ft != ftChallenge || len(payload) != 1+nonceLen {
		return errAuth
	}
	if payload[0] != ProtocolVersion {
		return fmt.Errorf("shard: agent speaks protocol v%d, supervisor v%d", payload[0], ProtocolVersion)
	}
	nonceA := payload[1:]
	nonceS, err := newNonce()
	if err != nil {
		return err
	}
	resp := append(sign(key, labelSupervisor, nonceA), nonceS...)
	if err := writeFrame(rw, ftAuth, resp); err != nil {
		return fmt.Errorf("shard: handshake send: %w", err)
	}
	ft, payload, err = readFrame(rw)
	if err != nil {
		return fmt.Errorf("shard: handshake read: %w", err)
	}
	if ft != ftAuthOK || !hmac.Equal(payload, sign(key, labelAgent, nonceS)) {
		return errAuth
	}
	return nil
}
