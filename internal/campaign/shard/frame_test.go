package shard

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// TestFrameRoundTrip: every (type, payload) the codec accepts comes
// back byte-identical, including the empty payload and sizes that
// straddle typical read-buffer boundaries.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sizes := []int{0, 1, 2, 31, 32, 33, 4095, 4096, 4097, 64 << 10}
	for _, size := range sizes {
		payload := make([]byte, size)
		rng.Read(payload)
		for _, ft := range []frameType{ftChallenge, ftSpec, ftStream, ftExit, ftTerm} {
			var buf bytes.Buffer
			if err := writeFrame(&buf, ft, payload); err != nil {
				t.Fatalf("writeFrame(%d, %d bytes): %v", ft, size, err)
			}
			if buf.Len() != frameOverhead+size {
				t.Fatalf("frame of %d payload bytes encoded to %d, want %d", size, buf.Len(), frameOverhead+size)
			}
			gotFt, gotPayload, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("readFrame(%d, %d bytes): %v", ft, size, err)
			}
			if gotFt != ft || !bytes.Equal(gotPayload, payload) {
				t.Fatalf("round trip mangled frame type %d size %d (got type %d, %d bytes)", ft, size, gotFt, len(gotPayload))
			}
		}
	}
}

// TestFrameTruncation: every strict prefix of a valid frame is an
// error, never a short success — a connection dying mid-frame must
// surface, not silently deliver a partial payload.
func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, ftStream, []byte("//shard hb done=3\n")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed as a whole frame", cut, len(whole))
		}
		// Truncation inside the body must say so (EOF on the header is
		// the normal end-of-stream and stays plain io.EOF).
		if cut >= 4 && err != io.ErrUnexpectedEOF && !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut at %d: error %v does not identify truncation", cut, err)
		}
	}
}

// TestFrameBitFlip: flipping any single bit anywhere in an encoded
// frame — length prefix, type, payload, or CRC — must fail the read.
// This is the transport's whole integrity claim: a bad NIC cannot turn
// one spec into another.
func TestFrameBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, ftSpec, []byte(`{"Shard":3,"Cells":"0-7"}`)); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for i := 0; i < len(whole); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), whole...)
			flipped[i] ^= 1 << bit
			if ft, payload, err := readFrame(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("bit %d of byte %d flipped, frame still accepted (type %d, %d bytes)", bit, i, ft, len(payload))
			}
		}
	}
}

// TestFrameOversize: a hostile or garbage length prefix beyond the
// payload bound is rejected from the 4-byte header alone, before any
// allocation or read of the claimed body.
func TestFrameOversize(t *testing.T) {
	if err := writeFrame(io.Discard, ftStream, make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("writeFrame accepted an over-limit payload")
	}
	// Header claims 1 GiB; the reader must reject it without trying to
	// consume (failingReader proves no body read happens).
	hdr := []byte{0x40, 0x00, 0x00, 0x00}
	_, _, err := readFrame(io.MultiReader(bytes.NewReader(hdr), failingReader{}))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized length prefix: %v, want limit rejection", err)
	}
	// A zero length is equally meaningless (every frame has a type byte).
	_, _, err = readFrame(bytes.NewReader([]byte{0, 0, 0, 0}))
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Errorf("zero length prefix: %v, want rejection", err)
	}
}

// failingReader fails the test of anyone who reads from it.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) {
	panic("readFrame read a body for a length it should have rejected")
}

// TestFrameGarbage: random byte streams never parse (the CRC would
// have to collide), and never panic or over-allocate.
func TestFrameGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		junk := make([]byte, rng.Intn(256))
		rng.Read(junk)
		// Keep the claimed length in bounds so the read path past the
		// header check is exercised too.
		if len(junk) >= 4 {
			junk[0], junk[1] = 0, 0
		}
		if ft, payload, err := readFrame(bytes.NewReader(junk)); err == nil {
			t.Fatalf("garbage stream %d parsed as frame (type %d, %d bytes)", i, ft, len(payload))
		}
	}
}

// FuzzReadFrame: the decoder must never panic and never accept a
// stream that a re-encode of its own result would not reproduce — a
// parsed frame IS the canonical encoding of its content.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = writeFrame(&seed, ftStream, []byte("//shard cell 4\n"))
	f.Add(seed.Bytes())
	_ = writeFrame(&seed, ftSpec, []byte(`{"Shard":1}`))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 6, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFramePayload {
			t.Fatalf("accepted %d-byte payload past the %d bound", len(payload), MaxFramePayload)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, ft, payload); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("accepted frame is not the canonical encoding of its content")
		}
	})
}
