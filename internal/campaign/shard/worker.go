// Worker: the child-process half of a sharded campaign. A worker is
// handed the full matrix (stdin) plus an index set (argv), re-expands
// the matrix itself, verifies the expansion hash against the
// supervisor's, and runs exactly its assigned cells through the same
// in-process supervisor policy a single-process campaign uses. Every
// completed report streams back over stdout as a CRC-32-trailed record
// preceded by a "//shard cell <index>" control line; liveness rides the
// same stream as periodic "//shard hb" lines. The worker trusts nothing
// about its own lifetime — SIGTERM drains it gracefully mid-campaign,
// and anything harsher is the supervisor's problem to detect.
package shard

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/runcfg"
)

// emitter serializes the worker's stdout: control lines and report
// records come from concurrent pool workers and the heartbeat
// goroutine, and a torn interleaving would cost a record (the scanner
// would drop it as garbage — counted, not fatal, but wasteful).
type emitter struct {
	mu sync.Mutex
	w  io.Writer
}

// control emits one "//shard ..." protocol line.
func (e *emitter) control(format string, args ...any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fmt.Fprintf(e.w, "//shard "+format+"\n", args...)
}

// record emits a completed cell: the index header line, then the
// checksummed report record, under one lock so nothing interleaves.
func (e *emitter) record(idx int, r *profiling.RunReport) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := fmt.Fprintf(e.w, "//shard cell %d\n", idx); err != nil {
		return err
	}
	_, err := profiling.AppendSummedRecord(e.w, r)
	return err
}

// WorkerMain is the entry point of the hidden "tcfleet shard-worker"
// subcommand, factored over explicit streams so tests can run it
// in-process or via a helper binary. It returns the process exit code:
// 0 on a completed (or gracefully drained) shard — per-cell failures
// are reported in-band as "fail" lines, not via the exit code — and 2
// on unusable input (bad flags, unreadable matrix, hash mismatch).
// Graceful drain is SIGTERM/SIGINT; RunWorker is the same entry point
// over an explicit context for hosts (the TCP agent) that drain a
// worker without owning its process signals.
func WorkerMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return RunWorker(ctx, args, stdin, stdout, stderr)
}

// RunWorker runs one shard-worker assignment to completion or until
// ctx is canceled (graceful drain: in-flight cells finish their
// cancellation poll, completed records are already streamed, the bye
// line closes the protocol). It is WorkerMain minus signal ownership —
// the TCP agent runs many assignments in one process and cancels each
// connection's worker independently.
func RunWorker(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("shard-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shardNo := fs.Int("shard", 0, "shard ordinal (for logs and protocol lines)")
	cellSpec := fs.String("cells", "", "cell index set to execute (e.g. 0-3,7,9-12)")
	workers := fs.Int("workers", 1, "worker pool size inside this shard")
	hb := fs.Duration("hb", DefaultHeartbeatEvery, "heartbeat period on stdout")
	hash := fs.String("hash", "", "expected MatrixHash of the expansion (verified)")
	spans := fs.Bool("spans", false, "trace campaign spans and stream them back at drain")
	sup := runcfg.BindSupervise(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := sup.Validate(); err != nil {
		fmt.Fprintf(stderr, "shard-worker: %v\n", err)
		return 2
	}

	m, err := campaign.Read(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "shard-worker: matrix on stdin: %v\n", err)
		return 2
	}
	cells, err := m.Expand()
	if err != nil {
		fmt.Fprintf(stderr, "shard-worker: %v\n", err)
		return 2
	}
	got := campaign.MatrixHash(cells)
	if *hash != "" && got != *hash {
		// The supervisor and this worker expanded different campaigns —
		// running would poison the aggregate with mis-seeded cells.
		fmt.Fprintf(stderr, "shard-worker: matrix hash mismatch: supervisor %.12s, local expansion %.12s\n", *hash, got)
		return 2
	}
	indices, err := ParseIndexSet(*cellSpec)
	if err != nil {
		fmt.Fprintf(stderr, "shard-worker: %v\n", err)
		return 2
	}
	subset := make([]campaign.Cell, 0, len(indices))
	for _, idx := range indices {
		if idx < 0 || idx >= len(cells) {
			fmt.Fprintf(stderr, "shard-worker: cell index %d outside expansion (%d cells)\n", idx, len(cells))
			return 2
		}
		subset = append(subset, cells[idx])
	}

	em := &emitter{w: stdout}
	var done atomic.Int64
	em.control("hello v=%d shard=%d cells=%d hash=%s", ProtocolVersion, *shardNo, len(subset), got)

	// Heartbeat: proof of life between records, so the supervisor can
	// tell "long cell" from "wedged process".
	hbDone := make(chan struct{})
	hbStopped := make(chan struct{})
	go func() {
		defer close(hbStopped)
		period := *hb
		if period <= 0 {
			period = DefaultHeartbeatEvery
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-t.C:
				em.control("hb done=%d", done.Load())
			}
		}
	}()

	// Span stitching: when the supervisor asked for it, trace this
	// worker's campaign spans (one per cell attempt, via the shared
	// per-cell supervisor) and stream them back over the control channel
	// at drain — the supervisor rebases them onto its own timeline and
	// gives each shard its own pid row in the merged Chrome trace.
	var tracer *obs.Tracer
	if *spans {
		tracer = obs.NewTracer()
	}
	workSpan := tracer.Start(fmt.Sprintf("shard %d: cells %s", *shardNo, *cellSpec), "shard")

	res, err := campaign.RunCells(ctx, subset, campaign.Options{
		Workers:     *workers,
		Tracer:      tracer,
		CellTimeout: sup.CellTimeout,
		Retries:     sup.Retries,
		OnReport: func(cell campaign.Cell, r *profiling.RunReport) {
			// A write error means the supervisor end of the pipe is gone;
			// the remaining cells would be wasted work, but tearing down
			// from here races the pool, so just stop counting — the exit
			// path will fail on the bye line too and the supervisor's
			// journal never saw these cells, so nothing is lost.
			if werr := em.record(cell.Index, r); werr == nil {
				done.Add(1)
			}
		},
	})
	close(hbDone)
	<-hbStopped
	if err != nil {
		fmt.Fprintf(stderr, "shard-worker: %v\n", err)
		return 2
	}
	for _, ce := range res.Errors {
		em.control("fail %d %s %d %q", ce.Cell.Index, ce.Class, ce.Attempts, ce.Err.Error())
	}
	workSpan.End()
	// Spans travel last, after the records they describe: one compact
	// JSON object per control line (json.Marshal never emits newlines,
	// so each span stays a single side-channel line).
	for _, sp := range tracer.Export() {
		data, merr := json.Marshal(sp)
		if merr != nil {
			continue
		}
		em.control("span %s", data)
	}
	em.control("bye done=%d failed=%d", done.Load(), len(res.Errors))
	return 0
}
