package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/profiling"
)

// testMatrix is 8 cells (2 seeds × 2 SoCs × 1 mix × 2 faults × 1
// resolution) at a short horizon — small enough that a full sharded
// determinism sweep stays in test-suite time, structured enough that a
// wrong seed or a lost cell changes the aggregate.
func testMatrix() campaign.Matrix {
	return campaign.Matrix{
		Name:        "shard-test",
		Seed:        42,
		Seeds:       2,
		SoCs:        []string{"TC1797", "TC1767"},
		Mixes:       []string{"lean"},
		Faults:      []string{"clean", "everything"},
		Resolutions: []uint64{500},
		Cycles:      20_000,
	}
}

func profileJSON(t *testing.T, fp *profiling.FleetProfile) []byte {
	t.Helper()
	if fp == nil {
		t.Fatal("nil fleet profile")
	}
	var buf bytes.Buffer
	if err := fp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refProfileJSON runs the matrix in-process (the PR3/PR4-proven path)
// as the byte-identity reference for every sharded run.
func refProfileJSON(t *testing.T, m campaign.Matrix) []byte {
	t.Helper()
	res, err := campaign.Run(context.Background(), m, campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 {
		t.Fatalf("reference run failed %d cells: %v", res.Failed, res.Errors)
	}
	return profileJSON(t, res.Profile)
}

// modeTransport execs this test binary as a worker in the given
// SHARD_TEST_MODE (see TestMain).
func modeTransport(mode string) *ExecTransport {
	return &ExecTransport{
		Argv:   []string{os.Args[0]},
		Env:    []string{"SHARD_TEST_MODE=" + mode},
		Stderr: os.Stderr,
	}
}

// captureTransport records every spawned spec and connection so tests
// can kill live workers and audit what a respawn was assigned.
type captureTransport struct {
	inner Transport
	mu    sync.Mutex
	specs []Spec
	conns []Conn
}

func (c *captureTransport) Start(spec Spec) (Conn, error) {
	conn, err := c.inner.Start(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.specs = append(c.specs, spec)
	c.conns = append(c.conns, conn)
	c.mu.Unlock()
	return conn, nil
}

// latestConn returns the most recently spawned connection for a shard.
func (c *captureTransport) latestConn(si int) Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.specs) - 1; i >= 0; i-- {
		if c.specs[i].Shard == si {
			return c.conns[i]
		}
	}
	return nil
}

// shardSpecs returns the spawn specs for one shard, in spawn order.
func (c *captureTransport) shardSpecs(si int) []Spec {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Spec
	for _, s := range c.specs {
		if s.Shard == si {
			out = append(out, s)
		}
	}
	return out
}

// flakyTransport serves the first badSpawns spawns from bad, the rest
// from good — the deterministic way to script "worker breaks once, the
// respawn succeeds".
type flakyTransport struct {
	bad, good Transport
	badSpawns int32
	n         atomic.Int32
}

func (f *flakyTransport) Start(spec Spec) (Conn, error) {
	if f.n.Add(1) <= f.badSpawns {
		return f.bad.Start(spec)
	}
	return f.good.Start(spec)
}

// TestShardDeterminism is the shards-1-vs-N proof: the global aggregate
// is byte-identical to the in-process reference for every shard count ×
// per-shard worker count combination.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				res, err := Run(context.Background(), m, Options{
					Campaign:  campaign.Options{Workers: workers},
					Shards:    shards,
					Transport: modeTransport("worker"),
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Failed > 0 || res.Completed != res.Cells {
					t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
				}
				if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
					t.Errorf("sharded aggregate differs from in-process reference")
				}
			})
		}
	}
}

// TestShardSIGKILLRecovery: a live worker is SIGKILLed mid-flight; the
// supervisor must classify the crash, respawn with backoff assigning
// only the non-journaled cells, and still produce the byte-identical
// aggregate — with the journal holding exactly one "done" per cell.
func TestShardSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	dir := t.TempDir()
	reg := obs.New()
	cap := &captureTransport{inner: modeTransport("worker")}

	var killOnce sync.Once
	opt := Options{
		Campaign: campaign.Options{
			Workers:    1,
			Obs:        reg,
			JournalDir: dir,
			OnReport: func(cell campaign.Cell, _ *profiling.RunReport) {
				// First ingested report from shard 0 (indices 0-3 of 8 at 2
				// shards): the worker is provably alive and mid-campaign —
				// kill it now, exactly the harness-SIGKILL the issue demands.
				if cell.Index < 4 {
					killOnce.Do(func() {
						if c := cap.latestConn(0); c != nil {
							c.Kill()
						}
					})
				}
			},
		},
		Shards:       2,
		Transport:    cap,
		Retries:      2,
		RetryBackoff: 20 * time.Millisecond,
		Logf:         t.Logf,
	}
	res, err := Run(context.Background(), m, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if res.Restarts < 1 {
		t.Fatalf("SIGKILLed shard produced %d restarts, want >=1", res.Restarts)
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("aggregate after SIGKILL+recovery differs from undisturbed reference")
	}

	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_shard_restarts"); v < 1 {
		t.Errorf("campaign_shard_restarts = %d, want >=1", v)
	}
	if v, _ := snap.Counter("campaign_shard_crashes"); v < 1 {
		t.Errorf("campaign_shard_crashes = %d, want >=1", v)
	}
	if v, ok := snap.Gauge("campaign_shard00_restarts"); !ok || v < 1 {
		t.Errorf("campaign_shard00_restarts gauge = %v (present %v), want >=1", v, ok)
	}
	if v, _ := snap.Counter("campaign_sessions_done"); v != 8 {
		t.Errorf("campaign_sessions_done = %d, want 8 (dups must not double-count)", v)
	}

	// The respawn must be assigned strictly fewer cells: only the ones
	// not yet journaled done at kill time.
	specs := cap.shardSpecs(0)
	if len(specs) < 2 {
		t.Fatalf("shard 0 spawned %d times, want >=2", len(specs))
	}
	first, err := ParseIndexSet(specs[0].Cells)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseIndexSet(specs[1].Cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) >= len(first) {
		t.Errorf("respawn re-assigned %d cells of original %d; journaled-done cells must be skipped", len(second), len(first))
	}
	firstSet := map[int]bool{}
	for _, idx := range first {
		firstSet[idx] = true
	}
	for _, idx := range second {
		if !firstSet[idx] {
			t.Errorf("respawn assigned cell %d outside shard 0's original range %v", idx, first)
		}
	}

	// Journal audit: exactly one "done" entry per cell, none duplicated
	// by the replayed shard.
	doneCount := journalDoneCounts(t, dir)
	for idx := 0; idx < 8; idx++ {
		if doneCount[idx] != 1 {
			t.Errorf("journal has %d done entries for cell %d, want exactly 1", doneCount[idx], idx)
		}
	}
}

// journalDoneCounts parses the manifest and counts "done" lines per
// cell index.
func journalDoneCounts(t *testing.T, dir string) map[int]int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, campaign.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts := map[int]int{}
	sc := bufio.NewScanner(f)
	first := true
	for sc.Scan() {
		if first {
			first = false // header
			continue
		}
		var e struct {
			Index  int    `json:"index"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		if e.Status == "done" {
			counts[e.Index]++
		}
	}
	return counts
}

// TestShardHangRecovery: a worker that says hello and then goes silent
// must be detected by heartbeat age within the deadline, killed, and
// replaced by a respawn that completes the shard.
func TestShardHangRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	m.Seeds = 1
	m.Faults = []string{"clean"} // 2 cells: quick, and hang detection dominates the clock
	ref := refProfileJSON(t, m)
	reg := obs.New()
	start := time.Now()
	res, err := Run(context.Background(), m, Options{
		Campaign:         campaign.Options{Workers: 1, Obs: reg},
		Shards:           1,
		Transport:        &flakyTransport{bad: modeTransport("hang"), good: modeTransport("worker"), badSpawns: 1},
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatTimeout: 500 * time.Millisecond,
		Retries:          2,
		RetryBackoff:     10 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if res.Restarts < 1 {
		t.Fatal("hung shard was not respawned")
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("aggregate after hang+recovery differs from reference")
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_shard_hangs"); v < 1 {
		t.Errorf("campaign_shard_hangs = %d, want >=1", v)
	}
	// Detection must happen within (roughly) the deadline, not at some
	// unbounded later point. Generous factor for loaded CI machines.
	if waited := time.Since(start); waited > 20*time.Second {
		t.Errorf("hang recovery took %v", waited)
	}
}

// TestShardTornWorkerRecovery: a worker that exits 0 after emitting a
// torn record delivered nothing; the clean exit must still be treated
// as an incomplete shard and respawned.
func TestShardTornWorkerRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	m.Seeds = 1
	m.Faults = []string{"clean"}
	ref := refProfileJSON(t, m)
	reg := obs.New()
	res, err := Run(context.Background(), m, Options{
		Campaign:     campaign.Options{Workers: 1, Obs: reg},
		Shards:       1,
		Transport:    &flakyTransport{bad: modeTransport("torn"), good: modeTransport("worker"), badSpawns: 1},
		Retries:      2,
		RetryBackoff: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if res.Restarts < 1 {
		t.Fatal("torn shard was not respawned")
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("aggregate after torn-worker recovery differs from reference")
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_shard_torn_records"); v < 1 {
		t.Errorf("campaign_shard_torn_records = %d, want >=1", v)
	}
}

// TestShardBudgetExhausted: a shard that crashes on every spawn fails
// its remaining cells as transient once the respawn budget is spent —
// the campaign survives and reports, it does not hang or lie.
func TestShardBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	m.Seeds = 1
	m.Faults = []string{"clean"}
	reg := obs.New()
	res, err := Run(context.Background(), m, Options{
		Campaign:     campaign.Options{Workers: 1, Obs: reg},
		Shards:       1,
		Transport:    modeTransport("crash"),
		Retries:      1,
		RetryBackoff: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Failed != res.Cells {
		t.Fatalf("completed %d, failed %d of %d; want 0 completed, all failed", res.Completed, res.Failed, res.Cells)
	}
	for _, ce := range res.Errors {
		if ce.Class != campaign.ClassTransient {
			t.Errorf("cell %s failed as %s, want transient (a healthier fleet could retry it)", ce.Cell.ID, ce.Class)
		}
		if !strings.Contains(ce.Err.Error(), "unrecoverable") {
			t.Errorf("cell %s error does not explain shard exhaustion: %v", ce.Cell.ID, ce.Err)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_shard_crashes"); v < 2 {
		t.Errorf("campaign_shard_crashes = %d, want >=2 (initial spawn + respawn)", v)
	}
}

// TestShardDrainAndResume: cancel drains workers gracefully mid-
// campaign, and a second sharded run resumes from the journal to the
// byte-identical aggregate — the cross-process analogue of PR4's
// interrupt/resume determinism proof.
func TestShardDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelOnce sync.Once
	res, err := Run(ctx, m, Options{
		Campaign: campaign.Options{
			Workers:    1,
			JournalDir: dir,
			OnReport: func(campaign.Cell, *profiling.RunReport) {
				// Cancel as soon as any cell lands: workers are mid-flight.
				cancelOnce.Do(cancel)
			},
		},
		Shards:       2,
		Transport:    modeTransport("worker"),
		DrainTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("canceled campaign not marked canceled")
	}
	if res.Completed == 0 {
		t.Fatal("no cells journaled before cancel; cannot exercise resume")
	}
	if res.Completed == res.Cells {
		t.Skip("campaign finished before drain; nothing left to resume")
	}

	res2, err := Run(context.Background(), m, Options{
		Campaign: campaign.Options{
			Workers:    1,
			JournalDir: dir,
			Resume:     true,
		},
		Shards:    2,
		Transport: modeTransport("worker"),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed == 0 {
		t.Error("resume loaded no journaled cells")
	}
	if res2.Failed > 0 || res2.Completed != res2.Cells {
		t.Fatalf("resume completed %d/%d, failed %d: %v", res2.Completed, res2.Cells, res2.Failed, res2.Errors)
	}
	if got := profileJSON(t, res2.Profile); !bytes.Equal(got, ref) {
		t.Errorf("drain+resume aggregate differs from uninterrupted reference")
	}
}

// TestShardSpanStitching: a sharded run with a tracer yields ONE
// coherent Chrome trace — the supervisor's campaign phases on pid 1 and
// every worker's spans on that shard's own pid row (si+2), with
// process_name metadata labeling each row. The telemetry plane must
// also leave the aggregate byte-identical, and the live Status
// scoreboard must account for every cell and shard.
func TestShardSpanStitching(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	tr := obs.NewTracer()
	ev := obs.NewEventLog(1024)
	status := campaign.NewStatus(ev)
	const shards = 2
	res, err := Run(context.Background(), m, Options{
		Campaign:  campaign.Options{Workers: 2, Tracer: tr, Status: status},
		Shards:    shards,
		Transport: modeTransport("worker"),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("traced sharded aggregate differs from reference (telemetry must not perturb)")
	}

	ct := tr.Trace()
	procNames := map[int]string{}
	spansByPid := map[int]int{}
	cellSpans := 0
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames[e.Pid] = e.Args["name"]
			}
		case "X":
			spansByPid[e.Pid]++
			if strings.HasPrefix(e.Name, "cell:") {
				cellSpans++
			}
		}
	}
	for pid := 1; pid <= shards+1; pid++ {
		if procNames[pid] == "" {
			t.Errorf("no process_name metadata for pid %d (have %v)", pid, procNames)
		}
		if spansByPid[pid] == 0 {
			t.Errorf("no spans on pid row %d: %v", pid, spansByPid)
		}
	}
	if cellSpans != res.Cells {
		t.Errorf("stitched trace has %d cell spans, want one per cell (%d)", cellSpans, res.Cells)
	}
	// Supervisor phases stay on pid 1.
	names := map[string]bool{}
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" && e.Pid == 1 {
			names[e.Name] = true
		}
	}
	for _, phase := range []string{"expand", "execute", "aggregate"} {
		if !names[phase] {
			t.Errorf("supervisor phase %q missing from pid 1", phase)
		}
	}

	// The scoreboard agrees with the result.
	snap := status.Snapshot()
	if snap.Done != res.Cells || snap.Running != 0 || snap.Pending != 0 {
		t.Errorf("status snapshot = %+v, want all %d cells done", snap, res.Cells)
	}
	if len(snap.Shards) != shards {
		t.Fatalf("status tracks %d shards, want %d", len(snap.Shards), shards)
	}
	for _, sh := range snap.Shards {
		if sh.Alive {
			t.Errorf("shard %d still alive after campaign end", sh.Shard)
		}
		if sh.PID == 0 {
			t.Errorf("shard %d has no recorded pid", sh.Shard)
		}
	}
	// And the flight recorder saw the lifecycle.
	kinds := map[string]int{}
	for _, e := range ev.Snapshot().Events {
		kinds[e.Kind]++
	}
	if kinds["shard_spawn"] != shards {
		t.Errorf("flight recorder has %d shard_spawn events, want %d", kinds["shard_spawn"], shards)
	}
	if kinds["cell_done"] != res.Cells {
		t.Errorf("flight recorder has %d cell_done events, want %d", kinds["cell_done"], res.Cells)
	}
	if kinds["shard_down"] != shards {
		t.Errorf("flight recorder has %d shard_down events, want %d", kinds["shard_down"], shards)
	}
}

// TestWorkerHashMismatch: a worker whose local expansion disagrees with
// the supervisor's hash must refuse to run rather than emit mis-seeded
// records.
func TestWorkerHashMismatch(t *testing.T) {
	m := testMatrix()
	spec, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := WorkerMain([]string{"-cells", "0", "-hash", "not-the-real-hash"},
		bytes.NewReader(spec), &out, &errb)
	if code != 2 {
		t.Fatalf("hash-mismatched worker exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "hash mismatch") {
		t.Errorf("stderr does not explain the refusal: %q", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("refusing worker still wrote %d bytes of records", out.Len())
	}
}

// TestWorkerMainInProcess drives WorkerMain directly over in-memory
// pipes: records come back verified, attributed, and seeded exactly as
// the expansion dictates.
func TestWorkerMainInProcess(t *testing.T) {
	m := testMatrix()
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := WorkerMain([]string{"-cells", "2-3", "-workers", "2", "-hb", "50ms"},
		bytes.NewReader(spec), &out, &errb)
	if code != 0 {
		t.Fatalf("worker exited %d: %s", code, errb.String())
	}
	sc := profiling.NewRecordScanner(&out)
	pending := -1
	var hello, bye bool
	got := map[int]*profiling.RunReport{}
	sc.Control = func(line string) {
		c, ok := parseControl(line)
		if !ok {
			return
		}
		switch c.kind {
		case "hello":
			hello = true
		case "bye":
			bye = true
		case "cell":
			pending = c.idx
		}
	}
	for {
		body, _, err := sc.Next()
		if err != nil {
			break
		}
		r, err := profiling.ReadRunReport(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got[pending] = r
		pending = -1
	}
	if sc.Skipped() != 0 {
		t.Errorf("worker stream counted %d skips", sc.Skipped())
	}
	if !hello || !bye {
		t.Errorf("protocol frame incomplete: hello=%v bye=%v", hello, bye)
	}
	if len(got) != 2 {
		t.Fatalf("worker returned %d records, want 2", len(got))
	}
	for _, idx := range []int{2, 3} {
		r := got[idx]
		if r == nil {
			t.Fatalf("no record for cell %d", idx)
		}
		if r.Seed != cells[idx].Run.Seed {
			t.Errorf("cell %d record seed %d, want expansion seed %d", idx, r.Seed, cells[idx].Run.Seed)
		}
	}
}
