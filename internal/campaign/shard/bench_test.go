package shard

import (
	"context"
	"testing"

	"repro/internal/campaign"
)

// benchShardMatrix mirrors the campaign package's bench matrix: 8
// independent cells of 50k cycles, enough parallel slack for 2 shards
// of 2 workers each.
func benchShardMatrix() campaign.Matrix {
	return campaign.Matrix{
		Name:        "bench-shard",
		Seed:        11,
		Seeds:       2,
		SoCs:        []string{"TC1797"},
		Mixes:       []string{"lean", "engine"},
		Faults:      []string{"clean", "everything"},
		Resolutions: []uint64{1000},
		Cycles:      50_000,
	}
}

// BenchmarkCampaignTCP measures the TCP transport's overhead against
// the exec transport on an identical sharded campaign (the BENCH_pr9
// comparison). Both transports run real worker processes doing real
// simulation; the TCP run adds the handshake, the frame codec, and a
// loopback socket per shard, and must stay within the ≤5% envelope —
// the transport exists to cross hosts, not to tax the campaign.
func BenchmarkCampaignTCP(b *testing.B) {
	m := benchShardMatrix()
	bench := func(b *testing.B, transport Transport) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), m, Options{
				Campaign:  campaign.Options{Workers: 2},
				Shards:    2,
				Transport: transport,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Failed > 0 || res.Completed != res.Cells {
				b.Fatalf("completed %d/%d, failed %d", res.Completed, res.Cells, res.Failed)
			}
			b.ReportMetric(float64(res.SimCycles)/res.Wall.Seconds(), "simcycles/s")
		}
	}
	b.Run("transport=exec", func(b *testing.B) {
		bench(b, modeTransport("worker"))
	})
	b.Run("transport=tcp", func(b *testing.B) {
		// One long-lived agent, like a real deployment; dial + handshake
		// per shard spawn is part of the measured cost.
		addr := startTestAgent(b, &Agent{Key: testKey})
		bench(b, &TCPTransport{Agents: []string{addr}, Key: testKey})
	})
}
