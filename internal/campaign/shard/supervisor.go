// Supervisor: the campaign-tier fault boundary, one level above the
// per-cell supervisor. Workers are processes, and processes fail in
// ways goroutines cannot: SIGKILL, OOM, a wedged runtime, a pipe torn
// mid-record. The supervisor therefore trusts only two things — the
// journal it owns, and records that survive CRC-32 verification — and
// treats everything else as evidence to classify:
//
//   - silence past the heartbeat deadline → hang: kill, respawn
//   - nonzero exit / spawn failure → crash: respawn
//   - clean exit with cells missing → torn shard: respawn
//   - a worker-reported "fail" line → terminal per-cell failure,
//     recorded with the worker's own class/attempts (the worker already
//     ran the per-cell retry policy; re-running the shard would not
//     change the verdict)
//
// Respawns re-assign only the cells not yet journaled done, with
// seed-derived jittered exponential backoff (the shard analogue of the
// per-cell policy), and a respawn budget; cells still missing when the
// budget runs out fail as ClassTransient. Cancel drains gracefully:
// SIGTERM, a bounded wait, then SIGKILL.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sim"
)

// shardBackoffLabel seeds the respawn-jitter RNG fork off the campaign
// seed (cf. the per-cell supervisor's 0xbacc0ff), one sub-fork per
// shard so concurrent respawns decorrelate.
const shardBackoffLabel = 0x5a4db0ff

// Options tunes the sharded supervisor. Campaign carries the options
// forwarded to each worker's in-process pool (Workers, CellTimeout,
// Retries) and the campaign-tier journal (JournalDir, Resume), which
// the supervisor owns — workers never journal.
type Options struct {
	Campaign campaign.Options
	// Shards is the number of worker processes; <=0 means 1.
	Shards int
	// Transport starts shard workers; required.
	Transport Transport
	// HeartbeatEvery is the heartbeat period workers are told to honor;
	// 0 means DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// HeartbeatTimeout is the hang deadline: a shard silent this long is
	// killed and classified as hung. 0 means DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// Retries is the respawn budget per shard (a shard spawns at most
	// Retries+1 times); <0 means DefaultShardRetries.
	Retries int
	// RetryBackoff is the base respawn delay, doubled per attempt and
	// jittered from the campaign seed; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// DrainTimeout bounds graceful drain on cancel (SIGTERM → wait →
	// SIGKILL); 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Logf receives supervision events (spawn, hang, crash, respawn) for
	// operator visibility; nil discards them.
	Logf func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// supState is the shared ledger every shard runner writes through: which
// cells are done or terminally failed, the aggregate, and the journal.
// One mutex serializes it all — ingest is I/O-bound, not lock-bound.
type supState struct {
	mu     sync.Mutex
	cells  []campaign.Cell
	done   map[int]bool
	failed map[int]campaign.CellError
	acc    *profiling.Accumulator
	jr     *campaign.Journal
	warns  []string
	cycles uint64

	// torn/dup accumulate across all runners for Result — the record
	// anomalies an operator wants in the post-mortem summary without
	// scraping the obs endpoint.
	torn, dup atomic.Int64

	opt     *Options
	doneCtr *obs.Counter
	failCtr *obs.Counter
}

// shardTracePid maps a shard ordinal to its pid row in the stitched
// Chrome trace; pid 1 is the supervisor itself.
func shardTracePid(si int) int { return si + 2 }

// Run expands the matrix, splits it across opt.Shards worker processes,
// and supervises them to completion. It is the sharded analogue of
// campaign.Run and keeps its contract: the returned Profile is
// byte-identical to a single-process run of the same matrix, for any
// shard/worker count and across any schedule of worker crashes and
// recoveries, because every cell lands in the aggregate exactly once
// with its expansion-time seed.
func Run(ctx context.Context, m campaign.Matrix, opt Options) (*campaign.Result, error) {
	if opt.Transport == nil {
		return nil, fmt.Errorf("shard: no transport configured")
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 1
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = DefaultHeartbeatTimeout
	}
	if opt.Retries < 0 {
		opt.Retries = DefaultShardRetries
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = DefaultRetryBackoff
	}
	if opt.DrainTimeout <= 0 {
		opt.DrainTimeout = DefaultDrainTimeout
	}

	reg := opt.Campaign.Obs
	tr := opt.Campaign.Tracer
	expSpan := tr.Start("expand", "campaign")
	cells, err := m.Expand()
	expSpan.End()
	if err != nil {
		return nil, err
	}
	matrixJSON, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	hash := campaign.MatrixHash(cells)
	res := &campaign.Result{Cells: len(cells)}
	reg.Counter("campaign_cells_total").Add(uint64(len(cells)))
	opt.Campaign.Status.Begin(m.Name, cells)

	st := &supState{
		cells:   cells,
		done:    map[int]bool{},
		failed:  map[int]campaign.CellError{},
		acc:     profiling.NewAccumulator(),
		opt:     &opt,
		doneCtr: reg.Counter("campaign_sessions_done"),
		failCtr: reg.Counter("campaign_sessions_failed"),
	}

	// Journal: owned here, at the campaign tier. Workers stream; the
	// supervisor persists — so "journaled done" is exactly "ingested and
	// verified", and a respawned shard re-runs precisely the complement.
	if opt.Campaign.JournalDir != "" {
		jSpan := tr.Start("journal", "campaign")
		if opt.Campaign.Resume {
			var resumed map[int]*profiling.RunReport
			st.jr, resumed, st.warns, err = campaign.ResumeJournal(opt.Campaign.JournalDir, cells)
			if err == nil {
				skips := reg.Counter("campaign_resume_skips")
				for idx, rep := range resumed {
					st.acc.Add(cells[idx].ID, rep)
					st.done[idx] = true
					st.cycles += rep.Cycles
					skips.Inc()
					res.Resumed++
					opt.Campaign.Status.CellResumedFromJournal(idx, rep.Cycles)
				}
			}
		} else {
			st.jr, err = campaign.OpenJournal(opt.Campaign.JournalDir, m, cells)
		}
		jSpan.End()
		if err != nil {
			return nil, err
		}
		defer st.jr.Close()
	}

	workers := opt.Campaign.Workers
	if workers <= 0 {
		workers = 1
	}
	res.Workers = workers

	assign := Split(len(cells), shards)
	// Trace stitching: the supervisor is pid 1; each shard ordinal gets
	// its own pid row (si+2), stable across respawns, so the merged
	// Chrome trace shows one timeline of supervisor + every worker.
	if tr != nil {
		tr.SetProcessName(1, "tcfleet supervisor")
		for si := range assign {
			tr.SetProcessName(shardTracePid(si), fmt.Sprintf("shard %d", si))
		}
	}
	execSpan := tr.Start("execute", "campaign")
	start := time.Now()
	var wg sync.WaitGroup
	var restarts atomic.Int64
	for si := range assign {
		wg.Add(1)
		go func(si int, indices []int) {
			defer wg.Done()
			r := &shardRunner{
				st: st, opt: &opt, si: si,
				spec: Spec{
					Shard: si, Shards: len(assign), Matrix: matrixJSON,
					Workers: workers, Hash: hash, HB: opt.HeartbeatEvery,
					Spans:       tr != nil,
					CellTimeout: opt.Campaign.CellTimeout, Retries: opt.Campaign.Retries,
				},
				indices:   indices,
				restarts:  &restarts,
				alive:     reg.Gauge(fmt.Sprintf("campaign_shard%02d_alive", si)),
				respawns:  reg.Gauge(fmt.Sprintf("campaign_shard%02d_restarts", si)),
				cellsDone: reg.Gauge(fmt.Sprintf("campaign_shard%02d_cells_done", si)),
				hbAge:     reg.Gauge(fmt.Sprintf("campaign_shard%02d_hb_age_sec", si)),
				restCtr:   reg.Counter("campaign_shard_restarts"),
				hangCtr:   reg.Counter("campaign_shard_hangs"),
				crashCtr:  reg.Counter("campaign_shard_crashes"),
				tornCtr:   reg.Counter("campaign_shard_torn_records"),
				dupCtr:    reg.Counter("campaign_shard_dup_cells"),
				orphanCtr: reg.Counter("campaign_shard_orphan_cells"),
			}
			r.run(ctx)
		}(si, assign[si])
	}
	wg.Wait()
	res.Wall = time.Since(start)
	execSpan.End()

	st.mu.Lock()
	res.Canceled = ctx.Err() != nil
	res.Completed = st.acc.Len()
	res.Restarts = int(restarts.Load())
	res.Torn = int(st.torn.Load())
	res.Dup = int(st.dup.Load())
	res.SimCycles = st.cycles
	res.Warnings = st.warns
	errs := make([]campaign.CellError, 0, len(st.failed))
	for _, ce := range st.failed {
		errs = append(errs, ce)
	}
	st.mu.Unlock()
	sort.Slice(errs, func(i, j int) bool { return errs[i].Cell.Index < errs[j].Cell.Index })
	res.Failed = len(errs)
	res.Errors = errs

	if res.Completed > 0 {
		aggSpan := tr.Start("aggregate", "campaign")
		fp, err := st.acc.Finalize()
		aggSpan.End()
		if err != nil {
			return nil, err
		}
		res.Profile = fp
	}
	return res, nil
}

// remaining returns the shard's assigned indices that are neither done
// nor terminally failed.
func (s *supState) remaining(indices []int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for _, idx := range indices {
		if !s.done[idx] {
			if _, bad := s.failed[idx]; !bad {
				out = append(out, idx)
			}
		}
	}
	return out
}

// ingest records one verified cell report: journal first (a report we
// cannot persist is not done — the next spawn re-runs it), then the
// aggregate. Duplicates — a record replayed across a respawn boundary,
// or a doubled pipe write — are dropped idempotently.
func (s *supState) ingest(idx int, rep *profiling.RunReport) (dup bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done[idx] {
		return true, nil
	}
	if s.jr != nil {
		if jerr := s.jr.RecordDone(s.cells[idx], 1, rep); jerr != nil {
			s.warns = append(s.warns, fmt.Sprintf("cell %s: report not journaled: %v", s.cells[idx].ID, jerr))
			return false, jerr
		}
	}
	s.done[idx] = true
	s.cycles += rep.Cycles
	s.acc.Add(s.cells[idx].ID, rep)
	s.doneCtr.Inc()
	s.opt.Campaign.Status.CellCompleted(idx, rep.Cycles)
	if s.opt.Campaign.OnReport != nil {
		s.opt.Campaign.OnReport(s.cells[idx], rep)
	}
	return false, nil
}

// markFailed records a terminal per-cell failure (worker-reported, or
// budget exhaustion). The first verdict for a cell wins.
func (s *supState) markFailed(ce campaign.CellError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := ce.Cell.Index
	if s.done[idx] {
		return
	}
	if _, ok := s.failed[idx]; ok {
		return
	}
	s.failed[idx] = ce
	s.failCtr.Inc()
	s.opt.Campaign.Status.CellFailedTerminally(idx, ce.Class, ce.Err)
	if s.jr != nil {
		if jerr := s.jr.RecordFailed(ce); jerr != nil {
			s.warns = append(s.warns, fmt.Sprintf("cell %s: failure not journaled: %v", ce.Cell.ID, jerr))
		}
	}
}

// shardRunner supervises one shard ordinal across its spawns.
type shardRunner struct {
	st       *supState
	opt      *Options
	si       int
	spec     Spec
	indices  []int
	restarts *atomic.Int64

	alive, respawns, cellsDone, hbAge *obs.Gauge
	restCtr, hangCtr, crashCtr        *obs.Counter
	tornCtr, dupCtr, orphanCtr        *obs.Counter
	ingested                          int64
}

// run is the respawn loop: compute the cells still missing, spawn a
// worker for exactly those, ingest until the stream ends, classify, and
// either finish, back off and respawn, or fail the remainder when the
// budget is spent.
func (r *shardRunner) run(ctx context.Context) {
	jitter := sim.NewRNG(r.st.cells[0].Run.Seed ^ shardBackoffLabel).Fork(uint64(r.si) + 1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		remaining := r.st.remaining(r.indices)
		if len(remaining) == 0 {
			return
		}
		if ctx.Err() != nil {
			return
		}
		if attempt > r.opt.Retries {
			r.opt.logf("shard %d: respawn budget exhausted (%d spawns); failing %d remaining cells",
				r.si, attempt, len(remaining))
			for _, idx := range remaining {
				r.st.markFailed(campaign.CellError{
					Cell:     r.st.cells[idx],
					Err:      campaign.Transient(fmt.Errorf("shard %d unrecoverable after %d spawns: %v", r.si, attempt, lastErr)),
					Class:    campaign.ClassTransient,
					Attempts: attempt,
				})
			}
			return
		}
		if attempt > 0 {
			r.restarts.Add(1)
			r.restCtr.Inc()
			r.respawns.Set(float64(attempt))
			// Seed-derived jittered exponential backoff, the shard
			// analogue of the per-cell retry schedule: reproducible, and
			// decorrelated across shards.
			d := r.opt.RetryBackoff << (attempt - 1)
			d = d/2 + time.Duration(jitter.Float64()*float64(d))
			r.opt.logf("shard %d: respawn %d/%d after %v for %d cells (%v)",
				r.si, attempt, r.opt.Retries, d.Round(time.Millisecond), len(remaining), lastErr)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		lastErr = r.runOnce(ctx, attempt, remaining)
		if ctx.Err() != nil {
			return
		}
		if lastErr == nil {
			// Exit 0 but cells missing: the worker (or the pipe) silently
			// dropped records. Named so the exhaustion message explains it.
			lastErr = fmt.Errorf("worker exited cleanly with cells missing (torn or dropped records)")
		}
	}
}

// runOnce spawns one worker for the remaining cells and ingests its
// stream to the end. It returns nil when the worker exited cleanly; the
// caller decides completion purely from the done/failed ledger, so a
// clean exit that silently dropped cells is still respawned.
func (r *shardRunner) runOnce(ctx context.Context, attempt int, remaining []int) error {
	spec := r.spec
	spec.Cells = FormatIndexSet(remaining)
	conn, err := r.opt.Transport.Start(spec)
	if err != nil {
		r.crashCtr.Inc()
		return fmt.Errorf("spawn: %w", err)
	}
	r.opt.logf("shard %d: worker pid %d started for cells %s", r.si, conn.Pid(), spec.Cells)
	r.alive.Set(1)
	defer r.alive.Set(0)
	status := r.opt.Campaign.Status
	status.ShardSpawned(r.si, conn.Pid(), attempt, len(remaining))
	status.CellsAssigned(r.si, remaining)

	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	var hung atomic.Bool
	connDone := make(chan struct{})
	monDone := make(chan struct{})
	go r.monitor(ctx, conn, &lastBeat, &hung, connDone, monDone)

	// Ingest: the worker's stdout through the checked record scanner.
	// Control lines carry protocol (heartbeats, cell headers, failure
	// verdicts); records carry reports. Anything that fails CRC is
	// already counted by the scanner — the shard just loses that cell
	// until the next spawn.
	assigned := map[int]bool{}
	for _, idx := range remaining {
		assigned[idx] = true
	}
	pending := -1
	sc := profiling.NewRecordScanner(conn.Output())
	sc.Control = func(line string) {
		lastBeat.Store(time.Now().UnixNano())
		status.ShardBeat(r.si)
		r.handleControl(line, assigned, &pending)
	}
	for {
		body, _, err := sc.Next()
		if err != nil {
			break // EOF or a dead pipe; Wait classifies which
		}
		lastBeat.Store(time.Now().UnixNano())
		status.ShardBeat(r.si)
		r.ingestRecord(body, assigned, &pending)
	}
	if n := sc.Skipped(); n > 0 {
		r.tornCtr.Add(uint64(n))
		r.st.torn.Add(int64(n))
		status.ShardAnomaly(r.si, "torn_records", fmt.Sprintf("%d torn/corrupt records dropped", n))
		r.opt.logf("shard %d: %d torn/corrupt records dropped", r.si, n)
	}
	waitErr := conn.Wait()
	close(connDone)
	<-monDone

	switch {
	case ctx.Err() != nil:
		status.ShardDown(r.si, "drained")
		return ctx.Err()
	case hung.Load():
		status.ShardDown(r.si, "hang")
		return fmt.Errorf("hang: no output for %v, killed", r.opt.HeartbeatTimeout)
	case waitErr != nil:
		r.crashCtr.Inc()
		status.ShardDown(r.si, "crash")
		return fmt.Errorf("crash: %w", waitErr)
	default:
		status.ShardDown(r.si, "clean exit")
		return nil
	}
}

// monitor watches one spawned worker from the side: heartbeat-age hang
// detection while the stream is live, and graceful drain (SIGTERM,
// bounded wait, SIGKILL) when the campaign is canceled.
func (r *shardRunner) monitor(ctx context.Context, conn Conn, lastBeat *atomic.Int64, hung *atomic.Bool, connDone, monDone chan struct{}) {
	defer close(monDone)
	period := r.opt.HeartbeatTimeout / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-connDone:
			return
		case <-ctx.Done():
			r.opt.logf("shard %d: draining (SIGTERM, %v grace)", r.si, r.opt.DrainTimeout)
			conn.Terminate()
			select {
			case <-connDone:
			case <-time.After(r.opt.DrainTimeout):
				r.opt.logf("shard %d: drain deadline passed, SIGKILL", r.si)
				conn.Kill()
				<-connDone
			}
			return
		case <-tick.C:
			age := time.Since(time.Unix(0, lastBeat.Load()))
			r.hbAge.Set(age.Seconds())
			if age > r.opt.HeartbeatTimeout {
				hung.Store(true)
				r.hangCtr.Inc()
				r.opt.logf("shard %d: heartbeat age %v exceeds %v — killing wedged worker",
					r.si, age.Round(time.Millisecond), r.opt.HeartbeatTimeout)
				conn.Kill()
				return
			}
		}
	}
}

// handleControl interprets one "//shard ..." protocol line.
func (r *shardRunner) handleControl(line string, assigned map[int]bool, pending *int) {
	c, ok := parseControl(line)
	if !ok {
		return
	}
	switch c.kind {
	case "hello":
		if c.hash != "" && c.hash != r.spec.Hash {
			// The worker expanded a different matrix; its records would be
			// mis-seeded. WorkerMain refuses this on its side too — this
			// is defense in depth against a stale binary.
			r.opt.logf("shard %d: worker hash %.12s != campaign %.12s; ignoring its records", r.si, c.hash, r.spec.Hash)
			*pending = -2 // poison: every record orphans
		}
	case "cell":
		if *pending != -2 {
			*pending = c.idx
		}
	case "fail":
		if !assigned[c.idx] {
			r.orphanCtr.Inc()
			return
		}
		r.st.markFailed(campaign.CellError{
			Cell:     r.st.cells[c.idx],
			Err:      fmt.Errorf("shard %d worker: %s", r.si, c.msg),
			Class:    campaign.Class(c.class),
			Attempts: c.attempts,
		})
	case "span":
		if *pending == -2 {
			return // hash-poisoned worker: its spans describe a different campaign
		}
		var sp obs.SpanExport
		if json.Unmarshal([]byte(c.msg), &sp) == nil {
			r.opt.Campaign.Tracer.IngestSpan(shardTracePid(r.si), sp)
		}
	case "hb", "bye":
		// Liveness only; lastBeat was already refreshed by the caller.
	}
}

// ingestRecord attributes one CRC-verified record to its announced cell
// and folds it into the campaign ledger. Misattribution cannot slip
// through: the cell's expansion-time seed must match the report's.
func (r *shardRunner) ingestRecord(body []byte, assigned map[int]bool, pending *int) {
	idx := *pending
	*pending = -1
	if idx < 0 {
		r.orphanCtr.Inc()
		return
	}
	rep, err := profiling.ReadRunReport(bytes.NewReader(body))
	if err != nil {
		r.tornCtr.Inc()
		r.st.torn.Add(1)
		return
	}
	if !assigned[idx] || rep.Seed != r.st.cells[idx].Run.Seed {
		r.orphanCtr.Inc()
		r.opt.logf("shard %d: dropping record for cell %d (unassigned or seed mismatch)", r.si, idx)
		return
	}
	dup, err := r.st.ingest(idx, rep)
	if dup {
		r.dupCtr.Inc()
		r.st.dup.Add(1)
		r.opt.Campaign.Status.ShardAnomaly(r.si, "dup_record", fmt.Sprintf("cell %d replayed across a respawn boundary", idx))
		return
	}
	if err != nil {
		return // journaling failed; the cell stays remaining
	}
	r.ingested++
	r.cellsDone.Set(float64(r.ingested))
}

// ctlMsg is one parsed "//shard ..." control line.
type ctlMsg struct {
	kind     string
	idx      int
	class    string
	attempts int
	msg      string
	hash     string
}

// parseControl parses the worker protocol lines. Unknown or malformed
// lines are not errors — the stream crossed a process boundary and may
// contain anything; they are simply ignored (and, being control lines,
// never reach a record body).
func parseControl(line string) (ctlMsg, bool) {
	const pfx = "//shard "
	if !strings.HasPrefix(line, pfx) {
		return ctlMsg{}, false
	}
	f := strings.Fields(line[len(pfx):])
	if len(f) == 0 {
		return ctlMsg{}, false
	}
	c := ctlMsg{kind: f[0]}
	switch c.kind {
	case "hello", "hb", "bye":
		for _, kv := range f[1:] {
			if v, ok := strings.CutPrefix(kv, "hash="); ok {
				c.hash = v
			}
		}
		return c, true
	case "cell":
		if len(f) < 2 {
			return ctlMsg{}, false
		}
		idx, err := strconv.Atoi(f[1])
		if err != nil || idx < 0 {
			return ctlMsg{}, false
		}
		c.idx = idx
		return c, true
	case "span":
		// span <compact JSON object> — the payload is the rest of the
		// line verbatim (json.Marshal never emits spaces that matter, but
		// splitting on fields would still mangle string values).
		payload := strings.TrimSpace(strings.TrimPrefix(line[len(pfx):], "span"))
		if payload == "" {
			return ctlMsg{}, false
		}
		c.msg = payload
		return c, true
	case "fail":
		// fail <idx> <class> <attempts> <quoted message>
		if len(f) < 5 {
			return ctlMsg{}, false
		}
		idx, err1 := strconv.Atoi(f[1])
		att, err2 := strconv.Atoi(f[3])
		q := strings.Index(line, `"`)
		if err1 != nil || err2 != nil || idx < 0 || q < 0 {
			return ctlMsg{}, false
		}
		msg, err := strconv.Unquote(line[q:])
		if err != nil {
			return ctlMsg{}, false
		}
		c.idx, c.class, c.attempts, c.msg = idx, f[2], att, msg
		return c, true
	}
	return ctlMsg{}, false
}
