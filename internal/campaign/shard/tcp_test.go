package shard

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/profiling"
)

// testKey is a deliberately distinctive key: leak scans search every
// observable surface for these bytes (and their hex), so they must
// never occur by coincidence.
var testKey = []byte("tcp-test-shared-key-c0ffee-314159265358979")

// syncBuffer is a race-safe log sink tests can scan afterwards.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(&s.b, format+"\n", args...)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startTestAgent runs an Agent on an ephemeral loopback port for the
// test's lifetime and returns its address. Cleanup is a graceful
// shutdown: cancel, then wait for in-flight assignments to drain.
func startTestAgent(t testing.TB, a *Agent) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- a.ListenAndServe(ctx, "127.0.0.1:0", func(ad net.Addr) { addrCh <- ad })
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("agent failed to start: %v", err)
	}
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("agent serve: %v", err)
		}
	})
	return addr.String()
}

// TestLoadKey: the key file contract — whitespace-trimmed raw bytes,
// with a hard floor under which authentication is theater.
func TestLoadKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "key")
	if err := os.WriteFile(path, []byte("  "+string(testKey)+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := LoadKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, testKey) {
		t.Errorf("LoadKey did not trim to the raw key bytes")
	}
	if err := os.WriteFile(path, []byte("short"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKey(path); err == nil || !strings.Contains(err.Error(), "at least") {
		t.Errorf("LoadKey accepted a %d-byte key: %v", len("short"), err)
	}
	if _, err := LoadKey(""); err == nil {
		t.Error("LoadKey accepted an empty path")
	}
	if _, err := LoadKey(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadKey accepted a missing file")
	}
}

// TestHandshake: the mutual challenge-response at the unit level —
// matched keys pass in both directions, a mismatch on either side
// fails both ends with nothing but errAuth, and the transcript on the
// wire never contains the key.
func TestHandshake(t *testing.T) {
	run := func(supKey, agentKey []byte) (supErr, agentErr error, wire []byte) {
		sc, ac := net.Pipe()
		defer sc.Close()
		defer ac.Close()
		// tap records everything the supervisor side sends/receives.
		var mu sync.Mutex
		var transcript bytes.Buffer
		tap := &tapConn{Conn: sc, mu: &mu, b: &transcript}
		errCh := make(chan error, 1)
		go func() {
			err := handshakeAgent(ac, agentKey)
			// Mirror the real agent: the connection closes the moment its
			// side of the handshake ends (net.Pipe writes are synchronous,
			// so a successful final frame is already delivered). Without
			// this, a rejecting agent would leave the supervisor blocked
			// waiting for ftAuthOK forever.
			ac.Close()
			errCh <- err
		}()
		supErr = handshakeSupervisor(tap, supKey)
		agentErr = <-errCh
		mu.Lock()
		wire = append([]byte(nil), transcript.Bytes()...)
		mu.Unlock()
		return
	}

	supErr, agentErr, wire := run(testKey, testKey)
	if supErr != nil || agentErr != nil {
		t.Fatalf("matched keys failed: sup=%v agent=%v", supErr, agentErr)
	}
	if bytes.Contains(wire, testKey) {
		t.Fatal("key bytes crossed the wire")
	}

	wrong := []byte("a-differently-wrong-key-0xDEADBEEF-271828")
	supErr, agentErr, wire = run(wrong, testKey)
	if supErr == nil || agentErr == nil {
		t.Fatalf("mismatched keys accepted: sup=%v agent=%v", supErr, agentErr)
	}
	if agentErr != errAuth {
		t.Errorf("agent rejection = %v, want bare errAuth (nothing to probe)", agentErr)
	}
	if bytes.Contains(wire, wrong) || bytes.Contains(wire, testKey) {
		t.Fatal("key bytes crossed the wire during a failed handshake")
	}
}

// tapConn copies everything written through it (both directions pass
// through the supervisor side in net.Pipe tests).
type tapConn struct {
	net.Conn
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (c *tapConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.b.Write(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *tapConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		c.b.Write(p[:n])
		c.mu.Unlock()
	}
	return n, err
}

// TestTCPDeterminism is the remote analogue of TestShardDeterminism:
// the same campaign over loopback agents must aggregate byte-identical
// to the in-process reference AND to the exec-transport run — the
// transport is invisible in the result.
func TestTCPDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)

	execRes, err := Run(context.Background(), m, Options{
		Campaign:  campaign.Options{Workers: 2},
		Shards:    2,
		Transport: modeTransport("worker"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := profileJSON(t, execRes.Profile); !bytes.Equal(got, ref) {
		t.Fatal("exec-transport aggregate differs from in-process reference")
	}

	for _, agents := range []int{1, 2} {
		t.Run(fmt.Sprintf("agents=%d", agents), func(t *testing.T) {
			var pool []string
			for i := 0; i < agents; i++ {
				pool = append(pool, startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf}))
			}
			res, err := Run(context.Background(), m, Options{
				Campaign: campaign.Options{Workers: 2},
				Shards:   2,
				Transport: &TCPTransport{
					Agents: pool,
					Key:    testKey,
					Logf:   t.Logf,
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed > 0 || res.Completed != res.Cells {
				t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
			}
			if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
				t.Errorf("TCP aggregate differs from in-process/exec reference")
			}
		})
	}
}

// TestTCPConnObs: the per-shard connection observability contract —
// dials and stream bytes are counted for every shard that ran.
func TestTCPConnObs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns")
	}
	m := testMatrix()
	reg := obs.New()
	addr := startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf})
	res, err := Run(context.Background(), m, Options{
		Campaign: campaign.Options{Workers: 2, Obs: reg},
		Shards:   2,
		Transport: &TCPTransport{
			Agents: []string{addr},
			Key:    testKey,
			Obs:    reg,
			Logf:   t.Logf,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 {
		t.Fatalf("failed %d: %v", res.Failed, res.Errors)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_tcp_dials"); v < 2 {
		t.Errorf("campaign_tcp_dials = %d, want >=2 (one per shard)", v)
	}
	for si := 0; si < 2; si++ {
		if v, _ := snap.Counter(fmt.Sprintf("campaign_shard%02d_dials", si)); v < 1 {
			t.Errorf("shard %d dial counter = %d, want >=1", si, v)
		}
		if v, _ := snap.Counter(fmt.Sprintf("campaign_shard%02d_net_bytes", si)); v == 0 {
			t.Errorf("shard %d streamed 0 accounted bytes", si)
		}
	}
	if v, _ := snap.Counter("campaign_tcp_bytes"); v == 0 {
		t.Error("campaign_tcp_bytes = 0")
	}
}

// TestTCPChaosDeterminism is the tentpole proof: a journaled sharded
// campaign over TCP under seeded network chaos — latency spikes,
// mid-record connection cuts, heartbeat-starving stalls, duplicate
// partial replays — still aggregates byte-identical to the untouched
// in-process reference, with the journal holding exactly one "done"
// per cell.
func TestTCPChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns under injected chaos")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	dir := t.TempDir()
	reg := obs.New()
	addr := startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf})

	chaos := &ChaosTransport{
		Inner: &TCPTransport{
			Agents:           []string{addr},
			Key:              testKey,
			HeartbeatTimeout: 800 * time.Millisecond,
			Logf:             t.Logf,
		},
		Seed: 7,
		Plan: ChaosPlan{
			// High per-spawn probabilities so the run provably suffers:
			// MaxFaults (not luck) is what lets it converge, and the
			// respawn budget below exceeds the worst-case fault split.
			CutProb:     0.9,
			StallProb:   0.4,
			StallFor:    1500 * time.Millisecond,
			LatencyProb: 0.05,
			Latency:     10 * time.Millisecond,
			ReplayProb:  0.05,
			MaxFaults:   5,
		},
		Logf: t.Logf,
	}
	res, err := Run(context.Background(), m, Options{
		Campaign:         campaign.Options{Workers: 1, Obs: reg, JournalDir: dir},
		Shards:           2,
		Transport:        chaos,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatTimeout: 800 * time.Millisecond,
		Retries:          8,
		RetryBackoff:     20 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("chaos-run aggregate differs from undisturbed reference")
	}
	if chaos.Faults() == 0 {
		t.Error("chaos plan injected no faults; the proof proved nothing (retune probabilities)")
	}
	t.Logf("chaos: %d faults injected, %d respawns, %d torn, %d dup records",
		chaos.Faults(), res.Restarts, res.Torn, res.Dup)

	// Journal audit: every cell landed exactly once, no matter how many
	// times its bytes crossed the wire.
	doneCount := journalDoneCounts(t, dir)
	for idx := 0; idx < res.Cells; idx++ {
		if doneCount[idx] != 1 {
			t.Errorf("journal has %d done entries for cell %d, want exactly 1", doneCount[idx], idx)
		}
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_sessions_done"); int(v) != res.Cells {
		t.Errorf("campaign_sessions_done = %d, want %d (dups must not double-count)", v, res.Cells)
	}
}

// TestTCPWrongKey: a supervisor with the wrong key is rejected by the
// agent, the campaign fails closed (no records, no cells), and not one
// key-derived byte appears on any observable surface — supervisor log,
// agent log, flight-recorder events, journal, or metrics.
func TestTCPWrongKey(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (failing) campaign")
	}
	agentKey := []byte("agent-side-key-0xFACEFEED-1618033988749895")
	supKey := []byte("supervisor-key-0xB16B00B5-2718281828459045")

	var agentLog, supLog syncBuffer
	agentReg := obs.New()
	addr := startTestAgent(t, &Agent{Key: agentKey, Logf: agentLog.logf, Obs: agentReg})

	m := testMatrix()
	m.Seeds = 1
	m.Faults = []string{"clean"} // 2 cells; the campaign can't run anyway
	dir := t.TempDir()
	reg := obs.New()
	ev := obs.NewEventLog(1024)
	status := campaign.NewStatus(ev)
	res, err := Run(context.Background(), m, Options{
		Campaign: campaign.Options{Workers: 1, Obs: reg, JournalDir: dir, Status: status},
		Shards:   1,
		Transport: &TCPTransport{
			Agents: []string{addr},
			Key:    supKey,
			Obs:    reg,
			Status: status,
			Logf:   supLog.logf,
		},
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
		Logf:         supLog.logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Failed != res.Cells {
		t.Fatalf("wrong-key campaign completed %d cells, failed %d of %d; want fail-closed", res.Completed, res.Failed, res.Cells)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_tcp_handshake_failures"); v < 1 {
		t.Errorf("campaign_tcp_handshake_failures = %d, want >=1", v)
	}
	agentSnap := agentReg.Snapshot()
	if v, _ := agentSnap.Counter("agent_handshake_failures"); v < 1 {
		t.Errorf("agent_handshake_failures = %d, want >=1", v)
	}

	// Collect every observable surface.
	var evs bytes.Buffer
	if err := ev.WriteJSONL(&evs); err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		journal.Write(b)
	}
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	surfaces := map[string]string{
		"supervisor log": supLog.String(),
		"agent log":      agentLog.String(),
		"event stream":   evs.String(),
		"journal":        journal.String(),
		"metrics":        rec.Body.String(),
	}
	for name, text := range surfaces {
		for _, key := range [][]byte{agentKey, supKey} {
			if strings.Contains(text, string(key)) || strings.Contains(text, hex.EncodeToString(key)) {
				t.Errorf("%s leaks key material", name)
			}
		}
	}
	// The failure itself must be visible (terse, but present).
	if !strings.Contains(supLog.String(), "authentication failed") {
		t.Errorf("supervisor log does not report the auth failure:\n%s", supLog.String())
	}
}

// TestTCPFailover: with a dead agent first in the pool, Start fails
// over to the live one and the campaign completes; the next spawn for
// that shard goes straight to the live agent (rotation is remembered).
func TestTCPFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns")
	}
	// A listener bound and immediately closed: a guaranteed-dead
	// address that was valid moments ago — the realistic failover case.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	live := startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf})

	m := testMatrix()
	ref := refProfileJSON(t, m)
	reg := obs.New()
	res, err := Run(context.Background(), m, Options{
		Campaign: campaign.Options{Workers: 2, Obs: reg},
		Shards:   2,
		Transport: &TCPTransport{
			Agents:      []string{deadAddr, live},
			Key:         testKey,
			DialTimeout: 2 * time.Second,
			Obs:         reg,
			Logf:        t.Logf,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > 0 || res.Completed != res.Cells {
		t.Fatalf("completed %d/%d, failed %d: %v", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if got := profileJSON(t, res.Profile); !bytes.Equal(got, ref) {
		t.Errorf("failover aggregate differs from reference")
	}
	// Shard 0 prefers pool slot 0 (the dead agent), so at least one
	// extra dial must have happened.
	snap := reg.Snapshot()
	if v, _ := snap.Counter("campaign_tcp_dials"); v < 3 {
		t.Errorf("campaign_tcp_dials = %d, want >=3 (2 shards + >=1 failover)", v)
	}
}

// TestTCPDrainAndResume: cancel mid-campaign maps graceful drain onto
// the socket (ftTerm, bounded wait), the journal survives, and a
// resumed run over the same agent completes to the byte-identical
// aggregate.
func TestTCPDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaigns")
	}
	m := testMatrix()
	ref := refProfileJSON(t, m)
	dir := t.TempDir()
	addr := startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf})
	transport := func() *TCPTransport {
		return &TCPTransport{Agents: []string{addr}, Key: testKey, Logf: t.Logf}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelOnce sync.Once
	res, err := Run(ctx, m, Options{
		Campaign: campaign.Options{
			Workers:    1,
			JournalDir: dir,
			OnReport: func(campaign.Cell, *profiling.RunReport) {
				cancelOnce.Do(cancel)
			},
		},
		Shards:       2,
		Transport:    transport(),
		DrainTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("canceled campaign not marked canceled")
	}
	if res.Completed == 0 {
		t.Fatal("no cells journaled before cancel; cannot exercise resume")
	}
	if res.Completed == res.Cells {
		t.Skip("campaign finished before drain; nothing left to resume")
	}

	res2, err := Run(context.Background(), m, Options{
		Campaign:  campaign.Options{Workers: 1, JournalDir: dir, Resume: true},
		Shards:    2,
		Transport: transport(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed == 0 {
		t.Error("resume loaded no journaled cells")
	}
	if res2.Failed > 0 || res2.Completed != res2.Cells {
		t.Fatalf("resume completed %d/%d, failed %d: %v", res2.Completed, res2.Cells, res2.Failed, res2.Errors)
	}
	if got := profileJSON(t, res2.Profile); !bytes.Equal(got, ref) {
		t.Errorf("drain+resume aggregate differs from uninterrupted reference")
	}
}

// TestAgentRejectsGarbage: a peer that connects and sends junk (or a
// well-formed frame of the wrong type) is dropped before any worker
// starts, and the failure is counted.
func TestAgentRejectsGarbage(t *testing.T) {
	reg := obs.New()
	addr := startTestAgent(t, &Agent{Key: testKey, Logf: t.Logf, Obs: reg, HandshakeTimeout: 2 * time.Second})

	// Raw junk bytes.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 4096)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		// Drain the challenge frame; the connection must close without
		// ever yielding a spec-ok or stream frame.
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
	nc.Close()

	// A valid challenge answered with a zero MAC.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if ft, _, err := readFrame(nc2); err != nil || ft != ftChallenge {
		t.Fatalf("no challenge from agent: frame %d, %v", ft, err)
	}
	if err := writeFrame(nc2, ftAuth, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if ft, _, err := readFrame(nc2); err == nil {
		t.Fatalf("agent answered a zero-MAC peer with frame type %d", ft)
	}
	nc2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := reg.Snapshot()
		if v, _ := snap.Counter("agent_handshake_failures"); v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := snap.Counter("agent_handshake_failures")
			t.Fatalf("agent_handshake_failures = %d, want >=2", v)
		}
		time.Sleep(10 * time.Millisecond)
	}
	final := reg.Snapshot()
	if v, _ := final.Counter("agent_assignments_total"); v != 0 {
		t.Errorf("unauthenticated peers started %d assignments", v)
	}
}
