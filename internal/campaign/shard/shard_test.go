package shard

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/profiling"
)

// TestMain doubles as the shard-worker helper binary: when
// SHARD_TEST_MODE is set, the test binary impersonates a worker process
// instead of running tests, so transport tests exec real child
// processes without needing tcfleet built. Modes beyond "worker" are
// deliberately broken workers for the supervisor to classify.
func TestMain(m *testing.M) {
	switch os.Getenv("SHARD_TEST_MODE") {
	case "worker":
		os.Exit(WorkerMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
	case "hang":
		// Says hello, then goes silent forever: the heartbeat-deadline
		// hang case.
		fmt.Println("//shard hello v=1 shard=0 cells=0 hash=")
		time.Sleep(time.Hour)
		os.Exit(0)
	case "torn":
		// Emits a torn record (no trailer) and exits 0: the
		// clean-exit-with-missing-cells case.
		fmt.Println("//shard hello v=1 shard=0 cells=0 hash=")
		fmt.Println(`{"schema_version": 1,`)
		fmt.Println(`  "app": "torn-worker"`)
		os.Exit(0)
	case "crash":
		os.Exit(3)
	}
	os.Exit(m.Run())
}

func TestSplit(t *testing.T) {
	for _, tc := range []struct {
		total, shards int
		want          [][]int
	}{
		{0, 4, [][]int{nil}},
		{3, 1, [][]int{{0, 1, 2}}},
		{8, 2, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}},
		{5, 2, [][]int{{0, 1, 2}, {3, 4}}},
		{2, 8, [][]int{{0}, {1}}}, // shards clamp to total
		{7, 3, [][]int{{0, 1, 2}, {3, 4}, {5, 6}}},
	} {
		got := Split(tc.total, tc.shards)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Split(%d, %d) = %v, want %v", tc.total, tc.shards, got, tc.want)
		}
	}
	// Property: any split covers every index exactly once, contiguously.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		total, shards := rng.Intn(200), 1+rng.Intn(16)
		var flat []int
		for _, part := range Split(total, shards) {
			flat = append(flat, part...)
		}
		if len(flat) != total {
			t.Fatalf("Split(%d, %d) covers %d indices", total, shards, len(flat))
		}
		for j, idx := range flat {
			if idx != j {
				t.Fatalf("Split(%d, %d) not contiguous at %d", total, shards, j)
			}
		}
	}
}

func TestIndexSetRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   []int
		text string
	}{
		{nil, ""},
		{[]int{5}, "5"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 1, 2, 3, 7, 9, 10, 11, 12}, "0-3,7,9-12"},
	} {
		if got := FormatIndexSet(tc.in); got != tc.text {
			t.Errorf("FormatIndexSet(%v) = %q, want %q", tc.in, got, tc.text)
		}
		back, err := ParseIndexSet(tc.text)
		if err != nil {
			t.Fatalf("ParseIndexSet(%q): %v", tc.text, err)
		}
		if !reflect.DeepEqual(back, tc.in) {
			t.Errorf("ParseIndexSet(%q) = %v, want %v", tc.text, back, tc.in)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		seen := map[int]bool{}
		var set []int
		for j := 0; j < rng.Intn(40); j++ {
			idx := rng.Intn(100)
			if !seen[idx] {
				seen[idx] = true
				set = append(set, idx)
			}
		}
		sortInts(set)
		back, err := ParseIndexSet(FormatIndexSet(set))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, set) {
			t.Fatalf("round trip %v -> %q -> %v", set, FormatIndexSet(set), back)
		}
	}
	for _, bad := range []string{"x", "-1", "3-1", "1,,2", "1-"} {
		if _, err := ParseIndexSet(bad); err == nil {
			t.Errorf("ParseIndexSet(%q) accepted", bad)
		}
	}
}

// TestParseIndexSetStrict: the parser accepts exactly FormatIndexSet's
// output grammar. Descending, overlapping, or duplicated tokens mean
// the spec did not come from FormatIndexSet — a corrupted respawn
// assignment — and must be rejected with an error that names the
// offending token, not silently "repaired".
func TestParseIndexSetStrict(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"5-2", "descending"},
		{"1,1", "overlaps or descends"},
		{"3,1-2", "overlaps or descends"},
		{"0-4,4", "overlaps or descends"},
		{"0-4,2-6", "overlaps or descends"},
		{"7,3", "overlaps or descends"},
		{"1-x", "bad index range"},
		{"2--4", "bad index range"},
	} {
		_, err := ParseIndexSet(tc.in)
		if err == nil {
			t.Errorf("ParseIndexSet(%q) accepted, want rejection", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseIndexSet(%q) = %v, want mention of %q", tc.in, err, tc.wantErr)
		}
	}
}

// FuzzParseIndexSet: whatever the parser accepts must be strictly
// ascending and must round-trip through FormatIndexSet to an equal
// slice — the two functions are inverses on the accepted language.
func FuzzParseIndexSet(f *testing.F) {
	f.Add("0-3,7,9-12")
	f.Add("5")
	f.Add("")
	f.Add("3-1")
	f.Add("0-4,2-6")
	f.Add("1,2,3")
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseIndexSet(s)
		if err != nil {
			return
		}
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("ParseIndexSet(%q) = %v is not strictly ascending", s, set)
			}
		}
		if len(set) > 0 && set[0] < 0 {
			t.Fatalf("ParseIndexSet(%q) yielded negative index %d", s, set[0])
		}
		back, err := ParseIndexSet(FormatIndexSet(set))
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q rejected: %v", FormatIndexSet(set), s, err)
		}
		if !reflect.DeepEqual(back, set) && !(len(back) == 0 && len(set) == 0) {
			t.Fatalf("round trip %q -> %v -> %q -> %v", s, set, FormatIndexSet(set), back)
		}
	})
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestParseControl(t *testing.T) {
	for _, tc := range []struct {
		line string
		ok   bool
		want ctlMsg
	}{
		{"//shard hello v=1 shard=2 cells=4 hash=abc123", true, ctlMsg{kind: "hello", hash: "abc123"}},
		{"//shard hb done=3", true, ctlMsg{kind: "hb"}},
		{"//shard cell 17", true, ctlMsg{kind: "cell", idx: 17}},
		{`//shard fail 4 permanent 2 "bad preset \"X\""`, true,
			ctlMsg{kind: "fail", idx: 4, class: "permanent", attempts: 2, msg: `bad preset "X"`}},
		{"//shard bye done=4 failed=1", true, ctlMsg{kind: "bye"}},
		{`//shard span {"n":"cell:x","c":"session","s":12345,"d":678}`, true,
			ctlMsg{kind: "span", msg: `{"n":"cell:x","c":"session","s":12345,"d":678}`}},
		{"//shard span", false, ctlMsg{}},
		{"//shard cell", false, ctlMsg{}},
		{"//shard cell -3", false, ctlMsg{}},
		{"//shard fail 4 permanent", false, ctlMsg{}},
		{"//shard warp 9", false, ctlMsg{}},
		{"//crc32:deadbeef", false, ctlMsg{}},
		{"plain line", false, ctlMsg{}},
	} {
		got, ok := parseControl(tc.line)
		if ok != tc.ok {
			t.Errorf("parseControl(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("parseControl(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

// TestEmitterScannerRoundTrip: what the worker's emitter writes, the
// supervisor's scanner reads back — records verified, control lines on
// the side channel, nothing lost.
func TestEmitterScannerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	em := &emitter{w: &buf}
	em.control("hello v=%d shard=%d cells=%d hash=%s", ProtocolVersion, 0, 2, "h")
	reports := map[int]*profiling.RunReport{
		3: {Schema: profiling.ReportSchemaVersion, App: "a", SoC: "TC1797", Seed: 31, Cycles: 100, Resolution: 10, Confidence: 1},
		5: {Schema: profiling.ReportSchemaVersion, App: "b", SoC: "TC1767", Seed: 51, Cycles: 200, Resolution: 10, Confidence: 1},
	}
	for _, idx := range []int{3, 5} {
		em.control("hb done=%d", idx)
		if err := em.record(idx, reports[idx]); err != nil {
			t.Fatal(err)
		}
	}
	em.control("bye done=2 failed=0")

	sc := profiling.NewRecordScanner(&buf)
	pending := -1
	var ctl []string
	sc.Control = func(line string) {
		ctl = append(ctl, line)
		if c, ok := parseControl(line); ok && c.kind == "cell" {
			pending = c.idx
		}
	}
	got := map[int]*profiling.RunReport{}
	for {
		body, _, err := sc.Next()
		if err != nil {
			break
		}
		r, err := profiling.ReadRunReport(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got[pending] = r
		pending = -1
	}
	if sc.Skipped() != 0 {
		t.Errorf("clean emitter stream counted %d skips", sc.Skipped())
	}
	if len(got) != 2 || got[3] == nil || got[5] == nil {
		t.Fatalf("recovered records for cells %v, want 3 and 5", keys(got))
	}
	for idx, r := range got {
		if r.Seed != reports[idx].Seed || r.App != reports[idx].App {
			t.Errorf("cell %d record mangled in transit: %+v", idx, r)
		}
	}
	joined := strings.Join(ctl, "\n")
	for _, want := range []string{"hello", "hb", "cell 3", "cell 5", "bye"} {
		if !strings.Contains(joined, want) {
			t.Errorf("control channel missing %q:\n%s", want, joined)
		}
	}
}

func keys(m map[int]*profiling.RunReport) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSpecArgs(t *testing.T) {
	s := Spec{
		Shard: 2, Shards: 4, Cells: "4-7", Workers: 3, Hash: "abc",
		HB: 250 * time.Millisecond, Spans: true, CellTimeout: time.Second, Retries: 1,
	}
	args := strings.Join(s.Args(), " ")
	for _, want := range []string{"-shard 2", "-cells 4-7", "-workers 3", "-hb 250ms", "-hash abc", "-spans", "-celltimeout 1s", "-retries 1"} {
		if !strings.Contains(args, want) {
			t.Errorf("Spec.Args() = %q, missing %q", args, want)
		}
	}
}
