// TCP transport: the supervisor side of remote shard workers. It
// implements the same narrow Transport/Conn seam the exec transport
// does, so the supervisor's crash/hang/torn classification, journal-
// before-done ordering, and ingest re-verification apply to a socket
// exactly as they do to a pipe — the network only adds failure modes,
// never new trust:
//
//   - dial/handshake failures and mid-stream resets surface as spawn
//     errors or non-nil Wait, which the supervisor already classifies
//     as crashes and respawns with seed-derived jittered backoff;
//   - a stalled connection starves the heartbeat lines riding the
//     stream, so the existing hang deadline fires; the socket read
//     deadline (refreshed per frame off the heartbeat cadence) is the
//     belt-and-braces backstop;
//   - torn or bit-flipped frames fail the frame CRC and kill the
//     connection, and anything that slips through still faces the
//     record scanner's CRC and the seed cross-check on ingest.
//
// Each Start dials one agent from the pool; when an agent is down the
// transport fails over to the next one immediately, and the
// supervisor's respawn budget (-shardretries) bounds the overall
// redial schedule.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// TCP transport defaults; zero fields on TCPTransport fall back here.
const (
	// DefaultDialTimeout bounds one connection attempt to one agent.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHandshakeTimeout bounds the authentication + spec-upload
	// exchange after the socket is up.
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultWriteTimeout bounds any single frame write, so a stalled
	// peer cannot wedge the writing side forever.
	DefaultWriteTimeout = 30 * time.Second
)

// TCPTransport starts shard workers on remote tcfleet agents. It is
// safe for concurrent Start calls (the supervisor spawns all shards in
// parallel).
type TCPTransport struct {
	// Agents is the ordered agent pool ("host:port", ...). Shard s
	// prefers agent s mod len(Agents) so a multi-agent fleet spreads
	// load; on failure the dial fails over round-robin.
	Agents []string
	// Key is the shared authentication key (LoadKey). Required; never
	// logged.
	Key []byte
	// HeartbeatTimeout mirrors the supervisor's hang deadline; the
	// per-frame read deadline is derived from it (2x, floored at the
	// handshake timeout) so the monitor's kill normally wins and the
	// socket deadline only catches a transport that is stalled so hard
	// even Close would have nothing to interrupt. 0 means
	// DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// DialTimeout / HandshakeTimeout / WriteTimeout bound the respective
	// phases; zero values use the Default* constants.
	DialTimeout      time.Duration
	HandshakeTimeout time.Duration
	WriteTimeout     time.Duration
	// Obs receives per-shard connection counters (dials, redials,
	// handshake failures, stream bytes) alongside the supervisor's
	// per-shard gauges; nil disables them.
	Obs *obs.Registry
	// Status receives connection anomalies (handshake failures,
	// failovers) on the flight-recorder/scoreboard surface; nil
	// disables.
	Status *campaign.Status
	// Logf receives dial/failover diagnostics; nil discards. Messages
	// never contain key material.
	Logf func(format string, args ...any)

	mu    sync.Mutex
	rot   map[int]int // per-shard rotation offset into Agents after failover
	dials map[int]int // per-shard dial count, to tell redials from first dials
}

func (t *TCPTransport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

func (t *TCPTransport) readTimeout() time.Duration {
	hb := t.HeartbeatTimeout
	if hb <= 0 {
		hb = DefaultHeartbeatTimeout
	}
	rt := 2 * hb
	if min := t.handshakeTimeout(); rt < min {
		rt = min
	}
	return rt
}

func (t *TCPTransport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return DefaultDialTimeout
}

func (t *TCPTransport) handshakeTimeout() time.Duration {
	if t.HandshakeTimeout > 0 {
		return t.HandshakeTimeout
	}
	return DefaultHandshakeTimeout
}

func (t *TCPTransport) writeTimeout() time.Duration {
	if t.WriteTimeout > 0 {
		return t.WriteTimeout
	}
	return DefaultWriteTimeout
}

// Start dials an agent for the spec's shard, authenticates, uploads
// the spec, and returns the live connection. When an agent is
// unreachable or fails the handshake it fails over across the whole
// pool before giving up; the supervisor's respawn budget and backoff
// govern when Start is tried again.
func (t *TCPTransport) Start(spec Spec) (Conn, error) {
	if len(t.Agents) == 0 {
		return nil, fmt.Errorf("shard: TCPTransport has no agents")
	}
	if len(t.Key) < MinKeyLen {
		return nil, fmt.Errorf("shard: TCPTransport key shorter than %d bytes", MinKeyLen)
	}
	si := spec.Shard
	t.mu.Lock()
	if t.rot == nil {
		t.rot = map[int]int{}
		t.dials = map[int]int{}
	}
	start := si + t.rot[si]
	t.mu.Unlock()

	var lastErr error
	for i := 0; i < len(t.Agents); i++ {
		addr := t.Agents[(start+i)%len(t.Agents)]
		t.mu.Lock()
		t.dials[si]++
		redial := t.dials[si] > 1
		t.mu.Unlock()
		t.countDial(si, redial)
		conn, err := t.dialAgent(addr, spec)
		if err != nil {
			lastErr = fmt.Errorf("agent %s: %w", addr, err)
			t.logf("shard %d: %v", si, lastErr)
			if errors.Is(err, errAuth) {
				t.Obs.Counter(fmt.Sprintf("campaign_shard%02d_handshake_failures", si)).Inc()
				t.Obs.Counter("campaign_tcp_handshake_failures").Inc()
				t.Status.ShardAnomaly(si, "handshake_failure", fmt.Sprintf("agent %s rejected or failed authentication", addr))
			}
			continue
		}
		if i > 0 {
			// Remember the working agent so the next spawn for this shard
			// starts there instead of re-probing the dead one.
			t.mu.Lock()
			t.rot[si] = (t.rot[si] + i) % len(t.Agents)
			t.mu.Unlock()
			t.Status.ShardAnomaly(si, "failover", fmt.Sprintf("failed over to agent %s", addr))
		}
		t.logf("shard %d: connected to agent %s (agent pid %d)", si, addr, conn.Pid())
		return conn, nil
	}
	return nil, fmt.Errorf("no agent accepted shard %d (pool of %d): %w", si, len(t.Agents), lastErr)
}

// countDial ticks the per-shard and aggregate dial counters.
func (t *TCPTransport) countDial(si int, redial bool) {
	t.Obs.Counter(fmt.Sprintf("campaign_shard%02d_dials", si)).Inc()
	t.Obs.Counter("campaign_tcp_dials").Inc()
	if redial {
		t.Obs.Counter(fmt.Sprintf("campaign_shard%02d_redials", si)).Inc()
		t.Obs.Counter("campaign_tcp_redials").Inc()
	}
}

// dialAgent performs one full connection setup against one agent:
// dial, mutual handshake, spec upload, ack.
func (t *TCPTransport) dialAgent(addr string, spec Spec) (*tcpConn, error) {
	nc, err := net.DialTimeout("tcp", addr, t.dialTimeout())
	if err != nil {
		return nil, err
	}
	// One deadline covers the whole handshake + spec exchange; cleared
	// once the connection graduates to streaming.
	if err := nc.SetDeadline(time.Now().Add(t.handshakeTimeout())); err != nil {
		nc.Close()
		return nil, err
	}
	if err := handshakeSupervisor(nc, t.Key); err != nil {
		nc.Close()
		// Every handshake-phase failure counts as an authentication
		// failure for classification: a wrong-keyed agent doesn't announce
		// the mismatch, it just drops the connection, and from this side
		// that EOF is indistinguishable from a rejected MAC. The detail
		// (never key-derived) rides along for the log.
		if errors.Is(err, errAuth) {
			return nil, err
		}
		return nil, fmt.Errorf("%w (%v)", errAuth, err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if err := writeFrame(nc, ftSpec, specJSON); err != nil {
		nc.Close()
		return nil, fmt.Errorf("spec upload: %w", err)
	}
	ft, payload, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("spec ack: %w", err)
	}
	if ft != ftSpecOK || len(payload) != 4 {
		nc.Close()
		return nil, fmt.Errorf("spec ack: unexpected frame type %d", ft)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, err
	}
	pr, pw := io.Pipe()
	c := &tcpConn{
		c:            nc,
		pr:           pr,
		pw:           pw,
		pid:          int(binary.BigEndian.Uint32(payload)),
		readTimeout:  t.readTimeout(),
		writeTimeout: t.writeTimeout(),
		bytes:        t.Obs.Counter(fmt.Sprintf("campaign_shard%02d_net_bytes", spec.Shard)),
		bytesAgg:     t.Obs.Counter("campaign_tcp_bytes"),
		done:         make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// tcpConn adapts one authenticated agent connection to the Conn seam.
// The frame stream is decoded on a background goroutine into a pipe,
// so Output() hands the supervisor exactly the worker's stdout bytes —
// the unchanged //shard protocol — while ftExit and read errors are
// folded into Wait's verdict.
type tcpConn struct {
	c            net.Conn
	pr           *io.PipeReader
	pw           *io.PipeWriter
	wmu          sync.Mutex
	pid          int
	readTimeout  time.Duration
	writeTimeout time.Duration
	bytes        *obs.Counter
	bytesAgg     *obs.Counter

	killed  atomic.Bool
	done    chan struct{}
	waitErr error // valid after done closes
}

func (c *tcpConn) Output() io.Reader { return c.pr }

// Terminate maps graceful drain onto the socket: a ftTerm control
// frame tells the agent to cancel the worker's context, the remote
// analogue of SIGTERM. The bounded wait and the hard close stay with
// the supervisor's monitor, exactly as for the exec transport.
func (c *tcpConn) Terminate() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_ = c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	_ = writeFrame(c.c, ftTerm, nil)
}

// Kill closes the socket immediately. The agent sees the reset and
// cancels its worker; the read loop unblocks and Wait reports the
// connection as killed.
func (c *tcpConn) Kill() {
	c.killed.Store(true)
	_ = c.c.Close()
}

func (c *tcpConn) Wait() error {
	<-c.done
	return c.waitErr
}

func (c *tcpConn) Pid() int { return c.pid }

// readLoop decodes the agent's frame stream until exit or failure,
// refreshing the read deadline per frame: heartbeat lines ride the
// stream at the worker's cadence, so a healthy connection always has
// a frame in flight well inside the deadline.
func (c *tcpConn) readLoop() {
	exitCode := -1
	var err error
loop:
	for {
		if derr := c.c.SetReadDeadline(time.Now().Add(c.readTimeout)); derr != nil {
			err = derr
			break
		}
		ft, payload, rerr := readFrame(c.c)
		if rerr != nil {
			err = rerr
			break
		}
		switch ft {
		case ftStream:
			c.bytes.Add(uint64(len(payload)))
			c.bytesAgg.Add(uint64(len(payload)))
			if _, werr := c.pw.Write(payload); werr != nil {
				err = werr
				break loop
			}
		case ftExit:
			if len(payload) == 4 {
				exitCode = int(int32(binary.BigEndian.Uint32(payload)))
			} else {
				err = fmt.Errorf("shard: malformed exit frame (%d bytes)", len(payload))
			}
			break loop
		default:
			// Unknown frame types from a newer agent are liveness, not
			// data; skip them (the frame CRC already vouched for them).
		}
	}
	switch {
	case exitCode == 0:
		c.waitErr = nil
	case exitCode > 0:
		c.waitErr = fmt.Errorf("worker exit status %d", exitCode)
	case c.killed.Load():
		c.waitErr = fmt.Errorf("connection killed")
	default:
		c.waitErr = fmt.Errorf("connection lost: %v", err)
	}
	// EOF the record pipe only after every streamed byte is delivered;
	// the supervisor's scanner drains to EOF and then calls Wait.
	_ = c.pw.Close()
	_ = c.c.Close()
	close(c.done)
}
