// Package shard scales a campaign past one process: the canonical
// expanded matrix is split into deterministic index ranges, each range
// runs in a child worker process (tcfleet shard-worker), and completed
// cells stream back over the worker's stdout as the same CRC-32-trailed
// report records the journal persists — re-verified on ingest, because
// a pipe from a process that can crash mid-write is exactly the hostile
// stream profiling.RecordScanner exists for.
//
// The split is part of the campaign's determinism contract: Split is a
// pure function of (cell count, shard count), cell seeds were already
// fixed at expansion, and the fleet accumulator canonicalizes at
// Finalize — so the global aggregate is byte-identical for any shard
// count, any per-shard worker count, and any interleaving of worker
// crashes and respawns, as long as every cell eventually lands exactly
// once.
package shard

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/runcfg"
)

// ProtocolVersion versions the //shard control-line protocol a worker
// speaks over stdout (hello/hb/cell/fail/bye).
const ProtocolVersion = 1

// Supervision defaults; Options fields left zero fall back to these.
// The timing trio is defined in runcfg (the flag layer validates
// against the effective fallbacks, and runcfg sits below this package
// in the import graph) and aliased here as the package's own names.
const (
	// DefaultHeartbeatEvery is how often a worker emits an "hb" control
	// line when it has no report to stream.
	DefaultHeartbeatEvery = runcfg.DefaultShardHeartbeat
	// DefaultHeartbeatTimeout is the supervisor's hang deadline: a shard
	// silent for this long is presumed wedged and killed.
	DefaultHeartbeatTimeout = runcfg.DefaultShardHeartbeatTimeout
	// DefaultShardRetries is how many times a crashed/hung/torn shard is
	// re-spawned before its remaining cells are failed.
	DefaultShardRetries = 2
	// DefaultRetryBackoff is the base delay before a shard respawn,
	// doubled per attempt and jittered from the campaign seed.
	DefaultRetryBackoff = 250 * time.Millisecond
	// DefaultDrainTimeout bounds graceful drain on cancel: SIGTERM, wait
	// this long, then SIGKILL.
	DefaultDrainTimeout = runcfg.DefaultShardDrainTimeout
)

// Split partitions total cell indices into contiguous, balanced,
// deterministic ranges — shard s gets indices in ascending order, the
// first total%shards shards one extra cell. It is a pure function of
// its arguments, so every run of the same matrix at the same shard
// count produces the same assignment.
func Split(total, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	if shards > total {
		// Never materialize empty shards: a worker with no cells is pure
		// supervision overhead.
		shards = total
		if shards == 0 {
			shards = 1
		}
	}
	out := make([][]int, shards)
	base := total / shards
	extra := total % shards
	next := 0
	for s := range out {
		n := base
		if s < extra {
			n++
		}
		if n > 0 {
			out[s] = make([]int, 0, n)
		}
		for i := 0; i < n; i++ {
			out[s] = append(out[s], next)
			next++
		}
	}
	return out
}

// FormatIndexSet renders sorted cell indices compactly as ranges:
// [0 1 2 3 7 9 10] → "0-3,7,9-10". The inverse of ParseIndexSet.
func FormatIndexSet(indices []int) string {
	if len(indices) == 0 {
		return ""
	}
	sorted := append([]int(nil), indices...)
	sort.Ints(sorted)
	var b strings.Builder
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%d", sorted[i])
		} else {
			fmt.Fprintf(&b, "%d-%d", sorted[i], sorted[j])
		}
		i = j + 1
	}
	return b.String()
}

// maxIndexSetSize bounds how many indices one ParseIndexSet call may
// materialize. Index sets name shard assignments, so the bound only
// needs to exceed any plausible campaign; without it, a corrupted (or
// hostile, now that specs arrive over TCP) range like "0-2000000000"
// would allocate gigabytes before the cell-bound check ever runs.
const maxIndexSetSize = 1 << 22

// ParseIndexSet parses the FormatIndexSet syntax back into a sorted
// index slice. The grammar is strict — exactly what FormatIndexSet
// emits: tokens in strictly ascending order, ranges ascending, no
// overlaps or duplicates. A set that fails these rules was not
// produced by FormatIndexSet, and since index sets name respawn
// assignments, silently "repairing" one (the old tolerant behavior)
// would mask a corrupted spec rather than surface it.
func ParseIndexSet(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	prev := -1 // highest index accepted so far
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		lo, hi, isRange := strings.Cut(tok, "-")
		a, err := strconv.Atoi(lo)
		if err != nil || a < 0 {
			return nil, fmt.Errorf("shard: bad index set token %q", tok)
		}
		b := a
		if isRange {
			b, err = strconv.Atoi(hi)
			if err != nil || b < 0 {
				return nil, fmt.Errorf("shard: bad index range %q", tok)
			}
			if b < a {
				return nil, fmt.Errorf("shard: descending index range %q (%d < %d)", tok, b, a)
			}
		}
		if a <= prev {
			return nil, fmt.Errorf("shard: index set token %q overlaps or descends (already covered through %d)", tok, prev)
		}
		if b >= maxIndexSetSize {
			// Bounding the index bounds the materialized size too, with no
			// overflow risk for ranges like "0-9223372036854775807".
			return nil, fmt.Errorf("shard: index %d in token %q exceeds the %d bound", b, tok, maxIndexSetSize)
		}
		for i := a; i <= b; i++ {
			out = append(out, i)
		}
		prev = b
	}
	return out, nil
}

// Spec is everything a transport needs to start one shard worker. The
// matrix travels as JSON over the worker's stdin; everything else is
// small enough for argv.
type Spec struct {
	Shard  int    // shard ordinal, for logging and protocol lines
	Shards int    // total shard count
	Matrix []byte // campaign matrix JSON, fed to the worker's stdin
	// Cells is the FormatIndexSet of the cell indices this spawn must
	// execute — on a respawn, only the cells not yet journaled done.
	Cells   string
	Workers int           // in-process worker pool size inside the shard
	Hash    string        // MatrixHash of the full expansion; worker re-verifies
	HB      time.Duration // heartbeat period the worker must honor
	// Spans asks the worker to trace its campaign spans and stream them
	// back as "//shard span" lines at drain, for cross-process trace
	// stitching.
	Spans bool

	// Per-cell supervision, forwarded into the worker's campaign.RunCells.
	CellTimeout time.Duration
	Retries     int
}

// Args renders the spec's argv flags for the shard-worker subcommand
// (the matrix is not included — it goes over stdin).
func (s Spec) Args() []string {
	args := []string{
		"-shard", strconv.Itoa(s.Shard),
		"-cells", s.Cells,
		"-workers", strconv.Itoa(s.Workers),
		"-hb", s.HB.String(),
	}
	if s.Hash != "" {
		args = append(args, "-hash", s.Hash)
	}
	if s.Spans {
		args = append(args, "-spans")
	}
	if s.CellTimeout > 0 {
		args = append(args, "-celltimeout", s.CellTimeout.String())
	}
	if s.Retries > 0 {
		args = append(args, "-retries", strconv.Itoa(s.Retries))
	}
	return args
}

// Conn is one live shard worker as the supervisor sees it: a byte
// stream to ingest and a process to signal. Implementations must make
// Output return EOF (or an error) once the worker is gone, and Wait
// must be callable exactly once after Output is drained.
type Conn interface {
	// Output is the worker's record/control stream (its stdout).
	Output() io.Reader
	// Terminate asks the worker to drain gracefully (SIGTERM).
	Terminate()
	// Kill stops the worker immediately (SIGKILL).
	Kill()
	// Wait reaps the worker and returns its exit error, nil on clean
	// exit. Call after draining Output.
	Wait() error
	// Pid identifies the worker process for logs (0 when not applicable).
	Pid() int
}

// Transport starts shard workers. The local implementation execs a
// child process; the interface is deliberately narrow so a TCP
// transport (remote workers) can slot in without touching the
// supervisor.
type Transport interface {
	Start(spec Spec) (Conn, error)
}

// ExecTransport launches shard workers as local child processes:
// Argv[0] is the binary, Argv[1:] fixed leading arguments (normally
// {"tcfleet", "shard-worker"}), and the spec's flags are appended. The
// matrix JSON is piped to the child's stdin; stderr is forwarded to
// Stderr (campaign diagnostics stay human-readable and out of the
// record stream).
type ExecTransport struct {
	Argv   []string
	Env    []string // extra environment entries, appended to os.Environ()
	Stderr io.Writer
}

// Start launches one worker process for the spec.
func (t *ExecTransport) Start(spec Spec) (Conn, error) {
	if len(t.Argv) == 0 {
		return nil, fmt.Errorf("shard: ExecTransport has no argv")
	}
	args := append(append([]string(nil), t.Argv[1:]...), spec.Args()...)
	cmd := exec.Command(t.Argv[0], args...)
	cmd.Stdin = bytes.NewReader(spec.Matrix)
	cmd.Stderr = t.Stderr
	if len(t.Env) > 0 {
		cmd.Env = append(os.Environ(), t.Env...)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &execConn{cmd: cmd, out: out}, nil
}

// execConn wraps one exec'd worker. Signals after process exit are
// ignored — the monitor may race Wait and that must stay harmless.
type execConn struct {
	cmd  *exec.Cmd
	out  io.ReadCloser
	once sync.Once
	werr error
}

func (c *execConn) Output() io.Reader { return c.out }

func (c *execConn) Terminate() {
	if p := c.cmd.Process; p != nil {
		_ = p.Signal(syscall.SIGTERM)
	}
}

func (c *execConn) Kill() {
	if p := c.cmd.Process; p != nil {
		_ = p.Kill()
	}
}

func (c *execConn) Wait() error {
	c.once.Do(func() { c.werr = c.cmd.Wait() })
	return c.werr
}

func (c *execConn) Pid() int {
	if p := c.cmd.Process; p != nil {
		return p.Pid
	}
	return 0
}
