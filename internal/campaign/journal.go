// Journal: the campaign's write-ahead persistence layer. Every
// completed cell's run report is persisted atomically (tmp + rename,
// fsync'd) with an embedded CRC-32 trailer line, and a campaign.journal
// manifest — one JSON line per event, appended and fsync'd as cells
// finish — records the matrix (and a hash of its expansion), the
// campaign seed, and per-cell status/attempts. A crash or SIGKILL at
// any point therefore loses at most the cells that were mid-flight:
// resume validates the manifest against the re-expanded matrix, loads
// every journaled-complete report (verifying both the embedded trailer
// and the manifest's cross-recorded CRC), re-runs failed and missing
// cells, and produces an aggregate byte-identical to an uninterrupted
// run — cell seeds are fixed at expansion and the accumulator
// canonicalizes, so it cannot matter which cells came from disk.
package campaign

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/profiling"
)

// ManifestName is the journal manifest file inside the journal
// directory.
const ManifestName = "campaign.journal"

// JournalVersion versions the manifest format.
const JournalVersion = 1

// journalHeader is the manifest's first line: everything needed to
// re-expand and validate the campaign on resume without re-specifying
// any flags.
type journalHeader struct {
	Version    int    `json:"journal_version"`
	Name       string `json:"name,omitempty"`
	Seed       uint64 `json:"seed"`
	Cells      int    `json:"cells"`
	MatrixHash string `json:"matrix_hash"`
	Matrix     Matrix `json:"matrix"`
}

// journalEntry is one per-cell event line. The last entry for a cell
// wins, so a resumed run simply appends fresh outcomes.
type journalEntry struct {
	Cell     string `json:"cell"`
	Index    int    `json:"index"`
	Status   string `json:"status"` // "done" or "failed"
	Attempts int    `json:"attempts"`
	Class    string `json:"class,omitempty"`
	Error    string `json:"error,omitempty"`
	// CRC cross-records the CRC-32 of the persisted report file's body,
	// so the manifest and the report validate each other on resume.
	CRC string `json:"crc32,omitempty"`
}

// Journal appends per-cell outcomes to the manifest and persists
// completed reports. Safe for concurrent use by the worker pool.
type Journal struct {
	dir string
	mu  sync.Mutex
	f   *os.File
}

// MatrixHash fingerprints the canonical expansion (every cell's ID,
// index, and fully resolved run configuration including derived seeds),
// so resume — and a shard worker handed a matrix over a process
// boundary — detects any drift between two views of the campaign.
func MatrixHash(cells []Cell) string {
	b, err := json.Marshal(cells)
	if err != nil {
		// Cells contain only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("campaign: marshal cells: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WriteFileAtomic writes through a temp file in the target's directory
// and renames it into place, so readers — and crash recovery — only
// ever observe absent-or-complete files, never a torn write. The
// journal and every tcfleet file output go through it. After the
// rename, the parent directory is fsync'd: the rename lives in the
// directory entry, and without the dirent barrier a power loss could
// forget the rename itself, leaving neither old nor new name even
// though the data pages survived.
//
// The temp file's data is deliberately not fsync'd: rename atomicity
// already covers every process-level crash, and after a power loss a
// journal-written report that lost pages fails its CRC-32 verification
// on resume and is simply re-run — detection plus re-execution is
// cheaper than paying a data fsync per cell on the campaign hot path
// (the manifest append, the actual write-ahead barrier, does fsync).
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Filesystems that refuse to sync directories (some network and
// FUSE mounts return EINVAL/ENOTSUP) degrade to the pre-barrier
// behavior rather than failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fsync %s: %w", dir, err)
	}
	return nil
}

// OpenJournal starts a fresh journal in dir for the expanded campaign.
// An existing manifest is refused — silently truncating one would
// destroy the very state a crash-tolerant run exists to preserve;
// resume instead. Callers that already run inside Run never need this;
// it is exported for the sharded supervisor, which owns the journal at
// the campaign tier while cells execute in worker processes.
func OpenJournal(dir string, m Matrix, cells []Cell) (*Journal, error) {
	return openJournal(dir, m, MatrixHash(cells), cells)
}

func openJournal(dir string, m Matrix, hash string, cells []Cell) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, ManifestName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("campaign: journal already exists in %s (resume it, or journal into a fresh directory)", dir)
		}
		return nil, err
	}
	j := &Journal{dir: dir, f: f}
	h := journalHeader{
		Version: JournalVersion, Name: m.Name, Seed: m.Seed,
		Cells: len(cells), MatrixHash: hash, Matrix: m,
	}
	if err := j.appendLine(h); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// readManifest parses the manifest into its header and entries.
func readManifest(dir string) (journalHeader, []journalEntry, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return journalHeader{}, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var h journalHeader
	var entries []journalEntry
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if line == 1 {
			if err := json.Unmarshal(b, &h); err != nil {
				return h, nil, fmt.Errorf("campaign: %s/%s: bad header: %w", dir, ManifestName, err)
			}
			if h.Version == 0 || h.Version > JournalVersion {
				return h, nil, fmt.Errorf("campaign: %s/%s: journal version %d not supported (max %d)",
					dir, ManifestName, h.Version, JournalVersion)
			}
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(b, &e); err != nil {
			// A torn trailing line is the expected crash artifact: the
			// cell it would have recorded simply re-runs.
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if line == 0 {
		return h, nil, fmt.Errorf("campaign: %s/%s: empty manifest", dir, ManifestName)
	}
	return h, entries, nil
}

// LoadJournalMatrix reads the matrix stored in a journal manifest, so
// "tcfleet run -resume dir" reconstructs the campaign with no other
// flags.
func LoadJournalMatrix(dir string) (Matrix, error) {
	h, _, err := readManifest(dir)
	if err != nil {
		return Matrix{}, err
	}
	return h.Matrix, nil
}

// ResumeJournal validates the manifest in dir against the expanded
// matrix and loads every journaled-complete cell's verified report.
// Cells whose report is missing, torn, or checksum-inconsistent are
// surfaced as warnings and left for re-execution — resume degrades to
// re-running a cell, never to trusting corrupt data. Exported for the
// sharded supervisor (see OpenJournal).
func ResumeJournal(dir string, cells []Cell) (*Journal, map[int]*profiling.RunReport, []string, error) {
	return resumeJournal(dir, MatrixHash(cells), cells)
}

func resumeJournal(dir string, hash string, cells []Cell) (*Journal, map[int]*profiling.RunReport, []string, error) {
	h, entries, err := readManifest(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if h.MatrixHash != hash || h.Cells != len(cells) {
		return nil, nil, nil, fmt.Errorf("campaign: journal in %s was written for a different matrix (%d cells, hash %.12s; this campaign expands to %d cells, hash %.12s)",
			dir, h.Cells, h.MatrixHash, len(cells), hash)
	}
	// Last entry per cell wins; validate identity as we fold.
	latest := map[int]journalEntry{}
	for _, e := range entries {
		if e.Index < 0 || e.Index >= len(cells) || cells[e.Index].ID != e.Cell {
			return nil, nil, nil, fmt.Errorf("campaign: journal in %s records unknown cell %q (index %d)",
				dir, e.Cell, e.Index)
		}
		latest[e.Index] = e
	}
	resumed := map[int]*profiling.RunReport{}
	var warns []string
	for idx := range cells {
		e, ok := latest[idx]
		if !ok || e.Status != "done" {
			continue
		}
		path := filepath.Join(dir, e.Cell+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			warns = append(warns, fmt.Sprintf("cell %s journaled done but report unreadable (%v); re-running", e.Cell, err))
			continue
		}
		body, crc, summed, err := profiling.VerifySummed(data)
		if err != nil || !summed {
			warns = append(warns, fmt.Sprintf("cell %s report failed checksum verification (%v); re-running", e.Cell, err))
			continue
		}
		if got := fmt.Sprintf("%08x", crc); got != e.CRC {
			warns = append(warns, fmt.Sprintf("cell %s report CRC %s does not match manifest %s; re-running", e.Cell, got, e.CRC))
			continue
		}
		r, err := profiling.ReadRunReport(bytes.NewReader(body))
		if err != nil {
			warns = append(warns, fmt.Sprintf("cell %s report unparsable (%v); re-running", e.Cell, err))
			continue
		}
		resumed[idx] = r
	}
	f, err := os.OpenFile(filepath.Join(dir, ManifestName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	return &Journal{dir: dir, f: f}, resumed, warns, nil
}

// RecordDone persists the cell's report atomically (with its embedded
// CRC-32 trailer) and then appends the manifest line — in that order,
// so a manifest "done" entry always implies a verifiable report file.
func (j *Journal) RecordDone(cell Cell, attempts int, r *profiling.RunReport) error {
	b, crc, err := r.EncodeSummed()
	if err != nil {
		return err
	}
	path := filepath.Join(j.dir, cell.ID+".json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	}); err != nil {
		return err
	}
	return j.appendLine(journalEntry{
		Cell: cell.ID, Index: cell.Index, Status: "done",
		Attempts: attempts, CRC: fmt.Sprintf("%08x", crc),
	})
}

// RecordFailed appends the classified failure, so resume re-runs the
// cell and operators can audit what went wrong and how often.
func (j *Journal) RecordFailed(ce CellError) error {
	return j.appendLine(journalEntry{
		Cell: ce.Cell.ID, Index: ce.Cell.Index, Status: "failed",
		Attempts: ce.Attempts, Class: string(ce.Class), Error: ce.Err.Error(),
	})
}

// appendLine marshals v onto its own manifest line and fsyncs.
func (j *Journal) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close releases the manifest handle.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}
