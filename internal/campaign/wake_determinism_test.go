package campaign

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/profiling"
	"repro/internal/soc"
)

// TestCampaignWakeSchedulerDeterminism runs the same matrix twice — once
// with every cell's SoC in the default quiescence-scheduled kernel mode,
// once with the wake scheduler force-disabled — and demands byte-identical
// canonical aggregate JSON. Together with the per-report check in
// internal/profiling this pins the Sleeper contract at fleet scale: the
// scheduler is a pure wall-clock optimization with no observable effect on
// any simulated result.
func TestCampaignWakeSchedulerDeterminism(t *testing.T) {
	m := testMatrix()
	sched, err := Run(context.Background(), m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Completed != m.Size() || sched.Failed != 0 {
		t.Fatalf("scheduled run = %+v", sched)
	}
	want := profileJSON(t, sched)

	unsched, err := Run(context.Background(), m, Options{
		Workers: 4,
		exec: func(ctx context.Context, cell Cell) (*profiling.RunReport, error) {
			return runCellWith(ctx, cell, func(s *soc.SoC) {
				s.Clock.SetWakeScheduling(false)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if unsched.Completed != m.Size() || unsched.Failed != 0 {
		t.Fatalf("unscheduled run = %+v", unsched)
	}
	if got := profileJSON(t, unsched); !bytes.Equal(got, want) {
		t.Error("campaign aggregate differs between wake-scheduler modes")
	}
}
