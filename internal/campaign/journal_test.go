package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// TestWriteFileAtomicLeavesNoTornFile: a failing write callback must
// leave neither the target nor a temp file behind.
func TestWriteFileAtomicLeavesNoTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	boom := errors.New("disk on fire")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed write left %v behind", ents)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("complete"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "complete" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 1 {
		t.Fatalf("temp residue after success: %v", ents)
	}
}

// resumeMatrix is testMatrix at a lighter horizon: the resume suite
// runs many full campaigns, and determinism holds at any horizon.
func resumeMatrix() Matrix {
	m := testMatrix()
	m.Cycles = 30_000
	return m
}

// runInterrupted journals a campaign into dir and cancels it once k
// cells have completed (k == 0 cancels before anything runs). It
// returns the interrupted result.
func runInterrupted(t *testing.T, m Matrix, dir string, workers, k int) *Result {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int32
	opt := Options{Workers: workers, JournalDir: dir}
	if k == 0 {
		cancel()
	} else {
		opt.OnReport = func(Cell, *profiling.RunReport) {
			if int(n.Add(1)) >= k {
				cancel()
			}
		}
	}
	res, err := Run(ctx, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCampaignResumeDeterminism is the tentpole acceptance test: kill
// a journaled campaign after k cells, resume it, and the final
// aggregate JSON must be byte-identical to an uninterrupted run — for
// k ∈ {0, mid, all} and workers ∈ {1, 8}.
func TestCampaignResumeDeterminism(t *testing.T) {
	m := resumeMatrix()
	ref, err := Run(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := profileJSON(t, ref)

	for _, workers := range []int{1, 8} {
		for _, k := range []int{0, 4, m.Size()} {
			t.Run(fmt.Sprintf("workers=%d/k=%d", workers, k), func(t *testing.T) {
				dir := t.TempDir()
				res1 := runInterrupted(t, m, dir, workers, k)
				if k == 0 && res1.Completed != 0 {
					t.Fatalf("pre-canceled run completed %d cells", res1.Completed)
				}
				if k > 0 && res1.Completed < k {
					t.Fatalf("interrupted run completed %d cells, want >= %d", res1.Completed, k)
				}
				res2, err := Run(context.Background(), m, Options{
					Workers: workers, JournalDir: dir, Resume: true, Obs: obs.New(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if res2.Completed != m.Size() || res2.Failed != 0 || res2.Canceled {
					t.Fatalf("resumed run = %+v", res2)
				}
				if res2.Resumed != res1.Completed {
					t.Errorf("resumed %d journaled cells, interrupted run completed %d",
						res2.Resumed, res1.Completed)
				}
				if len(res2.Warnings) != 0 {
					t.Errorf("clean resume produced warnings: %v", res2.Warnings)
				}
				if got := profileJSON(t, res2); !bytes.Equal(got, want) {
					t.Error("resumed aggregate differs from uninterrupted run")
				}
			})
		}
	}
}

// TestCampaignResumeObs: resume skips surface on the observability
// registry.
func TestCampaignResumeObs(t *testing.T) {
	m := resumeMatrix()
	dir := t.TempDir()
	res1 := runInterrupted(t, m, dir, 2, 2)
	reg := obs.New()
	res2, err := Run(context.Background(), m, Options{Workers: 2, JournalDir: dir, Resume: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign_resume_skips").Value(); got != uint64(res1.Completed) {
		t.Errorf("campaign_resume_skips = %d, interrupted run completed %d", got, res1.Completed)
	}
	if got := reg.Counter("campaign_sessions_done").Value(); got != uint64(res2.Completed-res2.Resumed) {
		t.Errorf("campaign_sessions_done = %d, want %d executed", got, res2.Completed-res2.Resumed)
	}
}

// TestCampaignResumeCorruptReports: resumed reports that were torn or
// bit-flipped on disk fail verification, get re-run, and the final
// aggregate is still byte-identical to an uninterrupted run.
func TestCampaignResumeCorruptReports(t *testing.T) {
	m := resumeMatrix()
	ref, err := Run(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := profileJSON(t, ref)

	dir := t.TempDir()
	full, err := Run(context.Background(), m, Options{Workers: 4, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if full.Completed != m.Size() {
		t.Fatalf("journaled run completed %d/%d", full.Completed, m.Size())
	}
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Tear one report (truncation loses the trailer) and bit-flip
	// another (trailer intact, body diverges).
	torn := filepath.Join(dir, cells[1].ID+".json")
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, cells[6].ID+".json")
	data, err = os.ReadFile(flipped)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x20
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), m, Options{Workers: 2, JournalDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != m.Size()-2 {
		t.Errorf("resumed %d cells, want %d (two corrupt)", res.Resumed, m.Size()-2)
	}
	if len(res.Warnings) != 2 {
		t.Errorf("warnings = %v, want 2", res.Warnings)
	}
	if res.Completed != m.Size() || res.Failed != 0 {
		t.Fatalf("resumed run = %+v", res)
	}
	if got := profileJSON(t, res); !bytes.Equal(got, want) {
		t.Error("aggregate after corrupt-report re-run differs from uninterrupted run")
	}
}

// TestCampaignResumeFailedCellsRerun: journaled failures (with their
// classified attempts) are re-executed on resume.
func TestCampaignResumeFailedCellsRerun(t *testing.T) {
	m := resumeMatrix()
	dir := t.TempDir()
	res1, err := Run(context.Background(), m, Options{
		Workers: 2, JournalDir: dir, Retries: 1, RetryBackoff: time.Millisecond,
		exec: func(ctx context.Context, c Cell) (*profiling.RunReport, error) {
			if c.Index == 2 {
				return nil, Transient(errors.New("persistently flaky"))
			}
			return runCell(ctx, c)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Failed != 1 || res1.Errors[0].Attempts != 2 {
		t.Fatalf("first run = failed %d, errors %v", res1.Failed, res1.Errors)
	}

	// The manifest must carry the classified failure with its attempts.
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var foundFailed bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n")[1:] {
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad manifest line %q: %v", line, err)
		}
		if e.Status == "failed" {
			foundFailed = true
			if e.Index != 2 || e.Class != string(ClassTransient) || e.Attempts != 2 || e.Error == "" {
				t.Errorf("failed entry = %+v", e)
			}
		}
	}
	if !foundFailed {
		t.Fatal("no failed entry journaled")
	}

	res2, err := Run(context.Background(), m, Options{Workers: 2, JournalDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed != m.Size() || res2.Failed != 0 || res2.Resumed != m.Size()-1 {
		t.Fatalf("resume after failure = %+v", res2)
	}
	ref, err := Run(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(profileJSON(t, res2), profileJSON(t, ref)) {
		t.Error("aggregate after failed-cell re-run differs from clean run")
	}
}

// TestCampaignJournalGuards: a fresh journal refuses to clobber an
// existing one; resume refuses a matrix the journal was not written
// for, and a directory without a manifest.
func TestCampaignJournalGuards(t *testing.T) {
	m := resumeMatrix()
	dir := t.TempDir()
	runInterrupted(t, m, dir, 2, 2)

	if _, err := Run(context.Background(), m, Options{Workers: 1, JournalDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Errorf("fresh journal over existing one: err = %v", err)
	}

	m2 := m
	m2.Seed++
	if _, err := Run(context.Background(), m2, Options{Workers: 1, JournalDir: dir, Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "different matrix") {
		t.Errorf("resume with drifted matrix: err = %v", err)
	}

	if _, err := Run(context.Background(), m, Options{Workers: 1, JournalDir: t.TempDir(), Resume: true}); err == nil {
		t.Error("resume without a manifest succeeded")
	}
}

// TestLoadJournalMatrix: the manifest header round-trips the matrix,
// so resume needs no flags.
func TestLoadJournalMatrix(t *testing.T) {
	m := resumeMatrix()
	dir := t.TempDir()
	runInterrupted(t, m, dir, 1, 1)
	got, err := LoadJournalMatrix(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("journal matrix = %+v, want %+v", got, m)
	}
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := got.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if MatrixHash(cells) != MatrixHash(cells2) {
		t.Error("round-tripped matrix expands to a different hash")
	}
}
