package campaign

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

func statusCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Index: i, ID: string(rune('a' + i))}
	}
	return cells
}

// TestStatusNilSafe: every Status method must be a no-op on nil — the
// disabled-telemetry contract of the whole obs plane.
func TestStatusNilSafe(t *testing.T) {
	var s *Status
	s.Begin("c", statusCells(2))
	s.CellStarted(0, 1)
	s.CellRetryScheduled(0, 1, errors.New("x"))
	s.CellCompleted(0, 10)
	s.CellFailedTerminally(1, ClassPermanent, errors.New("x"))
	s.CellResumedFromJournal(0, 10)
	s.CellsAssigned(0, []int{0, 1})
	s.ShardSpawned(0, 42, 0, 2)
	s.ShardBeat(0)
	s.ShardDown(0, "clean")
	s.ShardAnomaly(0, "torn_records", "x")
	if s.Events() != nil {
		t.Error("nil Status.Events() != nil")
	}
	snap := s.Snapshot()
	if snap.Cells != 0 || snap.CellStates == nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Errorf("nil ServeHTTP status %d", rec.Code)
	}
}

// TestStatusCellLifecycle walks one cell through every state and checks
// the scoreboard counts plus the flight-recorder trail.
func TestStatusCellLifecycle(t *testing.T) {
	ev := obs.NewEventLog(64)
	s := NewStatus(ev)
	s.Begin("lifecycle", statusCells(4))

	snap := s.Snapshot()
	if snap.Campaign != "lifecycle" || snap.Cells != 4 || snap.Pending != 4 {
		t.Fatalf("post-Begin snapshot = %+v", snap)
	}
	if snap.ETASec != -1 {
		t.Errorf("ETA with no throughput = %v, want -1", snap.ETASec)
	}

	s.CellStarted(0, 1)
	s.CellRetryScheduled(0, 1, errors.New("flaky"))
	s.CellStarted(0, 2)
	s.CellCompleted(0, 1000)
	s.CellStarted(1, 1)
	s.CellFailedTerminally(1, ClassPermanent, errors.New("bad preset"))
	s.CellResumedFromJournal(2, 500)
	s.CellStarted(3, 1)

	snap = s.Snapshot()
	if snap.Done != 1 || snap.Failed != 1 || snap.Resumed != 1 || snap.Running != 1 || snap.Pending != 0 {
		t.Fatalf("counts = %+v", snap)
	}
	if snap.SimCycles != 1500 {
		t.Errorf("sim cycles = %d, want 1500 (done + resumed)", snap.SimCycles)
	}
	if snap.CellsPerSec <= 0 || snap.ETASec < 0 {
		t.Errorf("throughput math: cells/s=%v eta=%v", snap.CellsPerSec, snap.ETASec)
	}
	if snap.CellStates["a"] != "done" || snap.CellStates["b"] != "failed" ||
		snap.CellStates["c"] != "resumed" || snap.CellStates["d"] != "running" {
		t.Errorf("cell states = %v", snap.CellStates)
	}

	// The flight recorder saw every transition, in order.
	var kinds []string
	for _, e := range ev.Snapshot().Events {
		kinds = append(kinds, e.Kind)
	}
	want := []string{"campaign_begin", "cell_start", "cell_retry", "cell_start",
		"cell_done", "cell_start", "cell_failed", "cell_resumed", "cell_start"}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

// TestStatusShardLifecycle: spawn/beat/down bookkeeping, including the
// running→pending demotion of a dead shard's cells.
func TestStatusShardLifecycle(t *testing.T) {
	s := NewStatus(nil) // no recorder: state tracking must work alone
	s.Begin("shards", statusCells(4))
	s.ShardSpawned(0, 101, 0, 2)
	s.CellsAssigned(0, []int{0, 1})
	s.ShardSpawned(1, 102, 0, 2)
	s.CellsAssigned(1, []int{2, 3})

	snap := s.Snapshot()
	if len(snap.Shards) != 2 || snap.Running != 4 {
		t.Fatalf("post-spawn snapshot = %+v", snap)
	}
	if snap.Shards[0].Shard != 0 || snap.Shards[1].Shard != 1 {
		t.Errorf("shards not ordered: %+v", snap.Shards)
	}
	if !snap.Shards[0].Alive || snap.Shards[0].PID != 101 {
		t.Errorf("shard 0 snap = %+v", snap.Shards[0])
	}

	s.CellCompleted(0, 10)
	s.ShardDown(0, "crash")
	snap = s.Snapshot()
	sh0 := snap.Shards[0]
	if sh0.Alive || sh0.LastNote != "crash" || sh0.Done != 1 {
		t.Errorf("post-crash shard 0 = %+v", sh0)
	}
	// Cell 1 was running on the dead shard: nobody is executing it now.
	if snap.CellStates["b"] != "pending" {
		t.Errorf("dead shard's cell state = %s, want pending", snap.CellStates["b"])
	}
	// Shard 1's cells are untouched.
	if snap.CellStates["c"] != "running" || snap.CellStates["d"] != "running" {
		t.Errorf("live shard's cells perturbed: %v", snap.CellStates)
	}

	// The respawn reclaims the cell and bumps the restart count.
	s.ShardSpawned(0, 103, 1, 1)
	s.CellsAssigned(0, []int{1})
	snap = s.Snapshot()
	if snap.Shards[0].Restarts != 1 || snap.Shards[0].PID != 103 {
		t.Errorf("post-respawn shard 0 = %+v", snap.Shards[0])
	}
	if snap.CellStates["b"] != "running" {
		t.Errorf("reassigned cell state = %s", snap.CellStates["b"])
	}
}

// TestStatusServeHTTP: the endpoint serves the snapshot as JSON that
// decodes back into StatusSnap.
func TestStatusServeHTTP(t *testing.T) {
	s := NewStatus(nil)
	s.Begin("http", statusCells(2))
	s.CellStarted(0, 1)
	s.CellCompleted(0, 42)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	var snap StatusSnap
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/status body not a StatusSnap: %v", err)
	}
	if snap.Campaign != "http" || snap.Done != 1 || snap.Cells != 2 || snap.SimCycles != 42 {
		t.Errorf("served snapshot = %+v", snap)
	}
}
