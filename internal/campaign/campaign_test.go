package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// testMatrix is small enough to run under -race yet spans every
// dimension: 2 seed variants × 2 SoCs × 1 mix × 2 fault specs × 1
// resolution = 8 cells.
func testMatrix() Matrix {
	return Matrix{
		Name:        "test",
		Seed:        7,
		Seeds:       2,
		SoCs:        []string{"TC1797", "TC1767"},
		Mixes:       []string{"lean"},
		Faults:      []string{"clean", "everything"},
		Resolutions: []uint64{500},
		Cycles:      60_000,
	}
}

func TestExpandCanonical(t *testing.T) {
	m := testMatrix()
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 || m.Size() != 8 {
		t.Fatalf("expanded %d cells, Size() = %d, want 8", len(cells), m.Size())
	}
	seeds := map[uint64]bool{}
	ids := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if i > 0 && !(cells[i-1].ID < c.ID) {
			t.Errorf("IDs not in lexical index order: %q !< %q", cells[i-1].ID, c.ID)
		}
		if seeds[c.Run.Seed] {
			t.Errorf("duplicate derived seed %d at cell %s", c.Run.Seed, c.ID)
		}
		seeds[c.Run.Seed] = true
		if ids[c.ID] {
			t.Errorf("duplicate ID %s", c.ID)
		}
		ids[c.ID] = true
		if c.Run.Faults == "everything" && !c.Run.Framed {
			t.Errorf("cell %s injects faults without a framed link", c.ID)
		}
		if err := c.Run.Validate(); err != nil {
			t.Errorf("cell %s invalid: %v", c.ID, err)
		}
	}
	// Expansion is a pure function of the matrix.
	again, err := testMatrix().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("re-expansion differs at cell %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
}

func TestExpandRejectsBadCells(t *testing.T) {
	for _, m := range []Matrix{
		{Mixes: []string{"nope"}},
		{SoCs: []string{"TC9999"}},
		{Faults: []string{"not-a-scenario"}},
		{Resolutions: []uint64{0}},
		{Schema: MatrixSchemaVersion + 1},
	} {
		if _, err := m.Expand(); err == nil {
			t.Errorf("matrix %+v expanded without error", m)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := `{
		"schema_version": 1,
		"name": "smoke",
		"seed": 42,
		"seeds": 2,
		"socs": ["TC1797"],
		"mixes": ["lean", "engine"],
		"faults": ["clean"],
		"resolutions": [500, 1000],
		"cycles": 50000,
		"framed": true
	}`
	m, err := Read(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "smoke" || m.Seed != 42 || m.Size() != 8 || !m.Framed {
		t.Fatalf("parsed matrix = %+v", m)
	}
	if _, err := Read(strings.NewReader(`{"cycels": 1}`)); err == nil {
		t.Error("typo'd field accepted — DisallowUnknownFields not active")
	}
	if _, err := Read(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Error("future schema accepted")
	}
}

func profileJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	if res.Profile == nil {
		t.Fatal("campaign produced no profile")
	}
	var buf bytes.Buffer
	if err := res.Profile.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignDeterministicAcrossWorkers is the tentpole acceptance
// test: the same matrix, run single-threaded and with an oversubscribed
// worker pool, must yield byte-identical canonical aggregate JSON.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	m := testMatrix()
	seq, err := Run(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Completed != 8 || seq.Failed != 0 || seq.Canceled {
		t.Fatalf("sequential run = %+v", seq)
	}
	if seq.SimCycles != 8*m.Cycles {
		t.Errorf("sim cycles = %d, want %d", seq.SimCycles, 8*m.Cycles)
	}
	want := profileJSON(t, seq)

	par, err := Run(context.Background(), m, Options{Workers: 8, Obs: obs.New(), Tracer: obs.NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	if par.Completed != 8 || par.Failed != 0 {
		t.Fatalf("parallel run = %+v", par)
	}
	if got := profileJSON(t, par); !bytes.Equal(got, want) {
		t.Error("aggregate JSON differs between -workers 1 and -workers 8")
	}
	// The lossy half of the matrix must be visibly down-weighted.
	var clean, lossy float64
	var nc, nl int
	for _, r := range par.Profile.Runs {
		if r.FaultPlan == "" {
			clean += r.Weight
			nc++
		} else {
			lossy += r.Weight
			nl++
		}
	}
	if nc != 4 || nl != 4 {
		t.Fatalf("run split = %d clean / %d lossy", nc, nl)
	}
	if lossy/4 >= clean/4 {
		t.Errorf("mean lossy weight %.3f not below clean %.3f", lossy/4, clean/4)
	}
}

func TestCampaignObsAndCallbacks(t *testing.T) {
	m := testMatrix()
	reg := obs.New()
	tr := obs.NewTracer()
	var mu sync.Mutex
	streamed := map[string]uint64{}
	res, err := Run(context.Background(), m, Options{
		Workers: 4, Obs: reg, Tracer: tr,
		OnReport: func(c Cell, r *profiling.RunReport) {
			mu.Lock()
			streamed[c.ID] = r.Cycles
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != res.Completed {
		t.Errorf("OnReport saw %d reports, completed %d", len(streamed), res.Completed)
	}
	if got := reg.Counter("campaign_sessions_done").Value(); got != 8 {
		t.Errorf("campaign_sessions_done = %d", got)
	}
	if got := reg.Counter("campaign_cells_total").Value(); got != 8 {
		t.Errorf("campaign_cells_total = %d", got)
	}
	if reg.Gauge("campaign_sessions_per_sec").Value() <= 0 {
		t.Error("sessions/sec gauge never set")
	}
	if reg.Gauge("campaign_sim_cycles_per_sec").Value() <= 0 {
		t.Error("sim cycles/sec gauge never set")
	}
	util := reg.Gauge("campaign_worker00_util").Value()
	if util <= 0 || util > 1 {
		t.Errorf("worker 0 utilization = %v", util)
	}
	names := tr.SpanNames()
	joined := strings.Join(names, " ")
	for _, want := range []string{"expand", "execute", "aggregate", "cell:"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace lacks %q span (have %v)", want, names)
		}
	}
}

// TestCampaignCancellation cancels after the first completed session:
// the campaign must stop early and still flush the partial aggregate.
func TestCampaignCancellation(t *testing.T) {
	m := testMatrix()
	m.Cycles = 200_000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(ctx, m, Options{
		Workers:  2,
		OnReport: func(Cell, *profiling.RunReport) { cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("result not marked canceled")
	}
	if res.Completed == 0 || res.Completed >= res.Cells {
		t.Fatalf("completed %d of %d — cancellation had no effect", res.Completed, res.Cells)
	}
	if res.Failed != 0 {
		t.Fatalf("canceled cells were misclassified as failures: %v", res.Errors)
	}
	if res.Profile == nil || len(res.Profile.Runs) != res.Completed {
		t.Fatalf("partial aggregate missing or inconsistent: %+v", res.Profile)
	}
}

func TestCampaignZeroCompleted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, testMatrix(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Completed != 0 || res.Profile != nil {
		t.Fatalf("pre-canceled campaign = %+v", res)
	}
}
