// Package campaign turns the paper's fleet methodology into a runnable
// unit: a campaign is a declarative matrix of virtual customers — seed
// variants × SoC presets × workload mixes × fault scenarios × trace
// resolutions — expanded into independent profiling sessions and
// executed across a bounded worker pool, streaming every finished run
// report into the confidence-weighted fleet aggregator.
//
// The contract that makes campaigns usable for architecture decisions
// is determinism: the same matrix produces a byte-identical fleet
// profile regardless of worker count or scheduling. Two mechanisms
// guarantee it. Every cell's seed is derived at expansion time from the
// campaign seed and the cell's matrix index (never from execution
// order), and the aggregator canonicalizes at Finalize (runs sorted by
// ID, parameters by name, statistics folded over that sorted order), so
// arrival order cannot leak into the output.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/runcfg"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MatrixSchemaVersion versions the campaign spec file format.
const MatrixSchemaVersion = 1

// Matrix is the declarative campaign specification. Every dimension
// left empty falls back to a single default entry, so the zero matrix
// (plus a name) is one clean TC1797 engine run.
type Matrix struct {
	Schema int    `json:"schema_version,omitempty"`
	Name   string `json:"name,omitempty"`
	// Seed is the campaign master seed; every cell's run seed is derived
	// from it and the cell index.
	Seed uint64 `json:"seed,omitempty"`
	// Seeds is the number of seed variants per configuration (default 1):
	// the same SoC/mix/fault/resolution profiled as that many distinct
	// virtual customers.
	Seeds       int      `json:"seeds,omitempty"`
	SoCs        []string `json:"socs,omitempty"`        // soc.PresetNames entries; default TC1797
	Mixes       []string `json:"mixes,omitempty"`       // workload.MixNames entries; default engine
	Faults      []string `json:"faults,omitempty"`      // fault.Parse specs; default clean
	Resolutions []uint64 `json:"resolutions,omitempty"` // default 1000
	Cycles      uint64   `json:"cycles,omitempty"`      // horizon per cell; default 1_000_000
	Framed      bool     `json:"framed,omitempty"`
	Degrade     bool     `json:"degrade,omitempty"`
}

// Cell is one expanded campaign entry: a fully resolved run
// configuration plus its stable identity within the campaign.
type Cell struct {
	// Index is the cell's position in canonical expansion order; the
	// cell's seed derives from it, so it is stable across runs.
	Index int `json:"index"`
	// ID is the unique human-readable cell name. The numeric prefix is
	// zero-padded so lexical ID order equals index order.
	ID  string     `json:"id"`
	Mix string     `json:"mix"`
	Run runcfg.Run `json:"run"`
}

// withDefaults returns the matrix with every empty dimension filled in.
func (m Matrix) withDefaults() Matrix {
	def := runcfg.Default()
	if m.Seeds <= 0 {
		m.Seeds = 1
	}
	if len(m.SoCs) == 0 {
		m.SoCs = []string{def.SoC}
	}
	if len(m.Mixes) == 0 {
		m.Mixes = []string{"engine"}
	}
	if len(m.Faults) == 0 {
		m.Faults = []string{"clean"}
	}
	if len(m.Resolutions) == 0 {
		m.Resolutions = []uint64{def.Resolution}
	}
	if m.Cycles == 0 {
		m.Cycles = def.Cycles
	}
	return m
}

// Size returns the number of cells the matrix expands to.
func (m Matrix) Size() int {
	m = m.withDefaults()
	return m.Seeds * len(m.SoCs) * len(m.Mixes) * len(m.Faults) * len(m.Resolutions)
}

// idToken sanitizes a dimension value for use inside a cell ID (k=v
// fault plans contain characters that would make IDs unwieldy).
func idToken(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '_'
	}, s)
}

// Expand resolves the matrix into its cells in canonical order (seed
// variant outermost, then SoC, mix, fault, resolution) and validates
// every cell. Each cell's run seed is forked from the campaign seed by
// cell index, so it depends only on the matrix — not on which worker
// eventually executes the cell, making the campaign's aggregate
// independent of worker count and scheduling.
func (m Matrix) Expand() ([]Cell, error) {
	m = m.withDefaults()
	if m.Schema > MatrixSchemaVersion {
		return nil, fmt.Errorf("campaign: spec schema v%d is newer than supported v%d",
			m.Schema, MatrixSchemaVersion)
	}
	total := m.Size()
	width := len(fmt.Sprint(total - 1))
	if width < 4 {
		width = 4
	}
	master := sim.NewRNG(m.Seed)
	cells := make([]Cell, 0, total)
	for sv := 0; sv < m.Seeds; sv++ {
		for _, socName := range m.SoCs {
			for _, mix := range m.Mixes {
				for _, faults := range m.Faults {
					for _, res := range m.Resolutions {
						idx := len(cells)
						run := runcfg.Run{
							SoC:        socName,
							Seed:       master.Fork(uint64(idx) + 1).Uint64(),
							Cycles:     m.Cycles,
							Resolution: res,
							Faults:     faults,
							Framed:     m.Framed,
							Degrade:    m.Degrade,
						}
						if faults != "" && faults != "clean" {
							// Fault injection hardens the link; mirror the
							// tcprof -faults ⇒ -framed implication.
							run.Framed = true
						}
						cell := Cell{
							Index: idx,
							ID: fmt.Sprintf("c%0*d-%s-%s-%s-r%d-s%d", width, idx,
								idToken(socName), idToken(mix), idToken(faults), res, sv),
							Mix: mix,
							Run: run,
						}
						if _, ok := workload.Mix(mix, 0); !ok {
							return nil, fmt.Errorf("campaign: cell %s: unknown workload mix %q (have %s)",
								cell.ID, mix, strings.Join(workload.MixNames(), ", "))
						}
						if err := run.Validate(); err != nil {
							return nil, fmt.Errorf("campaign: cell %s: %w", cell.ID, err)
						}
						cells = append(cells, cell)
					}
				}
			}
		}
	}
	return cells, nil
}

// Read parses a campaign spec from JSON.
func Read(r io.Reader) (Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Matrix{}, fmt.Errorf("campaign spec: %w", err)
	}
	if m.Schema > MatrixSchemaVersion {
		return Matrix{}, fmt.Errorf("campaign spec: schema v%d is newer than supported v%d",
			m.Schema, MatrixSchemaVersion)
	}
	return m, nil
}

// Load reads a campaign spec file.
func Load(path string) (Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return Matrix{}, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return Matrix{}, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
