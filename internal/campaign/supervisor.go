// Supervisor: the per-cell fault boundary of a campaign. The paper's
// premise is that fleet measurements are not repeatable — a campaign
// that dies halfway loses data that cannot be re-collected — so the
// collection pipeline itself must survive faults, not just model them.
// Every cell attempt runs behind three defenses: recover() converts a
// panicking cell into a classified CellError (with its stack) instead
// of killing the process; a watchdog deadline (Options.CellTimeout)
// stops a wedged simulation at its next cancellation poll instead of
// stranding a worker forever; and transient failures are retried with
// bounded exponential backoff whose jitter comes from the cell's own
// forked RNG, so the retry schedule — like everything else in a
// campaign — is a pure function of the matrix.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/sim"
)

// Class classifies a cell failure for retry policy and reporting.
type Class string

const (
	// ClassTransient marks retryable failures: watchdog timeouts and
	// errors wrapped by Transient. A retry may change the outcome.
	ClassTransient Class = "transient"
	// ClassPermanent marks failures a retry cannot fix —
	// misconfiguration, unknown presets, validation errors.
	ClassPermanent Class = "permanent"
	// ClassPanic marks a panic recovered from the cell's execution.
	ClassPanic Class = "panic"
)

// PanicError is a panic recovered from a cell execution, preserving
// the panic value and the goroutine stack at the point of recovery.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("cell panicked: %v", e.Value) }

// transientError marks an error as retryable for Classify.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the supervisor classifies it as retryable.
// A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// Classify maps a non-nil cell failure to its supervisor class.
func Classify(err error) Class {
	var pe *PanicError
	var te *transientError
	switch {
	case errors.As(err, &pe):
		return ClassPanic
	case errors.As(err, &te), errors.Is(err, context.DeadlineExceeded):
		return ClassTransient
	default:
		return ClassPermanent
	}
}

// CellError records one failed cell together with the supervisor's
// verdict: how the failure is classified, how many times the cell was
// executed, and — for panics — the recovered stack.
type CellError struct {
	Cell     Cell
	Err      error
	Class    Class  // failure classification (transient/permanent/panic)
	Attempts int    // executions performed (1 means the cell was never retried)
	Stack    string // recovered goroutine stack when Class == ClassPanic
}

func (e CellError) Error() string {
	return fmt.Sprintf("%s: [%s, attempt %d] %v", e.Cell.ID, e.Class, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure for errors.Is/As chains.
func (e CellError) Unwrap() error { return e.Err }

// newCellError assembles the classified error for a terminally failed
// cell, lifting the stack out of a recovered panic.
func newCellError(cell Cell, err error, attempts int) CellError {
	ce := CellError{Cell: cell, Err: err, Class: Classify(err), Attempts: attempts}
	var pe *PanicError
	if errors.As(err, &pe) {
		ce.Stack = pe.Stack
	}
	return ce
}

// DefaultRetryBackoff is the base delay before the first retry when
// Options.RetryBackoff is zero.
const DefaultRetryBackoff = 50 * time.Millisecond

// superviseLabel seeds the retry-jitter RNG fork off the cell seed, so
// the backoff schedule never perturbs the cell's own derived streams
// (workload, faults) and stays reproducible across runs.
const superviseLabel = 0xbacc0ff

// execFn executes one cell attempt; tests substitute failure-injecting
// implementations through Options.exec.
type execFn func(context.Context, Cell) (*profiling.RunReport, error)

// supMetrics carries the supervisor's obs counters into the retry loop
// (all nil when observability is disabled).
type supMetrics struct {
	retries  *obs.Counter
	panics   *obs.Counter
	timeouts *obs.Counter
}

// supervise runs one cell under the full supervisor policy — panic
// isolation, per-attempt watchdog, classified retry with seed-derived
// jittered backoff — and returns the report, the number of attempts
// performed, and the terminal error (nil on success). When the
// campaign context itself fires, supervise returns ctx.Err() verbatim;
// callers treat that as cancellation, not as a cell failure.
func supervise(ctx context.Context, cell Cell, opt Options, exec execFn, m supMetrics, tr *obs.Tracer) (*profiling.RunReport, int, error) {
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	jitter := sim.NewRNG(cell.Run.Seed).Fork(superviseLabel)
	for attempt := 1; ; attempt++ {
		name := "cell:" + cell.ID
		if attempt > 1 {
			name = fmt.Sprintf("%s:a%d", name, attempt)
		}
		opt.Status.CellStarted(cell.Index, attempt)
		sp := tr.Start(name, "session")
		report, err := attemptCell(ctx, cell, opt, exec, m)
		sp.End()
		if err == nil {
			return report, attempt, nil
		}
		if ctx.Err() != nil {
			// The campaign, not the cell, stopped this attempt.
			return nil, attempt, ctx.Err()
		}
		if Classify(err) != ClassTransient || attempt > opt.Retries {
			return nil, attempt, err
		}
		m.retries.Inc()
		opt.Status.CellRetryScheduled(cell.Index, attempt, err)
		// Exponential backoff jittered to [0.5, 1.5)× from the cell's
		// forked RNG: reproducible, and concurrent retry storms across
		// workers decorrelate instead of thundering together.
		d := backoff << (attempt - 1)
		d = d/2 + time.Duration(jitter.Float64()*float64(d))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, attempt, ctx.Err()
		case <-t.C:
		}
	}
}

// attemptCell executes a single attempt behind the panic boundary and
// the watchdog deadline. A deadline hit by the attempt's own context —
// while the campaign context is still live — is converted into a
// watchdog error (transient, hence retryable).
func attemptCell(ctx context.Context, cell Cell, opt Options, exec execFn, m supMetrics) (report *profiling.RunReport, err error) {
	actx := ctx
	if opt.CellTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, opt.CellTimeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			m.panics.Inc()
			report = nil
			err = &PanicError{Value: v, Stack: string(debug.Stack())}
		}
	}()
	report, err = exec(actx, cell)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		m.timeouts.Inc()
		err = fmt.Errorf("watchdog: cell exceeded %v: %w", opt.CellTimeout, context.DeadlineExceeded)
	}
	return report, err
}
