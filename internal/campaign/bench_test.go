package campaign

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// benchMatrix is the BENCH_pr3 scaling matrix: 8 independent sessions
// of 50k cycles each, so a pool of up to 8 workers has enough parallel
// slack to show its scaling curve.
func benchMatrix() Matrix {
	return Matrix{
		Name:        "bench",
		Seed:        11,
		Seeds:       2,
		SoCs:        []string{"TC1797"},
		Mixes:       []string{"lean", "engine"},
		Faults:      []string{"clean", "everything"},
		Resolutions: []uint64{1000},
		Cycles:      50_000,
	}
}

// BenchmarkCampaignJournal measures the supervisor's write-ahead
// journal overhead on a clean campaign (the BENCH_pr4 comparison):
// journal=on adds one atomic report write plus one fsync'd manifest
// append per cell, and must stay within the ≤5% envelope.
func BenchmarkCampaignJournal(b *testing.B) {
	m := benchMatrix()
	for _, journal := range []bool{false, true} {
		name := "journal=off"
		if journal {
			name = "journal=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{Workers: 4}
				if journal {
					opt.JournalDir = b.TempDir()
				}
				res, err := Run(context.Background(), m, opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != res.Cells {
					b.Fatalf("completed %d of %d", res.Completed, res.Cells)
				}
				b.ReportMetric(float64(res.SimCycles)/res.Wall.Seconds(), "simcycles/s")
			}
		})
	}
}

// BenchmarkCampaignTelemetry measures the full telemetry plane's
// overhead on a clean campaign (the BENCH_pr7 comparison): with
// telemetry=on every cell transition goes through the obs registry, the
// tracer, the Status scoreboard, and the flight-recorder ring; it must
// stay within the ≤5% envelope of the telemetry=off (all-nil) run.
func BenchmarkCampaignTelemetry(b *testing.B) {
	m := benchMatrix()
	for _, on := range []bool{false, true} {
		name := "telemetry=off"
		if on {
			name = "telemetry=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{Workers: 4}
				if on {
					opt.Obs = obs.New()
					opt.Tracer = obs.NewTracer()
					opt.Status = NewStatus(obs.NewEventLog(obs.DefaultEventLogSize))
				}
				res, err := Run(context.Background(), m, opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != res.Cells {
					b.Fatalf("completed %d of %d", res.Completed, res.Cells)
				}
				b.ReportMetric(float64(res.SimCycles)/res.Wall.Seconds(), "simcycles/s")
			}
		})
	}
}

// BenchmarkCampaignWorkers measures campaign wall time against worker
// count (the BENCH_pr3 scaling curve). On a single-CPU host the curve
// is flat — the workers serialize on GOMAXPROCS — so the speedup
// acceptance is judged on multi-core CI runners.
func BenchmarkCampaignWorkers(b *testing.B) {
	m := benchMatrix()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), m, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if res.Completed != res.Cells {
					b.Fatalf("completed %d of %d", res.Completed, res.Cells)
				}
				b.ReportMetric(float64(res.SimCycles)/res.Wall.Seconds(), "simcycles/s")
			}
		})
	}
}
