package campaign

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/profiling"
	"repro/internal/soc"
)

// TestCampaignBlockDecodeDeterminism runs the same matrix twice — once with
// every cell's SoC using the default decode-once block cache, once with
// per-word reference decode forced — and demands byte-identical canonical
// aggregate JSON. Together with the per-report grid in internal/profiling
// this pins the block-dispatch contract at fleet scale: the decoded-block
// cache is a pure wall-clock optimization with no observable effect on any
// simulated result.
func TestCampaignBlockDecodeDeterminism(t *testing.T) {
	m := testMatrix()
	blocked, err := Run(context.Background(), m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Completed != m.Size() || blocked.Failed != 0 {
		t.Fatalf("block-decode run = %+v", blocked)
	}
	want := profileJSON(t, blocked)

	perWord, err := Run(context.Background(), m, Options{
		Workers: 4,
		exec: func(ctx context.Context, cell Cell) (*profiling.RunReport, error) {
			return runCellWith(ctx, cell, func(s *soc.SoC) {
				s.SetBlockDecode(false)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perWord.Completed != m.Size() || perWord.Failed != 0 {
		t.Fatalf("per-word run = %+v", perWord)
	}
	if got := profileJSON(t, perWord); !bytes.Equal(got, want) {
		t.Error("campaign aggregate differs between decode modes")
	}
}
