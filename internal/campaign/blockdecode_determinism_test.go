package campaign

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/profiling"
	"repro/internal/soc"
)

// TestCampaignBlockDecodeDeterminism runs the same matrix in every decode
// mode — the default chained dispatch, plain block dispatch, and per-word
// reference decode — and demands byte-identical canonical aggregate JSON.
// Together with the per-report grid in internal/profiling this pins the
// dispatch contract at fleet scale: the decoded-block cache and its chain
// links are pure wall-clock optimizations with no observable effect on any
// simulated result.
func TestCampaignBlockDecodeDeterminism(t *testing.T) {
	m := testMatrix()
	chained, err := Run(context.Background(), m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if chained.Completed != m.Size() || chained.Failed != 0 {
		t.Fatalf("chained run = %+v", chained)
	}
	want := profileJSON(t, chained)

	for _, mode := range []soc.DecodeMode{soc.DecodeBlock, soc.DecodeReference} {
		mode := mode
		res, err := Run(context.Background(), m, Options{
			Workers: 4,
			exec: func(ctx context.Context, cell Cell) (*profiling.RunReport, error) {
				return runCellWith(ctx, cell, func(s *soc.SoC) {
					s.SetBlockDecode(mode)
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != m.Size() || res.Failed != 0 {
			t.Fatalf("%v run = %+v", mode, res)
		}
		if got := profileJSON(t, res); !bytes.Equal(got, want) {
			t.Errorf("campaign aggregate differs between %v and chained modes", mode)
		}
	}
}
