// Status: the live campaign scoreboard behind the /status endpoint.
// The obs registry answers "how much work has happened"; Status answers
// the operator's actual questions mid-campaign: which cells are in
// which state, which shards are alive and how stale their heartbeats
// are, what the throughput is and when the campaign will finish. Every
// transition also lands in the flight-recorder EventLog (when one is
// attached), so /status is the current frame and /events is the film.
//
// Like every telemetry surface in this codebase, a nil *Status is
// disabled: all methods are no-ops, so the campaign and shard
// supervisors instrument unconditionally and whether it costs anything
// is decided once, at wiring time. Status never touches reports or the
// aggregate — it observes the campaign, it cannot perturb its
// byte-identical determinism contract.
package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// CellState is one cell's position in the campaign state machine:
//
//	pending → running → done
//	                  ↘ retrying → running → ...
//	                  ↘ failed
//	resumed (terminal: loaded from the journal, never executed here)
//
// Sharded campaigns observe worker cells at ingest granularity — a
// shard-executed cell goes pending → done/failed when its record lands,
// with "running" only for cells the supervisor knows are assigned to a
// live shard.
type CellState string

const (
	CellPending  CellState = "pending"
	CellRunning  CellState = "running"
	CellRetrying CellState = "retrying"
	CellDone     CellState = "done"
	CellFailed   CellState = "failed"
	CellResumed  CellState = "resumed"
)

// Status tracks live campaign state for the /status endpoint.
type Status struct {
	mu     sync.Mutex
	start  time.Time
	name   string
	cells  []cellStat
	shards map[int]*shardStat
	cycles uint64
	events *obs.EventLog
}

type cellStat struct {
	ID       string
	State    CellState
	Attempts int
	Shard    int // -1: in-process tier
}

type shardStat struct {
	PID      int
	Alive    bool
	Restarts int
	Done     int
	LastBeat time.Time
	LastNote string // most recent supervision verdict (crash/hang/...)
}

// NewStatus returns an enabled tracker; events may be nil (state only,
// no flight recorder).
func NewStatus(events *obs.EventLog) *Status {
	return &Status{start: time.Now(), shards: map[int]*shardStat{}, events: events}
}

// Events exposes the attached flight recorder (nil when absent or on a
// nil tracker) so callers can wire the /events endpoint and -events
// persistence off the same ring.
func (s *Status) Events() *obs.EventLog {
	if s == nil {
		return nil
	}
	return s.events
}

// Begin registers the expanded matrix: every cell starts pending. Call
// once, before execution; resumed cells are marked via CellResumedFromJournal.
func (s *Status) Begin(name string, cells []Cell) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start = time.Now()
	s.name = name
	s.cells = make([]cellStat, len(cells))
	for i, c := range cells {
		s.cells[i] = cellStat{ID: c.ID, State: CellPending, Shard: -1}
	}
	s.events.Appendf("campaign_begin", -1, "", "%q: %d cells", name, len(cells))
}

// valid reports whether idx addresses a registered cell.
func (s *Status) valid(idx int) bool { return idx >= 0 && idx < len(s.cells) }

// CellStarted marks one execution attempt of a cell.
func (s *Status) CellStarted(idx, attempt int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(idx) {
		return
	}
	s.cells[idx].State = CellRunning
	s.cells[idx].Attempts = attempt
	if attempt == 1 {
		s.events.Append("cell_start", s.cells[idx].Shard, s.cells[idx].ID, "")
	} else {
		s.events.Appendf("cell_start", s.cells[idx].Shard, s.cells[idx].ID, "attempt %d", attempt)
	}
}

// CellRetryScheduled marks a transient failure awaiting its backoff.
func (s *Status) CellRetryScheduled(idx, attempt int, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(idx) {
		return
	}
	s.cells[idx].State = CellRetrying
	s.cells[idx].Attempts = attempt
	s.events.Appendf("cell_retry", s.cells[idx].Shard, s.cells[idx].ID, "attempt %d: %v", attempt, err)
}

// CellCompleted marks a cell done and folds its simulated cycles into
// the throughput/ETA math.
func (s *Status) CellCompleted(idx int, simCycles uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(idx) {
		return
	}
	s.cells[idx].State = CellDone
	s.cycles += simCycles
	if sh := s.shards[s.cells[idx].Shard]; sh != nil {
		sh.Done++
	}
	s.events.Append("cell_done", s.cells[idx].Shard, s.cells[idx].ID, "")
}

// CellFailedTerminally marks a cell permanently failed.
func (s *Status) CellFailedTerminally(idx int, class Class, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(idx) {
		return
	}
	s.cells[idx].State = CellFailed
	s.events.Appendf("cell_failed", s.cells[idx].Shard, s.cells[idx].ID, "[%s] %v", class, err)
}

// CellResumedFromJournal marks a cell satisfied by a journaled report.
func (s *Status) CellResumedFromJournal(idx int, simCycles uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.valid(idx) {
		return
	}
	s.cells[idx].State = CellResumed
	s.cycles += simCycles
	s.events.Append("cell_resumed", -1, s.cells[idx].ID, "")
}

// CellsAssigned records that a live shard worker now owns these cells:
// they are attributed to the shard and the still-pending ones become
// running. The sharded supervisor calls it at every (re)spawn; the
// state machine is therefore shard-granular for worker cells — the
// supervisor only learns of per-cell completion when the record lands.
func (s *Status) CellsAssigned(shard int, indices []int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, idx := range indices {
		if !s.valid(idx) {
			continue
		}
		s.cells[idx].Shard = shard
		if s.cells[idx].State == CellPending {
			s.cells[idx].State = CellRunning
		}
	}
}

// shard returns (creating on demand) the tracked state of one shard.
// Callers hold s.mu.
func (s *Status) shard(si int) *shardStat {
	sh := s.shards[si]
	if sh == nil {
		sh = &shardStat{}
		s.shards[si] = sh
	}
	return sh
}

// ShardSpawned records one worker spawn (attempt 0 is the initial
// spawn; >0 are respawns).
func (s *Status) ShardSpawned(si, pid, attempt, cells int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shard(si)
	sh.PID = pid
	sh.Alive = true
	sh.Restarts = attempt
	sh.LastBeat = time.Now()
	kind := "shard_spawn"
	if attempt > 0 {
		kind = "shard_respawn"
	}
	s.events.Appendf(kind, si, "", "pid %d, %d cells", pid, cells)
}

// ShardBeat refreshes a shard's liveness stamp (every control line and
// record refreshes it, exactly like the supervisor's hang clock).
func (s *Status) ShardBeat(si int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shard(si).LastBeat = time.Now()
}

// ShardDown records a worker exit with the supervisor's verdict
// ("clean", "crash: ...", "hang: ..."). Cells the dead shard was
// running revert to pending — they are not being executed by anyone
// until a respawn claims them again.
func (s *Status) ShardDown(si int, verdict string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shard(si)
	sh.Alive = false
	sh.LastNote = verdict
	for i := range s.cells {
		if s.cells[i].Shard == si && s.cells[i].State == CellRunning {
			s.cells[i].State = CellPending
		}
	}
	s.events.Append("shard_down", si, "", verdict)
}

// ShardAnomaly counts a supervision anomaly that is not a lifecycle
// transition: torn/dup/orphan records, hang detection.
func (s *Status) ShardAnomaly(si int, kind, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh := s.shards[si]; sh != nil {
		sh.LastNote = kind
	}
	s.events.Append(kind, si, "", detail)
}

// StatusSnap is the /status JSON document.
type StatusSnap struct {
	Campaign   string  `json:"campaign"`
	Cells      int     `json:"cells"`
	Pending    int     `json:"pending"`
	Running    int     `json:"running"`
	Retrying   int     `json:"retrying"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Resumed    int     `json:"resumed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// CellsPerSec is completion throughput (executed + resumed) over
	// elapsed time; ETASec extrapolates it over the remaining cells
	// (-1 when no throughput yet).
	CellsPerSec float64           `json:"cells_per_sec"`
	ETASec      float64           `json:"eta_sec"`
	SimCycles   uint64            `json:"sim_cycles"`
	Shards      []ShardSnap       `json:"shards,omitempty"`
	CellStates  map[string]string `json:"cell_states"`
}

// ShardSnap is one shard's live state in the /status document.
type ShardSnap struct {
	Shard    int     `json:"shard"`
	PID      int     `json:"pid"`
	Alive    bool    `json:"alive"`
	Restarts int     `json:"restarts"`
	Done     int     `json:"done"`
	HBAgeSec float64 `json:"hb_age_sec"`
	LastNote string  `json:"last_note,omitempty"`
}

// Snapshot assembles the current scoreboard. Zero-valued on a nil
// tracker.
func (s *Status) Snapshot() StatusSnap {
	if s == nil {
		return StatusSnap{CellStates: map[string]string{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatusSnap{
		Campaign:   s.name,
		Cells:      len(s.cells),
		SimCycles:  s.cycles,
		ElapsedSec: time.Since(s.start).Seconds(),
		CellStates: make(map[string]string, len(s.cells)),
		ETASec:     -1,
	}
	for _, c := range s.cells {
		snap.CellStates[c.ID] = string(c.State)
		switch c.State {
		case CellPending:
			snap.Pending++
		case CellRunning:
			snap.Running++
		case CellRetrying:
			snap.Retrying++
		case CellDone:
			snap.Done++
		case CellFailed:
			snap.Failed++
		case CellResumed:
			snap.Resumed++
		}
	}
	if completed := snap.Done + snap.Resumed; completed > 0 && snap.ElapsedSec > 0 {
		snap.CellsPerSec = float64(completed) / snap.ElapsedSec
		remaining := snap.Pending + snap.Running + snap.Retrying
		snap.ETASec = float64(remaining) / snap.CellsPerSec
	}
	for si, sh := range s.shards {
		snap.Shards = append(snap.Shards, ShardSnap{
			Shard:    si,
			PID:      sh.PID,
			Alive:    sh.Alive,
			Restarts: sh.Restarts,
			Done:     sh.Done,
			HBAgeSec: time.Since(sh.LastBeat).Seconds(),
			LastNote: sh.LastNote,
		})
	}
	// Deterministic shard ordering for stable output.
	for i := 1; i < len(snap.Shards); i++ {
		for j := i; j > 0 && snap.Shards[j].Shard < snap.Shards[j-1].Shard; j-- {
			snap.Shards[j], snap.Shards[j-1] = snap.Shards[j-1], snap.Shards[j]
		}
	}
	return snap
}

// ServeHTTP implements the /status endpoint: the snapshot as indented
// JSON. Safe on a nil tracker (serves the zero scoreboard).
func (s *Status) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		http.Error(w, fmt.Sprintf("status: %v", err), http.StatusInternalServerError)
	}
}
