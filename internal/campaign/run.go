package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Options tunes campaign execution. The zero value runs with GOMAXPROCS
// workers and no instrumentation.
type Options struct {
	// Workers bounds the worker pool; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// Obs receives campaign throughput metrics (sessions done/failed,
	// sessions/sec, simulated cycles/sec, per-worker utilization). Nil or
	// obs.Disabled switches instrumentation off.
	Obs *obs.Registry
	// Tracer records the campaign phases (expand, execute, aggregate) and
	// one span per session, for about://tracing inspection.
	Tracer *obs.Tracer
	// OnReport, when set, observes every completed run report as it
	// lands, before aggregation. It is called concurrently from worker
	// goroutines and must be safe for parallel use.
	OnReport func(Cell, *profiling.RunReport)
}

// CellError records one failed cell.
type CellError struct {
	Cell Cell
	Err  error
}

func (e CellError) Error() string { return fmt.Sprintf("%s: %v", e.Cell.ID, e.Err) }

// Result is the outcome of a campaign run.
type Result struct {
	Cells     int           // expanded matrix size
	Completed int           // sessions that produced a report
	Failed    int           // sessions that errored (see Errors)
	Canceled  bool          // the context fired before all cells ran
	SimCycles uint64        // total simulated cycles across completed sessions
	Wall      time.Duration // wall-clock duration of the execute phase
	Workers   int           // effective worker count
	// Profile is the canonical fleet aggregate over all completed
	// sessions — the partial aggregate when the campaign was canceled,
	// nil when nothing completed.
	Profile *profiling.FleetProfile
	// Errors lists failed cells in index order.
	Errors []CellError
}

// runCell executes one expanded cell end to end: build the SoC twin and
// workload, run the measurement under ctx, drain and assemble the
// profile, and emit the machine-readable run report.
func runCell(ctx context.Context, cell Cell) (*profiling.RunReport, error) {
	cfg, err := cell.Run.SoCConfig()
	if err != nil {
		return nil, err
	}
	cfg = cfg.WithED()
	spec, ok := workload.Mix(cell.Mix, cell.Run.Seed)
	if !ok {
		return nil, fmt.Errorf("unknown workload mix %q", cell.Mix)
	}
	s := soc.New(cfg, cell.Run.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		return nil, err
	}
	params := append(profiling.StandardParams(), profiling.PCPParams()...)
	profSpec, err := cell.Run.SessionSpec(params)
	if err != nil {
		return nil, err
	}
	sess := profiling.NewSession(s, profSpec)
	if err := sess.Run(ctx, app, cell.Run.Cycles); err != nil {
		return nil, err
	}
	prof, err := sess.Result(spec.Name)
	if err != nil {
		return nil, err
	}
	return sess.RunReport(prof, cell.Run.Seed), nil
}

// Run expands the matrix and executes every cell across the worker
// pool, streaming completed reports into the fleet aggregator. It
// returns an error only for an unusable matrix; per-cell failures are
// collected in Result.Errors. When ctx is canceled, in-flight sessions
// stop at the next cancellation poll, pending cells are skipped, and
// the reports gathered so far are flushed into a partial aggregate.
//
// For a full (uncanceled) campaign the resulting Profile is
// byte-identical for any worker count: cell seeds are fixed at
// expansion time and the aggregator canonicalizes its output.
func Run(ctx context.Context, m Matrix, opt Options) (*Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	expSpan := opt.Tracer.Start("expand", "campaign")
	cells, err := m.Expand()
	expSpan.End()
	if err != nil {
		return nil, err
	}
	res := &Result{Cells: len(cells), Workers: workers}
	if workers > len(cells) {
		workers = len(cells)
		res.Workers = workers
	}

	cellsTotal := opt.Obs.Counter("campaign_cells_total")
	doneCtr := opt.Obs.Counter("campaign_sessions_done")
	failCtr := opt.Obs.Counter("campaign_sessions_failed")
	sessRate := opt.Obs.Gauge("campaign_sessions_per_sec")
	cycleRate := opt.Obs.Gauge("campaign_sim_cycles_per_sec")
	cellsTotal.Add(uint64(len(cells)))

	acc := profiling.NewAccumulator()
	var (
		mu        sync.Mutex // guards errs, simCycles
		errs      []CellError
		simCycles uint64
	)

	feed := make(chan Cell)
	execSpan := opt.Tracer.Start("execute", "campaign")
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			for cell := range feed {
				cellStart := time.Now()
				sp := opt.Tracer.Start("cell:"+cell.ID, "session")
				report, err := runCell(ctx, cell)
				sp.End()
				busy += time.Since(cellStart)
				switch {
				case err == nil:
					if opt.OnReport != nil {
						opt.OnReport(cell, report)
					}
					acc.Add(cell.ID, report)
					doneCtr.Inc()
					mu.Lock()
					simCycles += report.Cycles
					mu.Unlock()
					elapsed := time.Since(start).Seconds()
					if elapsed > 0 {
						mu.Lock()
						cy := simCycles
						mu.Unlock()
						sessRate.Set(float64(acc.Len()) / elapsed)
						cycleRate.Set(float64(cy) / elapsed)
					}
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					// Canceled mid-cell: neither completed nor failed.
				default:
					failCtr.Inc()
					mu.Lock()
					errs = append(errs, CellError{Cell: cell, Err: err})
					mu.Unlock()
				}
			}
			if wall := time.Since(start); wall > 0 {
				opt.Obs.Gauge(fmt.Sprintf("campaign_worker%02d_util", w)).
					Set(busy.Seconds() / wall.Seconds())
			}
		}(w)
	}

	// Feed cells in index order; stop feeding as soon as ctx fires (the
	// workers themselves stop their in-flight session at the next poll).
feedLoop:
	for _, cell := range cells {
		select {
		case feed <- cell:
		case <-ctx.Done():
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	res.Wall = time.Since(start)
	execSpan.End()

	res.Canceled = ctx.Err() != nil
	res.Completed = acc.Len()
	res.Failed = len(errs)
	sort.Slice(errs, func(i, j int) bool { return errs[i].Cell.Index < errs[j].Cell.Index })
	res.Errors = errs
	res.SimCycles = simCycles

	if res.Completed > 0 {
		aggSpan := opt.Tracer.Start("aggregate", "campaign")
		fp, err := acc.Finalize()
		aggSpan.End()
		if err != nil {
			return nil, err
		}
		res.Profile = fp
	}
	return res, nil
}
