package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Options tunes campaign execution. The zero value runs with GOMAXPROCS
// workers, no instrumentation, no supervision limits, and no journal.
type Options struct {
	// Workers bounds the worker pool; <=0 means runtime.GOMAXPROCS(0).
	Workers int
	// Obs receives campaign throughput metrics (sessions done/failed,
	// sessions/sec, simulated cycles/sec, per-worker utilization) and the
	// supervisor counters (retries, panics, timeouts, resume skips). Nil
	// or obs.Disabled switches instrumentation off.
	Obs *obs.Registry
	// Tracer records the campaign phases (expand, journal, execute,
	// aggregate) and one span per cell attempt, for about://tracing
	// inspection.
	Tracer *obs.Tracer
	// OnReport, when set, observes every completed run report as it
	// lands, before aggregation. It is called concurrently from worker
	// goroutines and must be safe for parallel use. Reports loaded from a
	// resumed journal are not re-announced.
	OnReport func(Cell, *profiling.RunReport)
	// CellTimeout is the per-attempt watchdog deadline, enforced with
	// context.WithTimeout so a wedged simulation stops at its next
	// cancellation poll instead of stranding a worker. 0 disables it.
	CellTimeout time.Duration
	// Retries bounds how many times a transiently failed cell is re-run
	// (a cell executes at most Retries+1 times). Only ClassTransient
	// failures — watchdog timeouts, errors wrapped by Transient — are
	// retried; panics and permanent errors fail fast.
	Retries int
	// RetryBackoff is the base delay before the first retry, doubled per
	// attempt and jittered from the cell's forked RNG. 0 means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Status, when set, receives live campaign state transitions (cell
	// state machine, shard lifecycle) for the /status endpoint and the
	// flight-recorder event log. Nil disables the scoreboard; it never
	// influences execution or the aggregate.
	Status *Status
	// JournalDir, when set, write-ahead journals the campaign into this
	// directory: every completed report persisted atomically with a
	// CRC-32 trailer, plus a campaign.journal manifest of per-cell
	// status/attempts, so an interrupted campaign can resume.
	JournalDir string
	// Resume validates the journal already in JournalDir against the
	// expanded matrix, skips journaled-complete cells (their reports are
	// loaded and verified), and re-runs failed and missing ones.
	Resume bool

	// exec overrides cell execution; tests inject panics, hangs, and
	// transient failures through it. Nil means the real runCell.
	exec execFn
}

// Result is the outcome of a campaign run.
type Result struct {
	Cells     int           // expanded matrix size
	Completed int           // sessions in the aggregate (executed + resumed)
	Failed    int           // sessions that errored terminally (see Errors)
	Resumed   int           // journaled-complete cells skipped by Resume
	Retried   int           // total extra attempts across all cells
	Restarts  int           // shard worker respawns (sharded campaigns only)
	Torn      int           // torn/corrupt records dropped at ingest (sharded campaigns only)
	Dup       int           // duplicate records dropped idempotently (sharded campaigns only)
	Canceled  bool          // the context fired before all cells ran
	SimCycles uint64        // total simulated cycles across completed sessions
	Wall      time.Duration // wall-clock duration of the execute phase
	Workers   int           // effective worker count (per shard when sharded)
	// Profile is the canonical fleet aggregate over all completed
	// sessions — the partial aggregate when the campaign was canceled,
	// nil when nothing completed.
	Profile *profiling.FleetProfile
	// Errors lists terminally failed cells in index order, classified and
	// with their attempt counts.
	Errors []CellError
	// Warnings lists non-fatal journal anomalies (corrupt resumed report
	// re-run, manifest append failure) in the order they were noticed.
	Warnings []string
}

// runCell executes one expanded cell end to end: build the SoC twin and
// workload, run the measurement under ctx, drain and assemble the
// profile, and emit the machine-readable run report.
func runCell(ctx context.Context, cell Cell) (*profiling.RunReport, error) {
	return runCellWith(ctx, cell, nil)
}

// runCellWith is runCell with a hook applied to the freshly built SoC
// before the session runs; the wake-scheduler determinism test uses it to
// force the reference (unscheduled) kernel mode per cell.
func runCellWith(ctx context.Context, cell Cell, tune func(*soc.SoC)) (*profiling.RunReport, error) {
	cfg, err := cell.Run.SoCConfig()
	if err != nil {
		return nil, err
	}
	cfg = cfg.WithED()
	spec, ok := workload.Mix(cell.Mix, cell.Run.Seed)
	if !ok {
		return nil, fmt.Errorf("unknown workload mix %q", cell.Mix)
	}
	s := soc.New(cfg, cell.Run.Seed)
	if tune != nil {
		tune(s)
	}
	app, err := workload.Build(s, spec)
	if err != nil {
		return nil, err
	}
	params := append(profiling.StandardParams(), profiling.PCPParams()...)
	profSpec, err := cell.Run.SessionSpec(params)
	if err != nil {
		return nil, err
	}
	sess := profiling.NewSession(s, profSpec)
	if err := sess.Run(ctx, app, cell.Run.Cycles); err != nil {
		return nil, err
	}
	prof, err := sess.Result(spec.Name)
	if err != nil {
		return nil, err
	}
	return sess.RunReport(prof, cell.Run.Seed), nil
}

// Run expands the matrix and executes every cell across the worker
// pool under the supervisor, streaming completed reports into the
// fleet aggregator (and the journal, when enabled). It returns an
// error only for an unusable matrix or journal; per-cell failures are
// classified and collected in Result.Errors. When ctx is canceled,
// in-flight sessions stop at the next cancellation poll, pending cells
// are skipped, and the reports gathered so far are flushed into a
// partial aggregate.
//
// For a full (uncanceled) campaign the resulting Profile is
// byte-identical for any worker count — and across any
// interrupt/resume split: cell seeds are fixed at expansion time and
// the aggregator canonicalizes its output, so it cannot matter which
// cells were loaded from the journal and which were executed.
func Run(ctx context.Context, m Matrix, opt Options) (*Result, error) {
	expSpan := opt.Tracer.Start("expand", "campaign")
	cells, err := m.Expand()
	expSpan.End()
	if err != nil {
		return nil, err
	}
	res := &Result{Cells: len(cells)}
	opt.Obs.Counter("campaign_cells_total").Add(uint64(len(cells)))
	opt.Status.Begin(m.Name, cells)

	acc := profiling.NewAccumulator()
	var simCycles0 uint64

	// Journal setup: open fresh, or resume — validating the manifest
	// against this expansion and pre-loading journaled-complete reports
	// into the aggregate.
	var jr *Journal
	pending := cells
	if opt.JournalDir != "" {
		jSpan := opt.Tracer.Start("journal", "campaign")
		hash := MatrixHash(cells)
		if opt.Resume {
			var resumed map[int]*profiling.RunReport
			jr, resumed, res.Warnings, err = resumeJournal(opt.JournalDir, hash, cells)
			if err == nil {
				resumeSkips := opt.Obs.Counter("campaign_resume_skips")
				pending = make([]Cell, 0, len(cells))
				for _, cell := range cells {
					if rep, ok := resumed[cell.Index]; ok {
						acc.Add(cell.ID, rep)
						resumeSkips.Inc()
						res.Resumed++
						simCycles0 += rep.Cycles
						opt.Status.CellResumedFromJournal(cell.Index, rep.Cycles)
						continue
					}
					pending = append(pending, cell)
				}
			}
		} else {
			jr, err = openJournal(opt.JournalDir, m, hash, cells)
		}
		jSpan.End()
		if err != nil {
			return nil, err
		}
		defer jr.Close()
	}
	if err := executeCells(ctx, pending, opt, jr, acc, res, simCycles0); err != nil {
		return nil, err
	}
	return res, nil
}

// RunCells executes an explicit, already-expanded cell subset under the
// full supervisor policy — panic isolation, watchdog deadlines, and
// classified retries. It is the shard worker's entry point: the cells
// keep the indices and derived seeds their coordinating campaign
// expanded, so a report computed here is byte-identical to one computed
// in-process. Journaling stays with the campaign-tier coordinator, so
// JournalDir/Resume are rejected.
func RunCells(ctx context.Context, cells []Cell, opt Options) (*Result, error) {
	if opt.JournalDir != "" || opt.Resume {
		return nil, fmt.Errorf("campaign: RunCells does not journal (the campaign-tier supervisor owns the journal)")
	}
	res := &Result{Cells: len(cells)}
	opt.Obs.Counter("campaign_cells_total").Add(uint64(len(cells)))
	if err := executeCells(ctx, cells, opt, nil, profiling.NewAccumulator(), res, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// executeCells runs the pending cells across the bounded worker pool
// under the per-cell supervisor, streaming every completed report into
// acc (and jr, when journaling), then finalizes the canonical aggregate
// into res. simCycles0 carries cycles pre-loaded from a resumed
// journal so throughput gauges and totals stay truthful.
func executeCells(ctx context.Context, pending []Cell, opt Options, jr *Journal, acc *profiling.Accumulator, res *Result, simCycles0 uint64) error {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	res.Workers = workers

	doneCtr := opt.Obs.Counter("campaign_sessions_done")
	failCtr := opt.Obs.Counter("campaign_sessions_failed")
	sessRate := opt.Obs.Gauge("campaign_sessions_per_sec")
	cycleRate := opt.Obs.Gauge("campaign_sim_cycles_per_sec")
	met := supMetrics{
		retries:  opt.Obs.Counter("campaign_retries"),
		panics:   opt.Obs.Counter("campaign_panics"),
		timeouts: opt.Obs.Counter("campaign_timeouts"),
	}

	exec := opt.exec
	if exec == nil {
		exec = runCell
	}

	var (
		mu        sync.Mutex // guards errs, warns, simCycles, retried
		errs      []CellError
		warns     = res.Warnings
		simCycles = simCycles0
		retried   int
	)

	feed := make(chan Cell)
	execSpan := opt.Tracer.Start("execute", "campaign")
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy time.Duration
			for cell := range feed {
				cellStart := time.Now()
				report, attempts, err := supervise(ctx, cell, opt, exec, met, opt.Tracer)
				busy += time.Since(cellStart)
				if attempts > 1 {
					mu.Lock()
					retried += attempts - 1
					mu.Unlock()
				}
				if err == nil && jr != nil {
					if jerr := jr.RecordDone(cell, attempts, report); jerr != nil {
						// A report we cannot persist is a failed cell:
						// counting it complete would let a resume silently
						// drop it from the fleet.
						err = fmt.Errorf("journal: %w", jerr)
						report = nil
					}
				}
				switch {
				case err == nil:
					if opt.OnReport != nil {
						opt.OnReport(cell, report)
					}
					acc.Add(cell.ID, report)
					doneCtr.Inc()
					opt.Status.CellCompleted(cell.Index, report.Cycles)
					mu.Lock()
					simCycles += report.Cycles
					cy := simCycles
					mu.Unlock()
					if elapsed := time.Since(start).Seconds(); elapsed > 0 {
						sessRate.Set(float64(acc.Len()) / elapsed)
						cycleRate.Set(float64(cy) / elapsed)
					}
				case ctx.Err() != nil && errors.Is(err, ctx.Err()):
					// Canceled mid-cell by the campaign: neither completed
					// nor failed; a journaled resume re-runs it.
				default:
					failCtr.Inc()
					ce := newCellError(cell, err, attempts)
					opt.Status.CellFailedTerminally(cell.Index, ce.Class, err)
					if jr != nil {
						if jerr := jr.RecordFailed(ce); jerr != nil {
							mu.Lock()
							warns = append(warns, fmt.Sprintf("cell %s: failure not journaled: %v", cell.ID, jerr))
							mu.Unlock()
						}
					}
					mu.Lock()
					errs = append(errs, ce)
					mu.Unlock()
				}
			}
			if wall := time.Since(start); wall > 0 {
				opt.Obs.Gauge(fmt.Sprintf("campaign_worker%02d_util", w)).
					Set(busy.Seconds() / wall.Seconds())
			}
		}(w)
	}

	// Feed pending cells in index order; stop feeding as soon as ctx
	// fires (the workers themselves stop their in-flight session at the
	// next poll).
feedLoop:
	for _, cell := range pending {
		select {
		case feed <- cell:
		case <-ctx.Done():
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	res.Wall = time.Since(start)
	execSpan.End()

	res.Canceled = ctx.Err() != nil
	res.Completed = acc.Len()
	res.Failed = len(errs)
	res.Retried = retried
	sort.Slice(errs, func(i, j int) bool { return errs[i].Cell.Index < errs[j].Cell.Index })
	res.Errors = errs
	res.Warnings = warns
	res.SimCycles = simCycles

	if res.Completed > 0 {
		aggSpan := opt.Tracer.Start("aggregate", "campaign")
		fp, err := acc.Finalize()
		aggSpan.End()
		if err != nil {
			return err
		}
		res.Profile = fp
	}
	return nil
}
