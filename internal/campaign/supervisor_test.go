package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// fakeReport synthesizes a minimal deterministic run report for
// supervisor tests that inject their own cell execution.
func fakeReport(cell Cell) *profiling.RunReport {
	return &profiling.RunReport{
		Schema: profiling.ReportSchemaVersion,
		App:    "fake", SoC: cell.Run.SoC, Seed: cell.Run.Seed,
		Cycles: cell.Run.Cycles, Resolution: cell.Run.Resolution,
		Confidence: 1,
		Params: map[string]profiling.ParamStats{
			"ipc": {Mean: float64(cell.Index), Min: 0, Max: 10, Windows: 8, Confidence: 1},
		},
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{errors.New("unknown SoC"), ClassPermanent},
		{Transient(errors.New("flaky")), ClassTransient},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("flaky"))), ClassTransient},
		{fmt.Errorf("watchdog: %w", context.DeadlineExceeded), ClassTransient},
		{&PanicError{Value: "boom", Stack: "stack"}, ClassPanic},
		{fmt.Errorf("cell: %w", &PanicError{Value: 1}), ClassPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
}

// TestCampaignSupervisorPanicAndHang is the acceptance scenario: a
// campaign with one panicking cell and one hanging cell completes all
// other cells (through the real session pipeline) and reports both
// failures as classified CellErrors — the panic with its stack, the
// hang with the attempt count of its retried watchdog timeouts.
func TestCampaignSupervisorPanicAndHang(t *testing.T) {
	m := testMatrix()
	m.Cycles = 20_000
	reg := obs.New()
	res, err := Run(context.Background(), m, Options{
		Workers:      4,
		Obs:          reg,
		CellTimeout:  time.Second,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		exec: func(ctx context.Context, c Cell) (*profiling.RunReport, error) {
			switch c.Index {
			case 3:
				panic("injected boom")
			case 5:
				<-ctx.Done() // a wedged cell: only the watchdog gets it back
				return nil, ctx.Err()
			}
			return runCell(ctx, c)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 || res.Failed != 2 || res.Canceled {
		t.Fatalf("result = completed %d, failed %d, canceled %v; want 6/2/false",
			res.Completed, res.Failed, res.Canceled)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("errors = %v", res.Errors)
	}
	pe, he := res.Errors[0], res.Errors[1]
	if pe.Cell.Index != 3 || pe.Class != ClassPanic || pe.Attempts != 1 {
		t.Errorf("panic cell error = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "injected boom") {
		t.Errorf("panic error message lost the panic value: %v", pe)
	}
	if !strings.Contains(pe.Stack, "attemptCell") {
		t.Errorf("panic stack not captured:\n%s", pe.Stack)
	}
	if he.Cell.Index != 5 || he.Class != ClassTransient || he.Attempts != 2 {
		t.Errorf("hung cell error = %+v", he)
	}
	if !errors.Is(he.Err, context.DeadlineExceeded) {
		t.Errorf("hung cell error does not unwrap to DeadlineExceeded: %v", he.Err)
	}
	if got := reg.Counter("campaign_panics").Value(); got != 1 {
		t.Errorf("campaign_panics = %d", got)
	}
	if got := reg.Counter("campaign_timeouts").Value(); got != 2 {
		t.Errorf("campaign_timeouts = %d", got)
	}
	if got := reg.Counter("campaign_retries").Value(); got != 1 {
		t.Errorf("campaign_retries = %d", got)
	}
	if res.Retried != 1 {
		t.Errorf("Retried = %d, want 1", res.Retried)
	}
	// The healthy cells' aggregate must be present and exclude the dead.
	if res.Profile == nil || len(res.Profile.Runs) != 6 {
		t.Fatalf("profile missing or wrong size: %+v", res.Profile)
	}
}

// TestCampaignSupervisorTransientRetry verifies that a transiently
// failing cell succeeds on a later attempt, with every attempt counted
// and the rest of the campaign unaffected.
func TestCampaignSupervisorTransientRetry(t *testing.T) {
	m := testMatrix()
	var mu sync.Mutex
	attempts := map[int]int{}
	reg := obs.New()
	res, err := Run(context.Background(), m, Options{
		Workers:      2,
		Obs:          reg,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		exec: func(ctx context.Context, c Cell) (*profiling.RunReport, error) {
			mu.Lock()
			attempts[c.Index]++
			n := attempts[c.Index]
			mu.Unlock()
			if c.Index == 2 && n <= 2 {
				return nil, Transient(errors.New("flaky link"))
			}
			return fakeReport(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Cells || res.Failed != 0 {
		t.Fatalf("completed %d/%d, failed %d (errors %v)", res.Completed, res.Cells, res.Failed, res.Errors)
	}
	if attempts[2] != 3 {
		t.Errorf("flaky cell executed %d times, want 3", attempts[2])
	}
	if got := reg.Counter("campaign_retries").Value(); got != 2 {
		t.Errorf("campaign_retries = %d, want 2", got)
	}
	if res.Retried != 2 {
		t.Errorf("Retried = %d, want 2", res.Retried)
	}
}

// TestCampaignSupervisorRetryBudgetExhausted: a cell that stays
// transiently broken fails terminally after Retries+1 attempts, still
// classified transient.
func TestCampaignSupervisorRetryBudgetExhausted(t *testing.T) {
	m := testMatrix()
	res, err := Run(context.Background(), m, Options{
		Workers:      2,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		exec: func(ctx context.Context, c Cell) (*profiling.RunReport, error) {
			if c.Index == 1 {
				return nil, Transient(errors.New("always flaky"))
			}
			return fakeReport(c), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || len(res.Errors) != 1 {
		t.Fatalf("failed %d, errors %v", res.Failed, res.Errors)
	}
	ce := res.Errors[0]
	if ce.Class != ClassTransient || ce.Attempts != 3 {
		t.Errorf("exhausted cell error = %+v, want transient after 3 attempts", ce)
	}
}

// TestCampaignSupervisorCancelDuringBackoff: a campaign canceled while
// a cell waits out its retry backoff stops promptly and counts the
// cell as canceled, not failed.
func TestCampaignSupervisorCancelDuringBackoff(t *testing.T) {
	m := testMatrix()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Run(ctx, m, Options{
		Workers:      1,
		Retries:      5,
		RetryBackoff: time.Hour, // without prompt cancellation the test times out
		exec: func(ctx context.Context, c Cell) (*profiling.RunReport, error) {
			time.AfterFunc(10*time.Millisecond, cancel)
			return nil, Transient(errors.New("flaky"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Failed != 0 {
		t.Fatalf("canceled %v, failed %d (errors %v)", res.Canceled, res.Failed, res.Errors)
	}
}
