package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm assembles text assembly into a program. The syntax is exactly
// what Instr.String and the disassembler produce, plus labels and
// directives:
//
//	; comment        # comment
//	start:                     ; label definition
//	    movi r1, 10
//	    movh r2, 0x1234
//	    add  r3, r1, r2
//	    ldw  r4, [r3+8]
//	    stw  [r3+8], r4
//	    beq  r1, r2, start     ; label or numeric word offset (+3 / -3)
//	    loop r5, start
//	    j    start
//	    mfcr r1, csr0
//	    mtcr csr0, r1
//	    .org  0x80000000       ; load address (before any instruction)
//	    .word 0xDEADBEEF       ; raw data word
//
// base is used when no .org directive appears.
func ParseAsm(src string, base uint32) (*Program, error) {
	var a *Asm
	ensure := func() *Asm {
		if a == nil {
			a = NewAsm(base)
		}
		return a
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && isIdent(line[:i]) {
				ensure().Label(line[:i])
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		if err := parseLine(ensure, line, &base); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	if a == nil {
		a = NewAsm(base)
	}
	return a.Assemble()
}

func stripComment(s string) string {
	for _, c := range []string{";", "#", "//"} {
		if i := strings.Index(s, c); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseLine assembles one mnemonic line.
func parseLine(ensure func() *Asm, line string, base *uint32) error {
	mn, rest, _ := strings.Cut(line, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	args := splitArgs(rest)

	switch mn {
	case ".org":
		if len(args) != 1 {
			return fmt.Errorf(".org needs one operand")
		}
		v, err := num(args[0])
		if err != nil {
			return err
		}
		*base = uint32(v)
		a := ensure()
		if a.PC() != a.base {
			return fmt.Errorf(".org after instructions")
		}
		a.base = uint32(v)
		return nil
	case ".word":
		if len(args) != 1 {
			return fmt.Errorf(".word needs one operand")
		}
		v, err := num(args[0])
		if err != nil {
			return err
		}
		a := ensure()
		a.words = append(a.words, uint32(v))
		return nil
	}

	a := ensure()
	switch mn {
	case "nop":
		a.Nop()
	case "rfe":
		a.Rfe()
	case "halt":
		a.Halt()
	case "dbg":
		a.Dbg()

	case "movi", "movh", "oril":
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		v, err := numArg(args, 1)
		if err != nil {
			return err
		}
		switch mn {
		case "movi":
			a.Movi(rd, int32(v))
		case "movh":
			a.emit(Instr{Op: OpMOVH, Rd: uint8(rd), Imm: int32(v & 0xFFFF)})
		case "oril":
			a.emit(Instr{Op: OpORIL, Rd: uint8(rd), Imm: int32(v & 0xFFFF)})
		}
	case "movw": // pseudo: load full 32-bit constant
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		v, err := numArg(args, 1)
		if err != nil {
			return err
		}
		a.Movw(rd, uint32(v))

	case "add", "sub", "and", "or", "xor", "shl", "shr", "sra", "mul", "mac", "slt", "sltu":
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		ra, err := regArg(args, 1)
		if err != nil {
			return err
		}
		rb, err := regArg(args, 2)
		if err != nil {
			return err
		}
		ops := map[string]Op{"add": OpADD, "sub": OpSUB, "and": OpAND, "or": OpOR,
			"xor": OpXOR, "shl": OpSHL, "shr": OpSHR, "sra": OpSRA,
			"mul": OpMUL, "mac": OpMAC, "slt": OpSLT, "sltu": OpSLTU}
		a.Op3(ops[mn], rd, ra, rb)

	case "addi", "andi", "ori", "xori", "shli", "shri", "slti":
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		ra, err := regArg(args, 1)
		if err != nil {
			return err
		}
		v, err := numArg(args, 2)
		if err != nil {
			return err
		}
		ops := map[string]Op{"addi": OpADDI, "andi": OpANDI, "ori": OpORI,
			"xori": OpXORI, "shli": OpSHLI, "shri": OpSHRI, "slti": OpSLTI}
		a.OpI(ops[mn], rd, ra, int32(v))

	case "ldw", "ldb", "lea":
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		ra, off, err := memArg(args, 1)
		if err != nil {
			return err
		}
		switch mn {
		case "ldw":
			a.Ldw(rd, ra, off)
		case "ldb":
			a.Ldb(rd, ra, off)
		case "lea":
			a.Lea(rd, ra, off)
		}

	case "stw", "stb":
		ra, off, err := memArg(args, 0)
		if err != nil {
			return err
		}
		rd, err := regArg(args, 1)
		if err != nil {
			return err
		}
		if mn == "stw" {
			a.Stw(rd, ra, off)
		} else {
			a.Stb(rd, ra, off)
		}

	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		ra, err := regArg(args, 0)
		if err != nil {
			return err
		}
		rb, err := regArg(args, 1)
		if err != nil {
			return err
		}
		ops := map[string]Op{"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT,
			"bge": OpBGE, "bltu": OpBLTU, "bgeu": OpBGEU}
		return branchTarget(a, args, 2, func(label string) {
			a.Br(ops[mn], ra, rb, label)
		}, func(off int32) {
			a.emit(Instr{Op: ops[mn], Ra: uint8(ra), Rb: uint8(rb), Imm: off})
		})

	case "loop":
		ra, err := regArg(args, 0)
		if err != nil {
			return err
		}
		return branchTarget(a, args, 1, func(label string) {
			a.Loop(ra, label)
		}, func(off int32) {
			a.emit(Instr{Op: OpLOOP, Ra: uint8(ra), Imm: off})
		})

	case "j", "call":
		op := OpJ
		emitL := a.J
		if mn == "call" {
			op = OpCALL
			emitL = a.Call
		}
		return branchTarget(a, args, 0, func(label string) {
			emitL(label)
		}, func(off int32) {
			a.emit(Instr{Op: op, Off24: off})
		})

	case "jr":
		ra, err := regArg(args, 0)
		if err != nil {
			return err
		}
		a.Jr(ra)
	case "ret":
		a.Ret()

	case "mfcr":
		rd, err := regArg(args, 0)
		if err != nil {
			return err
		}
		n, err := csrArg(args, 1)
		if err != nil {
			return err
		}
		a.Mfcr(rd, n)
	case "mtcr":
		n, err := csrArg(args, 0)
		if err != nil {
			return err
		}
		ra, err := regArg(args, 1)
		if err != nil {
			return err
		}
		a.Mtcr(n, ra)

	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func num(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 33)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

func regArg(args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	s := strings.ToLower(args[i])
	if s == "sp" {
		return RegSP, nil
	}
	if s == "lr" {
		return RegLink, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	return n, nil
}

func numArg(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	return num(args[i])
}

func csrArg(args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	s := strings.ToLower(args[i])
	if !strings.HasPrefix(s, "csr") {
		return 0, fmt.Errorf("bad csr %q", args[i])
	}
	n, err := strconv.Atoi(s[3:])
	if err != nil || n < 0 || n >= NumCSRs {
		return 0, fmt.Errorf("bad csr %q", args[i])
	}
	return n, nil
}

// memArg parses "[rA+off]", "[rA-off]" or "[rA]".
func memArg(args []string, i int) (reg int, off int32, err error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing operand %d", i+1)
	}
	s := strings.TrimSpace(args[i])
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	s = s[1 : len(s)-1]
	sep := strings.IndexAny(s, "+-")
	regStr, offStr := s, ""
	if sep > 0 {
		regStr, offStr = s[:sep], s[sep:]
	}
	reg, err = regArg([]string{strings.TrimSpace(regStr)}, 0)
	if err != nil {
		return 0, 0, err
	}
	if offStr != "" {
		v, err := num(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = int32(v)
	}
	return reg, off, nil
}

// branchTarget accepts either a label name or a signed numeric word offset.
func branchTarget(a *Asm, args []string, i int, byLabel func(string), byOffset func(int32)) error {
	if i >= len(args) {
		return fmt.Errorf("missing branch target")
	}
	s := strings.TrimSpace(args[i])
	if isIdent(s) {
		byLabel(s)
		return nil
	}
	v, err := num(s)
	if err != nil {
		return fmt.Errorf("bad branch target %q", s)
	}
	byOffset(int32(v))
	return nil
}
