package isa

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestDecoderInstrument pins the decoder's obs export: every cache event
// increments its counter, a nil registry is a no-op, and the flat
// isa_block_* names pass through Prometheus exposition unfolded (they
// carry no shard/worker ordinal to fold into a label).
func TestDecoderInstrument(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpJ, Off24: 1},
		{Op: OpHALT},
	})
	w := memWord(base, words)

	reg := obs.New()
	d := NewDecoder(8)
	d.Instrument(reg)

	a := d.Block(base, w)      // miss
	d.Block(base, w)           // hit
	d.Next(a, base+4, w)       // miss + chain link
	d.InvalidateRange(base, 4) // invalidation + sever

	want := map[string]uint64{
		"isa_block_hits":          1,
		"isa_block_misses":        2,
		"isa_block_invalidations": 1,
		"isa_block_chain_links":   1,
		"isa_block_chain_severs":  1,
	}
	snap := reg.Snapshot()
	got := map[string]uint64{}
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 ||
		st.ChainLinks != 1 || st.ChainSevers != 1 {
		t.Errorf("stats disagree with obs export: %+v", st)
	}

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for name := range want {
		if !strings.Contains(text, name+" ") {
			t.Errorf("Prometheus exposition missing flat metric %q:\n%s", name, text)
		}
	}
	if strings.Contains(text, `isa_block_hits{`) {
		t.Errorf("flat decoder metric was label-folded:\n%s", text)
	}
}

// TestDecoderUninstrumented proves an uninstrumented decoder (nil counter
// handles) runs every stat path without panicking.
func TestDecoderUninstrumented(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpJ, Off24: 1},
		{Op: OpHALT},
	})
	w := memWord(base, words)
	d := NewDecoder(2)
	a := d.Block(base, w)
	d.Block(base, w)
	d.Next(a, base+4, w)
	d.Block(base+0x100, w) // forces an eviction at cache size 2
	d.InvalidateAll()
	d.Instrument(nil) // nil registry: handles stay nil no-ops
	d.Block(base, w)
}
