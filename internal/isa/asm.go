package isa

import (
	"fmt"
	"sort"
)

// Asm is a programmatic assembler: workload generators and tests build
// programs by calling mnemonic methods, placing labels, and finally calling
// Assemble, which resolves label references and returns the instruction
// words. Addresses are byte addresses; instructions are 4 bytes.
type Asm struct {
	base   uint32 // load address of the first instruction
	words  []uint32
	labels map[string]uint32 // label -> byte address
	fixups []fixup
	syms   []Symbol
	errs   []error
}

type fixup struct {
	index int    // instruction index needing patching
	label string // target label
	kind  byte   // 'b' = imm12 branch, 'j' = off24 jump
}

// Symbol is a named address in the assembled program, used by profiling to
// map trace addresses back to functions.
type Symbol struct {
	Name string
	Addr uint32
}

// NewAsm returns an assembler that places the first instruction at base.
func NewAsm(base uint32) *Asm {
	return &Asm{base: base, labels: make(map[string]uint32)}
}

// PC returns the byte address of the next instruction to be emitted.
func (a *Asm) PC() uint32 { return a.base + uint32(len(a.words))*4 }

// Label places (or re-places) a named label at the current PC. Labels
// starting with a letter are also recorded as symbols.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("duplicate label %q", name))
		return a
	}
	a.labels[name] = a.PC()
	a.syms = append(a.syms, Symbol{Name: name, Addr: a.PC()})
	return a
}

func (a *Asm) emit(in Instr) *Asm {
	a.words = append(a.words, in.Encode())
	return a
}

func (a *Asm) emitFixup(in Instr, label string, kind byte) *Asm {
	a.fixups = append(a.fixups, fixup{index: len(a.words), label: label, kind: kind})
	a.words = append(a.words, in.Encode()) // placeholder offset 0
	return a
}

// --- mnemonics ---

// Nop emits a no-operation.
func (a *Asm) Nop() *Asm { return a.emit(Instr{Op: OpNOP}) }

// Movi emits rd = signext(imm16).
func (a *Asm) Movi(rd int, imm int32) *Asm {
	if imm < -(1<<15) || imm >= 1<<15 {
		a.errs = append(a.errs, fmt.Errorf("movi imm out of range: %d", imm))
		imm = 0
	}
	return a.emit(Instr{Op: OpMOVI, Rd: uint8(rd), Imm: imm})
}

// Movw emits one or two instructions loading the full 32-bit constant v
// into rd (MOVH + ORIL, or a single MOVI when v fits).
func (a *Asm) Movw(rd int, v uint32) *Asm {
	if int32(v) >= -(1<<15) && int32(v) < 1<<15 {
		return a.Movi(rd, int32(v))
	}
	a.emit(Instr{Op: OpMOVH, Rd: uint8(rd), Imm: int32(v >> 16)})
	if low := v & 0xFFFF; low != 0 {
		a.emit(Instr{Op: OpORIL, Rd: uint8(rd), Imm: int32(low)})
	}
	return a
}

// Op3 emits a three-register ALU instruction.
func (a *Asm) Op3(op Op, rd, ra, rb int) *Asm {
	return a.emit(Instr{Op: op, Rd: uint8(rd), Ra: uint8(ra), Rb: uint8(rb)})
}

// Add emits rd = ra + rb.
func (a *Asm) Add(rd, ra, rb int) *Asm { return a.Op3(OpADD, rd, ra, rb) }

// Sub emits rd = ra - rb.
func (a *Asm) Sub(rd, ra, rb int) *Asm { return a.Op3(OpSUB, rd, ra, rb) }

// Mul emits rd = ra * rb.
func (a *Asm) Mul(rd, ra, rb int) *Asm { return a.Op3(OpMUL, rd, ra, rb) }

// Mac emits rd += ra * rb.
func (a *Asm) Mac(rd, ra, rb int) *Asm { return a.Op3(OpMAC, rd, ra, rb) }

// And emits rd = ra & rb.
func (a *Asm) And(rd, ra, rb int) *Asm { return a.Op3(OpAND, rd, ra, rb) }

// Or emits rd = ra | rb.
func (a *Asm) Or(rd, ra, rb int) *Asm { return a.Op3(OpOR, rd, ra, rb) }

// Xor emits rd = ra ^ rb.
func (a *Asm) Xor(rd, ra, rb int) *Asm { return a.Op3(OpXOR, rd, ra, rb) }

// Shl emits rd = ra << rb.
func (a *Asm) Shl(rd, ra, rb int) *Asm { return a.Op3(OpSHL, rd, ra, rb) }

// Shr emits rd = ra >> rb (logical).
func (a *Asm) Shr(rd, ra, rb int) *Asm { return a.Op3(OpSHR, rd, ra, rb) }

// Sra emits rd = ra >> rb (arithmetic).
func (a *Asm) Sra(rd, ra, rb int) *Asm { return a.Op3(OpSRA, rd, ra, rb) }

// Slt emits rd = int32(ra) < int32(rb).
func (a *Asm) Slt(rd, ra, rb int) *Asm { return a.Op3(OpSLT, rd, ra, rb) }

// OpI emits an immediate ALU instruction.
func (a *Asm) OpI(op Op, rd, ra int, imm int32) *Asm {
	lo, hi := int32(-(1 << 11)), int32(1<<12-1)
	switch op {
	case OpADDI, OpSLTI:
		hi = 1<<11 - 1
	}
	if imm < lo || imm > hi {
		a.errs = append(a.errs, fmt.Errorf("%s imm out of range: %d", op, imm))
		imm = 0
	}
	return a.emit(Instr{Op: op, Rd: uint8(rd), Ra: uint8(ra), Imm: imm})
}

// Addi emits rd = ra + imm.
func (a *Asm) Addi(rd, ra int, imm int32) *Asm { return a.OpI(OpADDI, rd, ra, imm) }

// Andi emits rd = ra & imm (imm zero-extended).
func (a *Asm) Andi(rd, ra int, imm int32) *Asm { return a.OpI(OpANDI, rd, ra, imm) }

// Ori emits rd = ra | imm (imm zero-extended).
func (a *Asm) Ori(rd, ra int, imm int32) *Asm { return a.OpI(OpORI, rd, ra, imm) }

// Xori emits rd = ra ^ imm (imm zero-extended).
func (a *Asm) Xori(rd, ra int, imm int32) *Asm { return a.OpI(OpXORI, rd, ra, imm) }

// Shli emits rd = ra << imm.
func (a *Asm) Shli(rd, ra int, imm int32) *Asm { return a.OpI(OpSHLI, rd, ra, imm) }

// Shri emits rd = ra >> imm (logical).
func (a *Asm) Shri(rd, ra int, imm int32) *Asm { return a.OpI(OpSHRI, rd, ra, imm) }

// Slti emits rd = int32(ra) < imm.
func (a *Asm) Slti(rd, ra int, imm int32) *Asm { return a.OpI(OpSLTI, rd, ra, imm) }

// Ldw emits rd = mem32[ra+off].
func (a *Asm) Ldw(rd, ra int, off int32) *Asm {
	return a.emit(Instr{Op: OpLDW, Rd: uint8(rd), Ra: uint8(ra), Imm: off})
}

// Ldb emits rd = zeroext(mem8[ra+off]).
func (a *Asm) Ldb(rd, ra int, off int32) *Asm {
	return a.emit(Instr{Op: OpLDB, Rd: uint8(rd), Ra: uint8(ra), Imm: off})
}

// Stw emits mem32[ra+off] = rd.
func (a *Asm) Stw(rd, ra int, off int32) *Asm {
	return a.emit(Instr{Op: OpSTW, Rd: uint8(rd), Ra: uint8(ra), Imm: off})
}

// Stb emits mem8[ra+off] = rd.
func (a *Asm) Stb(rd, ra int, off int32) *Asm {
	return a.emit(Instr{Op: OpSTB, Rd: uint8(rd), Ra: uint8(ra), Imm: off})
}

// Lea emits rd = ra + off.
func (a *Asm) Lea(rd, ra int, off int32) *Asm {
	return a.emit(Instr{Op: OpLEA, Rd: uint8(rd), Ra: uint8(ra), Imm: off})
}

// Br emits a conditional branch to a label.
func (a *Asm) Br(op Op, ra, rb int, label string) *Asm {
	return a.emitFixup(Instr{Op: op, Ra: uint8(ra), Rb: uint8(rb)}, label, 'b')
}

// Beq branches to label when ra == rb.
func (a *Asm) Beq(ra, rb int, label string) *Asm { return a.Br(OpBEQ, ra, rb, label) }

// Bne branches to label when ra != rb.
func (a *Asm) Bne(ra, rb int, label string) *Asm { return a.Br(OpBNE, ra, rb, label) }

// Blt branches to label when int32(ra) < int32(rb).
func (a *Asm) Blt(ra, rb int, label string) *Asm { return a.Br(OpBLT, ra, rb, label) }

// Bge branches to label when int32(ra) >= int32(rb).
func (a *Asm) Bge(ra, rb int, label string) *Asm { return a.Br(OpBGE, ra, rb, label) }

// Bltu branches to label when ra < rb (unsigned).
func (a *Asm) Bltu(ra, rb int, label string) *Asm { return a.Br(OpBLTU, ra, rb, label) }

// Bgeu branches to label when ra >= rb (unsigned).
func (a *Asm) Bgeu(ra, rb int, label string) *Asm { return a.Br(OpBGEU, ra, rb, label) }

// J emits an unconditional jump to a label.
func (a *Asm) J(label string) *Asm {
	return a.emitFixup(Instr{Op: OpJ}, label, 'j')
}

// Call emits a call (link in R14) to a label.
func (a *Asm) Call(label string) *Asm {
	return a.emitFixup(Instr{Op: OpCALL}, label, 'j')
}

// Jr emits pc = ra.
func (a *Asm) Jr(ra int) *Asm { return a.emit(Instr{Op: OpJR, Ra: uint8(ra)}) }

// Ret emits a return (jr R14).
func (a *Asm) Ret() *Asm { return a.Jr(RegLink) }

// Loop emits a hardware-loop branch: if --ra != 0 jump to label.
func (a *Asm) Loop(ra int, label string) *Asm {
	return a.emitFixup(Instr{Op: OpLOOP, Ra: uint8(ra)}, label, 'b')
}

// Mfcr emits rd = csr[n].
func (a *Asm) Mfcr(rd, n int) *Asm {
	return a.emit(Instr{Op: OpMFCR, Rd: uint8(rd), Imm: int32(n)})
}

// Mtcr emits csr[n] = ra.
func (a *Asm) Mtcr(n, ra int) *Asm {
	return a.emit(Instr{Op: OpMTCR, Ra: uint8(ra), Imm: int32(n)})
}

// Rfe emits a return from exception.
func (a *Asm) Rfe() *Asm { return a.emit(Instr{Op: OpRFE}) }

// Halt stops the core.
func (a *Asm) Halt() *Asm { return a.emit(Instr{Op: OpHALT}) }

// Dbg emits the debug-marker no-op.
func (a *Asm) Dbg() *Asm { return a.emit(Instr{Op: OpDBG}) }

// Program is an assembled instruction stream plus its symbol table.
type Program struct {
	Base  uint32
	Words []uint32
	Syms  []Symbol
}

// Bytes returns the little-endian byte image of the program.
func (p *Program) Bytes() []byte {
	b := make([]byte, len(p.Words)*4)
	for i, w := range p.Words {
		b[i*4+0] = byte(w)
		b[i*4+1] = byte(w >> 8)
		b[i*4+2] = byte(w >> 16)
		b[i*4+3] = byte(w >> 24)
	}
	return b
}

// Size returns the program size in bytes.
func (p *Program) Size() uint32 { return uint32(len(p.Words)) * 4 }

// SymbolAt returns the name of the innermost symbol covering byte address
// addr, or "" when addr precedes all symbols.
func (p *Program) SymbolAt(addr uint32) string {
	i := sort.Search(len(p.Syms), func(i int) bool { return p.Syms[i].Addr > addr })
	if i == 0 {
		return ""
	}
	return p.Syms[i-1].Name
}

// Assemble resolves all label references and returns the finished program.
// Symbols are returned sorted by address.
func (a *Asm) Assemble() (*Program, error) {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			a.errs = append(a.errs, fmt.Errorf("undefined label %q", f.label))
			continue
		}
		pc := a.base + uint32(f.index)*4
		off := (int64(target) - int64(pc)) / 4
		in := Decode(a.words[f.index])
		switch f.kind {
		case 'b':
			if off < -(1<<11) || off >= 1<<11 {
				a.errs = append(a.errs, fmt.Errorf("branch to %q out of imm12 range (%d words)", f.label, off))
				continue
			}
			in.Imm = int32(off)
		case 'j':
			if off < -(1<<23) || off >= 1<<23 {
				a.errs = append(a.errs, fmt.Errorf("jump to %q out of off24 range (%d words)", f.label, off))
				continue
			}
			in.Off24 = int32(off)
		}
		a.words[f.index] = in.Encode()
	}
	if len(a.errs) > 0 {
		return nil, fmt.Errorf("assemble: %d errors, first: %w", len(a.errs), a.errs[0])
	}
	syms := make([]Symbol, len(a.syms))
	copy(syms, a.syms)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	return &Program{Base: a.base, Words: append([]uint32(nil), a.words...), Syms: syms}, nil
}
