// Package isa defines the 32-bit instruction set executed by the TriCore-like
// CPU model in internal/tricore and by the PCP model in internal/pcp.
//
// The instruction set is not binary-compatible with Infineon TriCore — the
// paper's methodology never depends on TriCore encodings, only on the
// *microarchitectural structure* of the core (three parallel pipelines:
// integer, load/store and loop, giving up to three instructions per cycle).
// The ISA is therefore a compact fixed-width 32-bit RISC set whose
// instructions are classified into the same three pipe classes.
//
// Encoding (fixed 32-bit words):
//
//	[31:24] opcode
//	[23:20] rd
//	[19:16] ra
//	[15:12] rb
//	[11:0]  imm12  (signed or unsigned per opcode)
//
// Wide-immediate forms (MOVI, MOVH, ORIL) use [15:0] as imm16; long-jump
// forms (J, CALL) use [23:0] as a signed word offset.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// Register conventions used by the assembler and the workload generator.
const (
	RegZeroConv = 0  // by convention holds 0 in generated code (not hardwired)
	RegLink     = 14 // CALL stores the return address here
	RegSP       = 15 // stack pointer by convention
)

// Op is an opcode.
type Op uint8

// Opcodes. The pipe class of each opcode is given by Pipe().
const (
	OpNOP Op = iota

	// Immediate moves (integer pipe).
	OpMOVI // rd = signext(imm16)
	OpMOVH // rd = imm16 << 16
	OpORIL // rd = rd | zeroext(imm16)

	// Register ALU (integer pipe).
	OpADD  // rd = ra + rb
	OpSUB  // rd = ra - rb
	OpAND  // rd = ra & rb
	OpOR   // rd = ra | rb
	OpXOR  // rd = ra ^ rb
	OpSHL  // rd = ra << (rb & 31)
	OpSHR  // rd = ra >> (rb & 31) logical
	OpSRA  // rd = ra >> (rb & 31) arithmetic
	OpMUL  // rd = ra * rb (2-cycle result latency)
	OpMAC  // rd = rd + ra*rb (2-cycle result latency)
	OpSLT  // rd = (int32(ra) < int32(rb)) ? 1 : 0
	OpSLTU // rd = (ra < rb) ? 1 : 0

	// Immediate ALU (integer pipe). imm12 signed unless noted.
	OpADDI // rd = ra + imm
	OpANDI // rd = ra & zeroext(imm)
	OpORI  // rd = ra | zeroext(imm)
	OpXORI // rd = ra ^ zeroext(imm)
	OpSHLI // rd = ra << imm[4:0]
	OpSHRI // rd = ra >> imm[4:0] logical
	OpSLTI // rd = (int32(ra) < imm) ? 1 : 0

	// Loads/stores (load/store pipe). Effective address = ra + signext(imm12).
	OpLDW // rd = mem32[ea]
	OpLDB // rd = zeroext(mem8[ea])
	OpSTW // mem32[ea] = rd
	OpSTB // mem8[ea] = rd[7:0]
	OpLEA // rd = ea (address arithmetic, LS pipe)

	// Control flow (integer pipe except LOOP).
	OpBEQ  // if ra == rb: pc += signext(imm12) words
	OpBNE  // if ra != rb
	OpBLT  // if int32(ra) < int32(rb)
	OpBGE  // if int32(ra) >= int32(rb)
	OpBLTU // if ra < rb (unsigned)
	OpBGEU // if ra >= rb (unsigned)
	OpJ    // pc += signext(off24) words
	OpCALL // R14 = pc+4; pc += signext(off24) words
	OpJR   // pc = ra

	// Hardware loop (loop pipe): if --ra != 0: pc += signext(imm12) words.
	// Executes with zero overhead in the loop pipeline once primed,
	// mirroring TriCore's loop pipe.
	OpLOOP

	// System (integer pipe).
	OpMFCR // rd = csr[imm12]
	OpMTCR // csr[imm12] = ra
	OpRFE  // return from exception/interrupt
	OpHALT // stop the core (end of program)
	OpDBG  // no-op that raises a debug event observable by MCDS comparators

	opMax
)

// NumOps is the number of defined opcodes.
const NumOps = int(opMax)

// Pipe identifies the execution pipeline an instruction issues to. TriCore
// 1.3 issues at most one instruction per pipe per cycle, so the theoretical
// peak is 3 instructions/cycle — exactly the "up to 3 within a clock cycle"
// figure the paper quotes for the IPC counter.
type Pipe uint8

// Pipe classes.
const (
	PipeInt  Pipe = iota // integer pipeline
	PipeLS               // load/store pipeline
	PipeLoop             // loop pipeline
)

// String names the pipe class.
func (p Pipe) String() string {
	switch p {
	case PipeInt:
		return "IP"
	case PipeLS:
		return "LS"
	case PipeLoop:
		return "LP"
	}
	return "??"
}

// CSR numbers for OpMFCR/OpMTCR.
const (
	CsrICR    = 0 // interrupt control: bit0 = global enable, bits [15:8] = current prio
	CsrCCNT   = 1 // free-running cycle counter (read-only)
	CsrCoreID = 2 // core identity (read-only)
	CsrSYS    = 3 // scratch register readable by the testbench
	NumCSRs   = 4
)

type opInfo struct {
	name  string
	pipe  Pipe
	flags uint8
}

const (
	flagBranch = 1 << iota // conditional or unconditional change of flow
	flagLoad
	flagStore
	flagWide // imm16 form
	flagJump // off24 form
)

var opTable = [NumOps]opInfo{
	OpNOP:  {"nop", PipeInt, 0},
	OpMOVI: {"movi", PipeInt, flagWide},
	OpMOVH: {"movh", PipeInt, flagWide},
	OpORIL: {"oril", PipeInt, flagWide},
	OpADD:  {"add", PipeInt, 0},
	OpSUB:  {"sub", PipeInt, 0},
	OpAND:  {"and", PipeInt, 0},
	OpOR:   {"or", PipeInt, 0},
	OpXOR:  {"xor", PipeInt, 0},
	OpSHL:  {"shl", PipeInt, 0},
	OpSHR:  {"shr", PipeInt, 0},
	OpSRA:  {"sra", PipeInt, 0},
	OpMUL:  {"mul", PipeInt, 0},
	OpMAC:  {"mac", PipeInt, 0},
	OpSLT:  {"slt", PipeInt, 0},
	OpSLTU: {"sltu", PipeInt, 0},
	OpADDI: {"addi", PipeInt, 0},
	OpANDI: {"andi", PipeInt, 0},
	OpORI:  {"ori", PipeInt, 0},
	OpXORI: {"xori", PipeInt, 0},
	OpSHLI: {"shli", PipeInt, 0},
	OpSHRI: {"shri", PipeInt, 0},
	OpSLTI: {"slti", PipeInt, 0},
	OpLDW:  {"ldw", PipeLS, flagLoad},
	OpLDB:  {"ldb", PipeLS, flagLoad},
	OpSTW:  {"stw", PipeLS, flagStore},
	OpSTB:  {"stb", PipeLS, flagStore},
	OpLEA:  {"lea", PipeLS, 0},
	OpBEQ:  {"beq", PipeInt, flagBranch},
	OpBNE:  {"bne", PipeInt, flagBranch},
	OpBLT:  {"blt", PipeInt, flagBranch},
	OpBGE:  {"bge", PipeInt, flagBranch},
	OpBLTU: {"bltu", PipeInt, flagBranch},
	OpBGEU: {"bgeu", PipeInt, flagBranch},
	OpJ:    {"j", PipeInt, flagBranch | flagJump},
	OpCALL: {"call", PipeInt, flagBranch | flagJump},
	OpJR:   {"jr", PipeInt, flagBranch},
	OpLOOP: {"loop", PipeLoop, flagBranch},
	OpMFCR: {"mfcr", PipeInt, 0},
	OpMTCR: {"mtcr", PipeInt, 0},
	OpRFE:  {"rfe", PipeInt, flagBranch},
	OpHALT: {"halt", PipeInt, 0},
	OpDBG:  {"dbg", PipeInt, 0},
}

// String names the opcode in assembler mnemonics.
func (o Op) String() string {
	if int(o) < NumOps {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return int(o) < NumOps }

// Pipe returns the execution pipe class of the opcode.
func (o Op) Pipe() Pipe {
	if !o.Valid() {
		return PipeInt
	}
	return opTable[o].pipe
}

// IsBranch reports whether the opcode may change control flow.
func (o Op) IsBranch() bool { return o.Valid() && opTable[o].flags&flagBranch != 0 }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o.Valid() && opTable[o].flags&flagLoad != 0 }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o.Valid() && opTable[o].flags&flagStore != 0 }

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsWide reports whether the opcode uses the imm16 encoding.
func (o Op) IsWide() bool { return o.Valid() && opTable[o].flags&flagWide != 0 }

// IsJump24 reports whether the opcode uses the off24 encoding.
func (o Op) IsJump24() bool { return o.Valid() && opTable[o].flags&flagJump != 0 }
