package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAsmBasics(t *testing.T) {
	src := `
	; simple countdown
	.org 0x80000000
start:
	movi r1, 10
	movw r2, 0xDEADBEEF
loop:	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`
	p, err := ParseAsm(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x8000_0000 {
		t.Errorf("base = %#x", p.Base)
	}
	if got := p.SymbolAt(p.Base); got != "start" {
		t.Errorf("symbol = %q", got)
	}
	// movi + (movh+oril) + addi + bne + halt = 6 words.
	if len(p.Words) != 6 {
		t.Errorf("words = %d", len(p.Words))
	}
	br := Decode(p.Words[4])
	if br.Op != OpBNE || br.Imm != -1 {
		t.Errorf("branch = %+v", br)
	}
}

func TestParseAsmMemoryOperands(t *testing.T) {
	src := `
	ldw r1, [r2+8]
	ldw r3, [r2-4]
	ldb r4, [r2]
	stw [sp+16], r5
	stb [r6-1], r7
	lea r8, [r2+100]
`
	p, err := ParseAsm(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instr{
		{Op: OpLDW, Rd: 1, Ra: 2, Imm: 8},
		{Op: OpLDW, Rd: 3, Ra: 2, Imm: -4},
		{Op: OpLDB, Rd: 4, Ra: 2},
		{Op: OpSTW, Rd: 5, Ra: RegSP, Imm: 16},
		{Op: OpSTB, Rd: 7, Ra: 6, Imm: -1},
		{Op: OpLEA, Rd: 8, Ra: 2, Imm: 100},
	}
	for i, w := range want {
		if got := Decode(p.Words[i]); got != w {
			t.Errorf("word %d: %+v want %+v", i, got, w)
		}
	}
}

func TestParseAsmDirectivesAndCSR(t *testing.T) {
	src := `
	.word 0x12345678
	mfcr r1, csr1
	mtcr csr0, r2
	jr lr
	ret
`
	p, err := ParseAsm(src, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Words[0] != 0x12345678 {
		t.Errorf("raw word = %#x", p.Words[0])
	}
	if in := Decode(p.Words[1]); in.Op != OpMFCR || in.Imm != CsrCCNT {
		t.Errorf("mfcr = %+v", in)
	}
	if in := Decode(p.Words[3]); in.Op != OpJR || in.Ra != RegLink {
		t.Errorf("jr lr = %+v", in)
	}
}

func TestParseAsmErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",       // missing operand
		"movi r99, 1",      // bad register
		"ldw r1, r2",       // not a memory operand
		"beq r1, r2, 9z",   // bad target
		"mfcr r1, csr9",    // bad csr
		"movi r1, zzz",     // bad number
		"nop\n.org 0x100",  // .org after code
		"j nowhere",        // undefined label
		"x:\nx:\nnop\nj x", // duplicate label
	}
	for _, src := range cases {
		if _, err := ParseAsm(src, 0); err == nil {
			t.Errorf("source %q must fail", src)
		}
	}
}

// canonInstr keeps only the fields the disassembly of op renders; other
// fields are don't-cares that a textual round trip cannot preserve.
func canonInstr(in Instr) Instr {
	out := Instr{Op: in.Op}
	switch op := in.Op; {
	case op == OpNOP || op == OpRFE || op == OpHALT || op == OpDBG:
	case op.IsJump24():
		out.Off24 = in.Off24
	case op.IsWide():
		out.Rd, out.Imm = in.Rd, in.Imm
	case op == OpJR:
		out.Ra = in.Ra
	case op == OpLOOP:
		out.Ra, out.Imm = in.Ra, in.Imm
	case op == OpMFCR:
		out.Rd, out.Imm = in.Rd, in.Imm
	case op == OpMTCR:
		out.Ra, out.Imm = in.Ra, in.Imm
	case op.IsBranch():
		out.Ra, out.Rb, out.Imm = in.Ra, in.Rb, in.Imm
	case op.IsMem() || op == OpLEA,
		op == OpADDI || op == OpANDI || op == OpORI || op == OpXORI ||
			op == OpSHLI || op == OpSHRI || op == OpSLTI:
		out.Rd, out.Ra, out.Imm = in.Rd, in.Ra, in.Imm
	default: // three-register ALU
		out.Rd, out.Ra, out.Rb = in.Rd, in.Ra, in.Rb
	}
	return out
}

// TestDisasmParseRoundTrip: every instruction the assembler can produce,
// rendered by the disassembler, parses back to the identical encoding.
func TestDisasmParseRoundTrip(t *testing.T) {
	f := func(opRaw, rd, ra, rb uint8, immRaw int32) bool {
		op := Op(opRaw % uint8(NumOps))
		in := Instr{Op: op}
		switch {
		case op.IsJump24():
			in.Off24 = immRaw % (1 << 20)
		case op.IsWide():
			if op == OpMOVI {
				in.Imm = immRaw % (1 << 15)
			} else {
				in.Imm = immRaw & 0xFFFF
			}
			in.Rd = rd % 16
		default:
			in.Rd, in.Ra, in.Rb = rd%16, ra%16, rb%16
			switch op {
			case OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI:
				in.Imm = immRaw & 0xFFF
			case OpMFCR, OpMTCR:
				in.Imm = immRaw & 3
			default:
				in.Imm = immRaw % (1 << 11)
			}
		}
		in = canonInstr(in)
		text := in.String()
		p, err := ParseAsm(text, 0)
		if err != nil {
			t.Logf("%q: %v", text, err)
			return false
		}
		if len(p.Words) != 1 {
			return false
		}
		return Decode(p.Words[0]) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAsmCommentStyles(t *testing.T) {
	src := strings.Join([]string{
		"nop ; semicolon",
		"nop # hash",
		"nop // slashes",
	}, "\n")
	p, err := ParseAsm(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 3 {
		t.Errorf("words = %d", len(p.Words))
	}
}
