package isa

import "fmt"

// Instr is a decoded instruction. Decode and Encode round-trip exactly for
// every value an assembler can legally produce.
type Instr struct {
	Op    Op
	Rd    uint8 // destination register (also source for STW/STB/MAC/ORIL)
	Ra    uint8 // first source register
	Rb    uint8 // second source register
	Imm   int32 // sign- or zero-extended immediate, per opcode
	Off24 int32 // signed word offset for J/CALL
}

// Encode packs the instruction into its 32-bit representation. It panics on
// out-of-range fields; the assembler validates ranges with errors before
// calling Encode.
func (in Instr) Encode() uint32 {
	w := uint32(in.Op) << 24
	switch {
	case in.Op.IsJump24():
		if in.Off24 < -(1<<23) || in.Off24 >= 1<<23 {
			panic(fmt.Sprintf("isa: off24 out of range: %d", in.Off24))
		}
		return w | uint32(in.Off24)&0xFFFFFF
	case in.Op.IsWide():
		if in.Imm < -(1<<15) || in.Imm >= 1<<16 {
			panic(fmt.Sprintf("isa: imm16 out of range: %d", in.Imm))
		}
		return w | uint32(in.Rd&0xF)<<20 | uint32(in.Imm)&0xFFFF
	default:
		if in.Imm < -(1<<11) || in.Imm >= 1<<12 {
			panic(fmt.Sprintf("isa: imm12 out of range for %s: %d", in.Op, in.Imm))
		}
		return w | uint32(in.Rd&0xF)<<20 | uint32(in.Ra&0xF)<<16 |
			uint32(in.Rb&0xF)<<12 | uint32(in.Imm)&0xFFF
	}
}

// signed-extension helpers for decode
func sext(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit instruction word. Unknown opcodes decode to an
// Instr whose Op is out of range; callers detect this with Op.Valid().
func Decode(w uint32) Instr {
	op := Op(w >> 24)
	in := Instr{Op: op}
	switch {
	case op.IsJump24():
		in.Off24 = sext(w&0xFFFFFF, 24)
	case op.IsWide():
		in.Rd = uint8(w >> 20 & 0xF)
		// MOVI sign-extends; MOVH and ORIL treat the field as raw 16 bits.
		if op == OpMOVI {
			in.Imm = sext(w&0xFFFF, 16)
		} else {
			in.Imm = int32(w & 0xFFFF)
		}
	default:
		in.Rd = uint8(w >> 20 & 0xF)
		in.Ra = uint8(w >> 16 & 0xF)
		in.Rb = uint8(w >> 12 & 0xF)
		switch op {
		case OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI, OpMFCR, OpMTCR:
			in.Imm = int32(w & 0xFFF) // zero-extended forms
		default:
			in.Imm = sext(w&0xFFF, 12)
		}
	}
	return in
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	op := in.Op
	switch {
	case !op.Valid():
		return fmt.Sprintf(".word 0x%02x??", uint8(op))
	case op == OpNOP || op == OpRFE || op == OpHALT || op == OpDBG:
		return op.String()
	case op.IsJump24():
		return fmt.Sprintf("%s %+d", op, in.Off24)
	case op.IsWide():
		return fmt.Sprintf("%s r%d, %d", op, in.Rd, in.Imm)
	case op == OpJR:
		return fmt.Sprintf("jr r%d", in.Ra)
	case op == OpLOOP:
		return fmt.Sprintf("loop r%d, %+d", in.Ra, in.Imm)
	case op.IsLoad() || op == OpLEA:
		return fmt.Sprintf("%s r%d, [r%d%+d]", op, in.Rd, in.Ra, in.Imm)
	case op.IsStore():
		return fmt.Sprintf("%s [r%d%+d], r%d", op, in.Ra, in.Imm, in.Rd)
	case op == OpMFCR:
		return fmt.Sprintf("mfcr r%d, csr%d", in.Rd, in.Imm)
	case op == OpMTCR:
		return fmt.Sprintf("mtcr csr%d, r%d", in.Imm, in.Ra)
	case op.IsBranch():
		return fmt.Sprintf("%s r%d, r%d, %+d", op, in.Ra, in.Rb, in.Imm)
	case op == OpADDI || op == OpANDI || op == OpORI || op == OpXORI ||
		op == OpSHLI || op == OpSHRI || op == OpSLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", op, in.Rd, in.Ra, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.Rd, in.Ra, in.Rb)
	}
}
