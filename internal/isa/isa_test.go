package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNOP},
		{Op: OpMOVI, Rd: 3, Imm: -1234},
		{Op: OpMOVH, Rd: 15, Imm: 0xABCD},
		{Op: OpORIL, Rd: 1, Imm: 0xFFFF},
		{Op: OpADD, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpMAC, Rd: 7, Ra: 8, Rb: 9},
		{Op: OpADDI, Rd: 4, Ra: 5, Imm: -2048},
		{Op: OpANDI, Rd: 4, Ra: 5, Imm: 4095},
		{Op: OpLDW, Rd: 2, Ra: 15, Imm: -4},
		{Op: OpSTB, Rd: 9, Ra: 1, Imm: 255},
		{Op: OpBEQ, Ra: 1, Rb: 2, Imm: -100},
		{Op: OpLOOP, Ra: 6, Imm: -8},
		{Op: OpJ, Off24: -(1 << 23)},
		{Op: OpCALL, Off24: 1<<23 - 1},
		{Op: OpJR, Ra: 14},
		{Op: OpMFCR, Rd: 1, Imm: CsrICR},
		{Op: OpMTCR, Ra: 2, Imm: CsrICR},
		{Op: OpRFE},
		{Op: OpHALT},
	}
	for _, c := range cases {
		got := Decode(c.Encode())
		if got != c {
			t.Errorf("round trip %v: got %+v want %+v", c.Op, got, c)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Every instruction the assembler can legally construct must round-trip.
	f := func(opRaw, rd, ra, rb uint8, immRaw int32) bool {
		op := Op(opRaw % uint8(NumOps))
		in := Instr{Op: op}
		switch {
		case op.IsJump24():
			in.Off24 = immRaw % (1 << 23)
		case op.IsWide():
			if op == OpMOVI {
				in.Imm = immRaw % (1 << 15)
			} else {
				in.Imm = immRaw & 0xFFFF
			}
			in.Rd = rd % 16
		default:
			in.Rd, in.Ra, in.Rb = rd%16, ra%16, rb%16
			switch op {
			case OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI, OpMFCR, OpMTCR:
				in.Imm = immRaw & 0xFFF
			default:
				in.Imm = immRaw % (1 << 11)
			}
		}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeClasses(t *testing.T) {
	if OpADD.Pipe() != PipeInt {
		t.Errorf("ADD pipe = %v", OpADD.Pipe())
	}
	if OpLDW.Pipe() != PipeLS || OpSTW.Pipe() != PipeLS || OpLEA.Pipe() != PipeLS {
		t.Error("load/store/lea must be LS pipe")
	}
	if OpLOOP.Pipe() != PipeLoop {
		t.Error("LOOP must be loop pipe")
	}
	// The three-pipe split is what bounds IPC at 3, the figure the paper
	// quotes; make sure each class is represented.
	seen := map[Pipe]bool{}
	for op := Op(0); op.Valid(); op++ {
		seen[op.Pipe()] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 pipe classes, saw %d", len(seen))
	}
}

func TestAsmLabelsAndBranches(t *testing.T) {
	a := NewAsm(0x8000_0000)
	a.Label("start")
	a.Movi(1, 10)
	a.Label("loop")
	a.Addi(1, 1, -1)
	a.Bne(1, 0, "loop")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 16 {
		t.Fatalf("size = %d, want 16", p.Size())
	}
	br := Decode(p.Words[2])
	if br.Op != OpBNE || br.Imm != -1 {
		t.Errorf("branch = %+v, want BNE imm=-1", br)
	}
	if got := p.SymbolAt(0x8000_0004); got != "loop" {
		t.Errorf("SymbolAt = %q, want loop", got)
	}
	if got := p.SymbolAt(0x8000_0000); got != "start" {
		t.Errorf("SymbolAt = %q, want start", got)
	}
}

func TestAsmForwardReference(t *testing.T) {
	a := NewAsm(0)
	a.J("end")
	a.Nop()
	a.Nop()
	a.Label("end")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	j := Decode(p.Words[0])
	if j.Off24 != 3 {
		t.Errorf("jump offset = %d, want 3", j.Off24)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm(0)
	a.Bne(1, 0, "nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("undefined label must fail")
	}

	a = NewAsm(0)
	a.Label("x")
	a.Label("x")
	if _, err := a.Assemble(); err == nil {
		t.Error("duplicate label must fail")
	}

	a = NewAsm(0)
	a.Movi(1, 1<<20)
	if _, err := a.Assemble(); err == nil {
		t.Error("oversized movi must fail")
	}
}

func TestMovwBuildsConstants(t *testing.T) {
	for _, v := range []uint32{0, 1, 0x7FFF, 0x8000, 0xFFFF_FFFF, 0xD000_0000, 0x1234_5678} {
		a := NewAsm(0)
		a.Movw(1, v)
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		// Interpret the mini program by hand.
		var r1 uint32
		for _, w := range p.Words {
			in := Decode(w)
			switch in.Op {
			case OpMOVI:
				r1 = uint32(in.Imm)
			case OpMOVH:
				r1 = uint32(in.Imm) << 16
			case OpORIL:
				r1 |= uint32(in.Imm)
			}
		}
		if r1 != v {
			t.Errorf("Movw(%#x) produced %#x", v, r1)
		}
	}
}

func TestProgramBytesLittleEndian(t *testing.T) {
	a := NewAsm(0)
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b := p.Bytes()
	if b[3] != byte(OpHALT) {
		t.Errorf("opcode byte = %#x, want %#x", b[3], byte(OpHALT))
	}
}

func TestInstrStringCoversAllOps(t *testing.T) {
	for op := Op(0); op.Valid(); op++ {
		s := Instr{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4}.String()
		if s == "" {
			t.Errorf("empty disassembly for %v", op)
		}
	}
	if s := Decode(0xFF000000).String(); s == "" {
		t.Error("invalid opcode must still render")
	}
}

func TestAllBuilderMethods(t *testing.T) {
	// Exercise every mnemonic builder; results are checked by decoding.
	a := NewAsm(0)
	a.Add(1, 2, 3).Sub(1, 2, 3).Mul(1, 2, 3).Mac(1, 2, 3)
	a.And(1, 2, 3).Or(1, 2, 3).Xor(1, 2, 3)
	a.Shl(1, 2, 3).Shr(1, 2, 3).Sra(1, 2, 3).Slt(1, 2, 3)
	a.Andi(1, 2, 3).Ori(1, 2, 3).Xori(1, 2, 3)
	a.Shli(1, 2, 3).Shri(1, 2, 3).Slti(1, 2, 3)
	a.Label("t")
	a.Beq(1, 2, "t").Blt(1, 2, "t").Bge(1, 2, "t")
	a.Bltu(1, 2, "t").Bgeu(1, 2, "t")
	a.Call("t").Loop(3, "t")
	a.Dbg()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpADD, OpSUB, OpMUL, OpMAC, OpAND, OpOR, OpXOR,
		OpSHL, OpSHR, OpSRA, OpSLT, OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI,
		OpSLTI, OpBEQ, OpBLT, OpBGE, OpBLTU, OpBGEU, OpCALL, OpLOOP, OpDBG}
	for i, op := range wantOps {
		if got := Decode(p.Words[i]).Op; got != op {
			t.Errorf("word %d: op %v, want %v", i, got, op)
		}
	}
}

func TestPipeStrings(t *testing.T) {
	if PipeInt.String() != "IP" || PipeLS.String() != "LS" || PipeLoop.String() != "LP" {
		t.Error("pipe names wrong")
	}
	if Pipe(9).String() != "??" {
		t.Error("unknown pipe must render ??")
	}
	if Op(200).String() == "" || Op(200).Pipe() != PipeInt {
		t.Error("invalid op fallbacks")
	}
}
