package isa

import (
	"sort"

	"repro/internal/obs"
)

// This file is the decode-once half of the isa API. Decode remains the
// one-word reference primitive (disassemblers and differential tests use
// it); execution-facing consumers go through a Decoder, which amortizes
// decode cost across runs of straight-line code by caching decoded basic
// blocks keyed by their entry PC.

// Fuse classifies an instruction pair (this instruction and its block
// successor) that the block executor can treat as one superinstruction.
// Fusion never changes architectural or timing behaviour — each kind
// encodes a statically provable fact about how the pair issues, letting
// the executor skip re-deriving it every cycle (and, for FuseStLoop,
// dispatch the whole pair without returning to the generic issue loop).
type Fuse uint8

const (
	// FuseNone: no special relationship with the successor.
	FuseNone Fuse = iota

	// FuseSamePipe: the successor needs the same execution pipe, so the
	// pair can never dual-issue (compare+branch is the canonical case —
	// both are PipeInt). After the head issues, the bundle is over for
	// the tail; only the tail's fetch timing remains to be charged.
	FuseSamePipe

	// FuseLoadUse: the head is a load and the successor reads its
	// destination register. With a non-zero load-use latency the tail
	// can never issue in the head's cycle.
	FuseLoadUse

	// FuseStLoop: store followed by LOOP — the hot kernel back edge
	// (store result, decrement, branch back). Stores write no register,
	// so the pair has no intra-pair dependency; it is dispatched as one
	// superinstruction when all issue conditions hold.
	FuseStLoop
)

// String names the fusion kind.
func (f Fuse) String() string {
	switch f {
	case FuseNone:
		return "none"
	case FuseSamePipe:
		return "samepipe"
	case FuseLoadUse:
		return "loaduse"
	case FuseStLoop:
		return "stloop"
	}
	return "??"
}

// DInstr is one decoded instruction inside a cached block, carrying
// everything the per-cycle issue loop would otherwise re-derive from the
// word: the handler-table index, the pipe class, the read-register set,
// and the fusion relationship with the next instruction in the block.
type DInstr struct {
	In      Instr
	Raw     uint32 // original fetched word (diagnostics use the raw word)
	HIdx    uint8  // threaded-dispatch handler index, resolved at decode time
	Pipe    Pipe
	Fuse    Fuse
	NRead   uint8
	Reads   [3]uint8
	Invalid bool // word does not decode; terminates the block
}

// MaxBlockInstrs bounds the length of a cached block. Blocks normally end
// at the first branch, HALT, or undecodable word; straight-line runs
// longer than this are split, which only costs an extra lookup.
const MaxBlockInstrs = 64

// ChainSlots bounds the direct successor links a block may hold. Hot
// control flow has very low fan-out (a loop back edge, a call target, a
// return, a fall-through), so a handful of slots captures it; colder
// successors simply keep taking the keyed lookup.
const ChainSlots = 4

// chainLink is one direct block-to-block edge: "exiting this block to pc
// continues in b". gen records the decoder generation the link was
// installed at; a live link always carries the current generation, because
// every invalidation severs all links (the check is kept as defense in
// depth — following a stale link could execute dropped code).
type chainLink struct {
	pc  uint32
	gen uint64
	b   *Block
}

// Block is a decoded basic block: a run of instructions starting at PC
// with no control-flow entry except the first and ending at the first
// branch, HALT, undecodable word, or the length cap. A branch *into* the
// middle of a block simply creates a second, overlapping block at that
// entry point.
type Block struct {
	PC  uint32
	Ins []DInstr

	// Chain state (owned by the Decoder): bounded successor links plus the
	// reverse edges needed to sever incoming links when this block dies.
	links  [ChainSlots]chainLink
	nlinks uint8
	preds  []*Block // blocks currently holding a link to this block
}

// DecoderStats counts cache traffic for diagnostics and tests.
type DecoderStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Fused         uint64 // instruction pairs marked with a Fuse kind
	ChainLinks    uint64 // block-to-block links installed
	ChainFollows  uint64 // lookups served by following a chain link
	ChainSevers   uint64 // links severed by invalidation or eviction
}

// DefaultBlockCacheSize is the block capacity a SoC-attached Decoder uses:
// generous for real firmware working sets, small enough that the map stays
// cache-friendly.
const DefaultBlockCacheSize = 1024

// Decoder owns a bounded PC-keyed cache of decoded basic blocks. It is the
// execution-facing decode API: cores ask it for the block at a PC and walk
// the pre-decoded instructions instead of calling Decode on every fetched
// word, every cycle.
//
// A Decoder is not safe for concurrent use; every simulated SoC owns one
// (shared between its cores, which tick on one goroutine).
//
// Correctness contract: any write that can change instruction words —
// flash programming, program loads, calibration overlay remaps — must
// invalidate, via InvalidateRange or InvalidateAll. The SoC assembly wires
// these hooks; see DESIGN.md §14.
type Decoder struct {
	blocks map[uint32]*Block
	fifo   []uint32 // insertion order for FIFO eviction
	max    int
	gen    uint64 // bumped on every invalidation; consumers key hints on it
	stats  DecoderStats

	// obs export (nil handles are no-ops, so an uninstrumented Decoder
	// pays only a nil check per event).
	cHits          *obs.Counter
	cMisses        *obs.Counter
	cEvictions     *obs.Counter
	cInvalidations *obs.Counter
	cChainLinks    *obs.Counter
	cChainSevers   *obs.Counter
}

// NewDecoder returns a Decoder caching at most maxBlocks blocks (FIFO
// eviction). maxBlocks <= 0 selects DefaultBlockCacheSize.
func NewDecoder(maxBlocks int) *Decoder {
	if maxBlocks <= 0 {
		maxBlocks = DefaultBlockCacheSize
	}
	return &Decoder{
		blocks: make(map[uint32]*Block, maxBlocks),
		fifo:   make([]uint32, 0, maxBlocks),
		max:    maxBlocks,
	}
}

// Instrument registers the decoder's cache-effectiveness counters on reg.
// Safe on a nil registry (all handles stay nil no-ops). Counters are flat
// (no shard/worker dimension), so Prometheus exposition passes the names
// through unfolded.
func (d *Decoder) Instrument(reg *obs.Registry) {
	d.cHits = reg.Counter("isa_block_hits")
	d.cMisses = reg.Counter("isa_block_misses")
	d.cEvictions = reg.Counter("isa_block_evictions")
	d.cInvalidations = reg.Counter("isa_block_invalidations")
	d.cChainLinks = reg.Counter("isa_block_chain_links")
	d.cChainSevers = reg.Counter("isa_block_chain_severs")
}

// Stats returns the cache traffic counters.
func (d *Decoder) Stats() DecoderStats { return d.stats }

// Len returns the number of cached blocks.
func (d *Decoder) Len() int { return len(d.blocks) }

// Gen returns the invalidation generation. It changes on every
// InvalidateRange/InvalidateAll, so a consumer holding a *Block pointer
// across cycles can cheaply detect that its hint may be stale.
func (d *Decoder) Gen() uint64 { return d.gen }

// Block returns the decoded basic block starting at pc, building and
// caching it on a miss. word supplies instruction words by address with no
// timing effects (the PMI backdoor); the builder reads at most
// MaxBlockInstrs words starting at pc.
func (d *Decoder) Block(pc uint32, word func(addr uint32) uint32) *Block {
	if b, ok := d.blocks[pc]; ok {
		d.stats.Hits++
		d.cHits.Inc()
		return b
	}
	d.stats.Misses++
	d.cMisses.Inc()
	b := d.build(pc, word)
	d.insert(b)
	return b
}

// Next is the chained lookup: the block at pc, reached by exiting from.
// If from already links to pc at the current generation the link is
// followed directly — no map access. Otherwise it falls back to Block and,
// when from has a free slot, installs a link so the next traversal of this
// edge skips the lookup. from == nil degrades to a plain Block call.
//
// Links never outlive an invalidation (InvalidateRange/InvalidateAll sever
// every link before dropping blocks), so a followed link always targets a
// live block of the current generation. A capacity eviction severs only
// the victim's own links, which is safe: the victim stays a valid decode
// of unchanged memory, merely no longer cached.
func (d *Decoder) Next(from *Block, pc uint32, word func(addr uint32) uint32) *Block {
	if from != nil {
		for i := 0; i < int(from.nlinks); i++ {
			l := &from.links[i]
			if l.pc == pc && l.gen == d.gen {
				d.stats.ChainFollows++
				return l.b
			}
		}
	}
	b := d.Block(pc, word)
	if from != nil && from != b && int(from.nlinks) < ChainSlots {
		from.links[from.nlinks] = chainLink{pc: pc, gen: d.gen, b: b}
		from.nlinks++
		b.preds = append(b.preds, from)
		d.stats.ChainLinks++
		d.cChainLinks.Inc()
	}
	return b
}

func (d *Decoder) build(pc uint32, word func(addr uint32) uint32) *Block {
	b := &Block{PC: pc}
	p := pc
	for len(b.Ins) < MaxBlockInstrs {
		w := word(p)
		in := Decode(w)
		di := DInstr{In: in, Raw: w}
		if !in.Op.Valid() {
			di.Invalid = true
			b.Ins = append(b.Ins, di)
			break
		}
		di.HIdx = uint8(in.Op) // threaded dispatch: handler table is Op-indexed
		di.Pipe = in.Op.Pipe()
		di.NRead = uint8(in.ReadRegs(&di.Reads))
		b.Ins = append(b.Ins, di)
		if in.Op.IsBranch() || in.Op == OpHALT {
			break
		}
		p += 4
	}
	d.fusePairs(b)
	return b
}

// fusePairs marks each instruction whose relationship with its successor
// the executor can exploit. The tag lives on the *head* of the pair.
func (d *Decoder) fusePairs(b *Block) {
	for i := 0; i+1 < len(b.Ins); i++ {
		head, tail := &b.Ins[i], &b.Ins[i+1]
		if head.Invalid || tail.Invalid {
			continue
		}
		switch {
		case head.In.Op.IsStore() && tail.In.Op == OpLOOP:
			// Store + LOOP: the one genuinely dual-issuable hot pair
			// (LS pipe + loop pipe). Stores write no register, so the
			// pair has no intra-pair register dependency by construction.
			head.Fuse = FuseStLoop
		case head.In.Op.IsLoad() && readsReg(tail, head.In.Rd):
			head.Fuse = FuseLoadUse
		case head.Pipe == tail.Pipe:
			head.Fuse = FuseSamePipe
		default:
			continue
		}
		d.stats.Fused++
	}
}

func readsReg(di *DInstr, r uint8) bool {
	for i := 0; i < int(di.NRead); i++ {
		if di.Reads[i] == r {
			return true
		}
	}
	return false
}

func (d *Decoder) insert(b *Block) {
	for len(d.blocks) >= d.max {
		// FIFO eviction; keys already removed by a range invalidation are
		// skipped (the fifo may briefly hold stale keys).
		victim := d.fifo[0]
		d.fifo = d.fifo[1:]
		if vb, ok := d.blocks[victim]; ok {
			d.unlink(vb)
			delete(d.blocks, victim)
			d.stats.Evictions++
			d.cEvictions.Inc()
		}
	}
	d.blocks[b.PC] = b
	d.fifo = append(d.fifo, b.PC)
}

// unlink severs every chain edge touching b: incoming links (compacted out
// of each predecessor's slot array, freeing the slots for relinking) and
// outgoing links (b removed from each target's pred list).
func (d *Decoder) unlink(b *Block) {
	for _, p := range b.preds {
		w := 0
		for i := 0; i < int(p.nlinks); i++ {
			if p.links[i].b == b {
				d.stats.ChainSevers++
				d.cChainSevers.Inc()
				continue
			}
			p.links[w] = p.links[i]
			w++
		}
		for i := w; i < int(p.nlinks); i++ {
			p.links[i] = chainLink{}
		}
		p.nlinks = uint8(w)
	}
	b.preds = nil
	for i := 0; i < int(b.nlinks); i++ {
		t := b.links[i].b
		for j, p := range t.preds {
			if p == b {
				t.preds = append(t.preds[:j], t.preds[j+1:]...)
				break
			}
		}
		b.links[i] = chainLink{}
		d.stats.ChainSevers++
		d.cChainSevers.Inc()
	}
	b.nlinks = 0
}

// severAllLinks drops every chain edge in the cache. Invalidation calls
// this before removing blocks so no link — whatever its generation — can
// survive into the next generation and pin a stale target or occupy a
// bounded slot forever.
func (d *Decoder) severAllLinks() {
	for _, b := range d.blocks {
		n := uint64(b.nlinks)
		d.stats.ChainSevers += n
		d.cChainSevers.Add(n)
		for i := 0; i < int(b.nlinks); i++ {
			b.links[i] = chainLink{}
		}
		b.nlinks = 0
		b.preds = nil
	}
}

// InvalidateAll drops every cached block and bumps the generation. Called
// when code memory changed in a way not attributable to a range (overlay
// remaps, whole-image loads).
func (d *Decoder) InvalidateAll() {
	d.gen++
	d.stats.Invalidations++
	d.cInvalidations.Inc()
	if len(d.blocks) == 0 {
		d.fifo = d.fifo[:0]
		return
	}
	d.severAllLinks()
	for pc := range d.blocks {
		delete(d.blocks, pc)
	}
	d.fifo = d.fifo[:0]
}

// InvalidateRange drops every cached block overlapping [addr, addr+n) and
// bumps the generation. Flash programming and program loads call this with
// the written window.
func (d *Decoder) InvalidateRange(addr uint32, n uint32) {
	if n == 0 {
		return
	}
	d.gen++
	d.stats.Invalidations++
	d.cInvalidations.Inc()
	// Any generation bump invalidates every link (consumers key chain hints
	// on the generation), so sever them all rather than only those touching
	// dropped blocks — a survivor's stale-generation links would otherwise
	// occupy its bounded slots forever.
	d.severAllLinks()
	lo, hi := uint64(addr), uint64(addr)+uint64(n)
	removed := false
	for pc, b := range d.blocks {
		start, end := uint64(pc), uint64(pc)+4*uint64(len(b.Ins))
		if start < hi && end > lo {
			delete(d.blocks, pc)
			removed = true
		}
	}
	if removed {
		// Compact the eviction queue, preserving insertion order so the
		// eviction sequence stays deterministic.
		keep := d.fifo[:0]
		for _, pc := range d.fifo {
			if _, ok := d.blocks[pc]; ok {
				keep = append(keep, pc)
			}
		}
		d.fifo = keep
	}
}

// CachedPCs returns the entry PCs of all cached blocks in ascending order
// (test and diagnostic use).
func (d *Decoder) CachedPCs() []uint32 {
	pcs := make([]uint32, 0, len(d.blocks))
	for pc := range d.blocks {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// ReadRegs stores the registers the instruction reads into regs and
// returns how many there are. It is allocation-free: the issue logic runs
// it for every instruction (once per execution on the per-word path, once
// per block build on the cached path).
func (in Instr) ReadRegs(regs *[3]uint8) int {
	switch in.Op {
	case OpNOP, OpMOVI, OpMOVH, OpJ, OpRFE, OpHALT, OpDBG, OpCALL, OpMFCR:
		return 0
	case OpORIL:
		regs[0] = in.Rd
		return 1
	case OpMAC:
		regs[0], regs[1], regs[2] = in.Rd, in.Ra, in.Rb
		return 3
	case OpSTW, OpSTB:
		regs[0], regs[1] = in.Rd, in.Ra
		return 2
	case OpLDW, OpLDB, OpLEA, OpJR, OpLOOP, OpMTCR,
		OpADDI, OpANDI, OpORI, OpXORI, OpSHLI, OpSHRI, OpSLTI:
		regs[0] = in.Ra
		return 1
	default: // branches and three-register ALU
		regs[0], regs[1] = in.Ra, in.Rb
		return 2
	}
}
