package isa

import "testing"

// FuzzParseAsm: the text assembler must reject garbage with errors, never
// panics.
func FuzzParseAsm(f *testing.F) {
	f.Add("movi r1, 10\nhalt")
	f.Add("x: beq r1, r2, x")
	f.Add(".org 0x100\n.word 0xFF")
	f.Add("ldw r1, [r2+4]")
	f.Add("; comment only")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseAsm(src, 0x1000)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
	})
}

// FuzzDecodeInstr: Decode accepts any 32-bit word without panicking, and
// valid decodes re-encode to a word that decodes identically.
func FuzzDecodeInstr(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		_ = in.String()
		if in.Op.Valid() {
			again := Decode(in.Encode())
			if again != in {
				t.Fatalf("decode not stable: %+v vs %+v", in, again)
			}
		}
	})
}
