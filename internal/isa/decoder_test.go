package isa

import (
	"encoding/binary"
	"testing"
)

// memWord adapts a word slice at base to the Decoder's word callback.
// Addresses beyond the slice read as zero (OpNOP), like erased memory.
func memWord(base uint32, words []uint32) func(uint32) uint32 {
	return func(addr uint32) uint32 {
		i := (addr - base) / 4
		if i >= uint32(len(words)) {
			return 0
		}
		return words[i]
	}
}

func encodeAll(ins []Instr) []uint32 {
	ws := make([]uint32, len(ins))
	for i, in := range ins {
		ws[i] = in.Encode()
	}
	return ws
}

func TestDecoderBlockTermination(t *testing.T) {
	const base = 0x8000_0000
	cases := []struct {
		name    string
		words   []uint32
		wantLen int
		invalid bool
	}{
		{"branch", encodeAll([]Instr{
			{Op: OpADDI, Rd: 2, Ra: 2, Imm: 1},
			{Op: OpBEQ, Ra: 2, Rb: 3, Imm: 4},
			{Op: OpNOP}, // unreachable from this entry
		}), 2, false},
		{"halt", encodeAll([]Instr{
			{Op: OpNOP},
			{Op: OpHALT},
			{Op: OpNOP},
		}), 2, false},
		{"invalid", []uint32{
			Instr{Op: OpNOP}.Encode(),
			0xFF00_0000, // opcode 0xFF does not decode
		}, 2, true},
		{"jump24", encodeAll([]Instr{
			{Op: OpJ, Off24: -3},
		}), 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(8)
			b := d.Block(base, memWord(base, tc.words))
			if b.PC != base {
				t.Fatalf("block PC = %#x, want %#x", b.PC, base)
			}
			if len(b.Ins) != tc.wantLen {
				t.Fatalf("block length = %d, want %d", len(b.Ins), tc.wantLen)
			}
			last := b.Ins[len(b.Ins)-1]
			if last.Invalid != tc.invalid {
				t.Fatalf("last.Invalid = %v, want %v", last.Invalid, tc.invalid)
			}
			if tc.invalid && last.Raw != tc.words[len(b.Ins)-1] {
				t.Fatalf("invalid terminator Raw = %#x, want %#x", last.Raw, tc.words[len(b.Ins)-1])
			}
		})
	}
}

func TestDecoderBlockLengthCap(t *testing.T) {
	const base = 0x8000_0000
	d := NewDecoder(8)
	// All-zero memory: every word decodes as NOP, so the only terminator is
	// the length cap.
	b := d.Block(base, func(uint32) uint32 { return 0 })
	if len(b.Ins) != MaxBlockInstrs {
		t.Fatalf("block length = %d, want cap %d", len(b.Ins), MaxBlockInstrs)
	}
	for i, di := range b.Ins {
		if di.In.Op != OpNOP || di.Invalid {
			t.Fatalf("ins[%d] = %+v, want NOP", i, di)
		}
	}
}

func TestDecoderFusionMarks(t *testing.T) {
	const base = 0x8000_0000
	ins := []Instr{
		{Op: OpSTW, Rd: 2, Ra: 1, Imm: 0}, // 0: store + LOOP → FuseStLoop
		{Op: OpLOOP, Ra: 9, Imm: -2},      //    (also ends the block? LOOP is a branch)
	}
	d := NewDecoder(8)
	b := d.Block(base, memWord(base, encodeAll(ins)))
	if len(b.Ins) != 2 {
		t.Fatalf("block length = %d, want 2", len(b.Ins))
	}
	if b.Ins[0].Fuse != FuseStLoop {
		t.Fatalf("store+loop fuse = %v, want %v", b.Ins[0].Fuse, FuseStLoop)
	}

	ins = []Instr{
		{Op: OpLDW, Rd: 4, Ra: 1, Imm: 0},  // 0: load whose result ...
		{Op: OpADDI, Rd: 5, Ra: 4, Imm: 1}, // 1: ... the next reads → FuseLoadUse
		{Op: OpADD, Rd: 6, Ra: 5, Rb: 5},   // 2: Int pipe
		{Op: OpSUB, Rd: 7, Ra: 6, Rb: 6},   // 3: Int pipe again → FuseSamePipe on 2
		{Op: OpLDW, Rd: 8, Ra: 1, Imm: 4},  // 4: load, result unused by 5
		{Op: OpSTW, Rd: 7, Ra: 1, Imm: 8},  // 5: LS pipe after LS-pipe load → FuseSamePipe on 4
		{Op: OpHALT},                       // 6
	}
	d = NewDecoder(8)
	b = d.Block(base, memWord(base, encodeAll(ins)))
	wantFuse := []Fuse{FuseLoadUse, FuseSamePipe, FuseSamePipe, FuseNone, FuseSamePipe, FuseNone, FuseNone}
	for i, want := range wantFuse {
		if b.Ins[i].Fuse != want {
			t.Errorf("ins[%d] (%v) fuse = %v, want %v", i, b.Ins[i].In.Op, b.Ins[i].Fuse, want)
		}
	}
	if st := d.Stats(); st.Fused != 4 {
		t.Fatalf("Fused = %d, want 4", st.Fused)
	}
}

func TestDecoderHitMissStats(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{{Op: OpNOP}, {Op: OpHALT}})
	d := NewDecoder(8)
	w := memWord(base, words)
	b1 := d.Block(base, w)
	b2 := d.Block(base, w)
	if b1 != b2 {
		t.Fatal("second lookup did not hit the cached block")
	}
	if st := d.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDecoderInvalidateRange(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpNOP}, {Op: OpNOP}, {Op: OpNOP}, {Op: OpHALT},
	})
	d := NewDecoder(8)
	w := memWord(base, words)
	d.Block(base, w)   // covers [base, base+16)
	d.Block(base+8, w) // covers [base+8, base+16)
	d.Block(base+0x100, func(uint32) uint32 { return Instr{Op: OpHALT}.Encode() })
	gen := d.Gen()

	// A write before all blocks: nothing dropped, generation still bumps.
	d.InvalidateRange(base-8, 4)
	if d.Len() != 3 {
		t.Fatalf("Len after miss-range = %d, want 3", d.Len())
	}
	if d.Gen() == gen {
		t.Fatal("generation did not change on InvalidateRange")
	}

	// One byte into the second block's window: drops both overlapping
	// blocks, keeps the distant one.
	d.InvalidateRange(base+9, 1)
	if d.Len() != 1 {
		t.Fatalf("Len after overlap = %d, want 1 (got PCs %#x)", d.Len(), d.CachedPCs())
	}
	if pcs := d.CachedPCs(); len(pcs) != 1 || pcs[0] != base+0x100 {
		t.Fatalf("CachedPCs = %#x, want [%#x]", pcs, base+0x100)
	}

	// n == 0 is a no-op: no generation bump.
	gen = d.Gen()
	d.InvalidateRange(base, 0)
	if d.Gen() != gen {
		t.Fatal("zero-length invalidation bumped the generation")
	}

	// Wrap-around near the top of the address space must not overflow.
	d.InvalidateRange(0xFFFF_FFFC, 16)
	if d.Len() != 1 {
		t.Fatalf("Len after high-address range = %d, want 1", d.Len())
	}
}

func TestDecoderInvalidateAll(t *testing.T) {
	const base = 0x8000_0000
	d := NewDecoder(8)
	halt := func(uint32) uint32 { return Instr{Op: OpHALT}.Encode() }
	d.Block(base, halt)
	d.Block(base+0x40, halt)
	gen := d.Gen()
	d.InvalidateAll()
	if d.Len() != 0 {
		t.Fatalf("Len after InvalidateAll = %d, want 0", d.Len())
	}
	if d.Gen() == gen {
		t.Fatal("generation did not change on InvalidateAll")
	}
	if st := d.Stats(); st.Invalidations == 0 {
		t.Fatal("Invalidations not counted")
	}
}

func TestDecoderFIFOEviction(t *testing.T) {
	halt := func(uint32) uint32 { return Instr{Op: OpHALT}.Encode() }
	d := NewDecoder(3)
	for i := uint32(0); i < 3; i++ {
		d.Block(0x8000_0000+i*0x40, halt)
	}
	// Re-hitting the oldest block must not refresh its position: FIFO, not LRU.
	d.Block(0x8000_0000, halt)
	d.Block(0x8000_0000+3*0x40, halt) // evicts the first-inserted block
	if st := d.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	pcs := d.CachedPCs()
	want := []uint32{0x8000_0040, 0x8000_0080, 0x8000_00C0}
	if len(pcs) != len(want) {
		t.Fatalf("CachedPCs = %#x, want %#x", pcs, want)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("CachedPCs = %#x, want %#x", pcs, want)
		}
	}

	// Eviction after a range invalidation skips the stale fifo entry
	// without double-counting.
	d.InvalidateRange(0x8000_0040, 4)
	for i := uint32(4); i < 7; i++ {
		d.Block(0x8000_0000+i*0x40, halt)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (cap)", d.Len())
	}
}

func TestNewDecoderDefaultSize(t *testing.T) {
	if NewDecoder(0).max != DefaultBlockCacheSize {
		t.Fatal("NewDecoder(0) did not select the default capacity")
	}
	if NewDecoder(-5).max != DefaultBlockCacheSize {
		t.Fatal("NewDecoder(-5) did not select the default capacity")
	}
}

// TestReadRegsMatchesSemantics cross-checks the static read-set against the
// operand fields each opcode actually uses, for every valid opcode.
func TestReadRegsMatchesSemantics(t *testing.T) {
	in := Instr{Rd: 3, Ra: 5, Rb: 7}
	for op := Op(0); int(op) < NumOps; op++ {
		if !op.Valid() {
			continue
		}
		in.Op = op
		var regs [3]uint8
		n := in.ReadRegs(&regs)
		if n < 0 || n > 3 {
			t.Fatalf("%v: ReadRegs returned %d", op, n)
		}
		has := func(r uint8) bool {
			for i := 0; i < n; i++ {
				if regs[i] == r {
					return true
				}
			}
			return false
		}
		// Stores and MAC read Rd; ORIL reads its own Rd.
		wantRd := op.IsStore() || op == OpMAC || op == OpORIL
		if has(in.Rd) != wantRd && in.Rd != in.Ra && in.Rd != in.Rb {
			t.Errorf("%v: reads Rd = %v, want %v", op, has(in.Rd), wantRd)
		}
	}
}

// FuzzDecoderBlock: building a block from arbitrary bytes never panics,
// every decoded entry agrees with the one-word reference Decode, the block
// respects its termination contract, and a rebuild after invalidation is
// identical.
func FuzzDecoderBlock(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	ins := []Instr{
		{Op: OpLDW, Rd: 4, Ra: 1, Imm: 8},
		{Op: OpADDI, Rd: 5, Ra: 4, Imm: 1},
		{Op: OpSTW, Rd: 5, Ra: 1, Imm: 8},
		{Op: OpLOOP, Ra: 9, Imm: -3},
	}
	seed := make([]byte, 4*len(ins))
	for i, in := range ins {
		binary.LittleEndian.PutUint32(seed[4*i:], in.Encode())
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = 0x8000_0000
		word := func(addr uint32) uint32 {
			i := int(addr-base) * 1 // byte offset
			var w uint32
			for b := 0; b < 4; b++ {
				if i+b < len(data) {
					w |= uint32(data[i+b]) << (8 * b)
				}
			}
			return w
		}
		d := NewDecoder(4)
		blk := d.Block(base, word)
		if len(blk.Ins) == 0 || len(blk.Ins) > MaxBlockInstrs {
			t.Fatalf("block length %d out of range", len(blk.Ins))
		}
		for i, di := range blk.Ins {
			ref := Decode(di.Raw)
			if di.Invalid {
				if ref.Op.Valid() {
					t.Fatalf("ins[%d] marked invalid but %#08x decodes", i, di.Raw)
				}
				if i != len(blk.Ins)-1 {
					t.Fatalf("invalid entry %d is not the terminator", i)
				}
				continue
			}
			if di.In != ref {
				t.Fatalf("ins[%d] = %+v, reference decode %+v", i, di.In, ref)
			}
			if di.Pipe != ref.Op.Pipe() {
				t.Fatalf("ins[%d] pipe %v, want %v", i, di.Pipe, ref.Op.Pipe())
			}
			var regs [3]uint8
			if n := ref.ReadRegs(&regs); n != int(di.NRead) || regs != di.Reads {
				t.Fatalf("ins[%d] reads %v/%d, want %v/%d", i, di.Reads, di.NRead, regs, n)
			}
			// Only the last entry may be a block terminator.
			if i != len(blk.Ins)-1 && (ref.Op.IsBranch() || ref.Op == OpHALT) {
				t.Fatalf("branch/halt at %d is not the terminator", i)
			}
		}
		// Rebuilding after invalidation must give an identical block.
		gen := d.Gen()
		d.InvalidateRange(base, uint32(4*len(blk.Ins)))
		if d.Gen() == gen {
			t.Fatal("invalidation did not bump generation")
		}
		again := d.Block(base, word)
		if len(again.Ins) != len(blk.Ins) {
			t.Fatalf("rebuild length %d, want %d", len(again.Ins), len(blk.Ins))
		}
		for i := range blk.Ins {
			if again.Ins[i] != blk.Ins[i] {
				t.Fatalf("rebuild ins[%d] = %+v, want %+v", i, again.Ins[i], blk.Ins[i])
			}
		}
	})
}

func TestDecoderHandlerIndex(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpMOVI, Rd: 2, Imm: 7},
		{Op: OpADD, Rd: 3, Ra: 2, Rb: 2},
		{Op: OpLDW, Rd: 4, Ra: 1, Imm: 8},
		{Op: OpBEQ, Ra: 2, Rb: 3, Imm: 4},
	})
	d := NewDecoder(8)
	b := d.Block(base, memWord(base, words))
	for i, di := range b.Ins {
		if di.HIdx != uint8(di.In.Op) {
			t.Errorf("Ins[%d].HIdx = %d, want opcode %d (%v)", i, di.HIdx, di.In.Op, di.In.Op)
		}
	}
}

func TestDecoderChainNext(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpJ, Off24: 1}, // block A
		{Op: OpJ, Off24: 1}, // block B
		{Op: OpHALT},        // block C
	})
	w := memWord(base, words)
	d := NewDecoder(8)
	a := d.Block(base, w)

	// First traversal of the edge: fallback lookup plus link install.
	b := d.Next(a, base+4, w)
	if b.PC != base+4 {
		t.Fatalf("Next returned block at %#x, want %#x", b.PC, base+4)
	}
	if st := d.Stats(); st.ChainLinks != 1 || st.ChainFollows != 0 {
		t.Fatalf("after install: %+v", st)
	}

	// Second traversal: served by the link, no map access needed.
	if b2 := d.Next(a, base+4, w); b2 != b {
		t.Fatalf("Next did not follow the installed link")
	}
	if st := d.Stats(); st.ChainFollows != 1 {
		t.Fatalf("after follow: %+v", st)
	}

	// nil from degrades to a plain Block lookup.
	if c := d.Next(nil, base+8, w); c.PC != base+8 {
		t.Fatalf("Next(nil, ...) returned block at %#x", c.PC)
	}

	// A block never links to itself.
	if x := d.Next(a, base, w); x != a {
		t.Fatalf("Next(a, a.PC) did not return a")
	}
	if st := d.Stats(); st.ChainLinks != 1 {
		t.Fatalf("self-edge installed a link: %+v", st)
	}
}

func TestDecoderChainSlotsBounded(t *testing.T) {
	halt := func(uint32) uint32 { return Instr{Op: OpHALT}.Encode() }
	d := NewDecoder(16)
	from := d.Block(0x1000, halt)
	for i := 1; i <= ChainSlots+2; i++ {
		d.Next(from, 0x1000+uint32(i)*0x100, halt)
	}
	if got := d.Stats().ChainLinks; got != uint64(ChainSlots) {
		t.Fatalf("ChainLinks = %d, want %d (slots must bound installs)", got, ChainSlots)
	}
	// A linked target follows; an overflow target keeps taking the lookup.
	before := d.Stats().ChainFollows
	d.Next(from, 0x1100, halt)
	if d.Stats().ChainFollows != before+1 {
		t.Fatal("linked edge was not followed")
	}
	d.Next(from, 0x1000+uint32(ChainSlots+1)*0x100, halt)
	if d.Stats().ChainFollows != before+1 {
		t.Fatal("overflow edge followed a link that must not exist")
	}
}

func TestDecoderChainSeverOnInvalidate(t *testing.T) {
	const base = 0x8000_0000
	words := encodeAll([]Instr{
		{Op: OpJ, Off24: 1},
		{Op: OpHALT},
	})
	w := memWord(base, words)

	t.Run("range", func(t *testing.T) {
		d := NewDecoder(8)
		a := d.Block(base, w)
		d.Next(a, base+4, w)
		// Invalidate a window overlapping neither block: every link must
		// still die (the generation bump invalidates all of them), while
		// the blocks themselves survive.
		d.InvalidateRange(base+0x1000, 4)
		if st := d.Stats(); st.ChainSevers != 1 {
			t.Fatalf("ChainSevers = %d, want 1: %+v", st.ChainSevers, st)
		}
		if a.nlinks != 0 || len(a.preds) != 0 {
			t.Fatalf("survivor kept chain state: nlinks=%d preds=%d", a.nlinks, len(a.preds))
		}
		if d.Len() != 2 {
			t.Fatalf("non-overlapping invalidation dropped blocks: len=%d", d.Len())
		}
		// The freed slot is reusable at the new generation.
		d.Next(a, base+4, w)
		if st := d.Stats(); st.ChainLinks != 2 {
			t.Fatalf("relink after invalidation failed: %+v", st)
		}
	})

	t.Run("all", func(t *testing.T) {
		d := NewDecoder(8)
		a := d.Block(base, w)
		d.Next(a, base+4, w)
		d.InvalidateAll()
		if st := d.Stats(); st.ChainSevers != 1 {
			t.Fatalf("ChainSevers = %d, want 1: %+v", st.ChainSevers, st)
		}
		if a.nlinks != 0 {
			t.Fatalf("dropped block kept links: nlinks=%d", a.nlinks)
		}
	})
}

func TestDecoderChainSeverOnEviction(t *testing.T) {
	halt := func(uint32) uint32 { return Instr{Op: OpHALT}.Encode() }
	d := NewDecoder(2)
	a := d.Block(0x1000, halt)
	b := d.Next(a, 0x2000, halt) // installs a→b; cache now full
	d.Block(0x3000, halt)        // FIFO-evicts a
	st := d.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1: %+v", st.Evictions, st)
	}
	if st.ChainSevers != 1 {
		t.Fatalf("ChainSevers = %d, want 1 (victim's outgoing link): %+v", st.ChainSevers, st)
	}
	if a.nlinks != 0 {
		t.Fatalf("evicted block kept links: nlinks=%d", a.nlinks)
	}
	if len(b.preds) != 0 {
		t.Fatalf("target kept a pred edge to the evicted block: %d", len(b.preds))
	}
}
