package experiments

import (
	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
)

// E9Multicore tests the paper's closing claim — "The proposed approach is
// sustainable for increasing clock frequencies and number of cores even
// with the limited bandwidth of affordable tool interfaces" — on a
// two-TriCore variant: one MCDS observes both cores (plus the PCP) in
// parallel; rate-message bandwidth grows linearly with core count and
// stays far below full-trace volume, while the merged stream keeps all
// sources' windows attributable and in cycle order.
func E9Multicore() *Table {
	t := newTable("E9", "Multi-core scalability: one MCDS, two TriCore cores",
		"configuration", "rate bytes", "flow-trace bytes", "sources seen", "order ok")

	run := func(secondCore, flow bool) (rateBytes, flowBytes uint64, sources int, ordered bool) {
		cfg := baseCfg().WithED()
		cfg.SecondCore = secondCore
		s := soc.New(cfg, 13)

		mk := func(base, dspr uint32, stride int32) *isa.Program {
			a := isa.NewAsm(base)
			a.Movw(1, dspr)
			a.Movw(3, 1<<30) // effectively endless
			a.Label("b")
			a.Addi(2, 2, stride)
			a.Stw(2, 1, 0)
			a.Ldw(4, 1, 0)
			a.Loop(3, "b")
			a.Halt()
			p, err := a.Assemble()
			if err != nil {
				panic(err)
			}
			return p
		}
		p0 := mk(mem.FlashBase, mem.DSPRBase, 1)
		s.LoadProgram(p0)
		s.ResetCPU(p0.Base)
		if secondCore {
			p1 := mk(mem.FlashBase+0x10000, mem.DSPR1Base, 3)
			s.LoadProgram(p1)
			s.ResetCPU1(p1.Base)
		}

		// Rate runs store into the EMEM (and are decoded); flow runs use a
		// nil sink so BytesEmitted reflects the true volume rather than
		// the 384 KB ring capacity.
		sink := s.EMEM
		if flow {
			sink = nil
		}
		m := mcds.New("mcds", sink)
		obs0 := m.AddCore(s.CPU, 0)
		m.AddCounter(mcds.NewRateCounter("ipc0", 0,
			mcds.Tap{Obs: obs0, Event: sim.EvInstrExecuted},
			mcds.Tap{Obs: obs0, Event: sim.EvCycle}, 1000))
		if flow {
			obs0.FlowTrace = true
		}
		if secondCore {
			obs1 := m.AddCore(s.CPU1, 1)
			m.AddCounter(mcds.NewRateCounter("ipc1", 1,
				mcds.Tap{Obs: obs1, Event: sim.EvInstrExecuted},
				mcds.Tap{Obs: obs1, Event: sim.EvCycle}, 1000))
			if flow {
				obs1.FlowTrace = true
			}
		}
		s.Clock.Attach("mcds", m)
		s.Clock.Run(200_000)
		s.Clock.Step()

		if flow {
			return 0, m.BytesEmitted, 0, true
		}
		var dec tmsg.Decoder
		msgs, _, err := dec.DecodeAll(s.EMEM.Drain(s.EMEM.Level()))
		if err != nil {
			panic(err)
		}
		seen := map[uint8]bool{}
		ordered = true
		var last uint64
		for _, msg := range msgs {
			seen[msg.Src] = true
			if msg.Cycle < last {
				ordered = false
			}
			last = msg.Cycle
		}
		return m.BytesEmitted, 0, len(seen), ordered
	}

	r1, _, s1, o1 := run(false, false)
	r2, _, s2, o2 := run(true, false)
	_, f1, _, _ := run(false, true)
	_, f2, _, _ := run(true, true)

	t.addRow("1 core, rate counters", d(r1), "-", d(uint64(s1)), ok(o1))
	t.addRow("2 cores, rate counters", d(r2), "-", d(uint64(s2)), ok(o2))
	t.addRow("1 core, + flow trace", "-", d(f1), "-", "-")
	t.addRow("2 cores, + flow trace", "-", d(f2), "-", "-")

	t.Metrics["rate_scaling"] = float64(r2) / float64(r1)
	t.Metrics["flow_scaling"] = float64(f2) / float64(f1)
	t.Metrics["flow_over_rate_2core"] = float64(f2) / float64(r2)
	t.Metrics["order_preserved"] = b2f(o1 && o2)
	t.Metrics["sources_2core"] = float64(s2)
	t.note("rate-message volume scales ~linearly with core count (2 cores ≈ %.1f×),", float64(r2)/float64(r1))
	t.note("while per-core flow trace stays ~%.0f× more expensive — the rate approach remains tool-link-feasible", float64(f2)/float64(r2))
	return t
}

func ok(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
