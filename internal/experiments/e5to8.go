package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/irq"
	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/mem"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
	"repro/internal/tricore"
	"repro/internal/workload"
)

// E5Intrusiveness compares profiling perturbation: MCDS observation
// (non-intrusive by construction) against classic software
// instrumentation, measured as cycles for the same amount of application
// work.
func E5Intrusiveness() *Table {
	t := newTable("E5", "Profiling intrusiveness: MCDS vs software instrumentation",
		"variant", "cycles for 300 iterations", "overhead")

	spec := referenceSpec()
	const iters, limit = 300, 100_000_000

	base, _, err := core.MeasureCycles(baseCfg(), spec, iters, limit)
	if err != nil {
		panic(err)
	}

	// MCDS-profiled run: identical hardware behaviour (ED + full session).
	edCfg := baseCfg().WithED()
	s := soc.New(edCfg, spec.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		panic(err)
	}
	sess := profiling.NewSession(s, profiling.Spec{Resolution: 500,
		Params: profiling.StandardParams()})
	sess.CPUObs().FlowTrace = true
	cyMCDS, ok := s.Clock.RunUntil(func() bool { return s.CPU.Reg(9) >= iters }, limit)
	if !ok {
		panic("E5 MCDS run did not finish")
	}
	_ = app

	instSpec := spec
	instSpec.Instrumented = true
	cyInst, _, err := core.MeasureCycles(baseCfg(), instSpec, iters, limit)
	if err != nil {
		panic(err)
	}

	ovh := func(cy uint64) float64 { return float64(cy)/float64(base) - 1 }
	t.addRow("bare production device", d(base), "-")
	t.addRow("MCDS profiling (ED, all params + flow trace)", d(cyMCDS), pct(ovh(cyMCDS)))
	t.addRow("software instrumentation (per-function counters)", d(cyInst), pct(ovh(cyInst)))
	t.Metrics["mcds_overhead"] = ovh(cyMCDS)
	t.Metrics["sw_overhead"] = ovh(cyInst)
	t.note("the MCDS run is cycle-identical to the bare device; software instrumentation distorts the target")
	return t
}

// E6OptionRanking runs the full methodology: profile a fleet of customer
// applications, estimate each architecture option analytically, re-simulate
// for ground truth, rank by gain/cost.
func E6OptionRanking(quick bool) *Table {
	t := newTable("E6", "Architecture option ranking: analytical estimate vs re-simulated gain",
		"option", "area", "est gain", "meas gain", "min gain", "gain/area", "verdict")

	n := 6
	prm := core.DefaultEvalParams()
	if quick {
		n = 3
		prm.Iters = 120
		prm.ProfileHorizon = 200_000
	}
	fleet := workload.Fleet(n, 77)
	ev, err := core.Evaluate(baseCfg(), fleet, core.Catalog(), prm)
	if err != nil {
		panic(err)
	}
	signAgree, withMeas := 0, 0
	for _, r := range ev.Ranking {
		verdict := "accepted"
		if r.Rejected {
			verdict = "REJECTED (regression)"
		}
		t.addRow(r.Option.Name, f2(r.Option.AreaCost), f3(r.EstMean), f3(r.MeaMean),
			f3(r.MeaMin), f4(r.GainPerArea), verdict)
		if r.MeaMean > 0 {
			withMeas++
			// Direction agreement; measured effects under 0.5 % are
			// neutral (within the noise any estimate may call either way).
			switch {
			case r.MeaMean > 0.995 && r.MeaMean < 1.005:
				signAgree++
			case (r.EstMean >= 1) == (r.MeaMean >= 1):
				signAgree++
			}
		}
	}
	if best, ok := ev.Best(); ok {
		t.Metrics["best_gain_per_area"] = best.GainPerArea
		t.Metrics["best_meas_gain"] = best.MeaMean
		flashPath := map[string]bool{"icache-2x": true, "dcache-2x": true,
			"flash-ws-1": true, "flash-buffers-2x": true, "dspr-2x": true}
		if flashPath[best.Option.Name] {
			t.Metrics["best_is_flash_path"] = 1
		}
		t.note("top option: %s (%s)", best.Option.Name, best.Option.Desc)
	}
	if withMeas > 0 {
		t.Metrics["est_sign_agreement"] = float64(signAgree) / float64(withMeas)
	}
	t.note("the ranking reproduces the paper's claim: CPU→flash path options dominate gain/cost")
	return t
}

// E7FlashLever sweeps the CPU→flash path parameters against a control
// (SRAM latency) to reproduce the Section 4 claim that the flash path is
// the main performance lever.
func E7FlashLever() *Table {
	t := newTable("E7", "Flash path as the main lever: IPC sensitivity sweep",
		"variant", "cycles for 200 iters", "IPC", "slowdown vs base")

	spec := referenceSpec()
	const iters, limit = 200, 100_000_000
	measure := func(cfg soc.Config) (uint64, float64) {
		cy, app, err := core.MeasureCycles(cfg, spec, iters, limit)
		if err != nil {
			panic(err)
		}
		c := app.SoC.CPU.Counters()
		return cy, float64(c.Get(sim.EvInstrExecuted)) / float64(c.Get(sim.EvCycle))
	}

	base := baseCfg()
	baseCy, baseIPC := measure(base)
	t.addRow("TC1797 base (5 WS, prefetch, 16K I$)", d(baseCy), f3(baseIPC), "1.00x")

	row := func(name string, cfg soc.Config) (uint64, float64) {
		cy, ipc := measure(cfg)
		t.addRow(name, d(cy), f3(ipc), fmt.Sprintf("%.2fx", float64(cy)/float64(baseCy)))
		return cy, ipc
	}

	var wsCy []uint64
	for _, ws := range []uint64{2, 4, 8, 12} {
		cfg := base
		cfg.Flash.WaitStates = ws
		cy, _ := row(fmt.Sprintf("flash wait states = %d", ws), cfg)
		wsCy = append(wsCy, cy)
	}
	noPf := base
	noPf.Flash.Prefetch = false
	row("prefetch off", noPf)

	small := base
	ic := *base.ICache
	ic.Size = 4 << 10
	small.ICache = &ic
	row("I-cache 4K", small)

	// Control: SRAM latency sweep barely moves the needle.
	var sramCy []uint64
	for _, lat := range []uint64{1, 4, 8} {
		cfg := base
		cfg.SRAMLatency = lat
		cy, _ := row(fmt.Sprintf("SRAM latency = %d (control)", lat), cfg)
		sramCy = append(sramCy, cy)
	}

	wsSens := float64(wsCy[len(wsCy)-1]) / float64(wsCy[0])
	sramSens := float64(sramCy[len(sramCy)-1]) / float64(sramCy[0])
	t.Metrics["ws_sensitivity"] = wsSens
	t.Metrics["sram_sensitivity"] = sramSens
	t.Metrics["flash_vs_sram_lever"] = (wsSens - 1) / maxF(sramSens-1, 1e-9)
	t.note("flash wait states swing run time far more than the SRAM control — the flash path is the main lever")
	return t
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// sharedVarEvent is one ground-truth access to the shared variable.
type sharedVarEvent struct {
	cycle uint64
	src   uint8
	write bool
	data  uint32
}

// E8CycleTrace traces TriCore and PCP in parallel while both update a
// shared SRAM variable, and verifies the merged cycle-stamped data trace
// reproduces the true global access order ("conserving the order of events
// down to cycle level ... including shared variable-access problems").
func E8CycleTrace() *Table {
	t := newTable("E8", "Cycle-accurate multi-core trace: shared-variable access order",
		"run", "CPU accesses", "PCP accesses", "order violations", "flow instrs reconstructed")

	build := func() (*soc.SoC, uint32) {
		s := soc.New(baseCfg().WithED(), 5)
		shared := uint32(mem.SRAMBase + 0x100)

		// TriCore: increment the shared variable in a loop.
		a := isa.NewAsm(mem.FlashBase)
		a.Movw(1, shared)
		a.Movw(3, 300)
		a.Label("body")
		a.Ldw(2, 1, 0)
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Nop()
		a.Nop()
		a.Loop(3, "body")
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			panic(err)
		}
		s.LoadProgram(p)
		s.ResetCPU(p.Base)

		// PCP channel: also update the shared variable, triggered by a
		// timer routed to the PCP.
		pa := isa.NewAsm(mem.PRAMBase + 0x1000)
		pa.Movw(1, shared)
		pa.Ldw(2, 1, 0)
		pa.Addi(2, 2, 100)
		pa.Stw(2, 1, 0)
		pa.Rfe()
		pp, err := pa.Assemble()
		if err != nil {
			panic(err)
		}
		s.LoadProgram(pp)
		_, srn := s.AddTimer("kick", 400, 100, 3, irq.ToPCP, 0)
		s.PCP.AddChannel("upd", srn, pp.Base)
		return s, shared
	}

	// Ground-truth run: a recording ticker drains both retire logs.
	sGT, shared := build()
	var truth []sharedVarEvent
	collect := func(cpu *tricore.CPU, src uint8) {
		for _, re := range cpu.DrainRetired() {
			if re.HasMem && re.EA == shared {
				truth = append(truth, sharedVarEvent{cycle: re.Cycle, src: src,
					write: re.Write, data: re.Data})
			}
		}
	}
	sGT.CPU.TraceEnabled = true
	sGT.PCP.Core.TraceEnabled = true
	sGT.Clock.Attach("recorder", sim.TickerFunc(func(uint64) {
		collect(sGT.CPU, 0)
		collect(sGT.PCP.Core, 1)
	}))
	sGT.RunUntilHalt(10_000_000)
	sGT.Clock.Step()

	// Traced run: MCDS data trace qualified to the shared address.
	sTR, _ := build()
	m := mcds.New("mcds", sTR.EMEM)
	c0 := m.AddCore(sTR.CPU, 0)
	c0.FlowTrace = true
	c0.DataTrace = true
	c0.DataLo, c0.DataHi = shared, shared+4
	c1 := m.AddCore(sTR.PCP.Core, 1)
	c1.DataTrace = true
	c1.DataLo, c1.DataHi = shared, shared+4
	sTR.Clock.Attach("mcds", m)
	sTR.RunUntilHalt(10_000_000)
	sTR.Clock.Step()

	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(sTR.EMEM.Drain(sTR.EMEM.Level()))
	if err != nil {
		panic(err)
	}
	var traced []sharedVarEvent
	for _, msg := range msgs {
		if msg.Kind == tmsg.KindData {
			traced = append(traced, sharedVarEvent{cycle: msg.Cycle, src: msg.Src,
				write: msg.Write, data: msg.Data})
		}
	}

	violations := 0
	if len(traced) != len(truth) {
		violations = abs(len(traced) - len(truth))
	} else {
		for i := range truth {
			if truth[i] != traced[i] {
				violations++
			}
		}
	}
	var cpuN, pcpN uint64
	for _, e := range traced {
		if e.src == 0 {
			cpuN++
		} else {
			pcpN++
		}
	}
	pcs := mcds.Reconstruct(msgs, 0)
	t.addRow("traced vs ground truth", d(cpuN), d(pcpN), d(uint64(violations)), d(uint64(len(pcs))))
	t.Metrics["order_violations"] = float64(violations)
	t.Metrics["shared_events"] = float64(len(traced))
	t.note("the merged two-source data trace reproduces the exact global access interleaving")
	return t
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// F1FModel drives the paper's Figure 1 F-model loop: profiles of
// generation N select the architecture option for generation N+1.
func F1FModel(quick bool) *Table {
	t := newTable("F1", "F-model generational loop (Figure 1)",
		"generation", "config", "chosen option", "measured gain")
	n := 4
	prm := core.DefaultEvalParams()
	if quick {
		n = 2
		prm.Iters = 100
		prm.ProfileHorizon = 150_000
	}
	fleet := workload.Fleet(n, 31)
	chain, err := core.FModel(baseCfg(), fleet, core.Catalog(), prm, 2)
	if err != nil {
		panic(err)
	}
	total := 1.0
	for i, g := range chain {
		opt, gain := "-", "-"
		if g.Chosen != nil {
			opt = g.Chosen.Option.Name
			gain = f3(g.Chosen.MeaMean)
			total *= g.Chosen.MeaMean
		}
		t.addRow(fmt.Sprintf("gen %d", i), g.Config.Name, opt, gain)
	}
	t.Metrics["generations"] = float64(len(chain))
	t.Metrics["cumulative_gain"] = total
	t.note("each generation adopts the best gain/cost option identified from fleet profiles")
	return t
}
