package experiments

import (
	"time"

	"repro/internal/dap"
	"repro/internal/fault"
	"repro/internal/profiling"
	"repro/internal/tmsg"
)

// E10FaultRecovery measures the hardened tool link under escalating fault
// pressure: link corruption (which the NAK/retry protocol heals at the
// cost of retransmission bandwidth) combined with EMEM soft errors (which
// no retry can heal — the decoder resynchronizes and quantifies the loss).
// Reported per corruption level: delivered message fraction, retry and
// abandonment counts, the mean recovery latency (gap length in CPU
// cycles), and the tool-side decode throughput over the received stream.
func E10FaultRecovery() *Table {
	t := newTable("E10", "Fault recovery on the hardened trace link",
		"corruption", "retries", "abandoned", "delivered", "lost", "gaps",
		"recovery (cyc)", "decode MB/s")

	for _, level := range []struct {
		name string
		prob float64
	}{
		{"0%", 0},
		{"0.1%", 0.001},
		{"1%", 0.01},
	} {
		s, app := buildRef(baseCfg().WithED(), referenceSpec())
		link := dap.DefaultConfig(s.Cfg.CPUFreqMHz)
		var plan *fault.Plan
		if level.prob > 0 {
			plan = &fault.Plan{
				Name: "e10-" + level.name, Seed: 7,
				Link: fault.LinkPlan{CorruptProb: level.prob},
				Mem:  fault.MemPlan{FlipProb: level.prob / 20},
			}
		}
		sess := profiling.NewSession(s, profiling.Spec{
			Resolution: 500, Params: profiling.StandardParams(),
			DAP: &link, Framed: true, Fault: plan,
		})
		measure(sess, app, 400_000)
		prof, err := sess.Result("engine")
		if err != nil {
			panic(err)
		}

		framed := sess.MCDS.Framer().MsgsFramed
		deliveredFrac := float64(prof.MsgsDelivered) / float64(framed)
		var recovery float64
		closed := 0
		for _, g := range prof.Gaps {
			if !g.Open() {
				recovery += float64(g.EndCycle - g.StartCycle)
				closed++
			}
		}
		if closed > 0 {
			recovery /= float64(closed)
		}
		mbps := decodeThroughput(sess.DAP.Received)

		t.addRow(level.name, d(sess.DAP.Retries), d(sess.DAP.FramesAbandoned),
			pct(deliveredFrac), d(prof.LinkLost), d(uint64(len(prof.Gaps))),
			f2(recovery), f2(mbps))

		switch level.prob {
		case 0:
			t.Metrics["delivered_frac_clean"] = deliveredFrac
			t.Metrics["decode_mbps_clean"] = mbps
		case 0.01:
			t.Metrics["delivered_frac_1pct"] = deliveredFrac
			t.Metrics["recovery_cycles_1pct"] = recovery
			t.Metrics["decode_mbps_1pct"] = mbps
			t.Metrics["retries_1pct"] = float64(sess.DAP.Retries)
		}
	}
	t.note("link corruption is healed by NAK/retry (retries, no loss); EMEM soft errors are abandoned and quantified")
	t.note("recovery = mean cycles between the last trusted message and re-acquisition after a loss")
	return t
}

// decodeThroughput times the resynchronizing decoder over the received
// byte stream (repeated until the measurement is stable enough to report).
func decodeThroughput(raw []byte) float64 {
	if len(raw) == 0 {
		return 0
	}
	const reps = 50
	start := time.Now()
	for i := 0; i < reps; i++ {
		st := tmsg.NewStreamDecoder(true)
		st.Feed(raw)
	}
	sec := time.Since(start).Seconds()
	if sec == 0 {
		return 0
	}
	return float64(len(raw)) * reps / sec / 1e6
}
