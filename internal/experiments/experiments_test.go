package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// These tests assert the *shape* of each reproduced result — who wins and
// by roughly what factor — per the reproduction contract in DESIGN.md.

func TestE1WorkedExamples(t *testing.T) {
	tb := E1RateSemantics()
	if r := tb.Metrics["dflash_rate"]; r < 0.055 || r > 0.065 {
		t.Errorf("data flash rate = %v, want ~0.06", r)
	}
	if f := tb.Metrics["exact_window_fraction"]; f < 0.9 {
		t.Errorf("exact-window fraction = %v, want >= 0.9", f)
	}
	if hr := tb.Metrics["hitrate_convention"]; hr != 96 {
		t.Errorf("hit-rate convention = %v, want 96", hr)
	}
}

func TestE2IPCBounds(t *testing.T) {
	tb := E2IPCTimeline()
	if m := tb.Metrics["ipc_max"]; m > 3 {
		t.Errorf("ipc max = %v exceeds 3", m)
	}
	if m := tb.Metrics["ipc_mean"]; m <= 0.2 || m >= 3 {
		t.Errorf("ipc mean = %v implausible", m)
	}
}

func TestE3BandwidthShape(t *testing.T) {
	tb := E3Bandwidth()
	if r := tb.Metrics["sampling_over_rate"]; r < 2 {
		t.Errorf("external sampling only %vx the rate-message bytes, want >= 2x", r)
	}
	if r := tb.Metrics["trace_over_rate"]; r < 20 {
		t.Errorf("full trace only %vx the rate-message bytes, want >= 20x", r)
	}
}

func TestE4CascadeShape(t *testing.T) {
	tb := E4Cascade()
	if f := tb.Metrics["bytes_saved_factor"]; f < 1.5 {
		t.Errorf("cascade saves only %vx, want >= 1.5x", f)
	}
	if c := tb.Metrics["low_ipc_coverage"]; c < 0.5 {
		t.Errorf("cascade keeps only %v of the low-IPC windows", c)
	}
}

func TestE5IntrusivenessShape(t *testing.T) {
	tb := E5Intrusiveness()
	if o := tb.Metrics["mcds_overhead"]; o != 0 {
		t.Errorf("MCDS overhead = %v, want exactly 0", o)
	}
	if o := tb.Metrics["sw_overhead"]; o < 0.02 {
		t.Errorf("software instrumentation overhead = %v, want >= 2%%", o)
	}
}

func TestE6RankingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet evaluation is slow")
	}
	tb := E6OptionRanking(true)
	if tb.Metrics["best_is_flash_path"] != 1 {
		t.Error("top option is not on the CPU→flash path")
	}
	if g := tb.Metrics["best_meas_gain"]; g < 1.0 {
		t.Errorf("best option gains %v, want > 1", g)
	}
	if a := tb.Metrics["est_sign_agreement"]; a < 0.7 {
		t.Errorf("analytical estimates agree with measurement only %v of the time", a)
	}
}

func TestE7FlashLeverShape(t *testing.T) {
	tb := E7FlashLever()
	if s := tb.Metrics["ws_sensitivity"]; s < 1.1 {
		t.Errorf("wait-state sensitivity = %v, want >= 1.1", s)
	}
	if r := tb.Metrics["flash_vs_sram_lever"]; r < 2 {
		t.Errorf("flash lever only %vx the SRAM control, want >= 2x", r)
	}
}

func TestE8OrderExact(t *testing.T) {
	tb := E8CycleTrace()
	if v := tb.Metrics["order_violations"]; v != 0 {
		t.Errorf("order violations = %v, want 0", v)
	}
	if n := tb.Metrics["shared_events"]; n < 100 {
		t.Errorf("only %v shared-variable events traced", n)
	}
}

func TestF1FModelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("generational loop is slow")
	}
	tb := F1FModel(true)
	if tb.Metrics["generations"] < 2 {
		t.Error("F-model produced no new generation")
	}
	if g := tb.Metrics["cumulative_gain"]; g < 1 {
		t.Errorf("cumulative gain = %v", g)
	}
}

func TestTableRender(t *testing.T) {
	tb := newTable("X", "test", "a", "bb")
	tb.addRow("1", "2")
	tb.Metrics["m"] = 1.5
	tb.note("n")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"=== X: test ===", "a", "bb", "metric m", "note: n"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestA1RateBasisShape(t *testing.T) {
	tb := A1RateBasis()
	id := tb.Metrics["instr_basis_drift"]
	cd := tb.Metrics["cycle_basis_drift"]
	if cd < 2*id {
		t.Errorf("cycle-basis drift (%.3f) should far exceed instruction-basis drift (%.3f)", cd, id)
	}
	if id > 0.10 {
		t.Errorf("instruction-based rate drifted %.3f across hardware speeds, want ~stable", id)
	}
}

func TestA2CompressionShape(t *testing.T) {
	tb := A2Compression()
	if f := tb.Metrics["compression_factor"]; f < 2 {
		t.Errorf("compression factor = %v, want >= 2", f)
	}
}

func TestA3ArbitrationShape(t *testing.T) {
	tb := A3FlashArbitration()
	if tb.Metrics["conflicts_code-priority"] == 0 && tb.Metrics["conflicts_fcfs"] == 0 {
		t.Error("no port conflicts observed; the ablation target is idle")
	}
}

func TestA4BufferSizingShape(t *testing.T) {
	tb := A4TraceBufferSizing()
	small := tb.Metrics["loss_2kb"]
	large := tb.Metrics["loss_384kb"]
	if small <= large {
		t.Errorf("loss must fall with ring size: 2KB %.3f vs 384KB %.3f", small, large)
	}
	if small < 0.05 {
		t.Errorf("2KB ring loses only %.3f; expected heavy loss", small)
	}
}

func TestE9MulticoreShape(t *testing.T) {
	tb := E9Multicore()
	if s := tb.Metrics["rate_scaling"]; s < 1.5 || s > 2.5 {
		t.Errorf("rate volume scaling = %v, want ~2x for 2 cores", s)
	}
	if r := tb.Metrics["flow_over_rate_2core"]; r < 10 {
		t.Errorf("flow trace only %vx rate messages with 2 cores", r)
	}
	if tb.Metrics["order_preserved"] != 1 {
		t.Error("merged stream out of order")
	}
	if tb.Metrics["sources_2core"] < 2 {
		t.Error("second core invisible in the stream")
	}
}

func TestTableRenderJSON(t *testing.T) {
	tb := newTable("X", "test", "a", "b")
	tb.addRow("1", "2")
	tb.Metrics["m"] = 1.5
	var buf bytes.Buffer
	if err := tb.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string             `json:"id"`
		Rows    [][]string         `json:"rows"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "X" || len(got.Rows) != 1 || got.Metrics["m"] != 1.5 {
		t.Errorf("json round trip: %+v", got)
	}
}
