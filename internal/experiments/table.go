// Package experiments implements the reproduction's evaluation harness:
// one driver per experiment in DESIGN.md (E1–E8, F1), each regenerating
// the corresponding table/series from the paper's claims and worked
// examples. The drivers are shared between cmd/experiments (human-readable
// tables) and the root benchmark suite (machine-readable metrics).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one experiment's result: a paper-style table plus the headline
// metrics benchmarks assert on.
type Table struct {
	ID      string
	Title   string
	Header  []string
	Rows    [][]string
	Notes   []string
	Metrics map[string]float64
}

func newTable(id, title string, header ...string) *Table {
	return &Table{ID: id, Title: title, Header: header, Metrics: map[string]float64{}}
}

func (t *Table) addRow(cols ...string) { t.Rows = append(t.Rows, cols) }

func (t *Table) note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// RenderJSON writes the table as a JSON object (machine-readable CI
// output: id, title, header, rows, metrics, notes).
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Header  []string           `json:"header"`
		Rows    [][]string         `json:"rows"`
		Metrics map[string]float64 `json:"metrics"`
		Notes   []string           `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Metrics, t.Notes})
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if len(t.Metrics) > 0 {
		keys := make([]string, 0, len(t.Metrics))
		for k := range t.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  metric %-32s %.4f\n", k, t.Metrics[k])
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func d(v uint64) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
