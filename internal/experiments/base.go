package experiments

import (
	"repro/internal/runcfg"
	"repro/internal/soc"
)

// base is the run configuration every experiment derives its reference
// environment from: the SoC preset the tables are measured on and the
// workload seed of the reference application. The defaults reproduce
// the published tables (TC1797, seed 2024); the experiments driver can
// override them via SetBase to re-run the evaluation on another preset
// or customer variant.
var base = func() runcfg.Run {
	r := runcfg.Default()
	r.Seed = 2024
	return r
}()

// SetBase replaces the experiments' base run configuration. It
// validates through the single runcfg.Validate path; per-experiment
// horizons are fixed, so only the SoC and seed take effect.
func SetBase(r runcfg.Run) error {
	if err := r.Validate(); err != nil {
		return err
	}
	base = r
	return nil
}

// baseCfg resolves the base SoC preset (validated in SetBase, so a
// resolution failure here is a bug).
func baseCfg() soc.Config {
	cfg, err := base.SoCConfig()
	if err != nil {
		panic(err)
	}
	return cfg
}
