package experiments

import (
	"context"
	"repro/internal/dap"
	"repro/internal/isa"
	"repro/internal/mcds"
	"repro/internal/mem"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
	"repro/internal/workload"
)

// referenceSpec is the engine-control application most experiments profile.
func referenceSpec() workload.Spec {
	return workload.Spec{
		Name: "engine", Seed: base.Seed, CodeKB: 24, TableKB: 32, FilterTaps: 16,
		DiagBranches: 12, ADCPeriod: 2500, TimerPeriod: 9000, CANMeanGap: 5000,
		EEPROMEmul: true,
	}
}

func buildRef(cfg soc.Config, spec workload.Spec) (*soc.SoC, *workload.App) {
	s := soc.New(cfg, spec.Seed)
	app, err := workload.Build(s, spec)
	if err != nil {
		panic(err)
	}
	return s, app
}

// measure drives the session's measurement phase; experiments run under no
// deadline, so cancellation is impossible and any error is a bug.
func measure(sess *profiling.Session, app profiling.Runner, cycles uint64) {
	if err := sess.Run(context.Background(), app, cycles); err != nil {
		panic(err)
	}
}

// E1RateSemantics reproduces the Section 5 worked examples: rate counters
// whose windows are exact — 6 data flash reads per 100 executed
// instructions ⇒ a 6 % access rate, and the 4-miss ⇒ 96 % hit-rate
// convention.
func E1RateSemantics() *Table {
	t := newTable("E1", "Rate-counter semantics (worked examples of Section 5)",
		"parameter", "windows", "exact 6/100", "mean rate", "paper value")

	cfg := baseCfg().WithED()
	cfg.DCache = nil
	s := soc.New(cfg, 1)
	a := isa.NewAsm(mem.FlashBase)
	a.Movw(1, mem.FlashBase+0x10000)
	a.Movw(9, 500)
	a.Label("body")
	for i := int32(0); i < 6; i++ {
		a.Ldw(2, 1, i*4)
	}
	for i := 0; i < 93; i++ {
		a.Addi(3, 3, 1)
	}
	a.Loop(9, "body")
	a.Halt()
	p, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	s.LoadProgram(p)
	s.ResetCPU(p.Base)
	sess := profiling.NewSession(s, profiling.Spec{Resolution: 100, Params: []profiling.Param{
		{Name: "dflash_read", Obs: profiling.ObsCPU, Event: sim.EvDFlashRead},
	}})
	if _, ok := s.RunUntilHalt(50_000_000); !ok {
		panic("E1 did not halt")
	}
	s.Clock.Step()
	prof, err := sess.Result("worked")
	if err != nil {
		panic(err)
	}
	se := prof.Series["dflash_read"]
	exact := 0
	for _, smp := range se.Samples {
		if smp.Basis == 100 && smp.Count == 6 {
			exact++
		}
	}
	t.addRow("dflash_read / 100 instr", d(uint64(len(se.Samples))),
		d(uint64(exact)), f4(se.Mean()), "0.0600 (6%)")
	t.Metrics["dflash_rate"] = se.Mean()
	t.Metrics["exact_window_fraction"] = float64(exact) / float64(len(se.Samples))

	// Hit-rate convention: miss windows converted per the paper.
	hw := profiling.HitRatePct(profiling.Sample{Basis: 100, Count: 4})
	t.addRow("icache hit-rate convention", "1", "-", f2(hw), "96.00 (4 misses/100)")
	t.Metrics["hitrate_convention"] = hw
	t.note("every steady-state window reports exactly 6 flash reads per 100 instructions")
	return t
}

// E2IPCTimeline measures the dynamic IPC of the engine application at
// several resolutions ("dynamically ... over the time line", "up to 3
// within a clock cycle for TriCore").
func E2IPCTimeline() *Table {
	t := newTable("E2", "Dynamic IPC measurement (cycle-based resolution)",
		"resolution", "windows", "IPC min", "IPC mean", "IPC max", "trace bytes")
	for _, res := range []uint64{100, 1000, 10000} {
		s, app := buildRef(baseCfg().WithED(), referenceSpec())
		sess := profiling.NewSession(s, profiling.Spec{Resolution: res, Params: []profiling.Param{
			{Name: "ipc", Obs: profiling.ObsCPU, Event: sim.EvInstrExecuted, Basis: sim.EvCycle},
		}})
		measure(sess, app, 400_000)
		prof, err := sess.Result("engine")
		if err != nil {
			panic(err)
		}
		se := prof.Series["ipc"]
		t.addRow(d(res), d(uint64(len(se.Samples))), f3(se.Min()), f3(se.Mean()),
			f3(se.Max()), d(prof.TraceBytes))
		if res == 1000 {
			t.Metrics["ipc_mean"] = se.Mean()
			t.Metrics["ipc_max"] = se.Max()
		}
	}
	t.note("IPC never exceeds the 3-instructions/cycle bound of the three-pipe core")
	t.note("finer resolution reveals more dynamics and costs proportionally more trace bandwidth")
	return t
}

// E3Bandwidth compares the tool-link bytes of (a) MCDS rate messages,
// (b) external sampling of two long counters per parameter, and (c) full
// program flow trace — across CPU frequencies, against the fixed DAP
// budget ("the bandwidth of the tool interface does not scale with the
// CPU frequency").
func E3Bandwidth() *Table {
	t := newTable("E3", "Tool-link bandwidth: rate messages vs sampling vs full trace",
		"method", "resolution", "bytes/400k cycles", "bytes/Mcycle", "DAP budget@180MHz", "fits")

	const horizon = 400_000
	params := profiling.StandardParams()
	budget := dap.DefaultConfig(180).BytesPerMCycle()

	run := func(res uint64, flow bool) (bytes uint64, windows uint64) {
		s, app := buildRef(baseCfg().WithED(), referenceSpec())
		var sess *profiling.Session
		if flow {
			sess = profiling.NewSession(s, profiling.Spec{Resolution: 1 << 30,
				Params: params[:1]})
			sess.CPUObs().FlowTrace = true
		} else {
			sess = profiling.NewSession(s, profiling.Spec{Resolution: res, Params: params})
		}
		measure(sess, app, horizon)
		prof, err := sess.Result("engine")
		if err != nil {
			panic(err)
		}
		w := uint64(0)
		for _, se := range prof.Series {
			w += uint64(len(se.Samples))
		}
		return prof.TraceBytes, w
	}

	var rate1kBytes, rate10kBytes uint64
	for _, res := range []uint64{100, 1000, 10000} {
		bytes, windows := run(res, false)
		if res == 1000 {
			rate1kBytes = bytes
		}
		if res == 10000 {
			rate10kBytes = bytes
		}
		perM := bytes * 1_000_000 / horizon
		t.addRow("MCDS rate messages", d(res), d(bytes), d(perM), d(budget), fits(perM, budget))

		ext := profiling.ExternalSamplingBytes(len(params), windows/uint64(len(params)))
		extPerM := ext * 1_000_000 / horizon
		t.addRow("external counter sampling", d(res), d(ext), d(extPerM), d(budget), fits(extPerM, budget))
		if res == 1000 {
			t.Metrics["sampling_over_rate"] = float64(ext) / float64(bytes)
		}
	}
	flowBytes, _ := run(0, true)
	flowPerM := flowBytes * 1_000_000 / horizon
	t.addRow("full program flow trace", "-", d(flowBytes), d(flowPerM), d(budget), fits(flowPerM, budget))
	t.Metrics["sampling17_over_rate17"] = t.Metrics["sampling_over_rate"]
	t.Metrics["trace_over_rate17"] = float64(flowBytes) / float64(rate1kBytes)

	// Like-for-like: deriving a single parameter (IPC) from the full
	// program trace versus one rate counter stream.
	singleBytes := func() uint64 {
		s, app := buildRef(baseCfg().WithED(), referenceSpec())
		sess := profiling.NewSession(s, profiling.Spec{Resolution: 1000, Params: params[:1]})
		measure(sess, app, horizon)
		prof, err := sess.Result("engine")
		if err != nil {
			panic(err)
		}
		return prof.TraceBytes
	}()
	t.addRow("one rate counter (IPC)", "1000", d(singleBytes),
		d(singleBytes*1_000_000/horizon), d(budget), "yes")
	t.Metrics["trace_over_rate"] = float64(flowBytes) / float64(singleBytes)

	// Frequency sweep: the same measurement against a fixed link whose
	// bandwidth does not scale with the CPU clock. The coarse resolution
	// is the sustainable live-streaming configuration.
	for _, mhz := range []uint64{90, 180, 360} {
		b := dap.DefaultConfig(mhz).BytesPerMCycle()
		perM := rate10kBytes * 1_000_000 / horizon
		t.addRow("MCDS rate (res 10000)", "CPU "+d(mhz)+"MHz", d(rate10kBytes), d(perM), d(b), fits(perM, b))
	}
	t.note("coarse rate messages stream live within the fixed DAP budget even at 360 MHz; full trace never fits")
	t.note("finer resolutions buffer in the EMEM and drain after the run (or use the E4 cascade)")
	return t
}

func fits(need, have uint64) string {
	if need <= have {
		return "yes"
	}
	return "NO"
}

// E4Cascade measures the cascaded counter structure: a low-resolution IPC
// watch arms the high-resolution capture only when IPC drops below a
// threshold ("the IPC rate measurement with the high resolution, but also
// high trace bandwidth is only activated when the IPC rate with the low
// resolution is below a configurable threshold").
//
// The target alternates a long scratchpad compute phase (IPC near 3) with
// a shorter degraded phase of dependent flash pointer-chasing (IPC well
// below 1) — the "interesting spaces of time" the engineer drills into.
func E4Cascade() *Table {
	t := newTable("E4", "Cascaded counters: triggered high-resolution capture",
		"configuration", "trace bytes", "hi-res windows", "low-IPC windows seen")

	const (
		hiRes        = uint64(50)
		loRes        = uint64(400)
		thNum, thDen = 1, 1 // IPC threshold 1.0
	)

	build := func() *soc.SoC {
		s := soc.New(baseCfg().WithED(), 9)
		// Pointer-chase table: 32 KB of word-aligned offsets in flash,
		// far larger than the 4 KB D-cache.
		tbl := uint32(mem.FlashBase + 0x20000)
		rng := sim.NewRNG(123)
		buf := make([]byte, 32<<10)
		for i := 0; i < len(buf); i += 4 {
			v := uint32(rng.Uint64()) & 0x7FFC
			buf[i], buf[i+1], buf[i+2], buf[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		}
		s.Flash.Load(tbl, buf)

		a := isa.NewAsm(mem.FlashBase)
		a.Movw(7, tbl)          // table base
		a.Movw(1, mem.DSPRBase) // scratch pointer
		a.Movw(8, 1664525)      // LCG multiplier
		a.Movw(11, 1013904223)  // LCG increment
		a.Movi(6, 1)            // LCG state
		a.Movw(9, 80)           // phases
		a.Label("phase")
		// Compute phase: ~4800 cycles at ~3 IPC.
		a.Movw(3, 4800)
		a.Label("fast")
		a.Addi(2, 2, 1)
		a.Stw(2, 1, 0)
		a.Loop(3, "fast")
		// Degraded phase: dependent randomized flash loads (~160 misses,
		// each feeding the next address through an LCG).
		a.Movw(4, 160)
		a.Label("chase")
		a.Mul(6, 6, 8)
		a.Add(6, 6, 11)
		a.Shri(2, 6, 8)
		a.Andi(2, 2, 0xFFC)
		a.Shli(2, 2, 3)
		a.Add(5, 7, 2)
		a.Ldw(3, 5, 0)
		a.Add(6, 6, 3) // next address depends on the loaded value
		a.Loop(4, "chase")
		a.Loop(9, "phase")
		a.Halt()
		p, err := a.Assemble()
		if err != nil {
			panic(err)
		}
		s.LoadProgram(p)
		s.ResetCPU(p.Base)
		return s
	}

	type result struct {
		bytes  uint64
		hiWins int
		lowIPC int
	}
	run := func(cascade bool) result {
		s := build()
		m := mcds.New("mcds", s.EMEM)
		core := m.AddCore(s.CPU, 0)

		hi := mcds.NewRateCounter("ipc-hi", 2,
			mcds.Tap{Obs: core, Event: sim.EvInstrExecuted},
			mcds.Tap{Obs: core, Event: sim.EvCycle}, hiRes)
		m.AddCounter(hi)
		if cascade {
			hi.Enabled = false
			below := m.AllocSignal("ipc-low")
			above := m.AllocSignal("ipc-ok")
			lo := mcds.NewRateCounter("ipc-lo", 1,
				mcds.Tap{Obs: core, Event: sim.EvInstrExecuted},
				mcds.Tap{Obs: core, Event: sim.EvCycle}, loRes)
			lo.Emit = false
			lo.ThreshNum, lo.ThreshDen = thNum, thDen
			lo.Below, lo.Above = below, above
			m.AddCounter(lo)
			m.AddRule(&mcds.TriggerRule{Name: "arm", When: mcds.On(below),
				Do: []mcds.Action{{Kind: mcds.ActEnableCounter, Counter: hi}}})
			m.AddRule(&mcds.TriggerRule{Name: "disarm", When: mcds.On(above),
				Do: []mcds.Action{{Kind: mcds.ActDisableCounter, Counter: hi}}})
		}
		s.Clock.Attach("mcds", m)
		if _, ok := s.RunUntilHalt(50_000_000); !ok {
			panic("E4 did not halt")
		}
		s.Clock.Step()

		var dec tmsg.Decoder
		msgs, _, err := dec.DecodeAll(s.EMEM.Drain(s.EMEM.Level()))
		if err != nil {
			panic(err)
		}
		var r result
		r.bytes = m.BytesEmitted
		for _, msg := range msgs {
			if msg.Kind == tmsg.KindRate && msg.CounterID == 2 {
				r.hiWins++
				if msg.Count*thDen < msg.Basis*thNum {
					r.lowIPC++
				}
			}
		}
		return r
	}

	always := run(false)
	casc := run(true)
	t.addRow("always high-res", d(always.bytes), d(uint64(always.hiWins)), d(uint64(always.lowIPC)))
	t.addRow("cascade (armed below 1.0 IPC)", d(casc.bytes), d(uint64(casc.hiWins)), d(uint64(casc.lowIPC)))
	t.Metrics["bytes_saved_factor"] = float64(always.bytes) / float64(casc.bytes)
	if always.lowIPC > 0 {
		t.Metrics["low_ipc_coverage"] = float64(casc.lowIPC) / float64(always.lowIPC)
	}
	t.note("the cascade keeps most of the low-IPC diagnostic windows at a fraction of the trace volume")
	return t
}
