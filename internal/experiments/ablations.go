package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dap"
	"repro/internal/emem"
	"repro/internal/flash"
	"repro/internal/mcds"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/tmsg"
)

// A1RateBasis ablates the paper's choice of resolution basis: event rates
// are measured per *executed instruction*, not per cycle, because an
// instruction-based rate characterizes the software independently of how
// fast the silicon happens to run it ("An instruction cache miss in clock
// cycle x is not a meaningful information ... it is not clear whether the
// CPU executed mostly instructions or stalled").
//
// The same application is run on a fast (2 WS) and a slow (10 WS) flash:
// the instruction-based miss rate stays put; the cycle-based one drifts
// with the hardware timing.
func A1RateBasis() *Table {
	t := newTable("A1", "Ablation: rate basis — per instruction vs per cycle",
		"flash", "imiss / instr", "imiss / cycle", "IPC")

	spec := referenceSpec()
	spec.CodeKB = 64 // enough footprint for a visible miss rate
	measure := func(ws uint64) (perInstr, perCycle, ipc float64) {
		cfg := baseCfg().WithED()
		cfg.Flash.WaitStates = ws
		s, app := buildRef(cfg, spec)
		sess := profiling.NewSession(s, profiling.Spec{Resolution: 1000, Params: []profiling.Param{
			{Name: "imiss_pi", Obs: profiling.ObsCPU, Event: sim.EvICacheMiss},
			{Name: "imiss_pc", Obs: profiling.ObsCPU, Event: sim.EvICacheMiss, Basis: sim.EvCycle},
			{Name: "ipc", Obs: profiling.ObsCPU, Event: sim.EvInstrExecuted, Basis: sim.EvCycle},
		}})
		measure(sess, app, 500_000)
		p, err := sess.Result("a1")
		if err != nil {
			panic(err)
		}
		return p.Rate("imiss_pi"), p.Rate("imiss_pc"), p.Rate("ipc")
	}

	fi, fc, fipc := measure(2)
	si, sc, sipc := measure(10)
	t.addRow("fast (2 wait states)", f4(fi), f4(fc), f3(fipc))
	t.addRow("slow (10 wait states)", f4(si), f4(sc), f3(sipc))

	instrDrift := relDrift(fi, si)
	cycleDrift := relDrift(fc, sc)
	t.Metrics["instr_basis_drift"] = instrDrift
	t.Metrics["cycle_basis_drift"] = cycleDrift
	t.note("the instruction-based rate drifts %.1f%% across hardware speeds; the cycle-based rate %.1f%%",
		100*instrDrift, 100*cycleDrift)
	t.note("the instruction basis measures the application; the cycle basis confounds it with silicon speed")
	return t
}

func relDrift(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	hi, lo := a, b
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo == 0 {
		return 1
	}
	return hi/lo - 1
}

// A2Compression ablates the trace message encoding: the varint/delta
// format of internal/tmsg against a fixed-width raw encoding of the same
// message stream.
func A2Compression() *Table {
	t := newTable("A2", "Ablation: trace message compression",
		"encoding", "messages", "bytes", "bytes/msg")

	// Produce a realistic mixed stream: rate messages + flow trace.
	s, app := buildRef(baseCfg().WithED(), referenceSpec())
	sess := profiling.NewSession(s, profiling.Spec{Resolution: 1000,
		Params: profiling.StandardParams()})
	sess.CPUObs().FlowTrace = true
	measure(sess, app, 300_000)
	raw := s.EMEM.Drain(s.EMEM.Level())
	var dec tmsg.Decoder
	msgs, _, err := dec.DecodeAll(raw)
	if err != nil {
		panic(err)
	}

	// Fixed-width equivalent: kind+src byte, 8-byte absolute timestamp,
	// and full-width operands per kind (what a naive trace port emits).
	var fixed uint64
	for _, m := range msgs {
		switch m.Kind {
		case tmsg.KindSync:
			fixed += 1 + 8 + 4
		case tmsg.KindFlow:
			fixed += 1 + 8 + 4 + 4 // timestamp, icount, target
		case tmsg.KindData:
			fixed += 1 + 8 + 4 + 4
		case tmsg.KindRate:
			fixed += 1 + 8 + 1 + 8 + 8 // id + two long counters
		case tmsg.KindTrigger:
			fixed += 1 + 8 + 1
		case tmsg.KindOverflow:
			fixed += 1 + 8
		}
	}
	n := uint64(len(msgs))
	t.addRow("varint/delta (tmsg)", d(n), d(uint64(len(raw))), f2(float64(len(raw))/float64(n)))
	t.addRow("fixed-width raw", d(n), d(fixed), f2(float64(fixed)/float64(n)))
	t.Metrics["compression_factor"] = float64(fixed) / float64(len(raw))
	t.note("delta timestamps and varints shrink the stream several-fold at identical information content")
	return t
}

// A3FlashArbitration ablates the flash code/data port arbitration policy
// under genuine port contention: a TC1767-like device (no D-cache) whose
// lookup tables live in flash, so fetches and data reads compete for the
// array.
func A3FlashArbitration() *Table {
	t := newTable("A3", "Ablation: flash code/data port arbitration",
		"policy", "cycles for 200 iters", "port conflicts", "slowdown")

	spec := referenceSpec()
	spec.TableKB = 64
	const iters, limit = 200, 100_000_000
	var baseCy uint64
	for i, pol := range []flash.ArbPolicy{flash.ArbCodePriority, flash.ArbFCFS, flash.ArbDataPriority} {
		cfg := soc.TC1767() // no D-cache: every table read reaches the flash
		cfg.Flash.Policy = pol
		cy, app, err := core.MeasureCycles(cfg, spec, iters, limit)
		if err != nil {
			panic(err)
		}
		conflicts := app.SoC.Flash.Counters().Get(sim.EvFlashPortConflict)
		slow := "1.00x"
		if i == 0 {
			baseCy = cy
		} else {
			slow = fmt.Sprintf("%.3fx", float64(cy)/float64(baseCy))
		}
		t.addRow(pol.String(), d(cy), d(conflicts), slow)
		t.Metrics["conflicts_"+pol.String()] = float64(conflicts)
		if i > 0 {
			t.Metrics["slowdown_"+pol.String()] = float64(cy) / float64(baseCy)
		}
	}
	t.note("with flash-resident tables and no D-cache the two ports genuinely contend; policy shifts who waits")
	return t
}

// A4TraceBufferSizing ablates the EMEM trace-ring size against a fixed DAP
// drain: the smaller the on-chip buffer, the more messages are lost while
// streaming (the trade the ED resolves by providing "a comparatively high
// amount of fast on-chip trace memory").
func A4TraceBufferSizing() *Table {
	t := newTable("A4", "Ablation: EMEM trace ring size vs message loss (flow trace over DAP)",
		"trace ring", "messages emitted", "messages lost", "loss")

	for _, kb := range []uint32{2, 8, 32, 128, 384} {
		s, app := buildRef(baseCfg().WithED(), referenceSpec())
		ring := newRing(kb << 10)
		m := mcds.New("mcds", ring)
		obs := m.AddCore(s.CPU, 0)
		obs.FlowTrace = true
		s.Clock.Attach("mcds", m)
		dp := dap.New(dap.DefaultConfig(s.Cfg.CPUFreqMHz), ring)
		s.Clock.Attach("dap", dp)

		app.RunFor(400_000)
		s.Clock.Step()
		total := m.MsgsEmitted + m.MsgsLost
		loss := float64(m.MsgsLost) / float64(total)
		t.addRow(fmt.Sprintf("%d KB", kb), d(m.MsgsEmitted), d(m.MsgsLost), pct(loss))
		t.Metrics[fmt.Sprintf("loss_%dkb", kb)] = loss
	}
	t.note("a larger on-chip ring rides out bursts the fixed DAP cannot absorb; loss falls monotonically")
	return t
}

func newRing(size uint32) *emem.EMEM { return emem.New(size, 0, 0) }
