package tricore

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/flash"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// rig is a minimal single-core system for CPU unit tests: flash behind two
// buses, SRAM, scratchpads, and optional caches.
type rig struct {
	cpu   *CPU
	fl    *flash.Flash
	sram  *mem.RAM
	pspr  *mem.RAM
	dspr  *mem.RAM
	plmb  *bus.Bus
	dlmb  *bus.Bus
	clock *sim.Clock
}

type rigOpt struct {
	icache, dcache bool
	flashWS        uint64
	prefetch       bool
}

func newRig(t *testing.T, opt rigOpt) *rig {
	t.Helper()
	fcfg := flash.DefaultConfig()
	fcfg.Size = 1 << 20
	if opt.flashWS != 0 {
		fcfg.WaitStates = opt.flashWS
	}
	fcfg.Prefetch = opt.prefetch
	fl := flash.New(fcfg)

	plmb := bus.New("plmb", 1)
	dlmb := bus.New("dlmb", 1)
	plmb.Map(mem.FlashBase, fcfg.Size, fl.CodePort())
	plmb.Map(mem.FlashUncach, fcfg.Size, bus.NewAlias(fl.CodePort(), mem.DeltaUncachedToCached))
	dlmb.Map(mem.FlashBase, fcfg.Size, fl.DataPort())
	dlmb.Map(mem.FlashUncach, fcfg.Size, bus.NewAlias(fl.DataPort(), mem.DeltaUncachedToCached))

	sram := mem.NewRAM("lmu", mem.SRAMBase, 1<<16, 2)
	dlmb.Map(mem.SRAMBase, sram.Size(), sram)
	dlmb.Map(mem.SRAMUncach, sram.Size(), bus.NewAlias(sram, mem.DeltaUncachedToCached))

	pspr := mem.NewRAM("pspr", mem.PSPRBase, 1<<15, 0)
	dspr := mem.NewRAM("dspr", mem.DSPRBase, 1<<15, 0)

	peek := func(addr uint32, p []byte) {
		a := mem.CachedView(addr)
		switch {
		case a >= mem.FlashBase && a < mem.FlashBase+fcfg.Size:
			fl.ReadDirect(a, p)
		case sram.Contains(a, len(p)):
			sram.Read(a, p)
		case pspr.Contains(a, len(p)):
			pspr.Read(a, p)
		case dspr.Contains(a, len(p)):
			dspr.Read(a, p)
		default:
			t.Fatalf("peek of unmapped address %#x", addr)
		}
	}

	ctrs := new(sim.Counters)
	var ic, dc *cache.Cache
	if opt.icache {
		ic = cache.New(cache.Config{Name: "ic", Size: 4096, LineBytes: 32, Ways: 2}, "i", ctrs)
	}
	if opt.dcache {
		dc = cache.New(cache.Config{Name: "dc", Size: 2048, LineBytes: 32, Ways: 2}, "d", ctrs)
	}

	cpu := New("tc0", 0,
		PMI{ICache: ic, PSPR: pspr, Bus: plmb, Master: 0, Peek: peek},
		DMI{DCache: dc, DSPR: dspr, Bus: dlmb, Master: 1, Peek: peek},
		DefaultTiming(), ctrs)

	clock := sim.NewClock()
	clock.Attach("tc0", cpu)
	return &rig{cpu: cpu, fl: fl, sram: sram, pspr: pspr, dspr: dspr, plmb: plmb, dlmb: dlmb, clock: clock}
}

// load places the program in flash (or PSPR when it fits the base) and
// resets the CPU to its entry.
func (r *rig) load(t *testing.T, p *isa.Program) {
	t.Helper()
	switch mem.Segment(p.Base) {
	case mem.FlashBase, mem.FlashUncach:
		r.fl.Load(mem.CachedView(p.Base), p.Bytes())
	case mem.PSPRBase:
		r.pspr.Write(p.Base, p.Bytes())
	default:
		t.Fatalf("cannot load at %#x", p.Base)
	}
	r.cpu.Reset(p.Base, mem.DSPRBase+0x7000)
}

// run executes until HALT or the cycle limit.
func (r *rig) run(t *testing.T, limit uint64) uint64 {
	t.Helper()
	n, ok := r.clock.RunUntil(r.cpu.Halted, limit)
	if !ok {
		t.Fatalf("program did not halt within %d cycles (pc=%#x)", limit, r.cpu.PC())
	}
	return n
}

func mustAsm(t *testing.T, a *isa.Asm) *isa.Program {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p
}
