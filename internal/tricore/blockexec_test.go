package tricore

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// enableDecoder installs a fresh block decoder on the rig's CPU and wires
// the flash write hook the SoC assembly would wire, so self-modifying
// programs stay correct under the cached path.
func (r *rig) enableDecoder() *isa.Decoder {
	d := isa.NewDecoder(0)
	r.fl.OnWrite = func(addr uint32, n int) {
		cached := mem.CachedView(addr)
		d.InvalidateRange(cached, uint32(n))
		d.InvalidateRange(cached-mem.DeltaUncachedToCached, uint32(n))
	}
	r.cpu.SetDecoder(d)
	return d
}

// dispatchMode mirrors soc.DecodeMode for the rig-level tests (tricore
// cannot import soc).
type dispatchMode uint8

const (
	modeRef dispatchMode = iota
	modeBlock
	modeChained
)

func (m dispatchMode) String() string {
	switch m {
	case modeRef:
		return "reference"
	case modeBlock:
		return "block"
	case modeChained:
		return "chained"
	}
	return "??"
}

// runObserved executes the program on a fresh rig and returns the complete
// retire stream, the final counter values, register file, and cycle count.
func runObserved(t *testing.T, opt rigOpt, prog *isa.Program, limit uint64, mode dispatchMode) (
	[]Retired, sim.Counters, [isa.NumRegs]uint32, uint64) {
	t.Helper()
	r := newRig(t, opt)
	if mode != modeRef {
		r.enableDecoder()
		r.cpu.SetChaining(mode == modeChained)
	}
	r.cpu.TraceEnabled = true
	var retired []Retired
	// Drain after the CPU each cycle, the way the MCDS observation block
	// does in the full SoC.
	r.clock.Attach("collect", sim.TickerFunc(func(uint64) {
		retired = append(retired, r.cpu.DrainRetired()...)
	}))
	r.load(t, prog)
	n, _ := r.clock.RunUntil(r.cpu.Halted, limit)
	retired = append(retired, r.cpu.DrainRetired()...)
	var regs [isa.NumRegs]uint32
	for i := range regs {
		regs[i] = r.cpu.Reg(i)
	}
	return retired, *r.cpu.Counters(), regs, n
}

// diffRun runs prog in every dispatch mode and requires every observable —
// retire stream, counters, registers, cycles — to match the per-word
// reference exactly.
func diffRun(t *testing.T, opt rigOpt, prog *isa.Program, limit uint64) {
	t.Helper()
	retRef, ctrRef, regRef, cycRef := runObserved(t, opt, prog, limit, modeRef)
	for _, mode := range []dispatchMode{modeBlock, modeChained} {
		ret, ctr, reg, cyc := runObserved(t, opt, prog, limit, mode)
		if cycRef != cyc {
			t.Fatalf("cycle count diverged: per-word %d, %v %d", cycRef, mode, cyc)
		}
		if regRef != reg {
			t.Fatalf("register file diverged:\nper-word %v\n%v %v", regRef, mode, reg)
		}
		if ctrRef != ctr {
			for ev := 0; ev < sim.NumEvents; ev++ {
				if ctrRef[ev] != ctr[ev] {
					t.Errorf("counter %v diverged: per-word %d, %v %d",
						sim.Event(ev), ctrRef[ev], mode, ctr[ev])
				}
			}
			t.FailNow()
		}
		if len(retRef) != len(ret) {
			t.Fatalf("retire stream length diverged: per-word %d, %v %d", len(retRef), mode, len(ret))
		}
		for i := range retRef {
			if retRef[i] != ret[i] {
				t.Fatalf("retired[%d] diverged:\nper-word %+v\n%v %+v", i, retRef[i], mode, ret[i])
			}
		}
	}
}

// genProgram emits a random but guaranteed-terminating program from seed:
// straight-line ALU/memory work, forward conditional branches, J/CALL/JR,
// bounded backward LOOPs, CSR traffic, and DBG markers, ending in HALT.
// r1 holds the DSPR data base, r13 the SRAM base, r6 a flash data pointer;
// r9 is reserved for LOOP counters and r11 stays constant.
func genBlockProg(rng *sim.RNG, base uint32, n int) *isa.Program {
	var ins []isa.Instr
	emit := func(in isa.Instr) { ins = append(ins, in) }
	movw := func(rd uint8, v uint32) {
		emit(isa.Instr{Op: isa.OpMOVH, Rd: rd, Imm: int32(v >> 16)})
		emit(isa.Instr{Op: isa.OpORIL, Rd: rd, Imm: int32(v & 0xFFFF)})
	}
	movw(1, mem.DSPRBase+0x1000)
	movw(13, mem.SRAMBase+0x2000)
	movw(6, mem.FlashBase) // reads flash bytes as data through the D-side port
	emit(isa.Instr{Op: isa.OpMOVI, Rd: 11, Imm: 1})
	for r := uint8(2); r <= 5; r++ {
		emit(isa.Instr{Op: isa.OpMOVI, Rd: r, Imm: int32(rng.Intn(1 << 12))})
	}

	gp := func() uint8 { return uint8(rng.Range(2, 5)) } // general-purpose pool
	alu := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSHL, isa.OpSHR, isa.OpSRA, isa.OpMUL, isa.OpMAC, isa.OpSLT, isa.OpSLTU}
	alui := []isa.Op{isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSHLI, isa.OpSHRI, isa.OpSLTI}
	cond := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}

	straight := func() isa.Instr {
		switch rng.Intn(10) {
		case 0, 1, 2:
			return isa.Instr{Op: alu[rng.Intn(len(alu))], Rd: gp(), Ra: gp(), Rb: gp()}
		case 3, 4:
			op := alui[rng.Intn(len(alui))]
			imm := int32(rng.Intn(64))
			return isa.Instr{Op: op, Rd: gp(), Ra: gp(), Imm: imm}
		case 5:
			base := uint8(1)
			if rng.Bool(0.3) {
				base = 13
			} else if rng.Bool(0.2) {
				base = 6
			}
			op := isa.OpLDW
			if rng.Bool(0.3) {
				op = isa.OpLDB
			}
			return isa.Instr{Op: op, Rd: gp(), Ra: base, Imm: int32(rng.Intn(256)) * 4}
		case 6:
			base := uint8(1)
			if rng.Bool(0.3) {
				base = 13
			}
			op := isa.OpSTW
			if rng.Bool(0.3) {
				op = isa.OpSTB
			}
			return isa.Instr{Op: op, Rd: gp(), Ra: base, Imm: int32(rng.Intn(256)) * 4}
		case 7:
			return isa.Instr{Op: isa.OpLEA, Rd: gp(), Ra: 1, Imm: int32(rng.Intn(1024))}
		case 8:
			if rng.Bool(0.5) {
				return isa.Instr{Op: isa.OpMFCR, Rd: gp(), Imm: int32(rng.Intn(isa.NumCSRs))}
			}
			return isa.Instr{Op: isa.OpMTCR, Ra: gp(), Imm: isa.CsrSYS}
		default:
			if rng.Bool(0.3) {
				return isa.Instr{Op: isa.OpDBG}
			}
			return isa.Instr{Op: isa.OpNOP}
		}
	}

	for len(ins) < n {
		switch rng.Intn(12) {
		case 0: // bounded backward loop: MOVI r9,k; body; LOOP r9,-body
			k := int32(rng.Range(1, 6))
			body := rng.Range(1, 4)
			emit(isa.Instr{Op: isa.OpMOVI, Rd: 9, Imm: k})
			for j := 0; j < body; j++ {
				emit(straight())
			}
			emit(isa.Instr{Op: isa.OpLOOP, Ra: 9, Imm: int32(-body)})
		case 1: // forward conditional branch over live code
			emit(isa.Instr{Op: cond[rng.Intn(len(cond))], Ra: gp(), Rb: gp(),
				Imm: int32(rng.Range(2, 5))})
			for j := 0; j < 4; j++ {
				emit(straight())
			}
		case 2: // deterministically not-taken backward branch (miss path)
			emit(straight())
			emit(isa.Instr{Op: isa.OpBNE, Ra: 11, Rb: 11, Imm: -1})
		case 3: // forward J
			d := int32(rng.Range(2, 4))
			emit(isa.Instr{Op: isa.OpJ, Off24: d})
			for j := int32(0); j < d; j++ {
				emit(straight())
			}
		case 4: // CALL over a one-instruction function returning via JR
			emit(isa.Instr{Op: isa.OpCALL, Off24: 2}) // link = next (the J)
			emit(isa.Instr{Op: isa.OpJ, Off24: 3})    // resume past the JR
			emit(straight())
			emit(isa.Instr{Op: isa.OpJR, Ra: isa.RegLink})
		case 5: // JR to a computed forward address
			d := rng.Range(3, 5)
			// target = pc of the JR + d words; the MOVH/ORIL pair sits
			// before the JR, so the JR is at index len(ins)+2.
			target := base + uint32(len(ins)+2+d)*4
			movw(8, target)
			emit(isa.Instr{Op: isa.OpJR, Ra: 8})
			for j := 0; j < d; j++ {
				emit(straight())
			}
		default:
			emit(straight())
		}
	}
	emit(isa.Instr{Op: isa.OpHALT})

	words := make([]uint32, len(ins))
	for i, in := range ins {
		words[i] = in.Encode()
	}
	return &isa.Program{Base: base, Words: words}
}

var diffOpts = []struct {
	name string
	opt  rigOpt
}{
	{"plain", rigOpt{}},
	{"icache", rigOpt{icache: true}},
	{"caches", rigOpt{icache: true, dcache: true}},
	{"slowflash", rigOpt{flashWS: 8}},
	{"prefetch", rigOpt{icache: true, prefetch: true}},
}

// TestBlockDecodeDifferential proves the decode-once block path retires a
// bit-identical stream (plus counters, registers and cycle counts) against
// the per-word reference path across random programs and memory systems.
func TestBlockDecodeDifferential(t *testing.T) {
	for _, tc := range diffOpts {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				prog := genBlockProg(sim.NewRNG(seed), mem.FlashBase, 300)
				diffRun(t, tc.opt, prog, 200000)
			}
		})
	}
	t.Run("pspr", func(t *testing.T) {
		for seed := uint64(1); seed <= 8; seed++ {
			prog := genBlockProg(sim.NewRNG(seed^0x5157), mem.PSPRBase, 300)
			diffRun(t, rigOpt{}, prog, 200000)
		}
	})
}

// FuzzBlockDecodeDifferential extends the differential proof to fuzzed
// seeds and memory-system variants.
func FuzzBlockDecodeDifferential(f *testing.F) {
	for seed := uint64(0); seed < 6; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed uint64, sel uint8) {
		opt := diffOpts[int(sel)%len(diffOpts)].opt
		base := uint32(mem.FlashBase)
		if sel&0x80 != 0 {
			base = mem.PSPRBase
		}
		prog := genBlockProg(sim.NewRNG(seed), base, 200)
		diffRun(t, opt, prog, 150000)
	})
}

// TestBlockDecodeSelfModify stores a new instruction word over a slot a few
// instructions ahead of the store and requires both dispatch paths to
// execute the *new* instruction — the invalidation-hook contract.
func TestBlockDecodeSelfModify(t *testing.T) {
	// Layout (word index from base):
	//  0-1  movw r2, addr(slot)
	//  2-3  movw r3, encode(addi r4, r4, 1)
	//  4    stw [r2+0], r3
	//  5-8  nops (let the posted store drain and cover fetch lookahead)
	//  9    slot: initially addi r4, r4, 100
	// 10    halt
	patch := isa.Instr{Op: isa.OpADDI, Rd: 4, Ra: 4, Imm: 1}.Encode()
	ins := []isa.Instr{
		{Op: isa.OpMOVH, Rd: 2, Imm: int32((mem.FlashBase + 9*4) >> 16)},
		{Op: isa.OpORIL, Rd: 2, Imm: int32((mem.FlashBase + 9*4) & 0xFFFF)},
		{Op: isa.OpMOVH, Rd: 3, Imm: int32(patch >> 16)},
		{Op: isa.OpORIL, Rd: 3, Imm: int32(patch & 0xFFFF)},
		{Op: isa.OpSTW, Rd: 3, Ra: 2, Imm: 0},
		{Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpNOP},
		{Op: isa.OpADDI, Rd: 4, Ra: 4, Imm: 100},
		{Op: isa.OpHALT},
	}
	words := make([]uint32, len(ins))
	for i, in := range ins {
		words[i] = in.Encode()
	}
	prog := &isa.Program{Base: mem.FlashBase, Words: words}

	for _, mode := range []dispatchMode{modeRef, modeBlock, modeChained} {
		t.Run(fmt.Sprintf("mode=%v", mode), func(t *testing.T) {
			_, _, regs, _ := runObserved(t, rigOpt{}, prog, 10000, mode)
			if regs[4] != 1 {
				t.Fatalf("r4 = %d, want 1 (the patched instruction)", regs[4])
			}
		})
	}
	diffRun(t, rigOpt{}, prog, 10000)
}

// TestBlockDispatchZeroAlloc pins the warmed block- and chained-dispatch
// hot paths at zero heap allocations per simulated chunk, matching the PR5
// zero-alloc gates on the trace path.
func TestBlockDispatchZeroAlloc(t *testing.T) {
	for _, mode := range []dispatchMode{modeBlock, modeChained} {
		t.Run(fmt.Sprintf("mode=%v", mode), func(t *testing.T) {
			r := newRig(t, rigOpt{icache: true})
			r.enableDecoder()
			r.cpu.SetChaining(mode == modeChained)
			// Hot loop with a cross-block back edge: ldw/addi/stw/loop — the
			// periph-heavy bench kernel shape — plus a J so the chained path
			// keeps exercising link follows after warm-up.
			ins := []isa.Instr{
				{Op: isa.OpMOVH, Rd: 1, Imm: int32(mem.DSPRBase >> 16)},
				{Op: isa.OpORIL, Rd: 1, Imm: int32(mem.DSPRBase & 0xFFFF)},
				{Op: isa.OpMOVI, Rd: 9, Imm: 2047},
				{Op: isa.OpLDW, Rd: 2, Ra: 1, Imm: 0},
				{Op: isa.OpADDI, Rd: 2, Ra: 2, Imm: 1},
				{Op: isa.OpSTW, Rd: 2, Ra: 1, Imm: 0},
				{Op: isa.OpLOOP, Ra: 9, Imm: -3},
				{Op: isa.OpMOVI, Rd: 9, Imm: 2047},
				{Op: isa.OpJ, Off24: -5},
			}
			words := make([]uint32, len(ins))
			for i, in := range ins {
				words[i] = in.Encode()
			}
			r.load(t, &isa.Program{Base: mem.FlashBase, Words: words})
			r.clock.Run(20000) // warm caches, the block cache, and chain links

			avg := testing.AllocsPerRun(10, func() {
				r.clock.Run(5000)
			})
			if avg != 0 {
				t.Fatalf("%v hot path allocates: %v allocs per 5000-cycle chunk", mode, avg)
			}
		})
	}
}

// TestChainSeverOnSelfModify warms a call/return/loop spine until chain
// links are installed, then lets the program patch its own code: the flash
// write hook must sever every link (ChainSevers), bump the generation, and
// the patched instruction — not the chained stale block — must execute.
func TestChainSeverOnSelfModify(t *testing.T) {
	r := newRig(t, rigOpt{})
	d := r.enableDecoder()
	r.cpu.SetChaining(true)

	slot := uint32(12) // word index of the instruction the program patches
	patch := isa.Instr{Op: isa.OpADDI, Rd: 4, Ra: 4, Imm: 1}.Encode()
	ins := []isa.Instr{
		{Op: isa.OpMOVH, Rd: 2, Imm: int32((mem.FlashBase + slot*4) >> 16)},    // 0
		{Op: isa.OpORIL, Rd: 2, Imm: int32((mem.FlashBase + slot*4) & 0xFFFF)}, // 1
		{Op: isa.OpMOVH, Rd: 3, Imm: int32(patch >> 16)},                       // 2
		{Op: isa.OpORIL, Rd: 3, Imm: int32(patch & 0xFFFF)},                    // 3
		{Op: isa.OpMOVI, Rd: 9, Imm: 50},                                       // 4
		{Op: isa.OpCALL, Off24: 10},                                            // 5: outer — call f (word 15)
		{Op: isa.OpLOOP, Ra: 9, Imm: -1},                                       // 6: back to outer
		{Op: isa.OpSTW, Rd: 3, Ra: 2, Imm: 0},                                  // 7: patch the slot
		{Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpNOP}, {Op: isa.OpNOP},     // 8-11
		{Op: isa.OpADDI, Rd: 4, Ra: 4, Imm: 100}, // 12: slot
		{Op: isa.OpHALT},                         // 13
		{Op: isa.OpNOP},                          // 14
		{Op: isa.OpJR, Ra: isa.RegLink},          // 15: f — return
	}
	words := make([]uint32, len(ins))
	for i, in := range ins {
		words[i] = in.Encode()
	}
	r.load(t, &isa.Program{Base: mem.FlashBase, Words: words})
	n, ok := r.clock.RunUntil(r.cpu.Halted, 10000)
	if !ok {
		t.Fatalf("did not halt in %d cycles", n)
	}
	st := d.Stats()
	if st.ChainLinks == 0 || st.ChainFollows == 0 {
		t.Fatalf("call/return spine installed no chain links: %+v", st)
	}
	if st.ChainSevers == 0 {
		t.Fatalf("code patch severed no chain links: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatalf("code patch did not invalidate: %+v", st)
	}
	if got := r.cpu.Reg(4); got != 1 {
		t.Fatalf("r4 = %d, want 1 (stale chained block executed)", got)
	}
}

// TestCPUHaltWake pins the halt-parking Sleeper contract: a halted core
// reports NoWake, a running one is due every cycle, and Reset re-arms the
// wake schedule so the core resumes under a scheduling clock.
func TestCPUHaltWake(t *testing.T) {
	r := newRig(t, rigOpt{})
	prog := &isa.Program{Base: mem.PSPRBase, Words: []uint32{
		isa.Instr{Op: isa.OpADDI, Rd: 2, Ra: 2, Imm: 7}.Encode(),
		isa.Instr{Op: isa.OpHALT}.Encode(),
	}}
	r.load(t, prog)
	if w := r.cpu.NextWake(5); w != 5 {
		t.Fatalf("running core NextWake(5) = %d, want 5", w)
	}
	r.run(t, 100)
	if w := r.cpu.NextWake(7); w != sim.NoWake {
		t.Fatalf("halted core NextWake = %d, want NoWake", w)
	}
	if got := r.cpu.Reg(2); got != 7 {
		t.Fatalf("r2 = %d, want 7", got)
	}
	// Reset must un-park the core: with only Sleepers attached the clock
	// would otherwise skip it forever.
	r.cpu.Reset(prog.Base, mem.DSPRBase+0x7000)
	r.cpu.SetReg(2, 0)
	n, ok := r.clock.RunUntil(r.cpu.Halted, 100)
	if !ok || n == 0 {
		t.Fatalf("core did not resume after Reset (ran %d, halted=%v)", n, ok)
	}
	if got := r.cpu.Reg(2); got != 7 {
		t.Fatalf("r2 after resume = %d, want 7", got)
	}
}
