// Package tricore implements the TriCore-like CPU core of the simulated
// SoC: an in-order, three-way superscalar machine with one integer pipe,
// one load/store pipe and one loop pipe (so at most three instructions
// retire per cycle — the figure the paper quotes for the MCDS IPC counter),
// static branch prediction, instruction and data caches, scratchpads, and
// shadow-register interrupt entry.
package tricore

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
)

// InterruptSource supplies pending interrupt requests to the core. The
// interrupt router in internal/irq implements it.
type InterruptSource interface {
	// PendingIRQ returns the highest pending priority strictly greater
	// than cur, with its vector address, or ok=false.
	PendingIRQ(cur uint32) (prio uint32, vector uint32, ok bool)
	// AckIRQ tells the router the core accepted the request at prio.
	AckIRQ(prio uint32)
}

// Timing parameters of the core. Defaults follow a short automotive
// pipeline; they are knobs so architecture options can vary them.
type Timing struct {
	TakenPenalty     uint64 // correctly predicted taken branch bubble
	MispredictFlush  uint64 // mispredicted branch flush
	IndirectPenalty  uint64 // JR / RFE target bubble
	IRQEntryCycles   uint64 // interrupt entry latency
	MulLatency       uint64 // MUL/MAC result latency
	LoadUseLatency   uint64 // extra cycles before a loaded value is usable
	ShadowDepth      int    // nesting depth of the shadow register stack
	FetchBlocksCycle int    // aligned 8-byte blocks fetchable per cycle
	IssueWidth       int    // instructions per cycle (3 = TriCore, 1 = PCP)
}

// DefaultTiming returns the standard core timing.
func DefaultTiming() Timing {
	return Timing{
		TakenPenalty:     1,
		MispredictFlush:  3,
		IndirectPenalty:  2,
		IRQEntryCycles:   4,
		MulLatency:       2,
		LoadUseLatency:   1,
		ShadowDepth:      16,
		FetchBlocksCycle: 2,
		IssueWidth:       3,
	}
}

// Retired describes one retired instruction, exposed to the MCDS core
// observation block for program/data trace and comparators.
type Retired struct {
	Cycle  uint64
	PC     uint32
	Word   uint32
	Op     isa.Op
	Taken  bool   // change of flow taken
	Target uint32 // flow target when Taken
	HasMem bool
	EA     uint32 // effective address when HasMem
	Write  bool
	Data   uint32 // value loaded or stored when HasMem
}

type shadowFrame struct {
	pc  uint32
	icr uint32
}

// CPU is one TriCore-like core.
type CPU struct {
	Name   string
	ID     uint32
	PMI    PMI
	DMI    DMI
	IRQ    InterruptSource // nil = no interrupts
	Timing Timing

	regs [isa.NumRegs]uint32
	csr  [isa.NumCSRs]uint32
	pc   uint32

	regReadyAt  [isa.NumRegs]uint64
	regFromLoad [isa.NumRegs]bool

	halted     bool
	stallUntil uint64
	stallKind  sim.Event // attribution for the current stall window

	fetchBlock uint32 // currently buffered aligned 8-byte fetch block
	fetchValid bool

	storeBusyUntil uint64 // single-entry posted-store buffer

	memBuf [4]byte // scratch for load/store data (avoids per-access allocation)

	shadow []shadowFrame

	counters *sim.Counters

	// Decode-once block dispatch (nil dec = per-word reference path).
	dec    *isa.Decoder
	wordFn func(addr uint32) uint32 // bound once; avoids a per-lookup closure
	blk    *isa.Block               // current-block hint carried across cycles
	blkIdx int
	blkGen uint64 // decoder generation the hint was taken at

	// Block chaining (effective only with a decoder installed): when a
	// block exits via taken control flow, the exited block is remembered so
	// the next lookup can follow a direct block-to-block link instead of
	// the PC-keyed map.
	chain     bool
	chainFrom *isa.Block // block exited by the pending control transfer
	chainGen  uint64     // decoder generation chainFrom was captured at

	waker *sim.Waker // clock wake handle; nil when driven without a clock

	// TraceEnabled makes the core append every retired instruction to the
	// retire log drained by the MCDS observation block each cycle.
	TraceEnabled bool
	retired      []Retired

	// OnDbg, when set, is called for each executed DBG instruction (the
	// MCDS debug-marker hook).
	OnDbg func(cycle uint64, pc uint32)
}

// New creates a core named name with the given memory interfaces. ctrs is
// the core's event counter set; pass the same pointer to cache.New for the
// core's caches so that one observation block sees all core events. nil
// allocates a fresh set.
func New(name string, id uint32, pmi PMI, dmi DMI, timing Timing, ctrs *sim.Counters) *CPU {
	if ctrs == nil {
		ctrs = new(sim.Counters)
	}
	c := &CPU{Name: name, ID: id, PMI: pmi, DMI: dmi, Timing: timing, counters: ctrs}
	c.PMI.ctrs = ctrs
	c.DMI.ctrs = ctrs
	c.csr[isa.CsrCoreID] = id
	// A core is held in halt until Reset places it at an entry point
	// (mirrors the boot behaviour of secondary cores).
	c.halted = true
	return c
}

// Counters returns the core's event counter set (the MCDS core observation
// block tap).
func (c *CPU) Counters() *sim.Counters { return c.counters }

// SetDecoder installs (or, with nil, removes) the decode-once block cache.
// With a decoder, issue bundles walk pre-decoded basic blocks instead of
// calling isa.Decode on every fetched word; behaviour is bit-identical to
// the per-word path — only the wall-clock cost per simulated cycle changes.
// The switch mirrors sim.Clock.SetWakeScheduling: tests flip it to prove
// equivalence.
func (c *CPU) SetDecoder(d *isa.Decoder) {
	c.dec = d
	c.blk, c.blkIdx, c.blkGen = nil, 0, 0
	c.chainFrom = nil
	if d != nil && c.wordFn == nil {
		c.wordFn = c.PMI.Word
	}
}

// Decoder returns the installed block decoder (nil = per-word path).
func (c *CPU) Decoder() *isa.Decoder { return c.dec }

// SetChaining enables or disables block chaining on the cached dispatch
// path. It has no effect without a decoder installed. Like SetDecoder, it
// changes only wall-clock cost — simulated behaviour is bit-identical.
func (c *CPU) SetChaining(on bool) {
	c.chain = on
	if !on {
		c.chainFrom = nil
	}
}

// Chaining reports whether block chaining is enabled.
func (c *CPU) Chaining() bool { return c.chain }

// NextWake implements sim.Sleeper: a halted core's Tick is a pure no-op,
// so the clock may park it until Reset reschedules. A running core is due
// every cycle (stall windows still burn counted cycles).
func (c *CPU) NextWake(from uint64) uint64 {
	if c.halted {
		return sim.NoWake
	}
	return from
}

// BindWake implements sim.WakeBinder.
func (c *CPU) BindWake(w *sim.Waker) { c.waker = w }

// Reset places the core at entry with an empty pipeline. Interrupts are
// disabled until software enables them via MTCR to ICR.
func (c *CPU) Reset(entry uint32, sp uint32) {
	c.pc = entry
	c.halted = false
	c.stallUntil = 0
	c.fetchValid = false
	c.blk, c.blkIdx = nil, 0
	c.chainFrom = nil
	// A halted core is parked in the wake schedule; un-park it.
	c.waker.Reschedule(c.waker.Cycle())
	c.shadow = c.shadow[:0]
	for i := range c.regs {
		c.regs[i] = 0
		c.regReadyAt[i] = 0
		c.regFromLoad[i] = false
	}
	c.regs[isa.RegSP] = sp
	for i := range c.csr {
		c.csr[i] = 0
	}
	c.csr[isa.CsrCoreID] = c.ID
}

// Halted reports whether the core executed HALT (or was halted by the
// debug run-control).
func (c *CPU) Halted() bool { return c.halted }

// DebugBreak halts the core from outside the instruction stream — the
// OCDS run-control path the MCDS break action drives. Reset resumes.
func (c *CPU) DebugBreak() { c.halted = true }

// PC returns the address of the next instruction to issue.
func (c *CPU) PC() uint32 { return c.pc }

// Reg returns the architectural value of register r.
func (c *CPU) Reg(r int) uint32 { return c.regs[r] }

// SetReg sets register r (test and loader use).
func (c *CPU) SetReg(r int, v uint32) { c.regs[r] = v }

// CSRValue returns core special register n.
func (c *CPU) CSRValue(n int) uint32 { return c.csr[n] }

// DrainRetired returns the retire log accumulated since the last drain and
// resets it. The MCDS observation block calls this once per cycle (it is
// stepped after the core within the same cycle).
func (c *CPU) DrainRetired() []Retired {
	r := c.retired
	c.retired = c.retired[:0]
	return r
}

// irqEnabled reports whether the global interrupt enable bit is set.
func (c *CPU) irqEnabled() bool { return c.csr[isa.CsrICR]&1 != 0 }

// currentPrio returns the current CPU priority number (ICR.CCPN).
func (c *CPU) currentPrio() uint32 { return c.csr[isa.CsrICR] >> 8 & 0xFF }

// Tick advances the core by one cycle.
func (c *CPU) Tick(now uint64) {
	if c.halted {
		return
	}
	c.counters.Inc(sim.EvCycle)

	if now < c.stallUntil {
		c.counters.Inc(sim.EvStallCycle)
		if c.stallKind != sim.EvNone {
			c.counters.Inc(c.stallKind)
		}
		return
	}

	// Interrupt entry between instructions.
	if c.IRQ != nil && c.irqEnabled() {
		if prio, vector, ok := c.IRQ.PendingIRQ(c.currentPrio()); ok {
			c.enterIRQ(now, prio, vector)
			return
		}
	}

	c.issueBundle(now)
}

func (c *CPU) enterIRQ(now uint64, prio, vector uint32) {
	if len(c.shadow) >= c.Timing.ShadowDepth {
		panic(fmt.Sprintf("%s: shadow register stack overflow (depth %d)", c.Name, c.Timing.ShadowDepth))
	}
	c.shadow = append(c.shadow, shadowFrame{pc: c.pc, icr: c.csr[isa.CsrICR]})
	c.csr[isa.CsrICR] = prio << 8 // CCPN = prio, IE = 0 until handler re-enables
	c.pc = vector
	c.fetchValid = false
	c.IRQ.AckIRQ(prio)
	c.counters.Inc(sim.EvInterruptEntry)
	c.stall(now, now+c.Timing.IRQEntryCycles, sim.EvNone)
}

// stall suspends issue until cycle until (exclusive), attributing waiting
// cycles to kind. The current cycle is not recounted.
func (c *CPU) stall(now, until uint64, kind sim.Event) {
	if until <= now {
		return
	}
	c.stallUntil = until
	c.stallKind = kind
}

// fetchAvail charges the fetch timing for the instruction at pc and
// reports whether its word is available this cycle. blocks tracks how many
// new block fetches this cycle already performed. false means the bundle
// must end (either a stall was scheduled, or the per-cycle fetch bandwidth
// is exhausted). Both dispatch paths — per-word and block-cached — share
// this one copy of the fetch timing model.
func (c *CPU) fetchAvail(now uint64, pc uint32, blocks *int, issued int) bool {
	block := pc &^ 7
	if !c.fetchValid || c.fetchBlock != block {
		if *blocks >= c.Timing.FetchBlocksCycle {
			// Out of fetch bandwidth this cycle; resume next cycle.
			if issued == 0 {
				c.counters.Inc(sim.EvStallCycle)
				c.counters.Inc(sim.EvStallFetch)
			}
			return false
		}
		*blocks++
		ready := c.PMI.FetchBlock(now, pc)
		c.fetchValid = true
		c.fetchBlock = block
		if ready > now {
			// Fetch miss: stall until the block arrives.
			c.stall(now, ready, sim.EvStallFetch)
			if issued == 0 {
				c.counters.Inc(sim.EvStallCycle)
				c.counters.Inc(sim.EvStallFetch)
			}
			return false
		}
	}
	return true
}

// fetchWord supplies the instruction word at pc, charging fetch timing via
// fetchAvail.
func (c *CPU) fetchWord(now uint64, pc uint32, blocks *int, issued int) (uint32, bool) {
	if !c.fetchAvail(now, pc, blocks, issued) {
		return 0, false
	}
	return c.PMI.Word(pc), true
}

func (c *CPU) issueBundle(now uint64) {
	if c.dec != nil {
		c.issueBundleCached(now)
		return
	}
	var pipeBusy [3]bool
	issued := 0
	blocks := 0
	width := c.Timing.IssueWidth
	if width <= 0 || width > 3 {
		width = 3
	}

	for issued < width {
		word, ok := c.fetchWord(now, c.pc, &blocks, issued)
		if !ok {
			break
		}
		in := isa.Decode(word)
		if !in.Op.Valid() {
			panic(fmt.Sprintf("%s: illegal instruction %#08x at pc %#08x", c.Name, word, c.pc))
		}
		pipe := in.Op.Pipe()
		if pipeBusy[pipe] {
			break // structural hazard: pipe already claimed this cycle
		}
		if !c.sourcesReady(now, in) {
			if issued == 0 {
				c.counters.Inc(sim.EvStallCycle)
				if c.pendingLoadHazard(now, in) {
					c.counters.Inc(sim.EvStallData)
				}
			}
			break
		}
		flowChange := c.execute(now, in)
		pipeBusy[pipe] = true
		issued++
		c.counters.Inc(sim.EvInstrExecuted)
		if flowChange || c.halted {
			break
		}
	}
}

// sourcesReady reports whether all registers read by in are available at
// cycle now (in-order scoreboard check).
func (c *CPU) sourcesReady(now uint64, in isa.Instr) bool {
	var regs [3]uint8
	n := in.ReadRegs(&regs)
	for i := 0; i < n; i++ {
		if c.regReadyAt[regs[i]] > now {
			return false
		}
	}
	return true
}

func (c *CPU) pendingLoadHazard(now uint64, in isa.Instr) bool {
	var regs [3]uint8
	n := in.ReadRegs(&regs)
	for i := 0; i < n; i++ {
		r := regs[i]
		if c.regReadyAt[r] > now && c.regFromLoad[r] {
			return true
		}
	}
	return false
}

func (c *CPU) writeReg(r uint8, v uint32, readyAt uint64, fromLoad bool) {
	c.regs[r] = v
	c.regReadyAt[r] = readyAt
	c.regFromLoad[r] = fromLoad
}

func (c *CPU) retire(now uint64, pc uint32, in isa.Instr, r Retired) {
	if !c.TraceEnabled {
		return
	}
	r.Cycle = now
	r.PC = pc
	r.Op = in.Op
	r.Word = in.Encode()
	c.retired = append(c.retired, r)
}
